// Quickstart: build a small table, compress it with BtrBlocks, inspect
// what the scheme picker chose, round-trip it through the on-disk format,
// and read the values back.
//
//   ./quickstart [output-dir]
#include <cstdio>
#include <string>

#include "btr/btrblocks.h"

int main(int argc, char** argv) {
  using namespace btr;
  std::string dir = argc > 1 ? argv[1] : "/tmp";

  // 1. Build a table: order ids, prices, and cities.
  Relation orders("orders");
  Column& id = orders.AddColumn("id", ColumnType::kInteger);
  Column& price = orders.AddColumn("price", ColumnType::kDouble);
  Column& city = orders.AddColumn("city", ColumnType::kString);
  const char* cities[] = {"Seattle", "Berlin", "Munich", "Phoenix"};
  for (int i = 0; i < 100000; i++) {
    id.AppendInt(i + 1);
    if (i % 50 == 49) {
      price.AppendNull();  // NULLs are tracked in a Roaring bitmap
    } else {
      price.AppendDouble(static_cast<double>((i * 37) % 10000) / 100.0);
    }
    city.AppendString(cities[(i / 1000) % 4]);
  }

  // 2. Compress. The default config is the paper's: cascade depth 3,
  //    10x64 sampling, full scheme pool.
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(orders, config);
  std::printf("uncompressed: %8.2f KiB\n",
              orders.UncompressedBytes() / 1024.0);
  std::printf("compressed:   %8.2f KiB  (ratio %.1fx)\n",
              compressed.CompressedBytes() / 1024.0,
              compressed.CompressionRatio());

  // 3. What did the sampling-based picker choose per column?
  for (const CompressedColumn& column : compressed.columns) {
    const char* scheme = "?";
    u8 code = column.block_root_schemes[0];
    switch (column.type) {
      case ColumnType::kInteger:
        scheme = IntSchemeName(static_cast<IntSchemeCode>(code));
        break;
      case ColumnType::kDouble:
        scheme = DoubleSchemeName(static_cast<DoubleSchemeCode>(code));
        break;
      case ColumnType::kString:
        scheme = StringSchemeName(static_cast<StringSchemeCode>(code));
        break;
    }
    std::printf("column %-8s -> %-6s values, root scheme: %s\n",
                column.name.c_str(), ColumnTypeName(column.type), scheme);
  }

  // 4. Persist (one file per column + a metadata file) and load back.
  Status status = WriteCompressedRelation(compressed, dir);
  if (!status.ok()) {
    std::printf("write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  CompressedRelation loaded;
  status = ReadCompressedRelation(dir, "orders", &loaded);
  if (!status.ok()) {
    std::printf("read failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 5. Decompress one block and look at a few values.
  DecodedBlock block;
  DecompressBlock(loaded.columns[2].blocks[0].data(), &block, config);
  std::printf("first cities: %.*s, %.*s, ...\n",
              static_cast<int>(block.strings.Get(0).size()),
              block.strings.Get(0).data(),
              static_cast<int>(block.strings.Get(1).size()),
              block.strings.Get(1).data());

  DecompressBlock(loaded.columns[1].blocks[0].data(), &block, config);
  std::printf("price[0]=%.2f  price[49] is %s\n", block.doubles[0],
              block.IsNull(49) ? "NULL" : "non-null");
  std::printf("ok\n");
  return 0;
}
