// btrtool: command-line utility around the BtrBlocks format.
//
//   btrtool compress  <table.csv> <out-dir> <table-name>   CSV -> .btr files
//   btrtool decompress <dir> <table-name> <out.csv>        .btr -> CSV
//   btrtool stats     <dir> <table-name>                   per-column report
//   btrtool inspect   <table.csv>                          cascade decision report
//   btrtool scan      <table.csv> [col=value ...]          pipelined scan demo
//   btrtool ingest    <table.csv> [table-name]             crash-safe streaming
//                                                          write demo (below)
//   btrtool demo                                           self-contained demo
//
// Global flags (any command):
//   --metrics-json=<path>   write the metrics registry as JSON on exit
//   --trace-json=<path>     record spans and write a Chrome/Perfetto trace
//   --scan-threads=<n>      decode threads for `scan` (0 = hardware)
//   --prefetch-depth=<n>    bounded-queue capacity for `scan`
//   --fault-seed=<n>        `scan`: inject a seeded chaos fault schedule
//                           into the object store (docs/ROBUSTNESS.md)
//   --fault-rate=<f>        per-GET fault probability for --fault-seed
//                           (default 0.05)
//   --where=<expr>          `scan`: SQL-ish filter expression, e.g.
//                           --where="id >= 5 AND city IN ('a', 'b')"
//                           (=, <, <=, >, >=, BETWEEN, IN, AND/OR/NOT;
//                           see docs/PREDICATES.md). The positional
//                           col=value filters are deprecated aliases for
//                           --where equality conjuncts.
//   --no-pushdown           `scan`: decode every block, then filter
//                           (disables zone pruning + compressed-form
//                           evaluation; the baseline the pushdown engine
//                           is benched against)
//   --max-retries=<n>       `scan`: retries per GET on transient failures
//   --skip-corrupt          `scan`: degrade instead of failing — skip
//                           unreadable row blocks and report them
//   --profile[=<path.json>] `scan`: collect a per-scan ScanProfile (stage
//                           breakdown, GET latency histogram, per-scheme
//                           decode cost, slow-op exemplars); prints the
//                           text report and, with =<path>, writes the
//                           stable-schema JSON form (docs/OBSERVABILITY.md)
//   --tenant=<id[,id...]>   `scan`: run through a shared btr::ScanService,
//                           round-robining scans across these tenant ids
//                           (shared cache, fair scheduling, admission
//                           control; docs/SCAN_SERVICE.md)
//   --concurrent=<n>        `scan`: with --tenant, run n concurrent scans
//                           (default: one per tenant)
//   --chunk-rows=<n>        `ingest`: rows per Append() chunk (default 10000)
//   --crash-at=<k>          `ingest`: kill the writer at its k-th crash
//                           point, then run fsck (read-only, then --repair)
//                           and verify the table reads back as either the
//                           old or the new version (docs/WRITE_PATH.md)
//   --crash-matrix          `ingest`: enumerate every crash point, killing
//                           the writer at each one in turn and proving
//                           fsck --repair converges to either-old-or-new
//                           every time. --fault-seed adds a PUT-side chaos
//                           schedule on top (writes retry transients).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "btr/btrblocks.h"
#include "btr/predicate_parser.h"
#include "datagen/csv.h"
#include "datagen/public_bi.h"
#include "obs/cascade_trace.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "s3sim/object_store.h"
#include "service/scan_service.h"
#include "util/timer.h"
#include "write/manifest.h"
#include "write/recovery.h"
#include "write/streaming_writer.h"

namespace {

using namespace btr;

const char* RootSchemeName(ColumnType type, u8 code) {
  switch (type) {
    case ColumnType::kInteger:
      return IntSchemeName(static_cast<IntSchemeCode>(code));
    case ColumnType::kDouble:
      return DoubleSchemeName(static_cast<DoubleSchemeCode>(code));
    case ColumnType::kString:
      return StringSchemeName(static_cast<StringSchemeCode>(code));
  }
  return "?";
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdCompress(const std::string& csv_path, const std::string& dir,
                const std::string& name) {
  Relation relation(name);
  Status status = datagen::ReadCsvFile(csv_path, name, &relation);
  if (!status.ok()) return Fail(status);
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(relation, config);
  status = WriteCompressedRelation(compressed, dir);
  if (!status.ok()) return Fail(status);
  std::printf("%u rows, %zu columns: %.2f MiB -> %.2f MiB (%.2fx)\n",
              relation.row_count(), relation.columns().size(),
              relation.UncompressedBytes() / 1048576.0,
              compressed.CompressedBytes() / 1048576.0,
              compressed.CompressionRatio());
  return 0;
}

int CmdDecompress(const std::string& dir, const std::string& name,
                  const std::string& csv_path) {
  CompressedRelation compressed;
  Status status = ReadCompressedRelation(dir, name, &compressed);
  if (!status.ok()) return Fail(status);
  CompressionConfig config;
  Relation relation = MaterializeRelation(compressed, config);
  status = datagen::WriteCsvFile(relation, csv_path);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %u rows to %s\n", relation.row_count(), csv_path.c_str());
  return 0;
}

int CmdStats(const std::string& dir, const std::string& name) {
  TableMeta meta;
  Status status = ReadTableMeta(dir, name, &meta);
  if (!status.ok()) return Fail(status);
  std::printf("table %s: %u rows, %zu columns\n", name.c_str(), meta.row_count,
              meta.columns.size());
  std::printf("%-24s %-8s %10s %12s %8s  %s\n", "column", "type", "blocks",
              "compressed", "ratio", "scheme of block 0");
  for (size_t c = 0; c < meta.columns.size(); c++) {
    CompressedColumn column;
    status = ReadCompressedColumn(dir, name, meta, c, &column);
    if (!status.ok()) return Fail(status);
    double ratio = column.CompressedBytes() == 0
                       ? 0
                       : static_cast<double>(column.uncompressed_bytes) /
                             column.CompressedBytes();
    std::printf("%-24s %-8s %10zu %10.1f K %7.1fx  %s\n", column.name.c_str(),
                ColumnTypeName(column.type), column.blocks.size(),
                column.CompressedBytes() / 1024.0, ratio,
                RootSchemeName(column.type, column.block_root_schemes[0]));
  }
  return 0;
}

// Compresses a CSV with cascade tracing enabled and prints, per column,
// the full scheme decision tree: scheme at every depth, bytes in/out,
// actual vs sample-estimated ratio, and the estimate error.
int CmdInspect(const std::string& csv_path) {
  std::string name = csv_path;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);

  Relation relation(name);
  Status status = datagen::ReadCsvFile(csv_path, name, &relation);
  if (!status.ok()) return Fail(status);

  Telemetry telemetry;
  CompressionConfig config;
  config.collect_cascade_trace = true;
  config.telemetry = &telemetry;
  CompressedRelation compressed = CompressRelation(relation, config);

  std::printf("table %s: %u rows, %zu columns, %.2f MiB -> %.2f MiB (%.2fx)\n",
              name.c_str(), relation.row_count(), relation.columns().size(),
              compressed.UncompressedBytes() / 1048576.0,
              compressed.CompressedBytes() / 1048576.0,
              compressed.CompressionRatio());
  std::printf(
      "compression %.1f ms (stats %.1f ms, scheme estimation %.1f ms)\n\n",
      telemetry.compress_ns / 1e6, telemetry.stats_ns / 1e6,
      telemetry.estimate_ns / 1e6);

  for (const CompressedColumn& column : compressed.columns) {
    double ratio = column.CompressedBytes() == 0
                       ? 0
                       : static_cast<double>(column.uncompressed_bytes) /
                             column.CompressedBytes();
    std::printf("column %s (%s): %.1f KiB -> %.1f KiB (%.2fx), %zu block%s\n",
                column.name.c_str(), ColumnTypeName(column.type),
                column.uncompressed_bytes / 1024.0,
                column.CompressedBytes() / 1024.0, ratio,
                column.blocks.size(), column.blocks.size() == 1 ? "" : "s");
    for (size_t b = 0; b < column.block_traces.size(); b++) {
      std::printf("  block %zu:\n", b);
      std::printf("%s",
                  obs::CascadeTreeToString(column.block_traces[b], 2).c_str());
    }
    std::printf("\n");
  }

  // Process-wide data-volume counters (obs/metrics.h). Zero unless this
  // process also ran scans/caching, but always reported so the names and
  // units are discoverable from the tool.
  {
    obs::Registry& registry = obs::Registry::Get();
    std::printf("data-volume counters (this process):\n");
    std::printf("  scan.bytes_fetched        %llu\n",
                static_cast<unsigned long long>(
                    registry.GetCounter("scan.bytes_fetched").Value()));
    std::printf("  scan.bytes_decoded        %llu\n",
                static_cast<unsigned long long>(
                    registry.GetCounter("scan.bytes_decoded").Value()));
    std::printf("  cache.block.bytes_evicted %llu\n\n",
                static_cast<unsigned long long>(
                    registry.GetCounter("cache.block.bytes_evicted").Value()));
  }

  // Depth-indexed scheme usage across the whole table (satellite view of
  // the cascade: which schemes appear at which recursion level).
  std::printf("scheme uses by cascade depth (count x type/scheme):\n");
  static const char* kTypeTags[3] = {"int", "double", "string"};
  for (u32 depth = 0; depth < kTelemetryDepthSlots; depth++) {
    bool any = false;
    for (u32 t = 0; t < 3 && !any; t++) {
      for (u32 s = 0; s < 16 && !any; s++) {
        any = telemetry.scheme_uses_by_depth[depth][t][s] != 0;
      }
    }
    if (!any) continue;
    std::printf("  depth %u:", depth);
    for (u32 t = 0; t < 3; t++) {
      for (u32 s = 0; s < 16; s++) {
        u64 n = telemetry.scheme_uses_by_depth[depth][t][s];
        if (n == 0) continue;
        std::printf("  %llux %s/%s", static_cast<unsigned long long>(n),
                    kTypeTags[t],
                    RootSchemeName(static_cast<ColumnType>(t),
                                   static_cast<u8>(s)));
      }
    }
    std::printf("\n");
  }
  return 0;
}

// Compresses a CSV, uploads it into an in-memory object store (one object
// per column + metadata + zone maps) and runs a pipelined Scanner scan
// with optional `col=value` equality predicates, reporting what the zone
// maps pruned, what predicate pushdown skipped, and the pipeline timing.
// With --tenant, scans run through one shared ScanService instead of a
// standalone Scanner: `concurrent` scans (default: one per tenant) are
// round-robined across the tenant ids and the per-tenant service stats
// are reported at the end (docs/SCAN_SERVICE.md).
int CmdScan(const std::string& csv_path,
            const std::vector<std::string>& filters,
            const std::string& where_clause, const ScanConfig& scan_config,
            u64 fault_seed, double fault_rate,
            const std::string& profile_json_path,
            const std::vector<std::string>& tenants, u32 concurrent) {
  std::string name = csv_path;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);

  Relation relation(name);
  Status status = datagen::ReadCsvFile(csv_path, name, &relation);
  if (!status.ok()) return Fail(status);

  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(relation, config);
  TableZoneMap zones;
  for (const Column& column : relation.columns()) {
    zones.columns.push_back(ComputeColumnZoneMap(column));
  }
  s3sim::ObjectStore store;
  status = UploadCompressedRelation(compressed, &zones, "", &store);
  if (!status.ok()) return Fail(status);
  if (fault_seed != 0) {
    store.InstallFaultPlan(
        s3sim::MakeChaosPlan(fault_seed, fault_rate, /*include_corruption=*/true));
    std::printf("fault injection: seed %llu, rate %.3f (transients, latency "
                "spikes, truncations, bit flips)\n",
                static_cast<unsigned long long>(fault_seed), fault_rate);
  }

  ScanSpec spec;
  spec.config = scan_config;
  if (!where_clause.empty()) {
    status = ParsePredicate(where_clause, &spec.filter);
    if (!status.ok()) return Fail(status);
    std::printf("where: %s\n", spec.filter.ToString().c_str());
  }
  if (!filters.empty()) {
    std::fprintf(stderr,
                 "note: col=value filters are deprecated; prefer "
                 "--where=\"col = value AND ...\"\n");
  }
  for (const std::string& filter : filters) {
    size_t eq = filter.find('=');
    if (eq == std::string::npos) {
      return Fail(Status::InvalidArgument("filter must be col=value: " + filter));
    }
    std::string column_name = filter.substr(0, eq);
    std::string value = filter.substr(eq + 1);
    const Column* column = nullptr;
    for (const Column& candidate : relation.columns()) {
      if (candidate.name() == column_name) column = &candidate;
    }
    if (column == nullptr) {
      return Fail(Status::NotFound("no such column: " + column_name));
    }
    switch (column->type()) {
      case ColumnType::kInteger:
        spec.predicates.push_back(
            Predicate::EqualsInt(column_name, std::atoi(value.c_str())));
        break;
      case ColumnType::kDouble:
        spec.predicates.push_back(
            Predicate::EqualsDouble(column_name, std::atof(value.c_str())));
        break;
      case ColumnType::kString:
        spec.predicates.push_back(Predicate::EqualsString(column_name, value));
        break;
    }
  }

  if (!tenants.empty()) {
    u32 jobs = concurrent == 0 ? static_cast<u32>(tenants.size()) : concurrent;
    service::ScanService service;
    std::atomic<u64> total_rows{0};
    std::atomic<u64> throttled_jobs{0};
    std::atomic<int> rc{0};
    std::mutex print_mutex;
    Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (u32 j = 0; j < jobs; j++) {
      const std::string tenant = tenants[j % tenants.size()];
      threads.emplace_back([&, tenant, j] {
        Scanner scanner(service, tenant, &store, name);
        Status job_status = scanner.Open(spec.config);
        ScanStats job_stats;
        u64 job_rows = 0;
        if (job_status.ok()) {
          job_status = scanner.Scan(
              spec,
              [&](ColumnChunk&& chunk) {
                if (chunk.column == 0) job_rows += chunk.row_count;
              },
              &job_stats);
        }
        if (job_status.IsThrottled()) {
          // Admission control said no — expected under deliberate
          // overload, reported but not fatal.
          throttled_jobs.fetch_add(1);
          return;
        }
        if (!job_status.ok()) {
          std::lock_guard<std::mutex> lock(print_mutex);
          std::fprintf(stderr, "scan %u (tenant %s) failed: %s\n", j,
                       tenant.c_str(), job_status.ToString().c_str());
          rc.store(1);
          return;
        }
        total_rows.fetch_add(job_rows);
      });
    }
    for (std::thread& thread : threads) thread.join();
    double seconds = wall.ElapsedSeconds();
    std::printf("scan service: %u scans across %zu tenant%s in %.3f s "
                "(%llu rows emitted, %llu throttled)\n",
                jobs, tenants.size(), tenants.size() == 1 ? "" : "s", seconds,
                static_cast<unsigned long long>(total_rows.load()),
                static_cast<unsigned long long>(throttled_jobs.load()));
    std::printf("%-16s %8s %8s %8s %10s %12s %8s %12s\n", "tenant", "scans",
                "queued", "rejects", "gets", "hits", "hedges", "p95 wait");
    for (const auto& [id, tenant_stats] : service.AllTenantStats()) {
      std::printf("%-16s %8llu %8llu %8llu %10llu %12llu %8llu %9.3f ms\n",
                  id.c_str(),
                  static_cast<unsigned long long>(tenant_stats.scans_completed),
                  static_cast<unsigned long long>(tenant_stats.scans_queued),
                  static_cast<unsigned long long>(tenant_stats.scans_rejected),
                  static_cast<unsigned long long>(tenant_stats.gets),
                  static_cast<unsigned long long>(tenant_stats.cache_hits),
                  static_cast<unsigned long long>(tenant_stats.hedges),
                  tenant_stats.queue_wait_p95_ns / 1e6);
    }
    return rc.load();
  }

  Scanner scanner(&store, name);
  status = scanner.Open();
  if (!status.ok()) return Fail(status);
  ScanStats stats;
  u64 rows_emitted = 0;
  status = scanner.Scan(
      spec,
      [&](ColumnChunk&& chunk) {
        if (chunk.column == 0) rows_emitted += chunk.row_count;
      },
      &stats);
  if (!status.ok()) return Fail(status);

  size_t leaf_count = stats.predicate_leaves.size();
  std::printf("scanned %s: %u rows, %zu columns, %zu predicate lea%s\n",
              name.c_str(), relation.row_count(), relation.columns().size(),
              leaf_count, leaf_count == 1 ? "f" : "ves");
  std::printf("row blocks: %u total, %u zone-map pruned, %u skipped by "
              "compressed-form predicates, %u decoded\n",
              stats.row_blocks, stats.blocks_pruned, stats.blocks_skipped,
              stats.blocks_decoded);
  if (leaf_count != 0) {
    std::printf("rows matching the filter: %llu\n",
                static_cast<unsigned long long>(stats.rows_matched));
    for (const PredicateLeafStats& leaf : stats.predicate_leaves) {
      std::printf("  leaf %-32s  pruned %u blocks, %llu fast-path, "
                  "%llu materialized\n",
                  leaf.description.c_str(),
                  static_cast<unsigned>(leaf.blocks_pruned),
                  static_cast<unsigned long long>(leaf.fast_path),
                  static_cast<unsigned long long>(leaf.materialized));
    }
  }
  std::printf("fetched %.1f KiB in %llu GETs, decoded %.1f KiB logical; "
              "%.3f s with %u scan threads, "
              "%u fetch threads, prefetch depth %u\n",
              stats.bytes_fetched / 1024.0,
              static_cast<unsigned long long>(stats.requests),
              stats.bytes_decoded / 1024.0, stats.seconds,
              spec.config.scan_threads, spec.config.fetch_threads,
              spec.config.prefetch_depth);
  if (fault_seed != 0 || stats.retries != 0 || stats.blocks_unreadable != 0) {
    std::printf("robustness: %llu faults injected, %llu retries granted, "
                "%u unreadable block%s%s\n",
                static_cast<unsigned long long>(store.faults_injected()),
                static_cast<unsigned long long>(stats.retries),
                stats.blocks_unreadable,
                stats.blocks_unreadable == 1 ? "" : "s",
                spec.config.skip_unreadable_blocks ? " (degraded mode)" : "");
    for (size_t i = 0; i < stats.unreadable_blocks.size(); i++) {
      std::printf("  block %u unreadable: %s\n", stats.unreadable_blocks[i],
                  stats.unreadable_reasons[i].ToString().c_str());
    }
  }
  if (scan_config.enable_block_cache) {
    std::printf("block cache: %llu hits, %llu misses, %llu bytes evicted "
                "(%.0f MiB capacity)\n",
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_misses),
                static_cast<unsigned long long>(
                    obs::Registry::Get()
                        .GetCounter("cache.block.bytes_evicted")
                        .Value()),
                scan_config.block_cache_bytes / (1024.0 * 1024.0));
  }
  if (scan_config.enable_hedged_gets) {
    std::printf("hedged GETs: %llu issued, %llu won by the duplicate\n",
                static_cast<unsigned long long>(stats.hedges),
                static_cast<unsigned long long>(stats.hedge_wins));
  }
  if (scan_config.enable_circuit_breaker) {
    std::printf("circuit breaker: %llu trips, %llu fast failures\n",
                static_cast<unsigned long long>(stats.breaker_trips),
                static_cast<unsigned long long>(stats.breaker_fast_failures));
  }
  if (scan_config.refetch_on_crc_failure &&
      (stats.crc_refetches != 0 || stats.crc_rescues != 0)) {
    std::printf("CRC re-fetch: %llu re-fetched, %llu rescued\n",
                static_cast<unsigned long long>(stats.crc_refetches),
                static_cast<unsigned long long>(stats.crc_rescues));
  }
  if (scan_config.collect_profile && stats.profile != nullptr) {
    std::printf("\n%s", stats.profile->ToText().c_str());
    if (!profile_json_path.empty()) {
      std::ofstream out(profile_json_path,
                        std::ios::binary | std::ios::trunc);
      if (out) out << stats.profile->ToJson() << "\n";
      if (out.good()) {
        std::fprintf(stderr, "profile written to %s\n",
                     profile_json_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n",
                     profile_json_path.c_str());
        return 1;
      }
    }
  }
  return 0;
}

// --- ingest: the crash-safe streaming write path ---------------------------

Relation SliceRows(const Relation& table, u32 begin, u32 count) {
  Relation chunk(table.name());
  for (const Column& src : table.columns()) {
    Column& dst = chunk.AddColumn(src.name(), src.type());
    for (u32 r = begin; r < begin + count; r++) {
      if (src.IsNull(r)) {
        dst.AppendNull();
        continue;
      }
      switch (src.type()) {
        case ColumnType::kInteger: dst.AppendInt(src.ints()[r]); break;
        case ColumnType::kDouble: dst.AppendDouble(src.doubles()[r]); break;
        case ColumnType::kString: dst.AppendString(src.GetString(r)); break;
      }
    }
  }
  return chunk;
}

struct IngestOutcome {
  Status status;
  btr::u32 points = 0;  // crash points the writer passed through
  btr::u64 version = 0;
};

// One streaming ingest of `table`. crash_at > 0 kills the writer at that
// crash point (simulated process death: no cleanup happens).
IngestOutcome RunIngest(s3sim::ObjectStore* store, const Relation& table,
                        u32 chunk_rows, int crash_at) {
  IngestOutcome outcome;
  write::WriterConfig config;
  config.failpoint = [&](const char*) {
    outcome.points++;
    return crash_at > 0 && outcome.points == static_cast<u32>(crash_at);
  };
  write::StreamingWriter writer(store, table.name(), "lake/",
                                std::move(config));
  std::vector<write::StreamingWriter::ColumnSpec> schema;
  for (const Column& column : table.columns()) {
    schema.push_back({column.name(), column.type()});
  }
  Status status = writer.Begin(schema);
  for (u32 begin = 0; status.ok() && begin < table.row_count();
       begin += chunk_rows) {
    u32 n = std::min(chunk_rows, table.row_count() - begin);
    status = writer.Append(SliceRows(table, begin, n));
  }
  if (status.ok()) status = writer.Commit();
  outcome.status = status;
  outcome.version = writer.version();
  return outcome;
}

void PrintFsckReport(const write::FsckReport& report, bool repaired) {
  std::printf("fsck%s: committed v%llu -> v%llu, %u intent%s; "
              "%u rolled forward, %u rolled back, %u uploads completed, "
              "%u aborted, %u objects deleted, %u orphans GC'd, "
              "%u verify failure%s%s\n",
              repaired ? " --repair" : "",
              static_cast<unsigned long long>(report.committed_version_before),
              static_cast<unsigned long long>(report.committed_version_after),
              report.intents_seen, report.intents_seen == 1 ? "" : "s",
              report.rolled_forward, report.rolled_back,
              report.uploads_completed, report.uploads_aborted,
              report.objects_deleted, report.orphans_deleted,
              report.verify_failures, report.verify_failures == 1 ? "" : "s",
              report.clean ? " (store clean)" : "");
  for (const std::string& note : report.notes) {
    std::printf("  %s\n", note.c_str());
  }
}

// Opens + fully scans the table; returns the row count it reads back.
Status VerifyReadable(s3sim::ObjectStore* store, const std::string& name,
                      u64* rows_out) {
  Scanner scanner(store, name, "lake/");
  Status status = scanner.Open();
  if (!status.ok()) return status;
  u64 rows = 0;
  ScanSpec spec;
  status = scanner.Scan(spec, [&](ColumnChunk&& chunk) {
    if (chunk.column == 0) rows += chunk.row_count;
  });
  if (status.ok()) *rows_out = rows;
  return status;
}

int CmdIngest(const std::string& csv_path, std::string name, u32 chunk_rows,
              int crash_at, bool crash_matrix, u64 fault_seed,
              double fault_rate) {
  if (name.empty()) {
    name = csv_path;
    size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    size_t dot = name.find_last_of('.');
    if (dot != std::string::npos) name = name.substr(0, dot);
  }
  Relation relation(name);
  Status status = datagen::ReadCsvFile(csv_path, name, &relation);
  if (!status.ok()) return Fail(status);
  if (chunk_rows == 0) chunk_rows = 10000;

  if (crash_matrix) {
    // Commit a first version of the front half, then re-ingest the whole
    // table killing the writer at every crash point in turn: after
    // `fsck --repair` the table must read back as exactly the old half or
    // the new whole — never a mix, never unreadable.
    const u32 half = relation.row_count() / 2;
    s3sim::ObjectStore counting_store;
    IngestOutcome probe = RunIngest(&counting_store, relation, chunk_rows, 0);
    if (!probe.status.ok()) return Fail(probe.status);
    std::printf("crash matrix: %u crash points, old version %u rows, "
                "new version %u rows\n",
                probe.points, half, relation.row_count());
    u32 failures = 0;
    for (u32 k = 1; k <= probe.points; k++) {
      s3sim::ObjectStore store;
      Relation old_half = SliceRows(relation, 0, half);
      IngestOutcome first = RunIngest(&store, old_half, chunk_rows, 0);
      if (!first.status.ok()) return Fail(first.status);
      if (fault_seed != 0) {
        store.InstallFaultPlan(s3sim::MakePutChaosPlan(fault_seed + k,
                                                       fault_rate));
      }
      IngestOutcome crashed = RunIngest(&store, relation, chunk_rows,
                                        static_cast<int>(k));
      store.ClearFaultPlan();
      write::FsckOptions repair;
      repair.repair = true;
      write::FsckReport report;
      status = write::Fsck(&store, "lake/", name, repair, &report);
      if (!status.ok()) return Fail(status);
      // fsck must be idempotent: an immediate re-run finds a clean store.
      write::FsckReport again;
      status = write::Fsck(&store, "lake/", name, repair, &again);
      if (!status.ok()) return Fail(status);
      u64 rows = 0;
      Status read = VerifyReadable(&store, name, &rows);
      bool ok = read.ok() && again.clean &&
                (rows == half || rows == relation.row_count());
      if (!ok) failures++;
      std::printf("  crash point %3u: writer %s, fsck %s v%llu, "
                  "read back %llu rows -> %s\n",
                  k, crashed.status.ok() ? "survived" : "killed",
                  report.rolled_forward != 0 ? "rolled forward"
                                             : "kept committed",
                  static_cast<unsigned long long>(
                      report.committed_version_after),
                  static_cast<unsigned long long>(rows),
                  ok ? "OK" : read.ToString().c_str());
    }
    std::printf("crash matrix: %u/%u points converged\n",
                probe.points - failures, probe.points);
    return failures == 0 ? 0 : 1;
  }

  s3sim::ObjectStore store;
  if (fault_seed != 0) {
    store.InstallFaultPlan(s3sim::MakePutChaosPlan(fault_seed, fault_rate));
    std::printf("PUT fault injection: seed %llu, rate %.3f (throttles, "
                "unavailabilities, latency spikes, partial parts)\n",
                static_cast<unsigned long long>(fault_seed), fault_rate);
  }
  Timer wall;
  IngestOutcome outcome = RunIngest(&store, relation, chunk_rows, crash_at);
  double seconds = wall.ElapsedSeconds();
  store.ClearFaultPlan();
  if (outcome.status.ok()) {
    std::printf("committed v%llu: %u rows in %u-row chunks, %.3f s, "
                "%llu PUT requests, %llu bytes staged\n",
                static_cast<unsigned long long>(outcome.version),
                relation.row_count(), chunk_rows, seconds,
                static_cast<unsigned long long>(store.total_put_requests()),
                static_cast<unsigned long long>(store.total_bytes_put()));
  } else {
    std::printf("writer died: %s\n", outcome.status.ToString().c_str());
    write::FsckOptions analyze;
    write::FsckReport report;
    status = write::Fsck(&store, "lake/", name, analyze, &report);
    if (!status.ok()) return Fail(status);
    PrintFsckReport(report, false);
    write::FsckOptions repair;
    repair.repair = true;
    status = write::Fsck(&store, "lake/", name, repair, &report);
    if (!status.ok()) return Fail(status);
    PrintFsckReport(report, true);
  }
  u64 rows = 0;
  status = VerifyReadable(&store, name, &rows);
  if (status.IsNotFound()) {
    std::printf("table not committed (rolled back); store holds no version "
                "— either-old-or-new holds\n");
    return 0;
  }
  if (!status.ok()) return Fail(status);
  std::printf("verification scan: %llu rows read back\n",
              static_cast<unsigned long long>(rows));
  return rows == relation.row_count() || !outcome.status.ok() ? 0 : 1;
}

int CmdDemo() {
  std::printf("generating a Public-BI-like demo table...\n");
  Relation table = datagen::MakePublicBiTable("demo", 64000, 1);
  std::string dir = "/tmp";
  std::string csv = "/tmp/demo.csv";
  Status status = datagen::WriteCsvFile(table, csv);
  if (!status.ok()) return Fail(status);
  if (int rc = CmdCompress(csv, dir, "demo"); rc != 0) return rc;
  if (int rc = CmdStats(dir, "demo"); rc != 0) return rc;
  if (int rc = CmdDecompress(dir, "demo", "/tmp/demo_out.csv"); rc != 0) {
    return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global flags, stripped before command dispatch.
  std::string metrics_path;
  std::string trace_path;
  std::string profile_json_path;
  std::string where_clause;
  btr::ScanConfig scan_config;
  btr::u64 fault_seed = 0;
  double fault_rate = 0.05;
  std::vector<std::string> tenants;
  btr::u32 concurrent = 0;
  btr::u32 chunk_rows = 10000;
  int crash_at = 0;
  bool crash_matrix = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(std::strlen("--metrics-json="));
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace-json="));
    } else if (arg.rfind("--scan-threads=", 0) == 0) {
      scan_config.scan_threads = static_cast<btr::u32>(
          std::atoi(arg.c_str() + std::strlen("--scan-threads=")));
    } else if (arg.rfind("--prefetch-depth=", 0) == 0) {
      int depth = std::atoi(arg.c_str() + std::strlen("--prefetch-depth="));
      scan_config.prefetch_depth = depth < 1 ? 1 : static_cast<btr::u32>(depth);
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      fault_seed = static_cast<btr::u64>(
          std::atoll(arg.c_str() + std::strlen("--fault-seed=")));
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      fault_rate = std::atof(arg.c_str() + std::strlen("--fault-rate="));
    } else if (arg.rfind("--max-retries=", 0) == 0) {
      int retries = std::atoi(arg.c_str() + std::strlen("--max-retries="));
      // N retries = N+1 attempts; --max-retries=0 means fail fast.
      scan_config.max_attempts =
          retries < 0 ? 1 : static_cast<btr::u32>(retries) + 1;
    } else if (arg.rfind("--where=", 0) == 0) {
      where_clause = arg.substr(std::strlen("--where="));
    } else if (arg == "--no-pushdown") {
      scan_config.enable_predicate_pushdown = false;
    } else if (arg == "--skip-corrupt") {
      scan_config.skip_unreadable_blocks = true;
    } else if (arg.rfind("--block-cache=", 0) == 0) {
      int mib = std::atoi(arg.c_str() + std::strlen("--block-cache="));
      scan_config.enable_block_cache = mib > 0;
      if (mib > 0) {
        scan_config.block_cache_bytes = static_cast<btr::u64>(mib) << 20;
      }
    } else if (arg == "--hedge") {
      scan_config.enable_hedged_gets = true;
    } else if (arg == "--breaker") {
      scan_config.enable_circuit_breaker = true;
    } else if (arg == "--crc-refetch") {
      scan_config.refetch_on_crc_failure = true;
    } else if (arg.rfind("--tenant=", 0) == 0) {
      std::string list = arg.substr(std::strlen("--tenant="));
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) tenants.push_back(list.substr(start, comma - start));
        start = comma + 1;
      }
    } else if (arg.rfind("--concurrent=", 0) == 0) {
      int n = std::atoi(arg.c_str() + std::strlen("--concurrent="));
      concurrent = n < 0 ? 0 : static_cast<btr::u32>(n);
    } else if (arg.rfind("--chunk-rows=", 0) == 0) {
      int n = std::atoi(arg.c_str() + std::strlen("--chunk-rows="));
      chunk_rows = n < 1 ? 1 : static_cast<btr::u32>(n);
    } else if (arg.rfind("--crash-at=", 0) == 0) {
      crash_at = std::atoi(arg.c_str() + std::strlen("--crash-at="));
    } else if (arg == "--crash-matrix") {
      crash_matrix = true;
    } else if (arg == "--profile") {
      scan_config.collect_profile = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      scan_config.collect_profile = true;
      profile_json_path = arg.substr(std::strlen("--profile="));
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (!trace_path.empty()) btr::obs::Tracer::Get().Enable();

  auto finish = [&](int rc) {
    if (!metrics_path.empty()) {
      if (btr::obs::WriteMetricsJsonFile(metrics_path)) {
        std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
        if (rc == 0) rc = 1;
      }
    }
    if (!trace_path.empty()) {
      if (btr::obs::WriteChromeTraceFile(trace_path)) {
        std::fprintf(stderr, "trace written to %s (open in chrome://tracing "
                             "or https://ui.perfetto.dev)\n",
                     trace_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
        if (rc == 0) rc = 1;
      }
    }
    return rc;
  };

  std::string command = args.empty() ? "" : args[0];
  if (command == "compress" && args.size() == 4) {
    return finish(CmdCompress(args[1], args[2], args[3]));
  }
  if (command == "decompress" && args.size() == 4) {
    return finish(CmdDecompress(args[1], args[2], args[3]));
  }
  if (command == "stats" && args.size() == 3) {
    return finish(CmdStats(args[1], args[2]));
  }
  if (command == "inspect" && args.size() == 2) {
    return finish(CmdInspect(args[1]));
  }
  if (command == "scan" && args.size() >= 2) {
    std::vector<std::string> filters(args.begin() + 2, args.end());
    return finish(CmdScan(args[1], filters, where_clause, scan_config,
                          fault_seed, fault_rate,
                          profile_json_path, tenants, concurrent));
  }
  if (command == "ingest" && (args.size() == 2 || args.size() == 3)) {
    return finish(CmdIngest(args[1], args.size() == 3 ? args[2] : "",
                            chunk_rows, crash_at, crash_matrix, fault_seed,
                            fault_rate));
  }
  if (command == "demo") {
    return finish(CmdDemo());
  }
  std::fprintf(stderr,
               "usage:\n"
               "  btrtool compress   <table.csv> <out-dir> <table-name>\n"
               "  btrtool decompress <dir> <table-name> <out.csv>\n"
               "  btrtool stats      <dir> <table-name>\n"
               "  btrtool inspect    <table.csv>\n"
               "  btrtool scan       <table.csv> [col=value ...]\n"
               "  btrtool ingest     <table.csv> [table-name]\n"
               "  btrtool demo\n"
               "flags: --metrics-json=<path>  --trace-json=<path>\n"
               "       --scan-threads=<n>  --prefetch-depth=<n>  (scan)\n"
               "       --fault-seed=<n>  --fault-rate=<f>  --max-retries=<n>\n"
               "       --skip-corrupt  (scan robustness, docs/ROBUSTNESS.md)\n"
               "       --block-cache=<MiB>  --hedge  --breaker  --crc-refetch\n"
               "         (resilient read path: checksum-verified cache,\n"
               "          hedged GETs, circuit breaker, CRC re-fetch)\n"
               "       --profile[=<path.json>]  (scan: per-scan profile —\n"
               "          stage breakdown, GET latency histogram, slow ops)\n"
               "       --tenant=<id[,id...]>  --concurrent=<n>  (scan: run\n"
               "          through a shared ScanService, one scan per job\n"
               "          round-robined over the tenants; docs/SCAN_SERVICE.md)\n"
               "       --chunk-rows=<n>  --crash-at=<k>  --crash-matrix\n"
               "          (ingest: crash-safe streaming write demo — kill the\n"
               "          writer, fsck --repair, verify either-old-or-new;\n"
               "          docs/WRITE_PATH.md)\n");
  return 2;
}
