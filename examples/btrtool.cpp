// btrtool: command-line utility around the BtrBlocks format.
//
//   btrtool compress  <table.csv> <out-dir> <table-name>   CSV -> .btr files
//   btrtool decompress <dir> <table-name> <out.csv>        .btr -> CSV
//   btrtool stats     <dir> <table-name>                   per-column report
//   btrtool demo                                           self-contained demo
#include <cstdio>
#include <cstring>
#include <string>

#include "btr/btrblocks.h"
#include "datagen/csv.h"
#include "datagen/public_bi.h"

namespace {

using namespace btr;

const char* RootSchemeName(ColumnType type, u8 code) {
  switch (type) {
    case ColumnType::kInteger:
      return IntSchemeName(static_cast<IntSchemeCode>(code));
    case ColumnType::kDouble:
      return DoubleSchemeName(static_cast<DoubleSchemeCode>(code));
    case ColumnType::kString:
      return StringSchemeName(static_cast<StringSchemeCode>(code));
  }
  return "?";
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdCompress(const std::string& csv_path, const std::string& dir,
                const std::string& name) {
  Relation relation(name);
  Status status = datagen::ReadCsvFile(csv_path, name, &relation);
  if (!status.ok()) return Fail(status);
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(relation, config);
  status = WriteCompressedRelation(compressed, dir);
  if (!status.ok()) return Fail(status);
  std::printf("%u rows, %zu columns: %.2f MiB -> %.2f MiB (%.2fx)\n",
              relation.row_count(), relation.columns().size(),
              relation.UncompressedBytes() / 1048576.0,
              compressed.CompressedBytes() / 1048576.0,
              compressed.CompressionRatio());
  return 0;
}

int CmdDecompress(const std::string& dir, const std::string& name,
                  const std::string& csv_path) {
  CompressedRelation compressed;
  Status status = ReadCompressedRelation(dir, name, &compressed);
  if (!status.ok()) return Fail(status);
  CompressionConfig config;
  Relation relation = MaterializeRelation(compressed, config);
  status = datagen::WriteCsvFile(relation, csv_path);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %u rows to %s\n", relation.row_count(), csv_path.c_str());
  return 0;
}

int CmdStats(const std::string& dir, const std::string& name) {
  TableMeta meta;
  Status status = ReadTableMeta(dir, name, &meta);
  if (!status.ok()) return Fail(status);
  std::printf("table %s: %u rows, %zu columns\n", name.c_str(), meta.row_count,
              meta.columns.size());
  std::printf("%-24s %-8s %10s %12s %8s  %s\n", "column", "type", "blocks",
              "compressed", "ratio", "scheme of block 0");
  for (size_t c = 0; c < meta.columns.size(); c++) {
    CompressedColumn column;
    status = ReadCompressedColumn(dir, name, meta, c, &column);
    if (!status.ok()) return Fail(status);
    double ratio = column.CompressedBytes() == 0
                       ? 0
                       : static_cast<double>(column.uncompressed_bytes) /
                             column.CompressedBytes();
    std::printf("%-24s %-8s %10zu %10.1f K %7.1fx  %s\n", column.name.c_str(),
                ColumnTypeName(column.type), column.blocks.size(),
                column.CompressedBytes() / 1024.0, ratio,
                RootSchemeName(column.type, column.block_root_schemes[0]));
  }
  return 0;
}

int CmdDemo() {
  std::printf("generating a Public-BI-like demo table...\n");
  Relation table = datagen::MakePublicBiTable("demo", 64000, 1);
  std::string dir = "/tmp";
  std::string csv = "/tmp/demo.csv";
  Status status = datagen::WriteCsvFile(table, csv);
  if (!status.ok()) return Fail(status);
  if (int rc = CmdCompress(csv, dir, "demo"); rc != 0) return rc;
  if (int rc = CmdStats(dir, "demo"); rc != 0) return rc;
  if (int rc = CmdDecompress(dir, "demo", "/tmp/demo_out.csv"); rc != 0) {
    return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command = argc > 1 ? argv[1] : "";
  if (command == "compress" && argc == 5) {
    return CmdCompress(argv[2], argv[3], argv[4]);
  }
  if (command == "decompress" && argc == 5) {
    return CmdDecompress(argv[2], argv[3], argv[4]);
  }
  if (command == "stats" && argc == 4) {
    return CmdStats(argv[2], argv[3]);
  }
  if (command == "demo") {
    return CmdDemo();
  }
  std::fprintf(stderr,
               "usage:\n"
               "  btrtool compress   <table.csv> <out-dir> <table-name>\n"
               "  btrtool decompress <dir> <table-name> <out.csv>\n"
               "  btrtool stats      <dir> <table-name>\n"
               "  btrtool demo\n");
  return 2;
}
