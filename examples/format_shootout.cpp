// Format shootout: the same table stored as BtrBlocks, Parquet-like and
// ORC-like files (with each general-purpose codec) — sizes, compression
// time and single-thread decode throughput, side by side. A compact
// command-line version of the paper's Figure 8 for one table.
//
//   ./format_shootout [rows]
#include <cstdio>
#include <cstdlib>

#include "btr/btrblocks.h"
#include "datagen/public_bi.h"
#include "lakeformat/orc_like.h"
#include "lakeformat/parquet_like.h"
#include "util/timer.h"

namespace {

struct Row {
  const char* name;
  double compressed_mib;
  double compress_seconds;
  double decode_gbps;
};

void Print(const Row& row, double uncompressed_mib) {
  std::printf("%-24s  %9.2f MiB  %7.2fx  %8.3f s  %10.2f GB/s\n", row.name,
              row.compressed_mib, uncompressed_mib / row.compressed_mib,
              row.compress_seconds, row.decode_gbps);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace btr;
  u32 rows = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 256000;
  Relation table = datagen::MakePublicBiTable("shootout", rows, 42);
  double uncompressed_mib = table.UncompressedBytes() / 1048576.0;
  std::printf("table: %u rows, %zu columns, %.2f MiB in memory\n\n", rows,
              table.columns().size(), uncompressed_mib);
  std::printf("%-24s  %13s  %8s  %10s  %12s\n", "format", "size", "ratio",
              "compress", "decode");

  {
    CompressionConfig config;
    Timer ct;
    CompressedRelation compressed = CompressRelation(table, config);
    double compress_seconds = ct.ElapsedSeconds();
    Timer dt;
    u64 bytes = DecompressRelation(compressed, config);
    Print(Row{"BtrBlocks", compressed.CompressedBytes() / 1048576.0,
              compress_seconds, bytes / dt.ElapsedSeconds() / 1e9},
          uncompressed_mib);
  }
  for (auto [name, codec] :
       {std::pair{"Parquet-like", gpc::CodecKind::kNone},
        std::pair{"Parquet-like+Snappy*", gpc::CodecKind::kLz77},
        std::pair{"Parquet-like+Zstd*", gpc::CodecKind::kEntropyLz}}) {
    lakeformat::ParquetOptions options;
    options.codec = codec;
    Timer ct;
    ByteBuffer file = lakeformat::WriteParquetLike(table, options);
    double compress_seconds = ct.ElapsedSeconds();
    Timer dt;
    u64 bytes = 0;
    btr::Status status =
        lakeformat::DecodeParquetLikeBytes(file.data(), file.size(), &bytes);
    BTR_CHECK_MSG(status.ok(), "parquet-like file failed to decode");
    Print(Row{name, file.size() / 1048576.0, compress_seconds,
              bytes / dt.ElapsedSeconds() / 1e9},
          uncompressed_mib);
  }
  for (auto [name, codec] :
       {std::pair{"ORC-like", gpc::CodecKind::kNone},
        std::pair{"ORC-like+Snappy*", gpc::CodecKind::kLz77},
        std::pair{"ORC-like+Zstd*", gpc::CodecKind::kEntropyLz}}) {
    lakeformat::OrcOptions options;
    options.codec = codec;
    Timer ct;
    ByteBuffer file = lakeformat::WriteOrcLike(table, options);
    double compress_seconds = ct.ElapsedSeconds();
    Timer dt;
    u64 bytes = 0;
    btr::Status status =
        lakeformat::DecodeOrcLikeBytes(file.data(), file.size(), &bytes);
    BTR_CHECK_MSG(status.ok(), "orc-like file failed to decode");
    Print(Row{name, file.size() / 1048576.0, compress_seconds,
              bytes / dt.ElapsedSeconds() / 1e9},
          uncompressed_mib);
  }
  std::printf("\n(*) Snappy/Zstd stand-ins are this repo's gpc codecs.\n");
  return 0;
}
