// Pseudodecimal Encoding lab (paper Section 4): see how individual
// doubles decompose into (digits, exponent) pairs, then compare PDE
// against the dedicated float compressors (FPC, Gorilla, Chimp, Chimp128)
// on a price series and on high-precision noise.
//
//   ./float_lab
#include <cmath>
#include <cstdio>
#include <vector>

#include "btr/schemes/double_schemes.h"
#include "floatcomp/chimp.h"
#include "floatcomp/fpc.h"
#include "floatcomp/gorilla.h"
#include "util/random.h"

int main() {
  using namespace btr;
  using pseudodecimal::EncodeSingle;
  using pseudodecimal::kExponentException;

  std::printf("-- Pseudodecimal decomposition (paper Listing 2) --\n");
  const double samples[] = {3.25,   0.99,  -6.425, 42.0, 0.0,
                            -0.0,   1e300, 5.5e-42, 1.0 / 3.0};
  for (double v : samples) {
    auto d = EncodeSingle(v);
    if (d.exp == kExponentException) {
      std::printf("%12g -> patch (stored verbatim)\n", v);
    } else {
      std::printf("%12g -> (%d, %u)  i.e. %d x 10^-%u\n", v, d.digits, d.exp,
                  d.digits, d.exp);
    }
  }

  auto compare = [](const char* name, const std::vector<double>& data) {
    u32 count = static_cast<u32>(data.size());
    double raw = static_cast<double>(count) * sizeof(double);
    ByteBuffer fpc, gorilla, chimp, chimp128, pde;
    floatcomp::FpcCompress(data.data(), count, &fpc);
    floatcomp::GorillaCompress(data.data(), count, &gorilla);
    floatcomp::ChimpCompress(data.data(), count, &chimp);
    floatcomp::Chimp128Compress(data.data(), count, &chimp128);
    CompressionConfig config;
    CompressionContext ctx{&config, config.max_cascade_depth};
    GetDoubleScheme(DoubleSchemeCode::kPseudodecimal)
        .Compress(data.data(), count, &pde, ctx);
    std::printf("%-22s  FPC %.2fx  Gorilla %.2fx  Chimp %.2fx  "
                "Chimp128 %.2fx  PDE(cascaded) %.2fx\n",
                name, raw / fpc.size(), raw / gorilla.size(),
                raw / chimp.size(), raw / chimp128.size(), raw / pde.size());
  };

  std::printf("\n-- Compression ratios on 64k doubles --\n");
  Random rng(1);
  std::vector<double> prices;
  for (int i = 0; i < 64000; i++) {
    prices.push_back(static_cast<double>(rng.NextBounded(10000)) / 100.0);
  }
  compare("prices (2 decimals)", prices);

  std::vector<double> coordinates;
  for (int i = 0; i < 64000; i++) {
    coordinates.push_back(-122.0 + rng.NextDouble());
  }
  compare("coordinates (noise)", coordinates);

  std::vector<double> series;
  double v = 100.0;
  for (int i = 0; i < 64000; i++) {
    v += (rng.NextDouble() - 0.5) * 0.125;  // dyadic steps: XOR-friendly
    series.push_back(v);
  }
  compare("time series", series);
  return 0;
}
