// Data-lake scan scenario (the paper's introduction): a table lives as
// one compressed file per column in an S3-like object store; an analytics
// engine fetches only the columns a query touches, decompresses them, and
// aggregates. Everything below goes through btr::Scanner — the pipelined
// scan engine described in docs/SCAN_PIPELINE.md — instead of hand-rolled
// GET loops: zone-map pruning, ranged GETs, compressed-form predicate
// evaluation and multi-threaded decoding all happen behind Scan().
//
//   ./datalake_scan
#include <cstdio>
#include <string>
#include <vector>

#include "btr/btrblocks.h"
#include "datagen/public_bi.h"
#include "s3sim/object_store.h"

int main() {
  using namespace btr;

  // 1. Produce a Public-BI-like table and upload it: one object per
  //    column plus the table metadata and the zone-map sidecar.
  Relation table = datagen::MakePublicBiTable("sales", 256000, 7);
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(table, config);
  TableZoneMap zones;
  for (const Column& column : table.columns()) {
    zones.columns.push_back(ComputeColumnZoneMap(column));
  }

  s3sim::ObjectStore store;
  Status status = UploadCompressedRelation(compressed, &zones, "lake/", &store);
  if (!status.ok()) {
    std::printf("upload failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("uploaded %zu column objects, %.2f MiB compressed "
              "(%.2f MiB in memory, ratio %.1fx)\n",
              compressed.columns.size(),
              compressed.CompressedBytes() / 1048576.0,
              table.UncompressedBytes() / 1048576.0,
              compressed.CompressionRatio());

  Scanner scanner(&store, "sales", "lake/");
  status = scanner.Open();
  if (!status.ok()) {
    std::printf("open failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 2. "SELECT sum(d_*), count(*) FROM sales" touching two columns: the
  //    projection makes the scanner fetch only those objects. Chunks are
  //    aggregated as they stream out of the pipeline.
  ScanSpec spec;
  for (const CompressedColumn& column : compressed.columns) {
    if (column.type == ColumnType::kDouble && spec.columns.size() < 2) {
      spec.columns.push_back(column.name);
    }
  }
  spec.config.scan_threads = 4;

  double sum = 0;
  u64 rows = 0;
  ScanStats stats;
  status = scanner.Scan(
      spec,
      [&](ColumnChunk&& chunk) {
        for (u32 i = 0; i < chunk.values.count; i++) {
          if (!chunk.values.IsNull(i)) sum += chunk.values.doubles[i];
        }
        if (chunk.column == 0) rows += chunk.row_count;
      },
      &stats);
  if (!status.ok()) {
    std::printf("scan failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("query touched %zu columns, %llu values, sum=%.2f\n",
              spec.columns.size(), static_cast<unsigned long long>(rows), sum);
  std::printf("fetched %.2f MiB in %llu GET requests, %.3f s pipelined\n",
              stats.bytes_fetched / 1048576.0,
              static_cast<unsigned long long>(stats.requests), stats.seconds);

  // 3. Cost of this scan under the paper's cloud model.
  s3sim::ScanMeasurement m;
  m.compressed_bytes = stats.bytes_fetched;
  m.uncompressed_bytes = rows * sizeof(double);
  m.single_thread_decompress_seconds = stats.seconds;
  s3sim::ScanResult r = s3sim::SimulateScan(m, store.config());
  std::printf("modeled scan: %.4f s, $%.8f (%s-bound), T_r %.1f GB/s\n",
              r.seconds, r.cost_usd, r.network_bound ? "network" : "CPU",
              r.tr_gbps);

  // 4. Point query with zone-map pruning: "count(*) WHERE i_col = probe".
  //    The predicate is evaluated on the *compressed* form (Section 7);
  //    zone maps (Section 2.1) prune blocks before any GET is issued.
  {
    // Choose the integer column (and probe) where zone pruning skips the
    // most blocks — clustered columns (e.g. sequential ids) prune best.
    const Column* int_column = nullptr;
    i32 probe = 0;
    size_t best_pruned = 0;
    for (const Column& candidate : table.columns()) {
      if (candidate.type() != ColumnType::kInteger) continue;
      ColumnZoneMap candidate_zones = ComputeColumnZoneMap(candidate);
      i32 candidate_probe = candidate.ints()[candidate.size() - 1];
      size_t pruned = 0;
      for (const BlockZone& zone : candidate_zones.zones) {
        pruned += !ZoneMayContainInt(zone, candidate_probe);
      }
      if (int_column == nullptr || pruned > best_pruned) {
        int_column = &candidate;
        probe = candidate_probe;
        best_pruned = pruned;
      }
    }

    ScanSpec point;
    point.columns = {int_column->name()};
    point.filter = Predicate::EqualsInt(int_column->name(), probe);
    ScanOutput output;
    status = scanner.Scan(point, &output);
    if (!status.ok()) {
      std::printf("point query failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf(
        "\npoint query on '%s' = %d: zone maps pruned %u of %u blocks, "
        "%llu ranged GETs (%.1f KiB), %llu matches found on compressed "
        "blocks\n",
        int_column->name().c_str(), probe, output.stats.blocks_pruned,
        output.stats.row_blocks,
        static_cast<unsigned long long>(output.stats.requests),
        output.stats.bytes_fetched / 1024.0,
        static_cast<unsigned long long>(output.stats.rows_matched));
  }
  return 0;
}
