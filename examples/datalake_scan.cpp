// Data-lake scan scenario (the paper's introduction): a table lives as
// one compressed file per column in an S3-like object store; an analytics
// engine fetches only the columns a query touches, decompresses them, and
// aggregates. Prints fetched bytes, GET-request accounting and the modeled
// scan cost — the metrics behind the paper's Figure 1.
//
//   ./datalake_scan
#include <cstdio>
#include <string>
#include <vector>

#include "btr/btrblocks.h"
#include "btr/compressed_scan.h"
#include "btr/zonemap.h"
#include "datagen/public_bi.h"
#include "s3sim/object_store.h"
#include "util/timer.h"

int main() {
  using namespace btr;

  // 1. Produce a Public-BI-like table and upload it column by column.
  Relation table = datagen::MakePublicBiTable("sales", 256000, 7);
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(table, config);

  s3sim::ObjectStore store;
  for (size_t c = 0; c < compressed.columns.size(); c++) {
    const CompressedColumn& column = compressed.columns[c];
    ByteBuffer file;
    file.AppendValue<u32>(static_cast<u32>(column.blocks.size()));
    for (const ByteBuffer& block : column.blocks) {
      file.AppendValue<u32>(static_cast<u32>(block.size()));
    }
    for (const ByteBuffer& block : column.blocks) {
      file.Append(block.data(), block.size());
    }
    store.Put("lake/sales/" + column.name, file.data(), file.size());
  }
  std::printf("uploaded %zu column objects, %.2f MiB compressed "
              "(%.2f MiB in memory, ratio %.1fx)\n",
              compressed.columns.size(),
              compressed.CompressedBytes() / 1048576.0,
              table.UncompressedBytes() / 1048576.0,
              compressed.CompressionRatio());

  // 2. "SELECT sum(d_*), count(*) FROM sales" touching two columns:
  //    fetch only those objects, decompress, aggregate.
  std::vector<std::string> query_columns;
  for (const CompressedColumn& column : compressed.columns) {
    if (column.type == ColumnType::kDouble && query_columns.size() < 2) {
      query_columns.push_back(column.name);
    }
  }

  Timer timer;
  double sum = 0;
  u64 rows = 0;
  for (const std::string& name : query_columns) {
    std::vector<u8> object;
    store.GetObject("lake/sales/" + name, &object);
    // Copy into a padded buffer (decoders may read a few bytes past the
    // payload; ByteBuffer guarantees that slack).
    ByteBuffer padded;
    padded.Append(object.data(), object.size());
    const u8* p = padded.data();
    u32 block_count;
    std::memcpy(&block_count, p, 4);
    const u8* sizes = p + 4;
    const u8* payload = sizes + 4ull * block_count;
    DecodedBlock block;
    for (u32 b = 0; b < block_count; b++) {
      u32 size;
      std::memcpy(&size, sizes + 4ull * b, 4);
      DecompressBlock(payload, &block, config);
      payload += size;
      for (u32 i = 0; i < block.count; i++) {
        if (!block.IsNull(i)) sum += block.doubles[i];
      }
      rows += block.count;
    }
  }
  double decompress_seconds = timer.ElapsedSeconds();

  std::printf("query touched %zu columns, %llu values, sum=%.2f\n",
              query_columns.size(), static_cast<unsigned long long>(rows), sum);
  std::printf("fetched %.2f MiB in %llu GET requests\n",
              store.total_bytes_fetched() / 1048576.0,
              static_cast<unsigned long long>(store.total_requests()));

  // 3. Cost of this scan under the paper's cloud model.
  s3sim::ScanMeasurement m;
  m.compressed_bytes = store.total_bytes_fetched();
  m.uncompressed_bytes = rows * sizeof(double);
  m.single_thread_decompress_seconds = decompress_seconds;
  s3sim::ScanResult r = s3sim::SimulateScan(m, store.config());
  std::printf("modeled scan: %.4f s, $%.8f (%s-bound), T_r %.1f GB/s\n",
              r.seconds, r.cost_usd, r.network_bound ? "network" : "CPU",
              r.tr_gbps);

  // 4. Point query with zone-map pruning: "count(*) WHERE i_col = probe".
  //    Zone maps live outside the data (paper Section 2.1); only blocks
  //    whose [min, max] may contain the probe are fetched — with *ranged*
  //    GETs — and counted directly on the compressed form (Section 7).
  {
    // Choose the integer column (and probe) where zone pruning skips the
    // most blocks — clustered columns (e.g. sequential ids) prune best.
    const Column* int_column = nullptr;
    size_t int_index = 0;
    ColumnZoneMap zones;
    i32 probe = 0;
    size_t best_pruned = 0;
    for (size_t c = 0; c < table.columns().size(); c++) {
      const Column& candidate = table.columns()[c];
      if (candidate.type() != ColumnType::kInteger) continue;
      ColumnZoneMap candidate_zones = ComputeColumnZoneMap(candidate);
      i32 candidate_probe = candidate.ints()[candidate.size() - 1];
      size_t pruned = 0;
      for (const BlockZone& zone : candidate_zones.zones) {
        pruned += !ZoneMayContainInt(zone, candidate_probe);
      }
      if (int_column == nullptr || pruned > best_pruned) {
        int_column = &candidate;
        int_index = c;
        zones = std::move(candidate_zones);
        probe = candidate_probe;
        best_pruned = pruned;
      }
    }

    const CompressedColumn& cc = compressed.columns[int_index];
    // Block byte offsets inside the column object (header layout above).
    u64 header_bytes = 4 + 4ull * cc.blocks.size();
    std::vector<u64> offsets{header_bytes};
    for (const ByteBuffer& block : cc.blocks) {
      offsets.push_back(offsets.back() + block.size());
    }

    store.ResetAccounting();
    u32 fetched_blocks = 0;
    u64 matches = 0;
    std::vector<u8> chunk;
    for (size_t b = 0; b < cc.blocks.size(); b++) {
      if (!ZoneMayContainInt(zones.zones[b], probe)) continue;  // pruned
      fetched_blocks++;
      store.GetChunk("lake/sales/" + cc.name, offsets[b],
                     offsets[b + 1] - offsets[b], &chunk);
      ByteBuffer padded;
      padded.Append(chunk.data(), chunk.size());
      matches += CountEqualsInt(padded.data(), probe, config);
    }
    std::printf(
        "\npoint query on '%s' = %d: zone maps pruned %zu of %zu blocks, "
        "%u ranged GETs (%.1f KiB), %llu matches counted on compressed "
        "blocks\n",
        cc.name.c_str(), probe, cc.blocks.size() - fetched_blocks,
        cc.blocks.size(), fetched_blocks,
        store.total_bytes_fetched() / 1024.0,
        static_cast<unsigned long long>(matches));
  }
  return 0;
}
