// Simulated S3-style object store and end-to-end scan cost model
// (paper Section 6.7). AWS is unavailable offline, so network transfer
// and billing are *modeled* with the constants the paper states, while
// decompression time is *measured* on this machine:
//   - c5n.18xlarge: 100 Gbit/s network, $3.89/h instance rate,
//   - $0.0004 per 1000 GET requests, 16 MiB chunks per request
//     (S3 performance guidelines),
//   - decompression parallelized over columns/blocks across `cores`
//     (the paper's instance has 36 cores; measured single-thread seconds
//     are divided by the modeled core count).
//
// The distinction the paper draws between T_r (uncompressed bytes /
// scan time — what the consumer sees) and T_c (compressed bytes / scan
// time — what the network must sustain) falls out of the model directly.
#ifndef BTR_S3SIM_OBJECT_STORE_H_
#define BTR_S3SIM_OBJECT_STORE_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/buffer.h"
#include "util/types.h"

namespace btr::s3sim {

struct S3Config {
  double network_gbps = 100.0;            // instance NIC, Gbit/s
  double request_cost_usd = 0.0004 / 1000.0;  // per GET
  double instance_cost_per_hour = 3.89;   // c5n.18xlarge on-demand
  u64 chunk_bytes = 16ull << 20;          // bytes fetched per GET
  double first_byte_latency_s = 0.030;    // pipeline fill, paid once
  u32 cores = 36;                         // modeled decompression cores

  // --- wall-clock simulation (pipelined scan engine) -----------------------
  // When true, GetChunk additionally *sleeps* for a per-request first-byte
  // latency plus the per-connection transfer time, so the bounded-queue
  // pipeline (exec/pipeline.h, btr::Scanner) has real network time to hide:
  // concurrent fetch threads overlap their latencies with each other and
  // with decompression, exactly what the analytic SimulateScan model cannot
  // capture. Accounting (requests/bytes/network_seconds) is unaffected.
  bool simulate_wall_clock = false;
  double wall_clock_request_latency_s = 0.002;  // per-GET first-byte latency
  double wall_clock_gbps = 2.0;                 // per-connection bandwidth
};

// In-memory object store with request accounting. Objects are opaque
// byte blobs; GetChunk models one ranged GET.
//
// Thread safety: GetChunk/GetObject and the accounting getters may be
// called from any number of threads concurrently (the scan pipeline's
// fetch threads do). Put must not race with readers of the same store.
class ObjectStore {
 public:
  explicit ObjectStore(const S3Config& config = S3Config()) : config_(config) {}

  void Put(const std::string& key, const u8* data, size_t size);
  bool Contains(const std::string& key) const;
  size_t ObjectSize(const std::string& key) const;

  // Reads [offset, offset+length) into out (resized). Accounts one GET
  // request and the modeled transfer time.
  void GetChunk(const std::string& key, u64 offset, u64 length,
                std::vector<u8>* out);

  // Fetches a whole object as a sequence of chunk_bytes GETs.
  void GetObject(const std::string& key, std::vector<u8>* out);

  u64 total_requests() const;
  u64 total_bytes_fetched() const;
  // Modeled seconds the network was busy (requests overlap; latency
  // is handled by the scan model, not accumulated per request).
  double network_seconds() const;
  void ResetAccounting();

  const S3Config& config() const { return config_; }
  S3Config& mutable_config() { return config_; }

 private:
  S3Config config_;
  std::unordered_map<std::string, std::vector<u8>> objects_;
  mutable std::mutex accounting_mutex_;
  u64 total_requests_ = 0;
  u64 total_bytes_fetched_ = 0;
  double network_seconds_ = 0;
};

// One scan's inputs: sizes plus the measured single-thread CPU cost.
struct ScanMeasurement {
  u64 compressed_bytes = 0;
  u64 uncompressed_bytes = 0;
  double single_thread_decompress_seconds = 0;
};

struct ScanResult {
  double seconds = 0;       // end-to-end scan wall clock (modeled)
  u64 requests = 0;
  double cost_usd = 0;      // instance time + request cost
  double tr_gbps = 0;       // T_r: uncompressed GB/s delivered
  double tc_gbit = 0;       // T_c: compressed Gbit/s over the network
  bool network_bound = false;
};

// Network transfer overlaps decompression; the slower side dominates.
ScanResult SimulateScan(const ScanMeasurement& m, const S3Config& config);

}  // namespace btr::s3sim

#endif  // BTR_S3SIM_OBJECT_STORE_H_
