// Simulated S3-style object store and end-to-end scan cost model
// (paper Section 6.7). AWS is unavailable offline, so network transfer
// and billing are *modeled* with the constants the paper states, while
// decompression time is *measured* on this machine:
//   - c5n.18xlarge: 100 Gbit/s network, $3.89/h instance rate,
//   - $0.0004 per 1000 GET requests, 16 MiB chunks per request
//     (S3 performance guidelines),
//   - decompression parallelized over columns/blocks across `cores`
//     (the paper's instance has 36 cores; measured single-thread seconds
//     are divided by the modeled core count).
//
// The distinction the paper draws between T_r (uncompressed bytes /
// scan time — what the consumer sees) and T_c (compressed bytes / scan
// time — what the network must sustain) falls out of the model directly.
//
// The store also models *failure*: an installed FaultPlan (s3sim/fault.h)
// makes GETs return transient errors (Status::Throttled/Unavailable), add
// latency spikes, truncate ranges, or flip payload bytes — deterministic
// per (seed, request sequence), so chaos schedules replay exactly. The
// read path (exec::Prefetcher + btr::Scanner) is expected to retry the
// transient kinds and *detect* the corrupting ones via block CRCs. PUT
// rules do the same to the write path — failed, torn, corrupted or
// crash-interrupted writes — which the streaming writer must retry,
// verify, and recover from (src/write/, docs/WRITE_PATH.md).
#ifndef BTR_S3SIM_OBJECT_STORE_H_
#define BTR_S3SIM_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "s3sim/fault.h"
#include "util/buffer.h"
#include "util/random.h"
#include "util/status.h"
#include "util/types.h"

namespace btr::s3sim {

struct S3Config {
  double network_gbps = 100.0;            // instance NIC, Gbit/s
  double request_cost_usd = 0.0004 / 1000.0;  // per GET
  double instance_cost_per_hour = 3.89;   // c5n.18xlarge on-demand
  u64 chunk_bytes = 16ull << 20;          // bytes fetched per GET
  double first_byte_latency_s = 0.030;    // pipeline fill, paid once
  u32 cores = 36;                         // modeled decompression cores

  // --- wall-clock simulation (pipelined scan engine) -----------------------
  // When true, GetChunk additionally *sleeps* for a per-request first-byte
  // latency plus the per-connection transfer time, so the bounded-queue
  // pipeline (exec/pipeline.h, btr::Scanner) has real network time to hide:
  // concurrent fetch threads overlap their latencies with each other and
  // with decompression, exactly what the analytic SimulateScan model cannot
  // capture. Accounting (requests/bytes/network_seconds) is unaffected.
  bool simulate_wall_clock = false;
  double wall_clock_request_latency_s = 0.002;  // per-GET first-byte latency
  double wall_clock_gbps = 2.0;                 // per-connection bandwidth
};

// One staged part of a multipart upload, as ListParts reports it.
struct PartInfo {
  u32 part_number = 0;
  u64 size = 0;
  u32 crc32c = 0;  // CRC32C of the part bytes as stored
};

// In-memory object store with request accounting and optional fault
// injection. Objects are opaque byte blobs; GetChunk models one ranged GET.
//
// Thread safety: every member may be called from any number of threads
// concurrently, including Put racing readers of the same key — object
// bytes are immutable once stored, and a racing Put swaps in a fresh blob
// while in-flight GETs keep reading the one they resolved.
class ObjectStore {
 public:
  explicit ObjectStore(const S3Config& config = S3Config()) : config_(config) {}

  // Stores the object, replacing any previous bytes atomically. PUT-class
  // faults apply (see fault.h): the call can fail transiently
  // (Throttled/Unavailable — safe to retry), fail like a mid-call process
  // death (IoError with the write applied or not), or *silently* store
  // torn/corrupt bytes — which is why the commit protocol verifies what
  // actually landed before publishing (docs/WRITE_PATH.md).
  [[nodiscard]] Status Put(const std::string& key, const u8* data, size_t size);
  // Removes the object. Idempotent (Ok when the key does not exist) and
  // never faulted: recovery's garbage collection must be able to converge.
  Status Delete(const std::string& key);
  bool Contains(const std::string& key) const;
  // Status::NotFound when the key does not exist.
  Status ObjectSize(const std::string& key, u64* size) const;
  // Keys starting with `prefix`, sorted. Metadata-plane: never faults.
  std::vector<std::string> ListKeys(const std::string& prefix = "") const;

  // --- multipart uploads -----------------------------------------------------
  // The resumable staging primitive the streaming write path builds on
  // (S3 semantics): parts upload independently and in any order, re-upload
  // of a part number replaces it, and nothing is visible under `key` until
  // CompleteMultipartUpload concatenates the parts in part-number order
  // and publishes the object atomically. An interrupted upload keeps its
  // parts server-side — ListMultipartUploads/ListParts let a recovery pass
  // resume or abort it. Create/Abort/List are metadata-plane (never
  // faulted); UploadPart and Complete are PUT-class requests and take
  // faults like Put.
  Status CreateMultipartUpload(const std::string& key, std::string* upload_id);
  [[nodiscard]] Status UploadPart(const std::string& upload_id, u32 part_number,
                                  const u8* data, size_t size);
  [[nodiscard]] Status CompleteMultipartUpload(const std::string& upload_id);
  // Idempotent: Ok when the upload is unknown (already completed/aborted).
  Status AbortMultipartUpload(const std::string& upload_id);
  // Target key and staged parts (part-number order) of an open upload.
  Status ListParts(const std::string& upload_id, std::string* key,
                   std::vector<PartInfo>* parts) const;
  // Upload ids whose target key starts with `key_prefix`, sorted.
  std::vector<std::string> ListMultipartUploads(
      const std::string& key_prefix = "") const;

  // Reads [offset, offset+length) into out (resized; a range reaching past
  // the end is clipped). Accounts one GET request and the modeled transfer
  // time. Fails with NotFound (unknown key), InvalidArgument (offset past
  // the object end), or an injected fault's status — transient ones
  // (Throttled/Unavailable) are safe to retry.
  Status GetChunk(const std::string& key, u64 offset, u64 length,
                  std::vector<u8>* out);

  // Fetches a whole object as a sequence of chunk_bytes GETs.
  Status GetObject(const std::string& key, std::vector<u8>* out);

  // --- fault injection -------------------------------------------------------
  // Installs a plan (replacing any previous one) and re-arms its rules.
  // Faults apply to GetChunk/GetObject (kGet rules) and to
  // Put/UploadPart/CompleteMultipartUpload (kPut rules); Delete, Contains,
  // ObjectSize, listing and upload create/abort are metadata-plane and
  // never fault.
  void InstallFaultPlan(FaultPlan plan);
  void ClearFaultPlan();
  // Requests that an installed plan failed, tore, corrupted, or delayed.
  u64 faults_injected() const;

  u64 total_requests() const;
  u64 total_bytes_fetched() const;
  // PUT-class requests (Put/UploadPart/Complete), including failed ones.
  u64 total_put_requests() const;
  u64 total_bytes_put() const;  // bytes that actually landed
  // Modeled seconds the network was busy (requests overlap; latency
  // is handled by the scan model, not accumulated per request).
  double network_seconds() const;
  void ResetAccounting();

  const S3Config& config() const { return config_; }
  S3Config& mutable_config() { return config_; }

 private:
  struct FaultDecision {
    bool fired = false;
    FaultKind kind = FaultKind::kUnavailable;
    u64 latency_ns = 0;
    u64 truncate_to = 0;
    u64 corrupt_offset = 0;
  };
  // Matches one request against the installed plan (rule counters
  // advance). `offset` is the GET offset, or the part number for
  // UploadPart — either way a targeting dimension for rules.
  FaultDecision EvaluateFaults(const std::string& key, u64 offset,
                               FaultOp op = FaultOp::kGet);
  // Shared body of Put-like writes: applies a PUT fault decision to the
  // bytes (tear/flip/drop) and reports what to store and what to return.
  Status ApplyPutFault(const FaultDecision& fault, const std::string& key,
                       const u8* data, size_t size, std::vector<u8>* stored,
                       bool* apply_write);

  S3Config config_;

  // Object bytes are immutable shared blobs: Put publishes a new blob
  // under the mutex, readers resolve the pointer under the mutex and then
  // copy without holding it.
  using Blob = std::shared_ptr<const std::vector<u8>>;
  mutable std::mutex objects_mutex_;
  std::unordered_map<std::string, Blob> objects_;

  // Multipart staging area: parts live outside objects_ until Complete
  // concatenates and publishes them. Guarded by objects_mutex_ (uploads
  // and objects transition into each other atomically on Complete).
  struct MultipartUpload {
    std::string key;
    std::map<u32, Blob> parts;  // part number -> staged bytes
  };
  std::map<std::string, MultipartUpload> uploads_;  // upload id -> state
  u64 next_upload_id_ = 1;

  mutable std::mutex fault_mutex_;
  FaultPlan fault_plan_;
  Random fault_rng_;
  std::vector<u64> rule_matches_;  // per rule: requests that satisfied it
  std::vector<u64> rule_fires_;    // per rule: times it actually fired
  u64 faults_injected_ = 0;

  mutable std::mutex accounting_mutex_;
  u64 total_requests_ = 0;
  u64 total_bytes_fetched_ = 0;
  u64 total_put_requests_ = 0;
  u64 total_bytes_put_ = 0;
  double network_seconds_ = 0;
};

// One scan's inputs: sizes plus the measured single-thread CPU cost.
struct ScanMeasurement {
  u64 compressed_bytes = 0;
  u64 uncompressed_bytes = 0;
  double single_thread_decompress_seconds = 0;
};

struct ScanResult {
  double seconds = 0;       // end-to-end scan wall clock (modeled)
  u64 requests = 0;
  double cost_usd = 0;      // instance time + request cost
  double tr_gbps = 0;       // T_r: uncompressed GB/s delivered
  double tc_gbit = 0;       // T_c: compressed Gbit/s over the network
  bool network_bound = false;
};

// Network transfer overlaps decompression; the slower side dominates.
ScanResult SimulateScan(const ScanMeasurement& m, const S3Config& config);

}  // namespace btr::s3sim

#endif  // BTR_S3SIM_OBJECT_STORE_H_
