#include "s3sim/object_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32c.h"
#include "util/timer.h"

namespace btr::s3sim {

namespace {

// Per-GET observability: request count, ranged-GET size distribution, and
// both the *modeled* network latency (what the cost model charges) and the
// *measured* in-memory serve time. Fault counters track what an installed
// FaultPlan did to the request stream.
struct GetMetrics {
  obs::Counter& requests;
  obs::Counter& bytes_total;
  obs::Histogram& bytes;
  obs::Histogram& modeled_network_ns;
  obs::Histogram& serve_ns;
  obs::Counter& faults_injected;
  obs::Counter& faults_transient;
  obs::Counter& faults_data;  // truncations + corruptions

  static GetMetrics& Get() {
    static GetMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new GetMetrics{r.GetCounter("s3.get.requests"),
                            r.GetCounter("s3.get.bytes_total"),
                            r.GetHistogram("s3.get.bytes"),
                            r.GetHistogram("s3.get.modeled_network_ns"),
                            r.GetHistogram("s3.get.serve_ns"),
                            r.GetCounter("s3.get.faults_injected"),
                            r.GetCounter("s3.get.faults_transient"),
                            r.GetCounter("s3.get.faults_data")};
    }();
    return *m;
  }
};

// PUT-side observability, mirroring GetMetrics.
struct PutMetrics {
  obs::Counter& requests;
  obs::Counter& bytes_total;
  obs::Counter& faults_injected;
  obs::Counter& faults_transient;
  obs::Counter& faults_data;  // torn and corrupted writes

  static PutMetrics& Get() {
    static PutMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new PutMetrics{r.GetCounter("s3.put.requests"),
                            r.GetCounter("s3.put.bytes_total"),
                            r.GetCounter("s3.put.faults_injected"),
                            r.GetCounter("s3.put.faults_transient"),
                            r.GetCounter("s3.put.faults_data")};
    }();
    return *m;
  }
};

}  // namespace

Status ObjectStore::ApplyPutFault(const FaultDecision& fault,
                                  const std::string& key, const u8* data,
                                  size_t size, std::vector<u8>* stored,
                                  bool* apply_write) {
  PutMetrics& metrics = PutMetrics::Get();
  *apply_write = true;
  stored->assign(data, data + size);
  if (!fault.fired) return Status::Ok();
  metrics.faults_injected.Add();
  switch (fault.kind) {
    case FaultKind::kThrottle:
      metrics.faults_transient.Add();
      *apply_write = false;
      return Status::Throttled("injected throttle on PUT " + key);
    case FaultKind::kUnavailable:
      metrics.faults_transient.Add();
      *apply_write = false;
      return Status::Unavailable("injected unavailability on PUT " + key);
    case FaultKind::kLatency:
      metrics.faults_transient.Add();
      std::this_thread::sleep_for(std::chrono::nanoseconds(fault.latency_ns));
      return Status::Ok();
    case FaultKind::kTruncate:
      // Silent torn write: a prefix lands, success is reported.
      metrics.faults_data.Add();
      stored->resize(std::min<u64>(size, fault.truncate_to));
      return Status::Ok();
    case FaultKind::kCorrupt:
      metrics.faults_data.Add();
      if (!stored->empty()) {
        (*stored)[fault.corrupt_offset % stored->size()] ^= 0x01;
      }
      return Status::Ok();
    case FaultKind::kPartialPart:
      // Reported torn write: a prefix lands, the request fails transiently.
      metrics.faults_data.Add();
      stored->resize(std::min<u64>(size, fault.truncate_to));
      return Status::Unavailable("injected partial write on PUT " + key);
    case FaultKind::kCrashBeforeWrite:
      metrics.faults_transient.Add();
      *apply_write = false;
      return Status::IoError("injected crash before PUT " + key);
    case FaultKind::kCrashAfterWrite:
      metrics.faults_transient.Add();
      return Status::IoError("injected crash after PUT " + key);
  }
  return Status::Ok();
}

Status ObjectStore::Put(const std::string& key, const u8* data, size_t size) {
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    total_put_requests_++;
  }
  PutMetrics::Get().requests.Add();
  FaultDecision fault = EvaluateFaults(key, 0, FaultOp::kPut);
  std::vector<u8> stored;
  bool apply_write = true;
  Status status = ApplyPutFault(fault, key, data, size, &stored, &apply_write);
  if (apply_write) {
    {
      std::lock_guard<std::mutex> lock(accounting_mutex_);
      total_bytes_put_ += stored.size();
    }
    PutMetrics::Get().bytes_total.Add(stored.size());
    Blob blob = std::make_shared<const std::vector<u8>>(std::move(stored));
    std::lock_guard<std::mutex> lock(objects_mutex_);
    objects_[key] = std::move(blob);
  }
  return status;
}

Status ObjectStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  objects_.erase(key);
  return Status::Ok();
}

std::vector<std::string> ObjectStore::ListKeys(const std::string& prefix) const {
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    for (const auto& [key, blob] : objects_) {
      if (key.compare(0, prefix.size(), prefix) == 0) keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status ObjectStore::CreateMultipartUpload(const std::string& key,
                                          std::string* upload_id) {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  *upload_id = "mpu-" + std::to_string(next_upload_id_++);
  uploads_[*upload_id].key = key;
  return Status::Ok();
}

Status ObjectStore::UploadPart(const std::string& upload_id, u32 part_number,
                               const u8* data, size_t size) {
  if (part_number == 0) {
    return Status::InvalidArgument("part numbers are 1-based");
  }
  std::string key;
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    auto it = uploads_.find(upload_id);
    if (it == uploads_.end()) {
      return Status::NotFound("unknown multipart upload: " + upload_id);
    }
    key = it->second.key;
  }
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    total_put_requests_++;
  }
  PutMetrics::Get().requests.Add();
  FaultDecision fault = EvaluateFaults(key, part_number, FaultOp::kPut);
  std::vector<u8> stored;
  bool apply_write = true;
  Status status = ApplyPutFault(fault, key, data, size, &stored, &apply_write);
  if (apply_write) {
    {
      std::lock_guard<std::mutex> lock(accounting_mutex_);
      total_bytes_put_ += stored.size();
    }
    PutMetrics::Get().bytes_total.Add(stored.size());
    Blob blob = std::make_shared<const std::vector<u8>>(std::move(stored));
    std::lock_guard<std::mutex> lock(objects_mutex_);
    auto it = uploads_.find(upload_id);
    if (it == uploads_.end()) {
      return Status::NotFound("unknown multipart upload: " + upload_id);
    }
    it->second.parts[part_number] = std::move(blob);
  }
  return status;
}

Status ObjectStore::CompleteMultipartUpload(const std::string& upload_id) {
  std::string key;
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    auto it = uploads_.find(upload_id);
    if (it == uploads_.end()) {
      return Status::NotFound("unknown multipart upload: " + upload_id);
    }
    key = it->second.key;
    if (it->second.parts.empty()) {
      return Status::InvalidArgument("multipart upload has no parts: " +
                                     upload_id);
    }
  }
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    total_put_requests_++;
  }
  PutMetrics::Get().requests.Add();
  FaultDecision fault = EvaluateFaults(key, 0, FaultOp::kPut);
  if (fault.fired) {
    PutMetrics& metrics = PutMetrics::Get();
    metrics.faults_injected.Add();
    switch (fault.kind) {
      case FaultKind::kThrottle:
        metrics.faults_transient.Add();
        return Status::Throttled("injected throttle completing " + key);
      case FaultKind::kUnavailable:
      case FaultKind::kPartialPart:  // cannot partially complete: transient
        metrics.faults_transient.Add();
        return Status::Unavailable("injected unavailability completing " + key);
      case FaultKind::kLatency:
        metrics.faults_transient.Add();
        std::this_thread::sleep_for(std::chrono::nanoseconds(fault.latency_ns));
        break;
      case FaultKind::kCrashBeforeWrite:
        metrics.faults_transient.Add();
        return Status::IoError("injected crash before completing " + key);
      case FaultKind::kCrashAfterWrite:
      case FaultKind::kTruncate:
      case FaultKind::kCorrupt:
        // Handled below: the completed object publishes, then the ack is
        // lost. Truncate/corrupt make no sense for a concatenation; treat
        // them as the lost-ack crash so plans stay meaningful.
        break;
    }
  }
  bool lost_ack =
      fault.fired && (fault.kind == FaultKind::kCrashAfterWrite ||
                      fault.kind == FaultKind::kTruncate ||
                      fault.kind == FaultKind::kCorrupt);
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    auto it = uploads_.find(upload_id);
    if (it == uploads_.end()) {
      return Status::NotFound("unknown multipart upload: " + upload_id);
    }
    // Concatenate in ascending part-number order and publish atomically:
    // readers of `key` see the old object (or nothing) until this swap.
    auto assembled = std::make_shared<std::vector<u8>>();
    size_t total = 0;
    for (const auto& [number, part] : it->second.parts) total += part->size();
    assembled->reserve(total);
    for (const auto& [number, part] : it->second.parts) {
      assembled->insert(assembled->end(), part->begin(), part->end());
    }
    objects_[it->second.key] = std::move(assembled);
    uploads_.erase(it);
  }
  if (lost_ack) {
    PutMetrics::Get().faults_transient.Add();
    return Status::IoError("injected crash after completing " + key);
  }
  return Status::Ok();
}

Status ObjectStore::AbortMultipartUpload(const std::string& upload_id) {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  uploads_.erase(upload_id);
  return Status::Ok();
}

Status ObjectStore::ListParts(const std::string& upload_id, std::string* key,
                              std::vector<PartInfo>* parts) const {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  auto it = uploads_.find(upload_id);
  if (it == uploads_.end()) {
    return Status::NotFound("unknown multipart upload: " + upload_id);
  }
  if (key != nullptr) *key = it->second.key;
  if (parts != nullptr) {
    parts->clear();
    for (const auto& [number, part] : it->second.parts) {
      parts->push_back(
          {number, part->size(), Crc32c(part->data(), part->size())});
    }
  }
  return Status::Ok();
}

std::vector<std::string> ObjectStore::ListMultipartUploads(
    const std::string& key_prefix) const {
  std::vector<std::string> ids;
  std::lock_guard<std::mutex> lock(objects_mutex_);
  for (const auto& [id, upload] : uploads_) {
    if (upload.key.compare(0, key_prefix.size(), key_prefix) == 0) {
      ids.push_back(id);
    }
  }
  return ids;  // std::map iteration: already sorted by id
}

bool ObjectStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  return objects_.count(key) > 0;
}

Status ObjectStore::ObjectSize(const std::string& key, u64* size) const {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("object not found: " + key);
  *size = it->second->size();
  return Status::Ok();
}

ObjectStore::FaultDecision ObjectStore::EvaluateFaults(const std::string& key,
                                                       u64 offset, FaultOp op) {
  FaultDecision decision;
  std::lock_guard<std::mutex> lock(fault_mutex_);
  if (fault_plan_.Empty()) return decision;
  // Every armed rule counts each matching request — "the 3rd GET of column
  // 2" means the 3rd GET, independent of what other rules did to GETs 1
  // and 2. At most one fault fires per request: the first eligible rule in
  // plan order.
  for (size_t i = 0; i < fault_plan_.rules.size(); i++) {
    const FaultRule& rule = fault_plan_.rules[i];
    if (rule.op != op) continue;
    if (rule_fires_[i] >= rule.max_fires) continue;
    if (!rule.key_substring.empty() &&
        key.find(rule.key_substring) == std::string::npos) {
      continue;
    }
    if (offset < rule.offset_min || offset > rule.offset_max) continue;
    rule_matches_[i]++;
    if (decision.fired) continue;
    if (rule.ordinal != 0 && rule_matches_[i] != rule.ordinal) continue;
    if (rule.probability < 1.0 && fault_rng_.NextDouble() >= rule.probability) {
      continue;
    }
    rule_fires_[i]++;
    faults_injected_++;
    decision.fired = true;
    decision.kind = rule.kind;
    decision.latency_ns = rule.latency_ns;
    decision.truncate_to = rule.truncate_to;
    decision.corrupt_offset = rule.corrupt_offset == ~0ull
                                  ? fault_rng_.Next()
                                  : rule.corrupt_offset;
  }
  return decision;
}

Status ObjectStore::GetChunk(const std::string& key, u64 offset, u64 length,
                             std::vector<u8>* out) {
  BTR_TRACE_SPAN("s3.get_chunk");
  Timer timer;
  GetMetrics& metrics = GetMetrics::Get();

  Blob blob;
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    auto it = objects_.find(key);
    if (it != objects_.end()) blob = it->second;
  }
  // Every attempt is a billable request, including ones the backend fails.
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    total_requests_++;
  }
  metrics.requests.Add();
  if (blob == nullptr) return Status::NotFound("object not found: " + key);
  const std::vector<u8>& object = *blob;
  if (offset > object.size()) {
    return Status::InvalidArgument("offset past end of object: " + key);
  }
  length = std::min<u64>(length, object.size() - offset);

  FaultDecision fault = EvaluateFaults(key, offset);
  if (fault.fired) {
    metrics.faults_injected.Add();
    switch (fault.kind) {
      case FaultKind::kThrottle:
        metrics.faults_transient.Add();
        return Status::Throttled("injected throttle on " + key);
      case FaultKind::kUnavailable:
        metrics.faults_transient.Add();
        return Status::Unavailable("injected unavailability on " + key);
      case FaultKind::kLatency:
        metrics.faults_transient.Add();
        std::this_thread::sleep_for(std::chrono::nanoseconds(fault.latency_ns));
        break;
      case FaultKind::kTruncate:
        metrics.faults_data.Add();
        length = std::min<u64>(length, fault.truncate_to);
        break;
      case FaultKind::kCorrupt:
        metrics.faults_data.Add();
        break;
      case FaultKind::kPartialPart:
      case FaultKind::kCrashBeforeWrite:
      case FaultKind::kCrashAfterWrite:
        // PUT-only kinds; a plan that aims one at a GET degrades to a
        // transient failure rather than silently doing nothing.
        metrics.faults_transient.Add();
        return Status::Unavailable("injected unavailability on " + key);
    }
  }

  out->resize(length);
  if (length > 0) std::memcpy(out->data(), object.data() + offset, length);
  if (fault.fired && fault.kind == FaultKind::kCorrupt && length > 0) {
    (*out)[fault.corrupt_offset % length] ^= 0x01;  // single flipped bit
  }
  double modeled_seconds =
      static_cast<double>(length) * 8.0 / (config_.network_gbps * 1e9);
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    total_bytes_fetched_ += length;
    network_seconds_ += modeled_seconds;
  }
  if (config_.simulate_wall_clock) {
    double sleep_seconds =
        config_.wall_clock_request_latency_s +
        static_cast<double>(length) * 8.0 / (config_.wall_clock_gbps * 1e9);
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  metrics.bytes_total.Add(length);
  metrics.bytes.Record(length);
  metrics.modeled_network_ns.Record(static_cast<u64>(modeled_seconds * 1e9));
  metrics.serve_ns.Record(static_cast<u64>(timer.ElapsedNanos()));
  return Status::Ok();
}

Status ObjectStore::GetObject(const std::string& key, std::vector<u8>* out) {
  BTR_TRACE_SPAN("s3.get_object");
  u64 size = 0;
  BTR_RETURN_IF_ERROR(ObjectSize(key, &size));
  out->clear();
  out->reserve(size);
  std::vector<u8> chunk;
  for (u64 offset = 0; offset < size; offset += config_.chunk_bytes) {
    BTR_RETURN_IF_ERROR(GetChunk(key, offset, config_.chunk_bytes, &chunk));
    out->insert(out->end(), chunk.begin(), chunk.end());
  }
  return Status::Ok();
}

void ObjectStore::InstallFaultPlan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_plan_ = std::move(plan);
  fault_rng_ = Random(fault_plan_.seed);
  rule_matches_.assign(fault_plan_.rules.size(), 0);
  rule_fires_.assign(fault_plan_.rules.size(), 0);
  faults_injected_ = 0;
}

void ObjectStore::ClearFaultPlan() { InstallFaultPlan(FaultPlan()); }

u64 ObjectStore::faults_injected() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return faults_injected_;
}

u64 ObjectStore::total_requests() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return total_requests_;
}

u64 ObjectStore::total_bytes_fetched() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return total_bytes_fetched_;
}

u64 ObjectStore::total_put_requests() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return total_put_requests_;
}

u64 ObjectStore::total_bytes_put() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return total_bytes_put_;
}

double ObjectStore::network_seconds() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return network_seconds_;
}

void ObjectStore::ResetAccounting() {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  total_requests_ = 0;
  total_bytes_fetched_ = 0;
  total_put_requests_ = 0;
  total_bytes_put_ = 0;
  network_seconds_ = 0;
}

ScanResult SimulateScan(const ScanMeasurement& m, const S3Config& config) {
  ScanResult result;
  double network_seconds =
      static_cast<double>(m.compressed_bytes) * 8.0 / (config.network_gbps * 1e9);
  double decompress_seconds =
      m.single_thread_decompress_seconds / std::max(1u, config.cores);
  result.network_bound = network_seconds >= decompress_seconds;
  result.seconds = std::max(network_seconds, decompress_seconds) +
                   config.first_byte_latency_s;
  result.requests =
      (m.compressed_bytes + config.chunk_bytes - 1) / config.chunk_bytes;
  result.cost_usd =
      result.seconds / 3600.0 * config.instance_cost_per_hour +
      static_cast<double>(result.requests) * config.request_cost_usd;
  result.tr_gbps = static_cast<double>(m.uncompressed_bytes) / result.seconds / 1e9;
  result.tc_gbit =
      static_cast<double>(m.compressed_bytes) * 8.0 / result.seconds / 1e9;
  return result;
}

}  // namespace btr::s3sim
