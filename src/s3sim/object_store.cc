#include "s3sim/object_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace btr::s3sim {

namespace {

// Per-GET observability: request count, ranged-GET size distribution, and
// both the *modeled* network latency (what the cost model charges) and the
// *measured* in-memory serve time.
struct GetMetrics {
  obs::Counter& requests;
  obs::Counter& bytes_total;
  obs::Histogram& bytes;
  obs::Histogram& modeled_network_ns;
  obs::Histogram& serve_ns;

  static GetMetrics& Get() {
    static GetMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new GetMetrics{r.GetCounter("s3.get.requests"),
                            r.GetCounter("s3.get.bytes_total"),
                            r.GetHistogram("s3.get.bytes"),
                            r.GetHistogram("s3.get.modeled_network_ns"),
                            r.GetHistogram("s3.get.serve_ns")};
    }();
    return *m;
  }
};

}  // namespace

void ObjectStore::Put(const std::string& key, const u8* data, size_t size) {
  objects_[key].assign(data, data + size);
}

bool ObjectStore::Contains(const std::string& key) const {
  return objects_.count(key) > 0;
}

size_t ObjectStore::ObjectSize(const std::string& key) const {
  auto it = objects_.find(key);
  BTR_CHECK_MSG(it != objects_.end(), "object not found");
  return it->second.size();
}

void ObjectStore::GetChunk(const std::string& key, u64 offset, u64 length,
                           std::vector<u8>* out) {
  BTR_TRACE_SPAN("s3.get_chunk");
  Timer timer;
  // objects_ is only mutated by Put, which may not race readers; the
  // element data pointer is stable, so the copy can run unlocked.
  auto it = objects_.find(key);
  BTR_CHECK_MSG(it != objects_.end(), "object not found");
  const std::vector<u8>& object = it->second;
  BTR_CHECK(offset <= object.size());
  length = std::min<u64>(length, object.size() - offset);
  out->resize(length);
  std::memcpy(out->data(), object.data() + offset, length);
  double modeled_seconds =
      static_cast<double>(length) * 8.0 / (config_.network_gbps * 1e9);
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    total_requests_++;
    total_bytes_fetched_ += length;
    network_seconds_ += modeled_seconds;
  }
  if (config_.simulate_wall_clock) {
    double sleep_seconds =
        config_.wall_clock_request_latency_s +
        static_cast<double>(length) * 8.0 / (config_.wall_clock_gbps * 1e9);
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  GetMetrics& metrics = GetMetrics::Get();
  metrics.requests.Add();
  metrics.bytes_total.Add(length);
  metrics.bytes.Record(length);
  metrics.modeled_network_ns.Record(static_cast<u64>(modeled_seconds * 1e9));
  metrics.serve_ns.Record(static_cast<u64>(timer.ElapsedNanos()));
}

void ObjectStore::GetObject(const std::string& key, std::vector<u8>* out) {
  BTR_TRACE_SPAN("s3.get_object");
  size_t size = ObjectSize(key);
  out->clear();
  out->reserve(size);
  std::vector<u8> chunk;
  for (u64 offset = 0; offset < size; offset += config_.chunk_bytes) {
    GetChunk(key, offset, config_.chunk_bytes, &chunk);
    out->insert(out->end(), chunk.begin(), chunk.end());
  }
}

u64 ObjectStore::total_requests() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return total_requests_;
}

u64 ObjectStore::total_bytes_fetched() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return total_bytes_fetched_;
}

double ObjectStore::network_seconds() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return network_seconds_;
}

void ObjectStore::ResetAccounting() {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  total_requests_ = 0;
  total_bytes_fetched_ = 0;
  network_seconds_ = 0;
}

ScanResult SimulateScan(const ScanMeasurement& m, const S3Config& config) {
  ScanResult result;
  double network_seconds =
      static_cast<double>(m.compressed_bytes) * 8.0 / (config.network_gbps * 1e9);
  double decompress_seconds =
      m.single_thread_decompress_seconds / std::max(1u, config.cores);
  result.network_bound = network_seconds >= decompress_seconds;
  result.seconds = std::max(network_seconds, decompress_seconds) +
                   config.first_byte_latency_s;
  result.requests =
      (m.compressed_bytes + config.chunk_bytes - 1) / config.chunk_bytes;
  result.cost_usd =
      result.seconds / 3600.0 * config.instance_cost_per_hour +
      static_cast<double>(result.requests) * config.request_cost_usd;
  result.tr_gbps = static_cast<double>(m.uncompressed_bytes) / result.seconds / 1e9;
  result.tc_gbit =
      static_cast<double>(m.compressed_bytes) * 8.0 / result.seconds / 1e9;
  return result;
}

}  // namespace btr::s3sim
