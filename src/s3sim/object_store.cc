#include "s3sim/object_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace btr::s3sim {

namespace {

// Per-GET observability: request count, ranged-GET size distribution, and
// both the *modeled* network latency (what the cost model charges) and the
// *measured* in-memory serve time. Fault counters track what an installed
// FaultPlan did to the request stream.
struct GetMetrics {
  obs::Counter& requests;
  obs::Counter& bytes_total;
  obs::Histogram& bytes;
  obs::Histogram& modeled_network_ns;
  obs::Histogram& serve_ns;
  obs::Counter& faults_injected;
  obs::Counter& faults_transient;
  obs::Counter& faults_data;  // truncations + corruptions

  static GetMetrics& Get() {
    static GetMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new GetMetrics{r.GetCounter("s3.get.requests"),
                            r.GetCounter("s3.get.bytes_total"),
                            r.GetHistogram("s3.get.bytes"),
                            r.GetHistogram("s3.get.modeled_network_ns"),
                            r.GetHistogram("s3.get.serve_ns"),
                            r.GetCounter("s3.get.faults_injected"),
                            r.GetCounter("s3.get.faults_transient"),
                            r.GetCounter("s3.get.faults_data")};
    }();
    return *m;
  }
};

}  // namespace

void ObjectStore::Put(const std::string& key, const u8* data, size_t size) {
  Blob blob = std::make_shared<const std::vector<u8>>(data, data + size);
  std::lock_guard<std::mutex> lock(objects_mutex_);
  objects_[key] = std::move(blob);
}

bool ObjectStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  return objects_.count(key) > 0;
}

Status ObjectStore::ObjectSize(const std::string& key, u64* size) const {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("object not found: " + key);
  *size = it->second->size();
  return Status::Ok();
}

ObjectStore::FaultDecision ObjectStore::EvaluateFaults(const std::string& key,
                                                       u64 offset) {
  FaultDecision decision;
  std::lock_guard<std::mutex> lock(fault_mutex_);
  if (fault_plan_.Empty()) return decision;
  // Every armed rule counts each matching GET — "the 3rd GET of column 2"
  // means the 3rd GET, independent of what other rules did to GETs 1 and 2.
  // At most one fault fires per GET: the first eligible rule in plan order.
  for (size_t i = 0; i < fault_plan_.rules.size(); i++) {
    const FaultRule& rule = fault_plan_.rules[i];
    if (rule_fires_[i] >= rule.max_fires) continue;
    if (!rule.key_substring.empty() &&
        key.find(rule.key_substring) == std::string::npos) {
      continue;
    }
    if (offset < rule.offset_min || offset > rule.offset_max) continue;
    rule_matches_[i]++;
    if (decision.fired) continue;
    if (rule.ordinal != 0 && rule_matches_[i] != rule.ordinal) continue;
    if (rule.probability < 1.0 && fault_rng_.NextDouble() >= rule.probability) {
      continue;
    }
    rule_fires_[i]++;
    faults_injected_++;
    decision.fired = true;
    decision.kind = rule.kind;
    decision.latency_ns = rule.latency_ns;
    decision.truncate_to = rule.truncate_to;
    decision.corrupt_offset = rule.corrupt_offset == ~0ull
                                  ? fault_rng_.Next()
                                  : rule.corrupt_offset;
  }
  return decision;
}

Status ObjectStore::GetChunk(const std::string& key, u64 offset, u64 length,
                             std::vector<u8>* out) {
  BTR_TRACE_SPAN("s3.get_chunk");
  Timer timer;
  GetMetrics& metrics = GetMetrics::Get();

  Blob blob;
  {
    std::lock_guard<std::mutex> lock(objects_mutex_);
    auto it = objects_.find(key);
    if (it != objects_.end()) blob = it->second;
  }
  // Every attempt is a billable request, including ones the backend fails.
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    total_requests_++;
  }
  metrics.requests.Add();
  if (blob == nullptr) return Status::NotFound("object not found: " + key);
  const std::vector<u8>& object = *blob;
  if (offset > object.size()) {
    return Status::InvalidArgument("offset past end of object: " + key);
  }
  length = std::min<u64>(length, object.size() - offset);

  FaultDecision fault = EvaluateFaults(key, offset);
  if (fault.fired) {
    metrics.faults_injected.Add();
    switch (fault.kind) {
      case FaultKind::kThrottle:
        metrics.faults_transient.Add();
        return Status::Throttled("injected throttle on " + key);
      case FaultKind::kUnavailable:
        metrics.faults_transient.Add();
        return Status::Unavailable("injected unavailability on " + key);
      case FaultKind::kLatency:
        metrics.faults_transient.Add();
        std::this_thread::sleep_for(std::chrono::nanoseconds(fault.latency_ns));
        break;
      case FaultKind::kTruncate:
        metrics.faults_data.Add();
        length = std::min<u64>(length, fault.truncate_to);
        break;
      case FaultKind::kCorrupt:
        metrics.faults_data.Add();
        break;
    }
  }

  out->resize(length);
  if (length > 0) std::memcpy(out->data(), object.data() + offset, length);
  if (fault.fired && fault.kind == FaultKind::kCorrupt && length > 0) {
    (*out)[fault.corrupt_offset % length] ^= 0x01;  // single flipped bit
  }
  double modeled_seconds =
      static_cast<double>(length) * 8.0 / (config_.network_gbps * 1e9);
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    total_bytes_fetched_ += length;
    network_seconds_ += modeled_seconds;
  }
  if (config_.simulate_wall_clock) {
    double sleep_seconds =
        config_.wall_clock_request_latency_s +
        static_cast<double>(length) * 8.0 / (config_.wall_clock_gbps * 1e9);
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  metrics.bytes_total.Add(length);
  metrics.bytes.Record(length);
  metrics.modeled_network_ns.Record(static_cast<u64>(modeled_seconds * 1e9));
  metrics.serve_ns.Record(static_cast<u64>(timer.ElapsedNanos()));
  return Status::Ok();
}

Status ObjectStore::GetObject(const std::string& key, std::vector<u8>* out) {
  BTR_TRACE_SPAN("s3.get_object");
  u64 size = 0;
  BTR_RETURN_IF_ERROR(ObjectSize(key, &size));
  out->clear();
  out->reserve(size);
  std::vector<u8> chunk;
  for (u64 offset = 0; offset < size; offset += config_.chunk_bytes) {
    BTR_RETURN_IF_ERROR(GetChunk(key, offset, config_.chunk_bytes, &chunk));
    out->insert(out->end(), chunk.begin(), chunk.end());
  }
  return Status::Ok();
}

void ObjectStore::InstallFaultPlan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_plan_ = std::move(plan);
  fault_rng_ = Random(fault_plan_.seed);
  rule_matches_.assign(fault_plan_.rules.size(), 0);
  rule_fires_.assign(fault_plan_.rules.size(), 0);
  faults_injected_ = 0;
}

void ObjectStore::ClearFaultPlan() { InstallFaultPlan(FaultPlan()); }

u64 ObjectStore::faults_injected() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return faults_injected_;
}

u64 ObjectStore::total_requests() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return total_requests_;
}

u64 ObjectStore::total_bytes_fetched() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return total_bytes_fetched_;
}

double ObjectStore::network_seconds() const {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  return network_seconds_;
}

void ObjectStore::ResetAccounting() {
  std::lock_guard<std::mutex> lock(accounting_mutex_);
  total_requests_ = 0;
  total_bytes_fetched_ = 0;
  network_seconds_ = 0;
}

ScanResult SimulateScan(const ScanMeasurement& m, const S3Config& config) {
  ScanResult result;
  double network_seconds =
      static_cast<double>(m.compressed_bytes) * 8.0 / (config.network_gbps * 1e9);
  double decompress_seconds =
      m.single_thread_decompress_seconds / std::max(1u, config.cores);
  result.network_bound = network_seconds >= decompress_seconds;
  result.seconds = std::max(network_seconds, decompress_seconds) +
                   config.first_byte_latency_s;
  result.requests =
      (m.compressed_bytes + config.chunk_bytes - 1) / config.chunk_bytes;
  result.cost_usd =
      result.seconds / 3600.0 * config.instance_cost_per_hour +
      static_cast<double>(result.requests) * config.request_cost_usd;
  result.tr_gbps = static_cast<double>(m.uncompressed_bytes) / result.seconds / 1e9;
  result.tc_gbit =
      static_cast<double>(m.compressed_bytes) * 8.0 / result.seconds / 1e9;
  return result;
}

}  // namespace btr::s3sim
