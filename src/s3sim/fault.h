// Deterministic fault injection for the simulated object store.
//
// Real object stores return transient 503s, slow reads, truncated ranges
// and (rarely) flipped bits. A FaultPlan teaches s3sim::ObjectStore to
// produce exactly those anomalies, reproducibly: every decision is driven
// by the plan's seed and the store's request sequence, never by wall-clock
// or global randomness, so a failing chaos schedule replays bit-for-bit.
//
// A plan is a list of rules. Each request is matched against every rule in
// order; every armed rule whose conditions hold (operation class, key
// substring, offset window) counts the match, and the first rule that is
// also eligible to fire (ordinal reached, probability gate passed)
// determines the outcome — at most one fault per request. Targeted rules
// ("the 3rd GET of column 2") use `ordinal`; statistical chaos plans use
// `probability` (see MakeChaosPlan).
//
// Rules apply to one operation class (FaultOp): kGet covers GetChunk /
// GetObject, kPut covers Put / UploadPart / CompleteMultipartUpload — the
// write path a crash-safe ingester must survive (docs/WRITE_PATH.md). The
// default is kGet so plans written before the write path existed keep
// their exact meaning.
#ifndef BTR_S3SIM_FAULT_H_
#define BTR_S3SIM_FAULT_H_

#include <string>
#include <vector>

#include "util/types.h"

namespace btr::s3sim {

enum class FaultKind : u8 {
  kThrottle = 0,     // request fails with Status::Throttled
  kUnavailable = 1,  // request fails with Status::Unavailable
  kLatency = 2,      // request succeeds after an added latency spike
  kTruncate = 3,     // GET: fewer bytes than the range asked for.
                     // PUT: only a prefix of the bytes is stored and the
                     // request *reports success* — a silent torn write the
                     // commit protocol must detect by verification.
  kCorrupt = 4,      // GET: one byte of the response is flipped.
                     // PUT: one stored byte is flipped, success reported.
  kPartialPart = 5,  // PUT only: a prefix of the bytes lands, then the
                     // request fails with Status::Unavailable — a torn
                     // write the uploader is *told* about, so an
                     // idempotent retry must replace it.
  kCrashBeforeWrite = 6,  // PUT only: Status::IoError before any byte is
                          // applied — models the process dying mid-call.
  kCrashAfterWrite = 7,   // PUT only: the write applies fully, then
                          // Status::IoError — the ack was lost.
};

const char* FaultKindName(FaultKind kind);

// Which request class a rule matches.
enum class FaultOp : u8 { kGet = 0, kPut = 1 };

struct FaultRule {
  FaultKind kind = FaultKind::kUnavailable;
  // Operation class this rule applies to. Defaults to kGet: plans written
  // before PUT faults existed keep their exact behavior.
  FaultOp op = FaultOp::kGet;

  // --- match conditions (all must hold) -----------------------------------
  // Keys containing this substring match; empty matches every key.
  std::string key_substring;
  // Request offset must fall in [offset_min, offset_max]; the default
  // window matches any offset.
  u64 offset_min = 0;
  u64 offset_max = ~0ull;
  // When nonzero, the rule fires only on the Nth request (1-based) that
  // satisfies the conditions above — "the 3rd GET of column 2".
  u64 ordinal = 0;
  // Probability gate in [0, 1], evaluated with the plan's seeded PRNG.
  double probability = 1.0;
  // Rule disarms after firing this many times (default: once for targeted
  // rules is typical; ~0 = unlimited).
  u64 max_fires = ~0ull;

  // --- effect parameters ---------------------------------------------------
  u64 latency_ns = 0;        // kLatency: added spike
  u64 truncate_to = 0;       // kTruncate: byte count the response is cut to
  u64 corrupt_offset = ~0ull;  // kCorrupt: byte index within the response to
                               // flip; ~0 = seeded-random position

  // Targeted-rule conveniences.
  static FaultRule Throttle(std::string key_substring, u64 ordinal);
  static FaultRule Unavailable(std::string key_substring, u64 ordinal);
  static FaultRule Latency(std::string key_substring, u64 ordinal, u64 ns);
  static FaultRule Truncate(std::string key_substring, u64 ordinal, u64 to);
  static FaultRule Corrupt(std::string key_substring, u64 ordinal,
                           u64 byte_offset = ~0ull);

  // PUT-side conveniences (op = kPut). Ordinals count matching PUT-class
  // requests: Put, UploadPart and CompleteMultipartUpload.
  static FaultRule PutThrottle(std::string key_substring, u64 ordinal);
  static FaultRule PutUnavailable(std::string key_substring, u64 ordinal);
  static FaultRule PutPartialPart(std::string key_substring, u64 ordinal,
                                  u64 keep_bytes);
  static FaultRule PutTornWrite(std::string key_substring, u64 ordinal,
                                u64 keep_bytes);  // silent truncation
  static FaultRule PutCorrupt(std::string key_substring, u64 ordinal,
                              u64 byte_offset = ~0ull);
  static FaultRule PutCrashBefore(std::string key_substring, u64 ordinal);
  static FaultRule PutCrashAfter(std::string key_substring, u64 ordinal);
};

struct FaultPlan {
  // Drives every probabilistic decision (probability gates, random corrupt
  // positions). Same seed + same request sequence = same faults.
  u64 seed = 0;
  std::vector<FaultRule> rules;

  bool Empty() const { return rules.empty(); }
};

// A statistical chaos plan: every GET independently fails/degrades with
// `fault_rate` probability, split across the transient kinds; when
// `include_corruption` is set a small share of the faults are truncations
// and single-byte corruptions (the non-transient kinds a reader must
// *detect*, not retry through). Used by tests/chaos_test.cc.
FaultPlan MakeChaosPlan(u64 seed, double fault_rate,
                        bool include_corruption = false);

// Transient-only variant: throttles, unavailabilities and latency spikes,
// never corruption — a retrying reader must survive this end to end.
FaultPlan MakeTransientPlan(u64 seed, double fault_rate);

// Statistical chaos for the write path: every PUT-class request (Put,
// UploadPart, CompleteMultipartUpload) independently fails/degrades with
// `fault_rate` probability, split across throttles, unavailabilities,
// latency spikes and partial parts — all of them *reported* failures, so
// a retrying writer must converge to a bit-identical committed table.
// Used by tests/writer_test.cc and bench/bench_ingest.cc.
FaultPlan MakePutChaosPlan(u64 seed, double fault_rate);

}  // namespace btr::s3sim

#endif  // BTR_S3SIM_FAULT_H_
