#include "s3sim/fault.h"

namespace btr::s3sim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kThrottle: return "throttle";
    case FaultKind::kUnavailable: return "unavailable";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kPartialPart: return "partial_part";
    case FaultKind::kCrashBeforeWrite: return "crash_before_write";
    case FaultKind::kCrashAfterWrite: return "crash_after_write";
  }
  return "?";
}

namespace {

FaultRule Targeted(FaultKind kind, std::string key_substring, u64 ordinal) {
  FaultRule rule;
  rule.kind = kind;
  rule.key_substring = std::move(key_substring);
  rule.ordinal = ordinal;
  rule.max_fires = 1;
  return rule;
}

FaultRule TargetedPut(FaultKind kind, std::string key_substring, u64 ordinal) {
  FaultRule rule = Targeted(kind, std::move(key_substring), ordinal);
  rule.op = FaultOp::kPut;
  return rule;
}

}  // namespace

FaultRule FaultRule::Throttle(std::string key_substring, u64 ordinal) {
  return Targeted(FaultKind::kThrottle, std::move(key_substring), ordinal);
}

FaultRule FaultRule::Unavailable(std::string key_substring, u64 ordinal) {
  return Targeted(FaultKind::kUnavailable, std::move(key_substring), ordinal);
}

FaultRule FaultRule::Latency(std::string key_substring, u64 ordinal, u64 ns) {
  FaultRule rule = Targeted(FaultKind::kLatency, std::move(key_substring), ordinal);
  rule.latency_ns = ns;
  return rule;
}

FaultRule FaultRule::Truncate(std::string key_substring, u64 ordinal, u64 to) {
  FaultRule rule = Targeted(FaultKind::kTruncate, std::move(key_substring), ordinal);
  rule.truncate_to = to;
  return rule;
}

FaultRule FaultRule::Corrupt(std::string key_substring, u64 ordinal,
                             u64 byte_offset) {
  FaultRule rule = Targeted(FaultKind::kCorrupt, std::move(key_substring), ordinal);
  rule.corrupt_offset = byte_offset;
  return rule;
}

FaultRule FaultRule::PutThrottle(std::string key_substring, u64 ordinal) {
  return TargetedPut(FaultKind::kThrottle, std::move(key_substring), ordinal);
}

FaultRule FaultRule::PutUnavailable(std::string key_substring, u64 ordinal) {
  return TargetedPut(FaultKind::kUnavailable, std::move(key_substring), ordinal);
}

FaultRule FaultRule::PutPartialPart(std::string key_substring, u64 ordinal,
                                    u64 keep_bytes) {
  FaultRule rule =
      TargetedPut(FaultKind::kPartialPart, std::move(key_substring), ordinal);
  rule.truncate_to = keep_bytes;
  return rule;
}

FaultRule FaultRule::PutTornWrite(std::string key_substring, u64 ordinal,
                                  u64 keep_bytes) {
  FaultRule rule =
      TargetedPut(FaultKind::kTruncate, std::move(key_substring), ordinal);
  rule.truncate_to = keep_bytes;
  return rule;
}

FaultRule FaultRule::PutCorrupt(std::string key_substring, u64 ordinal,
                                u64 byte_offset) {
  FaultRule rule =
      TargetedPut(FaultKind::kCorrupt, std::move(key_substring), ordinal);
  rule.corrupt_offset = byte_offset;
  return rule;
}

FaultRule FaultRule::PutCrashBefore(std::string key_substring, u64 ordinal) {
  return TargetedPut(FaultKind::kCrashBeforeWrite, std::move(key_substring),
                     ordinal);
}

FaultRule FaultRule::PutCrashAfter(std::string key_substring, u64 ordinal) {
  return TargetedPut(FaultKind::kCrashAfterWrite, std::move(key_substring),
                     ordinal);
}

FaultPlan MakeChaosPlan(u64 seed, double fault_rate, bool include_corruption) {
  // Rules are evaluated in order and at most one fires per GET, so each
  // probability below is the unconditional per-GET rate of that kind
  // given the earlier rules did not fire; keeping the individual rates
  // small makes the total ≈ fault_rate without compounding corrections.
  FaultPlan plan;
  plan.seed = seed;
  double transient_share = include_corruption ? 0.70 : 0.85;
  double latency_share = include_corruption ? 0.15 : 0.15;

  FaultRule throttle;
  throttle.kind = FaultKind::kThrottle;
  throttle.probability = fault_rate * transient_share / 2;
  plan.rules.push_back(throttle);

  FaultRule unavailable;
  unavailable.kind = FaultKind::kUnavailable;
  unavailable.probability = fault_rate * transient_share / 2;
  plan.rules.push_back(unavailable);

  FaultRule latency;
  latency.kind = FaultKind::kLatency;
  latency.probability = fault_rate * latency_share;
  latency.latency_ns = 200 * 1000;  // 0.2 ms: noticeable, never dominant
  plan.rules.push_back(latency);

  if (include_corruption) {
    FaultRule truncate;
    truncate.kind = FaultKind::kTruncate;
    truncate.probability = fault_rate * 0.075;
    truncate.truncate_to = 5;  // keeps a few bytes so parsers see *something*
    plan.rules.push_back(truncate);

    FaultRule corrupt;
    corrupt.kind = FaultKind::kCorrupt;
    corrupt.probability = fault_rate * 0.075;
    plan.rules.push_back(corrupt);
  }
  return plan;
}

FaultPlan MakeTransientPlan(u64 seed, double fault_rate) {
  return MakeChaosPlan(seed, fault_rate, /*include_corruption=*/false);
}

FaultPlan MakePutChaosPlan(u64 seed, double fault_rate) {
  // Same first-eligible-rule-wins discipline as MakeChaosPlan; all four
  // kinds are *reported* failures (partial parts return Unavailable after
  // tearing the part), so a writer that retries idempotently must converge.
  FaultPlan plan;
  plan.seed = seed;

  FaultRule throttle;
  throttle.kind = FaultKind::kThrottle;
  throttle.op = FaultOp::kPut;
  throttle.probability = fault_rate * 0.35;
  plan.rules.push_back(throttle);

  FaultRule unavailable;
  unavailable.kind = FaultKind::kUnavailable;
  unavailable.op = FaultOp::kPut;
  unavailable.probability = fault_rate * 0.35;
  plan.rules.push_back(unavailable);

  FaultRule latency;
  latency.kind = FaultKind::kLatency;
  latency.op = FaultOp::kPut;
  latency.probability = fault_rate * 0.15;
  latency.latency_ns = 200 * 1000;  // 0.2 ms: noticeable, never dominant
  plan.rules.push_back(latency);

  FaultRule partial;
  partial.kind = FaultKind::kPartialPart;
  partial.op = FaultOp::kPut;
  partial.probability = fault_rate * 0.15;
  partial.truncate_to = 7;  // keeps a few bytes so the tear is a real tear
  plan.rules.push_back(partial);

  return plan;
}

}  // namespace btr::s3sim
