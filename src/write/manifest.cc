#include "write/manifest.h"

#include <cstring>

#include "util/crc32c.h"

namespace btr::write {

namespace {
constexpr char kManifestMagic[4] = {'B', 'T', 'R', 'V'};
}  // namespace

std::string ManifestKey(const std::string& prefix, const std::string& table) {
  return prefix + table + ".manifest";
}

std::string VersionedName(const std::string& table, u64 version) {
  return table + ".v" + std::to_string(version);
}

std::string IntentKey(const std::string& prefix, const std::string& table,
                      u64 version) {
  return prefix + VersionedName(table, version) + ".intent";
}

bool ParseVersionedKey(const std::string& key, const std::string& prefix,
                       const std::string& table, u64* version) {
  const std::string stem = prefix + table + ".v";
  if (key.compare(0, stem.size(), stem) != 0) return false;
  size_t pos = stem.size();
  if (pos >= key.size() || key[pos] < '0' || key[pos] > '9') return false;
  u64 value = 0;
  while (pos < key.size() && key[pos] >= '0' && key[pos] <= '9') {
    value = value * 10 + (key[pos] - '0');
    pos++;
  }
  // A version stem is always followed by the object suffix (".btrmeta",
  // ".<col>.btr", ".zones", ".intent") — a bare "<table>.v7" or a longer
  // table name that merely starts the same way does not count.
  if (pos >= key.size() || key[pos] != '.') return false;
  *version = value;
  return true;
}

void SerializeManifest(const Manifest& manifest, ByteBuffer* out) {
  size_t start = out->size();
  out->Append(kManifestMagic, 4);
  out->AppendValue<u32>(kManifestFormatVersion);
  out->AppendValue<u64>(manifest.committed_version);
  out->AppendValue<u16>(static_cast<u16>(manifest.table.size()));
  out->Append(manifest.table.data(), manifest.table.size());
  out->AppendValue<u32>(Crc32c(out->data() + start, out->size() - start));
}

Status ParseManifest(const u8* data, size_t size, Manifest* out) {
  if (size < 4) return Status::Corruption("manifest too small for CRC");
  u32 stored_crc;
  std::memcpy(&stored_crc, data + size - 4, 4);
  if (Crc32c(data, size - 4) != stored_crc) {
    return Status::Corruption("manifest CRC mismatch");
  }
  const u8* p = data;
  size_t remaining = size - 4;
  auto read = [&](void* dst, size_t n) {
    if (n > remaining) return false;
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
    return true;
  };
  char magic[4];
  if (!read(magic, 4) || std::memcmp(magic, kManifestMagic, 4) != 0) {
    return Status::Corruption("bad manifest magic");
  }
  u32 format;
  if (!read(&format, 4)) return Status::Corruption("truncated manifest");
  if (format != kManifestFormatVersion) {
    return Status::Corruption("unsupported manifest format " +
                              std::to_string(format));
  }
  u16 name_len;
  if (!read(&out->committed_version, 8) || !read(&name_len, 2)) {
    return Status::Corruption("truncated manifest");
  }
  out->table.resize(name_len);
  if (!read(out->table.data(), name_len)) {
    return Status::Corruption("truncated manifest");
  }
  if (out->committed_version == 0) {
    return Status::Corruption("manifest names version 0");
  }
  return Status::Ok();
}

Status ReadManifest(s3sim::ObjectStore* store, const std::string& prefix,
                    const std::string& table, Manifest* out) {
  out->table = table;
  out->committed_version = 0;
  const std::string key = ManifestKey(prefix, table);
  if (!store->Contains(key)) return Status::Ok();
  std::vector<u8> blob;
  BTR_RETURN_IF_ERROR(store->GetObject(key, &blob));
  return ParseManifest(blob.data(), blob.size(), out);
}

Status ResolveCommittedName(s3sim::ObjectStore* store,
                            const std::string& prefix,
                            const std::string& table, std::string* name) {
  Manifest manifest;
  BTR_RETURN_IF_ERROR(ReadManifest(store, prefix, table, &manifest));
  *name = manifest.committed_version == 0
              ? table
              : VersionedName(table, manifest.committed_version);
  return Status::Ok();
}

}  // namespace btr::write
