#include "write/streaming_writer.h"

#include <algorithm>

#include "btr/file_format.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32c.h"
#include "write/manifest.h"

namespace btr::write {

namespace {

// Writer-side observability: what the ingest path did to the store.
struct WriteMetrics {
  obs::Counter& blocks_flushed;
  obs::Counter& parts_uploaded;
  obs::Counter& bytes_staged;
  obs::Counter& commits;
  obs::Counter& commit_failures;
  obs::Counter& verify_failures;

  static WriteMetrics& Get() {
    static WriteMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new WriteMetrics{r.GetCounter("write.blocks_flushed"),
                              r.GetCounter("write.parts_uploaded"),
                              r.GetCounter("write.bytes_staged"),
                              r.GetCounter("write.commits"),
                              r.GetCounter("write.commit_failures"),
                              r.GetCounter("write.verify_failures")};
    }();
    return *m;
  }
};

}  // namespace

StreamingWriter::StreamingWriter(s3sim::ObjectStore* store, std::string table,
                                 std::string prefix, WriterConfig config)
    : store_(store),
      table_(std::move(table)),
      prefix_(std::move(prefix)),
      config_(std::move(config)),
      retry_(std::make_unique<exec::RetryState>(config_.retry)) {}

StreamingWriter::~StreamingWriter() = default;

bool StreamingWriter::CrashAt(const char* label) {
  if (!config_.failpoint || !config_.failpoint(label)) return false;
  // A simulated kill: no cleanup, no intent rewrite, nothing — the store
  // is left exactly as the preceding operation left it.
  state_ = State::kDead;
  failed_status_ =
      Status::IoError(std::string("simulated crash at ") + label);
  return true;
}

Status StreamingWriter::Fail(Status status) {
  state_ = State::kDead;
  failed_status_ = status;
  WriteMetrics::Get().commit_failures.Add();
  return failed_status_;
}

Status StreamingWriter::PutWithRetries(const std::string& key, const u8* data,
                                       size_t size) {
  return exec::RunWithRetries(retry_.get(),
                              [&] { return store_->Put(key, data, size); });
}

Status StreamingWriter::WriteIntent(IntentPhase phase) {
  IntentRecord intent;
  intent.table = table_;
  intent.version = version_;
  intent.phase = phase;
  for (const ColumnState& column : columns_) {
    IntentEntry entry;
    entry.key = column.key;
    entry.upload_id = column.upload_id;
    if (phase == IntentPhase::kStaged) {
      // Final object = header (part 1) + payload parts, so the expected
      // CRC stitches the header's CRC to the running payload CRC.
      ByteBuffer header;
      SerializeColumnFileHeader(column.block_sizes, column.block_crcs, &header);
      entry.size = header.size() + column.payload_bytes;
      entry.crc32c = Crc32cCombine(Crc32c(header.data(), header.size()),
                                   column.payload_crc, column.payload_bytes);
    }
    intent.entries.push_back(std::move(entry));
  }
  const std::string versioned = VersionedName(table_, version_);
  if (config_.write_zone_map) {
    IntentEntry entry;
    entry.key = ZoneMapKey(prefix_, versioned);
    if (phase == IntentPhase::kStaged) {
      entry.size = zones_size_;
      entry.crc32c = zones_crc_;
    }
    intent.entries.push_back(std::move(entry));
  }
  {
    IntentEntry entry;
    entry.key = TableMetaKey(prefix_, versioned);
    if (phase == IntentPhase::kStaged) {
      entry.size = meta_size_;
      entry.crc32c = meta_crc_;
    }
    intent.entries.push_back(std::move(entry));
  }
  ByteBuffer buffer;
  SerializeIntent(intent, &buffer);
  return PutWithRetries(IntentKey(prefix_, table_, version_), buffer.data(),
                        buffer.size());
}

Status StreamingWriter::Begin(const std::vector<ColumnSpec>& schema) {
  if (store_ == nullptr) return Status::InvalidArgument("null object store");
  if (state_ != State::kIdle) {
    return Status::InvalidArgument("Begin called twice");
  }
  if (schema.empty()) return Status::InvalidArgument("empty schema");
  if (CrashAt("begin:start")) return failed_status_;

  // Pick the next version: above the committed one, and above anything a
  // crashed predecessor staged (objects, intents, or open uploads) so
  // versions are never reused and recovery can GC unambiguously.
  Manifest manifest;
  Status status = exec::RunWithRetries(
      retry_.get(), [&] { return ReadManifest(store_, prefix_, table_, &manifest); });
  if (!status.ok()) return Fail(status);
  u64 burned = manifest.committed_version;
  const std::string stem = prefix_ + table_ + ".v";
  for (const std::string& key : store_->ListKeys(stem)) {
    u64 v = 0;
    if (ParseVersionedKey(key, prefix_, table_, &v)) burned = std::max(burned, v);
  }
  for (const std::string& id : store_->ListMultipartUploads(stem)) {
    std::string key;
    if (store_->ListParts(id, &key, nullptr).ok()) {
      u64 v = 0;
      if (ParseVersionedKey(key, prefix_, table_, &v)) {
        burned = std::max(burned, v);
      }
    }
  }
  version_ = burned + 1;

  const std::string versioned = VersionedName(table_, version_);
  columns_.clear();
  columns_.resize(schema.size());
  for (size_t c = 0; c < schema.size(); c++) {
    ColumnState& column = columns_[c];
    column.spec = schema[c];
    column.accumulator =
        std::make_unique<Column>(schema[c].name, schema[c].type);
    column.key = ColumnFileKey(prefix_, versioned, c);
    status = store_->CreateMultipartUpload(column.key, &column.upload_id);
    if (!status.ok()) return Fail(status);
    if (CrashAt("begin:after-create-upload")) return failed_status_;
  }

  status = WriteIntent(IntentPhase::kStaging);
  if (!status.ok()) return Fail(status);
  if (CrashAt("begin:after-intent")) return failed_status_;

  state_ = State::kOpen;
  return Status::Ok();
}

void StreamingWriter::StageBlockBytes(size_t c, const u8* data, u32 size,
                                      u32 value_count, u8 root_scheme) {
  ColumnState& column = columns_[c];
  column.pending.Append(data, size);
  column.block_sizes.push_back(size);
  column.block_crcs.push_back(Crc32c(data, size));
  column.block_value_counts.push_back(value_count);
  column.block_root_schemes.push_back(root_scheme);
  column.payload_crc = Crc32cExtend(column.payload_crc, data, size);
  column.payload_bytes += size;
  blocks_flushed_++;
  WriteMetrics::Get().blocks_flushed.Add();
}

Status StreamingWriter::FlushBlock(size_t c) {
  ColumnState& column = columns_[c];
  BTR_DCHECK(column.accumulator != nullptr && column.accumulator->size() > 0);
  // One accumulator of <= kBlockCapacity rows compresses to exactly one
  // block, through the same scheme picker CompressColumn runs — a
  // streamed table is bit-identical to the one-shot compressed form.
  CompressedColumn compressed =
      CompressColumn(*column.accumulator, config_.compression);
  BTR_CHECK_MSG(compressed.blocks.size() == 1,
                "accumulator flushed more than one block");
  StageBlockBytes(c, compressed.blocks[0].data(),
                  static_cast<u32>(compressed.blocks[0].size()),
                  compressed.block_value_counts[0],
                  compressed.block_root_schemes[0]);
  column.zones.push_back(ComputeColumnZoneMap(*column.accumulator).zones[0]);
  column.uncompressed_bytes += column.accumulator->UncompressedBytes();
  column.accumulator =
      std::make_unique<Column>(column.spec.name, column.spec.type);
  return Status::Ok();
}

Status StreamingWriter::UploadPending(size_t c) {
  ColumnState& column = columns_[c];
  if (column.pending.empty()) return Status::Ok();
  Status status = exec::RunWithRetries(retry_.get(), [&] {
    return store_->UploadPart(column.upload_id, column.next_part,
                              column.pending.data(), column.pending.size());
  });
  if (!status.ok()) return Fail(status);
  WriteMetrics::Get().parts_uploaded.Add();
  WriteMetrics::Get().bytes_staged.Add(column.pending.size());
  column.next_part++;
  column.pending.Clear();
  if (CrashAt("append:after-part")) return failed_status_;
  return Status::Ok();
}

Status StreamingWriter::Append(const Relation& chunk) {
  if (state_ == State::kDead) return failed_status_;
  if (state_ != State::kOpen) {
    return Status::InvalidArgument("Append before Begin or after Commit");
  }
  if (chunk.columns().size() != columns_.size()) {
    return Status::InvalidArgument("chunk column count does not match schema");
  }
  const u32 rows = chunk.row_count();
  for (size_t c = 0; c < columns_.size(); c++) {
    const Column& src = chunk.columns()[c];
    if (src.name() != columns_[c].spec.name ||
        src.type() != columns_[c].spec.type) {
      return Status::InvalidArgument("chunk column " + std::to_string(c) +
                                     " does not match schema");
    }
    if (src.size() != rows) {
      return Status::InvalidArgument("ragged chunk: column " +
                                     std::to_string(c) + " row count differs");
    }
  }
  for (size_t c = 0; c < columns_.size(); c++) {
    const Column& src = chunk.columns()[c];
    Column* acc = columns_[c].accumulator.get();
    for (u32 r = 0; r < rows; r++) {
      if (src.IsNull(r)) {
        acc->AppendNull();
      } else {
        switch (src.type()) {
          case ColumnType::kInteger: acc->AppendInt(src.ints()[r]); break;
          case ColumnType::kDouble: acc->AppendDouble(src.doubles()[r]); break;
          case ColumnType::kString: acc->AppendString(src.GetString(r)); break;
        }
      }
      if (acc->size() == kBlockCapacity) {
        BTR_RETURN_IF_ERROR(FlushBlock(c));
        acc = columns_[c].accumulator.get();
        if (columns_[c].pending.size() >= config_.part_target_bytes) {
          BTR_RETURN_IF_ERROR(UploadPending(c));
        }
      }
    }
  }
  rows_appended_ += rows;
  return Status::Ok();
}

Status StreamingWriter::VerifyStagedObject(const IntentEntry& entry) {
  std::vector<u8> blob;
  Status status = exec::RunWithRetries(
      retry_.get(), [&] { return store_->GetObject(entry.key, &blob); });
  if (!status.ok()) return status;
  if (blob.size() != entry.size ||
      Crc32c(blob.data(), blob.size()) != entry.crc32c) {
    WriteMetrics::Get().verify_failures.Add();
    return Status::Corruption("staged object failed verification: " +
                              entry.key);
  }
  return Status::Ok();
}

Status StreamingWriter::Commit() {
  BTR_TRACE_SPAN("write.commit");
  if (state_ == State::kDead) return failed_status_;
  if (state_ != State::kOpen) {
    return Status::InvalidArgument("Commit before Begin or after Commit");
  }

  // 1. Flush trailing blocks and ship every column's remaining payload.
  for (size_t c = 0; c < columns_.size(); c++) {
    if (columns_[c].accumulator->size() > 0) {
      BTR_RETURN_IF_ERROR(FlushBlock(c));
    }
    BTR_RETURN_IF_ERROR(UploadPending(c));
  }
  if (CrashAt("commit:after-flush")) return failed_status_;

  // 2. Now that all block sizes/CRCs are known, frame each column's
  // header and upload it as the reserved part 1 — the store assembles
  // parts in part-number order, so the object comes out byte-identical
  // to SerializeColumnFile.
  for (ColumnState& column : columns_) {
    ByteBuffer header;
    SerializeColumnFileHeader(column.block_sizes, column.block_crcs, &header);
    Status status = exec::RunWithRetries(retry_.get(), [&] {
      return store_->UploadPart(column.upload_id, 1, header.data(),
                                header.size());
    });
    if (!status.ok()) return Fail(status);
    if (CrashAt("commit:after-header-part")) return failed_status_;
  }

  const std::string versioned = VersionedName(table_, version_);

  // 3. Zone-map sidecar and table metadata stage as plain versioned
  // objects (they are small; multipart buys nothing).
  if (config_.write_zone_map) {
    TableZoneMap zones;
    for (ColumnState& column : columns_) {
      ColumnZoneMap zone_map;
      zone_map.type = column.spec.type;
      zone_map.zones = column.zones;
      zones.columns.push_back(std::move(zone_map));
    }
    ByteBuffer buffer;
    SerializeTableZoneMap(zones, &buffer);
    zones_size_ = buffer.size();
    zones_crc_ = Crc32c(buffer.data(), buffer.size());
    Status status =
        PutWithRetries(ZoneMapKey(prefix_, versioned), buffer.data(),
                       buffer.size());
    if (!status.ok()) return Fail(status);
    if (CrashAt("commit:after-zones")) return failed_status_;
  }
  {
    // The meta framing wants a CompressedRelation, but only block *counts*
    // are serialized — a skeleton with empty block buffers produces the
    // same bytes without holding any payload in memory.
    CompressedRelation skeleton;
    skeleton.name = table_;
    skeleton.row_count = static_cast<u32>(rows_appended_);
    for (ColumnState& column : columns_) {
      CompressedColumn cc;
      cc.name = column.spec.name;
      cc.type = column.spec.type;
      cc.uncompressed_bytes = column.uncompressed_bytes;
      cc.blocks.resize(column.block_sizes.size());
      cc.block_value_counts = column.block_value_counts;
      cc.block_root_schemes = column.block_root_schemes;
      skeleton.columns.push_back(std::move(cc));
    }
    ByteBuffer buffer;
    SerializeTableMeta(skeleton, &buffer);
    meta_size_ = buffer.size();
    meta_crc_ = Crc32c(buffer.data(), buffer.size());
    Status status = PutWithRetries(TableMetaKey(prefix_, versioned),
                                   buffer.data(), buffer.size());
    if (!status.ok()) return Fail(status);
    if (CrashAt("commit:after-meta")) return failed_status_;
  }

  // 4. Point of no return for the version's *contents*: the kStaged
  // intent records every object with its expected size and CRC. From here
  // a crash rolls forward — recovery finishes the uploads and swaps the
  // manifest itself (write/recovery.h).
  Status status = WriteIntent(IntentPhase::kStaged);
  if (!status.ok()) return Fail(status);
  if (CrashAt("commit:after-staged-intent")) return failed_status_;

  // 5. Assemble the column objects.
  for (ColumnState& column : columns_) {
    status = exec::RunWithRetries(retry_.get(), [&] {
      return store_->CompleteMultipartUpload(column.upload_id);
    });
    if (!status.ok()) return Fail(status);
    if (CrashAt("commit:after-complete")) return failed_status_;
  }

  // 6. Trust nothing: a PUT that tore or corrupted bytes while *reporting
  // success* (FaultKind::kTruncate/kCorrupt) must not get published. The
  // read-back compares byte counts and CRCs against what the writer sent.
  if (config_.verify_before_commit) {
    IntentRecord staged;  // rebuild the entry list the intent recorded
    for (ColumnState& column : columns_) {
      ByteBuffer header;
      SerializeColumnFileHeader(column.block_sizes, column.block_crcs, &header);
      IntentEntry entry;
      entry.key = column.key;
      entry.size = header.size() + column.payload_bytes;
      entry.crc32c = Crc32cCombine(Crc32c(header.data(), header.size()),
                                   column.payload_crc, column.payload_bytes);
      staged.entries.push_back(std::move(entry));
    }
    if (config_.write_zone_map) {
      staged.entries.push_back(
          {ZoneMapKey(prefix_, versioned), "", zones_size_, zones_crc_});
    }
    staged.entries.push_back(
        {TableMetaKey(prefix_, versioned), "", meta_size_, meta_crc_});
    for (const IntentEntry& entry : staged.entries) {
      status = VerifyStagedObject(entry);
      if (!status.ok()) return Fail(status);
    }
    if (CrashAt("commit:after-verify")) return failed_status_;
  }

  // 7. The atomic commit point: one Put of the tiny manifest publishes
  // the version to every future Scanner::Open.
  Manifest manifest;
  manifest.table = table_;
  manifest.committed_version = version_;
  ByteBuffer buffer;
  SerializeManifest(manifest, &buffer);
  status = PutWithRetries(ManifestKey(prefix_, table_), buffer.data(),
                          buffer.size());
  if (!status.ok()) return Fail(status);
  if (CrashAt("commit:after-manifest")) return failed_status_;

  // 8. The intent is now garbage (version <= committed); drop it.
  (void)store_->Delete(IntentKey(prefix_, table_, version_));
  if (CrashAt("commit:after-intent-delete")) return failed_status_;

  state_ = State::kCommitted;
  WriteMetrics::Get().commits.Add();
  return Status::Ok();
}

Status StreamingWriter::Abort() {
  if (state_ == State::kCommitted) {
    return Status::InvalidArgument("Abort after Commit");
  }
  // Deliberately no cleanup (see class comment): an aborted writer leaves
  // the same state a killed one would, and recovery GCs both.
  state_ = State::kDead;
  failed_status_ = Status::IoError("write aborted");
  return Status::Ok();
}

Status CommitCompressedRelation(const CompressedRelation& relation,
                                const TableZoneMap* zones,
                                const std::string& prefix,
                                s3sim::ObjectStore* store,
                                const WriterConfig& config) {
  if (store == nullptr) return Status::InvalidArgument("null object store");
  if (zones != nullptr && zones->columns.size() != relation.columns.size()) {
    return Status::InvalidArgument("zone map does not match relation");
  }
  WriterConfig writer_config = config;
  writer_config.write_zone_map = zones != nullptr;
  StreamingWriter writer(store, relation.name, prefix, writer_config);
  std::vector<StreamingWriter::ColumnSpec> schema;
  schema.reserve(relation.columns.size());
  for (const CompressedColumn& column : relation.columns) {
    schema.push_back({column.name, column.type});
  }
  BTR_RETURN_IF_ERROR(writer.Begin(schema));
  // Feed the already-compressed blocks straight into the part stream; the
  // staging, intent, verification and manifest-swap machinery is shared
  // with the streaming path.
  for (size_t c = 0; c < relation.columns.size(); c++) {
    const CompressedColumn& column = relation.columns[c];
    StreamingWriter::ColumnState& state = writer.columns_[c];
    state.uncompressed_bytes = column.uncompressed_bytes;
    if (zones != nullptr) state.zones = zones->columns[c].zones;
    for (size_t b = 0; b < column.blocks.size(); b++) {
      writer.StageBlockBytes(
          c, column.blocks[b].data(),
          static_cast<u32>(column.blocks[b].size()),
          column.block_value_counts[b],
          b < column.block_root_schemes.size() ? column.block_root_schemes[b]
                                               : 0);
      if (state.pending.size() >= writer_config.part_target_bytes) {
        BTR_RETURN_IF_ERROR(writer.UploadPending(c));
      }
    }
  }
  writer.rows_appended_ = relation.row_count;
  return writer.Commit();
}

}  // namespace btr::write
