#include "write/recovery.h"

#include <algorithm>
#include <map>
#include <set>

#include "btr/file_format.h"
#include "btr/zonemap.h"
#include "util/crc32c.h"
#include "write/intent.h"
#include "write/manifest.h"

namespace btr::write {

namespace {

// Everything one Fsck invocation needs to thread around.
struct FsckContext {
  s3sim::ObjectStore* store;
  const std::string& prefix;
  const std::string& table;
  const FsckOptions& options;
  FsckReport* report;
  exec::RetryState retry;

  FsckContext(s3sim::ObjectStore* s, const std::string& p,
              const std::string& t, const FsckOptions& o, FsckReport* r)
      : store(s), prefix(p), table(t), options(o), report(r), retry(o.retry) {}

  void Note(std::string note) { report->notes.push_back(std::move(note)); }

  Status Get(const std::string& key, std::vector<u8>* out) {
    return exec::RunWithRetries(&retry,
                                [&] { return store->GetObject(key, out); });
  }
  Status Put(const std::string& key, const u8* data, size_t size) {
    return exec::RunWithRetries(&retry,
                                [&] { return store->Put(key, data, size); });
  }
};

bool UploadExists(s3sim::ObjectStore* store, const std::string& id) {
  return store->ListParts(id, nullptr, nullptr).ok();
}

// Deletes a staging/damaged version's footprint: open uploads aborted,
// staged objects deleted, then the intent itself.
Status RollBack(FsckContext& ctx, const IntentRecord& intent,
                const std::string& intent_key) {
  for (const IntentEntry& entry : intent.entries) {
    if (!entry.upload_id.empty() && UploadExists(ctx.store, entry.upload_id)) {
      ctx.report->clean = false;
      if (ctx.options.repair) {
        BTR_RETURN_IF_ERROR(ctx.store->AbortMultipartUpload(entry.upload_id));
        ctx.report->uploads_aborted++;
      }
      ctx.Note("abort upload " + entry.upload_id + " -> " + entry.key);
    }
    if (ctx.store->Contains(entry.key)) {
      ctx.report->clean = false;
      if (ctx.options.repair) {
        BTR_RETURN_IF_ERROR(ctx.store->Delete(entry.key));
        ctx.report->objects_deleted++;
      }
      ctx.Note("delete staged object " + entry.key);
    }
  }
  ctx.report->clean = false;
  if (ctx.options.repair) {
    BTR_RETURN_IF_ERROR(ctx.store->Delete(intent_key));
    ctx.report->intents_deleted++;
  }
  ctx.report->rolled_back++;
  ctx.Note("roll back v" + std::to_string(intent.version) + " (" +
           IntentPhaseName(intent.phase) + ")");
  return Status::Ok();
}

// Checks one staged entry against the size/CRC the intent recorded.
// Returns Ok(true-ish) via `ok_out`; non-OK only for store-level failure.
Status VerifyEntry(FsckContext& ctx, const IntentEntry& entry, bool* ok_out) {
  std::vector<u8> blob;
  Status status = ctx.Get(entry.key, &blob);
  if (status.IsNotFound()) {
    *ok_out = false;
    return Status::Ok();
  }
  BTR_RETURN_IF_ERROR(status);
  *ok_out = blob.size() == entry.size &&
            Crc32c(blob.data(), blob.size()) == entry.crc32c;
  return Status::Ok();
}

// Completes what the writer started: finish interrupted uploads, verify
// every object against the intent, publish the manifest. On verification
// failure the version is damaged and rolls back instead.
Status RollForward(FsckContext& ctx, const IntentRecord& intent,
                   const std::string& intent_key, u64* committed) {
  // 1. Resume: any entry whose multipart upload is still open has all its
  // parts staged (kStaged guarantees it) — completing it is all that's
  // left. Without --repair we can only report, and verification below
  // must skip the not-yet-assembled objects.
  bool pending_uploads = false;
  for (const IntentEntry& entry : intent.entries) {
    if (entry.upload_id.empty() || !UploadExists(ctx.store, entry.upload_id)) {
      continue;
    }
    ctx.report->clean = false;
    ctx.Note("complete upload " + entry.upload_id + " -> " + entry.key);
    if (!ctx.options.repair) {
      pending_uploads = true;
      continue;
    }
    Status status = exec::RunWithRetries(&ctx.retry, [&] {
      return ctx.store->CompleteMultipartUpload(entry.upload_id);
    });
    // A lost-ack crash fault can report failure after publishing; if the
    // object landed anyway, verification below is the arbiter.
    if (!status.ok() && !ctx.store->Contains(entry.key)) return status;
    ctx.report->uploads_completed++;
  }

  // 2. Verify every object the intent recorded.
  bool all_ok = true;
  if (!pending_uploads) {
    for (const IntentEntry& entry : intent.entries) {
      bool entry_ok = false;
      BTR_RETURN_IF_ERROR(VerifyEntry(ctx, entry, &entry_ok));
      if (!entry_ok) {
        all_ok = false;
        ctx.report->verify_failures++;
        ctx.Note("verify failed: " + entry.key);
      }
    }
  }
  if (pending_uploads || !all_ok) {
    if (pending_uploads) {
      // Read-only mode with unfinished uploads: repair would complete and
      // verify them; nothing more to decide here.
      ctx.report->rolled_forward++;
      ctx.Note("would roll forward v" + std::to_string(intent.version));
      return Status::Ok();
    }
    return RollBack(ctx, intent, intent_key);
  }

  // 3. Publish — byte-for-byte the manifest the writer would have put.
  ctx.report->clean = false;
  if (ctx.options.repair) {
    Manifest manifest;
    manifest.table = intent.table;
    manifest.committed_version = intent.version;
    ByteBuffer buffer;
    SerializeManifest(manifest, &buffer);
    BTR_RETURN_IF_ERROR(
        ctx.Put(ManifestKey(ctx.prefix, ctx.table), buffer.data(),
                buffer.size()));
    BTR_RETURN_IF_ERROR(ctx.store->Delete(intent_key));
    ctx.report->intents_deleted++;
    *committed = intent.version;
  }
  ctx.report->rolled_forward++;
  ctx.Note("roll forward v" + std::to_string(intent.version));
  return Status::Ok();
}

// Deep-checks the committed version: metadata, zone map and column files
// parse, and every block's payload matches its header CRC.
Status VerifyCommitted(FsckContext& ctx, u64 committed) {
  if (committed == 0) return Status::Ok();
  const std::string name = VersionedName(ctx.table, committed);
  std::vector<u8> blob;
  Status status = ctx.Get(TableMetaKey(ctx.prefix, name), &blob);
  TableMeta meta;
  if (status.ok()) status = ParseTableMeta(blob.data(), blob.size(), &meta);
  if (!status.ok()) {
    ctx.report->verify_failures++;
    ctx.report->clean = false;
    ctx.Note("committed meta unreadable: " + status.ToString());
    return Status::Ok();
  }
  const std::string zones_key = ZoneMapKey(ctx.prefix, name);
  if (ctx.store->Contains(zones_key)) {
    status = ctx.Get(zones_key, &blob);
    TableZoneMap zones;
    if (status.ok()) {
      status = ParseTableZoneMap(blob.data(), blob.size(), &zones);
    }
    if (!status.ok()) {
      ctx.report->verify_failures++;
      ctx.report->clean = false;
      ctx.Note("committed zone map unreadable: " + status.ToString());
    }
  }
  for (size_t c = 0; c < meta.columns.size(); c++) {
    status = ctx.Get(ColumnFileKey(ctx.prefix, name, c), &blob);
    std::vector<u32> sizes, crcs;
    if (status.ok()) {
      status = ParseColumnFileHeader(blob.data(), blob.size(), &sizes, &crcs);
    }
    if (!status.ok()) {
      ctx.report->verify_failures++;
      ctx.report->clean = false;
      ctx.Note("committed column " + std::to_string(c) +
               " unreadable: " + status.ToString());
      continue;
    }
    size_t offset = ColumnFileHeaderBytes(sizes.size());
    for (size_t b = 0; b < sizes.size(); b++) {
      if (offset + sizes[b] > blob.size() ||
          Crc32c(blob.data() + offset, sizes[b]) != crcs[b]) {
        ctx.report->verify_failures++;
        ctx.report->clean = false;
        ctx.Note("committed column " + std::to_string(c) + " block " +
                 std::to_string(b) + " CRC mismatch");
      }
      offset += sizes[b];
    }
  }
  return Status::Ok();
}

}  // namespace

Status Fsck(s3sim::ObjectStore* store, const std::string& prefix,
            const std::string& table, const FsckOptions& options,
            FsckReport* report) {
  if (store == nullptr || report == nullptr) {
    return Status::InvalidArgument("null store or report");
  }
  *report = FsckReport();
  FsckContext ctx(store, prefix, table, options, report);

  Manifest manifest;
  BTR_RETURN_IF_ERROR(exec::RunWithRetries(
      &ctx.retry, [&] { return ReadManifest(store, prefix, table, &manifest); }));
  u64 committed = manifest.committed_version;
  report->committed_version_before = committed;

  // Collect intents, oldest version first so a sequence of crashed writes
  // resolves in the order it happened.
  const std::string stem = prefix + table + ".v";
  std::map<u64, std::string> intent_keys;
  for (const std::string& key : store->ListKeys(stem)) {
    u64 version = 0;
    if (ParseVersionedKey(key, prefix, table, &version) &&
        key.size() >= 7 && key.compare(key.size() - 7, 7, ".intent") == 0) {
      intent_keys[version] = key;
    }
  }

  std::set<u64> live_versions;  // versions an intent still accounts for
  for (const auto& [version, key] : intent_keys) {
    report->intents_seen++;
    std::vector<u8> blob;
    IntentRecord intent;
    Status status = ctx.Get(key, &blob);
    if (status.ok()) status = ParseIntent(blob.data(), blob.size(), &intent);
    if (!status.ok()) {
      // Unreadable intent: its version can never be trusted. Drop the
      // record; the orphan sweep below GCs whatever it covered.
      report->clean = false;
      ctx.Note("unreadable intent " + key + ": " + status.ToString());
      if (options.repair) {
        BTR_RETURN_IF_ERROR(store->Delete(key));
        report->intents_deleted++;
      } else {
        live_versions.insert(version);
      }
      continue;
    }
    if (version <= committed) {
      report->clean = false;
      if (version < committed && intent.phase == IntentPhase::kStaging) {
        // A later writer committed past this version, and the intent never
        // reached kStaged — so the manifest can never have pointed at it
        // (publication requires a kStaged intent first). Its staged
        // objects and open uploads are unreachable garbage; reclaim them.
        ctx.Note("roll back superseded staging v" + std::to_string(version));
        BTR_RETURN_IF_ERROR(RollBack(ctx, intent, key));
        if (!options.repair) live_versions.insert(version);
      } else {
        // Already published (the writer died between the manifest swap and
        // the intent delete) or a superseded kStaged version that may have
        // been published before being overtaken — the intent alone is
        // garbage; the objects are (or may be) a committed version's and
        // are untouchable.
        ctx.Note("drop stale intent for v" + std::to_string(version));
        if (options.repair) {
          BTR_RETURN_IF_ERROR(store->Delete(key));
          report->intents_deleted++;
        }
      }
      continue;
    }
    if (intent.phase == IntentPhase::kStaged) {
      BTR_RETURN_IF_ERROR(RollForward(ctx, intent, key, &committed));
      if (!options.repair) live_versions.insert(version);
    } else {
      BTR_RETURN_IF_ERROR(RollBack(ctx, intent, key));
      if (!options.repair) live_versions.insert(version);
    }
  }

  // Orphan sweep: anything versioned above the (possibly just-advanced)
  // committed version that no intent accounts for was left by a writer
  // that died before journaling — GC it. Objects at or below `committed`
  // belong to published versions and stay.
  for (const std::string& key : store->ListKeys(stem)) {
    u64 version = 0;
    if (!ParseVersionedKey(key, prefix, table, &version)) continue;
    if (version <= committed || live_versions.count(version) != 0) continue;
    report->clean = false;
    if (options.repair) {
      BTR_RETURN_IF_ERROR(store->Delete(key));
      report->orphans_deleted++;
    }
    ctx.Note("delete orphan " + key);
  }
  // Open uploads are GC'd at *any* version not covered by a live intent:
  // committed data never references an open upload (completing an upload
  // destroys it), so one left below `committed` is garbage from a writer
  // that was overtaken before journaling.
  for (const std::string& id : store->ListMultipartUploads(stem)) {
    std::string key;
    if (!store->ListParts(id, &key, nullptr).ok()) continue;
    u64 version = 0;
    if (!ParseVersionedKey(key, prefix, table, &version)) continue;
    if (live_versions.count(version) != 0) continue;
    report->clean = false;
    if (options.repair) {
      BTR_RETURN_IF_ERROR(store->AbortMultipartUpload(id));
      report->orphans_deleted++;
    }
    ctx.Note("abort orphan upload " + id + " -> " + key);
  }

  if (options.verify_committed) {
    BTR_RETURN_IF_ERROR(VerifyCommitted(ctx, committed));
  }

  report->committed_version_after = committed;
  return Status::Ok();
}

}  // namespace btr::write
