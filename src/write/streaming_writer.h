// StreamingWriter — the crash-safe, bounded-memory ingestion path.
//
// The seed repo wrote tables with one-shot UploadCompressedRelation: the
// whole relation compressed in memory, then Put object-by-object with no
// failure handling and no commit point. This module replaces that with a
// production-shaped writer:
//
//   bounded memory   Append() takes row chunks of any size and buffers at
//                    most one kBlockCapacity accumulator plus one pending
//                    multipart part per column; everything else streams
//                    into the object store as it is produced.
//   scheme per block The cascade scheme picker (btr/datablock.h) runs on
//                    every 64k-value block exactly as CompressColumn
//                    would, so a streamed table is bit-identical to the
//                    one-shot compressed form — same blocks, same bytes.
//   header last      A column object's "BTRC" header depends on all block
//                    sizes/CRCs, so part number 1 is *reserved* and
//                    uploaded at Commit after the payload parts (2..N);
//                    multipart parts assemble in part-number order, which
//                    keeps the on-disk format byte-identical to
//                    SerializeColumnFile. The whole-object CRC recorded in
//                    the intent is stitched with Crc32cCombine.
//   atomic commit    All objects stage under the next version's keys
//                    (write/manifest.h); Commit verifies what actually
//                    landed, then publishes with a single manifest Put. A
//                    concurrent Scanner::Open sees the previous version or
//                    the new one, never a mix.
//   crash safety     Every step is journaled in a write-ahead intent
//                    record (write/intent.h). On *any* failure the writer
//                    stops dead and cleans up nothing — by design: a
//                    failed writer is indistinguishable from a killed one,
//                    so the recovery pass (write/recovery.h) is the single
//                    code path that ever repairs a table, and the crash
//                    matrix in tests/writer_test.cc can kill the writer at
//                    every step and prove recovery converges.
//   hostile store    Every PUT-class request runs under exec::RunWithRetries
//                    with the configured budget/deadline policy, so
//                    injected throttles, unavailabilities and partial
//                    parts (s3sim/fault.h) are retried; torn-but-acked
//                    writes are caught by the verify-before-commit pass.
//
// Usage:
//   StreamingWriter writer(&store, "events", "lake/");
//   writer.Begin({{"ts", ColumnType::kInteger}, {"msg", ColumnType::kString}});
//   while (more) writer.Append(next_chunk);   // any chunk sizes
//   writer.Commit();                          // or writer.Abort()
//
// See docs/WRITE_PATH.md for the full protocol walk-through.
#ifndef BTR_WRITE_STREAMING_WRITER_H_
#define BTR_WRITE_STREAMING_WRITER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "btr/config.h"
#include "btr/relation.h"
#include "btr/zonemap.h"
#include "exec/retry.h"
#include "s3sim/object_store.h"
#include "util/status.h"
#include "write/intent.h"

namespace btr::write {

struct WriterConfig {
  // How blocks are compressed (same knobs as CompressRelation).
  CompressionConfig compression;
  // Write the <table>.v<N>.zones pruning sidecar (zones are computed from
  // the uncompressed accumulator as each block flushes).
  bool write_zone_map = true;
  // A column's pending part uploads once it reaches this many bytes.
  // Small values exercise many parts; production-shaped values amortize
  // per-request cost. Parts may exceed this by one block's size.
  u64 part_target_bytes = 256 * 1024;
  // Before the manifest swap, read back every staged object and check its
  // size and CRC32C against what the writer sent. Catches silently torn
  // or corrupted PUTs (FaultKind::kTruncate/kCorrupt on the PUT side) at
  // the cost of re-reading the version once. Commit fails with
  // Status::Corruption instead of publishing damaged data.
  bool verify_before_commit = true;
  // Retry discipline for every PUT-class request the writer issues.
  exec::RetryPolicy retry;
  // Test-only failpoint. When set, the writer invokes it at every step
  // boundary with a stable label ("commit:after-staged-intent", ...);
  // returning true simulates the process dying right there: the writer
  // returns Status::IoError immediately and — like a real crash — cleans
  // up nothing. The crash-matrix harness first counts the points, then
  // kills each one in turn (tests/writer_test.cc).
  std::function<bool(const char* label)> failpoint;
};

class StreamingWriter {
 public:
  struct ColumnSpec {
    std::string name;
    ColumnType type = ColumnType::kInteger;
  };

  StreamingWriter(s3sim::ObjectStore* store, std::string table,
                  std::string prefix = "", WriterConfig config = WriterConfig());
  ~StreamingWriter();

  StreamingWriter(const StreamingWriter&) = delete;
  StreamingWriter& operator=(const StreamingWriter&) = delete;

  // Allocates the next version (strictly above both the committed version
  // and any crashed predecessor's staged version), creates one multipart
  // upload per column and journals the kStaging intent. Must be called
  // exactly once, before Append/Commit.
  Status Begin(const std::vector<ColumnSpec>& schema);

  // Appends a chunk of rows. The chunk's columns must match the schema in
  // order, name and type; chunks may be any size (blocks are cut at exactly
  // kBlockCapacity rows regardless of chunk boundaries).
  Status Append(const Relation& chunk);

  // Flushes trailing blocks, uploads headers, journals kStaged, completes
  // the uploads, verifies, and performs the manifest pointer-swap. After
  // Ok the version is durable and visible to new Scanner::Opens.
  Status Commit();

  // Abandons the write. Per the writer-never-cleans-up rule this only
  // marks the writer dead; the staged objects/intent are left for
  // recovery to garbage-collect — exactly like a crash.
  Status Abort();

  // Version this writer is staging (valid after Begin).
  u64 version() const { return version_; }
  u64 rows_appended() const { return rows_appended_; }
  // Blocks cut and staged so far (across all columns).
  u64 blocks_flushed() const { return blocks_flushed_; }

 private:
  enum class State : u8 { kIdle, kOpen, kCommitted, kDead };

  struct ColumnState {
    ColumnSpec spec;
    std::unique_ptr<Column> accumulator;  // < kBlockCapacity buffered rows
    std::string upload_id;
    std::string key;           // final versioned object key
    u32 next_part = 2;         // part 1 is reserved for the header
    ByteBuffer pending;        // serialized payloads awaiting UploadPart
    std::vector<u32> block_sizes;
    std::vector<u32> block_crcs;
    std::vector<u32> block_value_counts;
    std::vector<u8> block_root_schemes;
    std::vector<BlockZone> zones;
    u64 uncompressed_bytes = 0;
    u64 payload_bytes = 0;  // staged payload bytes (excludes the header)
    u32 payload_crc = 0;    // running CRC32C over the concatenated payloads
  };

  // True => simulated crash: the writer is dead, caller must return
  // `failed_status_`. Checked at every step boundary.
  bool CrashAt(const char* label);
  Status Fail(Status status);  // marks kDead and returns the status
  Status PutWithRetries(const std::string& key, const u8* data, size_t size);
  Status WriteIntent(IntentPhase phase);
  // Records one serialized block (size/CRC/count/scheme bookkeeping) and
  // appends its bytes to column `c`'s pending part buffer.
  void StageBlockBytes(size_t c, const u8* data, u32 size, u32 value_count,
                       u8 root_scheme);
  // Compresses the accumulator of column `c` into one block and appends
  // the payload to `pending` (cuts zones too). Accumulator must be
  // non-empty.
  Status FlushBlock(size_t c);
  // Uploads the pending payload bytes of column `c` as the next part.
  Status UploadPending(size_t c);
  Status VerifyStagedObject(const IntentEntry& entry);

  s3sim::ObjectStore* store_;
  std::string table_;
  std::string prefix_;
  WriterConfig config_;
  std::unique_ptr<exec::RetryState> retry_;

  State state_ = State::kIdle;
  Status failed_status_;  // first failure, sticky
  u64 version_ = 0;
  u64 rows_appended_ = 0;
  u64 blocks_flushed_ = 0;
  std::vector<ColumnState> columns_;
  // Size/CRC of the staged sidecar objects, recorded for the kStaged
  // intent and the verification pass.
  u64 zones_size_ = 0;
  u32 zones_crc_ = 0;
  u64 meta_size_ = 0;
  u32 meta_crc_ = 0;

  friend Status CommitCompressedRelation(const CompressedRelation&,
                                         const TableZoneMap*,
                                         const std::string&,
                                         s3sim::ObjectStore*,
                                         const WriterConfig&);
};

// Commits an already-compressed relation through the same staging/commit
// protocol (same intent journaling, multipart staging, verification and
// manifest swap) — the compressed blocks are fed straight into the part
// stream instead of through the accumulator. UploadCompressedRelation
// (btr/scanner.h) is a thin wrapper over this.
Status CommitCompressedRelation(const CompressedRelation& relation,
                                const TableZoneMap* zones,
                                const std::string& prefix,
                                s3sim::ObjectStore* store,
                                const WriterConfig& config = WriterConfig());

}  // namespace btr::write

#endif  // BTR_WRITE_STREAMING_WRITER_H_
