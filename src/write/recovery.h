// Crash recovery for the streaming write path: the single code path that
// repairs a table after a writer died (or aborted — the writer never
// cleans up after itself, see write/streaming_writer.h).
//
// The protocol makes recovery a pure function of the store's contents:
//
//   intent with version V <= committed       the version is already
//                                            published (or superseded);
//                                            the intent is garbage.
//   intent V > committed, phase = kStaging   the writer died before all
//                                            contents were staged — the
//                                            version can never complete.
//                                            Roll BACK: abort its multipart
//                                            uploads, delete its staged
//                                            objects, drop the intent.
//   intent V > committed, phase = kStaged    every object's bytes were
//                                            fully uploaded and the intent
//                                            records each expected size and
//                                            CRC32C. Roll FORWARD: complete
//                                            any multipart upload the writer
//                                            didn't get to (this is what
//                                            makes the uploads *resumable*),
//                                            verify every object against the
//                                            intent, and publish the version
//                                            with the same manifest Put the
//                                            writer would have issued. If
//                                            verification fails the version
//                                            is damaged and rolls back
//                                            instead.
//   versioned keys/uploads above the final   orphans from a writer that
//   committed version with no intent         died before journaling (or
//                                            whose intent was unreadable) —
//                                            garbage-collected.
//
// Fsck is idempotent: running it again (including on a clean store) is a
// no-op, and re-running after it was itself interrupted converges to the
// same either-old-or-new outcome — the crash matrix in
// tests/writer_test.cc proves this at every writer crash point.
//
// `btrtool fsck [--repair]` is the CLI entry point; without --repair the
// same analysis runs read-only and reports what it would do.
#ifndef BTR_WRITE_RECOVERY_H_
#define BTR_WRITE_RECOVERY_H_

#include <string>
#include <vector>

#include "exec/retry.h"
#include "s3sim/object_store.h"
#include "util/status.h"

namespace btr::write {

struct FsckOptions {
  // Mutate the store (complete/abort uploads, delete objects, swap the
  // manifest). When false, Fsck is read-only analysis: the report lists
  // what repair would do and `clean` is false if anything needs doing.
  bool repair = false;
  // Additionally deep-check the *committed* version: parse its metadata,
  // zone map and column files and verify every block CRC. Catches bit rot
  // that no intent record covers.
  bool verify_committed = false;
  // Retry discipline for the GETs/PUTs recovery issues against a store
  // that may still be throwing transient faults.
  exec::RetryPolicy retry;
};

struct FsckReport {
  u64 committed_version_before = 0;
  u64 committed_version_after = 0;
  u32 intents_seen = 0;
  u32 rolled_forward = 0;    // staged versions published by recovery
  u32 rolled_back = 0;       // staging/damaged versions discarded
  u32 uploads_completed = 0; // interrupted multipart uploads finished
  u32 uploads_aborted = 0;
  u32 objects_deleted = 0;   // staged/orphaned objects GC'd
  u32 intents_deleted = 0;
  u32 orphans_deleted = 0;   // versioned keys/uploads with no intent
  u32 verify_failures = 0;   // size/CRC mismatches found
  // Human-readable log of findings and (in repair mode) actions taken.
  std::vector<std::string> notes;
  // True when the store needed nothing: no stray intents, uploads or
  // orphans (and, with verify_committed, the committed version checks
  // out). In repair mode, true means the store was already clean.
  bool clean = true;
};

// Analyzes (and with options.repair, repairs) table `table` under key
// prefix `prefix`. Returns non-OK only when recovery itself could not
// make progress (e.g. the store kept failing past the retry budget);
// inconsistencies it can classify are reported in `report`, not as
// errors. Safe to re-run at any time.
Status Fsck(s3sim::ObjectStore* store, const std::string& prefix,
            const std::string& table, const FsckOptions& options,
            FsckReport* report);

}  // namespace btr::write

#endif  // BTR_WRITE_RECOVERY_H_
