// Versioned table manifests: the atomic commit point of the write path.
//
// BtrBlocks keeps data files free of metadata (paper Sections 2.1/6.7),
// which makes pointer-swap commits natural: every write of a table stages
// a complete, immutable set of objects under a *versioned* name —
//
//   <prefix><table>.v<N>.btrmeta
//   <prefix><table>.v<N>.<col>.btr
//   <prefix><table>.v<N>.zones
//
// — and publishes it with a single Put of the tiny manifest object
// <prefix><table>.manifest, whose payload names the committed version N.
// A reader (btr::Scanner::Open) resolves the manifest first and then only
// ever touches that version's objects, so a commit racing a scan is
// invisible: the reader sees version N-1 or version N, bit-identical,
// never a mix. Stores without a manifest fall back to the unversioned
// legacy keys, so hand-placed tables keep working.
//
// Versions are never reused: an interrupted write leaves its versioned
// objects (and a write-ahead intent record, src/write/intent.h) behind for
// recovery to roll forward or garbage-collect (src/write/recovery.h), and
// the next writer picks a strictly higher version.
//
// Manifest payload (CRC-trailed like every other framing in this repo):
//   "BTRV" | u32 format | u64 committed_version | u16 name_len | name
//   | u32 CRC32C over all preceding bytes.
#ifndef BTR_WRITE_MANIFEST_H_
#define BTR_WRITE_MANIFEST_H_

#include <string>

#include "s3sim/object_store.h"
#include "util/buffer.h"
#include "util/status.h"
#include "util/types.h"

namespace btr::write {

inline constexpr u32 kManifestFormatVersion = 1;

struct Manifest {
  std::string table;
  // Committed version, >= 1. Version 0 means "no committed version" and is
  // never serialized.
  u64 committed_version = 0;
};

// <prefix><table>.manifest
std::string ManifestKey(const std::string& prefix, const std::string& table);
// "<table>.v<N>" — substituted for the table name in the existing
// TableMetaKey/ColumnFileKey/ZoneMapKey helpers (btr/file_format.h), so
// the versioned layout reuses the unversioned framing unchanged.
std::string VersionedName(const std::string& table, u64 version);
// <prefix><table>.v<N>.intent — the write-ahead intent record staged next
// to the version it describes (src/write/intent.h).
std::string IntentKey(const std::string& prefix, const std::string& table,
                      u64 version);

// True when `key` belongs to version `*version` of `table` under `prefix`
// — i.e. it starts with "<prefix><table>.v<digits>." — regardless of
// which object of the version it is. Recovery uses this to sweep
// orphaned staged objects, writers to skip over versions a crashed
// predecessor already burned.
bool ParseVersionedKey(const std::string& key, const std::string& prefix,
                       const std::string& table, u64* version);

void SerializeManifest(const Manifest& manifest, ByteBuffer* out);
Status ParseManifest(const u8* data, size_t size, Manifest* out);

// Reads and parses <prefix><table>.manifest. A missing manifest is not an
// error: Ok with committed_version == 0 (legacy store or never-committed
// table). GETs are *not* retried here — callers wrap this in their own
// retry discipline (the scanner's Open already has one).
Status ReadManifest(s3sim::ObjectStore* store, const std::string& prefix,
                    const std::string& table, Manifest* out);

// The name scan-side key construction should use for `table`: the
// committed VersionedName when a manifest exists, the plain table name
// otherwise. Tests and benches that address column objects directly go
// through this instead of hard-coding a layout.
Status ResolveCommittedName(s3sim::ObjectStore* store,
                            const std::string& prefix,
                            const std::string& table, std::string* name);

}  // namespace btr::write

#endif  // BTR_WRITE_MANIFEST_H_
