// Write-ahead intent records: what a writer promises before it stages.
//
// Before a StreamingWriter uploads anything for version N it Puts
// <prefix><table>.v<N>.intent describing every object the version will
// consist of; the record is rewritten as the write advances through a
// classic presumed-abort two-phase protocol:
//
//   kStaging  declared at Begin. Objects and multipart parts are landing
//             but the set is not yet complete/verified. A crash here
//             rolls *back*: recovery aborts the uploads, deletes the
//             staged objects and the intent — the table stays at the
//             previous committed version.
//   kStaged   declared once every object is fully staged (all multipart
//             parts uploaded, meta/zones Put) with the expected size and
//             CRC32C of each final object recorded. A crash after this
//             point rolls *forward*: recovery completes the uploads,
//             verifies each object against the recorded size/CRC, and
//             performs the manifest pointer-swap itself. Verification
//             failure demotes to roll-back — the old version survives.
//
// After the manifest swap the intent is deleted; an intent whose version
// is <= the committed one is garbage by definition. The record never
// stores data, only names + integrity expectations, so it stays tiny.
//
// Payload framing (CRC-trailed):
//   "BTRI" | u32 format | u64 version | u8 phase | u16 name_len | name |
//   u32 entry_count | per entry: u16 key_len | key | u16 id_len |
//   upload_id | u64 size | u32 crc32c | u32 CRC32C over all preceding.
#ifndef BTR_WRITE_INTENT_H_
#define BTR_WRITE_INTENT_H_

#include <string>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"
#include "util/types.h"

namespace btr::write {

inline constexpr u32 kIntentFormatVersion = 1;

enum class IntentPhase : u8 {
  kStaging = 0,  // crash => roll back
  kStaged = 1,   // crash => roll forward
};

const char* IntentPhaseName(IntentPhase phase);

struct IntentEntry {
  // Final object key this entry will publish (already versioned).
  std::string key;
  // Multipart upload staging the key; empty for plain-Put objects
  // (meta/zones) and cleared once the upload completed.
  std::string upload_id;
  // Expected size and CRC32C of the *final assembled object*. Meaningful
  // (and verified by recovery) only in phase kStaged.
  u64 size = 0;
  u32 crc32c = 0;
};

struct IntentRecord {
  std::string table;
  u64 version = 0;
  IntentPhase phase = IntentPhase::kStaging;
  std::vector<IntentEntry> entries;
};

void SerializeIntent(const IntentRecord& intent, ByteBuffer* out);
Status ParseIntent(const u8* data, size_t size, IntentRecord* out);

}  // namespace btr::write

#endif  // BTR_WRITE_INTENT_H_
