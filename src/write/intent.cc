#include "write/intent.h"

#include <cstring>

#include "util/crc32c.h"

namespace btr::write {

namespace {
constexpr char kIntentMagic[4] = {'B', 'T', 'R', 'I'};
}  // namespace

const char* IntentPhaseName(IntentPhase phase) {
  switch (phase) {
    case IntentPhase::kStaging: return "staging";
    case IntentPhase::kStaged: return "staged";
  }
  return "?";
}

void SerializeIntent(const IntentRecord& intent, ByteBuffer* out) {
  size_t start = out->size();
  out->Append(kIntentMagic, 4);
  out->AppendValue<u32>(kIntentFormatVersion);
  out->AppendValue<u64>(intent.version);
  out->AppendValue<u8>(static_cast<u8>(intent.phase));
  out->AppendValue<u16>(static_cast<u16>(intent.table.size()));
  out->Append(intent.table.data(), intent.table.size());
  out->AppendValue<u32>(static_cast<u32>(intent.entries.size()));
  for (const IntentEntry& entry : intent.entries) {
    out->AppendValue<u16>(static_cast<u16>(entry.key.size()));
    out->Append(entry.key.data(), entry.key.size());
    out->AppendValue<u16>(static_cast<u16>(entry.upload_id.size()));
    out->Append(entry.upload_id.data(), entry.upload_id.size());
    out->AppendValue<u64>(entry.size);
    out->AppendValue<u32>(entry.crc32c);
  }
  out->AppendValue<u32>(Crc32c(out->data() + start, out->size() - start));
}

Status ParseIntent(const u8* data, size_t size, IntentRecord* out) {
  if (size < 4) return Status::Corruption("intent too small for CRC");
  u32 stored_crc;
  std::memcpy(&stored_crc, data + size - 4, 4);
  if (Crc32c(data, size - 4) != stored_crc) {
    return Status::Corruption("intent CRC mismatch");
  }
  const u8* p = data;
  size_t remaining = size - 4;
  auto read = [&](void* dst, size_t n) {
    if (n > remaining) return false;
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
    return true;
  };
  auto read_string = [&](std::string* dst) {
    u16 len;
    if (!read(&len, 2)) return false;
    dst->resize(len);
    return read(dst->data(), len);
  };
  char magic[4];
  if (!read(magic, 4) || std::memcmp(magic, kIntentMagic, 4) != 0) {
    return Status::Corruption("bad intent magic");
  }
  u32 format;
  if (!read(&format, 4)) return Status::Corruption("truncated intent");
  if (format != kIntentFormatVersion) {
    return Status::Corruption("unsupported intent format " +
                              std::to_string(format));
  }
  u8 phase;
  if (!read(&out->version, 8) || !read(&phase, 1)) {
    return Status::Corruption("truncated intent");
  }
  if (phase > static_cast<u8>(IntentPhase::kStaged)) {
    return Status::Corruption("bad intent phase");
  }
  out->phase = static_cast<IntentPhase>(phase);
  u32 entry_count;
  if (!read_string(&out->table) || !read(&entry_count, 4)) {
    return Status::Corruption("truncated intent");
  }
  out->entries.clear();
  out->entries.resize(entry_count);
  for (IntentEntry& entry : out->entries) {
    if (!read_string(&entry.key) || !read_string(&entry.upload_id) ||
        !read(&entry.size, 8) || !read(&entry.crc32c, 4)) {
      return Status::Corruption("truncated intent entry");
    }
  }
  return Status::Ok();
}

}  // namespace btr::write
