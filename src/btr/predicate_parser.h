// A small SQL-ish WHERE-clause parser producing PredicateExpr trees, used
// by `btrtool scan --where` and anywhere else a textual filter is handier
// than composing the expression API by hand.
//
// Grammar (keywords case-insensitive, usual precedence NOT > AND > OR):
//
//   expr       := or
//   or         := and ( OR and )*
//   and        := unary ( AND unary )*
//   unary      := NOT unary | '(' expr ')' | comparison
//   comparison := ident ( '=' | '==' | '!=' | '<>' | '<' | '<=' | '>'
//                       | '>=' ) literal
//               | ident BETWEEN literal AND literal
//               | ident [NOT] IN '(' literal ( ',' literal )* ')'
//   literal    := 'string' | "string" | number
//
// Literal typing decides the leaf type: quoted literals are strings,
// numbers containing '.', 'e' or 'E' are doubles, everything else is a
// 32-bit integer. Mixed int/double lists and BETWEEN bounds promote to
// double; btr::Scanner additionally coerces integer leaves that target
// double columns at resolve time. `!=`/`<>` and NOT IN desugar to
// NOT(...). Examples:
//
//   col >= 5 AND name IN ('a', 'b')
//   NOT (price BETWEEN 10.5 AND 20 OR city = 'berlin')
#ifndef BTR_BTR_PREDICATE_PARSER_H_
#define BTR_BTR_PREDICATE_PARSER_H_

#include <string_view>

#include "btr/predicate.h"
#include "util/status.h"

namespace btr {

// Parses `text` into `*out`. On error returns InvalidArgument with a
// message naming the offending token and byte offset; *out is left empty.
// An empty / all-whitespace input parses to the empty expression
// (matches every row).
Status ParsePredicate(std::string_view text, PredicateExpr* out);

}  // namespace btr

#endif  // BTR_BTR_PREDICATE_PARSER_H_
