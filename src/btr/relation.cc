#include "btr/relation.h"

#include <algorithm>

#include "obs/trace.h"

namespace btr {

CompressedColumn CompressColumn(const Column& column,
                                const CompressionConfig& config) {
  BTR_TRACE_SPAN("btr.compress.column");
  CompressedColumn result;
  result.name = column.name();
  result.type = column.type();
  result.uncompressed_bytes = column.UncompressedBytes();
  u32 row_count = column.size();
  std::vector<u32> scratch_offsets;
  for (u32 begin = 0; begin < row_count; begin += kBlockCapacity) {
    u32 count = std::min(kBlockCapacity, row_count - begin);
    ByteBuffer block;
    BlockCompressionInfo info;
    const u8* nulls = column.null_flags().data() + begin;
    // Skip the null bitmap entirely for all-valid ranges.
    bool has_nulls = false;
    for (u32 i = 0; i < count && !has_nulls; i++) has_nulls = nulls[i] != 0;
    const u8* null_arg = has_nulls ? nulls : nullptr;
    switch (column.type()) {
      case ColumnType::kInteger:
        CompressIntBlock(column.ints().data() + begin, null_arg, count, &block,
                         config, &info);
        break;
      case ColumnType::kDouble:
        CompressDoubleBlock(column.doubles().data() + begin, null_arg, count,
                            &block, config, &info);
        break;
      case ColumnType::kString: {
        StringsView view = column.StringBlock(begin, count, &scratch_offsets);
        CompressStringBlock(view, null_arg, &block, config, &info);
        break;
      }
    }
    result.blocks.push_back(std::move(block));
    result.block_value_counts.push_back(count);
    result.block_root_schemes.push_back(info.root_scheme);
    if (config.collect_cascade_trace) {
      result.block_traces.push_back(std::move(info.trace));
    }
  }
  return result;
}

CompressedRelation CompressRelation(const Relation& relation,
                                    const CompressionConfig& config,
                                    exec::ThreadPool* pool) {
  CompressedRelation result;
  result.name = relation.name();
  result.row_count = relation.row_count();
  result.columns.resize(relation.columns().size());
  exec::ParallelFor(pool, 0, relation.columns().size(), [&](u64 i) {
    result.columns[i] = CompressColumn(relation.columns()[i], config);
  });
  return result;
}

u64 DecompressColumn(const CompressedColumn& column,
                     const CompressionConfig& config, DecodedBlock* scratch) {
  BTR_TRACE_SPAN("btr.decompress.column");
  u64 bytes = 0;
  for (const ByteBuffer& block : column.blocks) {
    DecompressBlock(block.data(), scratch, config);
    bytes += scratch->ValueBytes();
  }
  return bytes;
}

u64 DecompressRelation(const CompressedRelation& relation,
                       const CompressionConfig& config,
                       exec::ThreadPool* pool) {
  std::vector<u64> bytes(relation.columns.size(), 0);
  exec::ParallelFor(pool, 0, relation.columns.size(), [&](u64 i) {
    DecodedBlock scratch;
    bytes[i] = DecompressColumn(relation.columns[i], config, &scratch);
  });
  u64 total = 0;
  for (u64 b : bytes) total += b;
  return total;
}

Relation MaterializeRelation(const CompressedRelation& compressed,
                             const CompressionConfig& config) {
  Relation relation(compressed.name);
  for (const CompressedColumn& cc : compressed.columns) {
    Column& column = relation.AddColumn(cc.name, cc.type);
    DecodedBlock block;
    for (const ByteBuffer& blob : cc.blocks) {
      DecompressBlock(blob.data(), &block, config);
      for (u32 i = 0; i < block.count; i++) {
        if (block.IsNull(i)) {
          column.AppendNull();
          continue;
        }
        switch (block.type) {
          case ColumnType::kInteger: column.AppendInt(block.ints[i]); break;
          case ColumnType::kDouble: column.AppendDouble(block.doubles[i]); break;
          case ColumnType::kString:
            column.AppendString(block.strings.Get(i));
            break;
        }
      }
    }
  }
  return relation;
}

}  // namespace btr
