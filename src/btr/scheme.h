// Encoding scheme interfaces and the per-type scheme pools.
//
// Mirrors the paper's Listing 1: every scheme can (a) estimate its
// compression ratio on a sample — returning 0 when statistics rule it out —
// and (b) compress/decompress a full block, possibly cascading into
// recursive CompressInts/CompressDoubles/CompressStrings calls with a
// decremented recursion budget.
//
// Payload framing convention: a "compressed vector" is [u8 scheme code]
// [payload]. Parents that embed child vectors store the child's byte size
// themselves. Decompression output buffers must provide kDecodeSlack
// elements of slack past the logical end: vectorized kernels intentionally
// overshoot and correct the cursor afterwards (paper Section 5).
#ifndef BTR_BTR_SCHEME_H_
#define BTR_BTR_SCHEME_H_

#include "btr/config.h"
#include "btr/sampling.h"
#include "btr/stats.h"
#include "util/buffer.h"

namespace btr {

// Elements (not bytes) of writable slack required past decompression
// output ends.
inline constexpr u32 kDecodeSlack = 16;

class IntScheme {
 public:
  virtual ~IntScheme() = default;
  virtual IntSchemeCode code() const = 0;
  virtual const char* name() const = 0;
  // Estimated compression ratio (input bytes / output bytes) on the
  // sample; 0 if the scheme is not viable for this block.
  virtual double EstimateRatio(const IntStats& stats, const IntSample& sample,
                               const CompressionContext& ctx) const = 0;
  // Appends [payload] (scheme byte written by the picker). Returns bytes.
  virtual size_t Compress(const i32* in, u32 count, ByteBuffer* out,
                          const CompressionContext& ctx) const = 0;
  virtual void Decompress(const u8* in, u32 count, i32* out) const = 0;
};

class DoubleScheme {
 public:
  virtual ~DoubleScheme() = default;
  virtual DoubleSchemeCode code() const = 0;
  virtual const char* name() const = 0;
  virtual double EstimateRatio(const DoubleStats& stats,
                               const DoubleSample& sample,
                               const CompressionContext& ctx) const = 0;
  virtual size_t Compress(const double* in, u32 count, ByteBuffer* out,
                          const CompressionContext& ctx) const = 0;
  virtual void Decompress(const u8* in, u32 count, double* out) const = 0;
};

class StringScheme {
 public:
  virtual ~StringScheme() = default;
  virtual StringSchemeCode code() const = 0;
  virtual const char* name() const = 0;
  virtual double EstimateRatio(const StringStats& stats,
                               const StringSample& sample,
                               const CompressionContext& ctx) const = 0;
  virtual size_t Compress(const StringsView& in, ByteBuffer* out,
                          const CompressionContext& ctx) const = 0;
  // `count` strings; appends bytes to out->pool and slots to out->slots.
  virtual void Decompress(const u8* in, u32 count, DecodedStrings* out,
                          const CompressionConfig& config) const = 0;
};

// Process-lifetime scheme registries.
const IntScheme& GetIntScheme(IntSchemeCode code);
const DoubleScheme& GetDoubleScheme(DoubleSchemeCode code);
const StringScheme& GetStringScheme(StringSchemeCode code);

}  // namespace btr

#endif  // BTR_BTR_SCHEME_H_
