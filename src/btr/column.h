// Column data model. BtrBlocks compresses typed columns of integers,
// double floating-point numbers and variable-length strings (paper
// Section 2.2), divided into fixed-size blocks of 64,000 entries.
#ifndef BTR_BTR_COLUMN_H_
#define BTR_BTR_COLUMN_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/buffer.h"
#include "util/types.h"

namespace btr {

inline constexpr u32 kBlockCapacity = 64000;  // values per block (paper 2.2)

enum class ColumnType : u8 { kInteger = 0, kDouble = 1, kString = 2 };

const char* ColumnTypeName(ColumnType type);

// Non-owning view over a contiguous run of strings.
// offsets has count+1 entries; string i spans data[offsets[i], offsets[i+1]).
struct StringsView {
  const u32* offsets = nullptr;
  const u8* data = nullptr;
  u32 count = 0;

  u32 TotalBytes() const { return count == 0 ? 0 : offsets[count] - offsets[0]; }
  u32 Length(u32 i) const { return offsets[i + 1] - offsets[i]; }
  std::string_view Get(u32 i) const {
    return std::string_view(reinterpret_cast<const char*>(data + offsets[i]),
                            Length(i));
  }
};

// Decompressed string block: (offset, length) slots into a shared pool.
// This mirrors the paper's decompression layout (Section 5): dictionary
// decoding emits fixed-size tuples instead of copying string bytes.
struct StringSlot {
  u32 offset;
  u32 length;
};

struct DecodedStrings {
  std::vector<StringSlot> slots;
  ByteBuffer pool;

  std::string_view Get(u32 i) const {
    return std::string_view(
        reinterpret_cast<const char*>(pool.data() + slots[i].offset),
        slots[i].length);
  }
};

// An owning, in-memory column. NULL entries keep a default value in the
// value array (0 / 0.0 / "") and set the corresponding null flag, matching
// how BtrBlocks separates NULL tracking from value encoding.
class Column {
 public:
  Column(std::string name, ColumnType type) : name_(std::move(name)), type_(type) {}

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  u32 size() const { return row_count_; }

  // --- Appending ------------------------------------------------------------
  void AppendInt(i32 value) {
    BTR_DCHECK(type_ == ColumnType::kInteger);
    ints_.push_back(value);
    null_flags_.push_back(0);
    row_count_++;
  }
  void AppendDouble(double value) {
    BTR_DCHECK(type_ == ColumnType::kDouble);
    doubles_.push_back(value);
    null_flags_.push_back(0);
    row_count_++;
  }
  void AppendString(std::string_view value) {
    BTR_DCHECK(type_ == ColumnType::kString);
    string_data_.insert(string_data_.end(), value.begin(), value.end());
    string_offsets_.push_back(static_cast<u32>(string_data_.size()));
    null_flags_.push_back(0);
    row_count_++;
  }
  void AppendNull() {
    switch (type_) {
      case ColumnType::kInteger: ints_.push_back(0); break;
      case ColumnType::kDouble: doubles_.push_back(0.0); break;
      case ColumnType::kString:
        string_offsets_.push_back(static_cast<u32>(string_data_.size()));
        break;
    }
    null_flags_.push_back(1);
    row_count_++;
  }

  // --- Access -----------------------------------------------------------------
  const std::vector<i32>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  bool IsNull(u32 row) const { return null_flags_[row] != 0; }
  const std::vector<u8>& null_flags() const { return null_flags_; }

  std::string_view GetString(u32 row) const {
    u32 begin = row == 0 ? 0 : string_offsets_[row - 1];
    u32 end = string_offsets_[row];
    return std::string_view(
        reinterpret_cast<const char*>(string_data_.data()) + begin, end - begin);
  }

  // View of rows [begin, begin+count). For string columns the returned view
  // points into scratch_offsets, which must outlive the view.
  StringsView StringBlock(u32 begin, u32 count,
                          std::vector<u32>* scratch_offsets) const;

  // Uncompressed in-memory footprint in bytes (values + offsets).
  u64 UncompressedBytes() const;

  u32 BlockCount() const { return (row_count_ + kBlockCapacity - 1) / kBlockCapacity; }

 private:
  std::string name_;
  ColumnType type_;
  u32 row_count_ = 0;

  std::vector<i32> ints_;
  std::vector<double> doubles_;
  std::vector<u8> string_data_;
  std::vector<u32> string_offsets_;  // end offset of row i (size == row_count_)
  std::vector<u8> null_flags_;
};

}  // namespace btr

#endif  // BTR_BTR_COLUMN_H_
