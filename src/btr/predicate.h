// Composable predicate expressions — the single filtering surface for
// btr::Scanner, zone-map pruning and block-level evaluation.
//
// A PredicateExpr is a small expression tree: leaf comparisons over typed
// columns (=, <, <=, >, >=, BETWEEN, IN) combined with AND / OR / NOT.
// Three questions are answered against it:
//
//   ZoneMayMatch(expr, zone_of)       can this row block contain a match?
//                                     (conservative pruning from zone maps)
//   SelectMatches(blocks, expr, cfg)  matching row positions of one row
//                                     block as a roaring selection vector,
//                                     evaluated on the *compressed* form
//                                     when the root scheme allows
//                                     (paper Section 7, docs/PREDICATES.md)
//   HasFastPath(block, leaf)          does the block's root scheme admit a
//                                     sub-linear / no-materialization path?
//
// Semantics are SQL three-valued logic: a leaf comparison against a NULL
// row is UNKNOWN, AND/OR/NOT combine by Kleene logic, and the final
// selection keeps only rows where the whole expression is TRUE. Double
// equality (kEq/kIn) compares bit patterns — the storage format is
// lossless down to NaN payloads — while the ordered operators use IEEE
// ordered comparisons, so `x < 5.0` never matches NaN but `x = NaN`
// matches stored NaNs of identical bits.
//
// The legacy single-op `Predicate` (equality only) is now an alias for a
// leaf PredicateExpr; Predicate::EqualsInt / EqualsDouble / EqualsString
// keep compiling unchanged.
#ifndef BTR_BTR_PREDICATE_H_
#define BTR_BTR_PREDICATE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "bitmap/roaring.h"
#include "btr/column.h"
#include "btr/config.h"
#include "btr/datablock.h"
#include "btr/zonemap.h"

namespace btr {

// Leaf comparison operator. kBetween carries both bounds inclusively;
// strict bounds are expressed with kLt/kGt (the builder canonicalizes).
enum class CompareOp : u8 {
  kEq = 0,       // col = v
  kLt = 1,       // col < v
  kLe = 2,       // col <= v
  kGt = 3,       // col > v
  kGe = 4,       // col >= v
  kBetween = 5,  // lo <= col <= hi (inclusive both sides)
  kIn = 6,       // col IN (v0, v1, ...)
};

const char* CompareOpName(CompareOp op);

struct PredicateExpr {
  enum class Kind : u8 {
    kNone = 0,  // empty expression: matches every row (no filtering)
    kLeaf = 1,
    kAnd = 2,
    kOr = 3,
    kNot = 4,
  };

  Kind kind = Kind::kNone;
  std::vector<PredicateExpr> children;  // kAnd/kOr: >=1, kNot: exactly 1

  // --- leaf payload (kind == kLeaf) -----------------------------------------
  // Raw operands as written: single-operand ops (kEq/kLt/kLe/kGt/kGe)
  // carry their value in *_lo (mirrored into *_hi), kBetween carries both
  // bounds, kIn carries the set (sorted + deduplicated by the factory;
  // double sets are ordered by bit pattern to match kEq bit-equality).
  // The evaluation engine derives closed ranges from (op, operands).
  std::string column;
  ColumnType type = ColumnType::kInteger;
  CompareOp op = CompareOp::kEq;
  i32 int_lo = 0;
  i32 int_hi = 0;
  std::vector<i32> int_set;
  double double_lo = 0;
  double double_hi = 0;
  std::vector<double> double_set;
  std::string string_lo;
  std::string string_hi;
  std::vector<std::string> string_set;

  bool Empty() const { return kind == Kind::kNone; }
  bool IsLeaf() const { return kind == Kind::kLeaf; }

  // --- leaf factories -------------------------------------------------------
  static PredicateExpr EqualsInt(std::string column, i32 value);
  static PredicateExpr EqualsDouble(std::string column, double value);
  static PredicateExpr EqualsString(std::string column, std::string value);

  // cmp is one of kLt/kLe/kGt/kGe (kEq also accepted).
  static PredicateExpr CompareInt(std::string column, CompareOp cmp, i32 value);
  static PredicateExpr CompareDouble(std::string column, CompareOp cmp,
                                     double value);
  static PredicateExpr CompareString(std::string column, CompareOp cmp,
                                     std::string value);

  // Inclusive BETWEEN on both sides.
  static PredicateExpr BetweenInt(std::string column, i32 lo, i32 hi);
  static PredicateExpr BetweenDouble(std::string column, double lo, double hi);
  static PredicateExpr BetweenString(std::string column, std::string lo,
                                     std::string hi);

  static PredicateExpr InInt(std::string column, std::vector<i32> values);
  static PredicateExpr InDouble(std::string column, std::vector<double> values);
  static PredicateExpr InString(std::string column,
                                std::vector<std::string> values);

  // --- combinators ----------------------------------------------------------
  // Empty operands are dropped; And()/Or() of zero operands is Empty.
  static PredicateExpr And(std::vector<PredicateExpr> operands);
  static PredicateExpr Or(std::vector<PredicateExpr> operands);
  static PredicateExpr Not(PredicateExpr operand);
  static PredicateExpr And(PredicateExpr a, PredicateExpr b);
  static PredicateExpr Or(PredicateExpr a, PredicateExpr b);

  // Every column name referenced by some leaf, deduplicated, in first-use
  // order.
  std::vector<std::string> Columns() const;

  // Leaves in depth-first order (planning / per-leaf stats identity).
  void ForEachLeaf(const std::function<void(const PredicateExpr&)>& fn) const;

  // Human-readable SQL-ish rendering ("a >= 5 AND b IN ('x', 'y')").
  std::string ToString() const;
};

// Legacy name: the old struct Predicate was a single equality leaf. All
// existing call sites (Predicate::EqualsInt, ScanSpec::predicates, ...)
// keep working against the leaf subset of PredicateExpr.
using Predicate = PredicateExpr;

// --- zone-map pruning --------------------------------------------------------

// Conservative pruning of one leaf against one block zone: false means no
// row of the block can satisfy the comparison, true means some row may.
bool ZoneMayMatchLeaf(const BlockZone& zone, const PredicateExpr& leaf);

// Whole-expression pruning. `zone_of` maps a column name to that column's
// zone for the block under test (nullptr = no zone known, stay
// conservative). AND prunes when any conjunct proves empty; OR prunes
// only when every disjunct does; NOT never prunes (a zone proves
// existence of *some* matching row only in degenerate cases).
bool ZoneMayMatch(
    const PredicateExpr& expr,
    const std::function<const BlockZone*(const std::string&)>& zone_of);

// Single-zone convenience for one-column expressions (the legacy
// signature): every leaf is checked against `zone`.
bool ZoneMayMatch(const BlockZone& zone, const PredicateExpr& expr);

// --- block-level evaluation --------------------------------------------------

// Kleene evaluation result over one row block: `pass` holds rows where the
// expression is TRUE, `unknown` rows where it is UNKNOWN (some compared
// column is NULL and the comparison outcome cannot be decided). Rows in
// neither set are FALSE. SQL WHERE keeps only `pass`.
struct EvalResult {
  RoaringBitmap pass;
  RoaringBitmap unknown;
};

// Per-leaf evaluation telemetry, keyed by the leaf's depth-first index.
struct LeafEvalStats {
  u64 fast_path = 0;     // evaluated on compressed form without full decode
  u64 materialized = 0;  // fell back to decode-then-compare
};

// Evaluates `expr` over one row block. `block_of` maps a column name to
// the serialized block bytes of that column for this row block (never
// null for a referenced column; the Scanner guarantees this by fetching
// every predicate column). `row_count` is the block's row count.
// `leaf_stats` (optional) must have one entry per depth-first leaf.
EvalResult EvaluateExpr(
    const PredicateExpr& expr, u32 row_count,
    const std::function<const u8*(const std::string&)>& block_of,
    const CompressionConfig& config, std::vector<LeafEvalStats>* leaf_stats);

// Single-block convenience for one-column expressions: every leaf is
// evaluated against `block`. Returns only the TRUE rows.
RoaringBitmap SelectMatches(const u8* block, const PredicateExpr& expr,
                            const CompressionConfig& config);

// Match count of a one-column expression over one block.
u32 CountMatches(const u8* block, const PredicateExpr& expr,
                 const CompressionConfig& config);

// Reference evaluation over already-decoded blocks (decode-then-filter).
// Used by ScanConfig::enable_predicate_pushdown = false and as the oracle
// the SIMD kernels are property-tested against.
EvalResult EvaluateExprDecoded(
    const PredicateExpr& expr, u32 row_count,
    const std::function<const DecodedBlock*(const std::string&)>& decoded_of);

// True when `block`'s root scheme admits a sub-linear / partial-decode
// evaluation for this leaf (no full row materialization). See the
// (scheme x op) support matrix in docs/PREDICATES.md.
bool HasFastPath(const u8* block, const PredicateExpr& leaf);

}  // namespace btr

#endif  // BTR_BTR_PREDICATE_H_
