// Typed predicates — the single surface btr::Scanner (and new code in
// general) uses for filtering. A Predicate names a column, carries a typed
// comparison value, and knows how to answer three questions:
//
//   ZoneMayMatch(zone, p)          can block `zone` contain a match? (pruning)
//   SelectMatches(block, p, cfg)   matching row positions of one compressed
//                                  block as a selection vector, evaluated on
//                                  the compressed form when the root scheme
//                                  allows (paper Section 7)
//   CountMatches(block, p, cfg)    just the match count
//
// This folds the nine per-type free functions of compressed_scan.h
// (CountEquals{Int,Double,String}, SelectEquals{...}, HasFastEqualsPath)
// behind one typed API; those functions remain as the implementation
// kernels and as deprecated shims for existing callers.
#ifndef BTR_BTR_PREDICATE_H_
#define BTR_BTR_PREDICATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "bitmap/roaring.h"
#include "btr/column.h"
#include "btr/config.h"
#include "btr/zonemap.h"

namespace btr {

struct Predicate {
  enum class Op : u8 {
    kEquals = 0,  // col = value (NULL never matches; SQL semantics)
  };

  std::string column;  // column name, resolved against table metadata
  ColumnType type = ColumnType::kInteger;
  Op op = Op::kEquals;
  i32 int_value = 0;
  double double_value = 0;
  std::string string_value;

  static Predicate EqualsInt(std::string column, i32 value) {
    Predicate p;
    p.column = std::move(column);
    p.type = ColumnType::kInteger;
    p.int_value = value;
    return p;
  }
  static Predicate EqualsDouble(std::string column, double value) {
    Predicate p;
    p.column = std::move(column);
    p.type = ColumnType::kDouble;
    p.double_value = value;
    return p;
  }
  static Predicate EqualsString(std::string column, std::string value) {
    Predicate p;
    p.column = std::move(column);
    p.type = ColumnType::kString;
    p.string_value = std::move(value);
    return p;
  }
};

// Conservative zone-map pruning: false means no row of the block can
// match, true means some row may.
bool ZoneMayMatch(const BlockZone& zone, const Predicate& predicate);

// Exact match count for one serialized block, using the compressed-form
// fast paths of compressed_scan.h when the root scheme permits.
u32 CountMatches(const u8* block, const Predicate& predicate,
                 const CompressionConfig& config);

// Matching row positions of one serialized block as a selection vector.
RoaringBitmap SelectMatches(const u8* block, const Predicate& predicate,
                            const CompressionConfig& config);

// True when `block`'s root scheme admits a sub-linear evaluation (no full
// materialization) for this predicate.
bool HasFastPath(const u8* block, const Predicate& predicate);

}  // namespace btr

#endif  // BTR_BTR_PREDICATE_H_
