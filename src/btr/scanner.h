// btr::Scanner — the unified public API for scanning a table that lives as
// one compressed file per column in an object store (the paper's data-lake
// deployment, Sections 2.1 and 6.7).
//
// The engine is a real pipeline, not the analytic core-count model of
// s3sim::SimulateScan:
//
//   zone maps ──► prune row blocks that cannot match (never fetched)
//   prefetcher ─► fetch_threads issue ranged GETs ahead of consumption
//                 into a bounded queue (backpressure at prefetch_depth)
//   decoders ───► scan_threads pop blocks, evaluate predicates on the
//                 *compressed* form (SelectMatches → selection vectors),
//                 decompress only blocks whose selection is non-empty
//   emitter ────► chunks surface on the calling thread in block order
//
// API contract (this is the Status-carrying redesign):
//   - Scan() never throws; worker-thread failures — including exceptions
//     propagated through exec::ThreadPool::Wait() — surface as a Status.
//   - Transient object-store failures (Status::Throttled/Unavailable) are
//     retried per the ScanConfig retry knobs with interruptible backoff;
//     a permanently unreadable block either fails the scan with a typed
//     Status or, with skip_unreadable_blocks, degrades it (the block is
//     emitted as kUnreadable and reported in ScanStats).
//   - Every fetched block payload is verified against its header CRC32C
//     before validation/decoding; a structurally corrupt ("poisoned") or
//     bit-flipped block yields Status::Corruption, not a crash and never
//     silently wrong data.
//   - Chunks arrive in ascending (block, column) order regardless of how
//     fetch and decode interleave.
//
// See docs/SCAN_PIPELINE.md for stages and tuning knobs, and
// docs/ROBUSTNESS.md for the fault model, retry policy and metric names.
#ifndef BTR_BTR_SCANNER_H_
#define BTR_BTR_SCANNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bitmap/roaring.h"
#include "btr/file_format.h"
#include "btr/predicate.h"
#include "btr/relation.h"
#include "btr/zonemap.h"
#include "obs/profile.h"
#include "s3sim/object_store.h"
#include "util/status.h"

namespace btr::exec {
class BlockCache;  // exec/block_cache.h
class ThreadPool;  // exec/thread_pool.h
}  // namespace btr::exec

namespace btr::service {
class ScanService;  // service/scan_service.h
}  // namespace btr::service

namespace btr {

// First table row of row block `block`. 64-bit on purpose: a table's row
// count is u64, so past 2^32 / kBlockCapacity ≈ 67k blocks the product no
// longer fits in u32 — computing it in u32 silently wraps row positions.
inline u64 BlockRowBegin(u32 block) {
  return static_cast<u64>(block) * kBlockCapacity;
}

// What to scan. Embeds the "how" (ScanConfig, btr/config.h).
struct ScanSpec {
  // Projection, in output order. Empty = every column of the table.
  std::vector<std::string> columns;
  // Filter expression (btr/predicate.h): arbitrary AND/OR/NOT over typed
  // leaf comparisons. A leaf may reference a column outside the
  // projection; that column is then fetched for filtering but not decoded
  // into the output. Integer literals against double columns are coerced.
  // Empty = no filtering.
  PredicateExpr filter;
  // Deprecated: single predicates, ANDed with `filter`. Kept so existing
  // call sites (and btrtool's --eq-int style flags) keep compiling.
  std::vector<Predicate> predicates;
  ScanConfig config;
};

// Why a row block produced no decoded values.
enum class BlockOutcome : u8 {
  kDecoded = 0,     // fetched, filtered, decompressed
  kPruned = 1,      // zone maps proved no match: never fetched
  kSkipped = 2,     // compressed-form predicate evaluation found an empty
                    // selection: fetched but not decompressed
  kUnreadable = 3,  // degraded mode only: fetch failed permanently or the
                    // bytes arrived corrupt; no values were produced
};

// One (column, row-block) result. Emitted for every projected column of
// every row block, in ascending (block, column) order.
struct ColumnChunk {
  u32 column = 0;     // index into the resolved projection
  u32 block = 0;      // row-block index within the table
  u64 row_begin = 0;  // first table row this block covers (u64: table row
                      // counts are u64, so u32 wraps past 2^32 rows)
  u32 row_count = 0;  // rows this block covers
  BlockOutcome outcome = BlockOutcome::kDecoded;
  // Decoded values; empty unless outcome == kDecoded.
  DecodedBlock values;
  // Block-local matching rows. Only meaningful when the spec had
  // predicates and outcome == kDecoded; without predicates every row in
  // [0, row_count) passes and `selection` is left empty.
  RoaringBitmap selection;
};

// Per-leaf planning/evaluation telemetry, one entry per depth-first leaf
// of the resolved filter expression (ScanStats::predicate_leaves).
struct PredicateLeafStats {
  std::string description;  // leaf.ToString() after type coercion
  u64 blocks_pruned = 0;    // row blocks this leaf alone proved empty
  u64 fast_path = 0;        // block evaluations on the compressed form
  u64 materialized = 0;     // block evaluations that decoded values
};

struct ScanStats {
  u32 row_blocks = 0;          // row blocks in the table
  u32 blocks_pruned = 0;       // zone-map pruned row blocks
  u32 blocks_skipped = 0;      // empty-selection row blocks
  u32 blocks_decoded = 0;      // row blocks that reached decompression
  u32 blocks_unreadable = 0;   // degraded mode: blocks skipped as unreadable
  u64 rows_matched = 0;        // rows passing every predicate
  u64 bytes_fetched = 0;       // compressed bytes GET'd (headers included)
  u64 requests = 0;            // GET requests issued
  u64 retries = 0;             // transient-failure retries granted
  u64 cache_hits = 0;          // block fetches served from the block cache
  u64 cache_misses = 0;        // cacheable fetches that had to GET
  u64 hedges = 0;              // duplicate GETs issued against tail latency
  u64 hedge_wins = 0;          // hedges whose duplicate response won
  u64 breaker_trips = 0;       // circuit-breaker open transitions
  u64 breaker_fast_failures = 0;  // GETs rejected while the breaker was open
  u64 crc_refetches = 0;       // CRC-failed blocks re-fetched once
  u64 crc_rescues = 0;         // re-fetches that produced verified bytes
  u64 admission_wait_ns = 0;   // serviced scans: time queued for admission
  double seconds = 0;          // wall clock of Scan()
  u64 bytes_decoded = 0;       // logical uncompressed bytes produced
  // One entry per depth-first leaf of the resolved filter: where did each
  // comparison spend its time (zone pruning, compressed-form fast path, or
  // decode-and-compare)? Empty when the spec had no filter.
  std::vector<PredicateLeafStats> predicate_leaves;
  // Degraded mode: indices of the kUnreadable row blocks, with the Status
  // that made each unreadable (same order).
  std::vector<u32> unreadable_blocks;
  std::vector<Status> unreadable_reasons;
  // Per-scan profile snapshot (stage breakdown, GET latency histogram,
  // per-scheme decode cost, slow-op exemplars). Null unless the scan ran
  // with ScanConfig::collect_profile. Shared so copies of ScanStats stay
  // cheap; the profile itself is immutable once the scan returns.
  std::shared_ptr<const obs::ScanProfile> profile;
};

// Materialized scan result (the convenience overload).
struct ScanOutput {
  struct ColumnResult {
    std::string name;
    ColumnType type = ColumnType::kInteger;
    // One entry per row block, block-ordered. Pruned/skipped blocks hold
    // an empty DecodedBlock (count == 0).
    std::vector<DecodedBlock> blocks;
  };
  std::vector<ColumnResult> columns;
  std::vector<BlockOutcome> block_outcomes;     // per row block
  std::vector<RoaringBitmap> block_selections;  // per row block (predicates)
  ScanStats stats;
};

// Uploads a compressed relation into the object store using the
// file_format framing, one object per column plus metadata and the
// optional zone-map sidecar. Since the crash-safe write path landed this
// is a thin wrapper over write::CommitCompressedRelation: the objects
// stage under the next version's keys
//   <prefix><table>.v<N>.btrmeta  <prefix><table>.v<N>.<idx>.btr
//   <prefix><table>.v<N>.zones
// and become visible atomically when <prefix><table>.manifest swaps —
// readers see the previous version or the new one, never a mix
// (docs/WRITE_PATH.md).
Status UploadCompressedRelation(const CompressedRelation& relation,
                                const TableZoneMap* zones,
                                const std::string& prefix,
                                s3sim::ObjectStore* store);

class Scanner {
 public:
  // Standalone scanner: private pipeline, private cache/breaker.
  // `prefix` is the object key prefix the table was uploaded under.
  Scanner(s3sim::ObjectStore* store, std::string table_name,
          std::string prefix = "",
          const CompressionConfig& config = CompressionConfig());
  // Serviced scanner: fetch/decode work runs on `service`'s shared
  // executors under `tenant_id`'s fair-queue lane and quotas, the block
  // cache and per-backend circuit breaker are the service's shared ones,
  // and Scan() passes admission control first — a saturated service or an
  // over-quota tenant surfaces as typed Status::Throttled (transient, so
  // callers can wrap Scan in exec::RunWithRetries). The per-scan
  // ScanConfig cache/breaker knobs are ignored in this mode; retry and
  // hedging policy stay per-scan. `service` must outlive the Scanner.
  Scanner(service::ScanService& service, const std::string& tenant_id,
          s3sim::ObjectStore* store, std::string table_name,
          std::string prefix = "",
          const CompressionConfig& config = CompressionConfig());
  ~Scanner();

  // Fetches and parses table metadata, per-column file headers (block byte
  // offsets and payload CRCs for ranged GETs) and the zone-map sidecar
  // when present. Metadata GETs use the config's retry knobs; every parsed
  // structure is CRC-verified.
  Status Open(const ScanConfig& config = ScanConfig());

  const TableMeta& meta() const { return meta_; }
  bool has_zone_map() const { return has_zones_; }
  // Physical table name this scanner resolved at Open: "<table>.v<N>" when
  // the table has a versioned manifest (crash-safe write path), the bare
  // table name for legacy uploads. Pinned for the scanner's lifetime — a
  // concurrently committing writer never changes what an open scanner
  // reads.
  const std::string& resolved_name() const { return resolved_name_; }

  // Streams chunks to `emit` on the calling thread, in ascending
  // (block, column) order. On error, emission stops early and the first
  // failure is returned; chunks already emitted remain valid.
  using ChunkCallback = std::function<void(ColumnChunk&&)>;
  Status Scan(const ScanSpec& spec, const ChunkCallback& emit,
              ScanStats* stats = nullptr);

  // Materializing convenience overload.
  Status Scan(const ScanSpec& spec, ScanOutput* out);

 private:
  struct ResolvedSpec;

  Status ResolveSpec(const ScanSpec& spec, ResolvedSpec* resolved) const;
  // Standalone decode pool, created on first use and reused across Scan()
  // calls (recreated only when the requested thread count changes).
  exec::ThreadPool& EnsureDecodePool(u32 threads);

  s3sim::ObjectStore* store_;
  std::string table_name_;
  std::string prefix_;
  CompressionConfig config_;
  // Version-resolved physical name (see resolved_name()); set by Open.
  std::string resolved_name_;

  bool opened_ = false;
  TableMeta meta_;
  bool has_zones_ = false;
  TableZoneMap zones_;
  // Per column: byte offset of each block payload inside the column
  // object, plus one past-the-end entry.
  std::vector<std::vector<u64>> block_offsets_;
  // Per column: CRC32C of each block payload, from the column header.
  std::vector<std::vector<u32>> block_crcs_;
  // Wall nanoseconds the last successful Open() spent fetching/parsing
  // metadata — stamped into ScanProfile::open_ns when profiling.
  u64 open_ns_ = 0;
  // Checksum-verified block cache, created lazily on the first Scan with
  // ScanConfig::enable_block_cache. Scanner-owned so repeat scans through
  // the same Scanner hit it; entries are keyed by exact GET identity and
  // admitted only after CRC verification (exec/block_cache.h).
  std::unique_ptr<exec::BlockCache> block_cache_;
  // Standalone decode workers, persistent across Scan() calls so repeated
  // scans stop paying thread create/join churn per call.
  std::unique_ptr<exec::ThreadPool> decode_pool_;
  u32 decode_pool_threads_ = 0;
  // Serviced mode (null/unused for standalone scanners).
  service::ScanService* service_ = nullptr;
  u32 tenant_slot_ = 0;
};

}  // namespace btr

#endif  // BTR_BTR_SCANNER_H_
