// On-disk layout. Following the paper (Sections 2.1 and 6.7), BtrBlocks
// keeps data files free of metadata: each column is written to its own
// file of size-framed blocks, and table metadata (column names, types,
// row counts) lives in one separate metadata file.
//
//   <dir>/<table>.btrmeta            table metadata
//   <dir>/<table>.<column_idx>.btr   one file per column
//
// Every structure is integrity-checked with CRC32C (util/crc32c.h): data
// that crossed a network or disk boundary must be *detectably* corrupt,
// never silently wrong (docs/ROBUSTNESS.md).
//
// Column file: "BTRC" | u32 block_count | block_count * u32 sizes |
//              block_count * u32 payload CRC32Cs | u32 header CRC32C |
//              concatenated block payloads.
//              The header CRC covers everything before it; each payload
//              CRC covers one block's bytes, so a reader that ranged-GETs
//              a single block can verify it against the already-fetched
//              header without touching the rest of the object.
// Metadata:    "BTRM" | u32 column_count | u32 row_count | per column:
//              u16 name_len | name | u8 type | u64 uncompressed_bytes |
//              u32 block_count | block_count * u32 value_counts
//              | trailing u32 CRC32C over all preceding bytes.
#ifndef BTR_BTR_FILE_FORMAT_H_
#define BTR_BTR_FILE_FORMAT_H_

#include <string>
#include <vector>

#include "btr/relation.h"
#include "util/status.h"

namespace btr {

Status WriteCompressedRelation(const CompressedRelation& relation,
                               const std::string& directory);

Status ReadCompressedRelation(const std::string& directory,
                              const std::string& table_name,
                              CompressedRelation* out);

// Table metadata only (column names/types/row counts) — the cheap read a
// query planner performs before deciding which column files to fetch.
struct TableMeta {
  u32 row_count = 0;
  struct ColumnMeta {
    std::string name;
    ColumnType type;
    u64 uncompressed_bytes;
    std::vector<u32> block_value_counts;
  };
  std::vector<ColumnMeta> columns;
};
Status ReadTableMeta(const std::string& directory,
                     const std::string& table_name, TableMeta* out);

// Projection read: fetches exactly one column file (OLAP queries rarely
// read entire tables — paper Section 6.7, "Loading individual columns").
Status ReadCompressedColumn(const std::string& directory,
                            const std::string& table_name,
                            const TableMeta& meta, size_t column_index,
                            CompressedColumn* out);

// --- in-memory framing -------------------------------------------------------
// The same byte layouts the files use, exposed buffer-to-buffer so tables
// can live in an object store: btr::Scanner uploads column files as
// objects and reads them back with ranged GETs (header first, then only
// the block payloads that survive zone-map pruning).
void SerializeTableMeta(const CompressedRelation& relation, ByteBuffer* out);
Status ParseTableMeta(const u8* data, size_t size, TableMeta* out);

void SerializeColumnFile(const CompressedColumn& column, ByteBuffer* out);
// Just the "BTRC" header for the given per-block payload sizes and CRCs —
// what a *streaming* writer emits once all blocks are known, while the
// payloads themselves already live in the object store as multipart parts
// (src/write/streaming_writer.h). SerializeColumnFile == this header +
// concatenated payloads, byte for byte.
void SerializeColumnFileHeader(const std::vector<u32>& block_sizes,
                               const std::vector<u32>& block_crcs,
                               ByteBuffer* out);
// Parses a column file's "BTRC" header prefix — per-block byte sizes and
// payload CRC32Cs — and verifies the header's own CRC. `size` is the
// bytes available; the header prefix suffices. `block_crcs` may be null
// when the caller does not verify payloads itself.
Status ParseColumnFileHeader(const u8* data, size_t size,
                             std::vector<u32>* block_sizes,
                             std::vector<u32>* block_crcs = nullptr);
// Bytes before the first block payload in a column file: magic + count,
// the size and CRC arrays, and the header CRC.
inline u64 ColumnFileHeaderBytes(u64 block_count) {
  return 8 + 8 * block_count + 4;
}

// Object keys btr::Scanner and UploadCompressedRelation agree on. The
// prefix is any object-store path prefix, e.g. "lake/".
std::string TableMetaKey(const std::string& prefix, const std::string& table);
std::string ColumnFileKey(const std::string& prefix, const std::string& table,
                          size_t column_index);
std::string ZoneMapKey(const std::string& prefix, const std::string& table);

}  // namespace btr

#endif  // BTR_BTR_FILE_FORMAT_H_
