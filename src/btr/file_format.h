// On-disk layout. Following the paper (Sections 2.1 and 6.7), BtrBlocks
// keeps data files free of metadata: each column is written to its own
// file of size-framed blocks, and table metadata (column names, types,
// row counts) lives in one separate metadata file.
//
//   <dir>/<table>.btrmeta            table metadata
//   <dir>/<table>.<column_idx>.btr   one file per column
//
// Column file: "BTRC" | u32 block_count | block_count * u32 sizes |
//              concatenated block payloads.
// Metadata:    "BTRM" | u32 column_count | u32 row_count | per column:
//              u16 name_len | name | u8 type | u64 uncompressed_bytes |
//              u32 block_count | block_count * u32 value_counts.
#ifndef BTR_BTR_FILE_FORMAT_H_
#define BTR_BTR_FILE_FORMAT_H_

#include <string>

#include "btr/relation.h"
#include "util/status.h"

namespace btr {

Status WriteCompressedRelation(const CompressedRelation& relation,
                               const std::string& directory);

Status ReadCompressedRelation(const std::string& directory,
                              const std::string& table_name,
                              CompressedRelation* out);

// Table metadata only (column names/types/row counts) — the cheap read a
// query planner performs before deciding which column files to fetch.
struct TableMeta {
  u32 row_count = 0;
  struct ColumnMeta {
    std::string name;
    ColumnType type;
    u64 uncompressed_bytes;
    std::vector<u32> block_value_counts;
  };
  std::vector<ColumnMeta> columns;
};
Status ReadTableMeta(const std::string& directory,
                     const std::string& table_name, TableMeta* out);

// Projection read: fetches exactly one column file (OLAP queries rarely
// read entire tables — paper Section 6.7, "Loading individual columns").
Status ReadCompressedColumn(const std::string& directory,
                            const std::string& table_name,
                            const TableMeta& meta, size_t column_index,
                            CompressedColumn* out);

// --- in-memory framing -------------------------------------------------------
// The same byte layouts the files use, exposed buffer-to-buffer so tables
// can live in an object store: btr::Scanner uploads column files as
// objects and reads them back with ranged GETs (header first, then only
// the block payloads that survive zone-map pruning).
void SerializeTableMeta(const CompressedRelation& relation, ByteBuffer* out);
Status ParseTableMeta(const u8* data, size_t size, TableMeta* out);

void SerializeColumnFile(const CompressedColumn& column, ByteBuffer* out);
// Parses a column file's "BTRC" header prefix: per-block byte sizes.
// `size` is the bytes available; the header prefix suffices.
Status ParseColumnFileHeader(const u8* data, size_t size,
                             std::vector<u32>* block_sizes);
// Bytes before the first block payload in a column file.
inline u64 ColumnFileHeaderBytes(u64 block_count) {
  return 8 + 4 * block_count;
}

// Object keys btr::Scanner and UploadCompressedRelation agree on. The
// prefix is any object-store path prefix, e.g. "lake/".
std::string TableMetaKey(const std::string& prefix, const std::string& table);
std::string ColumnFileKey(const std::string& prefix, const std::string& table,
                          size_t column_index);
std::string ZoneMapKey(const std::string& prefix, const std::string& table);

}  // namespace btr

#endif  // BTR_BTR_FILE_FORMAT_H_
