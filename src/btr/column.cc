#include "btr/column.h"

namespace btr {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInteger: return "integer";
    case ColumnType::kDouble: return "double";
    case ColumnType::kString: return "string";
  }
  return "unknown";
}

StringsView Column::StringBlock(u32 begin, u32 count,
                                std::vector<u32>* scratch_offsets) const {
  BTR_CHECK(type_ == ColumnType::kString);
  BTR_CHECK(begin + count <= row_count_);
  scratch_offsets->resize(count + 1);
  u32 base = begin == 0 ? 0 : string_offsets_[begin - 1];
  (*scratch_offsets)[0] = 0;
  for (u32 i = 0; i < count; i++) {
    (*scratch_offsets)[i + 1] = string_offsets_[begin + i] - base;
  }
  StringsView view;
  view.offsets = scratch_offsets->data();
  view.data = string_data_.data() + base;
  view.count = count;
  return view;
}

u64 Column::UncompressedBytes() const {
  switch (type_) {
    case ColumnType::kInteger:
      return ints_.size() * sizeof(i32);
    case ColumnType::kDouble:
      return doubles_.size() * sizeof(double);
    case ColumnType::kString:
      // Bytes plus one 4-byte offset per string, matching the binary
      // in-memory representation the paper measures against.
      return string_data_.size() + string_offsets_.size() * sizeof(u32);
  }
  return 0;
}

}  // namespace btr
