#include "btr/file_format.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "util/crc32c.h"

namespace btr {

namespace {

constexpr char kColumnMagic[4] = {'B', 'T', 'R', 'C'};
constexpr char kMetaMagic[4] = {'B', 'T', 'R', 'M'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteBufferToFile(const ByteBuffer& buffer, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Status::IoError("cannot open " + path);
  if (buffer.size() > 0 &&
      std::fwrite(buffer.data(), 1, buffer.size(), f.get()) != buffer.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

Status ReadFileToBuffer(const std::string& path, ByteBuffer* out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound(path + " missing");
  std::fseek(f.get(), 0, SEEK_END);
  long size = std::ftell(f.get());
  if (size < 0) return Status::IoError("cannot stat " + path);
  std::fseek(f.get(), 0, SEEK_SET);
  out->Resize(static_cast<size_t>(size));
  if (size > 0 && std::fread(out->data(), 1, out->size(), f.get()) !=
                      static_cast<size_t>(size)) {
    return Status::IoError("short read from " + path);
  }
  return Status::Ok();
}

// Bounds-checked cursor over a parse buffer.
struct Reader {
  const u8* p;
  size_t remaining;

  bool Read(void* dst, size_t n) {
    if (n > remaining) return false;
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
    return true;
  }
};

std::string ColumnPath(const std::string& directory, const std::string& table,
                       size_t column_index) {
  return directory + "/" + table + "." + std::to_string(column_index) + ".btr";
}

std::string MetaPath(const std::string& directory, const std::string& table) {
  return directory + "/" + table + ".btrmeta";
}

}  // namespace

std::string TableMetaKey(const std::string& prefix, const std::string& table) {
  return prefix + table + ".btrmeta";
}

std::string ColumnFileKey(const std::string& prefix, const std::string& table,
                          size_t column_index) {
  return prefix + table + "." + std::to_string(column_index) + ".btr";
}

std::string ZoneMapKey(const std::string& prefix, const std::string& table) {
  return prefix + table + ".zones";
}

void SerializeTableMeta(const CompressedRelation& relation, ByteBuffer* out) {
  size_t start = out->size();
  out->Append(kMetaMagic, 4);
  out->AppendValue<u32>(static_cast<u32>(relation.columns.size()));
  out->AppendValue<u32>(relation.row_count);
  for (const CompressedColumn& column : relation.columns) {
    out->AppendValue<u16>(static_cast<u16>(column.name.size()));
    out->Append(column.name.data(), column.name.size());
    out->AppendValue<u8>(static_cast<u8>(column.type));
    out->AppendValue<u64>(column.uncompressed_bytes);
    out->AppendValue<u32>(static_cast<u32>(column.blocks.size()));
    out->Append(column.block_value_counts.data(),
                column.block_value_counts.size() * sizeof(u32));
  }
  out->AppendValue<u32>(Crc32c(out->data() + start, out->size() - start));
}

Status ParseTableMeta(const u8* data, size_t size, TableMeta* out) {
  // Trailing footer CRC over everything before it: a flipped bit anywhere
  // in the metadata is caught here, before any field is trusted.
  if (size < 4) return Status::Corruption("metadata too small for CRC");
  u32 stored_crc;
  std::memcpy(&stored_crc, data + size - 4, 4);
  if (Crc32c(data, size - 4) != stored_crc) {
    return Status::Corruption("table metadata CRC mismatch");
  }
  size -= 4;
  Reader r{data, size};
  char magic[4];
  if (!r.Read(magic, 4) || std::memcmp(magic, kMetaMagic, 4) != 0) {
    return Status::Corruption("bad metadata magic");
  }
  u32 column_count;
  if (!r.Read(&column_count, 4) || !r.Read(&out->row_count, 4)) {
    return Status::Corruption("truncated metadata header");
  }
  out->columns.clear();
  out->columns.resize(column_count);
  for (TableMeta::ColumnMeta& column : out->columns) {
    u16 name_len;
    if (!r.Read(&name_len, 2)) return Status::Corruption("truncated metadata");
    column.name.resize(name_len);
    u8 type;
    if (!r.Read(column.name.data(), name_len) || !r.Read(&type, 1)) {
      return Status::Corruption("truncated metadata");
    }
    if (type > 2) return Status::Corruption("bad column type");
    column.type = static_cast<ColumnType>(type);
    u32 block_count;
    if (!r.Read(&column.uncompressed_bytes, 8) || !r.Read(&block_count, 4)) {
      return Status::Corruption("truncated metadata");
    }
    column.block_value_counts.resize(block_count);
    if (!r.Read(column.block_value_counts.data(), block_count * sizeof(u32))) {
      return Status::Corruption("truncated metadata");
    }
  }
  return Status::Ok();
}

void SerializeColumnFileHeader(const std::vector<u32>& block_sizes,
                               const std::vector<u32>& block_crcs,
                               ByteBuffer* out) {
  size_t start = out->size();
  out->Append(kColumnMagic, 4);
  out->AppendValue<u32>(static_cast<u32>(block_sizes.size()));
  out->Append(block_sizes.data(), block_sizes.size() * sizeof(u32));
  out->Append(block_crcs.data(), block_crcs.size() * sizeof(u32));
  out->AppendValue<u32>(Crc32c(out->data() + start, out->size() - start));
}

void SerializeColumnFile(const CompressedColumn& column, ByteBuffer* out) {
  std::vector<u32> sizes;
  std::vector<u32> crcs;
  sizes.reserve(column.blocks.size());
  crcs.reserve(column.blocks.size());
  for (const ByteBuffer& block : column.blocks) {
    sizes.push_back(static_cast<u32>(block.size()));
    crcs.push_back(Crc32c(block.data(), block.size()));
  }
  SerializeColumnFileHeader(sizes, crcs, out);
  for (const ByteBuffer& block : column.blocks) {
    out->Append(block.data(), block.size());
  }
}

Status ParseColumnFileHeader(const u8* data, size_t size,
                             std::vector<u32>* block_sizes,
                             std::vector<u32>* block_crcs) {
  Reader r{data, size};
  char magic[4];
  if (!r.Read(magic, 4) || std::memcmp(magic, kColumnMagic, 4) != 0) {
    return Status::Corruption("bad column magic");
  }
  u32 block_count;
  if (!r.Read(&block_count, 4)) {
    return Status::Corruption("truncated column header");
  }
  block_sizes->resize(block_count);
  if (!r.Read(block_sizes->data(), block_count * sizeof(u32))) {
    return Status::Corruption("truncated column block sizes");
  }
  std::vector<u32> local_crcs;
  std::vector<u32>& crcs = block_crcs != nullptr ? *block_crcs : local_crcs;
  crcs.resize(block_count);
  if (!r.Read(crcs.data(), block_count * sizeof(u32))) {
    return Status::Corruption("truncated column block CRCs");
  }
  u32 stored_crc;
  if (!r.Read(&stored_crc, 4)) {
    return Status::Corruption("truncated column header CRC");
  }
  u64 covered = ColumnFileHeaderBytes(block_count) - 4;
  if (Crc32c(data, covered) != stored_crc) {
    return Status::Corruption("column header CRC mismatch");
  }
  return Status::Ok();
}

Status WriteCompressedRelation(const CompressedRelation& relation,
                               const std::string& directory) {
  ByteBuffer buffer;
  SerializeTableMeta(relation, &buffer);
  BTR_RETURN_IF_ERROR(
      WriteBufferToFile(buffer, MetaPath(directory, relation.name)));
  for (size_t i = 0; i < relation.columns.size(); i++) {
    buffer.Clear();
    SerializeColumnFile(relation.columns[i], &buffer);
    BTR_RETURN_IF_ERROR(
        WriteBufferToFile(buffer, ColumnPath(directory, relation.name, i)));
  }
  return Status::Ok();
}

Status ReadTableMeta(const std::string& directory,
                     const std::string& table_name, TableMeta* out) {
  ByteBuffer buffer;
  BTR_RETURN_IF_ERROR(ReadFileToBuffer(MetaPath(directory, table_name), &buffer));
  return ParseTableMeta(buffer.data(), buffer.size(), out);
}

Status ReadCompressedColumn(const std::string& directory,
                            const std::string& table_name,
                            const TableMeta& meta, size_t column_index,
                            CompressedColumn* out) {
  if (column_index >= meta.columns.size()) {
    return Status::InvalidArgument("column index out of range");
  }
  const TableMeta::ColumnMeta& cm = meta.columns[column_index];
  out->name = cm.name;
  out->type = cm.type;
  out->uncompressed_bytes = cm.uncompressed_bytes;
  out->block_value_counts = cm.block_value_counts;

  ByteBuffer file;
  BTR_RETURN_IF_ERROR(
      ReadFileToBuffer(ColumnPath(directory, table_name, column_index), &file));
  std::vector<u32> sizes;
  std::vector<u32> crcs;
  BTR_RETURN_IF_ERROR(
      ParseColumnFileHeader(file.data(), file.size(), &sizes, &crcs));
  if (sizes.size() != cm.block_value_counts.size()) {
    return Status::Corruption("metadata/column block count mismatch");
  }
  u64 offset = ColumnFileHeaderBytes(sizes.size());
  out->blocks.clear();
  out->blocks.reserve(sizes.size());
  out->block_root_schemes.resize(sizes.size());
  for (size_t b = 0; b < sizes.size(); b++) {
    if (offset + sizes[b] > file.size()) {
      return Status::Corruption("column file truncated");
    }
    if (Crc32c(file.data() + offset, sizes[b]) != crcs[b]) {
      return Status::Corruption("block " + std::to_string(b) +
                                " payload CRC mismatch");
    }
    ByteBuffer block;  // copy keeps SIMD read padding per block
    block.Append(file.data() + offset, sizes[b]);
    offset += sizes[b];
    out->block_root_schemes[b] = PeekBlockScheme(block.data());
    out->blocks.push_back(std::move(block));
  }
  return Status::Ok();
}

Status ReadCompressedRelation(const std::string& directory,
                              const std::string& table_name,
                              CompressedRelation* out) {
  TableMeta meta;
  BTR_RETURN_IF_ERROR(ReadTableMeta(directory, table_name, &meta));
  out->name = table_name;
  out->row_count = meta.row_count;
  out->columns.clear();
  out->columns.resize(meta.columns.size());
  for (size_t i = 0; i < meta.columns.size(); i++) {
    BTR_RETURN_IF_ERROR(
        ReadCompressedColumn(directory, table_name, meta, i, &out->columns[i]));
  }
  return Status::Ok();
}

}  // namespace btr
