#include "btr/file_format.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace btr {

namespace {

constexpr char kColumnMagic[4] = {'B', 'T', 'R', 'C'};
constexpr char kMetaMagic[4] = {'B', 'T', 'R', 'M'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* f, const void* data, size_t len) {
  if (len > 0 && std::fwrite(data, 1, len, f) != len) {
    return Status::IoError("short write");
  }
  return Status::Ok();
}

Status ReadAll(std::FILE* f, void* data, size_t len) {
  if (len > 0 && std::fread(data, 1, len, f) != len) {
    return Status::IoError("short read");
  }
  return Status::Ok();
}

std::string ColumnPath(const std::string& directory, const std::string& table,
                       size_t column_index) {
  return directory + "/" + table + "." + std::to_string(column_index) + ".btr";
}

std::string MetaPath(const std::string& directory, const std::string& table) {
  return directory + "/" + table + ".btrmeta";
}

}  // namespace

Status WriteCompressedRelation(const CompressedRelation& relation,
                               const std::string& directory) {
  // Metadata file.
  {
    FilePtr f(std::fopen(MetaPath(directory, relation.name).c_str(), "wb"));
    if (f == nullptr) return Status::IoError("cannot open metadata file");
    BTR_RETURN_IF_ERROR(WriteAll(f.get(), kMetaMagic, 4));
    u32 column_count = static_cast<u32>(relation.columns.size());
    BTR_RETURN_IF_ERROR(WriteAll(f.get(), &column_count, 4));
    BTR_RETURN_IF_ERROR(WriteAll(f.get(), &relation.row_count, 4));
    for (const CompressedColumn& column : relation.columns) {
      u16 name_len = static_cast<u16>(column.name.size());
      BTR_RETURN_IF_ERROR(WriteAll(f.get(), &name_len, 2));
      BTR_RETURN_IF_ERROR(WriteAll(f.get(), column.name.data(), name_len));
      u8 type = static_cast<u8>(column.type);
      BTR_RETURN_IF_ERROR(WriteAll(f.get(), &type, 1));
      BTR_RETURN_IF_ERROR(WriteAll(f.get(), &column.uncompressed_bytes, 8));
      u32 block_count = static_cast<u32>(column.blocks.size());
      BTR_RETURN_IF_ERROR(WriteAll(f.get(), &block_count, 4));
      BTR_RETURN_IF_ERROR(WriteAll(f.get(), column.block_value_counts.data(),
                                   block_count * sizeof(u32)));
    }
  }
  // One file per column.
  for (size_t i = 0; i < relation.columns.size(); i++) {
    const CompressedColumn& column = relation.columns[i];
    FilePtr f(std::fopen(ColumnPath(directory, relation.name, i).c_str(), "wb"));
    if (f == nullptr) return Status::IoError("cannot open column file");
    BTR_RETURN_IF_ERROR(WriteAll(f.get(), kColumnMagic, 4));
    u32 block_count = static_cast<u32>(column.blocks.size());
    BTR_RETURN_IF_ERROR(WriteAll(f.get(), &block_count, 4));
    for (const ByteBuffer& block : column.blocks) {
      u32 size = static_cast<u32>(block.size());
      BTR_RETURN_IF_ERROR(WriteAll(f.get(), &size, 4));
    }
    for (const ByteBuffer& block : column.blocks) {
      BTR_RETURN_IF_ERROR(WriteAll(f.get(), block.data(), block.size()));
    }
  }
  return Status::Ok();
}

Status ReadTableMeta(const std::string& directory,
                     const std::string& table_name, TableMeta* out) {
  FilePtr f(std::fopen(MetaPath(directory, table_name).c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("metadata file missing");
  char magic[4];
  BTR_RETURN_IF_ERROR(ReadAll(f.get(), magic, 4));
  if (std::memcmp(magic, kMetaMagic, 4) != 0) {
    return Status::Corruption("bad metadata magic");
  }
  u32 column_count;
  BTR_RETURN_IF_ERROR(ReadAll(f.get(), &column_count, 4));
  BTR_RETURN_IF_ERROR(ReadAll(f.get(), &out->row_count, 4));
  out->columns.resize(column_count);
  for (TableMeta::ColumnMeta& column : out->columns) {
    u16 name_len;
    BTR_RETURN_IF_ERROR(ReadAll(f.get(), &name_len, 2));
    column.name.resize(name_len);
    BTR_RETURN_IF_ERROR(ReadAll(f.get(), column.name.data(), name_len));
    u8 type;
    BTR_RETURN_IF_ERROR(ReadAll(f.get(), &type, 1));
    if (type > 2) return Status::Corruption("bad column type");
    column.type = static_cast<ColumnType>(type);
    BTR_RETURN_IF_ERROR(ReadAll(f.get(), &column.uncompressed_bytes, 8));
    u32 block_count;
    BTR_RETURN_IF_ERROR(ReadAll(f.get(), &block_count, 4));
    column.block_value_counts.resize(block_count);
    BTR_RETURN_IF_ERROR(ReadAll(f.get(), column.block_value_counts.data(),
                                block_count * sizeof(u32)));
  }
  return Status::Ok();
}

Status ReadCompressedColumn(const std::string& directory,
                            const std::string& table_name,
                            const TableMeta& meta, size_t column_index,
                            CompressedColumn* out) {
  if (column_index >= meta.columns.size()) {
    return Status::InvalidArgument("column index out of range");
  }
  const TableMeta::ColumnMeta& cm = meta.columns[column_index];
  out->name = cm.name;
  out->type = cm.type;
  out->uncompressed_bytes = cm.uncompressed_bytes;
  out->block_value_counts = cm.block_value_counts;

  FilePtr f(
      std::fopen(ColumnPath(directory, table_name, column_index).c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("column file missing");
  char magic[4];
  BTR_RETURN_IF_ERROR(ReadAll(f.get(), magic, 4));
  if (std::memcmp(magic, kColumnMagic, 4) != 0) {
    return Status::Corruption("bad column magic");
  }
  u32 block_count;
  BTR_RETURN_IF_ERROR(ReadAll(f.get(), &block_count, 4));
  if (block_count != cm.block_value_counts.size()) {
    return Status::Corruption("metadata/column block count mismatch");
  }
  std::vector<u32> sizes(block_count);
  BTR_RETURN_IF_ERROR(ReadAll(f.get(), sizes.data(), block_count * sizeof(u32)));
  out->blocks.clear();
  out->blocks.reserve(block_count);
  out->block_root_schemes.resize(block_count);
  for (u32 b = 0; b < block_count; b++) {
    ByteBuffer block(sizes[b]);  // keeps SIMD read padding
    BTR_RETURN_IF_ERROR(ReadAll(f.get(), block.data(), sizes[b]));
    out->block_root_schemes[b] = PeekBlockScheme(block.data());
    out->blocks.push_back(std::move(block));
  }
  return Status::Ok();
}

Status ReadCompressedRelation(const std::string& directory,
                              const std::string& table_name,
                              CompressedRelation* out) {
  TableMeta meta;
  BTR_RETURN_IF_ERROR(ReadTableMeta(directory, table_name, &meta));
  out->name = table_name;
  out->row_count = meta.row_count;
  out->columns.clear();
  out->columns.resize(meta.columns.size());
  for (size_t i = 0; i < meta.columns.size(); i++) {
    BTR_RETURN_IF_ERROR(
        ReadCompressedColumn(directory, table_name, meta, i, &out->columns[i]));
  }
  return Status::Ok();
}

}  // namespace btr
