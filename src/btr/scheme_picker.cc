#include "btr/scheme_picker.h"

#include <algorithm>
#include <atomic>

#include "bitpack/bitpack.h"
#include "obs/cascade_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bits.h"
#include "util/timer.h"

namespace btr {

namespace {

// --- quick picks for estimation mode -------------------------------------
// While compressing a *sample* to estimate a root scheme's ratio, cascade
// children are selected with cheap statistics-based size models instead of
// another round of sample compression per candidate. This keeps scheme
// selection near the paper's ~1.2% of total compression time while still
// letting the sample compression measure realistic cascade gains.

IntSchemeCode QuickPickInt(const i32* in, u32 count, const IntStats& stats,
                           const CompressionConfig& config) {
  if (stats.unique_count == 1 &&
      config.IntSchemeEnabled(IntSchemeCode::kOneValue)) {
    return IntSchemeCode::kOneValue;
  }
  double best_size = static_cast<double>(count) * sizeof(i32);
  IntSchemeCode best = IntSchemeCode::kUncompressed;
  auto consider = [&](IntSchemeCode code, double size) {
    if (config.IntSchemeEnabled(code) && size < best_size) {
      best_size = size;
      best = code;
    }
  };
  if (stats.AverageRunLength() >= 2.0) {
    // Values + lengths, assuming children roughly halve each vector.
    consider(IntSchemeCode::kRle, stats.run_count * 8.0 * 0.6);
  }
  if (stats.unique_count < count) {
    u32 code_bits = std::max(1u, BitWidth(stats.unique_count - 1));
    u32 range_bits = BitWidth(
        static_cast<u32>(static_cast<i64>(stats.max) - stats.min));
    // Dictionary only pays off when codes are much narrower than the raw
    // value range — otherwise FOR+bit-packing achieves the same width
    // without the lookup table (and dict-of-dense-codes recursion).
    if (range_bits > code_bits + 2) {
      consider(IntSchemeCode::kDict,
               count * code_bits / 8.0 + stats.unique_count * sizeof(i32));
    }
  }
  consider(IntSchemeCode::kBp128,
           static_cast<double>(bitpack::Bp128CompressedSize(in, count)));
  consider(IntSchemeCode::kPfor,
           static_cast<double>(bitpack::PforCompressedSize(in, count)));
  return best;
}

DoubleSchemeCode QuickPickDouble(const DoubleStats& stats,
                                 const CompressionConfig& config) {
  if (stats.unique_count == 1 &&
      config.DoubleSchemeEnabled(DoubleSchemeCode::kOneValue)) {
    return DoubleSchemeCode::kOneValue;
  }
  double best_size = static_cast<double>(stats.count) * sizeof(double);
  DoubleSchemeCode best = DoubleSchemeCode::kUncompressed;
  auto consider = [&](DoubleSchemeCode code, double size) {
    if (config.DoubleSchemeEnabled(code) && size < best_size) {
      best_size = size;
      best = code;
    }
  };
  if (stats.AverageRunLength() >= 2.0) {
    consider(DoubleSchemeCode::kRle, stats.run_count * 12.0 * 0.6);
  }
  if (stats.unique_count < stats.count) {
    u32 code_bits = std::max(1u, BitWidth(stats.unique_count - 1));
    consider(DoubleSchemeCode::kDict, stats.count * code_bits / 8.0 +
                                          stats.unique_count * sizeof(double));
  }
  return best;
}

StringSchemeCode QuickPickString(const StringStats& stats,
                                 const CompressionConfig& config) {
  if (stats.unique_count == 1 &&
      config.StringSchemeEnabled(StringSchemeCode::kOneValue)) {
    return StringSchemeCode::kOneValue;
  }
  double input_bytes =
      static_cast<double>(stats.total_bytes) + stats.count * sizeof(u32);
  double best_size = input_bytes;
  StringSchemeCode best = StringSchemeCode::kUncompressed;
  auto consider = [&](StringSchemeCode code, double size) {
    if (config.StringSchemeEnabled(code) && size < best_size) {
      best_size = size;
      best = code;
    }
  };
  if (stats.unique_count < stats.count) {
    u32 code_bits = std::max(1u, BitWidth(stats.unique_count - 1));
    double dict_size = stats.count * code_bits / 8.0 +
                       static_cast<double>(stats.unique_bytes) +
                       stats.unique_count * 8.0;
    consider(StringSchemeCode::kDict, dict_size);
    // FSST on the dictionary pool: assume the paper's ~2x on text.
    consider(StringSchemeCode::kDictFsst, stats.count * code_bits / 8.0 +
                                              stats.unique_bytes * 0.55 +
                                              stats.unique_count * 4.0 + 800.0);
  }
  consider(StringSchemeCode::kFsst, stats.total_bytes * 0.55 +
                                        stats.count * 1.2 + 800.0);
  return best;
}

// --- observability helpers -------------------------------------------------

const char* TypeTag(ColumnType type) {
  switch (type) {
    case ColumnType::kInteger: return "int";
    case ColumnType::kDouble: return "double";
    case ColumnType::kString: return "string";
  }
  return "?";
}

const char* SchemeTag(ColumnType type, u8 code) {
  switch (type) {
    case ColumnType::kInteger:
      return IntSchemeName(static_cast<IntSchemeCode>(code));
    case ColumnType::kDouble:
      return DoubleSchemeName(static_cast<DoubleSchemeCode>(code));
    case ColumnType::kString:
      return StringSchemeName(static_cast<StringSchemeCode>(code));
  }
  return "?";
}

// Per-(phase, type, scheme) timing histograms, resolved through the
// registry once and cached. The fill race is benign: every thread
// resolves the same registry-owned pointer.
struct SchemeHistTable {
  std::atomic<obs::Histogram*> slots[3][16] = {};

  obs::Histogram& For(const char* phase, ColumnType type, u8 code) {
    std::atomic<obs::Histogram*>& slot = slots[static_cast<u8>(type)][code];
    obs::Histogram* h = slot.load(std::memory_order_acquire);
    if (h == nullptr) {
      std::string name = std::string("btr.") + phase + "." + TypeTag(type) +
                         "." + SchemeTag(type, code) + ".ns";
      h = &obs::Registry::Get().GetHistogram(name);
      slot.store(h, std::memory_order_release);
    }
    return *h;
  }
};

obs::Histogram& EstimateHistogram(ColumnType type, u8 code) {
  static SchemeHistTable* table = new SchemeHistTable();
  return table->For("estimate", type, code);
}

obs::Histogram& CompressHistogram(ColumnType type, u8 code) {
  static SchemeHistTable* table = new SchemeHistTable();
  return table->For("compress", type, code);
}

// Depth-indexed scheme accounting (visible for nested cascade choices,
// unlike the root-only Telemetry::scheme_uses aggregate).
void RecordSchemeUse(const CompressionContext& ctx, ColumnType type, u8 code) {
  if (ctx.config->telemetry == nullptr || ctx.estimating) return;
  u32 depth = std::min<u32>(ctx.Depth(), kTelemetryDepthSlots - 1);
  ctx.config->telemetry
      ->scheme_uses_by_depth[depth][static_cast<u8>(type)][code]++;
}

// Opens a cascade trace child under ctx.trace (when tracing this call) and
// rewires `inner` so nested CompressInts/Doubles/Strings attach below it.
obs::CascadeNode* OpenTraceNode(CompressionContext* inner, ColumnType type,
                                u32 value_count, u64 input_bytes) {
  if (inner->trace == nullptr || inner->estimating) return nullptr;
  inner->trace->children.emplace_back();
  obs::CascadeNode* node = &inner->trace->children.back();
  node->type = static_cast<u8>(type);
  node->depth = inner->Depth();
  node->value_count = value_count;
  node->input_bytes = input_bytes;
  inner->trace = node;
  return node;
}

void CloseTraceNode(obs::CascadeNode* node, u8 scheme, u64 output_bytes,
                    u64 compress_ns) {
  node->scheme = scheme;
  node->output_bytes = output_bytes;
  node->compress_ns = compress_ns;
  for (const obs::CascadeCandidate& c : node->candidates) {
    if (c.scheme == scheme) {
      node->estimated_ratio = c.estimated_ratio;
      break;
    }
  }
}

// Shared selection loop. SchemeT is one of the three scheme interfaces;
// EstimateFn evaluates one scheme against the precomputed stats/sample.
template <typename CodeT, typename EstimateFn, typename EnabledFn>
CodeT SelectScheme(u32 scheme_count, const EstimateFn& estimate,
                   const EnabledFn& enabled, CodeT fallback) {
  CodeT best = fallback;
  double best_ratio = -1.0;
  for (u32 c = 0; c < scheme_count; c++) {
    CodeT code = static_cast<CodeT>(c);
    if (!enabled(code)) continue;
    double ratio = estimate(code);
    if (ratio != 0.0 && ratio > best_ratio) {
      best_ratio = ratio;
      best = code;
    }
  }
  return best;
}

}  // namespace

// --- Integers ------------------------------------------------------------------

namespace {
IntSchemeCode PickIntSchemeImpl(const i32* in, u32 count,
                                const CompressionContext& ctx,
                                obs::CascadeNode* node) {
  if (ctx.remaining_cascades == 0 || count == 0) {
    return IntSchemeCode::kUncompressed;
  }
  if (ctx.estimating) {
    return QuickPickInt(in, count, ComputeIntStats(in, count), *ctx.config);
  }
  BTR_TRACE_SPAN("btr.pick.int");
  Timer stats_timer;
  IntStats stats = ComputeIntStats(in, count);
  u64 stats_ns = static_cast<u64>(stats_timer.ElapsedNanos());
  if (ctx.config->telemetry != nullptr) {
    ctx.config->telemetry->stats_ns += stats_ns;
  }
  if (node != nullptr) node->stats_ns = stats_ns;
  Timer timer;
  IntSample sample = BuildIntSample(in, count, *ctx.config);
  IntSchemeCode code = SelectScheme<IntSchemeCode>(
      kIntSchemeCount,
      [&](IntSchemeCode c) {
        Timer estimate_timer;
        double ratio = GetIntScheme(c).EstimateRatio(stats, sample, ctx);
        EstimateHistogram(ColumnType::kInteger, static_cast<u8>(c))
            .Record(static_cast<u64>(estimate_timer.ElapsedNanos()));
        if (node != nullptr) {
          node->candidates.push_back({static_cast<u8>(c), ratio});
        }
        return ratio;
      },
      [&](IntSchemeCode c) { return ctx.config->IntSchemeEnabled(c); },
      IntSchemeCode::kUncompressed);
  u64 estimate_ns = static_cast<u64>(timer.ElapsedNanos());
  if (ctx.config->telemetry != nullptr) {
    ctx.config->telemetry->estimate_ns += estimate_ns;
  }
  if (node != nullptr) node->estimate_ns = estimate_ns;
  return code;
}
}  // namespace

size_t CompressInts(const i32* in, u32 count, ByteBuffer* out,
                    const CompressionContext& ctx, IntSchemeCode* chosen) {
  CompressionContext inner = ctx;
  obs::CascadeNode* node =
      OpenTraceNode(&inner, ColumnType::kInteger, count,
                    static_cast<u64>(count) * sizeof(i32));
  IntSchemeCode code = PickIntSchemeImpl(in, count, inner, node);
  if (chosen != nullptr) *chosen = code;
  RecordSchemeUse(ctx, ColumnType::kInteger, static_cast<u8>(code));
  size_t start = out->size();
  out->AppendValue<u8>(static_cast<u8>(code));
  if (ctx.estimating) {
    GetIntScheme(code).Compress(in, count, out, inner);
  } else {
    Timer compress_timer;
    GetIntScheme(code).Compress(in, count, out, inner);
    u64 compress_ns = static_cast<u64>(compress_timer.ElapsedNanos());
    CompressHistogram(ColumnType::kInteger, static_cast<u8>(code))
        .Record(compress_ns);
    if (node != nullptr) {
      CloseTraceNode(node, static_cast<u8>(code), out->size() - start,
                     compress_ns);
    }
  }
  return out->size() - start;
}

void DecompressInts(const u8* in, u32 count, i32* out) {
  GetIntScheme(static_cast<IntSchemeCode>(in[0])).Decompress(in + 1, count, out);
}

IntSchemeCode PickIntScheme(const i32* in, u32 count,
                            const CompressionConfig& config) {
  CompressionContext ctx{&config, config.max_cascade_depth};
  return PickIntSchemeImpl(in, count, ctx, nullptr);
}

// --- Doubles --------------------------------------------------------------------

namespace {
DoubleSchemeCode PickDoubleSchemeImpl(const double* in, u32 count,
                                      const CompressionContext& ctx,
                                      obs::CascadeNode* node) {
  if (ctx.remaining_cascades == 0 || count == 0) {
    return DoubleSchemeCode::kUncompressed;
  }
  if (ctx.estimating) {
    return QuickPickDouble(ComputeDoubleStats(in, count), *ctx.config);
  }
  BTR_TRACE_SPAN("btr.pick.double");
  Timer stats_timer;
  DoubleStats stats = ComputeDoubleStats(in, count);
  u64 stats_ns = static_cast<u64>(stats_timer.ElapsedNanos());
  if (ctx.config->telemetry != nullptr) {
    ctx.config->telemetry->stats_ns += stats_ns;
  }
  if (node != nullptr) node->stats_ns = stats_ns;
  Timer timer;
  DoubleSample sample = BuildDoubleSample(in, count, *ctx.config);
  DoubleSchemeCode code = SelectScheme<DoubleSchemeCode>(
      kDoubleSchemeCount,
      [&](DoubleSchemeCode c) {
        Timer estimate_timer;
        double ratio = GetDoubleScheme(c).EstimateRatio(stats, sample, ctx);
        EstimateHistogram(ColumnType::kDouble, static_cast<u8>(c))
            .Record(static_cast<u64>(estimate_timer.ElapsedNanos()));
        if (node != nullptr) {
          node->candidates.push_back({static_cast<u8>(c), ratio});
        }
        return ratio;
      },
      [&](DoubleSchemeCode c) { return ctx.config->DoubleSchemeEnabled(c); },
      DoubleSchemeCode::kUncompressed);
  u64 estimate_ns = static_cast<u64>(timer.ElapsedNanos());
  if (ctx.config->telemetry != nullptr) {
    ctx.config->telemetry->estimate_ns += estimate_ns;
  }
  if (node != nullptr) node->estimate_ns = estimate_ns;
  return code;
}
}  // namespace

size_t CompressDoubles(const double* in, u32 count, ByteBuffer* out,
                       const CompressionContext& ctx, DoubleSchemeCode* chosen) {
  CompressionContext inner = ctx;
  obs::CascadeNode* node =
      OpenTraceNode(&inner, ColumnType::kDouble, count,
                    static_cast<u64>(count) * sizeof(double));
  DoubleSchemeCode code = PickDoubleSchemeImpl(in, count, inner, node);
  if (chosen != nullptr) *chosen = code;
  RecordSchemeUse(ctx, ColumnType::kDouble, static_cast<u8>(code));
  size_t start = out->size();
  out->AppendValue<u8>(static_cast<u8>(code));
  if (ctx.estimating) {
    GetDoubleScheme(code).Compress(in, count, out, inner);
  } else {
    Timer compress_timer;
    GetDoubleScheme(code).Compress(in, count, out, inner);
    u64 compress_ns = static_cast<u64>(compress_timer.ElapsedNanos());
    CompressHistogram(ColumnType::kDouble, static_cast<u8>(code))
        .Record(compress_ns);
    if (node != nullptr) {
      CloseTraceNode(node, static_cast<u8>(code), out->size() - start,
                     compress_ns);
    }
  }
  return out->size() - start;
}

void DecompressDoubles(const u8* in, u32 count, double* out) {
  GetDoubleScheme(static_cast<DoubleSchemeCode>(in[0]))
      .Decompress(in + 1, count, out);
}

DoubleSchemeCode PickDoubleScheme(const double* in, u32 count,
                                  const CompressionConfig& config) {
  CompressionContext ctx{&config, config.max_cascade_depth};
  return PickDoubleSchemeImpl(in, count, ctx, nullptr);
}

// --- Strings --------------------------------------------------------------------

namespace {
StringSchemeCode PickStringSchemeImpl(const StringsView& in,
                                      const CompressionContext& ctx,
                                      obs::CascadeNode* node) {
  if (ctx.remaining_cascades == 0 || in.count == 0) {
    return StringSchemeCode::kUncompressed;
  }
  if (ctx.estimating) {
    return QuickPickString(ComputeStringStats(in), *ctx.config);
  }
  BTR_TRACE_SPAN("btr.pick.string");
  Timer stats_timer;
  StringStats stats = ComputeStringStats(in);
  u64 stats_ns = static_cast<u64>(stats_timer.ElapsedNanos());
  if (ctx.config->telemetry != nullptr) {
    ctx.config->telemetry->stats_ns += stats_ns;
  }
  if (node != nullptr) node->stats_ns = stats_ns;
  Timer timer;
  StringSample sample = BuildStringSample(in, *ctx.config);
  StringSchemeCode code = SelectScheme<StringSchemeCode>(
      kStringSchemeCount,
      [&](StringSchemeCode c) {
        Timer estimate_timer;
        double ratio = GetStringScheme(c).EstimateRatio(stats, sample, ctx);
        EstimateHistogram(ColumnType::kString, static_cast<u8>(c))
            .Record(static_cast<u64>(estimate_timer.ElapsedNanos()));
        if (node != nullptr) {
          node->candidates.push_back({static_cast<u8>(c), ratio});
        }
        return ratio;
      },
      [&](StringSchemeCode c) { return ctx.config->StringSchemeEnabled(c); },
      StringSchemeCode::kUncompressed);
  u64 estimate_ns = static_cast<u64>(timer.ElapsedNanos());
  if (ctx.config->telemetry != nullptr) {
    ctx.config->telemetry->estimate_ns += estimate_ns;
  }
  if (node != nullptr) node->estimate_ns = estimate_ns;
  return code;
}
}  // namespace

size_t CompressStrings(const StringsView& in, ByteBuffer* out,
                       const CompressionContext& ctx, StringSchemeCode* chosen) {
  CompressionContext inner = ctx;
  obs::CascadeNode* node = OpenTraceNode(
      &inner, ColumnType::kString, in.count,
      static_cast<u64>(in.TotalBytes()) +
          static_cast<u64>(in.count) * sizeof(u32));
  StringSchemeCode code = PickStringSchemeImpl(in, inner, node);
  if (chosen != nullptr) *chosen = code;
  RecordSchemeUse(ctx, ColumnType::kString, static_cast<u8>(code));
  size_t start = out->size();
  out->AppendValue<u8>(static_cast<u8>(code));
  if (ctx.estimating) {
    GetStringScheme(code).Compress(in, out, inner);
  } else {
    Timer compress_timer;
    GetStringScheme(code).Compress(in, out, inner);
    u64 compress_ns = static_cast<u64>(compress_timer.ElapsedNanos());
    CompressHistogram(ColumnType::kString, static_cast<u8>(code))
        .Record(compress_ns);
    if (node != nullptr) {
      CloseTraceNode(node, static_cast<u8>(code), out->size() - start,
                     compress_ns);
    }
  }
  return out->size() - start;
}

void DecompressStrings(const u8* in, u32 count, DecodedStrings* out,
                       const CompressionConfig& config) {
  GetStringScheme(static_cast<StringSchemeCode>(in[0]))
      .Decompress(in + 1, count, out, config);
}

StringSchemeCode PickStringScheme(const StringsView& in,
                                  const CompressionConfig& config) {
  CompressionContext ctx{&config, config.max_cascade_depth};
  return PickStringSchemeImpl(in, ctx, nullptr);
}

}  // namespace btr
