// The sampling-based cascading scheme picker (paper Section 3, Listing 1):
//   1. collect statistics, 2. filter non-viable schemes, 3. estimate each
//   viable scheme's ratio on a sample, 4. compress with the best scheme,
//   5. recurse on compressible outputs until the cascade budget runs out.
//
// These free functions are both the top-level entry points for one block
// and the recursion points schemes call from inside their payloads.
#ifndef BTR_BTR_SCHEME_PICKER_H_
#define BTR_BTR_SCHEME_PICKER_H_

#include "btr/scheme.h"

namespace btr {

// Compresses in[0..count) as [u8 scheme][payload]; returns bytes appended.
// `chosen` (optional) reports the selected scheme.
size_t CompressInts(const i32* in, u32 count, ByteBuffer* out,
                    const CompressionContext& ctx,
                    IntSchemeCode* chosen = nullptr);
size_t CompressDoubles(const double* in, u32 count, ByteBuffer* out,
                       const CompressionContext& ctx,
                       DoubleSchemeCode* chosen = nullptr);
size_t CompressStrings(const StringsView& in, ByteBuffer* out,
                       const CompressionContext& ctx,
                       StringSchemeCode* chosen = nullptr);

// Decompress a [scheme][payload] vector produced by the functions above.
// Output buffers need kDecodeSlack elements of slack.
void DecompressInts(const u8* in, u32 count, i32* out);
void DecompressDoubles(const u8* in, u32 count, double* out);
void DecompressStrings(const u8* in, u32 count, DecodedStrings* out,
                       const CompressionConfig& config);

// Scheme byte inspection (tests, fused decompression, Table 4 reporting).
inline IntSchemeCode PeekIntScheme(const u8* in) {
  return static_cast<IntSchemeCode>(in[0]);
}
inline DoubleSchemeCode PeekDoubleScheme(const u8* in) {
  return static_cast<DoubleSchemeCode>(in[0]);
}
inline StringSchemeCode PeekStringScheme(const u8* in) {
  return static_cast<StringSchemeCode>(in[0]);
}

// Scheme selection without compressing (Figures 5/6): returns the scheme
// the picker would choose for this block under `config`.
IntSchemeCode PickIntScheme(const i32* in, u32 count,
                            const CompressionConfig& config);
DoubleSchemeCode PickDoubleScheme(const double* in, u32 count,
                                  const CompressionConfig& config);
StringSchemeCode PickStringScheme(const StringsView& in,
                                  const CompressionConfig& config);

}  // namespace btr

#endif  // BTR_BTR_SCHEME_PICKER_H_
