#include "btr/sampling.h"

#include <algorithm>

namespace btr {

std::vector<std::pair<u32, u32>> SampleRanges(u32 count, u32 runs,
                                              u32 run_length, u64 seed) {
  std::vector<std::pair<u32, u32>> ranges;
  if (count == 0) return ranges;
  if (runs == 0 || run_length == 0 ||
      static_cast<u64>(runs) * run_length >= count) {
    ranges.emplace_back(0, count);
    return ranges;
  }
  Random rng(seed ^ (static_cast<u64>(count) << 20));
  u32 part_size = count / runs;
  ranges.reserve(runs);
  for (u32 part = 0; part < runs; part++) {
    u32 part_begin = part * part_size;
    u32 part_end = (part == runs - 1) ? count : part_begin + part_size;
    u32 span = part_end - part_begin;
    u32 len = std::min(run_length, span);
    u32 max_start = span - len;
    u32 start = part_begin +
                (max_start == 0 ? 0 : static_cast<u32>(rng.NextBounded(max_start + 1)));
    ranges.emplace_back(start, start + len);
  }
  return ranges;
}

namespace {
std::vector<std::pair<u32, u32>> RangesFor(u32 count, const CompressionConfig& c) {
  if (c.exhaustive_estimation) return {{0, count}};
  return SampleRanges(count, c.sample_runs, c.sample_run_length, c.sampling_seed);
}
}  // namespace

IntSample BuildIntSample(const i32* data, u32 count,
                         const CompressionConfig& config) {
  IntSample sample;
  for (auto [begin, end] : RangesFor(count, config)) {
    sample.values.insert(sample.values.end(), data + begin, data + end);
  }
  return sample;
}

DoubleSample BuildDoubleSample(const double* data, u32 count,
                               const CompressionConfig& config) {
  DoubleSample sample;
  for (auto [begin, end] : RangesFor(count, config)) {
    sample.values.insert(sample.values.end(), data + begin, data + end);
  }
  return sample;
}

StringSample BuildStringSample(const StringsView& view,
                               const CompressionConfig& config) {
  StringSample sample;
  sample.offsets.push_back(0);
  for (auto [begin, end] : RangesFor(view.count, config)) {
    for (u32 i = begin; i < end; i++) {
      std::string_view s = view.Get(i);
      sample.data.insert(sample.data.end(), s.begin(), s.end());
      sample.offsets.push_back(static_cast<u32>(sample.data.size()));
    }
  }
  return sample;
}

}  // namespace btr
