// PredicateExpr construction, introspection and zone-map pruning. The
// block-level evaluation engine lives in predicate_eval.cc.
#include "btr/predicate.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace btr {

namespace {

PredicateExpr MakeLeaf(std::string column, ColumnType type, CompareOp op) {
  PredicateExpr e;
  e.kind = PredicateExpr::Kind::kLeaf;
  e.column = std::move(column);
  e.type = type;
  e.op = op;
  return e;
}

u64 BitsOf(double d) {
  u64 b;
  std::memcpy(&b, &d, sizeof(u64));
  return b;
}

void SortDedupe(std::vector<i32>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kBetween: return "BETWEEN";
    case CompareOp::kIn: return "IN";
  }
  return "?";
}

// --- leaf factories ----------------------------------------------------------

PredicateExpr PredicateExpr::EqualsInt(std::string column, i32 value) {
  return CompareInt(std::move(column), CompareOp::kEq, value);
}
PredicateExpr PredicateExpr::EqualsDouble(std::string column, double value) {
  return CompareDouble(std::move(column), CompareOp::kEq, value);
}
PredicateExpr PredicateExpr::EqualsString(std::string column,
                                          std::string value) {
  return CompareString(std::move(column), CompareOp::kEq, std::move(value));
}

PredicateExpr PredicateExpr::CompareInt(std::string column, CompareOp cmp,
                                        i32 value) {
  PredicateExpr e = MakeLeaf(std::move(column), ColumnType::kInteger, cmp);
  e.int_lo = value;
  e.int_hi = value;
  return e;
}
PredicateExpr PredicateExpr::CompareDouble(std::string column, CompareOp cmp,
                                           double value) {
  PredicateExpr e = MakeLeaf(std::move(column), ColumnType::kDouble, cmp);
  e.double_lo = value;
  e.double_hi = value;
  return e;
}
PredicateExpr PredicateExpr::CompareString(std::string column, CompareOp cmp,
                                           std::string value) {
  PredicateExpr e = MakeLeaf(std::move(column), ColumnType::kString, cmp);
  e.string_lo = value;
  e.string_hi = std::move(value);
  return e;
}

PredicateExpr PredicateExpr::BetweenInt(std::string column, i32 lo, i32 hi) {
  PredicateExpr e =
      MakeLeaf(std::move(column), ColumnType::kInteger, CompareOp::kBetween);
  e.int_lo = lo;
  e.int_hi = hi;
  return e;
}
PredicateExpr PredicateExpr::BetweenDouble(std::string column, double lo,
                                           double hi) {
  PredicateExpr e =
      MakeLeaf(std::move(column), ColumnType::kDouble, CompareOp::kBetween);
  e.double_lo = lo;
  e.double_hi = hi;
  return e;
}
PredicateExpr PredicateExpr::BetweenString(std::string column, std::string lo,
                                           std::string hi) {
  PredicateExpr e =
      MakeLeaf(std::move(column), ColumnType::kString, CompareOp::kBetween);
  e.string_lo = std::move(lo);
  e.string_hi = std::move(hi);
  return e;
}

PredicateExpr PredicateExpr::InInt(std::string column, std::vector<i32> values) {
  PredicateExpr e =
      MakeLeaf(std::move(column), ColumnType::kInteger, CompareOp::kIn);
  SortDedupe(&values);
  e.int_set = std::move(values);
  return e;
}
PredicateExpr PredicateExpr::InDouble(std::string column,
                                      std::vector<double> values) {
  PredicateExpr e =
      MakeLeaf(std::move(column), ColumnType::kDouble, CompareOp::kIn);
  // Bit-pattern order so the kEq/kIn bit-equality kernels can binary
  // search; also deduplicates bit-identical values (NaN payloads stay
  // distinct on purpose).
  std::sort(values.begin(), values.end(),
            [](double a, double b) { return BitsOf(a) < BitsOf(b); });
  values.erase(std::unique(values.begin(), values.end(),
                           [](double a, double b) {
                             return BitsOf(a) == BitsOf(b);
                           }),
               values.end());
  e.double_set = std::move(values);
  return e;
}
PredicateExpr PredicateExpr::InString(std::string column,
                                      std::vector<std::string> values) {
  PredicateExpr e =
      MakeLeaf(std::move(column), ColumnType::kString, CompareOp::kIn);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  e.string_set = std::move(values);
  return e;
}

// --- combinators -------------------------------------------------------------

namespace {

PredicateExpr Combine(PredicateExpr::Kind kind,
                      std::vector<PredicateExpr> operands) {
  // Drop empties (they match everything: AND identity; for OR an empty
  // operand would make the whole disjunction trivially true, which is
  // never what a builder dropping an unset filter wants) and flatten
  // nested nodes of the same kind.
  std::vector<PredicateExpr> children;
  for (PredicateExpr& operand : operands) {
    if (operand.Empty()) continue;
    if (operand.kind == kind) {
      for (PredicateExpr& grandchild : operand.children) {
        children.push_back(std::move(grandchild));
      }
    } else {
      children.push_back(std::move(operand));
    }
  }
  if (children.empty()) return PredicateExpr();
  if (children.size() == 1) return std::move(children[0]);
  PredicateExpr e;
  e.kind = kind;
  e.children = std::move(children);
  return e;
}

}  // namespace

PredicateExpr PredicateExpr::And(std::vector<PredicateExpr> operands) {
  return Combine(Kind::kAnd, std::move(operands));
}
PredicateExpr PredicateExpr::Or(std::vector<PredicateExpr> operands) {
  return Combine(Kind::kOr, std::move(operands));
}
PredicateExpr PredicateExpr::And(PredicateExpr a, PredicateExpr b) {
  std::vector<PredicateExpr> operands;
  operands.push_back(std::move(a));
  operands.push_back(std::move(b));
  return And(std::move(operands));
}
PredicateExpr PredicateExpr::Or(PredicateExpr a, PredicateExpr b) {
  std::vector<PredicateExpr> operands;
  operands.push_back(std::move(a));
  operands.push_back(std::move(b));
  return Or(std::move(operands));
}
PredicateExpr PredicateExpr::Not(PredicateExpr operand) {
  PredicateExpr e;
  e.kind = Kind::kNot;
  e.children.push_back(std::move(operand));
  return e;
}

// --- introspection -----------------------------------------------------------

void PredicateExpr::ForEachLeaf(
    const std::function<void(const PredicateExpr&)>& fn) const {
  if (IsLeaf()) {
    fn(*this);
    return;
  }
  for (const PredicateExpr& child : children) child.ForEachLeaf(fn);
}

std::vector<std::string> PredicateExpr::Columns() const {
  std::vector<std::string> out;
  ForEachLeaf([&](const PredicateExpr& leaf) {
    if (std::find(out.begin(), out.end(), leaf.column) == out.end()) {
      out.push_back(leaf.column);
    }
  });
  return out;
}

namespace {

std::string QuoteString(const std::string& s) { return "'" + s + "'"; }

void AppendLeaf(const PredicateExpr& e, std::string* out) {
  auto value_str = [&](size_t i) -> std::string {
    switch (e.type) {
      case ColumnType::kInteger:
        return std::to_string(i == 0 ? e.int_lo : e.int_hi);
      case ColumnType::kDouble:
        return std::to_string(i == 0 ? e.double_lo : e.double_hi);
      case ColumnType::kString:
        return QuoteString(i == 0 ? e.string_lo : e.string_hi);
    }
    return "?";
  };
  *out += e.column;
  if (e.op == CompareOp::kBetween) {
    *out += " BETWEEN " + value_str(0) + " AND " + value_str(1);
    return;
  }
  if (e.op == CompareOp::kIn) {
    *out += " IN (";
    bool first = true;
    auto append = [&](const std::string& v) {
      if (!first) *out += ", ";
      *out += v;
      first = false;
    };
    switch (e.type) {
      case ColumnType::kInteger:
        for (i32 v : e.int_set) append(std::to_string(v));
        break;
      case ColumnType::kDouble:
        for (double v : e.double_set) append(std::to_string(v));
        break;
      case ColumnType::kString:
        for (const std::string& v : e.string_set) append(QuoteString(v));
        break;
    }
    *out += ")";
    return;
  }
  *out += std::string(" ") + CompareOpName(e.op) + " " + value_str(0);
}

void AppendExpr(const PredicateExpr& e, std::string* out, bool parenthesize) {
  switch (e.kind) {
    case PredicateExpr::Kind::kNone:
      *out += "TRUE";
      return;
    case PredicateExpr::Kind::kLeaf:
      AppendLeaf(e, out);
      return;
    case PredicateExpr::Kind::kNot:
      *out += "NOT ";
      AppendExpr(e.children[0], out, true);
      return;
    case PredicateExpr::Kind::kAnd:
    case PredicateExpr::Kind::kOr: {
      const char* joiner =
          e.kind == PredicateExpr::Kind::kAnd ? " AND " : " OR ";
      if (parenthesize) *out += "(";
      for (size_t i = 0; i < e.children.size(); i++) {
        if (i != 0) *out += joiner;
        AppendExpr(e.children[i], out, true);
      }
      if (parenthesize) *out += ")";
      return;
    }
  }
}

}  // namespace

std::string PredicateExpr::ToString() const {
  std::string out;
  AppendExpr(*this, &out, false);
  return out;
}

// --- zone-map pruning --------------------------------------------------------

bool ZoneMayMatchLeaf(const BlockZone& zone, const PredicateExpr& leaf) {
  if (zone.all_null) return false;  // no row can compare TRUE
  switch (leaf.type) {
    case ColumnType::kInteger:
      switch (leaf.op) {
        case CompareOp::kEq:
          return ZoneMayContainInt(zone, leaf.int_lo);
        case CompareOp::kLt:
          return leaf.int_lo != INT32_MIN &&
                 ZoneMayOverlapIntRange(zone, INT32_MIN, leaf.int_lo - 1);
        case CompareOp::kLe:
          return ZoneMayOverlapIntRange(zone, INT32_MIN, leaf.int_lo);
        case CompareOp::kGt:
          return leaf.int_lo != INT32_MAX &&
                 ZoneMayOverlapIntRange(zone, leaf.int_lo + 1, INT32_MAX);
        case CompareOp::kGe:
          return ZoneMayOverlapIntRange(zone, leaf.int_lo, INT32_MAX);
        case CompareOp::kBetween:
          return leaf.int_lo <= leaf.int_hi &&
                 ZoneMayOverlapIntRange(zone, leaf.int_lo, leaf.int_hi);
        case CompareOp::kIn:
          for (i32 v : leaf.int_set) {
            if (ZoneMayContainInt(zone, v)) return true;
          }
          return false;
      }
      return true;
    case ColumnType::kDouble:
      switch (leaf.op) {
        case CompareOp::kEq:
          return ZoneMayContainDouble(zone, leaf.double_lo);
        case CompareOp::kLt:
          return ZoneMayOverlapDoubleRange(zone, -kDoubleInf, leaf.double_lo,
                                           false, true);
        case CompareOp::kLe:
          return ZoneMayOverlapDoubleRange(zone, -kDoubleInf, leaf.double_lo,
                                           false, false);
        case CompareOp::kGt:
          return ZoneMayOverlapDoubleRange(zone, leaf.double_lo, kDoubleInf,
                                           true, false);
        case CompareOp::kGe:
          return ZoneMayOverlapDoubleRange(zone, leaf.double_lo, kDoubleInf,
                                           false, false);
        case CompareOp::kBetween:
          return ZoneMayOverlapDoubleRange(zone, leaf.double_lo,
                                           leaf.double_hi, false, false);
        case CompareOp::kIn:
          for (double v : leaf.double_set) {
            if (ZoneMayContainDouble(zone, v)) return true;
          }
          return false;
      }
      return true;
    case ColumnType::kString:
      switch (leaf.op) {
        case CompareOp::kEq:
          return ZoneMayContainString(zone, leaf.string_lo);
        case CompareOp::kLt:
        case CompareOp::kLe:
          return ZoneMayOverlapStringRange(zone, "", true, leaf.string_lo,
                                           false);
        case CompareOp::kGt:
        case CompareOp::kGe:
          return ZoneMayOverlapStringRange(zone, leaf.string_lo, false, "",
                                           true);
        case CompareOp::kBetween:
          return leaf.string_lo <= leaf.string_hi &&
                 ZoneMayOverlapStringRange(zone, leaf.string_lo, false,
                                           leaf.string_hi, false);
        case CompareOp::kIn:
          for (const std::string& v : leaf.string_set) {
            if (ZoneMayContainString(zone, v)) return true;
          }
          return false;
      }
      return true;
  }
  return true;
}

bool ZoneMayMatch(
    const PredicateExpr& expr,
    const std::function<const BlockZone*(const std::string&)>& zone_of) {
  switch (expr.kind) {
    case PredicateExpr::Kind::kNone:
      return true;
    case PredicateExpr::Kind::kLeaf: {
      const BlockZone* zone = zone_of(expr.column);
      return zone == nullptr || ZoneMayMatchLeaf(*zone, expr);
    }
    case PredicateExpr::Kind::kAnd:
      for (const PredicateExpr& child : expr.children) {
        if (!ZoneMayMatch(child, zone_of)) return false;
      }
      return true;
    case PredicateExpr::Kind::kOr:
      for (const PredicateExpr& child : expr.children) {
        if (ZoneMayMatch(child, zone_of)) return true;
      }
      return false;
    case PredicateExpr::Kind::kNot:
      // A zone proves absence, never presence: NOT (nothing here) would
      // need "every row matches the child" to prune, which min/max alone
      // cannot establish. Stay conservative.
      return true;
  }
  return true;
}

bool ZoneMayMatch(const BlockZone& zone, const PredicateExpr& expr) {
  return ZoneMayMatch(expr,
                      [&](const std::string&) -> const BlockZone* {
                        return &zone;
                      });
}

}  // namespace btr
