#include "btr/predicate.h"

#include "btr/compressed_scan.h"

namespace btr {

bool ZoneMayMatch(const BlockZone& zone, const Predicate& predicate) {
  switch (predicate.type) {
    case ColumnType::kInteger:
      return ZoneMayContainInt(zone, predicate.int_value);
    case ColumnType::kDouble:
      return ZoneMayContainDouble(zone, predicate.double_value);
    case ColumnType::kString:
      return ZoneMayContainString(zone, predicate.string_value);
  }
  return true;
}

u32 CountMatches(const u8* block, const Predicate& predicate,
                 const CompressionConfig& config) {
  switch (predicate.type) {
    case ColumnType::kInteger:
      return CountEqualsInt(block, predicate.int_value, config);
    case ColumnType::kDouble:
      return CountEqualsDouble(block, predicate.double_value, config);
    case ColumnType::kString:
      return CountEqualsString(block, predicate.string_value, config);
  }
  return 0;
}

RoaringBitmap SelectMatches(const u8* block, const Predicate& predicate,
                            const CompressionConfig& config) {
  switch (predicate.type) {
    case ColumnType::kInteger:
      return SelectEqualsInt(block, predicate.int_value, config);
    case ColumnType::kDouble:
      return SelectEqualsDouble(block, predicate.double_value, config);
    case ColumnType::kString:
      return SelectEqualsString(block, predicate.string_value, config);
  }
  return RoaringBitmap();
}

bool HasFastPath(const u8* block, const Predicate& predicate) {
  (void)predicate;  // today only equality exists; all kernels share the path
  return HasFastEqualsPath(block);
}

}  // namespace btr
