// Relation (table) level API: compress every column of a table block by
// block, hold the compressed form in memory, and decompress it back.
// This is the surface the evaluation harnesses drive.
#ifndef BTR_BTR_RELATION_H_
#define BTR_BTR_RELATION_H_

#include <deque>
#include <string>
#include <vector>

#include "btr/datablock.h"
#include "exec/thread_pool.h"

namespace btr {

class Relation {
 public:
  explicit Relation(std::string name) : name_(std::move(name)) {}

  // The returned reference stays valid across further AddColumn calls
  // (columns are kept in a deque).
  Column& AddColumn(std::string name, ColumnType type) {
    columns_.emplace_back(std::move(name), type);
    return columns_.back();
  }

  const std::string& name() const { return name_; }
  const std::deque<Column>& columns() const { return columns_; }
  std::deque<Column>& columns() { return columns_; }
  u32 row_count() const { return columns_.empty() ? 0 : columns_[0].size(); }

  u64 UncompressedBytes() const {
    u64 total = 0;
    for (const Column& c : columns_) total += c.UncompressedBytes();
    return total;
  }

 private:
  std::string name_;
  std::deque<Column> columns_;
};

// One column's compressed blocks.
struct CompressedColumn {
  std::string name;
  ColumnType type = ColumnType::kInteger;
  u64 uncompressed_bytes = 0;
  std::vector<ByteBuffer> blocks;       // one buffer per 64k-value block
  std::vector<u32> block_value_counts;  // values per block
  std::vector<u8> block_root_schemes;   // root scheme code per block
  // One cascade decision tree per block; only populated when the column
  // was compressed with CompressionConfig::collect_cascade_trace.
  std::vector<obs::CascadeNode> block_traces;

  u64 CompressedBytes() const {
    u64 total = 0;
    for (const ByteBuffer& b : blocks) total += b.size();
    return total;
  }
};

struct CompressedRelation {
  std::string name;
  u32 row_count = 0;
  std::vector<CompressedColumn> columns;

  u64 CompressedBytes() const {
    u64 total = 0;
    for (const CompressedColumn& c : columns) total += c.CompressedBytes();
    return total;
  }
  u64 UncompressedBytes() const {
    u64 total = 0;
    for (const CompressedColumn& c : columns) total += c.uncompressed_bytes;
    return total;
  }
  double CompressionRatio() const {
    u64 compressed = CompressedBytes();
    return compressed == 0 ? 0.0
                           : static_cast<double>(UncompressedBytes()) / compressed;
  }
};

// Compresses one column into blocks of kBlockCapacity values.
CompressedColumn CompressColumn(const Column& column,
                                const CompressionConfig& config);

// Compresses every column; with a pool, columns compress in parallel.
CompressedRelation CompressRelation(const Relation& relation,
                                    const CompressionConfig& config,
                                    exec::ThreadPool* pool = nullptr);

// Decompresses every block of a column, reusing `scratch`. Returns the
// total uncompressed value bytes produced (throughput accounting).
u64 DecompressColumn(const CompressedColumn& column,
                     const CompressionConfig& config, DecodedBlock* scratch);

// Decompresses the whole relation; returns total value bytes produced.
u64 DecompressRelation(const CompressedRelation& relation,
                       const CompressionConfig& config,
                       exec::ThreadPool* pool = nullptr);

// Full materialization back into a Relation (round-trip tests, examples).
Relation MaterializeRelation(const CompressedRelation& compressed,
                             const CompressionConfig& config);

}  // namespace btr

#endif  // BTR_BTR_RELATION_H_
