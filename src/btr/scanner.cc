#include "btr/scanner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "btr/datablock.h"
#include "exec/block_cache.h"
#include "exec/pipeline.h"
#include "exec/retry.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/scan_service.h"
#include "util/crc32c.h"
#include "util/timer.h"
#include "write/manifest.h"
#include "write/streaming_writer.h"

namespace btr {

namespace {

struct ScanMetrics {
  obs::Counter& row_blocks;
  obs::Counter& blocks_pruned;
  obs::Counter& blocks_skipped;
  obs::Counter& blocks_decoded;
  obs::Counter& blocks_unreadable;
  obs::Counter& rows_matched;
  obs::Counter& crc_failures;
  obs::Counter& crc_refetches;
  obs::Counter& crc_rescues;
  obs::Counter& bytes_fetched;
  obs::Counter& bytes_decoded;

  static ScanMetrics& Get() {
    static ScanMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new ScanMetrics{r.GetCounter("scan.row_blocks"),
                             r.GetCounter("scan.blocks_pruned"),
                             r.GetCounter("scan.blocks_skipped"),
                             r.GetCounter("scan.blocks_decoded"),
                             r.GetCounter("scan.blocks_unreadable"),
                             r.GetCounter("scan.rows_matched"),
                             r.GetCounter("scan.crc_failures"),
                             r.GetCounter("scan.crc_refetches"),
                             r.GetCounter("scan.crc_rescues"),
                             r.GetCounter("scan.bytes_fetched"),
                             r.GetCounter("scan.bytes_decoded")};
    }();
    return *m;
  }
};

exec::RetryPolicy MakeRetryPolicy(const ScanConfig& config) {
  exec::RetryPolicy policy;
  policy.max_attempts = config.max_attempts == 0 ? 1 : config.max_attempts;
  policy.initial_backoff_ns = config.initial_backoff_ns;
  policy.max_backoff_ns = config.max_backoff_ns;
  policy.request_deadline_ns = config.request_deadline_ns;
  policy.retry_budget = config.retry_budget;
  policy.jitter_seed = config.retry_jitter_seed;
  return policy;
}

exec::HedgePolicy MakeHedgePolicy(const ScanConfig& config) {
  exec::HedgePolicy policy;
  policy.enabled = config.enable_hedged_gets;
  policy.quantile = config.hedge_quantile;
  policy.min_samples = config.hedge_min_samples;
  policy.min_threshold_ns = config.hedge_min_threshold_ns;
  policy.hedge_budget = config.hedge_budget;
  policy.latency_window = config.hedge_latency_window;
  return policy;
}

exec::CircuitBreakerPolicy MakeBreakerPolicy(const ScanConfig& config) {
  exec::CircuitBreakerPolicy policy;
  policy.window = config.breaker_window;
  policy.min_samples = config.breaker_min_samples;
  policy.failure_threshold = config.breaker_failure_threshold;
  policy.cooldown_ns = config.breaker_cooldown_ns;
  policy.half_open_probes = config.breaker_half_open_probes;
  return policy;
}

}  // namespace

Status UploadCompressedRelation(const CompressedRelation& relation,
                                const TableZoneMap* zones,
                                const std::string& prefix,
                                s3sim::ObjectStore* store) {
  // Thin wrapper over the crash-safe commit protocol: the objects stage
  // under the next version's keys and one manifest Put publishes them.
  // (The old implementation Put the metadata object *first* — a reader
  // racing the upload could open a table whose column objects did not
  // exist yet. The versioned commit makes that window impossible.)
  return write::CommitCompressedRelation(relation, zones, prefix, store);
}

Scanner::Scanner(s3sim::ObjectStore* store, std::string table_name,
                 std::string prefix, const CompressionConfig& config)
    : store_(store),
      table_name_(std::move(table_name)),
      prefix_(std::move(prefix)),
      config_(config) {}

Scanner::Scanner(service::ScanService& service, const std::string& tenant_id,
                 s3sim::ObjectStore* store, std::string table_name,
                 std::string prefix, const CompressionConfig& config)
    : store_(store),
      table_name_(std::move(table_name)),
      prefix_(std::move(prefix)),
      config_(config) {
  service_ = &service;
  tenant_slot_ = service.EnsureTenant(tenant_id);
}

// Out-of-line so scanner.h can hold the cache behind a forward declaration.
Scanner::~Scanner() = default;

exec::ThreadPool& Scanner::EnsureDecodePool(u32 threads) {
  if (decode_pool_ == nullptr || decode_pool_threads_ != threads) {
    decode_pool_ = std::make_unique<exec::ThreadPool>(threads);
    decode_pool_threads_ = threads;
  }
  return *decode_pool_;
}

Status Scanner::Open(const ScanConfig& config) {
  if (store_ == nullptr) return Status::InvalidArgument("null object store");
  // Metadata-fetch time surfaces as ScanProfile::open_ns on later scans.
  Timer open_timer;
  // Metadata GETs ride the same retry discipline as block fetches: a
  // transiently failing store must not fail Open.
  exec::RetryState retry(MakeRetryPolicy(config));
  auto fetch = [&](const std::string& key, u64 length, std::vector<u8>* out) {
    return exec::RunWithRetries(
        &retry, [&] { return store_->GetChunk(key, 0, length, out); });
  };

  // Resolve which physical table version to read. A table written through
  // the crash-safe write path has a versioned manifest; its committed
  // version pins every key this Open (and later Scans) will touch, so a
  // writer committing concurrently flips future Opens to the new version
  // while this scanner keeps reading the old one — either-old-or-new,
  // never a mix. Tables uploaded before the manifest existed fall back to
  // the bare table name.
  if (store_->Contains(write::ManifestKey(prefix_, table_name_))) {
    write::Manifest manifest;
    BTR_RETURN_IF_ERROR(exec::RunWithRetries(&retry, [&] {
      return write::ReadManifest(store_, prefix_, table_name_, &manifest);
    }));
    if (manifest.committed_version == 0) {
      return Status::NotFound("table has a manifest but no committed version: " +
                              table_name_);
    }
    resolved_name_ = write::VersionedName(table_name_, manifest.committed_version);
  } else {
    resolved_name_ = table_name_;
  }

  const std::string meta_key = TableMetaKey(prefix_, resolved_name_);
  if (!store_->Contains(meta_key)) {
    return Status::NotFound("table metadata object missing: " + meta_key);
  }
  u64 object_size = 0;
  BTR_RETURN_IF_ERROR(store_->ObjectSize(meta_key, &object_size));
  std::vector<u8> blob;
  BTR_RETURN_IF_ERROR(fetch(meta_key, object_size, &blob));
  BTR_RETURN_IF_ERROR(ParseTableMeta(blob.data(), blob.size(), &meta_));

  const std::string zone_key = ZoneMapKey(prefix_, resolved_name_);
  has_zones_ = store_->Contains(zone_key);
  if (has_zones_) {
    BTR_RETURN_IF_ERROR(store_->ObjectSize(zone_key, &object_size));
    BTR_RETURN_IF_ERROR(fetch(zone_key, object_size, &blob));
    BTR_RETURN_IF_ERROR(ParseTableZoneMap(blob.data(), blob.size(), &zones_));
    if (zones_.columns.size() != meta_.columns.size()) {
      return Status::Corruption("zone map column count mismatch");
    }
  }

  // One small ranged GET per column: the "BTRC" header with per-block byte
  // sizes and payload CRCs, turned into payload offsets for the
  // block-granular GETs Scan() issues later and the integrity checks run
  // on what they return.
  block_offsets_.assign(meta_.columns.size(), {});
  block_crcs_.assign(meta_.columns.size(), {});
  for (size_t c = 0; c < meta_.columns.size(); c++) {
    const std::string key = ColumnFileKey(prefix_, resolved_name_, c);
    if (!store_->Contains(key)) {
      return Status::NotFound("column object missing: " + key);
    }
    u64 block_count = meta_.columns[c].block_value_counts.size();
    u64 header_bytes = ColumnFileHeaderBytes(block_count);
    BTR_RETURN_IF_ERROR(fetch(key, header_bytes, &blob));
    std::vector<u32> sizes;
    BTR_RETURN_IF_ERROR(ParseColumnFileHeader(blob.data(), blob.size(), &sizes,
                                              &block_crcs_[c]));
    if (sizes.size() != block_count) {
      return Status::Corruption("metadata/column block count mismatch: " + key);
    }
    std::vector<u64>& offsets = block_offsets_[c];
    offsets.resize(block_count + 1);
    offsets[0] = header_bytes;
    for (u64 b = 0; b < block_count; b++) {
      offsets[b + 1] = offsets[b] + sizes[b];
    }
  }
  opened_ = true;
  open_ns_ = static_cast<u64>(open_timer.ElapsedNanos());
  return Status::Ok();
}

struct Scanner::ResolvedSpec {
  std::vector<u32> projection;  // table column indices, output order
  std::vector<u32> needed;      // union of projection + filter columns
  // Position of each projection entry inside `needed`.
  std::vector<u32> projection_pos;
  // Resolved filter: spec.filter ANDed with the legacy spec.predicates,
  // with integer leaves on double columns coerced. Empty() = no filtering.
  PredicateExpr filter;
  // Filter column name -> position inside `needed`.
  std::unordered_map<std::string, u32> filter_pos;
  u32 leaf_count = 0;                   // depth-first leaves of `filter`
  std::vector<std::string> leaf_names;  // leaf ToString(), same order
  u32 row_blocks = 0;
  std::vector<u32> block_rows;  // values per row block
};

namespace {

// Rebuilds an integer leaf as the equivalent double leaf (the raw operands
// survive in the expression, so `x < 5` on a double column becomes
// `x < 5.0` losslessly; IN sets are re-sorted into bit-pattern order by
// the factory).
PredicateExpr CoerceIntLeafToDouble(const PredicateExpr& leaf) {
  switch (leaf.op) {
    case CompareOp::kEq:
      return PredicateExpr::EqualsDouble(leaf.column, leaf.int_lo);
    case CompareOp::kBetween:
      return PredicateExpr::BetweenDouble(leaf.column, leaf.int_lo,
                                          leaf.int_hi);
    case CompareOp::kIn: {
      std::vector<double> values(leaf.int_set.begin(), leaf.int_set.end());
      return PredicateExpr::InDouble(leaf.column, std::move(values));
    }
    default:
      return PredicateExpr::CompareDouble(leaf.column, leaf.op, leaf.int_lo);
  }
}

}  // namespace

Status Scanner::ResolveSpec(const ScanSpec& spec, ResolvedSpec* out) const {
  if (!opened_) return Status::InvalidArgument("Scanner::Open() not called");

  auto find_column = [this](const std::string& name, u32* index) {
    for (size_t c = 0; c < meta_.columns.size(); c++) {
      if (meta_.columns[c].name == name) {
        *index = static_cast<u32>(c);
        return true;
      }
    }
    return false;
  };

  if (spec.columns.empty()) {
    for (size_t c = 0; c < meta_.columns.size(); c++) {
      out->projection.push_back(static_cast<u32>(c));
    }
  } else {
    for (const std::string& name : spec.columns) {
      u32 index;
      if (!find_column(name, &index)) {
        return Status::NotFound("projection column not found: " + name);
      }
      out->projection.push_back(index);
    }
  }

  auto needed_pos = [out](u32 table_index) {
    for (size_t i = 0; i < out->needed.size(); i++) {
      if (out->needed[i] == table_index) return static_cast<u32>(i);
    }
    out->needed.push_back(table_index);
    return static_cast<u32>(out->needed.size() - 1);
  };
  for (u32 index : out->projection) {
    out->projection_pos.push_back(needed_pos(index));
  }

  // One filter expression: the composable spec.filter ANDed with each
  // legacy single predicate.
  out->filter = spec.filter;
  for (const Predicate& predicate : spec.predicates) {
    out->filter = PredicateExpr::And(std::move(out->filter), predicate);
  }

  // Resolve every leaf: the column must exist, its type must match (or be
  // coercible int -> double), and its block bytes must be fetched.
  Status leaf_status = Status::Ok();
  std::function<void(PredicateExpr&)> resolve = [&](PredicateExpr& node) {
    if (!leaf_status.ok()) return;
    if (node.kind != PredicateExpr::Kind::kLeaf) {
      for (PredicateExpr& child : node.children) resolve(child);
      return;
    }
    u32 index;
    if (!find_column(node.column, &index)) {
      leaf_status = Status::NotFound("predicate column not found: " +
                                     node.column);
      return;
    }
    ColumnType column_type = meta_.columns[index].type;
    if (column_type != node.type) {
      if (node.type == ColumnType::kInteger &&
          column_type == ColumnType::kDouble) {
        node = CoerceIntLeafToDouble(node);
      } else {
        leaf_status = Status::InvalidArgument(
            "predicate type does not match column type: " + node.column);
        return;
      }
    }
    out->filter_pos.emplace(node.column, needed_pos(index));
  };
  resolve(out->filter);
  BTR_RETURN_IF_ERROR(leaf_status);
  out->filter.ForEachLeaf([&](const PredicateExpr& leaf) {
    out->leaf_count++;
    out->leaf_names.push_back(leaf.ToString());
  });

  // Every column blocks its rows identically (kBlockCapacity), so all
  // needed columns must agree on the block structure.
  if (!out->needed.empty()) {
    const std::vector<u32>& reference =
        meta_.columns[out->needed[0]].block_value_counts;
    for (u32 index : out->needed) {
      if (meta_.columns[index].block_value_counts != reference) {
        return Status::Corruption("columns disagree on block structure");
      }
    }
    out->row_blocks = static_cast<u32>(reference.size());
    out->block_rows = reference;
  }
  return Status::Ok();
}

namespace {

// Everything one row block produced, moved from the decode worker to the
// emitting thread through the reorder buffer.
struct BlockResult {
  BlockOutcome outcome = BlockOutcome::kDecoded;
  RoaringBitmap selection;
  std::vector<DecodedBlock> decoded;  // by projection position (kDecoded only)
  Status error;  // why the block is kUnreadable (degraded mode only)
};

// Fetched column blocks of one row block, awaiting completion. A part
// whose fetch failed permanently still counts toward `filled` (its status
// lands in `error`) so the bundle always completes and the emitter never
// waits on a block that cannot arrive. Parts are the block cache's
// refcounted payloads: a cache hit shares the cached buffer instead of
// copying it, and a fetched buffer is wrapped without a copy.
struct Bundle {
  std::vector<exec::BlockCache::Payload> parts;  // by needed-column position
  u32 filled = 0;
  Status error;  // first fetch failure of this row block
};

}  // namespace

Status Scanner::Scan(const ScanSpec& spec, const ChunkCallback& emit,
                     ScanStats* stats_out) {
  BTR_TRACE_SPAN("scan.pipeline");
  Timer timer;
  ResolvedSpec resolved;
  BTR_RETURN_IF_ERROR(ResolveSpec(spec, &resolved));

  // Serviced scans pass admission control before any other work: a
  // saturated service or an over-quota tenant surfaces here as typed
  // Status::Throttled (transient — callers may wrap Scan in
  // exec::RunWithRetries and back off).
  service::ScanService::Ticket ticket;
  u64 admission_wait_ns = 0;
  if (service_ != nullptr) {
    BTR_RETURN_IF_ERROR(
        service_->Admit(tenant_slot_, &ticket, &admission_wait_ns));
  }
  // Every return below must give the admission slot back.
  struct TicketGuard {
    service::ScanService* service;
    service::ScanService::Ticket* ticket;
    ~TicketGuard() {
      if (service != nullptr) service->Release(ticket);
    }
  } ticket_guard{service_, &ticket};
  (void)ticket_guard;

  // Per-scan profile. Null when disabled: every instrumentation site
  // below tests this pointer and records nothing — no locks, no
  // allocation, no clock reads on the disabled path.
  std::unique_ptr<obs::ScanProfileCollector> collector;
  if (spec.config.collect_profile) {
    collector = std::make_unique<obs::ScanProfileCollector>(
        spec.config.profile_slow_ops);
    collector->SetOpenNanos(open_ns_);
  }
  obs::ScanProfileCollector* profile = collector.get();
  obs::StageTimer stage_timer;  // calling-thread stages; starts in kPlan

  ScanStats stats;
  stats.row_blocks = resolved.row_blocks;
  const u64 base_requests = store_->total_requests();
  const u64 base_bytes = store_->total_bytes_fetched();
  ScanMetrics& metrics = ScanMetrics::Get();
  metrics.row_blocks.Add(resolved.row_blocks);

  // --- stage 0: zone-map pruning -------------------------------------------
  // A row block is pruned when the whole filter expression proves it
  // empty: AND prunes when any conjunct does, OR only when all disjuncts
  // do (ZoneMayMatch walks the tree). Disabled together with pushdown so
  // the decode-then-filter baseline really fetches and decodes everything.
  const bool has_filter = !resolved.filter.Empty();
  const bool pushdown = spec.config.enable_predicate_pushdown;
  Timer prune_timer;
  std::vector<u8> pruned(resolved.row_blocks, 0);
  std::vector<u64> leaf_zone_prunes(resolved.leaf_count, 0);
  if (has_zones_ && has_filter && pushdown) {
    for (u32 b = 0; b < resolved.row_blocks; b++) {
      auto zone_of = [&](const std::string& name) -> const BlockZone* {
        auto it = resolved.filter_pos.find(name);
        if (it == resolved.filter_pos.end()) return nullptr;
        const ColumnZoneMap& zones = zones_.columns[resolved.needed[it->second]];
        return b < zones.zones.size() ? &zones.zones[b] : nullptr;
      };
      if (!ZoneMayMatch(resolved.filter, zone_of)) {
        pruned[b] = 1;
        // Attribute the prune to every leaf that alone proves the block
        // empty (ScanStats::predicate_leaves).
        u32 leaf = 0;
        resolved.filter.ForEachLeaf([&](const PredicateExpr& l) {
          const BlockZone* zone = zone_of(l.column);
          if (zone != nullptr && !ZoneMayMatchLeaf(*zone, l)) {
            leaf_zone_prunes[leaf]++;
          }
          leaf++;
        });
      }
    }
  }
  if (profile != nullptr) {
    profile->SetZonePruneNanos(static_cast<u64>(prune_timer.ElapsedNanos()));
  }

  // --- stage 1: fetch plan ---------------------------------------------------
  // Block-major so one row block's column parts are fetched adjacently and
  // bundles complete close to their emission order.
  const u32 needed_count = static_cast<u32>(resolved.needed.size());
  std::vector<exec::FetchRequest> requests;
  for (u32 b = 0; b < resolved.row_blocks; b++) {
    if (pruned[b]) continue;
    for (u32 pos = 0; pos < needed_count; pos++) {
      u32 column = resolved.needed[pos];
      exec::FetchRequest request;
      request.key = ColumnFileKey(prefix_, resolved_name_, column);
      request.offset = block_offsets_[column][b];
      request.length = block_offsets_[column][b + 1] - block_offsets_[column][b];
      request.tag = static_cast<u64>(b) * needed_count + pos;
      // Arms the block cache for this request: a hit skips the GET, a
      // fetched payload is admitted only when it matches this checksum.
      request.expected_crc = block_crcs_[column][b];
      request.verify_crc = true;
      requests.push_back(std::move(request));
    }
  }

  // --- shared pipeline state -------------------------------------------------
  std::mutex mutex;
  std::condition_variable ready_cv;
  std::map<u32, BlockResult> ready;              // reorder buffer
  std::unordered_map<u32, Bundle> assembling;    // incomplete bundles
  Status first_error;
  bool failed = false;

  const bool degraded = spec.config.skip_unreadable_blocks;
  const bool serviced = service_ != nullptr;

  // Resilience attachments. Standalone: the cache is Scanner-owned
  // (created on the first cache-enabled scan) so warm repeat scans hit
  // it, and the breaker is per-scan — backend health verdicts should not
  // leak across scans with possibly different tolerance for failure.
  // Serviced: both are the service's shared instances — one CRC-verified
  // cache for every tenant and one breaker per backend, so a dead store
  // fails fast for everyone (the per-scan ScanConfig cache/breaker knobs
  // are owned by the service in this mode).
  exec::BlockCache* active_cache = nullptr;
  if (serviced) {
    active_cache = service_->cache();
  } else if (spec.config.enable_block_cache) {
    if (block_cache_ == nullptr) {
      exec::BlockCacheConfig cache_config;
      cache_config.capacity_bytes = spec.config.block_cache_bytes;
      cache_config.shards = spec.config.block_cache_shards;
      block_cache_ = std::make_unique<exec::BlockCache>(cache_config);
    }
    active_cache = block_cache_.get();
  }
  std::unique_ptr<exec::CircuitBreaker> own_breaker;
  exec::CircuitBreaker* breaker = nullptr;
  if (serviced) {
    breaker = service_->BreakerFor(store_);
  } else if (spec.config.enable_circuit_breaker) {
    own_breaker = std::make_unique<exec::CircuitBreaker>(
        MakeBreakerPolicy(spec.config));
    breaker = own_breaker.get();
  }
  // A shared breaker's lifetime counters move under concurrent scans, so
  // per-scan stats report deltas (exact standalone, approximate serviced).
  const u64 base_breaker_trips = breaker != nullptr ? breaker->trips() : 0;
  const u64 base_breaker_fast =
      breaker != nullptr ? breaker->fast_failures() : 0;

  // Cache inserts go through the tenant's cache-byte quota when serviced.
  auto cache_insert = [&](const std::string& key, u64 offset, u64 length,
                          const u8* data, size_t size, u32 expected_crc) {
    if (active_cache == nullptr) return;
    if (serviced) {
      service_->TryCacheInsert(tenant_slot_, key, offset, length, data, size,
                               expected_crc);
    } else {
      active_cache->Insert(key, offset, length, data, size, expected_crc);
    }
  };

  // Mode-specific unwind hook invoked by fail(): standalone stops the
  // prefetcher and aborts the bounded queue; serviced wakes backoff
  // sleepers so in-flight items bail fast.
  std::function<void()> on_fail_unwind;
  auto fail = [&](Status status) {
    bool first = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (!failed) {
        failed = true;
        first = true;
        first_error = std::move(status);
      }
    }
    // Mark the failure point in the trace so an aborted scan's spans are
    // diagnosable — the RAII spans themselves flush normally on unwind.
    if (first) BTR_TRACE_INSTANT("scan.error");
    if (on_fail_unwind) on_fail_unwind();
    ready_cv.notify_all();
  };

  // CRC-refetch accounting (ScanStats::crc_refetches / crc_rescues);
  // atomics because process_bundle runs on the decode workers.
  std::atomic<u64> crc_refetch_count{0};
  std::atomic<u64> crc_rescue_count{0};
  std::atomic<u64> bytes_decoded_count{0};
  // Serviced scans share the store with other tenants, so per-scan
  // request/byte totals cannot come from store deltas — this scan's items
  // count their own traffic instead (ignored in standalone mode, which
  // keeps the exact store-delta accounting).
  std::atomic<u64> job_requests{0};
  std::atomic<u64> job_bytes_fetched{0};
  // Per-leaf fast-path/materialized tallies, merged from the decode
  // workers' per-block LeafEvalStats (ScanStats::predicate_leaves).
  std::vector<std::atomic<u64>> leaf_fast_count(resolved.leaf_count);
  std::vector<std::atomic<u64>> leaf_materialized_count(resolved.leaf_count);

  // Decodes one complete bundle into a BlockResult. Runs on a worker.
  auto process_bundle = [&](u32 b, Bundle& bundle,
                            BlockResult* result) -> Status {
    u32 expected_rows = resolved.block_rows[b];
    Timer validate_timer;
    for (u32 pos = 0; pos < needed_count; pos++) {
      if (bundle.parts[pos] == nullptr) {
        return Status::Internal("block " + std::to_string(b) +
                                " arrived without part " + std::to_string(pos));
      }
      const ByteBuffer* part = bundle.parts[pos].get();
      u32 column = resolved.needed[pos];
      // Integrity first: the payload must be exactly the bytes the column
      // header promised. Catches truncated ranges (size) and flipped bits
      // (CRC32C) before any parsing logic sees the data.
      u64 expected_size =
          block_offsets_[column][b + 1] - block_offsets_[column][b];
      if (part->size() != expected_size ||
          Crc32c(part->data(), part->size()) != block_crcs_[column][b]) {
        metrics.crc_failures.Add();
        // The mismatch may be transient wire corruption rather than
        // at-rest damage: re-fetch the range once, straight from the store
        // (a direct GET cannot be served by the cache), and re-verify
        // before giving up on the block.
        bool rescued = false;
        if (spec.config.refetch_on_crc_failure) {
          metrics.crc_refetches.Add();
          crc_refetch_count.fetch_add(1, std::memory_order_relaxed);
          const std::string key = ColumnFileKey(prefix_, resolved_name_, column);
          std::vector<u8> fresh;
          Status refetch = store_->GetChunk(key, block_offsets_[column][b],
                                            expected_size, &fresh);
          job_requests.fetch_add(1, std::memory_order_relaxed);
          if (refetch.ok() && fresh.size() == expected_size &&
              Crc32c(fresh.data(), fresh.size()) == block_crcs_[column][b]) {
            job_bytes_fetched.fetch_add(fresh.size(),
                                        std::memory_order_relaxed);
            auto repaired = std::make_shared<ByteBuffer>();
            repaired->Append(fresh.data(), fresh.size());
            bundle.parts[pos] = std::move(repaired);
            part = bundle.parts[pos].get();
            // The verified bytes are exactly what the cache wants; the
            // corrupt ones were already refused at admission.
            cache_insert(key, block_offsets_[column][b], expected_size,
                         fresh.data(), fresh.size(), block_crcs_[column][b]);
            metrics.crc_rescues.Add();
            crc_rescue_count.fetch_add(1, std::memory_order_relaxed);
            rescued = true;
          }
          if (profile != nullptr) profile->AddCrcRefetch(rescued);
        }
        if (!rescued) {
          return Status::Corruption(
              "block " + std::to_string(b) + " of column " +
              meta_.columns[column].name + " failed CRC verification");
        }
      }
      ColumnType type = meta_.columns[column].type;
      BTR_RETURN_IF_ERROR(
          ValidateBlock(part->data(), part->size(), type, expected_rows));
    }
    if (profile != nullptr) {
      profile->AddActivity(obs::ScanActivity::kValidate,
                           static_cast<u64>(validate_timer.ElapsedNanos()),
                           needed_count);
    }

    if (has_filter) {
      BTR_TRACE_SPAN("scan.predicate");
      Timer predicate_timer;
      if (pushdown) {
        // Evaluate on the compressed form; only surviving blocks reach
        // DecompressBlock below (decode-only-survivors).
        std::vector<LeafEvalStats> leaf_stats(resolved.leaf_count);
        auto block_of = [&](const std::string& name) -> const u8* {
          auto it = resolved.filter_pos.find(name);
          return it == resolved.filter_pos.end()
                     ? nullptr
                     : bundle.parts[it->second]->data();
        };
        EvalResult evaluated = EvaluateExpr(resolved.filter, expected_rows,
                                            block_of, config_, &leaf_stats);
        result->selection = std::move(evaluated.pass);
        for (u32 leaf = 0; leaf < resolved.leaf_count; leaf++) {
          leaf_fast_count[leaf].fetch_add(leaf_stats[leaf].fast_path,
                                          std::memory_order_relaxed);
          leaf_materialized_count[leaf].fetch_add(
              leaf_stats[leaf].materialized, std::memory_order_relaxed);
        }
      } else {
        // Decode-then-filter baseline: materialize every filter column,
        // then run the reference row-at-a-time evaluation.
        std::unordered_map<std::string, DecodedBlock> decoded_filter;
        for (const auto& [name, pos] : resolved.filter_pos) {
          DecompressBlock(bundle.parts[pos]->data(), &decoded_filter[name],
                          config_);
        }
        EvalResult evaluated = EvaluateExprDecoded(
            resolved.filter, expected_rows,
            [&](const std::string& name) -> const DecodedBlock* {
              auto it = decoded_filter.find(name);
              return it == decoded_filter.end() ? nullptr : &it->second;
            });
        result->selection = std::move(evaluated.pass);
        for (u32 leaf = 0; leaf < resolved.leaf_count; leaf++) {
          leaf_materialized_count[leaf].fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (profile != nullptr) {
        profile->AddActivity(obs::ScanActivity::kPredicate,
                             static_cast<u64>(predicate_timer.ElapsedNanos()),
                             resolved.leaf_count);
      }
      if (result->selection.Empty()) {
        result->outcome = BlockOutcome::kSkipped;
        return Status::Ok();
      }
    }

    BTR_TRACE_SPAN("scan.decode");
    result->decoded.resize(resolved.projection.size());
    for (size_t p = 0; p < resolved.projection.size(); p++) {
      const ByteBuffer& part = *bundle.parts[resolved.projection_pos[p]];
      u32 column = resolved.projection[p];
      if (profile != nullptr) {
        Timer decode_timer;
        DecompressBlock(part.data(), &result->decoded[p], config_);
        obs::DecodeRecord record;
        record.column = &meta_.columns[column].name;
        record.offset = block_offsets_[column][b];
        record.length = part.size();
        record.duration_ns = static_cast<u64>(decode_timer.ElapsedNanos());
        record.bytes_decoded = result->decoded[p].ValueBytes();
        record.block = b;
        record.scheme = PeekBlockScheme(part.data());
        record.type = static_cast<u8>(meta_.columns[column].type);
        profile->RecordDecode(record);
      } else {
        DecompressBlock(part.data(), &result->decoded[p], config_);
      }
      bytes_decoded_count.fetch_add(result->decoded[p].ValueBytes(),
                                    std::memory_order_relaxed);
    }
    return Status::Ok();
  };
  // Every non-pruned block goes through the reorder buffer exactly once:
  // kDecoded, kSkipped, and — in degraded mode — kUnreadable, so the
  // emitter always sees block b eventually and never waits forever.
  auto process_and_publish = [&](u32 b, Bundle&& bundle) {
    BlockResult result;
    Status status = bundle.error.ok() ? process_bundle(b, bundle, &result)
                                      : bundle.error;
    if (!status.ok()) {
      if (!degraded) {
        fail(std::move(status));
        return;
      }
      result = BlockResult();
      result.outcome = BlockOutcome::kUnreadable;
      result.error = std::move(status);
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      ready.emplace(b, std::move(result));
    }
    ready_cv.notify_all();
  };

  u32 scan_threads = spec.config.scan_threads;
  if (scan_threads == 0) {
    scan_threads = std::max(1u, std::thread::hardware_concurrency());
  }

  // --- stage 3: in-order emission on the calling thread ---------------------
  Status emit_status;
  auto emit_loop = [&] {
    for (u32 b = 0; b < resolved.row_blocks; b++) {
      if (pruned[b]) {
        if (profile != nullptr) stage_timer.Enter(obs::ScanStage::kEmit);
        stats.blocks_pruned++;
        metrics.blocks_pruned.Add();
        for (size_t p = 0; p < resolved.projection.size(); p++) {
          ColumnChunk chunk;
          chunk.column = static_cast<u32>(p);
          chunk.block = b;
          chunk.row_begin = BlockRowBegin(b);
          chunk.row_count = resolved.block_rows[b];
          chunk.outcome = BlockOutcome::kPruned;
          emit(std::move(chunk));
        }
        continue;
      }
      BlockResult result;
      {
        if (profile != nullptr) stage_timer.Enter(obs::ScanStage::kEmitWait);
        std::unique_lock<std::mutex> lock(mutex);
        ready_cv.wait(lock, [&] { return failed || ready.count(b) != 0; });
        if (failed) break;
        result = std::move(ready[b]);
        ready.erase(b);
      }
      if (profile != nullptr) stage_timer.Enter(obs::ScanStage::kEmit);
      u64 block_matches = has_filter ? result.selection.Cardinality()
                                     : resolved.block_rows[b];
      if (result.outcome == BlockOutcome::kSkipped) {
        stats.blocks_skipped++;
        metrics.blocks_skipped.Add();
      } else if (result.outcome == BlockOutcome::kUnreadable) {
        stats.blocks_unreadable++;
        metrics.blocks_unreadable.Add();
        stats.unreadable_blocks.push_back(b);
        stats.unreadable_reasons.push_back(result.error);
      } else {
        stats.blocks_decoded++;
        metrics.blocks_decoded.Add();
        stats.rows_matched += block_matches;
        metrics.rows_matched.Add(block_matches);
      }
      for (size_t p = 0; p < resolved.projection.size(); p++) {
        ColumnChunk chunk;
        chunk.column = static_cast<u32>(p);
        chunk.block = b;
        chunk.row_begin = BlockRowBegin(b);
        chunk.row_count = resolved.block_rows[b];
        chunk.outcome = result.outcome;
        if (result.outcome == BlockOutcome::kDecoded) {
          chunk.values = std::move(result.decoded[p]);
          chunk.selection = result.selection;
        }
        emit(std::move(chunk));
      }
    }
  };

  if (!serviced) {
    // ---- standalone: private prefetcher feeding a persistent decode pool --
    exec::FetchOptions fetch_options;
    fetch_options.cache = active_cache;
    fetch_options.hedge = MakeHedgePolicy(spec.config);
    fetch_options.breaker = breaker;
    fetch_options.profile = profile;

    exec::BoundedQueue<exec::FetchedBlock> queue(
        std::max<u32>(1, spec.config.prefetch_depth));
    exec::Prefetcher prefetcher(store_, std::move(requests), &queue,
                                spec.config.fetch_threads,
                                MakeRetryPolicy(spec.config), fetch_options);
    on_fail_unwind = [&] {
      prefetcher.RequestStop();
      queue.Abort();
    };

    exec::ThreadPool& pool = EnsureDecodePool(scan_threads);
    for (u32 t = 0; t < scan_threads; t++) {
      pool.Submit([&] {
        try {
          exec::FetchedBlock fetched;
          for (;;) {
            bool popped;
            if (profile != nullptr) {
              // Time spent blocked on the queue = decode capacity wasted
              // waiting for the prefetcher (ScanProfile "prefetch_wait").
              Timer pop_timer;
              popped = queue.Pop(&fetched);
              profile->AddActivity(obs::ScanActivity::kPrefetchWait,
                                   static_cast<u64>(pop_timer.ElapsedNanos()));
            } else {
              popped = queue.Pop(&fetched);
            }
            if (!popped) break;
            u32 b = static_cast<u32>(fetched.tag / needed_count);
            u32 pos = static_cast<u32>(fetched.tag % needed_count);
            Bundle complete;
            bool is_complete = false;
            {
              std::lock_guard<std::mutex> lock(mutex);
              Bundle& bundle = assembling[b];
              if (bundle.parts.empty()) bundle.parts.resize(needed_count);
              if (!fetched.status.ok() && bundle.error.ok()) {
                bundle.error = fetched.status;
              }
              bundle.parts[pos] =
                  std::make_shared<ByteBuffer>(std::move(fetched.data));
              if (++bundle.filled == needed_count) {
                complete = std::move(bundle);
                assembling.erase(b);
                is_complete = true;
              }
            }
            if (is_complete) process_and_publish(b, std::move(complete));
          }
        } catch (...) {
          // Unblock the emitter before handing the exception to the pool
          // (ThreadPool::Wait() rethrows it; Scan() maps it to a Status).
          fail(Status::Internal("scan worker threw"));
          throw;
        }
      });
    }
    prefetcher.Start();
    emit_loop();

    // --- unwind -------------------------------------------------------------
    // On failure Abort() unblocks producers and consumers; on success the
    // prefetcher has closed the queue and workers drain to end-of-stream.
    if (profile != nullptr) stage_timer.Enter(obs::ScanStage::kTeardown);
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (failed) emit_status = first_error;
    }
    if (!emit_status.ok()) {
      prefetcher.RequestStop();
      queue.Abort();
    }
    try {
      // Worker exceptions (including ones thrown past process_and_publish)
      // surface here once — map them into the Status-carrying API instead of
      // letting them escape Scan().
      pool.Wait();
    } catch (const std::exception& e) {
      if (emit_status.ok()) {
        emit_status =
            Status::Internal(std::string("scan worker threw: ") + e.what());
      }
    } catch (...) {
      if (emit_status.ok()) {
        emit_status = Status::Internal("scan worker threw a non-std exception");
      }
    }
    prefetcher.Join();
    // The queue and prefetcher leave scope here; drop the unwind hook that
    // captured them (nothing can fail() past this point anyway).
    on_fail_unwind = nullptr;

    stats.retries = prefetcher.retries();
    stats.cache_hits = prefetcher.cache_hits();
    stats.cache_misses = prefetcher.cache_misses();
    stats.hedges = prefetcher.hedges();
    stats.hedge_wins = prefetcher.hedge_wins();
    stats.bytes_fetched = store_->total_bytes_fetched() - base_bytes;
    stats.requests = store_->total_requests() - base_requests;
  } else {
    // ---- serviced: fetch/decode items on the service's shared executors ---
    // Backpressure here is window tokens, not a bounded queue: this scan
    // may have at most `window_tokens` parts in flight (submitted but not
    // yet decoded); a bundle's decode returns its parts' tokens and pumps
    // the next submissions. Tokens are only consumed before submitting,
    // never while holding an executor thread, so service threads never
    // block on another scan's progress (no cross-tenant head-of-line
    // blocking). The window is clamped up to needed_count so a bundle can
    // always assemble completely and release.
    exec::RetryState job_retry(MakeRetryPolicy(spec.config));
    exec::HedgeState job_hedge(MakeHedgePolicy(spec.config));
    exec::StragglerSink job_stragglers;
    std::condition_variable job_cv;  // backoff sleeps + quiesce (uses `mutex`)
    u64 window_tokens = std::max<u64>(
        std::max<u32>(1, spec.config.prefetch_depth), needed_count);
    size_t next_request = 0;  // next index into `requests`; guarded by mutex
    u64 outstanding = 0;      // submitted items not yet finished; guarded
    std::atomic<u64> job_cache_hits{0};
    std::atomic<u64> job_cache_misses{0};

    on_fail_unwind = [&] { job_cv.notify_all(); };

    // Interruptible retry backoff: sleeping on job_cv keeps the executor
    // thread wakeable the moment the scan fails.
    auto job_sleep = [&](u64 backoff_ns) {
      std::unique_lock<std::mutex> lock(mutex);
      job_cv.wait_for(lock, std::chrono::nanoseconds(backoff_ns),
                      [&] { return failed; });
      return !failed;
    };
    auto item_done = [&] {
      std::lock_guard<std::mutex> lock(mutex);
      if (--outstanding == 0) job_cv.notify_all();
    };

    std::function<void()> pump;
    std::function<void(u32, std::shared_ptr<Bundle>)> run_decode_item;
    std::function<void(size_t)> run_fetch_item;

    run_decode_item = [&](u32 b, std::shared_ptr<Bundle> bundle) {
      bool bail;
      {
        std::lock_guard<std::mutex> lock(mutex);
        bail = failed;
      }
      if (!bail) {
        try {
          process_and_publish(b, std::move(*bundle));
        } catch (...) {
          // A service executor thread must survive a throwing decode; map
          // the exception into the scan's Status instead of rethrowing.
          fail(Status::Internal("scan worker threw"));
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          window_tokens += needed_count;
        }
        pump();
      }
      item_done();
    };

    run_fetch_item = [&](size_t i) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (failed) {
          if (--outstanding == 0) job_cv.notify_all();
          return;
        }
      }
      const exec::FetchRequest& request = requests[i];
      exec::BlockCache::Payload payload;
      Status status;
      const bool cacheable = active_cache != nullptr && request.verify_crc;
      if (cacheable) {
        payload = active_cache->LookupShared(request.key, request.offset,
                                             request.length);
      }
      if (payload != nullptr) {
        // Shared-cache hit: the bundle references the cached buffer
        // directly — zero copies, zero GETs.
        job_cache_hits.fetch_add(1, std::memory_order_relaxed);
        service_->RecordFetchOutcome(tenant_slot_, /*cache_hit=*/true,
                                     /*bytes=*/0, /*gets=*/0,
                                     /*hedged=*/false);
        if (profile != nullptr) {
          obs::FetchRecord record;
          record.key = &request.key;
          record.offset = request.offset;
          record.length = request.length;
          record.cacheable = true;
          record.cache_hit = true;
          profile->RecordFetch(record);
        }
      } else {
        if (cacheable) {
          job_cache_misses.fetch_add(1, std::memory_order_relaxed);
        }
        std::vector<u8> chunk;
        bool hedged = false;
        bool hedge_won = false;
        exec::RetryOutcome outcome;
        Timer get_timer;
        {
          BTR_TRACE_SPAN("scan.fetch");
          // Same retry/hedge discipline as the standalone prefetcher, with
          // one extra gate: a hedge must also fit the tenant's budget.
          status = exec::RunWithRetries(
              &job_retry,
              [&] {
                return exec::HedgedGet(
                    store_, request.key, request.offset, request.length,
                    &job_hedge, &job_stragglers, &chunk, &hedged, &hedge_won,
                    [&] {
                      return service_->TryAcquireTenantHedge(tenant_slot_);
                    });
              },
              job_sleep, breaker, &outcome);
        }
        u64 attempts = outcome.attempts == 0 ? 1 : outcome.attempts;
        u64 gets = attempts + (hedged ? 1 : 0);
        job_requests.fetch_add(gets, std::memory_order_relaxed);
        if (profile != nullptr) {
          obs::FetchRecord record;
          record.key = &request.key;
          record.offset = request.offset;
          record.length = request.length;
          record.duration_ns = static_cast<u64>(get_timer.ElapsedNanos());
          record.attempts = attempts;
          record.retries = outcome.retries;
          record.cacheable = cacheable;
          record.hedged = hedged;
          record.hedge_won = hedge_won;
          record.breaker_rejected = outcome.breaker_rejected;
          record.ok = status.ok();
          profile->RecordFetch(record);
        }
        if (status.ok()) {
          job_bytes_fetched.fetch_add(chunk.size(), std::memory_order_relaxed);
          service_->RecordFetchOutcome(tenant_slot_, /*cache_hit=*/false,
                                       chunk.size(), gets, hedged);
          auto buffer = std::make_shared<ByteBuffer>();
          buffer->Append(chunk.data(), chunk.size());
          payload = std::move(buffer);
          if (cacheable) {
            // Verified admission under the tenant's cache-byte quota.
            cache_insert(request.key, request.offset, request.length,
                         chunk.data(), chunk.size(), request.expected_crc);
          }
        }
      }
      // Assemble the bundle (mirrors the standalone decode worker), then
      // hand a completed one to the decode lane.
      u32 b = static_cast<u32>(request.tag / needed_count);
      u32 pos = static_cast<u32>(request.tag % needed_count);
      std::shared_ptr<Bundle> complete;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (failed) {
          if (--outstanding == 0) job_cv.notify_all();
          return;
        }
        Bundle& bundle = assembling[b];
        if (bundle.parts.empty()) bundle.parts.resize(needed_count);
        if (!status.ok() && bundle.error.ok()) bundle.error = status;
        bundle.parts[pos] = std::move(payload);
        if (++bundle.filled == needed_count) {
          complete = std::make_shared<Bundle>(std::move(bundle));
          assembling.erase(b);
          outstanding++;  // the decode item submitted just below
        }
      }
      if (complete != nullptr) {
        u64 cost = 0;
        for (const exec::BlockCache::Payload& part : complete->parts) {
          if (part != nullptr) cost += part->size();
        }
        service_->SubmitDecode(tenant_slot_, cost, [&, b, complete] {
          run_decode_item(b, complete);
        });
      }
      item_done();
    };

    pump = [&] {
      std::vector<size_t> to_submit;
      {
        std::lock_guard<std::mutex> lock(mutex);
        while (!failed && window_tokens > 0 &&
               next_request < requests.size()) {
          window_tokens--;
          outstanding++;
          to_submit.push_back(next_request++);
        }
      }
      for (size_t i : to_submit) {
        service_->SubmitFetch(tenant_slot_, requests[i].length,
                              [&, i] { run_fetch_item(i); });
      }
    };

    pump();
    emit_loop();

    // --- unwind -------------------------------------------------------------
    if (profile != nullptr) stage_timer.Enter(obs::ScanStage::kTeardown);
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (failed) emit_status = first_error;
    }
    job_cv.notify_all();
    {
      // Quiesce before returning: every submitted closure captures this
      // stack frame, so Scan() must not return (or give back its admission
      // slot) while one is still queued or running.
      std::unique_lock<std::mutex> lock(mutex);
      job_cv.wait(lock, [&] { return outstanding == 0; });
    }
    job_stragglers.Reap();
    on_fail_unwind = nullptr;

    stats.retries = job_retry.retries_granted();
    stats.cache_hits = job_cache_hits.load(std::memory_order_relaxed);
    stats.cache_misses = job_cache_misses.load(std::memory_order_relaxed);
    stats.hedges = job_hedge.hedges_issued();
    stats.hedge_wins = job_hedge.hedge_wins();
    stats.bytes_fetched = job_bytes_fetched.load(std::memory_order_relaxed);
    stats.requests = job_requests.load(std::memory_order_relaxed);
  }

  if (breaker != nullptr) {
    // Deltas, because a service-shared breaker's counters also move under
    // other tenants' scans (exact standalone, approximate serviced).
    stats.breaker_trips = breaker->trips() - base_breaker_trips;
    stats.breaker_fast_failures =
        breaker->fast_failures() - base_breaker_fast;
  }
  stats.admission_wait_ns = admission_wait_ns;
  stats.predicate_leaves.resize(resolved.leaf_count);
  for (u32 leaf = 0; leaf < resolved.leaf_count; leaf++) {
    PredicateLeafStats& leaf_stats = stats.predicate_leaves[leaf];
    leaf_stats.description = resolved.leaf_names[leaf];
    leaf_stats.blocks_pruned = leaf_zone_prunes[leaf];
    leaf_stats.fast_path = leaf_fast_count[leaf].load(std::memory_order_relaxed);
    leaf_stats.materialized =
        leaf_materialized_count[leaf].load(std::memory_order_relaxed);
  }
  stats.crc_refetches = crc_refetch_count.load(std::memory_order_relaxed);
  stats.crc_rescues = crc_rescue_count.load(std::memory_order_relaxed);
  stats.bytes_decoded = bytes_decoded_count.load(std::memory_order_relaxed);
  stats.seconds = timer.ElapsedSeconds();
  metrics.bytes_fetched.Add(stats.bytes_fetched);
  metrics.bytes_decoded.Add(stats.bytes_decoded);
  if (profile != nullptr) {
    collector->AddBlockTallies(stats.blocks_pruned, stats.blocks_skipped,
                               stats.blocks_decoded, stats.blocks_unreadable);
    collector->SetBytesFetched(stats.bytes_fetched);
    collector->SetWallSeconds(stats.seconds);
    stage_timer.Finish(collector.get());  // flush the tail stage
    stats.profile =
        std::make_shared<const obs::ScanProfile>(collector->Snapshot());
  }
  if (stats_out != nullptr) *stats_out = stats;
  return emit_status;
}

Status Scanner::Scan(const ScanSpec& spec, ScanOutput* out) {
  ResolvedSpec resolved;
  BTR_RETURN_IF_ERROR(ResolveSpec(spec, &resolved));
  out->columns.clear();
  out->columns.resize(resolved.projection.size());
  for (size_t p = 0; p < resolved.projection.size(); p++) {
    const TableMeta::ColumnMeta& cm = meta_.columns[resolved.projection[p]];
    out->columns[p].name = cm.name;
    out->columns[p].type = cm.type;
    out->columns[p].blocks.resize(resolved.row_blocks);
  }
  out->block_outcomes.assign(resolved.row_blocks, BlockOutcome::kDecoded);
  out->block_selections.assign(resolved.row_blocks, RoaringBitmap());

  bool has_predicates = !spec.predicates.empty() || !spec.filter.Empty();
  Status status = Scan(
      spec,
      [out, has_predicates](ColumnChunk&& chunk) {
        out->block_outcomes[chunk.block] = chunk.outcome;
        if (chunk.column == 0 && has_predicates &&
            chunk.outcome == BlockOutcome::kDecoded) {
          out->block_selections[chunk.block] = std::move(chunk.selection);
        }
        out->columns[chunk.column].blocks[chunk.block] = std::move(chunk.values);
      },
      &out->stats);
  return status;
}

}  // namespace btr
