// Compression configuration, scheme codes and telemetry.
//
// The scheme pool is configurable per type (a bitmask) because the paper's
// Figure 4 experiment grows the pool one scheme at a time and measures the
// effect on ratio and decompression speed.
//
// --- configuration story ----------------------------------------------------
// The library has three tunable surfaces, each owning one concern:
//
//   CompressionConfig (this header)    how blocks are compressed: cascade
//                                      depth, sampling, enabled schemes,
//                                      instrumentation sinks.
//   ScanConfig        (this header)    how btr::Scanner executes a scan:
//                                      decode threads, fetch threads, and
//                                      the prefetch depth of the bounded
//                                      queue between the stages.
//   s3sim::S3Config   (s3sim/object_store.h)
//                                      the modeled cloud: NIC bandwidth,
//                                      GET billing, chunk size, and the
//                                      optional wall-clock simulation the
//                                      pipelined engine measures against.
//
// btr::ScanSpec (btr/scanner.h) describes *what* to scan — projection
// columns and typed predicates (btr/predicate.h) — and embeds a ScanConfig
// for the *how*. btrtool exposes the ScanConfig knobs as --scan-threads
// and --prefetch-depth; defaults live here so every entry point agrees.
#ifndef BTR_BTR_CONFIG_H_
#define BTR_BTR_CONFIG_H_

#include "util/types.h"

namespace btr::obs {
struct CascadeNode;  // obs/cascade_trace.h
}  // namespace btr::obs

namespace btr {

// Persisted in compressed payloads: values must never change meaning.
enum class IntSchemeCode : u8 {
  kUncompressed = 0,
  kOneValue = 1,
  kRle = 2,
  kDict = 3,
  kFrequency = 4,
  kBp128 = 5,
  kPfor = 6,
};
inline constexpr u32 kIntSchemeCount = 7;

enum class DoubleSchemeCode : u8 {
  kUncompressed = 0,
  kOneValue = 1,
  kRle = 2,
  kDict = 3,
  kFrequency = 4,
  kPseudodecimal = 5,
};
inline constexpr u32 kDoubleSchemeCount = 6;

enum class StringSchemeCode : u8 {
  kUncompressed = 0,
  kOneValue = 1,
  kDict = 2,
  kFsst = 3,
  kDictFsst = 4,
};
inline constexpr u32 kStringSchemeCount = 5;

const char* IntSchemeName(IntSchemeCode code);
const char* DoubleSchemeName(DoubleSchemeCode code);
const char* StringSchemeName(StringSchemeCode code);

// Depth slots tracked by Telemetry::scheme_uses_by_depth. Cascade depth is
// bounded by max_cascade_depth (default 3, so depths 0..3 including forced
// uncompressed leaves); deeper configurations clamp into the last slot.
inline constexpr u32 kTelemetryDepthSlots = 8;

// Aggregated over one compression request when attached to the config.
// Not synchronized: attach one Telemetry per thread when compressing in
// parallel, or accept approximate counts.
struct Telemetry {
  u64 stats_ns = 0;          // statistics collection (min/max/unique/runs)
  u64 estimate_ns = 0;       // sampling + per-scheme ratio estimation
  u64 compress_ns = 0;       // total compression time (includes the above)
  u64 scheme_uses[3][16] = {{0}};  // [type][scheme code] at cascade root
  // [depth][type][scheme code] at *every* cascade level, so nested choices
  // (e.g. the Bp128 compressing RLE run lengths) are visible. Depth 0 rows
  // aggregate to scheme_uses.
  u64 scheme_uses_by_depth[kTelemetryDepthSlots][3][16] = {{{0}}};

  void Reset() { *this = Telemetry(); }
};

struct CompressionConfig {
  // Cascading recursion budget (paper Section 3.2, default 3).
  u8 max_cascade_depth = 3;

  // Sampling strategy (paper Section 3.1: 10 runs of 64 values = 1%).
  u32 sample_runs = 10;
  u32 sample_run_length = 64;

  // When true, schemes are estimated by compressing the entire block
  // instead of a sample ("optimal scheme" oracle for Figures 5/6).
  bool exhaustive_estimation = false;

  // Enabled schemes per type (bit i = scheme code i). Default: everything.
  u32 int_schemes = (1u << kIntSchemeCount) - 1;
  u32 double_schemes = (1u << kDoubleSchemeCount) - 1;
  u32 string_schemes = (1u << kStringSchemeCount) - 1;

  // Fuse RLE-compressed dictionary codes directly into (offset, length)
  // slot runs when decompressing strings (paper Section 5). A pure
  // decompression-side optimization; kept in the config so benches can
  // toggle it.
  bool fused_rle_dict = true;

  // Optional instrumentation sink; not owned.
  Telemetry* telemetry = nullptr;

  // When true, block compression returns a full cascade decision tree
  // (scheme, bytes in/out, estimated vs. actual ratio, and timings at
  // every depth) through BlockCompressionInfo::trace and
  // CompressedColumn::block_traces. See obs/cascade_trace.h.
  bool collect_cascade_trace = false;

  u64 sampling_seed = 42;

  bool IntSchemeEnabled(IntSchemeCode c) const {
    return (int_schemes >> static_cast<u32>(c)) & 1;
  }
  bool DoubleSchemeEnabled(DoubleSchemeCode c) const {
    return (double_schemes >> static_cast<u32>(c)) & 1;
  }
  bool StringSchemeEnabled(StringSchemeCode c) const {
    return (string_schemes >> static_cast<u32>(c)) & 1;
  }
};

// How btr::Scanner pipelines a scan (see the configuration story above).
// Defaults favor a laptop-class box: enough fetch concurrency to hide
// object-store latency, a queue deep enough to keep decoders busy.
//
// The robustness knobs mirror exec::RetryPolicy (the scanner builds one
// from them; this header stays free of exec dependencies). Transient GET
// failures (Status::Throttled/Unavailable) retry with capped exponential
// backoff and deterministic jitter; permanent ones either fail the scan
// or — in degraded mode — skip the affected row block and report it.
struct ScanConfig {
  u32 scan_threads = 0;    // decode workers; 0 = hardware concurrency
  u32 fetch_threads = 4;   // concurrent ranged GETs the prefetcher issues
  u32 prefetch_depth = 8;  // blocks buffered between fetch and decode

  // --- predicate pushdown (btr/predicate.h, docs/PREDICATES.md) ------------
  // When true (default), the scan prunes row blocks against zone maps and
  // evaluates PredicateExprs on the compressed form (EvaluateExpr), only
  // decoding surviving blocks. When false the scan decodes every block and
  // filters afterwards (EvaluateExprDecoded) — the decode-then-filter
  // baseline bench_predicate_scan measures pushdown against.
  bool enable_predicate_pushdown = true;

  // --- retry/backoff (docs/ROBUSTNESS.md) ----------------------------------
  u32 max_attempts = 4;              // GET tries per request; 1 = fail fast
  u64 initial_backoff_ns = 1000 * 1000;    // 1 ms before the first retry
  u64 max_backoff_ns = 64 * 1000 * 1000;   // backoff cap
  u64 request_deadline_ns = 0;       // per-request wall budget; 0 = none
  u64 retry_budget = 256;            // total retries across the scan
  u64 retry_jitter_seed = 0xB10C5EEDull;   // deterministic backoff jitter

  // --- degraded mode -------------------------------------------------------
  // When true, a row block whose fetch failed permanently or whose bytes
  // arrived corrupt (CRC / structural validation) does not fail the scan:
  // it is emitted as BlockOutcome::kUnreadable and counted in
  // ScanStats::blocks_unreadable. When false (default), the first such
  // block fails the whole scan with a typed Status.
  bool skip_unreadable_blocks = false;

  // --- block cache (exec/block_cache.h) ------------------------------------
  // Checksum-verified in-memory cache of compressed block payloads, keyed
  // by the exact ranged GET (key, offset, length). A warm repeat scan
  // through the same Scanner issues zero GETs for cached blocks. Entries
  // are admitted only when their bytes hash to the column header's CRC32C.
  // Serviced scanners (service/scan_service.h) ignore these knobs and the
  // breaker ones below: the service's shared cache and per-backend
  // breakers are always used instead (docs/SCAN_SERVICE.md).
  bool enable_block_cache = false;
  u64 block_cache_bytes = 64ull << 20;  // total cache capacity
  u32 block_cache_shards = 8;           // independent LRU partitions

  // --- hedged GETs ("The Tail at Scale") -----------------------------------
  // A GET that outlives the running `hedge_quantile` of recent GET
  // latencies gets one duplicate request; the first response wins. Hedges
  // arm only after `hedge_min_samples` latencies and are capped per scan
  // by `hedge_budget` so a degraded backend cannot double its own load.
  bool enable_hedged_gets = false;
  double hedge_quantile = 0.95;
  u32 hedge_min_samples = 16;
  u64 hedge_min_threshold_ns = 200 * 1000;  // threshold floor, 200 us
  u64 hedge_budget = 64;                    // duplicate GETs per scan
  u32 hedge_latency_window = 128;           // quantile ring size

  // --- circuit breaker -----------------------------------------------------
  // Past `breaker_failure_threshold` transient failures over a sliding
  // window of `breaker_window` outcomes the breaker trips: GETs fail fast
  // as Status::Unavailable (no retry budget burned) until a cooldown
  // elapses, then a few half-open probes decide whether to close again.
  bool enable_circuit_breaker = false;
  u32 breaker_window = 32;
  u32 breaker_min_samples = 8;
  double breaker_failure_threshold = 0.5;
  u64 breaker_cooldown_ns = 10 * 1000 * 1000;  // 10 ms open before probing
  u32 breaker_half_open_probes = 2;

  // --- CRC refetch ---------------------------------------------------------
  // When a block's payload fails its header CRC32C, re-fetch it once
  // directly from the store (bypassing any cache) before declaring
  // Status::Corruption — distinguishes transient wire corruption from
  // at-rest damage.
  bool refetch_on_crc_failure = false;

  // --- per-scan profile (obs/profile.h) ------------------------------------
  // When true, the scan records a ScanProfile — per-stage wall/CPU
  // breakdown, GET latency histogram, per-scheme decode cost, outcome
  // tallies, and the `profile_slow_ops` slowest GETs/decodes — exposed
  // on ScanStats::profile and via `btrtool scan --profile`. When false
  // (default) the instrumentation path is a null-pointer test: no locks,
  // no allocation.
  bool collect_profile = false;
  u32 profile_slow_ops = 8;  // exemplar ring capacity (0 = no exemplars)
};

// Per-call compression state threaded through cascade recursion.
struct CompressionContext {
  const CompressionConfig* config;
  u8 remaining_cascades;
  // True while compressing a *sample* for ratio estimation. In this mode
  // cascade children are chosen by cheap statistics-based rules instead of
  // recursive sample compression — otherwise estimation fans out
  // exponentially and stops being the paper's ~1.2% of compression time.
  bool estimating = false;
  // Cascade trace node the *current* compression call should attach its
  // children to; null unless CompressionConfig::collect_cascade_trace.
  // Owned by the caller that created the root (see datablock.cc).
  obs::CascadeNode* trace = nullptr;

  u8 Depth() const {
    return static_cast<u8>(config->max_cascade_depth - remaining_cascades);
  }

  CompressionContext Descend() const {
    BTR_DCHECK(remaining_cascades > 0);
    return CompressionContext{config, static_cast<u8>(remaining_cascades - 1),
                              estimating, trace};
  }
};

}  // namespace btr

#endif  // BTR_BTR_CONFIG_H_
