// Zone maps: per-block min/max/null statistics kept *outside* the data
// blocks. The paper (Section 2.1) deliberately excludes statistics and
// indices from BtrBlocks files — "one would like to prune data using
// statistics and indices before accessing a file through a high-latency
// network" — and treats them as an orthogonal layer. This module is that
// layer: zone maps are computed at compression time, serialized to a
// sidecar, and let a scan skip fetching/decompressing blocks that cannot
// contain matching values.
//
// String zones keep the first 8 bytes of the lexicographic min/max, which
// is sufficient for conservative pruning.
#ifndef BTR_BTR_ZONEMAP_H_
#define BTR_BTR_ZONEMAP_H_

#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "btr/column.h"
#include "util/status.h"

namespace btr {

inline constexpr double kDoubleInf = std::numeric_limits<double>::infinity();

struct BlockZone {
  u32 row_count = 0;
  u32 null_count = 0;
  // Only the fields matching the column type are meaningful.
  i32 int_min = 0;
  i32 int_max = 0;
  double double_min = 0;
  double double_max = 0;
  u8 string_min[8] = {0};  // zero-padded 8-byte prefixes
  u8 string_max[8] = {0};
  u8 string_min_len = 0;   // bytes of prefix actually present
  u8 string_max_len = 0;
  // True when every row in the block is NULL (min/max undefined).
  bool all_null = false;
};

struct ColumnZoneMap {
  ColumnType type = ColumnType::kInteger;
  std::vector<BlockZone> zones;  // one per kBlockCapacity block
};

struct TableZoneMap {
  std::vector<ColumnZoneMap> columns;
};

// Computes zones from the uncompressed column (at compression time).
ColumnZoneMap ComputeColumnZoneMap(const Column& column);

// --- pruning predicates ---------------------------------------------------
// Conservative: false means the block certainly has no equal value;
// true means it may.
bool ZoneMayContainInt(const BlockZone& zone, i32 value);
bool ZoneMayContainDouble(const BlockZone& zone, double value);
bool ZoneMayContainString(const BlockZone& zone, std::string_view value);
// Range overlap [lo, hi] for integers (range scans / BETWEEN).
bool ZoneMayOverlapIntRange(const BlockZone& zone, i32 lo, i32 hi);
// Double range with per-bound strictness (lo_strict: x > lo, else
// x >= lo). NaN-safe on both sides: a NaN bound never matches ordered
// comparisons (the predicate is unsatisfiable, so the zone prunes), and
// blocks whose ordered values were all NaN carry an inverted [+inf, -inf]
// envelope that every range test rejects. Use +-kDoubleInf for an open
// bound.
bool ZoneMayOverlapDoubleRange(const BlockZone& zone, double lo, double hi,
                               bool lo_strict, bool hi_strict);
// String range against the zone's 8-byte min/max prefixes. lo_open /
// hi_open mark absent bounds. Conservative: prefix comparisons that
// cannot decide keep the block.
bool ZoneMayOverlapStringRange(const BlockZone& zone, std::string_view lo,
                               bool lo_open, std::string_view hi,
                               bool hi_open);

// --- sidecar persistence ----------------------------------------------------
// <dir>/<table>.zones
Status WriteTableZoneMap(const TableZoneMap& zonemap, const std::string& dir,
                         const std::string& table_name);
Status ReadTableZoneMap(const std::string& dir, const std::string& table_name,
                        TableZoneMap* out);

// Buffer-to-buffer variants of the same framing, used when the sidecar
// lives as an object-store object next to the column files (btr::Scanner
// fetches it before deciding which blocks to GET at all).
void SerializeTableZoneMap(const TableZoneMap& zonemap, ByteBuffer* out);
Status ParseTableZoneMap(const u8* data, size_t size, TableZoneMap* out);

}  // namespace btr

#endif  // BTR_BTR_ZONEMAP_H_
