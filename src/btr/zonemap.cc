#include "btr/zonemap.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/crc32c.h"

namespace btr {

namespace {

void FillPrefix(std::string_view s, u8 prefix[8], u8* len) {
  *len = static_cast<u8>(std::min<size_t>(s.size(), 8));
  std::memset(prefix, 0, 8);
  std::memcpy(prefix, s.data(), *len);
}

// Compares a full value against a stored 8-byte prefix; returns -1/0/+1
// where 0 means "undecidable from the prefix" (value extends past it).
int ComparePrefix(std::string_view value, const u8 prefix[8], u8 prefix_len,
                  bool prefix_is_truncated) {
  size_t common = std::min<size_t>(value.size(), prefix_len);
  int cmp = common == 0 ? 0
                        : std::memcmp(value.data(), prefix, common);
  if (cmp != 0) return cmp;
  if (value.size() < prefix_len) return -1;  // value is a shorter prefix
  if (value.size() == prefix_len && !prefix_is_truncated) return 0;
  // value >= stored prefix, but the stored string may continue.
  return prefix_is_truncated ? 0 : (value.size() > prefix_len ? 1 : 0);
}

}  // namespace

ColumnZoneMap ComputeColumnZoneMap(const Column& column) {
  ColumnZoneMap map;
  map.type = column.type();
  u32 row_count = column.size();
  for (u32 begin = 0; begin < row_count; begin += kBlockCapacity) {
    u32 count = std::min(kBlockCapacity, row_count - begin);
    BlockZone zone;
    zone.row_count = count;
    // `seen` is set only when a value actually enters min/max. It must NOT
    // be cleared by NaN rows: the old code flipped its `first` flag even
    // when a leading NaN skipped the update, leaving min/max stuck at
    // their 0 defaults — for a block of {NaN, -5.0} that reported
    // [−5, 0] as [0, 0] and let range predicates prune blocks that DID
    // contain matches (unsound). See ZoneMapTest.NaNThenNegativeValues.
    bool seen = false;
    std::string_view string_min, string_max;
    for (u32 i = 0; i < count; i++) {
      u32 row = begin + i;
      if (column.IsNull(row)) {
        zone.null_count++;
        continue;
      }
      switch (column.type()) {
        case ColumnType::kInteger: {
          i32 v = column.ints()[row];
          if (!seen || v < zone.int_min) zone.int_min = v;
          if (!seen || v > zone.int_max) zone.int_max = v;
          seen = true;
          break;
        }
        case ColumnType::kDouble: {
          double v = column.doubles()[row];
          // NaNs have no order and never satisfy ordered comparisons, so
          // they stay out of min/max; equality probes for NaN bits are
          // kept conservative in ZoneMayContainDouble.
          if (v != v) break;
          if (!seen || v < zone.double_min) zone.double_min = v;
          if (!seen || v > zone.double_max) zone.double_max = v;
          seen = true;
          break;
        }
        case ColumnType::kString: {
          std::string_view v = column.GetString(row);
          if (!seen || v < string_min) string_min = v;
          if (!seen || v > string_max) string_max = v;
          seen = true;
          break;
        }
      }
    }
    zone.all_null = zone.null_count == count;
    if (column.type() == ColumnType::kDouble && !seen) {
      // Every non-null value was NaN (or the block is all-null): store an
      // inverted [+inf, -inf] envelope so every range test rejects the
      // block while NaN bit-equality probes stay conservatively kept.
      zone.double_min = kDoubleInf;
      zone.double_max = -kDoubleInf;
    }
    if (!zone.all_null && column.type() == ColumnType::kString) {
      FillPrefix(string_min, zone.string_min, &zone.string_min_len);
      FillPrefix(string_max, zone.string_max, &zone.string_max_len);
      // Record truncation in the length byte's high bit-free side channel:
      // a stored prefix shorter than the string means "truncated"; we
      // reuse len==8 as potentially-truncated (conservative).
    }
    map.zones.push_back(zone);
  }
  return map;
}

bool ZoneMayContainInt(const BlockZone& zone, i32 value) {
  if (zone.all_null) return false;
  return value >= zone.int_min && value <= zone.int_max;
}

bool ZoneMayContainDouble(const BlockZone& zone, double value) {
  if (zone.all_null) return false;
  if (value != value) return true;  // NaN probe: stay conservative
  return value >= zone.double_min && value <= zone.double_max;
}

bool ZoneMayContainString(const BlockZone& zone, std::string_view value) {
  if (zone.all_null) return false;
  // value < min  => cannot match; value > max => cannot match. Prefix
  // comparisons with len == 8 are treated as truncated (conservative).
  int vs_min = ComparePrefix(value, zone.string_min, zone.string_min_len,
                             zone.string_min_len == 8);
  if (vs_min < 0) return false;
  int vs_max = ComparePrefix(value, zone.string_max, zone.string_max_len,
                             zone.string_max_len == 8);
  if (vs_max > 0) return false;
  return true;
}

bool ZoneMayOverlapIntRange(const BlockZone& zone, i32 lo, i32 hi) {
  if (zone.all_null) return false;
  return hi >= zone.int_min && lo <= zone.int_max;
}

bool ZoneMayOverlapDoubleRange(const BlockZone& zone, double lo, double hi,
                               bool lo_strict, bool hi_strict) {
  if (zone.all_null) return false;
  if (lo != lo || hi != hi) return false;  // NaN bound: unsatisfiable
  // Empty ranges (inverted, or degenerate with a strict bound) match
  // nothing anywhere.
  if (lo > hi || (lo == hi && (lo_strict || hi_strict))) return false;
  // An all-NaN block carries the inverted envelope [+inf, -inf]: no
  // ordered comparison can match, whatever the bounds — including the
  // unbounded (-inf, +inf) probe the edge tests below would keep.
  if (zone.double_min > zone.double_max) return false;
  if (hi < zone.double_min || (hi_strict && hi == zone.double_min)) {
    return false;
  }
  if (lo > zone.double_max || (lo_strict && lo == zone.double_max)) {
    return false;
  }
  return true;
}

bool ZoneMayOverlapStringRange(const BlockZone& zone, std::string_view lo,
                               bool lo_open, std::string_view hi,
                               bool hi_open) {
  if (zone.all_null) return false;
  // Strictness is deliberately ignored: the stored 8-byte prefixes cannot
  // distinguish "equal" from "undecidable", so exclusive bounds prune
  // exactly as their inclusive counterparts (conservative).
  if (!hi_open) {
    int vs_min = ComparePrefix(hi, zone.string_min, zone.string_min_len,
                               zone.string_min_len == 8);
    if (vs_min < 0) return false;  // upper bound below the block minimum
  }
  if (!lo_open) {
    int vs_max = ComparePrefix(lo, zone.string_max, zone.string_max_len,
                               zone.string_max_len == 8);
    if (vs_max > 0) return false;  // lower bound above the block maximum
  }
  return true;
}

namespace {
constexpr char kZoneMagic[4] = {'B', 'T', 'R', 'Z'};

std::string ZonePath(const std::string& dir, const std::string& table) {
  return dir + "/" + table + ".zones";
}
}  // namespace

namespace {
// BlockZone is serialized as its in-memory image, but the struct has
// padding bytes that carry whatever the stack held when the zone was
// built. Staging through a memset copy (then member-wise assignment,
// which never touches padding) makes the sidecar a pure function of the
// zone *values* — required for the write path's bit-identity guarantee
// (equal data must produce equal objects regardless of how it was
// streamed; see tests/writer_test.cc).
void AppendZone(const BlockZone& zone, ByteBuffer* out) {
  BlockZone copy;
  std::memset(&copy, 0, sizeof(copy));
  copy.row_count = zone.row_count;
  copy.null_count = zone.null_count;
  copy.int_min = zone.int_min;
  copy.int_max = zone.int_max;
  copy.double_min = zone.double_min;
  copy.double_max = zone.double_max;
  std::memcpy(copy.string_min, zone.string_min, sizeof(copy.string_min));
  std::memcpy(copy.string_max, zone.string_max, sizeof(copy.string_max));
  copy.string_min_len = zone.string_min_len;
  copy.string_max_len = zone.string_max_len;
  copy.all_null = zone.all_null;
  out->Append(&copy, sizeof(copy));
}
}  // namespace

void SerializeTableZoneMap(const TableZoneMap& zonemap, ByteBuffer* out) {
  size_t start = out->size();
  out->Append(kZoneMagic, 4);
  out->AppendValue<u32>(static_cast<u32>(zonemap.columns.size()));
  for (const ColumnZoneMap& column : zonemap.columns) {
    out->AppendValue<u8>(static_cast<u8>(column.type));
    out->AppendValue<u32>(static_cast<u32>(column.zones.size()));
    for (const BlockZone& zone : column.zones) AppendZone(zone, out);
  }
  out->AppendValue<u32>(Crc32c(out->data() + start, out->size() - start));
}

Status ParseTableZoneMap(const u8* data, size_t size, TableZoneMap* out) {
  // Trailing CRC over the whole sidecar (see file_format.h): verify before
  // trusting any field.
  if (size < 4) return Status::Corruption("zone map too small for CRC");
  u32 stored_crc;
  std::memcpy(&stored_crc, data + size - 4, 4);
  if (Crc32c(data, size - 4) != stored_crc) {
    return Status::Corruption("zone map CRC mismatch");
  }
  size -= 4;
  const u8* p = data;
  size_t remaining = size;
  auto read = [&](void* dst, size_t n) {
    if (n > remaining) return false;
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
    return true;
  };
  char magic[4];
  u32 column_count = 0;
  bool ok = read(magic, 4) && std::memcmp(magic, kZoneMagic, 4) == 0 &&
            read(&column_count, 4);
  out->columns.clear();
  for (u32 c = 0; ok && c < column_count; c++) {
    u8 type;
    u32 zone_count = 0;
    ok = read(&type, 1) && type <= 2 && read(&zone_count, 4);
    if (!ok) break;
    ColumnZoneMap column;
    column.type = static_cast<ColumnType>(type);
    column.zones.resize(zone_count);
    ok = read(column.zones.data(), zone_count * sizeof(BlockZone));
    out->columns.push_back(std::move(column));
  }
  return ok ? Status::Ok() : Status::Corruption("bad zone map data");
}

Status WriteTableZoneMap(const TableZoneMap& zonemap, const std::string& dir,
                         const std::string& table_name) {
  ByteBuffer buffer;
  SerializeTableZoneMap(zonemap, &buffer);
  std::FILE* f = std::fopen(ZonePath(dir, table_name).c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open zone map file");
  bool ok = buffer.empty() ||
            std::fwrite(buffer.data(), 1, buffer.size(), f) == buffer.size();
  std::fclose(f);
  return ok ? Status::Ok() : Status::IoError("short zone map write");
}

Status ReadTableZoneMap(const std::string& dir, const std::string& table_name,
                        TableZoneMap* out) {
  std::FILE* f = std::fopen(ZonePath(dir, table_name).c_str(), "rb");
  if (f == nullptr) return Status::NotFound("zone map file missing");
  std::fseek(f, 0, SEEK_END);
  long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  ByteBuffer buffer;
  buffer.Resize(file_size < 0 ? 0 : static_cast<size_t>(file_size));
  bool ok = file_size >= 0 &&
            (buffer.empty() ||
             std::fread(buffer.data(), 1, buffer.size(), f) == buffer.size());
  std::fclose(f);
  if (!ok) return Status::IoError("cannot read zone map file");
  return ParseTableZoneMap(buffer.data(), buffer.size(), out);
}

}  // namespace btr
