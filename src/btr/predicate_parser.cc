#include "btr/predicate_parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace btr {

namespace {

enum class TokenKind {
  kEnd,
  kIdent,    // column names and keywords
  kInt,      // integer literal
  kDouble,   // double literal
  kString,   // quoted literal (quotes stripped, '' / "" unescaped)
  kOp,       // = == != <> < <= > >=
  kLparen,
  kRparen,
  kComma,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // ident/op/string spelling
  i64 int_value = 0;
  double double_value = 0;
  size_t offset = 0;  // byte offset in the input, for error messages
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); i++) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(PredicateExpr* out) {
    BTR_RETURN_IF_ERROR(Advance());
    if (current_.kind == TokenKind::kEnd) {
      *out = PredicateExpr();  // empty input: match everything
      return Status::Ok();
    }
    BTR_RETURN_IF_ERROR(ParseOr(out));
    if (current_.kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return Status::Ok();
  }

 private:
  Status Error(const std::string& message) const {
    std::string at = current_.kind == TokenKind::kEnd
                         ? "end of input"
                         : "'" + current_.text + "'";
    return Status::InvalidArgument("predicate parse error at byte " +
                                   std::to_string(current_.offset) + " (" +
                                   at + "): " + message);
  }

  bool IsKeyword(std::string_view word) const {
    return current_.kind == TokenKind::kIdent &&
           EqualsIgnoreCase(current_.text, word);
  }

  // --- lexer ---------------------------------------------------------------

  Status Advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
    current_ = Token();
    current_.offset = pos_;
    if (pos_ >= text_.size()) return Status::Ok();
    char c = text_[pos_];
    if (c == '(') {
      current_ = {TokenKind::kLparen, "(", 0, 0, pos_++};
      return Status::Ok();
    }
    if (c == ')') {
      current_ = {TokenKind::kRparen, ")", 0, 0, pos_++};
      return Status::Ok();
    }
    if (c == ',') {
      current_ = {TokenKind::kComma, ",", 0, 0, pos_++};
      return Status::Ok();
    }
    if (c == '\'' || c == '"') return LexString(c);
    if (c == '=' || c == '<' || c == '>' || c == '!') return LexOperator();
    if (IsIdentStart(c)) {
      size_t begin = pos_;
      while (pos_ < text_.size() && IsIdentChar(text_[pos_])) pos_++;
      current_.kind = TokenKind::kIdent;
      current_.text = std::string(text_.substr(begin, pos_ - begin));
      return Status::Ok();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      return LexNumber();
    }
    current_.text = std::string(1, c);
    return Error("unexpected character");
  }

  Status LexString(char quote) {
    size_t begin = pos_++;
    std::string value;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == quote) {
        // Doubled quote is an escaped quote (SQL style).
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == quote) {
          value.push_back(quote);
          pos_ += 2;
          continue;
        }
        pos_++;
        current_.kind = TokenKind::kString;
        current_.text = std::move(value);
        current_.offset = begin;
        return Status::Ok();
      }
      value.push_back(c);
      pos_++;
    }
    current_.offset = begin;
    current_.text = std::string(text_.substr(begin));
    return Error("unterminated string literal");
  }

  Status LexOperator() {
    size_t begin = pos_;
    char c = text_[pos_++];
    std::string op(1, c);
    if (pos_ < text_.size()) {
      char next = text_[pos_];
      if ((c == '<' && (next == '=' || next == '>')) ||
          (c == '>' && next == '=') || (c == '=' && next == '=') ||
          (c == '!' && next == '=')) {
        op.push_back(next);
        pos_++;
      }
    }
    if (op == "!") {
      current_.text = op;
      current_.offset = begin;
      return Error("unknown operator");
    }
    current_ = {TokenKind::kOp, std::move(op), 0, 0, begin};
    return Status::Ok();
  }

  Status LexNumber() {
    size_t begin = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') pos_++;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        pos_++;
      } else if (c == '.' && !is_double) {
        is_double = true;
        pos_++;
      } else if ((c == 'e' || c == 'E') && pos_ + 1 < text_.size()) {
        is_double = true;
        pos_++;
        if (text_[pos_] == '-' || text_[pos_] == '+') pos_++;
      } else {
        break;
      }
    }
    std::string spelling(text_.substr(begin, pos_ - begin));
    current_.offset = begin;
    current_.text = spelling;
    if (spelling.empty() || spelling == "-" || spelling == "+" ||
        spelling == ".") {
      return Error("malformed number");
    }
    char* end = nullptr;
    if (is_double) {
      current_.kind = TokenKind::kDouble;
      current_.double_value = std::strtod(spelling.c_str(), &end);
    } else {
      current_.kind = TokenKind::kInt;
      current_.int_value = std::strtoll(spelling.c_str(), &end, 10);
      if (current_.int_value < INT32_MIN || current_.int_value > INT32_MAX) {
        return Error("integer literal out of i32 range");
      }
    }
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return Status::Ok();
  }

  // --- recursive descent ---------------------------------------------------

  Status ParseOr(PredicateExpr* out) {
    std::vector<PredicateExpr> operands(1);
    BTR_RETURN_IF_ERROR(ParseAnd(&operands.back()));
    while (IsKeyword("OR")) {
      BTR_RETURN_IF_ERROR(Advance());
      operands.emplace_back();
      BTR_RETURN_IF_ERROR(ParseAnd(&operands.back()));
    }
    *out = operands.size() == 1 ? std::move(operands.front())
                                : PredicateExpr::Or(std::move(operands));
    return Status::Ok();
  }

  Status ParseAnd(PredicateExpr* out) {
    std::vector<PredicateExpr> operands(1);
    BTR_RETURN_IF_ERROR(ParseUnary(&operands.back()));
    while (IsKeyword("AND")) {
      BTR_RETURN_IF_ERROR(Advance());
      operands.emplace_back();
      BTR_RETURN_IF_ERROR(ParseUnary(&operands.back()));
    }
    *out = operands.size() == 1 ? std::move(operands.front())
                                : PredicateExpr::And(std::move(operands));
    return Status::Ok();
  }

  Status ParseUnary(PredicateExpr* out) {
    if (IsKeyword("NOT")) {
      BTR_RETURN_IF_ERROR(Advance());
      PredicateExpr operand;
      BTR_RETURN_IF_ERROR(ParseUnary(&operand));
      *out = PredicateExpr::Not(std::move(operand));
      return Status::Ok();
    }
    if (current_.kind == TokenKind::kLparen) {
      BTR_RETURN_IF_ERROR(Advance());
      BTR_RETURN_IF_ERROR(ParseOr(out));
      if (current_.kind != TokenKind::kRparen) {
        return Error("expected ')'");
      }
      return Advance();
    }
    return ParseComparison(out);
  }

  struct Literal {
    TokenKind kind;  // kInt, kDouble or kString
    i32 int_value;
    double double_value;
    std::string string_value;
  };

  Status ParseLiteral(Literal* out) {
    switch (current_.kind) {
      case TokenKind::kInt:
        *out = {TokenKind::kInt, static_cast<i32>(current_.int_value),
                static_cast<double>(current_.int_value), ""};
        return Advance();
      case TokenKind::kDouble:
        *out = {TokenKind::kDouble, 0, current_.double_value, ""};
        return Advance();
      case TokenKind::kString:
        *out = {TokenKind::kString, 0, 0, current_.text};
        return Advance();
      default:
        return Error("expected a literal");
    }
  }

  Status ParseComparison(PredicateExpr* out) {
    if (current_.kind != TokenKind::kIdent || IsKeyword("AND") ||
        IsKeyword("OR") || IsKeyword("NOT") || IsKeyword("BETWEEN") ||
        IsKeyword("IN")) {
      return Error("expected a column name");
    }
    std::string column = current_.text;
    BTR_RETURN_IF_ERROR(Advance());

    bool negate = false;
    if (IsKeyword("NOT")) {  // col NOT IN (...)
      negate = true;
      BTR_RETURN_IF_ERROR(Advance());
      if (!IsKeyword("IN")) return Error("expected IN after NOT");
    }

    if (IsKeyword("BETWEEN")) {
      BTR_RETURN_IF_ERROR(Advance());
      Literal lo, hi;
      BTR_RETURN_IF_ERROR(ParseLiteral(&lo));
      if (!IsKeyword("AND")) return Error("expected AND in BETWEEN");
      BTR_RETURN_IF_ERROR(Advance());
      BTR_RETURN_IF_ERROR(ParseLiteral(&hi));
      return MakeBetween(std::move(column), lo, hi, out);
    }

    if (IsKeyword("IN")) {
      BTR_RETURN_IF_ERROR(Advance());
      if (current_.kind != TokenKind::kLparen) {
        return Error("expected '(' after IN");
      }
      BTR_RETURN_IF_ERROR(Advance());
      std::vector<Literal> values;
      for (;;) {
        values.emplace_back();
        BTR_RETURN_IF_ERROR(ParseLiteral(&values.back()));
        if (current_.kind == TokenKind::kComma) {
          BTR_RETURN_IF_ERROR(Advance());
          continue;
        }
        break;
      }
      if (current_.kind != TokenKind::kRparen) {
        return Error("expected ')' closing IN list");
      }
      BTR_RETURN_IF_ERROR(Advance());
      BTR_RETURN_IF_ERROR(MakeIn(std::move(column), values, out));
      if (negate) *out = PredicateExpr::Not(std::move(*out));
      return Status::Ok();
    }

    if (negate) return Error("expected IN after NOT");
    if (current_.kind != TokenKind::kOp) {
      return Error("expected a comparison operator, BETWEEN or IN");
    }
    std::string op = current_.text;
    BTR_RETURN_IF_ERROR(Advance());
    Literal value;
    BTR_RETURN_IF_ERROR(ParseLiteral(&value));
    return MakeComparison(std::move(column), op, value, out);
  }

  Status MakeComparison(std::string column, const std::string& op,
                        const Literal& value, PredicateExpr* out) {
    bool negate = op == "!=" || op == "<>";
    CompareOp cmp;
    if (op == "=" || op == "==" || negate) {
      cmp = CompareOp::kEq;
    } else if (op == "<") {
      cmp = CompareOp::kLt;
    } else if (op == "<=") {
      cmp = CompareOp::kLe;
    } else if (op == ">") {
      cmp = CompareOp::kGt;
    } else if (op == ">=") {
      cmp = CompareOp::kGe;
    } else {
      return Error("unknown operator " + op);
    }
    switch (value.kind) {
      case TokenKind::kInt:
        *out = PredicateExpr::CompareInt(std::move(column), cmp,
                                         value.int_value);
        break;
      case TokenKind::kDouble:
        *out = PredicateExpr::CompareDouble(std::move(column), cmp,
                                            value.double_value);
        break;
      default:
        *out = PredicateExpr::CompareString(std::move(column), cmp,
                                            value.string_value);
        break;
    }
    if (negate) *out = PredicateExpr::Not(std::move(*out));
    return Status::Ok();
  }

  Status MakeBetween(std::string column, const Literal& lo, const Literal& hi,
                     PredicateExpr* out) {
    if ((lo.kind == TokenKind::kString) != (hi.kind == TokenKind::kString)) {
      return Error("BETWEEN bounds mix strings and numbers");
    }
    if (lo.kind == TokenKind::kString) {
      *out = PredicateExpr::BetweenString(std::move(column), lo.string_value,
                                          hi.string_value);
    } else if (lo.kind == TokenKind::kDouble || hi.kind == TokenKind::kDouble) {
      *out = PredicateExpr::BetweenDouble(std::move(column), lo.double_value,
                                          hi.double_value);
    } else {
      *out = PredicateExpr::BetweenInt(std::move(column), lo.int_value,
                                       hi.int_value);
    }
    return Status::Ok();
  }

  Status MakeIn(std::string column, const std::vector<Literal>& values,
                PredicateExpr* out) {
    bool any_string = false, all_string = true, any_double = false;
    for (const Literal& v : values) {
      any_string |= v.kind == TokenKind::kString;
      all_string &= v.kind == TokenKind::kString;
      any_double |= v.kind == TokenKind::kDouble;
    }
    if (any_string && !all_string) {
      return Error("IN list mixes strings and numbers");
    }
    if (all_string) {
      std::vector<std::string> set;
      for (const Literal& v : values) set.push_back(v.string_value);
      *out = PredicateExpr::InString(std::move(column), std::move(set));
    } else if (any_double) {
      std::vector<double> set;
      for (const Literal& v : values) set.push_back(v.double_value);
      *out = PredicateExpr::InDouble(std::move(column), std::move(set));
    } else {
      std::vector<i32> set;
      for (const Literal& v : values) set.push_back(v.int_value);
      *out = PredicateExpr::InInt(std::move(column), std::move(set));
    }
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
  Token current_;
};

}  // namespace

Status ParsePredicate(std::string_view text, PredicateExpr* out) {
  *out = PredicateExpr();
  Parser parser(text);
  PredicateExpr parsed;
  Status status = parser.Parse(&parsed);
  if (status.ok()) *out = std::move(parsed);
  return status;
}

}  // namespace btr
