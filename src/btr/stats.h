// Single-pass block statistics (paper Section 3, step 1): min, max, unique
// count and average run length. Schemes use these to filter non-viable
// candidates before any sample is compressed.
#ifndef BTR_BTR_STATS_H_
#define BTR_BTR_STATS_H_

#include "btr/column.h"
#include "util/types.h"

namespace btr {

struct IntStats {
  u32 count = 0;
  i32 min = 0;
  i32 max = 0;
  u32 unique_count = 0;
  u32 run_count = 0;
  double AverageRunLength() const {
    return run_count == 0 ? 0.0 : static_cast<double>(count) / run_count;
  }
};

struct DoubleStats {
  u32 count = 0;
  double min = 0;
  double max = 0;
  u32 unique_count = 0;
  u32 run_count = 0;
  double AverageRunLength() const {
    return run_count == 0 ? 0.0 : static_cast<double>(count) / run_count;
  }
};

struct StringStats {
  u32 count = 0;
  u32 unique_count = 0;
  u32 run_count = 0;
  u32 total_bytes = 0;
  u32 max_length = 0;
  u64 unique_bytes = 0;  // total bytes of distinct values
  double AverageRunLength() const {
    return run_count == 0 ? 0.0 : static_cast<double>(count) / run_count;
  }
};

IntStats ComputeIntStats(const i32* data, u32 count);
DoubleStats ComputeDoubleStats(const double* data, u32 count);
StringStats ComputeStringStats(const StringsView& view);

}  // namespace btr

#endif  // BTR_BTR_STATS_H_
