// Block-level compression: one self-contained compressed unit per
// <= 64,000 values of one column, with NULL positions tracked in a Roaring
// bitmap ahead of the encoded values (paper Section 2.2). Blocks carry no
// file metadata — BtrBlocks deliberately decouples statistics/indices from
// the data blocks (paper Section 2.1).
//
// Block layout:
//   [u8 column_type][u32 value_count][u32 null_bitmap_bytes]
//   [roaring null bitmap][scheme vector: u8 code + payload]
#ifndef BTR_BTR_DATABLOCK_H_
#define BTR_BTR_DATABLOCK_H_

#include <vector>

#include "btr/column.h"
#include "btr/config.h"
#include "btr/scheme.h"
#include "obs/cascade_trace.h"
#include "util/status.h"

namespace btr {

// Chosen root scheme, reported for introspection (Table 4's
// "Scheme (Root)" column).
struct BlockCompressionInfo {
  u8 root_scheme = 0;
  size_t compressed_bytes = 0;
  // Full cascade decision tree for this block; populated only when
  // CompressionConfig::collect_cascade_trace is set.
  obs::CascadeNode trace;
};

// null_flags may be nullptr (no NULLs). Returns bytes appended to out.
size_t CompressIntBlock(const i32* values, const u8* null_flags, u32 count,
                        ByteBuffer* out, const CompressionConfig& config,
                        BlockCompressionInfo* info = nullptr);
size_t CompressDoubleBlock(const double* values, const u8* null_flags, u32 count,
                           ByteBuffer* out, const CompressionConfig& config,
                           BlockCompressionInfo* info = nullptr);
size_t CompressStringBlock(const StringsView& values, const u8* null_flags,
                           ByteBuffer* out, const CompressionConfig& config,
                           BlockCompressionInfo* info = nullptr);

// Decompressed block contents. Exactly one of the value containers is
// populated, matching `type`.
struct DecodedBlock {
  ColumnType type = ColumnType::kInteger;
  u32 count = 0;
  std::vector<i32> ints;
  std::vector<double> doubles;
  DecodedStrings strings;
  std::vector<u8> null_flags;  // empty when the block has no NULLs

  bool IsNull(u32 i) const { return !null_flags.empty() && null_flags[i] != 0; }

  // Logical uncompressed size of the block's values, for throughput math.
  u64 ValueBytes() const;

  void Clear();
};

// Decompresses one block. `out` containers are reused across calls.
// Blocks do not record their own byte size; callers framing several
// blocks keep per-block sizes externally (see file_format.h).
void DecompressBlock(const u8* data, DecodedBlock* out,
                     const CompressionConfig& config);

// Root scheme code of a serialized block (after type/count/null header).
u8 PeekBlockScheme(const u8* data);

// Structural validation of one serialized block, for data that crossed a
// network or disk boundary (btr::Scanner runs this before handing blocks
// to decode workers). Checks the header — type byte, value count, null
// bitmap extent — and that the root scheme code exists for the type,
// without decoding anything. DecompressBlock assumes validated input and
// BTR_CHECK-aborts on garbage; this turns the common corruptions into a
// Status instead.
Status ValidateBlock(const u8* data, size_t size, ColumnType expected_type,
                     u32 expected_count);

}  // namespace btr

#endif  // BTR_BTR_DATABLOCK_H_
