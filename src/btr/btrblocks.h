// Umbrella header: the BtrBlocks public API.
//
// Typical usage:
//
//   btr::Relation table("orders");
//   btr::Column& price = table.AddColumn("price", btr::ColumnType::kDouble);
//   price.AppendDouble(3.25); ...
//
//   btr::CompressionConfig config;                    // defaults = paper
//   btr::CompressedRelation compressed =
//       btr::CompressRelation(table, config);
//   btr::WriteCompressedRelation(compressed, "/data/lake");
//
//   btr::DecodedBlock block;
//   btr::DecompressBlock(compressed.columns[0].blocks[0].data(), &block,
//                        config);
#ifndef BTR_BTR_BTRBLOCKS_H_
#define BTR_BTR_BTRBLOCKS_H_

#include "btr/column.h"        // IWYU pragma: export
#include "btr/config.h"        // IWYU pragma: export
#include "btr/datablock.h"     // IWYU pragma: export
#include "btr/file_format.h"   // IWYU pragma: export
#include "btr/predicate.h"     // IWYU pragma: export
#include "btr/relation.h"      // IWYU pragma: export
#include "btr/sampling.h"      // IWYU pragma: export
#include "btr/scanner.h"       // IWYU pragma: export
#include "btr/scheme_picker.h" // IWYU pragma: export
#include "btr/stats.h"         // IWYU pragma: export

#endif  // BTR_BTR_BTRBLOCKS_H_
