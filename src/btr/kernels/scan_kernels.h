// Predicate evaluation directly on compressed blocks — the extension the
// paper sketches in Section 7 ("BtrBlocks can, in principle, also support
// processing compressed data if the used schemes support it").
//
// CountEquals* answer `count(*) where col = v` for one block without
// materializing values whenever the root scheme permits:
//   OneValue:   O(1) — compare once
//   Frequency:  O(exceptions) — dominant value answered from the header
//   RLE:        O(runs) — sum run lengths of matching run values
//   Dictionary: probe the dictionary, then count codes (runs of codes
//               when the code vector is RLE-compressed)
// Other root schemes fall back to decompress-and-count, so the functions
// are exact for every block.
//
// INTERNAL surface: these nine per-type equality kernels are
// implementation details of the PredicateExpr engine (btr/predicate.h:
// ZoneMayMatch / EvaluateExpr / SelectMatches / HasFastPath). They live
// in btr::kernels and are not part of the public API — the former
// btr/compressed_scan.h shims were retired in favor of PredicateExpr.
// Kernel-level tests and the ablation bench are the only sanctioned
// callers outside the engine itself.
#ifndef BTR_BTR_KERNELS_SCAN_KERNELS_H_
#define BTR_BTR_KERNELS_SCAN_KERNELS_H_

#include <string_view>

#include "bitmap/roaring.h"
#include "btr/datablock.h"

namespace btr::kernels {

// `block` points at a serialized block (CompressIntBlock et al.). NULL
// entries never match (SQL semantics: NULL = v is not true).
u32 CountEqualsInt(const u8* block, i32 value, const CompressionConfig& config);
u32 CountEqualsDouble(const u8* block, double value,
                      const CompressionConfig& config);
u32 CountEqualsString(const u8* block, std::string_view value,
                      const CompressionConfig& config);

// True when the block's root scheme admits a sub-linear (no full
// materialization) path for equality predicates. Exposed for tests and
// the ablation bench.
bool HasFastEqualsPath(const u8* block);

// SelectEquals* return the matching row positions of one block as a
// Roaring bitmap (a selection vector). Combine predicates across columns
// with RoaringBitmap::And/Or before materializing any values:
//
//   auto sel = RoaringBitmap::And(
//       SelectEqualsString(city_block, "Berlin", config),
//       SelectEqualsInt(year_block, 2023, config));
//
// Fast paths: RLE emits whole ranges per matching run; Frequency reuses
// its exception bitmap (complement for the dominant value); OneValue is
// all-or-nothing. NULL rows never match.
RoaringBitmap SelectEqualsInt(const u8* block, i32 value,
                              const CompressionConfig& config);
RoaringBitmap SelectEqualsDouble(const u8* block, double value,
                                 const CompressionConfig& config);
RoaringBitmap SelectEqualsString(const u8* block, std::string_view value,
                                 const CompressionConfig& config);

}  // namespace btr::kernels

#endif  // BTR_BTR_KERNELS_SCAN_KERNELS_H_
