#include "btr/kernels/scan_kernels.h"

#include <cstring>
#include <vector>

#include "bitmap/roaring.h"
#include "btr/scheme_picker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace btr::kernels {

namespace {

// Scan observability: every public Count*/Select* call records its latency
// into a per-operation histogram; blocks that cannot use a compressed-domain
// fast path additionally bump "btr.scan.materialized" (the ratio of the two
// is the fast-path hit rate).
struct ScopedScanMetrics {
  explicit ScopedScanMetrics(obs::Histogram& h) : hist(h) {
    static obs::Counter& calls = obs::Registry::Get().GetCounter("btr.scan.calls");
    calls.Add();
  }
  ~ScopedScanMetrics() {
    hist.Record(static_cast<u64>(timer.ElapsedNanos()));
  }
  obs::Histogram& hist;
  Timer timer;
};

obs::Histogram& ScanHistogram(const char* name) {
  return obs::Registry::Get().GetHistogram(name);
}

void CountMaterializedFallback() {
  static obs::Counter& materialized =
      obs::Registry::Get().GetCounter("btr.scan.materialized");
  materialized.Add();
}

struct BlockHeader {
  ColumnType type;
  u32 count;
  u32 null_bytes;
  const u8* null_blob;
  const u8* body;     // [u8 scheme][payload]
  const u8* payload;  // body + 1
  u8 scheme;
};

BlockHeader Parse(const u8* block) {
  BlockHeader h;
  h.type = static_cast<ColumnType>(block[0]);
  std::memcpy(&h.count, block + 1, sizeof(u32));
  std::memcpy(&h.null_bytes, block + 5, sizeof(u32));
  h.null_blob = block + 9;
  h.body = h.null_blob + h.null_bytes;
  h.scheme = h.body[0];
  h.payload = h.body + 1;
  return h;
}

// Decompresses a [scheme][payload] integer vector and counts equals.
u32 CountInIntVector(const u8* vec, u32 count, i32 value) {
  std::vector<i32> values(count + kDecodeSlack);
  DecompressInts(vec, count, values.data());
  u32 matches = 0;
  for (u32 i = 0; i < count; i++) matches += values[i] == value;
  return matches;
}

// Counts occurrences of `code` in a compressed code vector, using run
// arithmetic when the codes are RLE-compressed.
u32 CountCode(const u8* codes_vec, u32 count, i32 code) {
  if (PeekIntScheme(codes_vec) == IntSchemeCode::kRle) {
    const u8* payload = codes_vec + 1;
    u32 run_count, values_bytes;
    std::memcpy(&run_count, payload, sizeof(u32));
    std::memcpy(&values_bytes, payload + 4, sizeof(u32));
    std::vector<i32> run_values(run_count + kDecodeSlack);
    std::vector<i32> run_lengths(run_count + kDecodeSlack);
    DecompressInts(payload + 8, run_count, run_values.data());
    DecompressInts(payload + 8 + values_bytes, run_count, run_lengths.data());
    u32 matches = 0;
    for (u32 r = 0; r < run_count; r++) {
      if (run_values[r] == code) matches += static_cast<u32>(run_lengths[r]);
    }
    return matches;
  }
  return CountInIntVector(codes_vec, count, code);
}

// NULL positions hold default values (0 / 0.0 / ""), so probes equal to
// the default must take the materializing path and honor the bitmap.
bool NeedsNullCheck(const BlockHeader& h, bool value_is_default) {
  return h.null_bytes > 0 && value_is_default;
}

template <typename MatchFn>
u32 CountMaterialized(const u8* block, const CompressionConfig& config,
                      const MatchFn& match) {
  CountMaterializedFallback();
  DecodedBlock decoded;
  DecompressBlock(block, &decoded, config);
  u32 matches = 0;
  for (u32 i = 0; i < decoded.count; i++) {
    if (decoded.IsNull(i)) continue;
    matches += match(decoded, i);
  }
  return matches;
}

}  // namespace

bool HasFastEqualsPath(const u8* block) {
  BlockHeader h = Parse(block);
  switch (h.type) {
    case ColumnType::kInteger:
      switch (static_cast<IntSchemeCode>(h.scheme)) {
        case IntSchemeCode::kOneValue:
        case IntSchemeCode::kRle:
        case IntSchemeCode::kDict:
        case IntSchemeCode::kFrequency:
          return true;
        default:
          return false;
      }
    case ColumnType::kDouble:
      switch (static_cast<DoubleSchemeCode>(h.scheme)) {
        case DoubleSchemeCode::kOneValue:
        case DoubleSchemeCode::kRle:
        case DoubleSchemeCode::kDict:
        case DoubleSchemeCode::kFrequency:
          return true;
        default:
          return false;
      }
    case ColumnType::kString:
      switch (static_cast<StringSchemeCode>(h.scheme)) {
        case StringSchemeCode::kOneValue:
        case StringSchemeCode::kDict:
          return true;
        default:
          return false;
      }
  }
  return false;
}

u32 CountEqualsInt(const u8* block, i32 value, const CompressionConfig& config) {
  BTR_TRACE_SPAN("btr.scan.count_int");
  static obs::Histogram& hist = ScanHistogram("btr.scan.count_int_ns");
  ScopedScanMetrics metrics(hist);
  BlockHeader h = Parse(block);
  BTR_CHECK(h.type == ColumnType::kInteger);
  if (NeedsNullCheck(h, value == 0)) {
    return CountMaterialized(block, config, [&](const DecodedBlock& d, u32 i) {
      return d.ints[i] == value ? 1u : 0u;
    });
  }
  switch (static_cast<IntSchemeCode>(h.scheme)) {
    case IntSchemeCode::kOneValue: {
      i32 stored;
      std::memcpy(&stored, h.payload, sizeof(i32));
      return stored == value ? h.count : 0;
    }
    case IntSchemeCode::kFrequency: {
      i32 top;
      u32 exception_count;
      std::memcpy(&top, h.payload, sizeof(i32));
      std::memcpy(&exception_count, h.payload + 4, sizeof(u32));
      u32 bitmap_bytes;
      std::memcpy(&bitmap_bytes, h.payload + 8, sizeof(u32));
      if (value == top) return h.count - exception_count;
      if (exception_count == 0) return 0;
      return CountInIntVector(h.payload + 12 + bitmap_bytes, exception_count,
                              value);
    }
    case IntSchemeCode::kRle: {
      u32 run_count, values_bytes;
      std::memcpy(&run_count, h.payload, sizeof(u32));
      std::memcpy(&values_bytes, h.payload + 4, sizeof(u32));
      std::vector<i32> run_values(run_count + kDecodeSlack);
      std::vector<i32> run_lengths(run_count + kDecodeSlack);
      DecompressInts(h.payload + 8, run_count, run_values.data());
      DecompressInts(h.payload + 8 + values_bytes, run_count,
                     run_lengths.data());
      u32 matches = 0;
      for (u32 r = 0; r < run_count; r++) {
        if (run_values[r] == value) matches += static_cast<u32>(run_lengths[r]);
      }
      return matches;
    }
    case IntSchemeCode::kDict: {
      u32 dict_count, codes_bytes;
      std::memcpy(&dict_count, h.payload, sizeof(u32));
      std::memcpy(&codes_bytes, h.payload + 4, sizeof(u32));
      const u8* codes_vec = h.payload + 8;
      const u8* dict_bytes = codes_vec + codes_bytes;
      i32 code = -1;
      for (u32 d = 0; d < dict_count; d++) {
        i32 entry;
        std::memcpy(&entry, dict_bytes + d * sizeof(i32), sizeof(i32));
        if (entry == value) {
          code = static_cast<i32>(d);
          break;
        }
      }
      if (code < 0) return 0;  // value not in this block at all
      return CountCode(codes_vec, h.count, code);
    }
    default:
      return CountMaterialized(block, config, [&](const DecodedBlock& d, u32 i) {
        return d.ints[i] == value ? 1u : 0u;
      });
  }
}

u32 CountEqualsDouble(const u8* block, double value,
                      const CompressionConfig& config) {
  BTR_TRACE_SPAN("btr.scan.count_double");
  static obs::Histogram& hist = ScanHistogram("btr.scan.count_double_ns");
  ScopedScanMetrics metrics(hist);
  BlockHeader h = Parse(block);
  BTR_CHECK(h.type == ColumnType::kDouble);
  u64 value_bits;
  std::memcpy(&value_bits, &value, sizeof(u64));
  auto bits_equal = [&](double d) {
    u64 b;
    std::memcpy(&b, &d, sizeof(u64));
    return b == value_bits;
  };
  if (NeedsNullCheck(h, bits_equal(0.0))) {
    return CountMaterialized(block, config, [&](const DecodedBlock& d, u32 i) {
      return bits_equal(d.doubles[i]) ? 1u : 0u;
    });
  }
  switch (static_cast<DoubleSchemeCode>(h.scheme)) {
    case DoubleSchemeCode::kOneValue: {
      double stored;
      std::memcpy(&stored, h.payload, sizeof(double));
      return bits_equal(stored) ? h.count : 0;
    }
    case DoubleSchemeCode::kFrequency: {
      double top;
      u32 exception_count, bitmap_bytes;
      std::memcpy(&top, h.payload, sizeof(double));
      std::memcpy(&exception_count, h.payload + 8, sizeof(u32));
      std::memcpy(&bitmap_bytes, h.payload + 12, sizeof(u32));
      if (bits_equal(top)) return h.count - exception_count;
      if (exception_count == 0) return 0;
      std::vector<double> exceptions(exception_count + kDecodeSlack);
      DecompressDoubles(h.payload + 16 + bitmap_bytes, exception_count,
                        exceptions.data());
      u32 matches = 0;
      for (u32 e = 0; e < exception_count; e++) {
        matches += bits_equal(exceptions[e]);
      }
      return matches;
    }
    case DoubleSchemeCode::kRle: {
      u32 run_count, values_bytes;
      std::memcpy(&run_count, h.payload, sizeof(u32));
      std::memcpy(&values_bytes, h.payload + 4, sizeof(u32));
      std::vector<double> run_values(run_count + kDecodeSlack);
      std::vector<i32> run_lengths(run_count + kDecodeSlack);
      DecompressDoubles(h.payload + 8, run_count, run_values.data());
      DecompressInts(h.payload + 8 + values_bytes, run_count,
                     run_lengths.data());
      u32 matches = 0;
      for (u32 r = 0; r < run_count; r++) {
        if (bits_equal(run_values[r])) {
          matches += static_cast<u32>(run_lengths[r]);
        }
      }
      return matches;
    }
    case DoubleSchemeCode::kDict: {
      u32 dict_count, codes_bytes;
      std::memcpy(&dict_count, h.payload, sizeof(u32));
      std::memcpy(&codes_bytes, h.payload + 4, sizeof(u32));
      const u8* codes_vec = h.payload + 8;
      const u8* dict_bytes = codes_vec + codes_bytes;
      i32 code = -1;
      for (u32 d = 0; d < dict_count; d++) {
        double entry;
        std::memcpy(&entry, dict_bytes + d * sizeof(double), sizeof(double));
        if (bits_equal(entry)) {
          code = static_cast<i32>(d);
          break;
        }
      }
      if (code < 0) return 0;
      return CountCode(codes_vec, h.count, code);
    }
    default:
      return CountMaterialized(block, config, [&](const DecodedBlock& d, u32 i) {
        return bits_equal(d.doubles[i]) ? 1u : 0u;
      });
  }
}

u32 CountEqualsString(const u8* block, std::string_view value,
                      const CompressionConfig& config) {
  BTR_TRACE_SPAN("btr.scan.count_string");
  static obs::Histogram& hist = ScanHistogram("btr.scan.count_string_ns");
  ScopedScanMetrics metrics(hist);
  BlockHeader h = Parse(block);
  BTR_CHECK(h.type == ColumnType::kString);
  if (NeedsNullCheck(h, value.empty())) {
    return CountMaterialized(block, config, [&](const DecodedBlock& d, u32 i) {
      return d.strings.Get(i) == value ? 1u : 0u;
    });
  }
  switch (static_cast<StringSchemeCode>(h.scheme)) {
    case StringSchemeCode::kOneValue: {
      u32 length;
      std::memcpy(&length, h.payload, sizeof(u32));
      std::string_view stored(reinterpret_cast<const char*>(h.payload + 4),
                              length);
      return stored == value ? h.count : 0;
    }
    case StringSchemeCode::kDict: {
      u32 dict_count, pool_bytes, codes_bytes;
      std::memcpy(&dict_count, h.payload, sizeof(u32));
      std::memcpy(&pool_bytes, h.payload + 4, sizeof(u32));
      std::memcpy(&codes_bytes, h.payload + 8, sizeof(u32));
      (void)pool_bytes;
      const u8* codes_vec = h.payload + 12;
      const u8* tuple_bytes = codes_vec + codes_bytes;
      const char* pool = reinterpret_cast<const char*>(
          tuple_bytes + dict_count * sizeof(StringSlot));
      i32 code = -1;
      for (u32 d = 0; d < dict_count; d++) {
        StringSlot tuple;
        std::memcpy(&tuple, tuple_bytes + d * sizeof(StringSlot),
                    sizeof(StringSlot));
        if (std::string_view(pool + tuple.offset, tuple.length) == value) {
          code = static_cast<i32>(d);
          break;
        }
      }
      if (code < 0) return 0;
      return CountCode(codes_vec, h.count, code);
    }
    default:
      return CountMaterialized(block, config, [&](const DecodedBlock& d, u32 i) {
        return d.strings.Get(i) == value ? 1u : 0u;
      });
  }
}

// --- selection vectors -----------------------------------------------------

namespace {

// Positions of `code` in a compressed code vector, as ranges when the
// codes are RLE-compressed.
void SelectCode(const u8* codes_vec, u32 count, i32 code, RoaringBitmap* out) {
  if (PeekIntScheme(codes_vec) == IntSchemeCode::kRle) {
    const u8* payload = codes_vec + 1;
    u32 run_count, values_bytes;
    std::memcpy(&run_count, payload, sizeof(u32));
    std::memcpy(&values_bytes, payload + 4, sizeof(u32));
    std::vector<i32> run_values(run_count + kDecodeSlack);
    std::vector<i32> run_lengths(run_count + kDecodeSlack);
    DecompressInts(payload + 8, run_count, run_values.data());
    DecompressInts(payload + 8 + values_bytes, run_count, run_lengths.data());
    u32 position = 0;
    for (u32 r = 0; r < run_count; r++) {
      u32 length = static_cast<u32>(run_lengths[r]);
      if (run_values[r] == code) out->AddRange(position, position + length);
      position += length;
    }
    return;
  }
  std::vector<i32> codes(count + kDecodeSlack);
  DecompressInts(codes_vec, count, codes.data());
  for (u32 i = 0; i < count; i++) {
    if (codes[i] == code) out->Add(i);
  }
}

template <typename MatchFn>
RoaringBitmap SelectMaterialized(const u8* block,
                                 const CompressionConfig& config,
                                 const MatchFn& match) {
  CountMaterializedFallback();
  DecodedBlock decoded;
  DecompressBlock(block, &decoded, config);
  RoaringBitmap out;
  for (u32 i = 0; i < decoded.count; i++) {
    if (decoded.IsNull(i)) continue;
    if (match(decoded, i)) out.Add(i);
  }
  out.RunOptimize();
  return out;
}

RoaringBitmap AllRows(u32 count) {
  RoaringBitmap out;
  out.AddRange(0, count);
  out.RunOptimize();
  return out;
}

}  // namespace

RoaringBitmap SelectEqualsInt(const u8* block, i32 value,
                              const CompressionConfig& config) {
  BTR_TRACE_SPAN("btr.scan.select_int");
  static obs::Histogram& hist = ScanHistogram("btr.scan.select_int_ns");
  ScopedScanMetrics metrics(hist);
  BlockHeader h = Parse(block);
  BTR_CHECK(h.type == ColumnType::kInteger);
  if (NeedsNullCheck(h, value == 0)) {
    return SelectMaterialized(block, config, [&](const DecodedBlock& d, u32 i) {
      return d.ints[i] == value;
    });
  }
  RoaringBitmap out;
  switch (static_cast<IntSchemeCode>(h.scheme)) {
    case IntSchemeCode::kOneValue: {
      i32 stored;
      std::memcpy(&stored, h.payload, sizeof(i32));
      return stored == value ? AllRows(h.count) : RoaringBitmap();
    }
    case IntSchemeCode::kFrequency: {
      i32 top;
      u32 exception_count, bitmap_bytes;
      std::memcpy(&top, h.payload, sizeof(i32));
      std::memcpy(&exception_count, h.payload + 4, sizeof(u32));
      std::memcpy(&bitmap_bytes, h.payload + 8, sizeof(u32));
      RoaringBitmap exceptions =
          RoaringBitmap::Deserialize(h.payload + 12, nullptr);
      if (value == top) {
        // Every row except the exception positions.
        return RoaringBitmap::AndNot(AllRows(h.count), exceptions);
      }
      if (exception_count == 0) return out;
      std::vector<i32> exception_values(exception_count + kDecodeSlack);
      DecompressInts(h.payload + 12 + bitmap_bytes, exception_count,
                     exception_values.data());
      u32 e = 0;
      exceptions.ForEach([&](u32 position) {
        if (exception_values[e++] == value) out.Add(position);
      });
      out.RunOptimize();
      return out;
    }
    case IntSchemeCode::kRle: {
      u32 run_count, values_bytes;
      std::memcpy(&run_count, h.payload, sizeof(u32));
      std::memcpy(&values_bytes, h.payload + 4, sizeof(u32));
      std::vector<i32> run_values(run_count + kDecodeSlack);
      std::vector<i32> run_lengths(run_count + kDecodeSlack);
      DecompressInts(h.payload + 8, run_count, run_values.data());
      DecompressInts(h.payload + 8 + values_bytes, run_count,
                     run_lengths.data());
      u32 position = 0;
      for (u32 r = 0; r < run_count; r++) {
        u32 length = static_cast<u32>(run_lengths[r]);
        if (run_values[r] == value) out.AddRange(position, position + length);
        position += length;
      }
      out.RunOptimize();
      return out;
    }
    case IntSchemeCode::kDict: {
      u32 dict_count, codes_bytes;
      std::memcpy(&dict_count, h.payload, sizeof(u32));
      std::memcpy(&codes_bytes, h.payload + 4, sizeof(u32));
      const u8* codes_vec = h.payload + 8;
      const u8* dict_bytes = codes_vec + codes_bytes;
      for (u32 d = 0; d < dict_count; d++) {
        i32 entry;
        std::memcpy(&entry, dict_bytes + d * sizeof(i32), sizeof(i32));
        if (entry == value) {
          SelectCode(codes_vec, h.count, static_cast<i32>(d), &out);
          out.RunOptimize();
          return out;
        }
      }
      return out;
    }
    default:
      return SelectMaterialized(block, config,
                                [&](const DecodedBlock& d, u32 i) {
                                  return d.ints[i] == value;
                                });
  }
}

RoaringBitmap SelectEqualsDouble(const u8* block, double value,
                                 const CompressionConfig& config) {
  BTR_TRACE_SPAN("btr.scan.select_double");
  static obs::Histogram& hist = ScanHistogram("btr.scan.select_double_ns");
  ScopedScanMetrics metrics(hist);
  BlockHeader h = Parse(block);
  BTR_CHECK(h.type == ColumnType::kDouble);
  u64 value_bits;
  std::memcpy(&value_bits, &value, sizeof(u64));
  auto bits_equal = [&](double d) {
    u64 b;
    std::memcpy(&b, &d, sizeof(u64));
    return b == value_bits;
  };
  if (NeedsNullCheck(h, bits_equal(0.0))) {
    return SelectMaterialized(block, config, [&](const DecodedBlock& d, u32 i) {
      return bits_equal(d.doubles[i]);
    });
  }
  RoaringBitmap out;
  switch (static_cast<DoubleSchemeCode>(h.scheme)) {
    case DoubleSchemeCode::kOneValue: {
      double stored;
      std::memcpy(&stored, h.payload, sizeof(double));
      return bits_equal(stored) ? AllRows(h.count) : RoaringBitmap();
    }
    case DoubleSchemeCode::kFrequency: {
      double top;
      u32 exception_count, bitmap_bytes;
      std::memcpy(&top, h.payload, sizeof(double));
      std::memcpy(&exception_count, h.payload + 8, sizeof(u32));
      std::memcpy(&bitmap_bytes, h.payload + 12, sizeof(u32));
      RoaringBitmap exceptions =
          RoaringBitmap::Deserialize(h.payload + 16, nullptr);
      if (bits_equal(top)) {
        return RoaringBitmap::AndNot(AllRows(h.count), exceptions);
      }
      if (exception_count == 0) return out;
      std::vector<double> exception_values(exception_count + kDecodeSlack);
      DecompressDoubles(h.payload + 16 + bitmap_bytes, exception_count,
                        exception_values.data());
      u32 e = 0;
      exceptions.ForEach([&](u32 position) {
        if (bits_equal(exception_values[e++])) out.Add(position);
      });
      out.RunOptimize();
      return out;
    }
    case DoubleSchemeCode::kDict: {
      u32 dict_count, codes_bytes;
      std::memcpy(&dict_count, h.payload, sizeof(u32));
      std::memcpy(&codes_bytes, h.payload + 4, sizeof(u32));
      const u8* codes_vec = h.payload + 8;
      const u8* dict_bytes = codes_vec + codes_bytes;
      for (u32 d = 0; d < dict_count; d++) {
        double entry;
        std::memcpy(&entry, dict_bytes + d * sizeof(double), sizeof(double));
        if (bits_equal(entry)) {
          SelectCode(codes_vec, h.count, static_cast<i32>(d), &out);
          out.RunOptimize();
          return out;
        }
      }
      return out;
    }
    default:
      return SelectMaterialized(block, config,
                                [&](const DecodedBlock& d, u32 i) {
                                  return bits_equal(d.doubles[i]);
                                });
  }
}

RoaringBitmap SelectEqualsString(const u8* block, std::string_view value,
                                 const CompressionConfig& config) {
  BTR_TRACE_SPAN("btr.scan.select_string");
  static obs::Histogram& hist = ScanHistogram("btr.scan.select_string_ns");
  ScopedScanMetrics metrics(hist);
  BlockHeader h = Parse(block);
  BTR_CHECK(h.type == ColumnType::kString);
  if (NeedsNullCheck(h, value.empty())) {
    return SelectMaterialized(block, config, [&](const DecodedBlock& d, u32 i) {
      return d.strings.Get(i) == value;
    });
  }
  RoaringBitmap out;
  switch (static_cast<StringSchemeCode>(h.scheme)) {
    case StringSchemeCode::kOneValue: {
      u32 length;
      std::memcpy(&length, h.payload, sizeof(u32));
      std::string_view stored(reinterpret_cast<const char*>(h.payload + 4),
                              length);
      return stored == value ? AllRows(h.count) : RoaringBitmap();
    }
    case StringSchemeCode::kDict: {
      u32 dict_count, pool_bytes, codes_bytes;
      std::memcpy(&dict_count, h.payload, sizeof(u32));
      std::memcpy(&pool_bytes, h.payload + 4, sizeof(u32));
      std::memcpy(&codes_bytes, h.payload + 8, sizeof(u32));
      (void)pool_bytes;
      const u8* codes_vec = h.payload + 12;
      const u8* tuple_bytes = codes_vec + codes_bytes;
      const char* pool = reinterpret_cast<const char*>(
          tuple_bytes + dict_count * sizeof(StringSlot));
      for (u32 d = 0; d < dict_count; d++) {
        StringSlot tuple;
        std::memcpy(&tuple, tuple_bytes + d * sizeof(StringSlot),
                    sizeof(StringSlot));
        if (std::string_view(pool + tuple.offset, tuple.length) == value) {
          SelectCode(codes_vec, h.count, static_cast<i32>(d), &out);
          out.RunOptimize();
          return out;
        }
      }
      return out;
    }
    default:
      return SelectMaterialized(block, config,
                                [&](const DecodedBlock& d, u32 i) {
                                  return d.strings.Get(i) == value;
                                });
  }
}

}  // namespace btr::kernels
