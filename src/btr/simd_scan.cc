#include "btr/simd_scan.h"

#include <algorithm>
#include <cstring>

#include "bitpack/bitpack.h"
#include "util/simd.h"

namespace btr::simd {

namespace {

// Shared scalar reference for the i32 closed-range kernel; also the tail
// loop of the AVX2 body so both paths agree on every position.
inline void SelectI32RangeScalar(const i32* values, u32 count, u32 base,
                                 i32 lo, i32 hi, RoaringBitmap* out) {
  for (u32 i = 0; i < count; i++) {
    if (values[i] >= lo && values[i] <= hi) out->Add(base + i);
  }
}

inline bool F64InRange(double v, double lo, double hi, bool lo_strict,
                       bool hi_strict) {
  // IEEE ordered comparisons: NaN fails every clause.
  bool ge = lo_strict ? (v > lo) : (v >= lo);
  bool le = hi_strict ? (v < hi) : (v <= hi);
  return ge && le;
}

inline u64 BitsOf(double d) {
  u64 b;
  std::memcpy(&b, &d, sizeof(u64));
  return b;
}

}  // namespace

void SelectI32Range(const i32* values, u32 count, u32 base, i32 lo, i32 hi,
                    RoaringBitmap* out) {
  if (lo > hi) return;
  u32 i = 0;
#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    const __m256i vlo = _mm256_set1_epi32(lo);
    const __m256i vhi = _mm256_set1_epi32(hi);
    for (; i + 8 <= count; i += 8) {
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + i));
      __m256i lt = _mm256_cmpgt_epi32(vlo, v);  // v < lo
      __m256i gt = _mm256_cmpgt_epi32(v, vhi);  // v > hi
      u32 bad = static_cast<u32>(
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_or_si256(lt, gt))));
      u32 good = ~bad & 0xFFu;
      while (good != 0) {
        u32 bit = static_cast<u32>(__builtin_ctz(good));
        out->Add(base + i + bit);
        good &= good - 1;
      }
    }
  }
#endif
  SelectI32RangeScalar(values + i, count - i, base + i, lo, hi, out);
}

void SelectI32Set(const i32* values, u32 count, u32 base,
                  const std::vector<i32>& set, RoaringBitmap* out) {
  if (set.empty()) return;
  if (set.size() == 1) {
    SelectI32Range(values, count, base, set[0], set[0], out);
    return;
  }
  u32 i = 0;
#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled() && set.size() <= 8) {
    __m256i needles[8];
    for (size_t s = 0; s < set.size(); s++) {
      needles[s] = _mm256_set1_epi32(set[s]);
    }
    for (; i + 8 <= count; i += 8) {
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + i));
      __m256i eq = _mm256_cmpeq_epi32(v, needles[0]);
      for (size_t s = 1; s < set.size(); s++) {
        eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(v, needles[s]));
      }
      u32 good =
          static_cast<u32>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
      while (good != 0) {
        u32 bit = static_cast<u32>(__builtin_ctz(good));
        out->Add(base + i + bit);
        good &= good - 1;
      }
    }
  }
#endif
  for (; i < count; i++) {
    if (std::binary_search(set.begin(), set.end(), values[i])) {
      out->Add(base + i);
    }
  }
}

void SelectF64Range(const double* values, u32 count, u32 base, double lo,
                    double hi, bool lo_strict, bool hi_strict,
                    RoaringBitmap* out) {
  u32 i = 0;
#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    const __m256d vlo = _mm256_set1_pd(lo);
    const __m256d vhi = _mm256_set1_pd(hi);
    for (; i + 4 <= count; i += 4) {
      __m256d v = _mm256_loadu_pd(values + i);
      __m256d ge = lo_strict ? _mm256_cmp_pd(v, vlo, _CMP_GT_OQ)
                             : _mm256_cmp_pd(v, vlo, _CMP_GE_OQ);
      __m256d le = hi_strict ? _mm256_cmp_pd(v, vhi, _CMP_LT_OQ)
                             : _mm256_cmp_pd(v, vhi, _CMP_LE_OQ);
      u32 good =
          static_cast<u32>(_mm256_movemask_pd(_mm256_and_pd(ge, le)));
      while (good != 0) {
        u32 bit = static_cast<u32>(__builtin_ctz(good));
        out->Add(base + i + bit);
        good &= good - 1;
      }
    }
  }
#endif
  for (; i < count; i++) {
    if (F64InRange(values[i], lo, hi, lo_strict, hi_strict)) {
      out->Add(base + i);
    }
  }
}

void SelectF64BitsSet(const double* values, u32 count, u32 base,
                      const std::vector<u64>& bit_set, RoaringBitmap* out) {
  if (bit_set.empty()) return;
  u32 i = 0;
#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled() && bit_set.size() <= 8) {
    __m256i needles[8];
    for (size_t s = 0; s < bit_set.size(); s++) {
      needles[s] = _mm256_set1_epi64x(static_cast<long long>(bit_set[s]));
    }
    for (; i + 4 <= count; i += 4) {
      __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + i));
      __m256i eq = _mm256_cmpeq_epi64(v, needles[0]);
      for (size_t s = 1; s < bit_set.size(); s++) {
        eq = _mm256_or_si256(eq, _mm256_cmpeq_epi64(v, needles[s]));
      }
      u32 good =
          static_cast<u32>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
      while (good != 0) {
        u32 bit = static_cast<u32>(__builtin_ctz(good));
        out->Add(base + i + bit);
        good &= good - 1;
      }
    }
  }
#endif
  for (; i < count; i++) {
    if (std::binary_search(bit_set.begin(), bit_set.end(),
                           BitsOf(values[i]))) {
      out->Add(base + i);
    }
  }
}

// --- FastBP128 stream range scan ---------------------------------------------

namespace {

// Compares 128 unpacked deltas against the closed unsigned interval
// [dlo, dhi], adding matches at base..base+127.
void CompareDeltas128(const u32* deltas, u32 base, u32 dlo, u32 dhi, u32 bits,
                      RoaringBitmap* out) {
#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    if (bits <= 8) {
      // ByteSlice-style byte kernel: deltas fit one byte, so narrow four
      // 8-lane u32 vectors into one 32-lane u8 vector and compare all 32
      // per instruction. saturating-subtract trick: subs_epu8(x, dhi) is
      // nonzero iff x > dhi, subs_epu8(dlo, x) nonzero iff x < dlo.
      const __m256i vdlo = _mm256_set1_epi8(static_cast<char>(dlo));
      const __m256i vdhi = _mm256_set1_epi8(static_cast<char>(dhi));
      const __m256i zero = _mm256_setzero_si256();
      const __m256i lane_fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
      for (u32 g = 0; g < 128; g += 32) {
        const __m256i* p = reinterpret_cast<const __m256i*>(deltas + g);
        __m256i ab = _mm256_packus_epi32(_mm256_loadu_si256(p),
                                         _mm256_loadu_si256(p + 1));
        __m256i cd = _mm256_packus_epi32(_mm256_loadu_si256(p + 2),
                                         _mm256_loadu_si256(p + 3));
        __m256i bytes = _mm256_permutevar8x32_epi32(
            _mm256_packus_epi16(ab, cd), lane_fix);
        __m256i bad = _mm256_or_si256(_mm256_subs_epu8(bytes, vdhi),
                                      _mm256_subs_epu8(vdlo, bytes));
        u32 good = static_cast<u32>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(bad, zero)));
        while (good != 0) {  // early exit: all-miss groups fall through
          u32 bit = static_cast<u32>(__builtin_ctz(good));
          out->Add(base + g + bit);
          good &= good - 1;
        }
      }
      return;
    }
    // Word kernel: unsigned 32-bit interval test via sign-bias + signed
    // compare, 8 lanes per instruction.
    const __m256i bias = _mm256_set1_epi32(static_cast<i32>(0x80000000u));
    const __m256i vdlo =
        _mm256_xor_si256(_mm256_set1_epi32(static_cast<i32>(dlo)), bias);
    const __m256i vdhi =
        _mm256_xor_si256(_mm256_set1_epi32(static_cast<i32>(dhi)), bias);
    for (u32 g = 0; g < 128; g += 8) {
      __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(deltas + g)),
          bias);
      __m256i lt = _mm256_cmpgt_epi32(vdlo, v);
      __m256i gt = _mm256_cmpgt_epi32(v, vdhi);
      u32 bad = static_cast<u32>(
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_or_si256(lt, gt))));
      u32 good = ~bad & 0xFFu;
      while (good != 0) {
        u32 bit = static_cast<u32>(__builtin_ctz(good));
        out->Add(base + g + bit);
        good &= good - 1;
      }
    }
    return;
  }
#endif
  (void)bits;
  for (u32 j = 0; j < 128; j++) {
    if (deltas[j] >= dlo && deltas[j] <= dhi) out->Add(base + j);
  }
}

}  // namespace

void SelectBp128Range(const u8* stream, u32 count, u32 base, i32 lo, i32 hi,
                      RoaringBitmap* out, Bp128ScanStats* stats) {
  if (lo > hi) return;
  const u8* p = stream;
  alignas(32) u32 deltas[bitpack::kBlockSize];
  u32 i = 0;
  for (; i + bitpack::kBlockSize <= count; i += bitpack::kBlockSize) {
    u32 min_word;
    std::memcpy(&min_word, p, sizeof(u32));
    u32 bits = p[4];
    p += 5;
    const u8* payload = p;
    p += bitpack::Packed128Bytes(bits);
    if (stats != nullptr) stats->miniblocks++;

    // Frame-of-reference envelope: every value lies in [bmin, bmin+mask].
    // i64 math sidesteps overflow at the i32 extremes.
    i64 bmin = static_cast<i32>(min_word);
    u64 mask = bits == 32 ? 0xFFFFFFFFull : ((u64{1} << bits) - 1);
    i64 bmax = bmin + static_cast<i64>(mask);
    if (bmin > hi || bmax < lo) {  // byte-prune: skip the packed payload
      if (stats != nullptr) stats->pruned++;
      continue;
    }
    if (bmin >= lo && bmax <= hi) {  // whole-accept without unpacking
      if (stats != nullptr) stats->accepted++;
      out->AddRange(base + i, base + i + bitpack::kBlockSize);
      continue;
    }
    if (stats != nullptr) stats->scanned++;
    bitpack::Unpack128(payload, bits, deltas);
    u32 dlo = static_cast<u32>(std::max<i64>(0, static_cast<i64>(lo) - bmin));
    u32 dhi = static_cast<u32>(
        std::min<i64>(static_cast<i64>(mask), static_cast<i64>(hi) - bmin));
    CompareDeltas128(deltas, base + i, dlo, dhi, bits, out);
  }
  if (i < count) {
    // Contiguously packed tail: always scalar (both policies take the same
    // path, trivially preserving SIMD/scalar parity on the last values).
    u32 tail = count - i;
    u32 min_word;
    std::memcpy(&min_word, p, sizeof(u32));
    u32 bits = p[4];
    p += 5;
    i64 bmin = static_cast<i32>(min_word);
    std::vector<u32> tail_deltas(tail + 2);  // +slack: UnpackScalar windows
    bitpack::UnpackScalar(p, tail, bits, tail_deltas.data());
    for (u32 j = 0; j < tail; j++) {
      i64 v = bmin + tail_deltas[j];
      if (v >= lo && v <= hi) out->Add(base + i + j);
    }
  }
}

}  // namespace btr::simd
