// Sampling for compression-ratio estimation (paper Section 3.1, Figure 2):
// the block is split into `runs` non-overlapping parts and one contiguous
// run of `run_length` tuples is taken from a random position inside each
// part. This preserves local patterns (runs) while covering the whole
// value range. Default 10 x 64 = 1% of a 64,000-value block.
#ifndef BTR_BTR_SAMPLING_H_
#define BTR_BTR_SAMPLING_H_

#include <vector>

#include "btr/column.h"
#include "btr/config.h"
#include "util/random.h"

namespace btr {

// Computes the [begin, end) ranges of each sample run for a block of
// `count` values. Deterministic given the seed. If the requested sample
// covers the block (or exhaustive estimation is on), a single full-block
// range is returned.
std::vector<std::pair<u32, u32>> SampleRanges(u32 count, u32 runs,
                                              u32 run_length, u64 seed);

struct IntSample {
  std::vector<i32> values;
};
struct DoubleSample {
  std::vector<double> values;
};
struct StringSample {
  std::vector<u32> offsets;  // count+1
  std::vector<u8> data;
  StringsView View() const {
    return StringsView{offsets.data(), data.data(),
                       static_cast<u32>(offsets.empty() ? 0 : offsets.size() - 1)};
  }
};

IntSample BuildIntSample(const i32* data, u32 count, const CompressionConfig& config);
DoubleSample BuildDoubleSample(const double* data, u32 count,
                               const CompressionConfig& config);
StringSample BuildStringSample(const StringsView& view,
                               const CompressionConfig& config);

}  // namespace btr

#endif  // BTR_BTR_SAMPLING_H_
