// SIMD comparison kernels for predicate evaluation (docs/PREDICATES.md).
//
// Every kernel appends matching positions into a RoaringBitmap selection
// vector and has two twins — an AVX2 body and a scalar reference — chosen
// at runtime by SimdPolicy (util/simd.h), so a BTR_DISABLE_AVX2 build or
// a ScopedSimd(false) scope produces bit-identical selections through the
// scalar path. The property tests enforce that equivalence per scheme.
//
// The range kernels work on closed intervals. Integer predicates are
// canonicalized to closed [lo, hi] intervals by the expression builder
// (x < 5 becomes [INT32_MIN, 4]); doubles carry explicit strictness flags
// because +-inf endpoints cannot absorb open bounds losslessly.
//
// SelectBp128Range is the ByteSlice-flavored centerpiece: it walks the
// FastBP128 stream miniblock by miniblock, using each 128-value frame's
// [min, min + mask] envelope to skip (byte-prune) or whole-accept blocks
// without unpacking, and compares the survivors' unpacked deltas 32 lanes
// per instruction at byte width when the frame's bit width allows
// (<= 8 bits), 8 lanes at word width otherwise, with movemask early-exit.
#ifndef BTR_BTR_SIMD_SCAN_H_
#define BTR_BTR_SIMD_SCAN_H_

#include <vector>

#include "bitmap/roaring.h"
#include "util/types.h"

namespace btr::simd {

// Positions i in [0, count) with lo <= values[i] <= hi, offset by `base`.
void SelectI32Range(const i32* values, u32 count, u32 base, i32 lo, i32 hi,
                    RoaringBitmap* out);

// Positions whose value is in `set` (must be sorted ascending). Small sets
// (<= 8) compare against broadcast constants; larger sets binary-search.
void SelectI32Set(const i32* values, u32 count, u32 base,
                  const std::vector<i32>& set, RoaringBitmap* out);

// IEEE-ordered range with per-bound strictness; NaN never matches.
void SelectF64Range(const double* values, u32 count, u32 base, double lo,
                    double hi, bool lo_strict, bool hi_strict,
                    RoaringBitmap* out);

// Bit-pattern equality against any of `bit_set` (sorted u64 bit patterns).
// This is the double kEq/kIn kernel: lossless down to NaN payloads and
// signed zeros, matching the storage format's own equality.
void SelectF64BitsSet(const double* values, u32 count, u32 base,
                      const std::vector<u64>& bit_set, RoaringBitmap* out);

// Per-call telemetry of one SelectBp128Range walk, for ScanStats and the
// bench: how many 128-value miniblocks were skipped / whole-accepted from
// their frame envelope alone vs actually unpacked and compared.
struct Bp128ScanStats {
  u32 miniblocks = 0;
  u32 pruned = 0;    // envelope disjoint from [lo, hi]: payload skipped
  u32 accepted = 0;  // envelope inside [lo, hi]: AddRange, payload skipped
  u32 scanned = 0;   // unpacked and compared
};

// Range scan directly over a FastBP128 payload (the stream that follows
// the IntSchemeCode::kBp128 byte) holding `count` values. Matching
// positions land in *out offset by `base`.
void SelectBp128Range(const u8* stream, u32 count, u32 base, i32 lo, i32 hi,
                      RoaringBitmap* out, Bp128ScanStats* stats = nullptr);

}  // namespace btr::simd

#endif  // BTR_BTR_SIMD_SCAN_H_
