// Frequency encoding, adapted as in the paper (Section 2.2): store (1) the
// single dominant top value, (2) a Roaring bitmap marking exception
// positions, and (3) the exception values, which cascade.
//
// Payload: [i32 top][u32 exception_count][u32 bitmap_bytes][roaring bitmap]
//          [exceptions vector]
#include <cstring>
#include <unordered_map>
#include <vector>

#include "bitmap/roaring.h"
#include "btr/scheme_picker.h"
#include "btr/schemes/estimate_util.h"
#include "btr/schemes/int_schemes.h"

namespace btr {

double IntFrequency::EstimateRatio(const IntStats& stats,
                                   const IntSample& sample,
                                   const CompressionContext& ctx) const {
  // Paper Section 3.1: excluded when more than 50% of values are unique.
  if (stats.unique_count * 2 > stats.count) return 0.0;
  return EstimateIntBySample(*this, sample, ctx);
}

size_t IntFrequency::Compress(const i32* in, u32 count, ByteBuffer* out,
                              const CompressionContext& ctx) const {
  size_t start = out->size();
  // Find the dominant value.
  std::unordered_map<i32, u32> freq;
  freq.reserve(1024);
  for (u32 i = 0; i < count; i++) freq[in[i]]++;
  i32 top = in[0];
  u32 top_count = 0;
  for (const auto& [value, n] : freq) {
    if (n > top_count) {
      top_count = n;
      top = value;
    }
  }
  RoaringBitmap exceptions_bitmap;
  std::vector<i32> exceptions;
  exceptions.reserve(count - top_count);
  for (u32 i = 0; i < count; i++) {
    if (in[i] != top) {
      exceptions_bitmap.Add(i);
      exceptions.push_back(in[i]);
    }
  }
  exceptions_bitmap.RunOptimize();

  out->AppendValue<i32>(top);
  out->AppendValue<u32>(static_cast<u32>(exceptions.size()));
  out->AppendValue<u32>(static_cast<u32>(exceptions_bitmap.SerializedSizeBytes()));
  exceptions_bitmap.SerializeTo(out);
  if (!exceptions.empty()) {
    CompressInts(exceptions.data(), static_cast<u32>(exceptions.size()), out,
                 ctx.Descend());
  }
  return out->size() - start;
}

void IntFrequency::Decompress(const u8* in, u32 count, i32* out) const {
  i32 top;
  u32 exception_count, bitmap_bytes;
  std::memcpy(&top, in, sizeof(i32));
  std::memcpy(&exception_count, in + 4, sizeof(u32));
  std::memcpy(&bitmap_bytes, in + 8, sizeof(u32));
  const u8* bitmap_blob = in + 12;
  RoaringBitmap bitmap = RoaringBitmap::Deserialize(bitmap_blob, nullptr);

  // Fill with the top value (same vectorized loop as OneValue)...
#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    const __m256i v = _mm256_set1_epi32(top);
    i32* end = out + count;
    for (i32* p = out; p < end; p += 8) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }
  } else {
    for (u32 i = 0; i < count; i++) out[i] = top;
  }
#else
  for (u32 i = 0; i < count; i++) out[i] = top;
#endif

  // ...then patch the exceptions.
  if (exception_count > 0) {
    std::vector<i32> exceptions(exception_count + kDecodeSlack);
    DecompressInts(bitmap_blob + bitmap_bytes, exception_count, exceptions.data());
    u32 e = 0;
    bitmap.ForEach([&](u32 position) { out[position] = exceptions[e++]; });
    BTR_DCHECK(e == exception_count);
  }
}

}  // namespace btr
