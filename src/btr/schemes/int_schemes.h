// The integer scheme pool (paper Figure 3, left-to-right):
// Uncompressed, OneValue, RLE, Dictionary, Frequency, SIMD-FastBP128,
// SIMD-FastPFOR. One class per scheme; registry in registry.cc.
#ifndef BTR_BTR_SCHEMES_INT_SCHEMES_H_
#define BTR_BTR_SCHEMES_INT_SCHEMES_H_

#include "btr/scheme.h"

namespace btr {

class IntUncompressed final : public IntScheme {
 public:
  IntSchemeCode code() const override { return IntSchemeCode::kUncompressed; }
  const char* name() const override { return "uncompressed"; }
  double EstimateRatio(const IntStats&, const IntSample&,
                       const CompressionContext&) const override;
  size_t Compress(const i32* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, i32* out) const override;
};

class IntOneValue final : public IntScheme {
 public:
  IntSchemeCode code() const override { return IntSchemeCode::kOneValue; }
  const char* name() const override { return "one_value"; }
  double EstimateRatio(const IntStats&, const IntSample&,
                       const CompressionContext&) const override;
  size_t Compress(const i32* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, i32* out) const override;
};

class IntRle final : public IntScheme {
 public:
  IntSchemeCode code() const override { return IntSchemeCode::kRle; }
  const char* name() const override { return "rle"; }
  double EstimateRatio(const IntStats&, const IntSample&,
                       const CompressionContext&) const override;
  size_t Compress(const i32* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, i32* out) const override;
};

class IntDict final : public IntScheme {
 public:
  IntSchemeCode code() const override { return IntSchemeCode::kDict; }
  const char* name() const override { return "dict"; }
  double EstimateRatio(const IntStats&, const IntSample&,
                       const CompressionContext&) const override;
  size_t Compress(const i32* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, i32* out) const override;
};

class IntFrequency final : public IntScheme {
 public:
  IntSchemeCode code() const override { return IntSchemeCode::kFrequency; }
  const char* name() const override { return "frequency"; }
  double EstimateRatio(const IntStats&, const IntSample&,
                       const CompressionContext&) const override;
  size_t Compress(const i32* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, i32* out) const override;
};

class IntBp128 final : public IntScheme {
 public:
  IntSchemeCode code() const override { return IntSchemeCode::kBp128; }
  const char* name() const override { return "fastbp128"; }
  double EstimateRatio(const IntStats&, const IntSample&,
                       const CompressionContext&) const override;
  size_t Compress(const i32* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, i32* out) const override;
};

class IntPfor final : public IntScheme {
 public:
  IntSchemeCode code() const override { return IntSchemeCode::kPfor; }
  const char* name() const override { return "fastpfor"; }
  double EstimateRatio(const IntStats&, const IntSample&,
                       const CompressionContext&) const override;
  size_t Compress(const i32* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, i32* out) const override;
};

}  // namespace btr

#endif  // BTR_BTR_SCHEMES_INT_SCHEMES_H_
