// Uncompressed, OneValue, RLE, Dictionary and Frequency for doubles.
// All value comparisons are on bit patterns: the format is lossless down
// to NaN payloads and signed zeros.
#include <cstring>
#include <unordered_map>
#include <vector>

#include "bitmap/roaring.h"
#include "btr/scheme_picker.h"
#include "btr/schemes/double_schemes.h"
#include "btr/schemes/estimate_util.h"

namespace btr {

namespace {
inline u64 BitsOf(double d) {
  u64 b;
  std::memcpy(&b, &d, 8);
  return b;
}
inline double DoubleOf(u64 b) {
  double d;
  std::memcpy(&d, &b, 8);
  return d;
}
}  // namespace

// --- Uncompressed ------------------------------------------------------------

double DoubleUncompressed::EstimateRatio(const DoubleStats&, const DoubleSample&,
                                         const CompressionContext&) const {
  return 1.0;
}

size_t DoubleUncompressed::Compress(const double* in, u32 count, ByteBuffer* out,
                                    const CompressionContext&) const {
  out->Append(in, count * sizeof(double));
  return count * sizeof(double);
}

void DoubleUncompressed::Decompress(const u8* in, u32 count, double* out) const {
  std::memcpy(out, in, count * sizeof(double));
}

// --- OneValue -------------------------------------------------------------------

double DoubleOneValue::EstimateRatio(const DoubleStats& stats, const DoubleSample&,
                                     const CompressionContext&) const {
  if (stats.unique_count != 1) return 0.0;
  return RatioOf(stats.count * sizeof(double), sizeof(double));
}

size_t DoubleOneValue::Compress(const double* in, u32 count, ByteBuffer* out,
                                const CompressionContext&) const {
  BTR_CHECK(count > 0);
  out->AppendValue<double>(in[0]);
  return sizeof(double);
}

void DoubleOneValue::Decompress(const u8* in, u32 count, double* out) const {
  double value;
  std::memcpy(&value, in, sizeof(double));
#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    const __m256d v = _mm256_set1_pd(value);
    double* end = out + count;
    for (double* p = out; p < end; p += 4) {
      _mm256_storeu_pd(p, v);
    }
    return;
  }
#endif
  for (u32 i = 0; i < count; i++) out[i] = value;
}

// --- RLE -------------------------------------------------------------------------
// Payload: [u32 run_count][u32 values_bytes][values vector][lengths vector]

double DoubleRle::EstimateRatio(const DoubleStats& stats,
                                const DoubleSample& sample,
                                const CompressionContext& ctx) const {
  if (stats.AverageRunLength() < 2.0) return 0.0;
  return EstimateDoubleBySample(*this, sample, ctx);
}

size_t DoubleRle::Compress(const double* in, u32 count, ByteBuffer* out,
                           const CompressionContext& ctx) const {
  size_t start = out->size();
  std::vector<double> values;
  std::vector<i32> lengths;
  u32 i = 0;
  while (i < count) {
    u32 run_start = i;
    u64 bits = BitsOf(in[i]);
    while (i < count && BitsOf(in[i]) == bits) i++;
    values.push_back(DoubleOf(bits));
    lengths.push_back(static_cast<i32>(i - run_start));
  }
  u32 run_count = static_cast<u32>(values.size());
  out->AppendValue<u32>(run_count);
  size_t size_slot = out->size();
  out->AppendValue<u32>(0);
  u32 values_bytes = static_cast<u32>(
      CompressDoubles(values.data(), run_count, out, ctx.Descend()));
  std::memcpy(out->data() + size_slot, &values_bytes, sizeof(u32));
  CompressInts(lengths.data(), run_count, out, ctx.Descend());
  return out->size() - start;
}

void DoubleRle::Decompress(const u8* in, u32 count, double* out) const {
  u32 run_count, values_bytes;
  std::memcpy(&run_count, in, sizeof(u32));
  std::memcpy(&values_bytes, in + 4, sizeof(u32));
  const u8* values_blob = in + 8;
  const u8* lengths_blob = values_blob + values_bytes;

  std::vector<double> values(run_count + kDecodeSlack);
  std::vector<i32> lengths(run_count + kDecodeSlack);
  DecompressDoubles(values_blob, run_count, values.data());
  DecompressInts(lengths_blob, run_count, lengths.data());

#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    double* dst = out;
    for (u32 run = 0; run < run_count; run++) {
      double* target = dst + lengths[run];
      const __m256d v = _mm256_set1_pd(values[run]);
      for (; dst < target; dst += 4) {
        _mm256_storeu_pd(dst, v);
      }
      dst = target;
    }
    BTR_DCHECK(dst == out + count);
    (void)count;
    return;
  }
#endif
  double* dst = out;
  for (u32 run = 0; run < run_count; run++) {
    double value = values[run];
    for (i32 j = 0; j < lengths[run]; j++) *dst++ = value;
  }
  BTR_DCHECK(dst == out + count);
  (void)count;
}

// --- Dictionary -------------------------------------------------------------------
// Payload: [u32 dict_count][u32 codes_bytes][codes vector][raw dict doubles]

double DoubleDict::EstimateRatio(const DoubleStats& stats,
                                 const DoubleSample& sample,
                                 const CompressionContext& ctx) const {
  if (stats.unique_count == stats.count) return 0.0;
  return EstimateDoubleBySample(*this, sample, ctx);
}

size_t DoubleDict::Compress(const double* in, u32 count, ByteBuffer* out,
                            const CompressionContext& ctx) const {
  size_t start = out->size();
  std::unordered_map<u64, i32> code_of;
  code_of.reserve(1024);
  std::vector<double> dict;
  std::vector<i32> codes(count);
  for (u32 i = 0; i < count; i++) {
    auto [it, inserted] =
        code_of.try_emplace(BitsOf(in[i]), static_cast<i32>(dict.size()));
    if (inserted) dict.push_back(in[i]);
    codes[i] = it->second;
  }
  out->AppendValue<u32>(static_cast<u32>(dict.size()));
  size_t size_slot = out->size();
  out->AppendValue<u32>(0);
  u32 codes_bytes =
      static_cast<u32>(CompressInts(codes.data(), count, out, ctx.Descend()));
  std::memcpy(out->data() + size_slot, &codes_bytes, sizeof(u32));
  out->Append(dict.data(), dict.size() * sizeof(double));
  return out->size() - start;
}

void DoubleDict::Decompress(const u8* in, u32 count, double* out) const {
  u32 dict_count, codes_bytes;
  std::memcpy(&dict_count, in, sizeof(u32));
  std::memcpy(&codes_bytes, in + 4, sizeof(u32));
  const u8* codes_blob = in + 8;
  std::vector<double> dict_values(dict_count);
  std::memcpy(dict_values.data(), codes_blob + codes_bytes,
              dict_count * sizeof(double));
  const double* dict = dict_values.data();

  // Fused RLE+Dict, as for integers (paper Section 5).
  if (PeekIntScheme(codes_blob) == IntSchemeCode::kRle) {
    const u8* rle = codes_blob + 1;
    u32 run_count, values_bytes;
    std::memcpy(&run_count, rle, sizeof(u32));
    std::memcpy(&values_bytes, rle + 4, sizeof(u32));
    if (run_count * 3 <= count) {
      std::vector<i32> run_codes(run_count + kDecodeSlack);
      std::vector<i32> run_lengths(run_count + kDecodeSlack);
      DecompressInts(rle + 8, run_count, run_codes.data());
      DecompressInts(rle + 8 + values_bytes, run_count, run_lengths.data());
      double* dst = out;
#if BTR_HAS_AVX2
      if (SimdPolicy::Enabled()) {
        for (u32 r = 0; r < run_count; r++) {
          const __m256d v = _mm256_set1_pd(dict[run_codes[r]]);
          double* target = dst + run_lengths[r];
          for (; dst < target; dst += 4) {
            _mm256_storeu_pd(dst, v);
          }
          dst = target;
        }
        BTR_DCHECK(dst == out + count);
        return;
      }
#endif
      for (u32 r = 0; r < run_count; r++) {
        double value = dict[run_codes[r]];
        for (i32 j = 0; j < run_lengths[r]; j++) *dst++ = value;
      }
      BTR_DCHECK(dst == out + count);
      return;
    }
  }

  std::vector<i32> codes(count + kDecodeSlack);
  DecompressInts(codes_blob, count, codes.data());

#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled() && count >= 4) {
    u32 i = 0;
    for (; i + 16 <= count; i += 16) {
      for (u32 u = 0; u < 4; u++) {
        __m128i c = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(codes.data() + i + u * 4));
        __m256d v = _mm256_i32gather_pd(dict, c, 8);
        _mm256_storeu_pd(out + i + u * 4, v);
      }
    }
    for (; i + 4 <= count; i += 4) {
      __m128i c =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes.data() + i));
      __m256d v = _mm256_i32gather_pd(dict, c, 8);
      _mm256_storeu_pd(out + i, v);
    }
    for (; i < count; i++) out[i] = dict[codes[i]];
    return;
  }
#endif
  for (u32 i = 0; i < count; i++) out[i] = dict[codes[i]];
}

// --- Frequency ----------------------------------------------------------------------
// Payload: [double top][u32 exception_count][u32 bitmap_bytes][bitmap]
//          [exceptions vector]

double DoubleFrequency::EstimateRatio(const DoubleStats& stats,
                                      const DoubleSample& sample,
                                      const CompressionContext& ctx) const {
  if (stats.unique_count * 2 > stats.count) return 0.0;
  return EstimateDoubleBySample(*this, sample, ctx);
}

size_t DoubleFrequency::Compress(const double* in, u32 count, ByteBuffer* out,
                                 const CompressionContext& ctx) const {
  size_t start = out->size();
  std::unordered_map<u64, u32> freq;
  freq.reserve(1024);
  for (u32 i = 0; i < count; i++) freq[BitsOf(in[i])]++;
  u64 top_bits = BitsOf(in[0]);
  u32 top_count = 0;
  for (const auto& [bits, n] : freq) {
    if (n > top_count) {
      top_count = n;
      top_bits = bits;
    }
  }
  RoaringBitmap exceptions_bitmap;
  std::vector<double> exceptions;
  exceptions.reserve(count - top_count);
  for (u32 i = 0; i < count; i++) {
    if (BitsOf(in[i]) != top_bits) {
      exceptions_bitmap.Add(i);
      exceptions.push_back(in[i]);
    }
  }
  exceptions_bitmap.RunOptimize();

  out->AppendValue<double>(DoubleOf(top_bits));
  out->AppendValue<u32>(static_cast<u32>(exceptions.size()));
  out->AppendValue<u32>(static_cast<u32>(exceptions_bitmap.SerializedSizeBytes()));
  exceptions_bitmap.SerializeTo(out);
  if (!exceptions.empty()) {
    CompressDoubles(exceptions.data(), static_cast<u32>(exceptions.size()), out,
                    ctx.Descend());
  }
  return out->size() - start;
}

void DoubleFrequency::Decompress(const u8* in, u32 count, double* out) const {
  double top;
  u32 exception_count, bitmap_bytes;
  std::memcpy(&top, in, sizeof(double));
  std::memcpy(&exception_count, in + 8, sizeof(u32));
  std::memcpy(&bitmap_bytes, in + 12, sizeof(u32));
  const u8* bitmap_blob = in + 16;
  RoaringBitmap bitmap = RoaringBitmap::Deserialize(bitmap_blob, nullptr);

  for (u32 i = 0; i < count; i++) out[i] = top;
  if (exception_count > 0) {
    std::vector<double> exceptions(exception_count + kDecodeSlack);
    DecompressDoubles(bitmap_blob + bitmap_bytes, exception_count,
                      exceptions.data());
    u32 e = 0;
    bitmap.ForEach([&](u32 position) { out[position] = exceptions[e++]; });
    BTR_DCHECK(e == exception_count);
  }
}

}  // namespace btr
