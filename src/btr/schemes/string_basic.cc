// Uncompressed and OneValue string schemes.
//
// Uncompressed payload: [u32 total_bytes][u32 lengths_bytes][lengths vector]
//                       [raw bytes]
// OneValue payload:     [u32 length][bytes]
#include <cstring>
#include <vector>

#include "btr/scheme_picker.h"
#include "btr/schemes/estimate_util.h"
#include "btr/schemes/string_schemes.h"

namespace btr {

// --- Uncompressed -------------------------------------------------------------

double StringUncompressed::EstimateRatio(const StringStats&, const StringSample&,
                                         const CompressionContext&) const {
  return 1.0;
}

size_t StringUncompressed::Compress(const StringsView& in, ByteBuffer* out,
                                    const CompressionContext& ctx) const {
  size_t start = out->size();
  out->AppendValue<u32>(in.TotalBytes());
  std::vector<i32> lengths(in.count);
  for (u32 i = 0; i < in.count; i++) lengths[i] = static_cast<i32>(in.Length(i));
  size_t size_slot = out->size();
  out->AppendValue<u32>(0);
  u32 lengths_bytes = static_cast<u32>(
      CompressInts(lengths.data(), in.count, out, ctx.Descend()));
  std::memcpy(out->data() + size_slot, &lengths_bytes, sizeof(u32));
  out->Append(in.data + in.offsets[0], in.TotalBytes());
  return out->size() - start;
}

void StringUncompressed::Decompress(const u8* in, u32 count,
                                    DecodedStrings* out,
                                    const CompressionConfig&) const {
  u32 total_bytes, lengths_bytes;
  std::memcpy(&total_bytes, in, sizeof(u32));
  std::memcpy(&lengths_bytes, in + 4, sizeof(u32));
  const u8* lengths_blob = in + 8;
  const u8* raw = lengths_blob + lengths_bytes;

  std::vector<i32> lengths(count + kDecodeSlack);
  DecompressInts(lengths_blob, count, lengths.data());

  u32 base = static_cast<u32>(out->pool.size());
  out->pool.Append(raw, total_bytes);
  size_t slot_base = out->slots.size();
  out->slots.resize(slot_base + count);
  u32 offset = base;
  for (u32 i = 0; i < count; i++) {
    out->slots[slot_base + i] = StringSlot{offset, static_cast<u32>(lengths[i])};
    offset += static_cast<u32>(lengths[i]);
  }
}

// --- OneValue -------------------------------------------------------------------

double StringOneValue::EstimateRatio(const StringStats& stats,
                                     const StringSample&,
                                     const CompressionContext&) const {
  if (stats.unique_count != 1) return 0.0;
  return RatioOf(stats.total_bytes + stats.count * sizeof(u32),
                 sizeof(u32) + stats.max_length);
}

size_t StringOneValue::Compress(const StringsView& in, ByteBuffer* out,
                                const CompressionContext&) const {
  BTR_CHECK(in.count > 0);
  size_t start = out->size();
  std::string_view value = in.Get(0);
  out->AppendValue<u32>(static_cast<u32>(value.size()));
  out->Append(value.data(), value.size());
  return out->size() - start;
}

void StringOneValue::Decompress(const u8* in, u32 count, DecodedStrings* out,
                                const CompressionConfig&) const {
  u32 length;
  std::memcpy(&length, in, sizeof(u32));
  u32 base = static_cast<u32>(out->pool.size());
  out->pool.Append(in + 4, length);
  size_t slot_base = out->slots.size();
  out->slots.resize(slot_base + count);
  const StringSlot slot{base, length};
  for (u32 i = 0; i < count; i++) out->slots[slot_base + i] = slot;
}

}  // namespace btr
