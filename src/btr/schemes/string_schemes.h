// The string scheme pool (paper Figure 3, right): Uncompressed, OneValue,
// Dictionary, FSST-on-raw, and Dictionary with an FSST-compressed string
// pool. String decompression never copies dictionary strings: codes are
// replaced by fixed-size (offset, length) slots into a shared pool
// (paper Section 5).
#ifndef BTR_BTR_SCHEMES_STRING_SCHEMES_H_
#define BTR_BTR_SCHEMES_STRING_SCHEMES_H_

#include "btr/scheme.h"

namespace btr {

class StringUncompressed final : public StringScheme {
 public:
  StringSchemeCode code() const override { return StringSchemeCode::kUncompressed; }
  const char* name() const override { return "uncompressed"; }
  double EstimateRatio(const StringStats&, const StringSample&,
                       const CompressionContext&) const override;
  size_t Compress(const StringsView& in, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, DecodedStrings* out,
                  const CompressionConfig& config) const override;
};

class StringOneValue final : public StringScheme {
 public:
  StringSchemeCode code() const override { return StringSchemeCode::kOneValue; }
  const char* name() const override { return "one_value"; }
  double EstimateRatio(const StringStats&, const StringSample&,
                       const CompressionContext&) const override;
  size_t Compress(const StringsView& in, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, DecodedStrings* out,
                  const CompressionConfig& config) const override;
};

class StringDict final : public StringScheme {
 public:
  StringSchemeCode code() const override { return StringSchemeCode::kDict; }
  const char* name() const override { return "dict"; }
  double EstimateRatio(const StringStats&, const StringSample&,
                       const CompressionContext&) const override;
  size_t Compress(const StringsView& in, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, DecodedStrings* out,
                  const CompressionConfig& config) const override;
};

class StringFsst final : public StringScheme {
 public:
  StringSchemeCode code() const override { return StringSchemeCode::kFsst; }
  const char* name() const override { return "fsst"; }
  double EstimateRatio(const StringStats&, const StringSample&,
                       const CompressionContext&) const override;
  size_t Compress(const StringsView& in, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, DecodedStrings* out,
                  const CompressionConfig& config) const override;
};

class StringDictFsst final : public StringScheme {
 public:
  StringSchemeCode code() const override { return StringSchemeCode::kDictFsst; }
  const char* name() const override { return "dict_fsst"; }
  double EstimateRatio(const StringStats&, const StringSample&,
                       const CompressionContext&) const override;
  size_t Compress(const StringsView& in, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, DecodedStrings* out,
                  const CompressionConfig& config) const override;
};

namespace string_detail {

// Builds a first-appearance-order dictionary over `in` and dense codes.
struct DictBuild {
  std::vector<i32> codes;          // per input string
  std::vector<u32> entry_offsets;  // dict_count+1, into pool
  std::vector<u8> pool;            // concatenated distinct strings
  u32 dict_count() const {
    return static_cast<u32>(entry_offsets.empty() ? 0 : entry_offsets.size() - 1);
  }
};
DictBuild BuildDictionary(const StringsView& in);

// Translates a compressed code vector into (offset, length) slots against
// `tuples` (dictionary entry slots relative to the dict pool), adding
// `base` to every offset. Uses the fused RLE+Dict path (paper Section 5)
// when the code vector is RLE-compressed, the fusion is enabled, and the
// average run length exceeds 3.
void DecodeCodesToSlots(const u8* codes_blob, u32 count,
                        const StringSlot* tuples, u32 base,
                        const CompressionConfig& config, StringSlot* out);

}  // namespace string_detail

}  // namespace btr

#endif  // BTR_BTR_SCHEMES_STRING_SCHEMES_H_
