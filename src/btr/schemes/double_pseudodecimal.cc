// Pseudodecimal Encoding (paper Section 4): each double becomes
// (significant digits with sign, base-10 exponent); values that admit no
// exact decimal form with <= 32-bit digits and exponent <= 22 — as well as
// -0.0, infinities and NaNs — are stored verbatim as patches. Digits and
// exponents are integer vectors that cascade into the integer scheme pool
// (paper Section 4.2). Decompression is vectorized (Section 5): 4 doubles
// per step via cvtepi32_pd + gathered power-of-ten multipliers, falling
// back to scalar code only for vector blocks containing patches.
//
// Payload: [u32 patch_count][u32 digits_bytes][digits vector]
//          [u32 exps_bytes][exps vector][u32 bitmap_bytes][roaring bitmap]
//          [raw patch doubles]
#include <cmath>
#include <cstring>
#include <vector>

#include "bitmap/roaring.h"
#include "btr/scheme_picker.h"
#include "btr/schemes/double_schemes.h"
#include "btr/schemes/estimate_util.h"

namespace btr {

namespace pseudodecimal {

// frac10[e] == 10^-e. Stored (rather than computed) so encoder and decoder
// use bit-identical multipliers (paper Listing 2, footnote 1: multiplying
// is slightly faster than dividing during decompression).
extern const double kFrac10[kMaxExponent + 1];
const double kFrac10[kMaxExponent + 1] = {
    1.0,   1e-1,  1e-2,  1e-3,  1e-4,  1e-5,  1e-6,  1e-7,
    1e-8,  1e-9,  1e-10, 1e-11, 1e-12, 1e-13, 1e-14, 1e-15,
    1e-16, 1e-17, 1e-18, 1e-19, 1e-20, 1e-21, 1e-22};

Decimal EncodeSingle(double input) {
  if (!std::isfinite(input) || (input == 0.0 && std::signbit(input))) {
    return Decimal{0, kExponentException, input};
  }
  bool neg = input < 0;
  double dbl = neg ? -input : input;
  for (u32 exp = 0; exp <= kMaxExponent; exp++) {
    double cd = dbl / kFrac10[exp];
    if (cd > 2147483646.0) break;  // digits must fit 32 signed bits
    i64 digits = std::llround(cd);
    double orig = static_cast<double>(digits) * kFrac10[exp];
    if (orig == dbl) {
      return Decimal{static_cast<i32>(neg ? -digits : digits), exp, 0.0};
    }
  }
  return Decimal{0, kExponentException, input};
}

double DecodeSingle(i32 digits, u32 exp) {
  return static_cast<double>(digits) * kFrac10[exp];
}

}  // namespace pseudodecimal

using pseudodecimal::Decimal;
using pseudodecimal::EncodeSingle;
using pseudodecimal::kExponentException;
using pseudodecimal::kFrac10;

double DoublePseudodecimal::EstimateRatio(const DoubleStats& stats,
                                          const DoubleSample& sample,
                                          const CompressionContext& ctx) const {
  // Paper Section 4.2: disabled for columns with < 10% unique values
  // (dictionaries decompress faster at similar ratios)...
  if (stats.unique_count * 10 < stats.count) return 0.0;
  // ...and for columns with > 50% non-encodable exception values.
  u32 patches = 0;
  for (double v : sample.values) {
    if (EncodeSingle(v).exp == kExponentException) patches++;
  }
  if (patches * 2 > sample.values.size()) return 0.0;
  return EstimateDoubleBySample(*this, sample, ctx);
}

size_t DoublePseudodecimal::Compress(const double* in, u32 count,
                                     ByteBuffer* out,
                                     const CompressionContext& ctx) const {
  size_t start = out->size();
  std::vector<i32> digits(count);
  std::vector<i32> exps(count);
  std::vector<double> patches;
  RoaringBitmap patch_bitmap;
  for (u32 i = 0; i < count; i++) {
    Decimal d = EncodeSingle(in[i]);
    digits[i] = d.digits;
    exps[i] = static_cast<i32>(d.exp);
    if (d.exp == kExponentException) {
      patch_bitmap.Add(i);
      patches.push_back(d.patch);
    }
  }
  patch_bitmap.RunOptimize();

  out->AppendValue<u32>(static_cast<u32>(patches.size()));
  size_t digits_slot = out->size();
  out->AppendValue<u32>(0);
  u32 digits_bytes =
      static_cast<u32>(CompressInts(digits.data(), count, out, ctx.Descend()));
  std::memcpy(out->data() + digits_slot, &digits_bytes, sizeof(u32));
  size_t exps_slot = out->size();
  out->AppendValue<u32>(0);
  u32 exps_bytes =
      static_cast<u32>(CompressInts(exps.data(), count, out, ctx.Descend()));
  std::memcpy(out->data() + exps_slot, &exps_bytes, sizeof(u32));
  out->AppendValue<u32>(static_cast<u32>(patch_bitmap.SerializedSizeBytes()));
  patch_bitmap.SerializeTo(out);
  out->Append(patches.data(), patches.size() * sizeof(double));
  return out->size() - start;
}

void DoublePseudodecimal::Decompress(const u8* in, u32 count,
                                     double* out) const {
  u32 patch_count, digits_bytes;
  std::memcpy(&patch_count, in, sizeof(u32));
  std::memcpy(&digits_bytes, in + 4, sizeof(u32));
  const u8* digits_blob = in + 8;
  const u8* after_digits = digits_blob + digits_bytes;
  u32 exps_bytes;
  std::memcpy(&exps_bytes, after_digits, sizeof(u32));
  const u8* exps_blob = after_digits + 4;
  const u8* after_exps = exps_blob + exps_bytes;
  u32 bitmap_bytes;
  std::memcpy(&bitmap_bytes, after_exps, sizeof(u32));
  const u8* bitmap_blob = after_exps + 4;
  const u8* patch_bytes = bitmap_blob + bitmap_bytes;
  auto load_patch = [&](size_t k) {
    double v;  // may be unaligned in the payload
    std::memcpy(&v, patch_bytes + k * sizeof(double), sizeof(double));
    return v;
  };

  std::vector<i32> digits(count + kDecodeSlack);
  std::vector<i32> exps(count + kDecodeSlack);
  DecompressInts(digits_blob, count, digits.data());
  DecompressInts(exps_blob, count, exps.data());

  // Patch positions in ascending order; consumed front to back.
  std::vector<u32> patch_positions;
  if (patch_count > 0) {
    RoaringBitmap bitmap = RoaringBitmap::Deserialize(bitmap_blob, nullptr);
    patch_positions = bitmap.ToVector();
    BTR_DCHECK(patch_positions.size() == patch_count);
  }
  size_t next_patch = 0;
  auto patch_position = [&](size_t k) {
    return k < patch_positions.size() ? patch_positions[k] : count;
  };

  u32 i = 0;
#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    for (; i + 4 <= count; i += 4) {
      if (patch_position(next_patch) < i + 4) {
        // Scalar fallback for blocks containing patches (paper Section 5).
        for (u32 j = i; j < i + 4; j++) {
          if (patch_position(next_patch) == j) {
            out[j] = load_patch(next_patch++);
          } else {
            out[j] = pseudodecimal::DecodeSingle(digits[j], exps[j]);
          }
        }
        continue;
      }
      __m128i dig =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(digits.data() + i));
      __m128i exp =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(exps.data() + i));
      __m256d values = _mm256_cvtepi32_pd(dig);
      __m256d multipliers = _mm256_i32gather_pd(kFrac10, exp, 8);
      _mm256_storeu_pd(out + i, _mm256_mul_pd(values, multipliers));
    }
  }
#endif
  for (; i < count; i++) {
    if (patch_position(next_patch) == i) {
      out[i] = load_patch(next_patch++);
    } else {
      out[i] = pseudodecimal::DecodeSingle(digits[i], exps[i]);
    }
  }
  BTR_DCHECK(next_patch == patch_count);
}

}  // namespace btr
