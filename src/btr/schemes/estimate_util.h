// Shared helper: estimate a scheme's compression ratio by actually
// compressing the sample with it (paper Section 3.1, step 3). Cascades
// inside the sample compression run with the same recursion budget the
// real compression would get, so the estimate reflects the full cascade.
#ifndef BTR_BTR_SCHEMES_ESTIMATE_UTIL_H_
#define BTR_BTR_SCHEMES_ESTIMATE_UTIL_H_

#include "btr/scheme.h"

namespace btr {

inline double RatioOf(size_t input_bytes, size_t output_bytes) {
  if (output_bytes == 0) return 0.0;
  return static_cast<double>(input_bytes) / static_cast<double>(output_bytes);
}

inline double EstimateIntBySample(const IntScheme& scheme,
                                  const IntSample& sample,
                                  const CompressionContext& ctx) {
  if (sample.values.empty()) return 0.0;
  ByteBuffer scratch;
  CompressionContext estimate_ctx = ctx;
  estimate_ctx.estimating = true;
  size_t out_bytes = scheme.Compress(sample.values.data(),
                                     static_cast<u32>(sample.values.size()),
                                     &scratch, estimate_ctx);
  return RatioOf(sample.values.size() * sizeof(i32), out_bytes);
}

inline double EstimateDoubleBySample(const DoubleScheme& scheme,
                                     const DoubleSample& sample,
                                     const CompressionContext& ctx) {
  if (sample.values.empty()) return 0.0;
  ByteBuffer scratch;
  CompressionContext estimate_ctx = ctx;
  estimate_ctx.estimating = true;
  size_t out_bytes = scheme.Compress(sample.values.data(),
                                     static_cast<u32>(sample.values.size()),
                                     &scratch, estimate_ctx);
  return RatioOf(sample.values.size() * sizeof(double), out_bytes);
}

inline double EstimateStringBySample(const StringScheme& scheme,
                                     const StringSample& sample,
                                     const CompressionContext& ctx) {
  StringsView view = sample.View();
  if (view.count == 0) return 0.0;
  ByteBuffer scratch;
  CompressionContext estimate_ctx = ctx;
  estimate_ctx.estimating = true;
  size_t out_bytes = scheme.Compress(view, &scratch, estimate_ctx);
  // Input footprint counts bytes plus one 4-byte offset per string,
  // consistent with Column::UncompressedBytes().
  return RatioOf(view.TotalBytes() + view.count * sizeof(u32), out_bytes);
}

}  // namespace btr

#endif  // BTR_BTR_SCHEMES_ESTIMATE_UTIL_H_
