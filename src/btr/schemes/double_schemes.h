// The double scheme pool (paper Figure 3, middle): Uncompressed, OneValue,
// RLE, Dictionary, Frequency and the novel Pseudodecimal Encoding
// (paper Section 4).
#ifndef BTR_BTR_SCHEMES_DOUBLE_SCHEMES_H_
#define BTR_BTR_SCHEMES_DOUBLE_SCHEMES_H_

#include "btr/scheme.h"

namespace btr {

class DoubleUncompressed final : public DoubleScheme {
 public:
  DoubleSchemeCode code() const override { return DoubleSchemeCode::kUncompressed; }
  const char* name() const override { return "uncompressed"; }
  double EstimateRatio(const DoubleStats&, const DoubleSample&,
                       const CompressionContext&) const override;
  size_t Compress(const double* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, double* out) const override;
};

class DoubleOneValue final : public DoubleScheme {
 public:
  DoubleSchemeCode code() const override { return DoubleSchemeCode::kOneValue; }
  const char* name() const override { return "one_value"; }
  double EstimateRatio(const DoubleStats&, const DoubleSample&,
                       const CompressionContext&) const override;
  size_t Compress(const double* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, double* out) const override;
};

class DoubleRle final : public DoubleScheme {
 public:
  DoubleSchemeCode code() const override { return DoubleSchemeCode::kRle; }
  const char* name() const override { return "rle"; }
  double EstimateRatio(const DoubleStats&, const DoubleSample&,
                       const CompressionContext&) const override;
  size_t Compress(const double* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, double* out) const override;
};

class DoubleDict final : public DoubleScheme {
 public:
  DoubleSchemeCode code() const override { return DoubleSchemeCode::kDict; }
  const char* name() const override { return "dict"; }
  double EstimateRatio(const DoubleStats&, const DoubleSample&,
                       const CompressionContext&) const override;
  size_t Compress(const double* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, double* out) const override;
};

class DoubleFrequency final : public DoubleScheme {
 public:
  DoubleSchemeCode code() const override { return DoubleSchemeCode::kFrequency; }
  const char* name() const override { return "frequency"; }
  double EstimateRatio(const DoubleStats&, const DoubleSample&,
                       const CompressionContext&) const override;
  size_t Compress(const double* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, double* out) const override;
};

class DoublePseudodecimal final : public DoubleScheme {
 public:
  DoubleSchemeCode code() const override {
    return DoubleSchemeCode::kPseudodecimal;
  }
  const char* name() const override { return "pseudodecimal"; }
  double EstimateRatio(const DoubleStats&, const DoubleSample&,
                       const CompressionContext&) const override;
  size_t Compress(const double* in, u32 count, ByteBuffer* out,
                  const CompressionContext& ctx) const override;
  void Decompress(const u8* in, u32 count, double* out) const override;
};

namespace pseudodecimal {

// One encoded double: significant digits with sign and a base-10 exponent
// (paper Listing 2); exp == kExponentException marks a patch.
inline constexpr u32 kMaxExponent = 22;
inline constexpr u32 kExponentException = 23;

struct Decimal {
  i32 digits;
  u32 exp;        // 0..22, or kExponentException
  double patch;   // original value when exp == kExponentException
};

Decimal EncodeSingle(double input);
double DecodeSingle(i32 digits, u32 exp);

}  // namespace pseudodecimal

}  // namespace btr

#endif  // BTR_BTR_SCHEMES_DOUBLE_SCHEMES_H_
