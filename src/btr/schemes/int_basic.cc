// Uncompressed, OneValue, FastBP128 and FastPFOR integer schemes.
#include <cstring>

#include "bitpack/bitpack.h"
#include "btr/schemes/estimate_util.h"
#include "btr/schemes/int_schemes.h"

namespace btr {

// --- Uncompressed ---------------------------------------------------------------

double IntUncompressed::EstimateRatio(const IntStats&, const IntSample&,
                                      const CompressionContext&) const {
  return 1.0;
}

size_t IntUncompressed::Compress(const i32* in, u32 count, ByteBuffer* out,
                                 const CompressionContext&) const {
  out->Append(in, count * sizeof(i32));
  return count * sizeof(i32);
}

void IntUncompressed::Decompress(const u8* in, u32 count, i32* out) const {
  std::memcpy(out, in, count * sizeof(i32));
}

// --- OneValue ---------------------------------------------------------------------

double IntOneValue::EstimateRatio(const IntStats& stats, const IntSample&,
                                  const CompressionContext&) const {
  if (stats.unique_count != 1) return 0.0;
  return RatioOf(stats.count * sizeof(i32), sizeof(i32));
}

size_t IntOneValue::Compress(const i32* in, u32 count, ByteBuffer* out,
                             const CompressionContext&) const {
  BTR_CHECK(count > 0);
  out->AppendValue<i32>(in[0]);
  return sizeof(i32);
}

void IntOneValue::Decompress(const u8* in, u32 count, i32* out) const {
  i32 value;
  std::memcpy(&value, in, sizeof(i32));
#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    const __m256i v = _mm256_set1_epi32(value);
    i32* end = out + count;
    for (i32* p = out; p < end; p += 8) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }
    return;
  }
#endif
  for (u32 i = 0; i < count; i++) out[i] = value;
}

// --- FastBP128 ----------------------------------------------------------------------

double IntBp128::EstimateRatio(const IntStats&, const IntSample& sample,
                               const CompressionContext&) const {
  // Exact compressed size is cheap to compute; no cascading inside.
  size_t bytes = bitpack::Bp128CompressedSize(
      sample.values.data(), static_cast<u32>(sample.values.size()));
  return RatioOf(sample.values.size() * sizeof(i32), bytes);
}

size_t IntBp128::Compress(const i32* in, u32 count, ByteBuffer* out,
                          const CompressionContext&) const {
  return bitpack::Bp128Compress(in, count, out);
}

void IntBp128::Decompress(const u8* in, u32 count, i32* out) const {
  bitpack::Bp128Decompress(in, count, out);
}

// --- FastPFOR -----------------------------------------------------------------------

double IntPfor::EstimateRatio(const IntStats&, const IntSample& sample,
                              const CompressionContext&) const {
  size_t bytes = bitpack::PforCompressedSize(
      sample.values.data(), static_cast<u32>(sample.values.size()));
  return RatioOf(sample.values.size() * sizeof(i32), bytes);
}

size_t IntPfor::Compress(const i32* in, u32 count, ByteBuffer* out,
                         const CompressionContext&) const {
  return bitpack::PforCompress(in, count, out);
}

void IntPfor::Decompress(const u8* in, u32 count, i32* out) const {
  bitpack::PforDecompress(in, count, out);
}

}  // namespace btr
