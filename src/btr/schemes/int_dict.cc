// Dictionary encoding for integers: distinct values get dense codes in
// first-appearance order; the code vector cascades (paper Figure 3).
// Decompression uses an AVX2 gather (paper Listing 3, bottom).
//
// Payload: [u32 dict_count][u32 codes_bytes][codes vector][raw dict i32s]
#include <cstring>
#include <unordered_map>
#include <vector>

#include "btr/scheme_picker.h"
#include "btr/schemes/estimate_util.h"
#include "btr/schemes/int_schemes.h"

namespace btr {

double IntDict::EstimateRatio(const IntStats& stats, const IntSample& sample,
                              const CompressionContext& ctx) const {
  if (stats.unique_count == stats.count) return 0.0;  // codes would be 1:1
  return EstimateIntBySample(*this, sample, ctx);
}

size_t IntDict::Compress(const i32* in, u32 count, ByteBuffer* out,
                         const CompressionContext& ctx) const {
  size_t start = out->size();
  std::unordered_map<i32, i32> code_of;
  code_of.reserve(1024);
  std::vector<i32> dict;
  std::vector<i32> codes(count);
  for (u32 i = 0; i < count; i++) {
    auto [it, inserted] = code_of.try_emplace(in[i], static_cast<i32>(dict.size()));
    if (inserted) dict.push_back(in[i]);
    codes[i] = it->second;
  }
  out->AppendValue<u32>(static_cast<u32>(dict.size()));
  size_t size_slot = out->size();
  out->AppendValue<u32>(0);
  u32 codes_bytes =
      static_cast<u32>(CompressInts(codes.data(), count, out, ctx.Descend()));
  std::memcpy(out->data() + size_slot, &codes_bytes, sizeof(u32));
  out->Append(dict.data(), dict.size() * sizeof(i32));
  return out->size() - start;
}

void IntDict::Decompress(const u8* in, u32 count, i32* out) const {
  u32 dict_count, codes_bytes;
  std::memcpy(&dict_count, in, sizeof(u32));
  std::memcpy(&codes_bytes, in + 4, sizeof(u32));
  const u8* codes_blob = in + 8;
  // The dictionary sits at an arbitrary byte offset; copy to aligned
  // scratch (it is small) so scalar loads and gathers stay well-defined.
  std::vector<i32> dict_values(dict_count);
  std::memcpy(dict_values.data(), codes_blob + codes_bytes,
              dict_count * sizeof(i32));
  const i32* dict = dict_values.data();

  // Fused RLE+Dict (paper Section 5): when the code vector is
  // RLE-compressed with long runs, skip the intermediate code array and
  // broadcast looked-up values run by run.
  if (PeekIntScheme(codes_blob) == IntSchemeCode::kRle) {
    const u8* rle = codes_blob + 1;
    u32 run_count, values_bytes;
    std::memcpy(&run_count, rle, sizeof(u32));
    std::memcpy(&values_bytes, rle + 4, sizeof(u32));
    if (run_count * 3 <= count) {  // fusing hurts below avg run length 3
      std::vector<i32> run_codes(run_count + kDecodeSlack);
      std::vector<i32> run_lengths(run_count + kDecodeSlack);
      DecompressInts(rle + 8, run_count, run_codes.data());
      DecompressInts(rle + 8 + values_bytes, run_count, run_lengths.data());
      i32* dst = out;
#if BTR_HAS_AVX2
      if (SimdPolicy::Enabled()) {
        for (u32 r = 0; r < run_count; r++) {
          const __m256i v = _mm256_set1_epi32(dict[run_codes[r]]);
          i32* target = dst + run_lengths[r];
          for (; dst < target; dst += 8) {
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
          }
          dst = target;
        }
        BTR_DCHECK(dst == out + count);
        return;
      }
#endif
      for (u32 r = 0; r < run_count; r++) {
        i32 value = dict[run_codes[r]];
        for (i32 j = 0; j < run_lengths[r]; j++) *dst++ = value;
      }
      BTR_DCHECK(dst == out + count);
      return;
    }
  }

  std::vector<i32> codes(count + kDecodeSlack);
  DecompressInts(codes_blob, count, codes.data());

#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled() && count >= 8) {
    u32 i = 0;
    // 4x unrolled gather loop (paper Section 5).
    for (; i + 32 <= count; i += 32) {
      for (u32 u = 0; u < 4; u++) {
        __m256i c = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(codes.data() + i + u * 8));
        __m256i v = _mm256_i32gather_epi32(dict, c, 4);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + u * 8), v);
      }
    }
    for (; i + 8 <= count; i += 8) {
      __m256i c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(codes.data() + i));
      __m256i v = _mm256_i32gather_epi32(dict, c, 4);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    }
    for (; i < count; i++) out[i] = dict[codes[i]];
    return;
  }
#endif
  for (u32 i = 0; i < count; i++) out[i] = dict[codes[i]];
}

}  // namespace btr
