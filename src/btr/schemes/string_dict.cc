// Dictionary string schemes. Decompression replaces each code with a
// fixed-size (offset, length) slot into the shared pool — no string copies
// (paper Section 5, "String Dictionaries": >10x on low-cardinality
// columns). The code vector cascades into the integer pool; when it lands
// on RLE with average run length > 3, the fused RLE+Dict path writes slot
// runs directly, skipping the intermediate code array.
//
// Dict payload:      [u32 dict_count][u32 pool_bytes][u32 codes_bytes]
//                    [codes vector][dict tuples][dict pool]
// DictFsst payload:  [u32 dict_count][u32 pool_bytes][u32 codes_bytes]
//                    [codes vector][u32 lens_bytes][dict lengths vector]
//                    [fsst table][u32 compressed_pool_bytes][compressed pool]
#include <cstring>
#include <unordered_map>
#include <vector>

#include "fsst/fsst.h"
#include "btr/scheme_picker.h"
#include "btr/schemes/estimate_util.h"
#include "btr/schemes/string_schemes.h"

namespace btr {

namespace string_detail {

DictBuild BuildDictionary(const StringsView& in) {
  DictBuild build;
  build.codes.resize(in.count);
  build.entry_offsets.push_back(0);
  std::unordered_map<std::string_view, i32> code_of;
  code_of.reserve(1024);
  for (u32 i = 0; i < in.count; i++) {
    std::string_view s = in.Get(i);
    auto [it, inserted] =
        code_of.try_emplace(s, static_cast<i32>(build.entry_offsets.size() - 1));
    if (inserted) {
      build.pool.insert(build.pool.end(), s.begin(), s.end());
      build.entry_offsets.push_back(static_cast<u32>(build.pool.size()));
    }
    build.codes[i] = it->second;
  }
  return build;
}

namespace {

// Reads the RLE payload the integer cascade produced for the codes.
// Returns false when the blob is not RLE or fusion does not pay off.
bool TryFusedRleDecode(const u8* codes_blob, u32 count, const StringSlot* tuples,
                       u32 base, const CompressionConfig& config,
                       StringSlot* out) {
  if (!config.fused_rle_dict) return false;
  if (PeekIntScheme(codes_blob) != IntSchemeCode::kRle) return false;
  const u8* payload = codes_blob + 1;
  u32 run_count, values_bytes;
  std::memcpy(&run_count, payload, sizeof(u32));
  std::memcpy(&values_bytes, payload + 4, sizeof(u32));
  // Paper Section 5: fusing hurts below an average run length of 3.
  if (run_count * 3 > count) return false;

  std::vector<i32> run_codes(run_count + kDecodeSlack);
  std::vector<i32> run_lengths(run_count + kDecodeSlack);
  DecompressInts(payload + 8, run_count, run_codes.data());
  DecompressInts(payload + 8 + values_bytes, run_count, run_lengths.data());

#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    StringSlot* dst = out;
    for (u32 run = 0; run < run_count; run++) {
      StringSlot slot = tuples[run_codes[run]];
      slot.offset += base;
      u64 slot_bits;
      std::memcpy(&slot_bits, &slot, sizeof(u64));
      const __m256i v = _mm256_set1_epi64x(static_cast<long long>(slot_bits));
      StringSlot* target = dst + run_lengths[run];
      for (; dst < target; dst += 4) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
      }
      dst = target;
    }
    BTR_DCHECK(dst == out + count);
    return true;
  }
#endif
  StringSlot* dst = out;
  for (u32 run = 0; run < run_count; run++) {
    StringSlot slot = tuples[run_codes[run]];
    slot.offset += base;
    for (i32 j = 0; j < run_lengths[run]; j++) *dst++ = slot;
  }
  BTR_DCHECK(dst == out + count);
  return true;
}

}  // namespace

void DecodeCodesToSlots(const u8* codes_blob, u32 count,
                        const StringSlot* tuples, u32 base,
                        const CompressionConfig& config, StringSlot* out) {
  if (TryFusedRleDecode(codes_blob, count, tuples, base, config, out)) return;

  std::vector<i32> codes(count + kDecodeSlack);
  DecompressInts(codes_blob, count, codes.data());

#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled() && count >= 4) {
    // Slots are 64-bit tuples: gather 4 per step, then add the pool base
    // to the offset halves (no carry: offsets stay below 2^32).
    const __m256i base_v = _mm256_set1_epi64x(static_cast<long long>(base));
    const long long* tuple_base = reinterpret_cast<const long long*>(tuples);
    u32 i = 0;
    for (; i + 16 <= count; i += 16) {
      for (u32 u = 0; u < 4; u++) {
        __m128i c = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(codes.data() + i + u * 4));
        __m256i v = _mm256_i32gather_epi64(tuple_base, c, 8);
        v = _mm256_add_epi64(v, base_v);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + u * 4), v);
      }
    }
    for (; i + 4 <= count; i += 4) {
      __m128i c =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes.data() + i));
      __m256i v = _mm256_i32gather_epi64(tuple_base, c, 8);
      v = _mm256_add_epi64(v, base_v);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    }
    for (; i < count; i++) {
      StringSlot slot = tuples[codes[i]];
      slot.offset += base;
      out[i] = slot;
    }
    return;
  }
#endif
  for (u32 i = 0; i < count; i++) {
    StringSlot slot = tuples[codes[i]];
    slot.offset += base;
    out[i] = slot;
  }
}

}  // namespace string_detail

using string_detail::BuildDictionary;
using string_detail::DecodeCodesToSlots;
using string_detail::DictBuild;

// --- Dict ------------------------------------------------------------------------

double StringDict::EstimateRatio(const StringStats& stats,
                                 const StringSample& sample,
                                 const CompressionContext& ctx) const {
  if (stats.unique_count == stats.count) return 0.0;
  return EstimateStringBySample(*this, sample, ctx);
}

size_t StringDict::Compress(const StringsView& in, ByteBuffer* out,
                            const CompressionContext& ctx) const {
  size_t start = out->size();
  DictBuild dict = BuildDictionary(in);
  out->AppendValue<u32>(dict.dict_count());
  out->AppendValue<u32>(static_cast<u32>(dict.pool.size()));
  size_t size_slot = out->size();
  out->AppendValue<u32>(0);
  u32 codes_bytes = static_cast<u32>(
      CompressInts(dict.codes.data(), in.count, out, ctx.Descend()));
  std::memcpy(out->data() + size_slot, &codes_bytes, sizeof(u32));
  for (u32 d = 0; d < dict.dict_count(); d++) {
    StringSlot tuple{dict.entry_offsets[d],
                     dict.entry_offsets[d + 1] - dict.entry_offsets[d]};
    out->AppendValue<StringSlot>(tuple);
  }
  out->Append(dict.pool.data(), dict.pool.size());
  return out->size() - start;
}

void StringDict::Decompress(const u8* in, u32 count, DecodedStrings* out,
                            const CompressionConfig& config) const {
  u32 dict_count, pool_bytes, codes_bytes;
  std::memcpy(&dict_count, in, sizeof(u32));
  std::memcpy(&pool_bytes, in + 4, sizeof(u32));
  std::memcpy(&codes_bytes, in + 8, sizeof(u32));
  const u8* codes_blob = in + 12;
  const u8* tuple_bytes = codes_blob + codes_bytes;
  const u8* pool = tuple_bytes + dict_count * sizeof(StringSlot);

  // Tuples may be unaligned in the payload; copy to an aligned scratch.
  std::vector<StringSlot> tuples(dict_count);
  std::memcpy(tuples.data(), tuple_bytes, dict_count * sizeof(StringSlot));

  u32 base = static_cast<u32>(out->pool.size());
  out->pool.Append(pool, pool_bytes);
  size_t slot_base = out->slots.size();
  out->slots.resize(slot_base + count + kDecodeSlack);
  DecodeCodesToSlots(codes_blob, count, tuples.data(), base, config,
                     out->slots.data() + slot_base);
  out->slots.resize(slot_base + count);
}

// --- DictFsst ----------------------------------------------------------------------

double StringDictFsst::EstimateRatio(const StringStats& stats,
                                     const StringSample& sample,
                                     const CompressionContext& ctx) const {
  if (stats.unique_count == stats.count) return 0.0;
  // FSST needs material to learn from; tiny dictionaries go to plain Dict.
  if (stats.unique_bytes < 256) return 0.0;
  return EstimateStringBySample(*this, sample, ctx);
}

size_t StringDictFsst::Compress(const StringsView& in, ByteBuffer* out,
                                const CompressionContext& ctx) const {
  size_t start = out->size();
  DictBuild dict = BuildDictionary(in);
  out->AppendValue<u32>(dict.dict_count());
  out->AppendValue<u32>(static_cast<u32>(dict.pool.size()));
  size_t size_slot = out->size();
  out->AppendValue<u32>(0);
  u32 codes_bytes = static_cast<u32>(
      CompressInts(dict.codes.data(), in.count, out, ctx.Descend()));
  std::memcpy(out->data() + size_slot, &codes_bytes, sizeof(u32));

  std::vector<i32> lengths(dict.dict_count());
  for (u32 d = 0; d < dict.dict_count(); d++) {
    lengths[d] =
        static_cast<i32>(dict.entry_offsets[d + 1] - dict.entry_offsets[d]);
  }
  size_t lens_slot = out->size();
  out->AppendValue<u32>(0);
  u32 lens_bytes = static_cast<u32>(CompressInts(
      lengths.data(), dict.dict_count(), out, ctx.Descend()));
  std::memcpy(out->data() + lens_slot, &lens_bytes, sizeof(u32));

  size_t train_bytes = ctx.estimating
                           ? std::min<size_t>(dict.pool.size(), 2048)
                           : dict.pool.size();
  fsst::SymbolTable table =
      fsst::SymbolTable::Build(dict.pool.data(), train_bytes);
  table.SerializeTo(out);
  size_t compressed_slot = out->size();
  out->AppendValue<u32>(0);
  u32 compressed_bytes = static_cast<u32>(
      fsst::CompressBlock(table, dict.pool.data(), dict.pool.size(), out));
  std::memcpy(out->data() + compressed_slot, &compressed_bytes, sizeof(u32));
  return out->size() - start;
}

void StringDictFsst::Decompress(const u8* in, u32 count, DecodedStrings* out,
                                const CompressionConfig& config) const {
  u32 dict_count, pool_bytes, codes_bytes;
  std::memcpy(&dict_count, in, sizeof(u32));
  std::memcpy(&pool_bytes, in + 4, sizeof(u32));
  std::memcpy(&codes_bytes, in + 8, sizeof(u32));
  const u8* codes_blob = in + 12;
  const u8* cursor = codes_blob + codes_bytes;
  u32 lens_bytes;
  std::memcpy(&lens_bytes, cursor, sizeof(u32));
  const u8* lens_blob = cursor + 4;
  cursor = lens_blob + lens_bytes;
  size_t table_bytes;
  fsst::SymbolTable table = fsst::SymbolTable::Deserialize(cursor, &table_bytes);
  cursor += table_bytes;
  u32 compressed_bytes;
  std::memcpy(&compressed_bytes, cursor, sizeof(u32));
  const u8* compressed_pool = cursor + 4;

  // Decompress the dictionary pool once (paper Section 5: one block-wise
  // FSST call instead of per-string calls).
  u32 base = static_cast<u32>(out->pool.size());
  out->pool.Resize(base + pool_bytes);
  size_t produced =
      table.Decompress(compressed_pool, compressed_bytes, out->pool.data() + base);
  BTR_CHECK(produced == pool_bytes);

  std::vector<i32> lengths(dict_count + kDecodeSlack);
  DecompressInts(lens_blob, dict_count, lengths.data());
  std::vector<StringSlot> tuples(dict_count);
  u32 offset = 0;
  for (u32 d = 0; d < dict_count; d++) {
    tuples[d] = StringSlot{offset, static_cast<u32>(lengths[d])};
    offset += static_cast<u32>(lengths[d]);
  }

  size_t slot_base = out->slots.size();
  out->slots.resize(slot_base + count + kDecodeSlack);
  DecodeCodesToSlots(codes_blob, count, tuples.data(), base, config,
                     out->slots.data() + slot_base);
  out->slots.resize(slot_base + count);
}

}  // namespace btr
