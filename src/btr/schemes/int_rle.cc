// Run-Length Encoding for integers with cascaded value and run-length
// vectors (paper Listing 1) and vectorized run expansion (paper Listing 3,
// top): AVX2 stores intentionally overrun short runs and the cursor is
// corrected afterwards, relying on the caller's kDecodeSlack.
//
// Payload: [u32 run_count][u32 values_bytes][values vector][lengths vector]
#include <cstring>
#include <vector>

#include "btr/scheme_picker.h"
#include "btr/schemes/estimate_util.h"
#include "btr/schemes/int_schemes.h"

namespace btr {

double IntRle::EstimateRatio(const IntStats& stats, const IntSample& sample,
                             const CompressionContext& ctx) const {
  if (stats.AverageRunLength() < 2.0) return 0.0;  // paper Section 3.1
  return EstimateIntBySample(*this, sample, ctx);
}

size_t IntRle::Compress(const i32* in, u32 count, ByteBuffer* out,
                        const CompressionContext& ctx) const {
  size_t start = out->size();
  std::vector<i32> values;
  std::vector<i32> lengths;
  u32 i = 0;
  while (i < count) {
    u32 run_start = i;
    i32 value = in[i];
    while (i < count && in[i] == value) i++;
    values.push_back(value);
    lengths.push_back(static_cast<i32>(i - run_start));
  }
  u32 run_count = static_cast<u32>(values.size());
  out->AppendValue<u32>(run_count);
  size_t size_slot = out->size();
  out->AppendValue<u32>(0);  // patched below
  u32 values_bytes = static_cast<u32>(
      CompressInts(values.data(), run_count, out, ctx.Descend()));
  std::memcpy(out->data() + size_slot, &values_bytes, sizeof(u32));
  CompressInts(lengths.data(), run_count, out, ctx.Descend());
  return out->size() - start;
}

void IntRle::Decompress(const u8* in, u32 count, i32* out) const {
  u32 run_count, values_bytes;
  std::memcpy(&run_count, in, sizeof(u32));
  std::memcpy(&values_bytes, in + 4, sizeof(u32));
  const u8* values_blob = in + 8;
  const u8* lengths_blob = values_blob + values_bytes;

  std::vector<i32> values(run_count + kDecodeSlack);
  std::vector<i32> lengths(run_count + kDecodeSlack);
  DecompressInts(values_blob, run_count, values.data());
  DecompressInts(lengths_blob, run_count, lengths.data());

#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    i32* dst = out;
    for (u32 run = 0; run < run_count; run++) {
      i32* target = dst + lengths[run];
      const __m256i v = _mm256_set1_epi32(values[run]);
      for (; dst < target; dst += 8) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
      }
      dst = target;  // correct the overshoot (paper Listing 3)
    }
    BTR_DCHECK(dst == out + count);
    (void)count;
    return;
  }
#endif
  i32* dst = out;
  for (u32 run = 0; run < run_count; run++) {
    i32 value = values[run];
    for (i32 j = 0; j < lengths[run]; j++) *dst++ = value;
  }
  BTR_DCHECK(dst == out + count);
  (void)count;
}

}  // namespace btr
