// FSST applied directly to the string block (paper Figure 3, right; the
// input strings are concatenated and compressed against one symbol table).
// Per the paper's Section 5 optimization, compressed per-string offsets
// are not stored: the whole blob is decompressed with one call and slots
// are rebuilt from the *uncompressed* lengths, which cascade as integers.
//
// Payload: [u32 total_bytes][u32 lengths_bytes][lengths vector]
//          [fsst table][u32 compressed_bytes][compressed blob]
#include <cstring>
#include <vector>

#include "fsst/fsst.h"
#include "btr/scheme_picker.h"
#include "btr/schemes/estimate_util.h"
#include "btr/schemes/string_schemes.h"

namespace btr {

double StringFsst::EstimateRatio(const StringStats& stats,
                                 const StringSample& sample,
                                 const CompressionContext& ctx) const {
  if (stats.total_bytes < 256) return 0.0;  // nothing to learn from
  return EstimateStringBySample(*this, sample, ctx);
}

size_t StringFsst::Compress(const StringsView& in, ByteBuffer* out,
                            const CompressionContext& ctx) const {
  size_t start = out->size();
  const u8* raw = in.data + in.offsets[0];
  u32 total_bytes = in.TotalBytes();
  out->AppendValue<u32>(total_bytes);

  std::vector<i32> lengths(in.count);
  for (u32 i = 0; i < in.count; i++) lengths[i] = static_cast<i32>(in.Length(i));
  size_t lens_slot = out->size();
  out->AppendValue<u32>(0);
  u32 lengths_bytes = static_cast<u32>(
      CompressInts(lengths.data(), in.count, out, ctx.Descend()));
  std::memcpy(out->data() + lens_slot, &lengths_bytes, sizeof(u32));

  // During ratio estimation a smaller training sample is plenty; keeps
  // scheme selection cheap (paper Section 3.1).
  size_t train_bytes =
      ctx.estimating ? std::min<size_t>(total_bytes, 2048) : total_bytes;
  fsst::SymbolTable table = fsst::SymbolTable::Build(raw, train_bytes);
  table.SerializeTo(out);
  size_t compressed_slot = out->size();
  out->AppendValue<u32>(0);
  u32 compressed_bytes =
      static_cast<u32>(fsst::CompressBlock(table, raw, total_bytes, out));
  std::memcpy(out->data() + compressed_slot, &compressed_bytes, sizeof(u32));
  return out->size() - start;
}

void StringFsst::Decompress(const u8* in, u32 count, DecodedStrings* out,
                            const CompressionConfig&) const {
  u32 total_bytes, lengths_bytes;
  std::memcpy(&total_bytes, in, sizeof(u32));
  std::memcpy(&lengths_bytes, in + 4, sizeof(u32));
  const u8* lengths_blob = in + 8;
  const u8* cursor = lengths_blob + lengths_bytes;
  size_t table_bytes;
  fsst::SymbolTable table = fsst::SymbolTable::Deserialize(cursor, &table_bytes);
  cursor += table_bytes;
  u32 compressed_bytes;
  std::memcpy(&compressed_bytes, cursor, sizeof(u32));
  const u8* blob = cursor + 4;

  u32 base = static_cast<u32>(out->pool.size());
  out->pool.Resize(base + total_bytes);
  size_t produced = table.Decompress(blob, compressed_bytes, out->pool.data() + base);
  BTR_CHECK(produced == total_bytes);

  std::vector<i32> lengths(count + kDecodeSlack);
  DecompressInts(lengths_blob, count, lengths.data());
  size_t slot_base = out->slots.size();
  out->slots.resize(slot_base + count);
  u32 offset = base;
  for (u32 i = 0; i < count; i++) {
    out->slots[slot_base + i] = StringSlot{offset, static_cast<u32>(lengths[i])};
    offset += static_cast<u32>(lengths[i]);
  }
}

}  // namespace btr
