// Scheme registries and name tables.
#include "btr/scheme.h"
#include "btr/schemes/double_schemes.h"
#include "btr/schemes/int_schemes.h"
#include "btr/schemes/string_schemes.h"

namespace btr {

const IntScheme& GetIntScheme(IntSchemeCode code) {
  static const IntUncompressed* uncompressed = new IntUncompressed();
  static const IntOneValue* one_value = new IntOneValue();
  static const IntRle* rle = new IntRle();
  static const IntDict* dict = new IntDict();
  static const IntFrequency* frequency = new IntFrequency();
  static const IntBp128* bp128 = new IntBp128();
  static const IntPfor* pfor = new IntPfor();
  switch (code) {
    case IntSchemeCode::kUncompressed: return *uncompressed;
    case IntSchemeCode::kOneValue: return *one_value;
    case IntSchemeCode::kRle: return *rle;
    case IntSchemeCode::kDict: return *dict;
    case IntSchemeCode::kFrequency: return *frequency;
    case IntSchemeCode::kBp128: return *bp128;
    case IntSchemeCode::kPfor: return *pfor;
  }
  BTR_CHECK_MSG(false, "invalid int scheme code");
  return *uncompressed;
}

const DoubleScheme& GetDoubleScheme(DoubleSchemeCode code) {
  static const DoubleUncompressed* uncompressed = new DoubleUncompressed();
  static const DoubleOneValue* one_value = new DoubleOneValue();
  static const DoubleRle* rle = new DoubleRle();
  static const DoubleDict* dict = new DoubleDict();
  static const DoubleFrequency* frequency = new DoubleFrequency();
  static const DoublePseudodecimal* pseudodecimal = new DoublePseudodecimal();
  switch (code) {
    case DoubleSchemeCode::kUncompressed: return *uncompressed;
    case DoubleSchemeCode::kOneValue: return *one_value;
    case DoubleSchemeCode::kRle: return *rle;
    case DoubleSchemeCode::kDict: return *dict;
    case DoubleSchemeCode::kFrequency: return *frequency;
    case DoubleSchemeCode::kPseudodecimal: return *pseudodecimal;
  }
  BTR_CHECK_MSG(false, "invalid double scheme code");
  return *uncompressed;
}

const StringScheme& GetStringScheme(StringSchemeCode code) {
  static const StringUncompressed* uncompressed = new StringUncompressed();
  static const StringOneValue* one_value = new StringOneValue();
  static const StringDict* dict = new StringDict();
  static const StringFsst* fsst_scheme = new StringFsst();
  static const StringDictFsst* dict_fsst = new StringDictFsst();
  switch (code) {
    case StringSchemeCode::kUncompressed: return *uncompressed;
    case StringSchemeCode::kOneValue: return *one_value;
    case StringSchemeCode::kDict: return *dict;
    case StringSchemeCode::kFsst: return *fsst_scheme;
    case StringSchemeCode::kDictFsst: return *dict_fsst;
  }
  BTR_CHECK_MSG(false, "invalid string scheme code");
  return *uncompressed;
}

const char* IntSchemeName(IntSchemeCode code) {
  return GetIntScheme(code).name();
}
const char* DoubleSchemeName(DoubleSchemeCode code) {
  return GetDoubleScheme(code).name();
}
const char* StringSchemeName(StringSchemeCode code) {
  return GetStringScheme(code).name();
}

}  // namespace btr
