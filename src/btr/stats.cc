#include "btr/stats.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/bits.h"

namespace btr {

namespace {

// Open-addressing distinct counters. Stats run once per block per cascade
// level and must stay a small fraction of compression time (the paper
// keeps scheme selection around 1.2%); std::unordered_set is an order of
// magnitude too slow for that.

inline u64 HashKey(u64 key) {
  u64 h = key * 0x9E3779B97F4A7C15ULL;
  return h ^ (h >> 29);
}

inline u32 TableSizeFor(u32 count) {
  u32 size = 64;
  while (size < 2 * count) size <<= 1;
  return size;
}

// Counts distinct non-zero u64 keys; the caller tracks zero separately.
class DistinctCounter {
 public:
  explicit DistinctCounter(u32 count) : mask_(TableSizeFor(count) - 1) {
    table_.assign(mask_ + 1, 0);
  }

  // Returns true when the key was newly inserted. key must be non-zero.
  bool Insert(u64 key) {
    u64 slot = HashKey(key) & mask_;
    while (table_[slot] != 0) {
      if (table_[slot] == key) return false;
      slot = (slot + 1) & mask_;
    }
    table_[slot] = key;
    return true;
  }

 private:
  u32 mask_;
  std::vector<u64> table_;
};

}  // namespace

IntStats ComputeIntStats(const i32* data, u32 count) {
  IntStats stats;
  stats.count = count;
  if (count == 0) return stats;
  stats.min = data[0];
  stats.max = data[0];
  stats.run_count = 1;
  DistinctCounter distinct(count);
  bool saw_zero = false;
  u32 unique = 0;
  for (u32 i = 0; i < count; i++) {
    i32 v = data[i];
    if (v < stats.min) stats.min = v;
    if (v > stats.max) stats.max = v;
    if (i > 0 && v != data[i - 1]) stats.run_count++;
    if (v == 0) {
      if (!saw_zero) {
        saw_zero = true;
        unique++;
      }
    } else if (distinct.Insert(static_cast<u32>(v))) {
      unique++;
    }
  }
  stats.unique_count = unique;
  return stats;
}

DoubleStats ComputeDoubleStats(const double* data, u32 count) {
  DoubleStats stats;
  stats.count = count;
  if (count == 0) return stats;
  stats.min = data[0];
  stats.max = data[0];
  stats.run_count = 1;
  // Uniqueness over bit patterns: compression is bitwise-lossless, so
  // +0.0 / -0.0 and NaN payloads are distinct values.
  DistinctCounter distinct(count);
  bool saw_zero = false;
  u32 unique = 0;
  u64 prev_bits = 0;
  for (u32 i = 0; i < count; i++) {
    if (data[i] < stats.min) stats.min = data[i];
    if (data[i] > stats.max) stats.max = data[i];
    u64 bits;
    std::memcpy(&bits, &data[i], 8);
    if (i > 0 && bits != prev_bits) stats.run_count++;
    prev_bits = bits;
    if (bits == 0) {
      if (!saw_zero) {
        saw_zero = true;
        unique++;
      }
    } else if (distinct.Insert(bits)) {
      unique++;
    }
  }
  stats.unique_count = unique;
  return stats;
}

StringStats ComputeStringStats(const StringsView& view) {
  StringStats stats;
  stats.count = view.count;
  if (view.count == 0) return stats;
  stats.run_count = 1;
  stats.total_bytes = view.TotalBytes();
  // Distinct strings are counted by 64-bit content hash; a collision
  // undercounts by one, which is irrelevant for the viability thresholds
  // these stats feed.
  DistinctCounter distinct(view.count);
  u32 unique = 0;
  for (u32 i = 0; i < view.count; i++) {
    std::string_view s = view.Get(i);
    stats.max_length = std::max(stats.max_length, static_cast<u32>(s.size()));
    if (i > 0 && s != view.Get(i - 1)) stats.run_count++;
    // Constant-time content hash: length plus the first 16 and last 8
    // bytes. Stats run on every block; hashing whole long strings shows
    // up in profiles, and a rare collision merely undercounts distinct
    // values by one — irrelevant for the viability thresholds.
    u64 h = 0xCBF29CE484222325ULL ^ s.size();
    auto mix = [&h](u64 word) {
      h = (h ^ word) * 0x100000001B3ULL;
      h ^= h >> 31;
    };
    u64 word = 0;
    size_t len = s.size();
    if (len > 0) std::memcpy(&word, s.data(), std::min<size_t>(len, 8));
    mix(word);
    if (len > 8) {
      word = 0;
      std::memcpy(&word, s.data() + 8, std::min<size_t>(len - 8, 8));
      mix(word);
    }
    if (len > 16) {
      std::memcpy(&word, s.data() + len - 8, 8);
      mix(word);
    }
    if (h == 0) h = 1;
    if (distinct.Insert(h)) {
      unique++;
      stats.unique_bytes += s.size();
    }
  }
  stats.unique_count = unique;
  return stats;
}

}  // namespace btr
