#include "btr/datablock.h"

#include <cstring>

#include "bitmap/roaring.h"
#include "btr/scheme_picker.h"
#include "util/timer.h"

namespace btr {

namespace {

// Serializes the common block header; returns bytes appended.
void AppendHeader(ColumnType type, u32 count, const u8* null_flags,
                  ByteBuffer* out) {
  out->AppendValue<u8>(static_cast<u8>(type));
  out->AppendValue<u32>(count);
  RoaringBitmap nulls;
  if (null_flags != nullptr) {
    for (u32 i = 0; i < count; i++) {
      if (null_flags[i] != 0) nulls.Add(i);
    }
    nulls.RunOptimize();
  }
  if (nulls.Empty()) {
    out->AppendValue<u32>(0);
  } else {
    out->AppendValue<u32>(static_cast<u32>(nulls.SerializedSizeBytes()));
    nulls.SerializeTo(out);
  }
}

struct Header {
  ColumnType type;
  u32 count;
  u32 null_bytes;
  const u8* null_blob;
  const u8* body;
};

Header ParseHeader(const u8* data) {
  Header h;
  h.type = static_cast<ColumnType>(data[0]);
  std::memcpy(&h.count, data + 1, sizeof(u32));
  std::memcpy(&h.null_bytes, data + 5, sizeof(u32));
  h.null_blob = data + 9;
  h.body = h.null_blob + h.null_bytes;
  return h;
}

void RecordTelemetry(const CompressionConfig& config, ColumnType type,
                     u8 root_scheme, double elapsed_ns) {
  if (config.telemetry == nullptr) return;
  config.telemetry->compress_ns += static_cast<u64>(elapsed_ns);
  config.telemetry->scheme_uses[static_cast<u8>(type)][root_scheme]++;
}

}  // namespace

size_t CompressIntBlock(const i32* values, const u8* null_flags, u32 count,
                        ByteBuffer* out, const CompressionConfig& config,
                        BlockCompressionInfo* info) {
  Timer timer;
  size_t start = out->size();
  AppendHeader(ColumnType::kInteger, count, null_flags, out);
  CompressionContext ctx{&config, config.max_cascade_depth};
  IntSchemeCode chosen;
  CompressInts(values, count, out, ctx, &chosen);
  RecordTelemetry(config, ColumnType::kInteger, static_cast<u8>(chosen),
                  timer.ElapsedNanos());
  if (info != nullptr) {
    info->root_scheme = static_cast<u8>(chosen);
    info->compressed_bytes = out->size() - start;
  }
  return out->size() - start;
}

size_t CompressDoubleBlock(const double* values, const u8* null_flags, u32 count,
                           ByteBuffer* out, const CompressionConfig& config,
                           BlockCompressionInfo* info) {
  Timer timer;
  size_t start = out->size();
  AppendHeader(ColumnType::kDouble, count, null_flags, out);
  CompressionContext ctx{&config, config.max_cascade_depth};
  DoubleSchemeCode chosen;
  CompressDoubles(values, count, out, ctx, &chosen);
  RecordTelemetry(config, ColumnType::kDouble, static_cast<u8>(chosen),
                  timer.ElapsedNanos());
  if (info != nullptr) {
    info->root_scheme = static_cast<u8>(chosen);
    info->compressed_bytes = out->size() - start;
  }
  return out->size() - start;
}

size_t CompressStringBlock(const StringsView& values, const u8* null_flags,
                           ByteBuffer* out, const CompressionConfig& config,
                           BlockCompressionInfo* info) {
  Timer timer;
  size_t start = out->size();
  AppendHeader(ColumnType::kString, values.count, null_flags, out);
  CompressionContext ctx{&config, config.max_cascade_depth};
  StringSchemeCode chosen;
  CompressStrings(values, out, ctx, &chosen);
  RecordTelemetry(config, ColumnType::kString, static_cast<u8>(chosen),
                  timer.ElapsedNanos());
  if (info != nullptr) {
    info->root_scheme = static_cast<u8>(chosen);
    info->compressed_bytes = out->size() - start;
  }
  return out->size() - start;
}

u64 DecodedBlock::ValueBytes() const {
  switch (type) {
    case ColumnType::kInteger: return static_cast<u64>(count) * sizeof(i32);
    case ColumnType::kDouble: return static_cast<u64>(count) * sizeof(double);
    case ColumnType::kString: {
      // Logical size, not pool size: dictionary decoding shares one pool
      // entry across repeated values, but the scan output is count slots
      // of the full string lengths.
      u64 bytes = static_cast<u64>(count) * sizeof(u32);
      for (const StringSlot& slot : strings.slots) bytes += slot.length;
      return bytes;
    }
  }
  return 0;
}

void DecodedBlock::Clear() {
  count = 0;
  ints.clear();
  doubles.clear();
  strings.slots.clear();
  strings.pool.Clear();
  null_flags.clear();
}

void DecompressBlock(const u8* data, DecodedBlock* out,
                     const CompressionConfig& config) {
  Header h = ParseHeader(data);
  out->Clear();
  out->type = h.type;
  out->count = h.count;
  if (h.null_bytes > 0) {
    RoaringBitmap nulls = RoaringBitmap::Deserialize(h.null_blob, nullptr);
    out->null_flags.assign(h.count, 0);
    nulls.ForEach([&](u32 i) { out->null_flags[i] = 1; });
  }
  switch (h.type) {
    case ColumnType::kInteger:
      out->ints.resize(h.count + kDecodeSlack);
      DecompressInts(h.body, h.count, out->ints.data());
      out->ints.resize(h.count);
      break;
    case ColumnType::kDouble:
      out->doubles.resize(h.count + kDecodeSlack);
      DecompressDoubles(h.body, h.count, out->doubles.data());
      out->doubles.resize(h.count);
      break;
    case ColumnType::kString:
      DecompressStrings(h.body, h.count, &out->strings, config);
      break;
  }
}

u8 PeekBlockScheme(const u8* data) {
  Header h = ParseHeader(data);
  return h.body[0];
}

}  // namespace btr
