#include "btr/datablock.h"

#include <cstring>

#include <atomic>

#include "bitmap/roaring.h"
#include "btr/scheme_picker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace btr {

namespace {

// Serializes the common block header; returns bytes appended.
void AppendHeader(ColumnType type, u32 count, const u8* null_flags,
                  ByteBuffer* out) {
  out->AppendValue<u8>(static_cast<u8>(type));
  out->AppendValue<u32>(count);
  RoaringBitmap nulls;
  if (null_flags != nullptr) {
    for (u32 i = 0; i < count; i++) {
      if (null_flags[i] != 0) nulls.Add(i);
    }
    nulls.RunOptimize();
  }
  if (nulls.Empty()) {
    out->AppendValue<u32>(0);
  } else {
    out->AppendValue<u32>(static_cast<u32>(nulls.SerializedSizeBytes()));
    nulls.SerializeTo(out);
  }
}

struct Header {
  ColumnType type;
  u32 count;
  u32 null_bytes;
  const u8* null_blob;
  const u8* body;
};

Header ParseHeader(const u8* data) {
  Header h;
  h.type = static_cast<ColumnType>(data[0]);
  std::memcpy(&h.count, data + 1, sizeof(u32));
  std::memcpy(&h.null_bytes, data + 5, sizeof(u32));
  h.null_blob = data + 9;
  h.body = h.null_blob + h.null_bytes;
  return h;
}

void RecordTelemetry(const CompressionConfig& config, ColumnType type,
                     u8 root_scheme, double elapsed_ns) {
  if (config.telemetry == nullptr) return;
  config.telemetry->compress_ns += static_cast<u64>(elapsed_ns);
  config.telemetry->scheme_uses[static_cast<u8>(type)][root_scheme]++;
}

// Block-granular compression metrics (one histogram sample per block).
void RecordCompressMetrics(u64 input_bytes, u64 output_bytes, u64 elapsed_ns) {
  obs::Registry& registry = obs::Registry::Get();
  static obs::Counter& blocks = registry.GetCounter("btr.compress.blocks");
  static obs::Counter& in_bytes =
      registry.GetCounter("btr.compress.input_bytes");
  static obs::Counter& out_bytes =
      registry.GetCounter("btr.compress.output_bytes");
  static obs::Histogram& block_ns =
      registry.GetHistogram("btr.compress.block_ns");
  blocks.Add();
  in_bytes.Add(input_bytes);
  out_bytes.Add(output_bytes);
  block_ns.Record(elapsed_ns);
}

// Per-(type, root scheme) decode timing histograms, cached after the first
// registry lookup. The fill race is benign (same registry-owned pointer).
obs::Histogram& DecodeHistogram(ColumnType type, u8 scheme) {
  static auto* slots = new std::atomic<obs::Histogram*>[3][16]();
  std::atomic<obs::Histogram*>& slot = slots[static_cast<u8>(type)][scheme];
  obs::Histogram* h = slot.load(std::memory_order_acquire);
  if (h == nullptr) {
    const char* type_tag = type == ColumnType::kInteger  ? "int"
                           : type == ColumnType::kDouble ? "double"
                                                         : "string";
    const char* scheme_tag = "?";
    switch (type) {
      case ColumnType::kInteger:
        scheme_tag = IntSchemeName(static_cast<IntSchemeCode>(scheme));
        break;
      case ColumnType::kDouble:
        scheme_tag = DoubleSchemeName(static_cast<DoubleSchemeCode>(scheme));
        break;
      case ColumnType::kString:
        scheme_tag = StringSchemeName(static_cast<StringSchemeCode>(scheme));
        break;
    }
    h = &obs::Registry::Get().GetHistogram(std::string("btr.decompress.") +
                                           type_tag + "." + scheme_tag + ".ns");
    slot.store(h, std::memory_order_release);
  }
  return *h;
}

// Runs the block compression body with an optional cascade trace attached,
// moving the resulting tree into `info`.
template <typename BodyFn>
void WithCascadeTrace(const CompressionConfig& config,
                      BlockCompressionInfo* info, const BodyFn& body) {
  if (info == nullptr || !config.collect_cascade_trace) {
    CompressionContext ctx{&config, config.max_cascade_depth};
    body(ctx);
    return;
  }
  obs::CascadeNode holder;  // the real root is holder.children[0]
  CompressionContext ctx{&config, config.max_cascade_depth, false, &holder};
  body(ctx);
  if (!holder.children.empty()) {
    info->trace = std::move(holder.children.front());
  }
}

}  // namespace

size_t CompressIntBlock(const i32* values, const u8* null_flags, u32 count,
                        ByteBuffer* out, const CompressionConfig& config,
                        BlockCompressionInfo* info) {
  BTR_TRACE_SPAN("btr.compress.block.int");
  Timer timer;
  size_t start = out->size();
  AppendHeader(ColumnType::kInteger, count, null_flags, out);
  IntSchemeCode chosen;
  WithCascadeTrace(config, info, [&](const CompressionContext& ctx) {
    CompressInts(values, count, out, ctx, &chosen);
  });
  RecordTelemetry(config, ColumnType::kInteger, static_cast<u8>(chosen),
                  timer.ElapsedNanos());
  RecordCompressMetrics(static_cast<u64>(count) * sizeof(i32),
                        out->size() - start,
                        static_cast<u64>(timer.ElapsedNanos()));
  if (info != nullptr) {
    info->root_scheme = static_cast<u8>(chosen);
    info->compressed_bytes = out->size() - start;
  }
  return out->size() - start;
}

size_t CompressDoubleBlock(const double* values, const u8* null_flags, u32 count,
                           ByteBuffer* out, const CompressionConfig& config,
                           BlockCompressionInfo* info) {
  BTR_TRACE_SPAN("btr.compress.block.double");
  Timer timer;
  size_t start = out->size();
  AppendHeader(ColumnType::kDouble, count, null_flags, out);
  DoubleSchemeCode chosen;
  WithCascadeTrace(config, info, [&](const CompressionContext& ctx) {
    CompressDoubles(values, count, out, ctx, &chosen);
  });
  RecordTelemetry(config, ColumnType::kDouble, static_cast<u8>(chosen),
                  timer.ElapsedNanos());
  RecordCompressMetrics(static_cast<u64>(count) * sizeof(double),
                        out->size() - start,
                        static_cast<u64>(timer.ElapsedNanos()));
  if (info != nullptr) {
    info->root_scheme = static_cast<u8>(chosen);
    info->compressed_bytes = out->size() - start;
  }
  return out->size() - start;
}

size_t CompressStringBlock(const StringsView& values, const u8* null_flags,
                           ByteBuffer* out, const CompressionConfig& config,
                           BlockCompressionInfo* info) {
  BTR_TRACE_SPAN("btr.compress.block.string");
  Timer timer;
  size_t start = out->size();
  AppendHeader(ColumnType::kString, values.count, null_flags, out);
  StringSchemeCode chosen;
  WithCascadeTrace(config, info, [&](const CompressionContext& ctx) {
    CompressStrings(values, out, ctx, &chosen);
  });
  RecordTelemetry(config, ColumnType::kString, static_cast<u8>(chosen),
                  timer.ElapsedNanos());
  RecordCompressMetrics(static_cast<u64>(values.TotalBytes()) +
                            static_cast<u64>(values.count) * sizeof(u32),
                        out->size() - start,
                        static_cast<u64>(timer.ElapsedNanos()));
  if (info != nullptr) {
    info->root_scheme = static_cast<u8>(chosen);
    info->compressed_bytes = out->size() - start;
  }
  return out->size() - start;
}

u64 DecodedBlock::ValueBytes() const {
  switch (type) {
    case ColumnType::kInteger: return static_cast<u64>(count) * sizeof(i32);
    case ColumnType::kDouble: return static_cast<u64>(count) * sizeof(double);
    case ColumnType::kString: {
      // Logical size, not pool size: dictionary decoding shares one pool
      // entry across repeated values, but the scan output is count slots
      // of the full string lengths.
      u64 bytes = static_cast<u64>(count) * sizeof(u32);
      for (const StringSlot& slot : strings.slots) bytes += slot.length;
      return bytes;
    }
  }
  return 0;
}

void DecodedBlock::Clear() {
  count = 0;
  ints.clear();
  doubles.clear();
  strings.slots.clear();
  strings.pool.Clear();
  null_flags.clear();
}

void DecompressBlock(const u8* data, DecodedBlock* out,
                     const CompressionConfig& config) {
  BTR_TRACE_SPAN("btr.decompress.block");
  Timer timer;
  Header h = ParseHeader(data);
  out->Clear();
  out->type = h.type;
  out->count = h.count;
  if (h.null_bytes > 0) {
    RoaringBitmap nulls = RoaringBitmap::Deserialize(h.null_blob, nullptr);
    out->null_flags.assign(h.count, 0);
    nulls.ForEach([&](u32 i) { out->null_flags[i] = 1; });
  }
  switch (h.type) {
    case ColumnType::kInteger:
      out->ints.resize(h.count + kDecodeSlack);
      DecompressInts(h.body, h.count, out->ints.data());
      out->ints.resize(h.count);
      break;
    case ColumnType::kDouble:
      out->doubles.resize(h.count + kDecodeSlack);
      DecompressDoubles(h.body, h.count, out->doubles.data());
      out->doubles.resize(h.count);
      break;
    case ColumnType::kString:
      DecompressStrings(h.body, h.count, &out->strings, config);
      break;
  }
  static obs::Counter& blocks =
      obs::Registry::Get().GetCounter("btr.decompress.blocks");
  blocks.Add();
  DecodeHistogram(h.type, h.body[0])
      .Record(static_cast<u64>(timer.ElapsedNanos()));
}

u8 PeekBlockScheme(const u8* data) {
  Header h = ParseHeader(data);
  return h.body[0];
}

Status ValidateBlock(const u8* data, size_t size, ColumnType expected_type,
                     u32 expected_count) {
  // Header is [u8 type][u32 count][u32 null_bytes], then the null bitmap,
  // then at least one scheme-code byte.
  if (size < 10) return Status::Corruption("block truncated: no header");
  if (data[0] > 2) return Status::Corruption("block has invalid type byte");
  Header h = ParseHeader(data);
  if (h.type != expected_type) {
    return Status::Corruption("block type does not match column type");
  }
  if (h.count != expected_count || h.count > kBlockCapacity) {
    return Status::Corruption("block value count does not match metadata");
  }
  if (9ull + h.null_bytes + 1 > size) {
    return Status::Corruption("block null bitmap exceeds block size");
  }
  u8 scheme = h.body[0];
  bool scheme_ok = false;
  switch (h.type) {
    case ColumnType::kInteger: scheme_ok = scheme < kIntSchemeCount; break;
    case ColumnType::kDouble: scheme_ok = scheme < kDoubleSchemeCount; break;
    case ColumnType::kString: scheme_ok = scheme < kStringSchemeCount; break;
  }
  if (!scheme_ok) return Status::Corruption("block has unknown root scheme");
  return Status::Ok();
}

}  // namespace btr
