// Block-level PredicateExpr evaluation on the compressed form.
//
// Leaves are evaluated per root scheme:
//
//   OneValue    O(1): compare the single stored value
//   RLE         O(runs): run arithmetic emits whole ranges
//   Dictionary  evaluate the comparison over the (small) dictionary, then
//               select rows whose code is in the matching-code set — run
//               arithmetic when the code vector is RLE, SIMD IN-scan
//               otherwise
//   Frequency   decide the dominant value once, scan only the exceptions
//   FastBP128   (ints, range ops) simd::SelectBp128Range — per-miniblock
//               frame envelopes prune or whole-accept 128 values at a
//               time, survivors are compared 32 lanes per instruction
//   otherwise   decode the value vector into scratch (no DecodedBlock /
//               null materialization) and run the SIMD compare kernels;
//               strings without a dictionary materialize fully
//
// NULL semantics: rows under the block's null bitmap store default values
// inside the encodings, so every leaf result is corrected with one
// AndNot(raw, nulls) — no per-scheme special-casing — and the null rows
// become the leaf's UNKNOWN set for Kleene AND/OR/NOT combination.
#include <algorithm>
#include <cstring>

#include "btr/predicate.h"
#include "btr/scheme_picker.h"
#include "btr/simd_scan.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace btr {

namespace {

struct BlockHeader {
  ColumnType type;
  u32 count;
  u32 null_bytes;
  const u8* null_blob;
  const u8* body;     // [u8 scheme][payload]
  const u8* payload;  // body + 1
  u8 scheme;
};

BlockHeader ParseHeader(const u8* block) {
  BlockHeader h;
  h.type = static_cast<ColumnType>(block[0]);
  std::memcpy(&h.count, block + 1, sizeof(u32));
  std::memcpy(&h.null_bytes, block + 5, sizeof(u32));
  h.null_blob = block + 9;
  h.body = h.null_blob + h.null_bytes;
  h.scheme = h.body[0];
  h.payload = h.body + 1;
  return h;
}

RoaringBitmap AllRows(u32 count) {
  RoaringBitmap out;
  out.AddRange(0, count);
  out.RunOptimize();
  return out;
}

u64 BitsOf(double d) {
  u64 b;
  std::memcpy(&b, &d, sizeof(u64));
  return b;
}

// --- derived leaf comparison contexts ---------------------------------------

struct IntRange {
  i32 lo = 0;
  i32 hi = 0;
  bool empty = false;
};

IntRange DeriveIntRange(const PredicateExpr& leaf) {
  IntRange r;
  switch (leaf.op) {
    case CompareOp::kEq:
      r.lo = r.hi = leaf.int_lo;
      break;
    case CompareOp::kLt:
      r.empty = leaf.int_lo == INT32_MIN;
      r.lo = INT32_MIN;
      r.hi = r.empty ? INT32_MIN : leaf.int_lo - 1;
      break;
    case CompareOp::kLe:
      r.lo = INT32_MIN;
      r.hi = leaf.int_lo;
      break;
    case CompareOp::kGt:
      r.empty = leaf.int_lo == INT32_MAX;
      r.lo = r.empty ? INT32_MAX : leaf.int_lo + 1;
      r.hi = INT32_MAX;
      break;
    case CompareOp::kGe:
      r.lo = leaf.int_lo;
      r.hi = INT32_MAX;
      break;
    case CompareOp::kBetween:
      r.lo = leaf.int_lo;
      r.hi = leaf.int_hi;
      r.empty = r.lo > r.hi;
      break;
    case CompareOp::kIn:
      break;  // handled through the set, not a range
  }
  return r;
}

struct F64Range {
  double lo = -kDoubleInf;
  double hi = kDoubleInf;
  bool lo_strict = false;
  bool hi_strict = false;
};

F64Range DeriveF64Range(const PredicateExpr& leaf) {
  F64Range r;
  switch (leaf.op) {
    case CompareOp::kLt:
      r.hi = leaf.double_lo;
      r.hi_strict = true;
      break;
    case CompareOp::kLe:
      r.hi = leaf.double_lo;
      break;
    case CompareOp::kGt:
      r.lo = leaf.double_lo;
      r.lo_strict = true;
      break;
    case CompareOp::kGe:
      r.lo = leaf.double_lo;
      break;
    case CompareOp::kBetween:
      r.lo = leaf.double_lo;
      r.hi = leaf.double_hi;
      break;
    default:
      break;
  }
  return r;
}

bool F64RangeMatch(double v, const F64Range& r) {
  bool ge = r.lo_strict ? (v > r.lo) : (v >= r.lo);
  bool le = r.hi_strict ? (v < r.hi) : (v <= r.hi);
  return ge && le;
}

// Precomputed per (leaf, block) evaluation.
struct IntLeafCtx {
  bool is_set;
  IntRange range;
  const std::vector<i32>* set;

  explicit IntLeafCtx(const PredicateExpr& leaf)
      : is_set(leaf.op == CompareOp::kIn),
        range(DeriveIntRange(leaf)),
        set(&leaf.int_set) {}

  bool Match(i32 v) const {
    if (is_set) return std::binary_search(set->begin(), set->end(), v);
    return !range.empty && v >= range.lo && v <= range.hi;
  }
};

struct DoubleLeafCtx {
  bool is_bits;  // kEq / kIn: bit-pattern equality
  F64Range range;
  std::vector<u64> bits;  // sorted bit patterns

  explicit DoubleLeafCtx(const PredicateExpr& leaf)
      : is_bits(leaf.op == CompareOp::kEq || leaf.op == CompareOp::kIn) {
    if (leaf.op == CompareOp::kEq) {
      bits.push_back(BitsOf(leaf.double_lo));
    } else if (leaf.op == CompareOp::kIn) {
      bits.reserve(leaf.double_set.size());
      for (double v : leaf.double_set) bits.push_back(BitsOf(v));
      std::sort(bits.begin(), bits.end());
    } else {
      range = DeriveF64Range(leaf);
    }
  }

  bool Match(double v) const {
    if (is_bits) {
      return std::binary_search(bits.begin(), bits.end(), BitsOf(v));
    }
    return F64RangeMatch(v, range);
  }
};

bool MatchString(std::string_view v, const PredicateExpr& leaf) {
  switch (leaf.op) {
    case CompareOp::kEq:
      return v == leaf.string_lo;
    case CompareOp::kLt:
      return v < leaf.string_lo;
    case CompareOp::kLe:
      return v <= leaf.string_lo;
    case CompareOp::kGt:
      return v > leaf.string_lo;
    case CompareOp::kGe:
      return v >= leaf.string_lo;
    case CompareOp::kBetween:
      return v >= leaf.string_lo && v <= leaf.string_hi;
    case CompareOp::kIn:
      return std::binary_search(leaf.string_set.begin(),
                                leaf.string_set.end(), v);
  }
  return false;
}

// --- code-vector selection ---------------------------------------------------

// Rows whose dictionary code is in `codes` (sorted ascending): run
// arithmetic when the code vector is RLE-compressed, SIMD IN-scan of the
// decoded codes otherwise.
void SelectCodesIn(const u8* codes_vec, u32 count,
                   const std::vector<i32>& codes, RoaringBitmap* out) {
  if (codes.empty()) return;
  if (PeekIntScheme(codes_vec) == IntSchemeCode::kRle) {
    const u8* payload = codes_vec + 1;
    u32 run_count, values_bytes;
    std::memcpy(&run_count, payload, sizeof(u32));
    std::memcpy(&values_bytes, payload + 4, sizeof(u32));
    std::vector<i32> run_values(run_count + kDecodeSlack);
    std::vector<i32> run_lengths(run_count + kDecodeSlack);
    DecompressInts(payload + 8, run_count, run_values.data());
    DecompressInts(payload + 8 + values_bytes, run_count, run_lengths.data());
    u32 position = 0;
    for (u32 r = 0; r < run_count; r++) {
      u32 length = static_cast<u32>(run_lengths[r]);
      if (std::binary_search(codes.begin(), codes.end(), run_values[r])) {
        out->AddRange(position, position + length);
      }
      position += length;
    }
    return;
  }
  std::vector<i32> scratch(count + kDecodeSlack);
  DecompressInts(codes_vec, count, scratch.data());
  simd::SelectI32Set(scratch.data(), count, 0, codes, out);
}

// --- per-type leaf kernels ---------------------------------------------------
// All return raw matches over stored values; null correction happens once
// in the caller. `fast` reports whether a compressed-form path ran.

RoaringBitmap SelectIntLeafRaw(const u8* block, const BlockHeader& h,
                               const PredicateExpr& leaf,
                               const CompressionConfig& config, bool* fast) {
  IntLeafCtx ctx(leaf);
  RoaringBitmap out;
  *fast = true;
  switch (static_cast<IntSchemeCode>(h.scheme)) {
    case IntSchemeCode::kOneValue: {
      i32 stored;
      std::memcpy(&stored, h.payload, sizeof(i32));
      return ctx.Match(stored) ? AllRows(h.count) : RoaringBitmap();
    }
    case IntSchemeCode::kRle: {
      u32 run_count, values_bytes;
      std::memcpy(&run_count, h.payload, sizeof(u32));
      std::memcpy(&values_bytes, h.payload + 4, sizeof(u32));
      std::vector<i32> run_values(run_count + kDecodeSlack);
      std::vector<i32> run_lengths(run_count + kDecodeSlack);
      DecompressInts(h.payload + 8, run_count, run_values.data());
      DecompressInts(h.payload + 8 + values_bytes, run_count,
                     run_lengths.data());
      u32 position = 0;
      for (u32 r = 0; r < run_count; r++) {
        u32 length = static_cast<u32>(run_lengths[r]);
        if (ctx.Match(run_values[r])) out.AddRange(position, position + length);
        position += length;
      }
      return out;
    }
    case IntSchemeCode::kDict: {
      u32 dict_count, codes_bytes;
      std::memcpy(&dict_count, h.payload, sizeof(u32));
      std::memcpy(&codes_bytes, h.payload + 4, sizeof(u32));
      const u8* codes_vec = h.payload + 8;
      const u8* dict_bytes = codes_vec + codes_bytes;
      std::vector<i32> matching_codes;
      for (u32 d = 0; d < dict_count; d++) {
        i32 entry;
        std::memcpy(&entry, dict_bytes + d * sizeof(i32), sizeof(i32));
        if (ctx.Match(entry)) matching_codes.push_back(static_cast<i32>(d));
      }
      SelectCodesIn(codes_vec, h.count, matching_codes, &out);
      return out;
    }
    case IntSchemeCode::kFrequency: {
      i32 top;
      u32 exception_count, bitmap_bytes;
      std::memcpy(&top, h.payload, sizeof(i32));
      std::memcpy(&exception_count, h.payload + 4, sizeof(u32));
      std::memcpy(&bitmap_bytes, h.payload + 8, sizeof(u32));
      RoaringBitmap exceptions =
          RoaringBitmap::Deserialize(h.payload + 12, nullptr);
      if (ctx.Match(top)) {
        out = RoaringBitmap::AndNot(AllRows(h.count), exceptions);
      }
      if (exception_count > 0) {
        std::vector<i32> exception_values(exception_count + kDecodeSlack);
        DecompressInts(h.payload + 12 + bitmap_bytes, exception_count,
                       exception_values.data());
        u32 e = 0;
        exceptions.ForEach([&](u32 position) {
          if (ctx.Match(exception_values[e++])) out.Add(position);
        });
      }
      return out;
    }
    case IntSchemeCode::kBp128: {
      if (!ctx.is_set) {
        if (!ctx.range.empty) {
          simd::SelectBp128Range(h.payload, h.count, 0, ctx.range.lo,
                                 ctx.range.hi, &out);
        }
        return out;
      }
      [[fallthrough]];  // IN over bit-packed data: scratch decode
    }
    default: {
      *fast = false;
      std::vector<i32> scratch(h.count + kDecodeSlack);
      DecompressInts(h.body, h.count, scratch.data());
      if (ctx.is_set) {
        simd::SelectI32Set(scratch.data(), h.count, 0, *ctx.set, &out);
      } else if (!ctx.range.empty) {
        simd::SelectI32Range(scratch.data(), h.count, 0, ctx.range.lo,
                             ctx.range.hi, &out);
      }
      (void)config;
      return out;
    }
  }
}

RoaringBitmap SelectDoubleLeafRaw(const u8* block, const BlockHeader& h,
                                  const PredicateExpr& leaf,
                                  const CompressionConfig& config,
                                  bool* fast) {
  DoubleLeafCtx ctx(leaf);
  RoaringBitmap out;
  *fast = true;
  switch (static_cast<DoubleSchemeCode>(h.scheme)) {
    case DoubleSchemeCode::kOneValue: {
      double stored;
      std::memcpy(&stored, h.payload, sizeof(double));
      return ctx.Match(stored) ? AllRows(h.count) : RoaringBitmap();
    }
    case DoubleSchemeCode::kRle: {
      u32 run_count, values_bytes;
      std::memcpy(&run_count, h.payload, sizeof(u32));
      std::memcpy(&values_bytes, h.payload + 4, sizeof(u32));
      std::vector<double> run_values(run_count + kDecodeSlack);
      std::vector<i32> run_lengths(run_count + kDecodeSlack);
      DecompressDoubles(h.payload + 8, run_count, run_values.data());
      DecompressInts(h.payload + 8 + values_bytes, run_count,
                     run_lengths.data());
      u32 position = 0;
      for (u32 r = 0; r < run_count; r++) {
        u32 length = static_cast<u32>(run_lengths[r]);
        if (ctx.Match(run_values[r])) out.AddRange(position, position + length);
        position += length;
      }
      return out;
    }
    case DoubleSchemeCode::kDict: {
      u32 dict_count, codes_bytes;
      std::memcpy(&dict_count, h.payload, sizeof(u32));
      std::memcpy(&codes_bytes, h.payload + 4, sizeof(u32));
      const u8* codes_vec = h.payload + 8;
      const u8* dict_bytes = codes_vec + codes_bytes;
      std::vector<i32> matching_codes;
      for (u32 d = 0; d < dict_count; d++) {
        double entry;
        std::memcpy(&entry, dict_bytes + d * sizeof(double), sizeof(double));
        if (ctx.Match(entry)) matching_codes.push_back(static_cast<i32>(d));
      }
      SelectCodesIn(codes_vec, h.count, matching_codes, &out);
      return out;
    }
    case DoubleSchemeCode::kFrequency: {
      double top;
      u32 exception_count, bitmap_bytes;
      std::memcpy(&top, h.payload, sizeof(double));
      std::memcpy(&exception_count, h.payload + 8, sizeof(u32));
      std::memcpy(&bitmap_bytes, h.payload + 12, sizeof(u32));
      RoaringBitmap exceptions =
          RoaringBitmap::Deserialize(h.payload + 16, nullptr);
      if (ctx.Match(top)) {
        out = RoaringBitmap::AndNot(AllRows(h.count), exceptions);
      }
      if (exception_count > 0) {
        std::vector<double> exception_values(exception_count + kDecodeSlack);
        DecompressDoubles(h.payload + 16 + bitmap_bytes, exception_count,
                          exception_values.data());
        u32 e = 0;
        exceptions.ForEach([&](u32 position) {
          if (ctx.Match(exception_values[e++])) out.Add(position);
        });
      }
      return out;
    }
    default: {
      *fast = false;
      std::vector<double> scratch(h.count + kDecodeSlack);
      DecompressDoubles(h.body, h.count, scratch.data());
      if (ctx.is_bits) {
        simd::SelectF64BitsSet(scratch.data(), h.count, 0, ctx.bits, &out);
      } else {
        simd::SelectF64Range(scratch.data(), h.count, 0, ctx.range.lo,
                             ctx.range.hi, ctx.range.lo_strict,
                             ctx.range.hi_strict, &out);
      }
      (void)config;
      return out;
    }
  }
}

RoaringBitmap SelectStringLeafRaw(const u8* block, const BlockHeader& h,
                                  const PredicateExpr& leaf,
                                  const CompressionConfig& config,
                                  bool* fast) {
  RoaringBitmap out;
  *fast = true;
  switch (static_cast<StringSchemeCode>(h.scheme)) {
    case StringSchemeCode::kOneValue: {
      u32 length;
      std::memcpy(&length, h.payload, sizeof(u32));
      std::string_view stored(reinterpret_cast<const char*>(h.payload + 4),
                              length);
      return MatchString(stored, leaf) ? AllRows(h.count) : RoaringBitmap();
    }
    case StringSchemeCode::kDict: {
      u32 dict_count, pool_bytes, codes_bytes;
      std::memcpy(&dict_count, h.payload, sizeof(u32));
      std::memcpy(&pool_bytes, h.payload + 4, sizeof(u32));
      std::memcpy(&codes_bytes, h.payload + 8, sizeof(u32));
      (void)pool_bytes;
      const u8* codes_vec = h.payload + 12;
      const u8* tuple_bytes = codes_vec + codes_bytes;
      const char* pool = reinterpret_cast<const char*>(
          tuple_bytes + dict_count * sizeof(StringSlot));
      std::vector<i32> matching_codes;
      for (u32 d = 0; d < dict_count; d++) {
        StringSlot tuple;
        std::memcpy(&tuple, tuple_bytes + d * sizeof(StringSlot),
                    sizeof(StringSlot));
        if (MatchString(std::string_view(pool + tuple.offset, tuple.length),
                        leaf)) {
          matching_codes.push_back(static_cast<i32>(d));
        }
      }
      SelectCodesIn(codes_vec, h.count, matching_codes, &out);
      return out;
    }
    default: {
      *fast = false;
      DecodedBlock decoded;
      DecompressBlock(block, &decoded, config);
      for (u32 i = 0; i < decoded.count; i++) {
        if (MatchString(decoded.strings.Get(i), leaf)) out.Add(i);
      }
      return out;
    }
  }
}

// --- Kleene recursion --------------------------------------------------------

u32 CountLeaves(const PredicateExpr& expr) {
  u32 count = 0;
  expr.ForEachLeaf([&](const PredicateExpr&) { count++; });
  return count;
}

// Generic over how a leaf is evaluated, so the compressed-form engine and
// the decoded-reference engine share one Kleene combinator.
template <typename LeafFn>
EvalResult EvalNode(const PredicateExpr& expr, u32 row_count,
                    const LeafFn& eval_leaf, u32* leaf_index) {
  switch (expr.kind) {
    case PredicateExpr::Kind::kNone: {
      EvalResult all;
      all.pass = AllRows(row_count);
      return all;
    }
    case PredicateExpr::Kind::kLeaf: {
      EvalResult r = eval_leaf(expr, *leaf_index);
      (*leaf_index)++;
      return r;
    }
    case PredicateExpr::Kind::kNot: {
      EvalResult child = EvalNode(expr.children[0], row_count, eval_leaf,
                                  leaf_index);
      EvalResult out;
      out.unknown = child.unknown;
      out.pass = RoaringBitmap::AndNot(
          RoaringBitmap::AndNot(AllRows(row_count), child.pass),
          child.unknown);
      return out;
    }
    case PredicateExpr::Kind::kAnd: {
      EvalResult acc;
      acc.pass = AllRows(row_count);
      for (size_t i = 0; i < expr.children.size(); i++) {
        if (acc.pass.Empty() && acc.unknown.Empty()) {
          // FALSE absorbs: skip the rest, keeping leaf numbering aligned.
          *leaf_index += CountLeaves(expr.children[i]);
          continue;
        }
        EvalResult r = EvalNode(expr.children[i], row_count, eval_leaf,
                                leaf_index);
        RoaringBitmap pass = RoaringBitmap::And(acc.pass, r.pass);
        // UNKNOWN where both sides are at least UNKNOWN but not both TRUE.
        RoaringBitmap a = RoaringBitmap::Or(acc.pass, acc.unknown);
        RoaringBitmap b = RoaringBitmap::Or(r.pass, r.unknown);
        acc.unknown = RoaringBitmap::AndNot(RoaringBitmap::And(a, b), pass);
        acc.pass = std::move(pass);
      }
      return acc;
    }
    case PredicateExpr::Kind::kOr: {
      EvalResult acc;
      for (size_t i = 0; i < expr.children.size(); i++) {
        if (acc.pass.Cardinality() == row_count) {
          *leaf_index += CountLeaves(expr.children[i]);  // TRUE absorbs
          continue;
        }
        EvalResult r = EvalNode(expr.children[i], row_count, eval_leaf,
                                leaf_index);
        RoaringBitmap pass = RoaringBitmap::Or(acc.pass, r.pass);
        acc.unknown = RoaringBitmap::AndNot(
            RoaringBitmap::Or(acc.unknown, r.unknown), pass);
        acc.pass = std::move(pass);
      }
      return acc;
    }
  }
  return EvalResult();
}

void CountLeafMetric(bool fast) {
  static obs::Counter& fast_counter =
      obs::Registry::Get().GetCounter("btr.pred.leaf_fast_path");
  static obs::Counter& slow_counter =
      obs::Registry::Get().GetCounter("btr.pred.leaf_materialized");
  (fast ? fast_counter : slow_counter).Add();
}

}  // namespace

EvalResult EvaluateExpr(
    const PredicateExpr& expr, u32 row_count,
    const std::function<const u8*(const std::string&)>& block_of,
    const CompressionConfig& config, std::vector<LeafEvalStats>* leaf_stats) {
  BTR_TRACE_SPAN("btr.pred.eval");
  auto eval_leaf = [&](const PredicateExpr& leaf, u32 index) {
    const u8* block = block_of(leaf.column);
    BTR_CHECK(block != nullptr);
    BlockHeader h = ParseHeader(block);
    BTR_CHECK(h.type == leaf.type);
    bool fast = false;
    RoaringBitmap raw;
    switch (leaf.type) {
      case ColumnType::kInteger:
        raw = SelectIntLeafRaw(block, h, leaf, config, &fast);
        break;
      case ColumnType::kDouble:
        raw = SelectDoubleLeafRaw(block, h, leaf, config, &fast);
        break;
      case ColumnType::kString:
        raw = SelectStringLeafRaw(block, h, leaf, config, &fast);
        break;
    }
    raw.RunOptimize();
    CountLeafMetric(fast);
    if (leaf_stats != nullptr && index < leaf_stats->size()) {
      ((*leaf_stats)[index].*(fast ? &LeafEvalStats::fast_path
                                   : &LeafEvalStats::materialized))++;
    }
    EvalResult out;
    if (h.null_bytes > 0) {
      // NULL rows store default values inside the encodings; pull them
      // back out of the raw matches and report them as UNKNOWN.
      RoaringBitmap nulls = RoaringBitmap::Deserialize(h.null_blob, nullptr);
      out.pass = RoaringBitmap::AndNot(raw, nulls);
      out.unknown = std::move(nulls);
    } else {
      out.pass = std::move(raw);
    }
    return out;
  };
  u32 leaf_index = 0;
  return EvalNode(expr, row_count, eval_leaf, &leaf_index);
}

EvalResult EvaluateExprDecoded(
    const PredicateExpr& expr, u32 row_count,
    const std::function<const DecodedBlock*(const std::string&)>& decoded_of) {
  auto eval_leaf = [&](const PredicateExpr& leaf, u32) {
    const DecodedBlock* d = decoded_of(leaf.column);
    BTR_CHECK(d != nullptr);
    BTR_CHECK(d->type == leaf.type);
    EvalResult out;
    // Both ternary operands must be lvalues: IntLeafCtx keeps a pointer
    // into the chosen leaf's int_set, so a prvalue operand would make the
    // ternary copy `leaf` into a temporary and leave the ctx dangling.
    static const PredicateExpr kIntDummy = PredicateExpr::EqualsInt("", 0);
    static const PredicateExpr kDoubleDummy =
        PredicateExpr::EqualsDouble("", 0);
    IntLeafCtx int_ctx(leaf.type == ColumnType::kInteger ? leaf : kIntDummy);
    DoubleLeafCtx double_ctx(leaf.type == ColumnType::kDouble ? leaf
                                                              : kDoubleDummy);
    for (u32 i = 0; i < d->count; i++) {
      if (d->IsNull(i)) {
        out.unknown.Add(i);
        continue;
      }
      bool match = false;
      switch (leaf.type) {
        case ColumnType::kInteger:
          match = int_ctx.Match(d->ints[i]);
          break;
        case ColumnType::kDouble:
          match = double_ctx.Match(d->doubles[i]);
          break;
        case ColumnType::kString:
          match = MatchString(d->strings.Get(i), leaf);
          break;
      }
      if (match) out.pass.Add(i);
    }
    out.pass.RunOptimize();
    out.unknown.RunOptimize();
    return out;
  };
  u32 leaf_index = 0;
  return EvalNode(expr, row_count, eval_leaf, &leaf_index);
}

RoaringBitmap SelectMatches(const u8* block, const PredicateExpr& expr,
                            const CompressionConfig& config) {
  BlockHeader h = ParseHeader(block);
  EvalResult r = EvaluateExpr(
      expr, h.count,
      [block](const std::string&) { return block; }, config, nullptr);
  return std::move(r.pass);
}

u32 CountMatches(const u8* block, const PredicateExpr& expr,
                 const CompressionConfig& config) {
  return static_cast<u32>(SelectMatches(block, expr, config).Cardinality());
}

bool HasFastPath(const u8* block, const PredicateExpr& leaf) {
  BlockHeader h = ParseHeader(block);
  if (!leaf.IsLeaf() || h.type != leaf.type) return false;
  switch (h.type) {
    case ColumnType::kInteger:
      switch (static_cast<IntSchemeCode>(h.scheme)) {
        case IntSchemeCode::kOneValue:
        case IntSchemeCode::kRle:
        case IntSchemeCode::kDict:
        case IntSchemeCode::kFrequency:
          return true;
        case IntSchemeCode::kBp128:
          // Range ops ride the miniblock-pruning kernel; IN does not.
          return leaf.op != CompareOp::kIn;
        default:
          return false;
      }
    case ColumnType::kDouble:
      switch (static_cast<DoubleSchemeCode>(h.scheme)) {
        case DoubleSchemeCode::kOneValue:
        case DoubleSchemeCode::kRle:
        case DoubleSchemeCode::kDict:
        case DoubleSchemeCode::kFrequency:
          return true;
        default:
          return false;
      }
    case ColumnType::kString:
      switch (static_cast<StringSchemeCode>(h.scheme)) {
        case StringSchemeCode::kOneValue:
        case StringSchemeCode::kDict:
          return true;
        default:
          return false;
      }
  }
  return false;
}

}  // namespace btr
