#include "gpc/lz77.h"

#include <cstring>

namespace btr::gpc {

namespace {

constexpr u32 kHashBits = 15;
constexpr u32 kHashSize = 1u << kHashBits;
constexpr u32 kMinMatch = 4;
constexpr u32 kMaxOffset = 65535;
// Matches may not start within the last kTailLiterals bytes; keeps the
// decompressor's wild copies inside the buffer.
constexpr size_t kTailLiterals = 12;

inline u32 Hash4(const u8* p) {
  u32 v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void EmitLength(size_t len, ByteBuffer* out) {
  while (len >= 255) {
    out->AppendValue<u8>(255);
    len -= 255;
  }
  out->AppendValue<u8>(static_cast<u8>(len));
}

void EmitSequence(const u8* literals, size_t literal_len, u32 offset,
                  size_t match_len, bool final_sequence, ByteBuffer* out) {
  u8 token = 0;
  size_t lit_extra = 0;
  if (literal_len >= 15) {
    token = 15 << 4;
    lit_extra = literal_len - 15;
  } else {
    token = static_cast<u8>(literal_len) << 4;
  }
  size_t match_extra = 0;
  if (!final_sequence) {
    size_t stored = match_len - kMinMatch;
    if (stored >= 15) {
      token |= 15;
      match_extra = stored - 15;
    } else {
      token |= static_cast<u8>(stored);
    }
  }
  out->AppendValue<u8>(token);
  if (literal_len >= 15) EmitLength(lit_extra, out);
  out->Append(literals, literal_len);
  if (!final_sequence) {
    out->AppendValue<u16>(static_cast<u16>(offset));
    if ((token & 15) == 15) EmitLength(match_extra, out);
  }
}

}  // namespace

size_t Lz77Codec::Compress(const u8* in, size_t len, ByteBuffer* out) const {
  size_t start_size = out->size();
  if (len == 0) return 0;

  u32 table[kHashSize];
  std::memset(table, 0xFF, sizeof(table));  // 0xFFFFFFFF = empty

  size_t pos = 0;
  size_t literal_start = 0;
  size_t match_limit = len > kTailLiterals ? len - kTailLiterals : 0;

  while (pos + kMinMatch <= match_limit) {
    u32 h = Hash4(in + pos);
    u32 candidate = table[h];
    table[h] = static_cast<u32>(pos);
    if (candidate != 0xFFFFFFFFu && pos - candidate <= kMaxOffset &&
        std::memcmp(in + candidate, in + pos, kMinMatch) == 0) {
      // Extend the match forward.
      size_t match_len = kMinMatch;
      while (pos + match_len < match_limit &&
             in[candidate + match_len] == in[pos + match_len]) {
        match_len++;
      }
      EmitSequence(in + literal_start, pos - literal_start,
                   static_cast<u32>(pos - candidate), match_len,
                   /*final_sequence=*/false, out);
      // Insert a couple of positions inside the match to help later finds.
      for (size_t p = pos + 1; p + kMinMatch <= pos + match_len && p < match_limit;
           p += 3) {
        table[Hash4(in + p)] = static_cast<u32>(p);
      }
      pos += match_len;
      literal_start = pos;
    } else {
      pos++;
    }
  }
  // Final literal run.
  EmitSequence(in + literal_start, len - literal_start, 0, 0,
               /*final_sequence=*/true, out);
  return out->size() - start_size;
}

size_t Lz77Codec::Decompress(const u8* in, size_t compressed_len, u8* out,
                             size_t decompressed_len) const {
  const u8* src = in;
  const u8* src_end = in + compressed_len;
  u8* dst = out;
  u8* dst_end = out + decompressed_len;

  while (dst < dst_end) {
    BTR_DCHECK(src < src_end);
    u8 token = *src++;
    // Literals.
    size_t literal_len = token >> 4;
    if (literal_len == 15) {
      u8 ext;
      do {
        ext = *src++;
        literal_len += ext;
      } while (ext == 255);
    }
    if (literal_len > 0) {
      // Wild copy in 16-byte steps: output has kSimdPadding slack and the
      // compressor never lets literals overrun the source.
      const u8* lsrc = src;
      u8* ldst = dst;
      size_t remaining = literal_len;
      while (true) {
        std::memcpy(ldst, lsrc, 16);
        if (remaining <= 16) break;
        ldst += 16;
        lsrc += 16;
        remaining -= 16;
      }
      src += literal_len;
      dst += literal_len;
    }
    if (dst >= dst_end) break;  // final sequence has no match
    // Match.
    u16 offset;
    std::memcpy(&offset, src, 2);
    src += 2;
    size_t match_len = (token & 15);
    if (match_len == 15) {
      u8 ext;
      do {
        ext = *src++;
        match_len += ext;
      } while (ext == 255);
    }
    match_len += kMinMatch;
    const u8* match_src = dst - offset;
    BTR_DCHECK(match_src >= out);
    if (offset >= 8) {
      u8* mdst = dst;
      const u8* msrc = match_src;
      size_t remaining = match_len;
      while (true) {
        std::memcpy(mdst, msrc, 8);
        if (remaining <= 8) break;
        mdst += 8;
        msrc += 8;
        remaining -= 8;
      }
    } else {
      for (size_t i = 0; i < match_len; i++) dst[i] = match_src[i];
    }
    dst += match_len;
  }
  BTR_DCHECK(dst == dst_end);
  return static_cast<size_t>(src - in);
}

}  // namespace btr::gpc
