#include "gpc/codec.h"

#include <cstring>

#include "gpc/entropy_lz.h"
#include "gpc/lz77.h"

namespace btr::gpc {

namespace {

class NoneCodec final : public Codec {
 public:
  size_t Compress(const u8* in, size_t len, ByteBuffer* out) const override {
    out->Append(in, len);
    return len;
  }
  size_t Decompress(const u8* in, size_t compressed_len, u8* out,
                    size_t decompressed_len) const override {
    BTR_DCHECK(compressed_len == decompressed_len);
    (void)compressed_len;
    if (decompressed_len > 0) std::memcpy(out, in, decompressed_len);
    return decompressed_len;
  }
  CodecKind kind() const override { return CodecKind::kNone; }
  std::string name() const override { return "none"; }
};

}  // namespace

const Codec& GetCodec(CodecKind kind) {
  static const NoneCodec* none = new NoneCodec();
  static const Lz77Codec* lz77 = new Lz77Codec();
  static const EntropyLzCodec* entropy = new EntropyLzCodec();
  switch (kind) {
    case CodecKind::kNone: return *none;
    case CodecKind::kLz77: return *lz77;
    case CodecKind::kEntropyLz: return *entropy;
  }
  BTR_CHECK_MSG(false, "unknown codec kind");
  return *none;
}

const char* CodecName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone: return "none";
    case CodecKind::kLz77: return "lz77";
    case CodecKind::kEntropyLz: return "entropy_lz";
  }
  return "unknown";
}

}  // namespace btr::gpc
