// Canonical Huffman coder over byte alphabets, used by the Zstd-class
// EntropyLzCodec's literal stream. Encoder limits code lengths to
// kMaxCodeLength by frequency scaling; decoder uses a full single-level
// lookup table (peek kMaxCodeLength bits -> symbol, length).
#ifndef BTR_GPC_HUFFMAN_H_
#define BTR_GPC_HUFFMAN_H_

#include <vector>

#include "util/buffer.h"
#include "util/types.h"

namespace btr::gpc {

inline constexpr u32 kHuffMaxCodeLength = 12;

// Appends: [u8 256 code lengths][u32 bit count][packed bitstream].
// Degenerate inputs (zero or one distinct symbol) are handled.
// Returns bytes appended.
size_t HuffmanEncode(const u8* in, size_t len, ByteBuffer* out);

// Decodes exactly `decoded_len` symbols; returns bytes consumed.
size_t HuffmanDecode(const u8* in, size_t decoded_len, u8* out);

// Encoded size (header + bitstream bytes) without materializing output.
size_t HuffmanEncodedSize(const u8* in, size_t len);

}  // namespace btr::gpc

#endif  // BTR_GPC_HUFFMAN_H_
