// General-purpose byte codec interface. These stand in for the
// heavyweight codecs the paper layers on Parquet/ORC (Snappy, LZ4, Zstd):
// no dev headers are available offline, so both trade-off corners are
// reimplemented from scratch (see gpc/lz77.h and gpc/entropy_lz.h).
#ifndef BTR_GPC_CODEC_H_
#define BTR_GPC_CODEC_H_

#include <string>

#include "util/buffer.h"
#include "util/types.h"

namespace btr::gpc {

enum class CodecKind : u8 {
  kNone = 0,       // memcpy passthrough
  kLz77 = 1,       // Snappy/LZ4-class: fast, modest ratio
  kEntropyLz = 2,  // Zstd-class: slower, denser
};

class Codec {
 public:
  virtual ~Codec() = default;

  // Appends the compressed form of in[0..len) to *out; returns bytes added.
  virtual size_t Compress(const u8* in, size_t len, ByteBuffer* out) const = 0;

  // Decompresses exactly `decompressed_len` bytes (stored by the caller's
  // framing). `out` must have decompressed_len + kSimdPadding capacity.
  // Returns bytes consumed from `in`.
  virtual size_t Decompress(const u8* in, size_t compressed_len,
                            u8* out, size_t decompressed_len) const = 0;

  virtual CodecKind kind() const = 0;
  virtual std::string name() const = 0;
};

// Returns a process-lifetime singleton for the codec kind.
const Codec& GetCodec(CodecKind kind);

const char* CodecName(CodecKind kind);

}  // namespace btr::gpc

#endif  // BTR_GPC_CODEC_H_
