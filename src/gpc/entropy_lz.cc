#include "gpc/entropy_lz.h"

#include <cstring>
#include <vector>

#include "gpc/huffman.h"

namespace btr::gpc {

namespace {

constexpr u32 kHashBits = 16;
constexpr u32 kHashSize = 1u << kHashBits;
constexpr u32 kMinMatch = 4;
constexpr u32 kMaxOffset = 65535;
constexpr size_t kTailLiterals = 12;

inline u32 Hash4(const u8* p) {
  u32 v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

struct Sequence {
  u32 literal_len;
  u32 match_len;  // 0 for the final literal-only sequence
  u16 offset;
};

void AppendLengthExt(size_t len, std::vector<u8>* ext) {
  while (len >= 255) {
    ext->push_back(255);
    len -= 255;
  }
  ext->push_back(static_cast<u8>(len));
}

size_t ReadLengthExt(const u8*& cursor) {
  size_t total = 0;
  u8 b;
  do {
    b = *cursor++;
    total += b;
  } while (b == 255);
  return total;
}

}  // namespace

size_t EntropyLzCodec::Compress(const u8* in, size_t len, ByteBuffer* out) const {
  size_t start_size = out->size();

  // --- Parse: greedy with one-step lazy evaluation. ------------------------
  std::vector<Sequence> sequences;
  std::vector<u8> literals;
  literals.reserve(len / 2);

  std::vector<u32> table(kHashSize, 0xFFFFFFFFu);
  size_t pos = 0;
  size_t literal_start = 0;
  size_t match_limit = len > kTailLiterals ? len - kTailLiterals : 0;

  auto find_match = [&](size_t at, u32* out_offset) -> size_t {
    u32 h = Hash4(in + at);
    u32 candidate = table[h];
    table[h] = static_cast<u32>(at);
    if (candidate == 0xFFFFFFFFu || at - candidate > kMaxOffset ||
        std::memcmp(in + candidate, in + at, kMinMatch) != 0) {
      return 0;
    }
    size_t match_len = kMinMatch;
    while (at + match_len < match_limit &&
           in[candidate + match_len] == in[at + match_len]) {
      match_len++;
    }
    *out_offset = static_cast<u32>(at - candidate);
    return match_len;
  };

  while (pos + kMinMatch <= match_limit) {
    u32 offset = 0;
    size_t match_len = find_match(pos, &offset);
    if (match_len == 0) {
      pos++;
      continue;
    }
    // One-step lazy: a longer match starting one byte later wins.
    if (pos + 1 + kMinMatch <= match_limit) {
      u32 next_offset = 0;
      size_t next_len = find_match(pos + 1, &next_offset);
      if (next_len > match_len + 1) {
        pos++;
        match_len = next_len;
        offset = next_offset;
      }
    }
    literals.insert(literals.end(), in + literal_start, in + pos);
    sequences.push_back(Sequence{static_cast<u32>(pos - literal_start),
                                 static_cast<u32>(match_len),
                                 static_cast<u16>(offset)});
    for (size_t p = pos + 2; p + kMinMatch <= pos + match_len && p < match_limit;
         p += 2) {
      table[Hash4(in + p)] = static_cast<u32>(p);
    }
    pos += match_len;
    literal_start = pos;
  }
  literals.insert(literals.end(), in + literal_start, in + len);
  sequences.push_back(
      Sequence{static_cast<u32>(len - literal_start), 0, 0});

  // --- Serialize streams. ----------------------------------------------------
  std::vector<u8> tokens;
  std::vector<u8> extensions;
  std::vector<u16> offsets;
  tokens.reserve(sequences.size());
  for (const Sequence& seq : sequences) {
    u8 token = 0;
    if (seq.literal_len >= 15) {
      token = 15 << 4;
    } else {
      token = static_cast<u8>(seq.literal_len) << 4;
    }
    if (seq.match_len > 0) {
      u32 stored = seq.match_len - kMinMatch;
      token |= stored >= 15 ? 15 : static_cast<u8>(stored);
    }
    tokens.push_back(token);
    if (seq.literal_len >= 15) AppendLengthExt(seq.literal_len - 15, &extensions);
    if (seq.match_len > 0 && seq.match_len - kMinMatch >= 15) {
      AppendLengthExt(seq.match_len - kMinMatch - 15, &extensions);
    }
    if (seq.match_len > 0) offsets.push_back(seq.offset);
  }

  out->AppendValue<u32>(static_cast<u32>(literals.size()));
  out->AppendValue<u32>(static_cast<u32>(sequences.size()));
  out->AppendValue<u32>(static_cast<u32>(extensions.size()));
  HuffmanEncode(literals.data(), literals.size(), out);
  out->Append(tokens.data(), tokens.size());
  out->Append(extensions.data(), extensions.size());
  out->Append(offsets.data(), offsets.size() * sizeof(u16));
  return out->size() - start_size;
}

size_t EntropyLzCodec::Decompress(const u8* in, size_t compressed_len, u8* out,
                                  size_t decompressed_len) const {
  (void)compressed_len;
  const u8* cursor = in;
  u32 literal_count, sequence_count, extension_bytes;
  std::memcpy(&literal_count, cursor, 4);
  std::memcpy(&sequence_count, cursor + 4, 4);
  std::memcpy(&extension_bytes, cursor + 8, 4);
  cursor += 12;

  std::vector<u8> literals(literal_count + 16);
  cursor += HuffmanDecode(cursor, literal_count, literals.data());

  const u8* tokens = cursor;
  cursor += sequence_count;
  const u8* ext = cursor;
  cursor += extension_bytes;
  const u8* offsets = cursor;

  const u8* lit_src = literals.data();
  u8* dst = out;
  u8* dst_end = out + decompressed_len;
  for (u32 s = 0; s < sequence_count; s++) {
    u8 token = tokens[s];
    size_t literal_len = token >> 4;
    if (literal_len == 15) literal_len += ReadLengthExt(ext);
    std::memcpy(dst, lit_src, literal_len);
    dst += literal_len;
    lit_src += literal_len;
    bool is_final = (s == sequence_count - 1);
    if (is_final) break;
    size_t match_len = token & 15;
    if (match_len == 15) match_len += ReadLengthExt(ext);
    match_len += kMinMatch;
    u16 offset;
    std::memcpy(&offset, offsets, 2);
    offsets += 2;
    const u8* match_src = dst - offset;
    if (offset >= 8) {
      u8* mdst = dst;
      const u8* msrc = match_src;
      size_t remaining = match_len;
      while (true) {
        std::memcpy(mdst, msrc, 8);
        if (remaining <= 8) break;
        mdst += 8;
        msrc += 8;
        remaining -= 8;
      }
    } else {
      for (size_t i = 0; i < match_len; i++) dst[i] = match_src[i];
    }
    dst += match_len;
  }
  BTR_DCHECK(dst == dst_end);
  (void)dst_end;
  size_t consumed = static_cast<size_t>(offsets - in);
  return consumed;
}

}  // namespace btr::gpc
