// Snappy/LZ4-class byte-oriented LZ77 codec, implemented from scratch.
//
// Block format (LZ4-style):
//   token byte: high nibble = literal length (15 => extension bytes follow),
//               low nibble  = match length - 4 (15 => extension bytes follow)
//   [literal length extension bytes (255-continued)]
//   literal bytes
//   [2-byte little-endian match offset]   (absent for the final sequence)
//   [match length extension bytes]
// Greedy parse with a 2^15-entry hash table over 4-byte windows, 64 KiB
// offsets. Decompression is a tight copy loop with 8-byte wild copies.
#ifndef BTR_GPC_LZ77_H_
#define BTR_GPC_LZ77_H_

#include "gpc/codec.h"

namespace btr::gpc {

class Lz77Codec final : public Codec {
 public:
  size_t Compress(const u8* in, size_t len, ByteBuffer* out) const override;
  size_t Decompress(const u8* in, size_t compressed_len, u8* out,
                    size_t decompressed_len) const override;
  CodecKind kind() const override { return CodecKind::kLz77; }
  std::string name() const override { return "lz77"; }
};

}  // namespace btr::gpc

#endif  // BTR_GPC_LZ77_H_
