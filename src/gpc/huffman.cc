#include "gpc/huffman.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "util/bits.h"
#include "util/bitstream.h"

namespace btr::gpc {

namespace {

// Computes Huffman code lengths for the 256-symbol alphabet, limited to
// kHuffMaxCodeLength by iterative frequency scaling.
void ComputeCodeLengths(const u64 freq_in[256], u8 lengths[256]) {
  u64 freq[256];
  std::memcpy(freq, freq_in, sizeof(freq));
  while (true) {
    std::memset(lengths, 0, 256);
    // Heap of (weight, node). Leaves are 0..255, internal nodes 256+.
    struct Node {
      u64 weight;
      u16 left, right;  // children, 0xFFFF for leaves
    };
    std::vector<Node> nodes;
    nodes.reserve(512);
    using Entry = std::pair<u64, u16>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (u32 s = 0; s < 256; s++) {
      nodes.push_back(Node{freq[s], 0xFFFF, 0xFFFF});
      if (freq[s] > 0) heap.push({freq[s], static_cast<u16>(s)});
    }
    if (heap.empty()) return;  // no symbols at all
    if (heap.size() == 1) {
      lengths[heap.top().second] = 1;
      return;
    }
    while (heap.size() > 1) {
      Entry a = heap.top();
      heap.pop();
      Entry b = heap.top();
      heap.pop();
      u16 id = static_cast<u16>(nodes.size());
      nodes.push_back(Node{a.first + b.first, a.second, b.second});
      heap.push({a.first + b.first, id});
    }
    // Depth-assign via explicit stack.
    std::vector<std::pair<u16, u8>> stack;
    stack.push_back({heap.top().second, 0});
    u8 max_len = 0;
    while (!stack.empty()) {
      auto [id, depth] = stack.back();
      stack.pop_back();
      const Node& n = nodes[id];
      if (n.left == 0xFFFF) {
        lengths[id] = depth == 0 ? 1 : depth;
        max_len = std::max(max_len, lengths[id]);
      } else {
        stack.push_back({n.left, static_cast<u8>(depth + 1)});
        stack.push_back({n.right, static_cast<u8>(depth + 1)});
      }
    }
    if (max_len <= kHuffMaxCodeLength) return;
    // Flatten the distribution and retry.
    for (u32 s = 0; s < 256; s++) {
      if (freq[s] > 0) freq[s] = freq[s] / 2 + 1;
    }
  }
}

// Canonical code assignment: shorter codes first, ties by symbol value.
void AssignCanonicalCodes(const u8 lengths[256], u16 codes[256]) {
  u32 length_count[kHuffMaxCodeLength + 1] = {0};
  for (u32 s = 0; s < 256; s++) length_count[lengths[s]]++;
  length_count[0] = 0;  // unused symbols must not shift the code space
  u16 next_code[kHuffMaxCodeLength + 1] = {0};
  u16 code = 0;
  for (u32 len = 1; len <= kHuffMaxCodeLength; len++) {
    code = static_cast<u16>((code + length_count[len - 1]) << 1);
    next_code[len] = code;
  }
  for (u32 s = 0; s < 256; s++) {
    if (lengths[s] > 0) codes[s] = next_code[lengths[s]]++;
  }
}

struct DecodeEntry {
  u8 symbol;
  u8 length;
};

void BuildDecodeTable(const u8 lengths[256],
                      std::vector<DecodeEntry>* table) {
  u16 codes[256] = {0};
  AssignCanonicalCodes(lengths, codes);
  table->assign(size_t{1} << kHuffMaxCodeLength, DecodeEntry{0, 0});
  for (u32 s = 0; s < 256; s++) {
    u8 len = lengths[s];
    if (len == 0) continue;
    u32 shift = kHuffMaxCodeLength - len;
    u32 base = static_cast<u32>(codes[s]) << shift;
    for (u32 i = 0; i < (1u << shift); i++) {
      (*table)[base + i] = DecodeEntry{static_cast<u8>(s), len};
    }
  }
}

}  // namespace

size_t HuffmanEncode(const u8* in, size_t len, ByteBuffer* out) {
  size_t start_size = out->size();
  u64 freq[256] = {0};
  for (size_t i = 0; i < len; i++) freq[in[i]]++;
  u8 lengths[256] = {0};
  ComputeCodeLengths(freq, lengths);
  u16 codes[256] = {0};
  AssignCanonicalCodes(lengths, codes);

  out->Append(lengths, 256);
  BitWriter writer;
  for (size_t i = 0; i < len; i++) {
    writer.Write(codes[in[i]], lengths[in[i]]);
  }
  u64 bit_count = writer.bit_count();
  std::vector<u64> words = writer.Finish();
  out->AppendValue<u64>(bit_count);
  out->Append(words.data(), words.size() * sizeof(u64));
  return out->size() - start_size;
}

size_t HuffmanEncodedSize(const u8* in, size_t len) {
  u64 freq[256] = {0};
  for (size_t i = 0; i < len; i++) freq[in[i]]++;
  u8 lengths[256] = {0};
  ComputeCodeLengths(freq, lengths);
  u64 bits = 0;
  for (u32 s = 0; s < 256; s++) bits += freq[s] * lengths[s];
  return 256 + sizeof(u64) + CeilDiv(bits, 64) * sizeof(u64);
}

size_t HuffmanDecode(const u8* in, size_t decoded_len, u8* out) {
  const u8* lengths = in;
  const u8* cursor = in + 256;
  u64 bit_count;
  std::memcpy(&bit_count, cursor, sizeof(u64));
  cursor += sizeof(u64);
  size_t word_count = CeilDiv(bit_count, 64);

  std::vector<DecodeEntry> table;
  BuildDecodeTable(lengths, &table);

  // The word stream is byte-aligned in the buffer; copy-free access.
  std::vector<u64> words(word_count + 1, 0);
  std::memcpy(words.data(), cursor, word_count * sizeof(u64));

  size_t index = 0;
  u32 offset = 0;
  for (size_t i = 0; i < decoded_len; i++) {
    u64 window = words[index] << offset;
    if (offset > 0) window |= words[index + 1] >> (64 - offset);
    u32 peek = static_cast<u32>(window >> (64 - kHuffMaxCodeLength));
    DecodeEntry e = table[peek];
    BTR_DCHECK(e.length > 0);
    out[i] = e.symbol;
    offset += e.length;
    if (offset >= 64) {
      offset -= 64;
      index++;
    }
  }
  return 256 + sizeof(u64) + word_count * sizeof(u64);
}

}  // namespace btr::gpc
