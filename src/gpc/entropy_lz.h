// Zstd-class codec: LZ77 parse into separated sequence streams with a
// canonical-Huffman entropy stage over the literal stream. Denser than the
// Snappy-class Lz77Codec, slower to decompress — it occupies the same
// trade-off corner Zstd does in the paper's Parquet+Zstd configuration.
//
// Frame layout:
//   u32 literal_count | u32 sequence_count
//   Huffman-encoded literal stream (gpc/huffman.h framing)
//   sequence tokens   (1 byte each: litlen nibble | matchlen nibble)
//   extension bytes   (255-continued, lit-ext then match-ext per sequence)
//   offsets           (u16 per sequence with a match)
#ifndef BTR_GPC_ENTROPY_LZ_H_
#define BTR_GPC_ENTROPY_LZ_H_

#include "gpc/codec.h"

namespace btr::gpc {

class EntropyLzCodec final : public Codec {
 public:
  size_t Compress(const u8* in, size_t len, ByteBuffer* out) const override;
  size_t Decompress(const u8* in, size_t compressed_len, u8* out,
                    size_t decompressed_len) const override;
  CodecKind kind() const override { return CodecKind::kEntropyLz; }
  std::string name() const override { return "entropy_lz"; }
};

}  // namespace btr::gpc

#endif  // BTR_GPC_ENTROPY_LZ_H_
