// Fundamental integer aliases and invariant-checking macros used across the
// whole library. Kept minimal and header-only: every other module includes
// this file.
#ifndef BTR_UTIL_TYPES_H_
#define BTR_UTIL_TYPES_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace btr {

using u8 = uint8_t;
using u16 = uint16_t;
using u32 = uint32_t;
using u64 = uint64_t;
using i8 = int8_t;
using i16 = int16_t;
using i32 = int32_t;
using i64 = int64_t;

// Internal invariant check. Unlike assert(), BTR_CHECK is active in release
// builds: compression corruption must never pass silently. Use for
// programmer errors and data-structure invariants, not for user input
// (user-facing fallible paths return btr::Status instead).
#define BTR_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::std::fprintf(stderr, "BTR_CHECK failed: %s at %s:%d\n", #cond,      \
                     __FILE__, __LINE__);                                   \
      ::std::abort();                                                       \
    }                                                                       \
  } while (0)

#define BTR_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::std::fprintf(stderr, "BTR_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                     msg, __FILE__, __LINE__);                              \
      ::std::abort();                                                       \
    }                                                                       \
  } while (0)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define BTR_DCHECK(cond) ((void)0)
#else
#define BTR_DCHECK(cond) BTR_CHECK(cond)
#endif

}  // namespace btr

#endif  // BTR_UTIL_TYPES_H_
