// Runtime SIMD policy. Every vectorized decompression routine in this
// library has a scalar twin; which one runs is decided by SimdPolicy. This
// enables the paper's Section 6.8 ablation ("is BtrBlocks only fast because
// of SIMD?") on any machine and keeps the scalar paths tested.
#ifndef BTR_UTIL_SIMD_H_
#define BTR_UTIL_SIMD_H_

// BTR_DISABLE_AVX2 (CMake option of the same name) forces the scalar
// twins even on AVX2-capable hardware — the CI parity job builds with it
// to prove the fallback produces bit-identical results.
#if defined(__AVX2__) && !defined(BTR_DISABLE_AVX2)
#define BTR_HAS_AVX2 1
#include <immintrin.h>
#else
#define BTR_HAS_AVX2 0
#endif

namespace btr {

class SimdPolicy {
 public:
  // Returns true if vectorized kernels should be used.
  static bool Enabled() { return enabled_; }

  // Globally disables/enables SIMD kernels (used by the --scalar ablation
  // and by tests that compare scalar vs vector output bit-for-bit).
  static void SetEnabled(bool enabled) { enabled_ = enabled; }

 private:
  static inline bool enabled_ = BTR_HAS_AVX2;
};

// RAII helper to run a scope with SIMD forced on or off.
class ScopedSimd {
 public:
  explicit ScopedSimd(bool enabled) : previous_(SimdPolicy::Enabled()) {
    SimdPolicy::SetEnabled(enabled && BTR_HAS_AVX2);
  }
  ~ScopedSimd() { SimdPolicy::SetEnabled(previous_); }

  ScopedSimd(const ScopedSimd&) = delete;
  ScopedSimd& operator=(const ScopedSimd&) = delete;

 private:
  bool previous_;
};

}  // namespace btr

#endif  // BTR_UTIL_SIMD_H_
