// Wall-clock timing helpers for the benchmark harnesses.
#ifndef BTR_UTIL_TIMER_H_
#define BTR_UTIL_TIMER_H_

#include <chrono>

namespace btr {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedNanos() const {
    return std::chrono::duration<double, std::nano>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace btr

#endif  // BTR_UTIL_TIMER_H_
