// Lightweight status type for fallible operations (file I/O, parsing,
// format validation). Follows the RocksDB idiom: cheap to return, carries a
// code and a message. Hot compression paths do not use Status; they operate
// on validated inputs and use BTR_CHECK for invariants.
#ifndef BTR_UTIL_STATUS_H_
#define BTR_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace btr {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kCorruption,
    kIoError,
    kNotFound,
    kInternal,     // invariant violation crossing a thread boundary (e.g. a
                   // worker exception surfacing at the Scanner API)
    kUnavailable,  // transient: the backend could not serve the request
                   // right now (S3 500/503) — safe to retry
    kThrottled,    // transient: the backend asked us to slow down
                   // (S3 503 SlowDown) — safe to retry after backoff
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Throttled(std::string msg) {
    return Status(Code::kThrottled, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsThrottled() const { return code_ == Code::kThrottled; }
  // Transient failures are worth retrying with backoff; everything else is
  // permanent for a given request (see exec/retry.h).
  bool IsTransient() const {
    return code_ == Code::kUnavailable || code_ == Code::kThrottled;
  }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "unknown";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kIoError: name = "IoError"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kInternal: name = "Internal"; break;
      case Code::kUnavailable: name = "Unavailable"; break;
      case Code::kThrottled: name = "Throttled"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

#define BTR_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::btr::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace btr

#endif  // BTR_UTIL_STATUS_H_
