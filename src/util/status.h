// Lightweight status type for fallible operations (file I/O, parsing,
// format validation). Follows the RocksDB idiom: cheap to return, carries a
// code and a message. Hot compression paths do not use Status; they operate
// on validated inputs and use BTR_CHECK for invariants.
#ifndef BTR_UTIL_STATUS_H_
#define BTR_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace btr {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kCorruption,
    kIoError,
    kNotFound,
    kInternal,  // invariant violation crossing a thread boundary (e.g. a
                // worker exception surfacing at the Scanner API)
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "unknown";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kIoError: name = "IoError"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kInternal: name = "Internal"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

#define BTR_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::btr::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace btr

#endif  // BTR_UTIL_STATUS_H_
