// Bit-twiddling helpers shared by the bit-packing, floating-point and
// bitmap modules.
#ifndef BTR_UTIL_BITS_H_
#define BTR_UTIL_BITS_H_

#include <bit>

#include "util/types.h"

namespace btr {

// Number of bits required to represent `v` (0 needs 0 bits).
inline u32 BitWidth(u32 v) { return v == 0 ? 0 : 32 - std::countl_zero(v); }
inline u32 BitWidth64(u64 v) { return v == 0 ? 0 : 64 - std::countl_zero(v); }

inline u32 CountLeadingZeros64(u64 v) { return v == 0 ? 64 : std::countl_zero(v); }
inline u32 CountTrailingZeros64(u64 v) { return v == 0 ? 64 : std::countr_zero(v); }
inline u32 CountLeadingZeros32(u32 v) { return v == 0 ? 32 : std::countl_zero(v); }
inline u32 PopCount64(u64 v) { return std::popcount(v); }

// Zigzag maps signed to unsigned so small-magnitude values stay small.
inline u32 ZigzagEncode(i32 v) { return (static_cast<u32>(v) << 1) ^ static_cast<u32>(v >> 31); }
inline i32 ZigzagDecode(u32 v) { return static_cast<i32>(v >> 1) ^ -static_cast<i32>(v & 1); }
inline u64 ZigzagEncode64(i64 v) { return (static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63); }
inline i64 ZigzagDecode64(u64 v) { return static_cast<i64>(v >> 1) ^ -static_cast<i64>(v & 1); }

inline u64 RoundUp(u64 v, u64 multiple) { return (v + multiple - 1) / multiple * multiple; }
inline u64 CeilDiv(u64 a, u64 b) { return (a + b - 1) / b; }

}  // namespace btr

#endif  // BTR_UTIL_BITS_H_
