#include "util/crc32c.h"

#include <cstring>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#define BTR_HAS_HW_CRC32C 1
#else
#define BTR_HAS_HW_CRC32C 0
#endif

namespace btr {

namespace {

// Slice-by-8 tables for the reflected Castagnoli polynomial, generated at
// static-init time (256*8 u32 = 8 KiB, cheaper than shipping the table).
constexpr u32 kPoly = 0x82F63B78u;

struct Tables {
  u32 t[8][256];

  Tables() {
    for (u32 i = 0; i < 256; i++) {
      u32 crc = i;
      for (int bit = 0; bit < 8; bit++) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (u32 i = 0; i < 256; i++) {
      for (int slice = 1; slice < 8; slice++) {
        t[slice][i] = (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables tables;
  return tables;
}

u32 ExtendSoftware(u32 state, const u8* p, size_t n) {
  const Tables& tb = tables();
  while (n >= 8) {
    u64 word;
    std::memcpy(&word, p, 8);
    word ^= state;
    state = tb.t[7][word & 0xFF] ^ tb.t[6][(word >> 8) & 0xFF] ^
            tb.t[5][(word >> 16) & 0xFF] ^ tb.t[4][(word >> 24) & 0xFF] ^
            tb.t[3][(word >> 32) & 0xFF] ^ tb.t[2][(word >> 40) & 0xFF] ^
            tb.t[1][(word >> 48) & 0xFF] ^ tb.t[0][word >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    state = (state >> 8) ^ tb.t[0][(state ^ *p++) & 0xFF];
  }
  return state;
}

#if BTR_HAS_HW_CRC32C
u32 ExtendHardware(u32 state, const u8* p, size_t n) {
  u64 state64 = state;
  while (n >= 8) {
    u64 word;
    std::memcpy(&word, p, 8);
    state64 = _mm_crc32_u64(state64, word);
    p += 8;
    n -= 8;
  }
  u32 state32 = static_cast<u32>(state64);
  while (n-- > 0) {
    state32 = _mm_crc32_u8(state32, *p++);
  }
  return state32;
}
#endif

}  // namespace

u32 Crc32cExtend(u32 crc, const void* data, size_t n) {
  const u8* p = static_cast<const u8*>(data);
  u32 state = ~crc;
#if BTR_HAS_HW_CRC32C
  return ~ExtendHardware(state, p, n);
#else
  return ~ExtendSoftware(state, p, n);
#endif
}

u32 Crc32c(const void* data, size_t n) { return Crc32cExtend(0, data, n); }

namespace {

// GF(2) linear algebra over 32-bit CRC state vectors: `mat` is a 32x32
// bit matrix (one u32 per row of the operator), applied to `vec`.
u32 Gf2MatrixTimes(const u32* mat, u32 vec) {
  u32 sum = 0;
  while (vec != 0) {
    if (vec & 1) sum ^= *mat;
    vec >>= 1;
    mat++;
  }
  return sum;
}

void Gf2MatrixSquare(u32* square, const u32* mat) {
  for (int n = 0; n < 32; n++) square[n] = Gf2MatrixTimes(mat, mat[n]);
}

}  // namespace

u32 Crc32cCombine(u32 crc_a, u32 crc_b, u64 len_b) {
  // The zlib crc32_combine construction: advancing a CRC past k zero bytes
  // is a linear operator; build the one-zero-bit operator from the
  // reflected Castagnoli polynomial, square it repeatedly, and apply the
  // squarings selected by the bits of len_b. Works directly on finalized
  // CRCs because the pre/post inversions cancel through the XOR with
  // crc_b (which carries its own inversion of the same length).
  if (len_b == 0) return crc_a;
  u32 even[32];  // operator for 2^(2n+1) zero bits
  u32 odd[32];   // operator for 2^(2n) zero bits
  odd[0] = 0x82F63B78u;  // CRC32C polynomial, reflected
  u32 row = 1;
  for (int n = 1; n < 32; n++) {
    odd[n] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);   // 2 zero bits
  Gf2MatrixSquare(odd, even);   // 4 zero bits
  do {
    Gf2MatrixSquare(even, odd);  // advance by another squaring
    if (len_b & 1) crc_a = Gf2MatrixTimes(even, crc_a);
    len_b >>= 1;
    if (len_b == 0) break;
    Gf2MatrixSquare(odd, even);
    if (len_b & 1) crc_a = Gf2MatrixTimes(odd, crc_a);
    len_b >>= 1;
  } while (len_b != 0);
  return crc_a ^ crc_b;
}

bool Crc32cHardwareEnabled() { return BTR_HAS_HW_CRC32C != 0; }

namespace internal {
// Exposed for the cross-check test only (declared locally there).
u32 Crc32cSoftwareForTest(const void* data, size_t n) {
  return ~ExtendSoftware(~0u, static_cast<const u8*>(data), n);
}
}  // namespace internal

}  // namespace btr
