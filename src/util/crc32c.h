// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum the scan path uses for per-block and per-footer integrity
// (docs/ROBUSTNESS.md). Own implementation, no dependencies: a slice-by-8
// table walk as the portable path and the SSE4.2 crc32 instruction when the
// build targets it (BTR_ARCH_FLAGS includes -mavx2, which implies SSE4.2).
//
// The hardware and software paths produce identical values by construction;
// util_test cross-checks them against known vectors.
#ifndef BTR_UTIL_CRC32C_H_
#define BTR_UTIL_CRC32C_H_

#include <cstddef>

#include "util/types.h"

namespace btr {

// CRC32C of [data, data+n). Equivalent to Crc32cExtend(0, data, n).
u32 Crc32c(const void* data, size_t n);

// Continues a running CRC with more bytes (crc is a previous Crc32c
// result, not a raw internal state).
u32 Crc32cExtend(u32 crc, const void* data, size_t n);

// CRC of a concatenation from the CRCs of its halves:
//   Crc32cCombine(Crc32c(A), Crc32c(B), len_B) == Crc32c(A || B)
// without touching the bytes (GF(2) matrix shift, the zlib crc32_combine
// construction on the Castagnoli polynomial). The streaming write path
// uses this to stamp a whole-object CRC when the object's header is
// produced *after* its payloads were already uploaded as multipart parts
// (src/write/streaming_writer.h).
u32 Crc32cCombine(u32 crc_a, u32 crc_b, u64 len_b);

// True when the SSE4.2 instruction path is compiled in.
bool Crc32cHardwareEnabled();

}  // namespace btr

#endif  // BTR_UTIL_CRC32C_H_
