// Deterministic PRNG used by the data generators and the sampling module.
// splitmix64 for seeding, xoshiro256** for the stream: fast, reproducible,
// and independent of the standard library's unspecified distributions.
#ifndef BTR_UTIL_RANDOM_H_
#define BTR_UTIL_RANDOM_H_

#include <cmath>

#include "util/types.h"

namespace btr {

class Random {
 public:
  explicit Random(u64 seed = 0x9E3779B97F4A7C15ULL) {
    // splitmix64 expansion of the seed into the xoshiro state.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  u64 Next() {
    u64 result = Rotl(state_[1] * 5, 7) * 9;
    u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  u64 NextBounded(u64 bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  i64 NextRange(i64 lo, i64 hi) {
    return lo + static_cast<i64>(NextBounded(static_cast<u64>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Zipf-distributed rank in [0, n) with parameter s (~1.0 is classic skew).
  // Uses rejection-inversion; good enough for workload generation.
  u64 NextZipf(u64 n, double s) {
    // Simple inverse-CDF on a precomputed-free approximation: draw u and
    // walk the harmonic tail analytically.
    double u = NextDouble();
    if (s == 1.0) s = 1.0000001;
    double t = std::pow(static_cast<double>(n), 1.0 - s);
    double p = 1.0 - u * (1.0 - t);  // inverse CDF over ranks [1, n]
    double rank = std::pow(p, 1.0 / (1.0 - s));
    u64 r = static_cast<u64>(rank);
    if (r < 1) r = 1;
    if (r > n) r = n;
    return r - 1;
  }

 private:
  static u64 Rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  u64 state_[4];
};

}  // namespace btr

#endif  // BTR_UTIL_RANDOM_H_
