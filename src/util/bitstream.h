// Bit-granular writer/reader used by the floating-point baseline codecs
// (Gorilla, Chimp, ...) and the Huffman entropy stage. Bits are packed MSB
// first within 64-bit words, matching the usual time-series codec layout.
#ifndef BTR_UTIL_BITSTREAM_H_
#define BTR_UTIL_BITSTREAM_H_

#include <vector>

#include "util/types.h"

namespace btr {

class BitWriter {
 public:
  // Appends the `bits` low-order bits of `value`, MSB first. bits <= 64.
  void Write(u64 value, u32 bits) {
    BTR_DCHECK(bits <= 64);
    if (bits == 0) return;
    if (bits < 64) value &= (u64{1} << bits) - 1;
    if (fill_ + bits <= 64) {
      current_ = (fill_ == 64) ? current_ : (current_ | (value << (64 - fill_ - bits)));
      fill_ += bits;
      if (fill_ == 64) Flush();
    } else {
      u32 first = 64 - fill_;
      current_ |= value >> (bits - first);
      fill_ = 64;
      Flush();
      current_ = value << (64 - (bits - first));
      fill_ = bits - first;
    }
  }

  void WriteBit(bool bit) { Write(bit ? 1 : 0, 1); }

  // Pads to a word boundary and returns the finished stream.
  std::vector<u64> Finish() {
    if (fill_ > 0) Flush();
    return std::move(words_);
  }

  // Total number of bits written so far.
  u64 bit_count() const { return words_.size() * 64 + fill_; }

 private:
  void Flush() {
    words_.push_back(current_);
    current_ = 0;
    fill_ = 0;
  }

  std::vector<u64> words_;
  u64 current_ = 0;
  u32 fill_ = 0;
};

class BitReader {
 public:
  BitReader(const u64* words, size_t word_count)
      : words_(words), word_count_(word_count) {}

  // Reads `bits` bits (<= 64), MSB first.
  u64 Read(u32 bits) {
    BTR_DCHECK(bits <= 64);
    if (bits == 0) return 0;
    u64 result;
    u32 available = 64 - offset_;
    BTR_DCHECK(index_ < word_count_);
    if (bits <= available) {
      result = (words_[index_] << offset_) >> (64 - bits);
      offset_ += bits;
      if (offset_ == 64) {
        offset_ = 0;
        index_++;
      }
    } else {
      u64 high = available == 0 ? 0 : ((words_[index_] << offset_) >> (64 - available));
      index_++;
      offset_ = bits - available;
      BTR_DCHECK(index_ < word_count_);
      u64 low = words_[index_] >> (64 - offset_);
      result = (high << offset_) | low;
    }
    return result;
  }

  bool ReadBit() { return Read(1) != 0; }

  u64 bits_consumed() const { return index_ * 64 + offset_; }

 private:
  const u64* words_;
  size_t word_count_;
  size_t index_ = 0;
  u32 offset_ = 0;
};

}  // namespace btr

#endif  // BTR_UTIL_BITSTREAM_H_
