// ByteBuffer: an owning, growable byte buffer with SIMD write padding.
//
// Decompression routines in this library are allowed to write up to
// kSimdPadding bytes past the logical end of their output (paper Section 5:
// AVX2 RLE decoding intentionally overshoots run boundaries and corrects the
// cursor afterwards). ByteBuffer always over-allocates by kSimdPadding so
// such stores are safe.
#ifndef BTR_UTIL_BUFFER_H_
#define BTR_UTIL_BUFFER_H_

#include <cstring>
#include <memory>

#include "util/types.h"

namespace btr {

// Bytes of slack kept past size() in every allocation. 32 bytes covers one
// AVX2 register; we use 64 to also cover two-register unrolled stores.
inline constexpr size_t kSimdPadding = 64;

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t size) { Resize(size); }

  ByteBuffer(const ByteBuffer&) = delete;
  ByteBuffer& operator=(const ByteBuffer&) = delete;
  ByteBuffer(ByteBuffer&&) = default;
  ByteBuffer& operator=(ByteBuffer&&) = default;

  u8* data() { return data_.get(); }
  const u8* data() const { return data_.get(); }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  // Grows (or shrinks) the logical size. Contents up to min(old,new) size
  // are preserved. Always keeps kSimdPadding writable bytes past size().
  void Resize(size_t new_size) {
    if (new_size + kSimdPadding > capacity_) {
      size_t new_capacity = new_size + new_size / 2 + kSimdPadding;
      std::unique_ptr<u8[]> grown(new u8[new_capacity]);
      if (size_ > 0) std::memcpy(grown.get(), data_.get(), size_);
      data_ = std::move(grown);
      capacity_ = new_capacity;
    }
    size_ = new_size;
  }

  // Ensures at least `extra` writable bytes past the current size.
  void Reserve(size_t total) {
    size_t old_size = size_;
    if (total + kSimdPadding > capacity_) Resize(total);
    size_ = old_size;
  }

  void Clear() { size_ = 0; }

  // Appends raw bytes. src may be null when n == 0.
  void Append(const void* src, size_t n) {
    if (n == 0) return;
    size_t offset = size_;
    Resize(size_ + n);
    std::memcpy(data_.get() + offset, src, n);
  }

  template <typename T>
  void AppendValue(const T& value) {
    Append(&value, sizeof(T));
  }

 private:
  std::unique_ptr<u8[]> data_;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace btr

#endif  // BTR_UTIL_BUFFER_H_
