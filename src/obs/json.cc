#include "obs/json.h"

#include <cstdio>

namespace btr::obs {

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(s, &out);
  return out;
}

}  // namespace btr::obs
