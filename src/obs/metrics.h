// Process-wide metrics registry: counters, gauges, and log-bucketed
// histograms with JSON and human-readable text export.
//
// Hot-path cost model: Counter::Add and Histogram::Record are one relaxed
// atomic RMW into a thread-striped (cache-line padded) slot — cheap enough
// to leave enabled in release builds at block granularity. Metric objects
// are created once through the registry and never destroyed (leaky
// singleton), so call sites may cache references:
//
//   static obs::Counter& blocks =
//       obs::Registry::Get().GetCounter("btr.compress.blocks");
//   blocks.Add();
//
// Naming convention: dot-separated lowercase, "<area>.<object>.<unit>",
// e.g. "exec.pool.task_wait_ns", "s3.get.bytes" (see docs/OBSERVABILITY.md).
#ifndef BTR_OBS_METRICS_H_
#define BTR_OBS_METRICS_H_

#include <atomic>
#include <string>

#include "util/types.h"

namespace btr::obs {

namespace detail {
// Stable small index for the calling thread, used to pick a counter stripe.
u32 ThreadStripe();
}  // namespace detail

// Monotonically increasing sum, striped across threads.
class Counter {
 public:
  static constexpr u32 kStripes = 16;

  void Add(u64 n = 1) {
    stripes_[detail::ThreadStripe() % kStripes].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  u64 Value() const {
    u64 total = 0;
    for (const Stripe& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Stripe& s : stripes_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<u64> value{0};
  };
  Stripe stripes_[kStripes];
};

// Point-in-time signed value (e.g. queue depth).
class Gauge {
 public:
  void Set(i64 v) { value_.store(v, std::memory_order_relaxed); }
  void Add(i64 n) { value_.fetch_add(n, std::memory_order_relaxed); }
  i64 Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<i64> value_{0};
};

// Log2-bucketed histogram of u64 samples. Bucket b holds samples whose
// bit width is b: bucket 0 = {0}, bucket b (b >= 1) = [2^(b-1), 2^b - 1].
class Histogram {
 public:
  static constexpr u32 kBuckets = 65;

  static u32 BucketIndex(u64 value);
  // Inclusive lower bound of bucket b (0, 1, 2, 4, 8, ...).
  static u64 BucketLowerBound(u32 b);
  // Inclusive upper bound of bucket b.
  static u64 BucketUpperBound(u32 b);

  void Record(u64 value);

  u64 Count() const { return count_.load(std::memory_order_relaxed); }
  u64 Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Min/Max of recorded samples; Min() returns 0 when empty.
  u64 Min() const;
  u64 Max() const { return max_.load(std::memory_order_relaxed); }
  u64 BucketCount(u32 b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  double Mean() const {
    u64 n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }

  void Reset();

 private:
  std::atomic<u64> buckets_[kBuckets] = {};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> min_{~0ull};
  std::atomic<u64> max_{0};
};

// Name -> metric map. Lookups take a mutex; returned references are valid
// for the process lifetime.
class Registry {
 public:
  static Registry& Get();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // {"counters":{...},"gauges":{...},"histograms":{...}} — histogram
  // buckets are emitted sparsely as [lo, count] pairs.
  std::string ExportJson() const;
  // Aligned table for terminals.
  std::string ExportText() const;

  // Zeroes every registered metric (tests and bench repeats).
  void ResetAll();

 private:
  Registry() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

// Writes Registry::Get().ExportJson() to `path`; returns false on IO error.
bool WriteMetricsJsonFile(const std::string& path);

}  // namespace btr::obs

#endif  // BTR_OBS_METRICS_H_
