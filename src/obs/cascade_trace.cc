#include "obs/cascade_trace.h"

#include <cinttypes>
#include <cstdio>

#include "btr/column.h"
#include "btr/config.h"

namespace btr::obs {

namespace {

const char* SchemeName(u8 type, u8 scheme) {
  switch (static_cast<ColumnType>(type)) {
    case ColumnType::kInteger:
      return IntSchemeName(static_cast<IntSchemeCode>(scheme));
    case ColumnType::kDouble:
      return DoubleSchemeName(static_cast<DoubleSchemeCode>(scheme));
    case ColumnType::kString:
      return StringSchemeName(static_cast<StringSchemeCode>(scheme));
  }
  return "?";
}

void AppendBytes(u64 bytes, std::string* out) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "B", bytes);
  }
  *out += buf;
}

void AppendNode(const CascadeNode& node, int indent, std::string* out) {
  char buf[160];
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (node.depth > 0) *out += "└─ ";
  std::snprintf(buf, sizeof(buf), "%s[%s] %u values  ",
                SchemeName(node.type, node.scheme),
                ColumnTypeName(static_cast<ColumnType>(node.type)),
                node.value_count);
  *out += buf;
  AppendBytes(node.input_bytes, out);
  *out += " -> ";
  AppendBytes(node.output_bytes, out);
  std::snprintf(buf, sizeof(buf), "  %.2fx", node.ActualRatio());
  *out += buf;
  if (node.estimated_ratio > 0.0) {
    std::snprintf(buf, sizeof(buf), " (est %.2fx, err %+.1f%%)",
                  node.estimated_ratio, node.EstimateError() * 100.0);
    *out += buf;
  }
  *out += "\n";
  for (const CascadeNode& child : node.children) {
    AppendNode(child, indent + 1, out);
  }
}

}  // namespace

std::string CascadeTreeToString(const CascadeNode& root, int indent) {
  std::string out;
  AppendNode(root, indent, &out);
  return out;
}

void AppendCascadeJson(const CascadeNode& node, std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"scheme\":\"%s\",\"type\":\"%s\",\"depth\":%u,"
                "\"values\":%u,\"input_bytes\":%" PRIu64
                ",\"output_bytes\":%" PRIu64,
                SchemeName(node.type, node.scheme),
                ColumnTypeName(static_cast<ColumnType>(node.type)), node.depth,
                node.value_count, node.input_bytes, node.output_bytes);
  *out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"actual_ratio\":%.4f,\"estimated_ratio\":%.4f,"
                "\"estimate_error\":%.4f,\"stats_ns\":%" PRIu64
                ",\"estimate_ns\":%" PRIu64 ",\"compress_ns\":%" PRIu64,
                node.ActualRatio(), node.estimated_ratio, node.EstimateError(),
                node.stats_ns, node.estimate_ns, node.compress_ns);
  *out += buf;
  *out += ",\"candidates\":[";
  for (size_t i = 0; i < node.candidates.size(); i++) {
    if (i > 0) *out += ",";
    std::snprintf(buf, sizeof(buf), "{\"scheme\":\"%s\",\"estimated\":%.4f}",
                  SchemeName(node.type, node.candidates[i].scheme),
                  node.candidates[i].estimated_ratio);
    *out += buf;
  }
  *out += "],\"children\":[";
  for (size_t i = 0; i < node.children.size(); i++) {
    if (i > 0) *out += ",";
    AppendCascadeJson(node.children[i], out);
  }
  *out += "]}";
}

std::string CascadeTreeToJson(const CascadeNode& root) {
  std::string out;
  AppendCascadeJson(root, &out);
  return out;
}

}  // namespace btr::obs
