// Scoped-span tracer with Chrome trace-event ("chrome://tracing" /
// Perfetto) JSON export.
//
//   BTR_TRACE_SPAN("compress.column");         // RAII span, static name
//   ...
//   obs::Tracer::Get().ExportChromeJson();     // or WriteChromeTraceFile
//
// Spans record thread-aware begin/end events into per-thread buffers; the
// exporter merges them into one {"traceEvents": [...]} document with "B"
// and "E" phase events (strictly balanced by construction).
//
// Two gates keep the cost out of hot loops:
//   - runtime: spans record nothing until Tracer::Get().Enable() is called
//     (one relaxed atomic load when disabled);
//   - compile time: building with -DBTR_ENABLE_TRACING=OFF (CMake option)
//     compiles BTR_TRACE_SPAN to nothing.
//
// Span names must be string literals (or otherwise outlive the tracer) —
// the tracer stores the pointer, not a copy.
#ifndef BTR_OBS_TRACE_H_
#define BTR_OBS_TRACE_H_

#include <atomic>
#include <string>

#include "util/types.h"

namespace btr::obs {

struct SpanRecord {
  const char* name;
  u64 start_ns;  // relative to tracer epoch
  u64 end_ns;
  bool instant = false;  // zero-duration marker ("i"-phase event)
};

class Tracer {
 public:
  static Tracer& Get();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Appends one completed span for the calling thread.
  void RecordSpan(const char* name, u64 start_ns, u64 end_ns);

  // Appends a zero-duration instant marker (exported as an "i"-phase
  // event). Used on error paths — e.g. btr::Scanner stamps "scan.error"
  // when a scan fails, so an aborted run's trace shows where it died.
  // No-op while the tracer is disabled. `name` must outlive the tracer
  // (string literal).
  void RecordInstant(const char* name);

  // Nanoseconds since the tracer epoch (process-global steady clock).
  u64 NowNanos() const;

  // Total spans recorded across all threads.
  size_t SpanCount() const;

  // Drops all recorded spans (buffers of live threads are kept registered).
  void Reset();

  // {"traceEvents":[...],"displayTimeUnit":"ms"} with B/E event pairs.
  std::string ExportChromeJson() const;

 private:
  Tracer();
  std::atomic<bool> enabled_{false};
};

// Writes Tracer::Get().ExportChromeJson() to `path`; false on IO error.
bool WriteChromeTraceFile(const std::string& path);

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    Tracer& tracer = Tracer::Get();
    if (tracer.enabled()) {
      name_ = name;
      start_ns_ = tracer.NowNanos();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer& tracer = Tracer::Get();
      tracer.RecordSpan(name_, start_ns_, tracer.NowNanos());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  u64 start_ns_ = 0;
};

}  // namespace btr::obs

#if BTR_ENABLE_TRACING
#define BTR_TRACE_CONCAT_(a, b) a##b
#define BTR_TRACE_CONCAT(a, b) BTR_TRACE_CONCAT_(a, b)
#define BTR_TRACE_SPAN(name) \
  ::btr::obs::ScopedSpan BTR_TRACE_CONCAT(btr_trace_span_, __LINE__)(name)
#define BTR_TRACE_INSTANT(name) ::btr::obs::Tracer::Get().RecordInstant(name)
#else
#define BTR_TRACE_SPAN(name) ((void)0)
#define BTR_TRACE_INSTANT(name) ((void)0)
#endif

#endif  // BTR_OBS_TRACE_H_
