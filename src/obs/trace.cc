#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace btr::obs {

namespace {

struct ThreadBuffer {
  std::mutex mutex;  // uncontended except during export
  u32 tid = 0;
  std::vector<SpanRecord> spans;
};

struct TracerState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  u32 next_tid = 1;
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
};

TracerState& State() {
  static TracerState* state = new TracerState();  // leaky
  return *state;
}

// Owned by a shared_ptr in both the thread-local handle (so records never
// dangle) and the global list (so spans survive thread exit for export).
ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TracerState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    b->tid = state.next_tid++;
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

Tracer::Tracer() { State(); }

Tracer& Tracer::Get() {
  static Tracer* instance = new Tracer();
  return *instance;
}

u64 Tracer::NowNanos() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - State().epoch)
                              .count());
}

void Tracer::RecordSpan(const char* name, u64 start_ns, u64 end_ns) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.spans.push_back(SpanRecord{name, start_ns, end_ns, false});
}

void Tracer::RecordInstant(const char* name) {
  if (!enabled()) return;
  u64 now = NowNanos();
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.spans.push_back(SpanRecord{name, now, now, true});
}

size_t Tracer::SpanCount() const {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  size_t total = 0;
  for (const auto& b : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(b->mutex);
    total += b->spans.size();
  }
  return total;
}

void Tracer::Reset() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& b : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(b->mutex);
    b->spans.clear();
  }
}

std::string Tracer::ExportChromeJson() const {
  // One "B"/"E" pair per span. Within a thread, spans nest by RAII scope,
  // so sorting all events by timestamp yields a valid trace; ties are
  // broken so "E" sorts before "B" at equal timestamps (zero-length spans
  // close before the next one opens).
  struct Event {
    u64 ns;
    char phase;  // 'B', 'E', or 'i' (instant marker)
    u32 tid;
    const char* name;
    u64 pair_ns;  // matching begin ts, stabilizes E-before-B nesting
  };
  std::vector<Event> events;
  {
    TracerState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (const auto& b : state.buffers) {
      std::lock_guard<std::mutex> buffer_lock(b->mutex);
      for (const SpanRecord& s : b->spans) {
        if (s.instant) {
          events.push_back(Event{s.start_ns, 'i', b->tid, s.name, s.start_ns});
          continue;
        }
        events.push_back(Event{s.start_ns, 'B', b->tid, s.name, s.end_ns});
        events.push_back(Event{s.end_ns, 'E', b->tid, s.name, s.start_ns});
      }
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.ns != b.ns) return a.ns < b.ns;
    // Close inner spans before opening/closing outer ones; instants land
    // between the closes and the opens.
    auto rank = [](char phase) { return phase == 'E' ? 0 : phase == 'i' ? 1 : 2; };
    return rank(a.phase) < rank(b.phase);
  });

  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ",";
    first = false;
    // Timestamps are microseconds (Chrome trace convention), with
    // fractional precision preserved. Instant events carry thread scope.
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"cat\":\"btr\",\"ph\":\"%c\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f%s}",
                  e.name, e.phase, e.tid, static_cast<double>(e.ns) / 1000.0,
                  e.phase == 'i' ? ",\"s\":\"t\"" : "");
    out += buf;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool WriteChromeTraceFile(const std::string& path) {
  std::string json = Tracer::Get().ExportChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace btr::obs
