#include "obs/profile.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

#include "obs/json.h"
#include "obs/metrics.h"

namespace btr::obs {

const char* ScanStageName(ScanStage stage) {
  switch (stage) {
    case ScanStage::kPlan: return "plan";
    case ScanStage::kEmitWait: return "emit_wait";
    case ScanStage::kEmit: return "emit";
    case ScanStage::kTeardown: return "teardown";
  }
  return "?";
}

const char* ScanActivityName(ScanActivity activity) {
  switch (activity) {
    case ScanActivity::kGet: return "get";
    case ScanActivity::kPrefetchWait: return "prefetch_wait";
    case ScanActivity::kValidate: return "validate";
    case ScanActivity::kPredicate: return "predicate";
    case ScanActivity::kDecode: return "decode";
  }
  return "?";
}

// --- ScanProfileCollector ----------------------------------------------------

ScanProfileCollector::ScanProfileCollector(u32 slow_op_capacity)
    : slow_op_capacity_(slow_op_capacity) {
  slow_ops_.reserve(slow_op_capacity_);
}

void ScanProfileCollector::MaybeKeepSlowOp(SlowOp&& op) {
  if (slow_op_capacity_ == 0) return;
  if (slow_ops_.size() == slow_op_capacity_ &&
      op.duration_ns <= slow_ops_.back().duration_ns) {
    return;
  }
  auto at = std::upper_bound(
      slow_ops_.begin(), slow_ops_.end(), op,
      [](const SlowOp& a, const SlowOp& b) {
        return a.duration_ns > b.duration_ns;
      });
  slow_ops_.insert(at, std::move(op));
  if (slow_ops_.size() > slow_op_capacity_) slow_ops_.pop_back();
}

void ScanProfileCollector::RecordFetch(const FetchRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  requests_++;
  if (record.cache_hit) {
    cache_hits_++;
  } else {
    // Latency histogram covers requests that actually went to the store
    // (a cache hit's sub-microsecond lookup would drown the signal).
    u64 ns = record.duration_ns;
    latency_buckets_[Histogram::BucketIndex(ns)]++;
    latency_count_++;
    latency_sum_ += ns;
    latency_min_ = std::min(latency_min_, ns);
    latency_max_ = std::max(latency_max_, ns);
    // Mirrors Prefetcher accounting: only cacheable requests count as
    // misses, so profile tallies agree with ScanStats exactly.
    if (record.cacheable) cache_misses_++;
  }
  if (record.retries > 0) {
    retried_requests_++;
    retries_ += record.retries;
  }
  if (record.hedged) hedged_requests_++;
  if (record.hedge_won) hedge_wins_++;
  if (record.breaker_rejected) breaker_rejected_requests_++;
  if (!record.ok) failed_requests_++;
  if (!record.cache_hit) {
    activities_[static_cast<u32>(ScanActivity::kGet)].ns += record.duration_ns;
    activities_[static_cast<u32>(ScanActivity::kGet)].count++;
  }
  SlowOp op;
  op.kind = SlowOp::Kind::kGet;
  op.offset = record.offset;
  op.length = record.length;
  op.duration_ns = record.duration_ns;
  op.attempts = record.attempts;
  op.cache_hit = record.cache_hit;
  op.hedged = record.hedged;
  op.hedge_won = record.hedge_won;
  op.breaker_rejected = record.breaker_rejected;
  // Copy the key only when the op can make the ring — the common case
  // (fast op, full ring) allocates nothing.
  if (slow_op_capacity_ != 0 &&
      (slow_ops_.size() < slow_op_capacity_ ||
       op.duration_ns > slow_ops_.back().duration_ns)) {
    if (record.key != nullptr) op.key = *record.key;
    MaybeKeepSlowOp(std::move(op));
  }
}

void ScanProfileCollector::RecordDecode(const DecodeRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  bytes_decoded_ += record.bytes_decoded;
  activities_[static_cast<u32>(ScanActivity::kDecode)].ns += record.duration_ns;
  activities_[static_cast<u32>(ScanActivity::kDecode)].count++;
  bool found = false;
  for (SchemeDecodeStats& s : decode_by_scheme_) {
    if (s.type == record.type && s.scheme == record.scheme) {
      s.blocks++;
      s.ns += record.duration_ns;
      s.bytes_decoded += record.bytes_decoded;
      found = true;
      break;
    }
  }
  if (!found) {
    decode_by_scheme_.push_back(SchemeDecodeStats{
        record.type, record.scheme, 1, record.duration_ns,
        record.bytes_decoded});
  }
  if (slow_op_capacity_ != 0 &&
      (slow_ops_.size() < slow_op_capacity_ ||
       record.duration_ns > slow_ops_.back().duration_ns)) {
    SlowOp op;
    op.kind = SlowOp::Kind::kDecode;
    if (record.column != nullptr) op.key = *record.column;
    op.offset = record.offset;
    op.length = record.length;
    op.duration_ns = record.duration_ns;
    op.block = record.block;
    op.scheme = record.scheme;
    op.type = record.type;
    MaybeKeepSlowOp(std::move(op));
  }
}

void ScanProfileCollector::AddActivity(ScanActivity activity, u64 ns,
                                       u64 count) {
  std::lock_guard<std::mutex> lock(mutex_);
  activities_[static_cast<u32>(activity)].ns += ns;
  activities_[static_cast<u32>(activity)].count += count;
}

void ScanProfileCollector::SetStage(ScanStage stage, u64 wall_ns, u64 cpu_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  stages_[static_cast<u32>(stage)].wall_ns = wall_ns;
  stages_[static_cast<u32>(stage)].cpu_ns = cpu_ns;
}

void ScanProfileCollector::AddBlockTallies(u64 pruned, u64 skipped,
                                           u64 decoded, u64 unreadable) {
  std::lock_guard<std::mutex> lock(mutex_);
  blocks_pruned_ += pruned;
  blocks_skipped_ += skipped;
  blocks_decoded_ += decoded;
  blocks_unreadable_ += unreadable;
}

void ScanProfileCollector::AddCrcRefetch(bool rescued) {
  std::lock_guard<std::mutex> lock(mutex_);
  crc_refetched_blocks_++;
  if (rescued) crc_rescued_blocks_++;
}

ScanProfile ScanProfileCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ScanProfile p;
  p.wall_seconds = wall_seconds_;
  p.open_ns = open_ns_;
  p.zone_prune_ns = zone_prune_ns_;
  for (u32 s = 0; s < kScanStageCount; s++) p.stages[s] = stages_[s];
  for (u32 a = 0; a < kScanActivityCount; a++) p.activities[a] = activities_[a];
  p.get_latency.count = latency_count_;
  p.get_latency.sum = latency_sum_;
  p.get_latency.min = latency_count_ == 0 ? 0 : latency_min_;
  p.get_latency.max = latency_max_;
  for (u32 b = 0; b < 65; b++) {
    if (latency_buckets_[b] != 0) {
      p.get_latency.buckets.emplace_back(Histogram::BucketLowerBound(b),
                                         latency_buckets_[b]);
    }
  }
  p.requests = requests_;
  p.cache_hits = cache_hits_;
  p.cache_misses = cache_misses_;
  p.retried_requests = retried_requests_;
  p.retries = retries_;
  p.hedged_requests = hedged_requests_;
  p.hedge_wins = hedge_wins_;
  p.breaker_rejected_requests = breaker_rejected_requests_;
  p.failed_requests = failed_requests_;
  p.blocks_pruned = blocks_pruned_;
  p.blocks_skipped = blocks_skipped_;
  p.blocks_decoded = blocks_decoded_;
  p.blocks_unreadable = blocks_unreadable_;
  p.crc_refetched_blocks = crc_refetched_blocks_;
  p.crc_rescued_blocks = crc_rescued_blocks_;
  p.bytes_fetched = bytes_fetched_;
  p.bytes_decoded = bytes_decoded_;
  p.decode_by_scheme = decode_by_scheme_;
  std::sort(p.decode_by_scheme.begin(), p.decode_by_scheme.end(),
            [](const SchemeDecodeStats& a, const SchemeDecodeStats& b) {
              return a.type != b.type ? a.type < b.type : a.scheme < b.scheme;
            });
  p.slow_ops = slow_ops_;
  return p;
}

// --- StageTimer --------------------------------------------------------------

StageTimer::StageTimer() {
  wall_mark_ = NowWall();
  cpu_mark_ = NowCpu();
}

u64 StageTimer::NowWall() const {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

u64 StageTimer::NowCpu() const {
#if defined(__unix__) || defined(__APPLE__)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<u64>(ts.tv_sec) * 1000000000ull +
           static_cast<u64>(ts.tv_nsec);
  }
#endif
  return 0;
}

void StageTimer::Enter(ScanStage next) {
  u64 wall = NowWall();
  u64 cpu = NowCpu();
  StageTime& t = totals_[static_cast<u32>(current_)];
  t.wall_ns += wall - wall_mark_;
  t.cpu_ns += cpu - cpu_mark_;
  wall_mark_ = wall;
  cpu_mark_ = cpu;
  current_ = next;
}

void StageTimer::Finish(ScanProfileCollector* collector) {
  Enter(current_);  // flush the tail of the current stage
  if (collector == nullptr) return;
  for (u32 s = 0; s < kScanStageCount; s++) {
    collector->SetStage(static_cast<ScanStage>(s), totals_[s].wall_ns,
                        totals_[s].cpu_ns);
  }
}

// --- export ------------------------------------------------------------------

namespace {

void AppendKeyU64(const char* key, u64 v, bool comma, std::string* out) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, comma ? "," : "", key,
                v);
  *out += buf;
}

double Pct(u64 part, double wall_seconds) {
  double wall_ns = wall_seconds * 1e9;
  return wall_ns <= 0 ? 0 : 100.0 * static_cast<double>(part) / wall_ns;
}

}  // namespace

std::string ScanProfile::ToText() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "scan profile (wall %.3f ms, open %.3f ms)\n",
                wall_seconds * 1e3, static_cast<double>(open_ns) / 1e6);
  out += buf;
  out += "  stages (calling thread, sum == wall):\n";
  for (u32 s = 0; s < kScanStageCount; s++) {
    std::snprintf(buf, sizeof(buf),
                  "    %-12s %10.3f ms  (%5.1f%% wall, cpu %.3f ms)\n",
                  ScanStageName(static_cast<ScanStage>(s)),
                  static_cast<double>(stages[s].wall_ns) / 1e6,
                  Pct(stages[s].wall_ns, wall_seconds),
                  static_cast<double>(stages[s].cpu_ns) / 1e6);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "    zone-map pruning inside plan: %.3f ms\n",
                static_cast<double>(zone_prune_ns) / 1e6);
  out += buf;
  out += "  worker activities (parallel; overlap wall time):\n";
  for (u32 a = 0; a < kScanActivityCount; a++) {
    if (activities[a].count == 0) continue;
    std::snprintf(buf, sizeof(buf), "    %-14s %10.3f ms across %" PRIu64
                  " ops\n",
                  ScanActivityName(static_cast<ScanActivity>(a)),
                  static_cast<double>(activities[a].ns) / 1e6,
                  activities[a].count);
    out += buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "  requests: %" PRIu64 " (%" PRIu64 " cache hits, %" PRIu64
      " misses, %" PRIu64 " retried / %" PRIu64 " retries, %" PRIu64
      " hedged / %" PRIu64 " hedge wins, %" PRIu64 " breaker-rejected, %" PRIu64
      " failed)\n",
      requests, cache_hits, cache_misses, retried_requests, retries,
      hedged_requests, hedge_wins, breaker_rejected_requests, failed_requests);
  out += buf;
  if (get_latency.count != 0) {
    std::snprintf(buf, sizeof(buf),
                  "  GET latency: n=%" PRIu64 " mean=%.1f us min=%.1f us "
                  "max=%.1f us\n",
                  get_latency.count,
                  static_cast<double>(get_latency.sum) /
                      static_cast<double>(get_latency.count) / 1e3,
                  static_cast<double>(get_latency.min) / 1e3,
                  static_cast<double>(get_latency.max) / 1e3);
    out += buf;
    out += "    log2 buckets (>=ns: count):";
    for (const auto& [lo, n] : get_latency.buckets) {
      std::snprintf(buf, sizeof(buf), " %" PRIu64 ":%" PRIu64, lo, n);
      out += buf;
    }
    out += "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "  blocks: %" PRIu64 " pruned, %" PRIu64 " skipped, %" PRIu64
                " decoded, %" PRIu64 " unreadable, %" PRIu64
                " CRC-refetched (%" PRIu64 " rescued)\n",
                blocks_pruned, blocks_skipped, blocks_decoded,
                blocks_unreadable, crc_refetched_blocks, crc_rescued_blocks);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  bytes: %.1f KiB fetched, %.1f KiB decoded\n",
                static_cast<double>(bytes_fetched) / 1024.0,
                static_cast<double>(bytes_decoded) / 1024.0);
  out += buf;
  if (!decode_by_scheme.empty()) {
    out += "  decode by scheme (type/scheme: blocks, ms, KiB):\n";
    static const char* kTypeTags[3] = {"int", "double", "string"};
    for (const SchemeDecodeStats& s : decode_by_scheme) {
      std::snprintf(buf, sizeof(buf),
                    "    %s/%u: %" PRIu64 " blocks, %.3f ms, %.1f KiB\n",
                    s.type < 3 ? kTypeTags[s.type] : "?", s.scheme, s.blocks,
                    static_cast<double>(s.ns) / 1e6,
                    static_cast<double>(s.bytes_decoded) / 1024.0);
      out += buf;
    }
  }
  if (!slow_ops.empty()) {
    out += "  slowest ops:\n";
    for (const SlowOp& op : slow_ops) {
      if (op.kind == SlowOp::Kind::kGet) {
        std::snprintf(buf, sizeof(buf),
                      "    GET %s [%" PRIu64 "+%" PRIu64 "] %.3f ms, %u "
                      "attempt%s%s%s%s\n",
                      op.key.c_str(), op.offset, op.length,
                      static_cast<double>(op.duration_ns) / 1e6, op.attempts,
                      op.attempts == 1 ? "" : "s",
                      op.cache_hit ? ", cache hit" : "",
                      op.hedged ? (op.hedge_won ? ", hedged (dup won)"
                                                : ", hedged") : "",
                      op.breaker_rejected ? ", breaker-rejected" : "");
      } else {
        std::snprintf(buf, sizeof(buf),
                      "    decode %s block %u (scheme %u) [%" PRIu64 "+%" PRIu64
                      "] %.3f ms\n",
                      op.key.c_str(), op.block, op.scheme, op.offset, op.length,
                      static_cast<double>(op.duration_ns) / 1e6);
      }
      out += buf;
    }
  }
  return out;
}

std::string ScanProfile::ToJson() const {
  std::string out = "{";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\"schema_version\":%u", kSchemaVersion);
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"wall_seconds\":%.9f", wall_seconds);
  out += buf;
  AppendKeyU64("open_ns", open_ns, true, &out);
  AppendKeyU64("zone_prune_ns", zone_prune_ns, true, &out);
  out += ",\"stages\":{";
  for (u32 s = 0; s < kScanStageCount; s++) {
    if (s != 0) out += ",";
    out += "\"";
    out += ScanStageName(static_cast<ScanStage>(s));
    out += "\":{";
    AppendKeyU64("wall_ns", stages[s].wall_ns, false, &out);
    AppendKeyU64("cpu_ns", stages[s].cpu_ns, true, &out);
    out += "}";
  }
  out += "},\"activities\":{";
  for (u32 a = 0; a < kScanActivityCount; a++) {
    if (a != 0) out += ",";
    out += "\"";
    out += ScanActivityName(static_cast<ScanActivity>(a));
    out += "\":{";
    AppendKeyU64("ns", activities[a].ns, false, &out);
    AppendKeyU64("count", activities[a].count, true, &out);
    out += "}";
  }
  out += "},\"get_latency\":{";
  AppendKeyU64("count", get_latency.count, false, &out);
  AppendKeyU64("sum_ns", get_latency.sum, true, &out);
  AppendKeyU64("min_ns", get_latency.min, true, &out);
  AppendKeyU64("max_ns", get_latency.max, true, &out);
  out += ",\"buckets\":[";
  for (size_t b = 0; b < get_latency.buckets.size(); b++) {
    if (b != 0) out += ",";
    std::snprintf(buf, sizeof(buf), "[%" PRIu64 ",%" PRIu64 "]",
                  get_latency.buckets[b].first, get_latency.buckets[b].second);
    out += buf;
  }
  out += "]},\"tallies\":{";
  AppendKeyU64("requests", requests, false, &out);
  AppendKeyU64("cache_hits", cache_hits, true, &out);
  AppendKeyU64("cache_misses", cache_misses, true, &out);
  AppendKeyU64("retried_requests", retried_requests, true, &out);
  AppendKeyU64("retries", retries, true, &out);
  AppendKeyU64("hedged_requests", hedged_requests, true, &out);
  AppendKeyU64("hedge_wins", hedge_wins, true, &out);
  AppendKeyU64("breaker_rejected_requests", breaker_rejected_requests, true,
               &out);
  AppendKeyU64("failed_requests", failed_requests, true, &out);
  AppendKeyU64("blocks_pruned", blocks_pruned, true, &out);
  AppendKeyU64("blocks_skipped", blocks_skipped, true, &out);
  AppendKeyU64("blocks_decoded", blocks_decoded, true, &out);
  AppendKeyU64("blocks_unreadable", blocks_unreadable, true, &out);
  AppendKeyU64("crc_refetched_blocks", crc_refetched_blocks, true, &out);
  AppendKeyU64("crc_rescued_blocks", crc_rescued_blocks, true, &out);
  AppendKeyU64("bytes_fetched", bytes_fetched, true, &out);
  AppendKeyU64("bytes_decoded", bytes_decoded, true, &out);
  out += "},\"decode_by_scheme\":[";
  for (size_t i = 0; i < decode_by_scheme.size(); i++) {
    const SchemeDecodeStats& s = decode_by_scheme[i];
    if (i != 0) out += ",";
    out += "{";
    AppendKeyU64("type", s.type, false, &out);
    AppendKeyU64("scheme", s.scheme, true, &out);
    AppendKeyU64("blocks", s.blocks, true, &out);
    AppendKeyU64("ns", s.ns, true, &out);
    AppendKeyU64("bytes_decoded", s.bytes_decoded, true, &out);
    out += "}";
  }
  out += "],\"slow_ops\":[";
  for (size_t i = 0; i < slow_ops.size(); i++) {
    const SlowOp& op = slow_ops[i];
    if (i != 0) out += ",";
    out += "{\"kind\":\"";
    out += op.kind == SlowOp::Kind::kGet ? "get" : "decode";
    out += "\",\"key\":\"";
    AppendJsonEscaped(op.key, &out);
    out += "\"";
    AppendKeyU64("offset", op.offset, true, &out);
    AppendKeyU64("length", op.length, true, &out);
    AppendKeyU64("duration_ns", op.duration_ns, true, &out);
    AppendKeyU64("attempts", op.attempts, true, &out);
    AppendKeyU64("block", op.block, true, &out);
    AppendKeyU64("scheme", op.scheme, true, &out);
    AppendKeyU64("type", op.type, true, &out);
    out += ",\"cache_hit\":";
    out += op.cache_hit ? "true" : "false";
    out += ",\"hedged\":";
    out += op.hedged ? "true" : "false";
    out += ",\"hedge_won\":";
    out += op.hedge_won ? "true" : "false";
    out += ",\"breaker_rejected\":";
    out += op.breaker_rejected ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace btr::obs
