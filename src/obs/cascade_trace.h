// Cascade decision trace: a per-block tree recording, at every cascade
// depth, which scheme was chosen, how many bytes went in and came out,
// what the sample-based ratio estimate promised versus what compression
// delivered (the estimate error the paper's Figures 5/6 reason about),
// and where the time went (stats / estimation / compression).
//
// Collection is opt-in: set CompressionConfig::collect_cascade_trace and
// the per-block tree is returned through BlockCompressionInfo::trace and
// CompressedColumn::block_traces. The hot path with collection disabled
// pays one null-pointer check per cascade level.
#ifndef BTR_OBS_CASCADE_TRACE_H_
#define BTR_OBS_CASCADE_TRACE_H_

#include <string>
#include <vector>

#include "util/types.h"

namespace btr::obs {

// One scheme the picker evaluated at a cascade node, with its
// sample-estimated compression ratio (0 = ruled out by statistics).
struct CascadeCandidate {
  u8 scheme = 0;
  double estimated_ratio = 0.0;
};

// One node of the per-block cascade tree. `scheme` codes are the
// persisted per-type codes from btr/config.h; `type` is the ColumnType
// value of the vector this node compressed (cascade children of a string
// dictionary are integer code vectors, so types vary within one tree).
struct CascadeNode {
  u8 type = 0;
  u8 depth = 0;
  u8 scheme = 0;
  u32 value_count = 0;
  u64 input_bytes = 0;
  u64 output_bytes = 0;           // includes the 1-byte scheme tag
  double estimated_ratio = 0.0;   // sample estimate for the chosen scheme
  u64 stats_ns = 0;               // statistics collection
  u64 estimate_ns = 0;            // sampling + per-scheme estimation
  u64 compress_ns = 0;            // whole node including children
  std::vector<CascadeCandidate> candidates;
  std::vector<CascadeNode> children;

  double ActualRatio() const {
    return output_bytes == 0 ? 0.0
                             : static_cast<double>(input_bytes) /
                                   static_cast<double>(output_bytes);
  }

  // Relative estimate error: (estimated - actual) / actual. Positive =
  // the sample promised more compression than the block delivered.
  // 0 when either side is unavailable (e.g. forced uncompressed leaves).
  double EstimateError() const {
    double actual = ActualRatio();
    if (actual == 0.0 || estimated_ratio == 0.0) return 0.0;
    return (estimated_ratio - actual) / actual;
  }

  // Nodes in this subtree, including this one.
  u32 NodeCount() const {
    u32 n = 1;
    for (const CascadeNode& c : children) n += c.NodeCount();
    return n;
  }

  u32 MaxDepth() const {
    u32 deepest = depth;
    for (const CascadeNode& c : children) {
      u32 d = c.MaxDepth();
      if (d > deepest) deepest = d;
    }
    return deepest;
  }
};

// Human-readable indented tree, one line per node:
//   RLE            64000 values  256.0KiB -> 12.3KiB  20.81x (est 21.40x, err +2.8%)
//     ├─ Bp128 ...
// Scheme codes are rendered through the per-type name tables.
std::string CascadeTreeToString(const CascadeNode& root, int indent = 0);

// Compact JSON object (recursive) for sidecar files and tooling.
void AppendCascadeJson(const CascadeNode& node, std::string* out);
std::string CascadeTreeToJson(const CascadeNode& root);

}  // namespace btr::obs

#endif  // BTR_OBS_CASCADE_TRACE_H_
