// Minimal JSON string escaping shared by every JSON producer in the
// repo (metrics registry, scan profiles, bench sidecars). Escapes the
// two structurally dangerous characters (`"` and `\`), the common
// whitespace escapes, and any remaining control byte as \u00XX, so an
// arbitrary metric or object-store key can be embedded in a JSON string
// without producing an invalid document.
#ifndef BTR_OBS_JSON_H_
#define BTR_OBS_JSON_H_

#include <string>
#include <string_view>

namespace btr::obs {

// Appends `s` to `*out` with JSON string escaping (no surrounding quotes).
void AppendJsonEscaped(std::string_view s, std::string* out);

// Convenience: returns the escaped form of `s` (no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace btr::obs

#endif  // BTR_OBS_JSON_H_
