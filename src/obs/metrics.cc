#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace btr::obs {

namespace detail {

u32 ThreadStripe() {
  static std::atomic<u32> next{0};
  thread_local u32 stripe = next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace detail

// --- Histogram ---------------------------------------------------------------

u32 Histogram::BucketIndex(u64 value) {
  return static_cast<u32>(std::bit_width(value));
}

u64 Histogram::BucketLowerBound(u32 b) {
  return b == 0 ? 0 : 1ull << (b - 1);
}

u64 Histogram::BucketUpperBound(u32 b) {
  if (b == 0) return 0;
  if (b >= 64) return ~0ull;
  return (1ull << b) - 1;
}

void Histogram::Record(u64 value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  u64 seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

u64 Histogram::Min() const {
  u64 m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --- Registry ----------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map keeps export output sorted and deterministic.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Impl* Registry::impl() {
  static Impl* instance = new Impl();  // leaky: survives static destruction
  return instance;
}

const Registry::Impl* Registry::impl() const {
  return const_cast<Registry*>(this)->impl();
}

Registry& Registry::Get() {
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::GetCounter(const std::string& name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  auto& slot = i->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  auto& slot = i->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  auto& slot = i->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::ExportJson() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  std::string out = "{\n  \"counters\": {";
  char buf[128];
  bool first = true;
  for (const auto& [name, c] : i->counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(name, &out);
    std::snprintf(buf, sizeof(buf), "\": %" PRIu64, c->Value());
    out += buf;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : i->gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(name, &out);
    std::snprintf(buf, sizeof(buf), "\": %" PRId64, g->Value());
    out += buf;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : i->histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(name, &out);
    std::snprintf(buf, sizeof(buf),
                  "\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                  ", \"min\": %" PRIu64 ", \"max\": %" PRIu64 ", \"buckets\": [",
                  h->Count(), h->Sum(), h->Min(), h->Max());
    out += buf;
    bool first_bucket = true;
    for (u32 b = 0; b < Histogram::kBuckets; b++) {
      u64 n = h->BucketCount(b);
      if (n == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "[%" PRIu64 ", %" PRIu64 "]",
                    Histogram::BucketLowerBound(b), n);
      out += buf;
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string Registry::ExportText() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  std::string out;
  char buf[256];
  if (!i->counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, c] : i->counters) {
      std::snprintf(buf, sizeof(buf), "  %-40s %20" PRIu64 "\n", name.c_str(),
                    c->Value());
      out += buf;
    }
  }
  if (!i->gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, g] : i->gauges) {
      std::snprintf(buf, sizeof(buf), "  %-40s %20" PRId64 "\n", name.c_str(),
                    g->Value());
      out += buf;
    }
  }
  if (!i->histograms.empty()) {
    out += "histograms:\n";
    for (const auto& [name, h] : i->histograms) {
      std::snprintf(buf, sizeof(buf),
                    "  %-40s count=%" PRIu64 " mean=%.1f min=%" PRIu64
                    " max=%" PRIu64 "\n",
                    name.c_str(), h->Count(), h->Mean(), h->Min(), h->Max());
      out += buf;
    }
  }
  return out;
}

void Registry::ResetAll() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  for (auto& [name, c] : i->counters) c->Reset();
  for (auto& [name, g] : i->gauges) g->Reset();
  for (auto& [name, h] : i->histograms) h->Reset();
}

bool WriteMetricsJsonFile(const std::string& path) {
  std::string json = Registry::Get().ExportJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace btr::obs
