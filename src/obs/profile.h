// Per-scan profiling: where did *this* scan spend its time?
//
// The metrics registry (obs/metrics.h) aggregates process-wide counters —
// good for trend lines, useless for answering "why was scan #3 slow".
// A ScanProfileCollector rides along one btr::Scanner::Scan() call and
// records:
//
//   - the calling thread's stage breakdown (plan, emit-wait, emit,
//     teardown) — contiguous wall-clock stages that sum to the scan's
//     wall time by construction, each with its thread-CPU time;
//   - parallel worker activities (prefetch-queue wait, CRC/structural
//     validation, predicate evaluation, decode) — these overlap each
//     other and the stages, so they are reported as aggregate
//     nanoseconds with sample counts, not as a partition of wall time;
//   - a log2 latency histogram of every ranged GET, plus per-request
//     outcome tallies (cache hit/miss, retried, hedged, hedge-won,
//     breaker-rejected);
//   - per-(type, scheme) decode time and decoded bytes, keyed by each
//     block's root scheme code;
//   - a bounded ring of slow-op exemplars: the N slowest GETs and
//     decodes with key, offset, attempt count, and cache/hedge/breaker
//     state — the rows you grep for when one block dragged the scan.
//
// Cost model: everything funnels through a ScanProfileCollector pointer
// that is null when ScanConfig::collect_profile is off — the disabled
// path is a single pointer test, no locks, no allocation. When enabled,
// recording takes a short mutex; scans touch thousands of blocks, not
// millions, so contention is negligible next to a GET.
//
// Snapshot() produces a value-type ScanProfile exposed on
// ScanStats::profile and exported as aligned text (ToText) or stable
// schema-versioned JSON (ToJson) — `btrtool scan --profile[=path]`.
#ifndef BTR_OBS_PROFILE_H_
#define BTR_OBS_PROFILE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.h"

namespace btr::obs {

// Contiguous stages of the scan's calling thread. kPlan covers spec
// resolution, zone-map pruning, the fetch plan, and pipeline startup;
// kEmitWait is the in-order emit stall (blocked on the reorder buffer);
// kEmit is time inside the consumer's chunk callback plus chunk
// assembly; kTeardown is unwind, pool drain, and stats finalization.
enum class ScanStage : u32 {
  kPlan = 0,
  kEmitWait = 1,
  kEmit = 2,
  kTeardown = 3,
};
inline constexpr u32 kScanStageCount = 4;
const char* ScanStageName(ScanStage stage);

// Worker-side activities. These run on fetch/decode threads in parallel
// with each other and with the calling thread's stages.
enum class ScanActivity : u32 {
  kGet = 0,           // ranged GETs (retries and hedges included)
  kPrefetchWait = 1,  // decode workers blocked on the bounded queue
  kValidate = 2,      // size + CRC32C + structural validation
  kPredicate = 3,     // compressed-form predicate evaluation
  kDecode = 4,        // block decompression
};
inline constexpr u32 kScanActivityCount = 5;
const char* ScanActivityName(ScanActivity activity);

// One slow-op exemplar: a GET or a decode that made the top-N ring.
struct SlowOp {
  enum class Kind : u8 { kGet = 0, kDecode = 1 };
  Kind kind = Kind::kGet;
  std::string key;      // object key (GET) or column name (decode)
  u64 offset = 0;
  u64 length = 0;       // request length (GET) / compressed bytes (decode)
  u64 duration_ns = 0;
  u32 attempts = 1;     // GET tries including the first (GET only)
  u32 block = 0;        // row block (decode only)
  u8 scheme = 0;        // root scheme code (decode only)
  u8 type = 0;          // ColumnType as u8 (decode only)
  bool cache_hit = false;
  bool hedged = false;
  bool hedge_won = false;
  bool breaker_rejected = false;  // breaker fast-failed at least one attempt
};

// Sparse snapshot of a log2 histogram (same bucketing as obs::Histogram:
// bucket lower bounds are 0, 1, 2, 4, 8, ...).
struct HistogramSnapshot {
  u64 count = 0;
  u64 sum = 0;
  u64 min = 0;
  u64 max = 0;
  std::vector<std::pair<u64, u64>> buckets;  // [lower_bound, count]
};

// Aggregate decode cost of one (column type, root scheme) pair.
struct SchemeDecodeStats {
  u8 type = 0;    // ColumnType as u8
  u8 scheme = 0;  // root scheme code
  u64 blocks = 0;
  u64 ns = 0;
  u64 bytes_decoded = 0;  // logical uncompressed value bytes produced
};

struct StageTime {
  u64 wall_ns = 0;
  u64 cpu_ns = 0;  // calling-thread CPU time inside the stage
};

struct ActivityTime {
  u64 ns = 0;
  u64 count = 0;
};

// Value-type snapshot of one scan's profile. Field layout is the JSON
// schema; bump kSchemaVersion when it changes shape.
struct ScanProfile {
  static constexpr u32 kSchemaVersion = 1;

  double wall_seconds = 0;  // Scan() wall clock
  u64 open_ns = 0;          // Scanner::Open metadata fetch/parse time
  u64 zone_prune_ns = 0;    // zone-map pruning (inside the kPlan stage)

  StageTime stages[kScanStageCount];
  ActivityTime activities[kScanActivityCount];

  HistogramSnapshot get_latency;  // per-GET nanoseconds, log2 buckets

  // Per-request outcome tallies (one GET request = one unit).
  u64 requests = 0;        // GETs the prefetcher resolved (cache hits incl.)
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  u64 retried_requests = 0;  // requests that needed more than one attempt
  u64 retries = 0;           // total extra attempts across the scan
  u64 hedged_requests = 0;
  u64 hedge_wins = 0;
  u64 breaker_rejected_requests = 0;
  u64 failed_requests = 0;   // resolved with a non-OK status

  // Block outcome tallies (one row block = one unit).
  u64 blocks_pruned = 0;
  u64 blocks_skipped = 0;
  u64 blocks_decoded = 0;
  u64 blocks_unreadable = 0;
  u64 crc_refetched_blocks = 0;
  u64 crc_rescued_blocks = 0;

  u64 bytes_fetched = 0;  // compressed bytes that crossed the wire
  u64 bytes_decoded = 0;  // logical uncompressed bytes produced

  std::vector<SchemeDecodeStats> decode_by_scheme;  // sorted by (type, scheme)
  std::vector<SlowOp> slow_ops;                     // slowest first

  // Aligned human-readable report.
  std::string ToText() const;
  // Stable JSON: {"schema_version":1,"wall_seconds":...,...}.
  std::string ToJson() const;
};

// What the prefetcher reports for one resolved fetch request.
struct FetchRecord {
  const std::string* key = nullptr;  // not owned; copied if it makes the ring
  u64 offset = 0;
  u64 length = 0;
  u64 duration_ns = 0;
  u32 attempts = 1;
  u32 retries = 0;  // committed retries (may differ from attempts - 1
                    // when the breaker rejected the call mid-retry)
  bool cacheable = false;  // the request consulted the block cache
  bool cache_hit = false;
  bool hedged = false;
  bool hedge_won = false;
  bool breaker_rejected = false;
  bool ok = true;
};

// What a decode worker reports for one decompressed block part.
struct DecodeRecord {
  const std::string* column = nullptr;  // column name; copied for the ring
  u64 offset = 0;       // block payload offset in the column object
  u64 length = 0;       // compressed payload bytes
  u64 duration_ns = 0;
  u64 bytes_decoded = 0;
  u32 block = 0;
  u8 scheme = 0;
  u8 type = 0;
};

// Thread-safe accumulator one Scan() owns. Call sites hold a pointer
// that is null when profiling is disabled — test it before recording.
class ScanProfileCollector {
 public:
  // `slow_op_capacity` bounds the exemplar ring (0 disables exemplars).
  explicit ScanProfileCollector(u32 slow_op_capacity = 8);

  void RecordFetch(const FetchRecord& record);
  void RecordDecode(const DecodeRecord& record);
  void AddActivity(ScanActivity activity, u64 ns, u64 count = 1);
  void SetStage(ScanStage stage, u64 wall_ns, u64 cpu_ns);
  void AddBlockTallies(u64 pruned, u64 skipped, u64 decoded, u64 unreadable);
  void AddCrcRefetch(bool rescued);

  // Finalization inputs recorded once by the scanner.
  void SetWallSeconds(double seconds) { wall_seconds_ = seconds; }
  void SetOpenNanos(u64 ns) { open_ns_ = ns; }
  void SetZonePruneNanos(u64 ns) { zone_prune_ns_ = ns; }
  void SetBytesFetched(u64 bytes) { bytes_fetched_ = bytes; }

  ScanProfile Snapshot() const;

 private:
  void MaybeKeepSlowOp(SlowOp&& op);  // caller holds mutex_

  mutable std::mutex mutex_;
  const u32 slow_op_capacity_;

  double wall_seconds_ = 0;
  u64 open_ns_ = 0;
  u64 zone_prune_ns_ = 0;
  u64 bytes_fetched_ = 0;

  StageTime stages_[kScanStageCount] = {};
  ActivityTime activities_[kScanActivityCount] = {};

  // GET latency histogram (log2, same bucketing as obs::Histogram).
  u64 latency_buckets_[65] = {};
  u64 latency_count_ = 0;
  u64 latency_sum_ = 0;
  u64 latency_min_ = ~0ull;
  u64 latency_max_ = 0;

  u64 requests_ = 0;
  u64 cache_hits_ = 0;
  u64 cache_misses_ = 0;
  u64 retried_requests_ = 0;
  u64 retries_ = 0;
  u64 hedged_requests_ = 0;
  u64 hedge_wins_ = 0;
  u64 breaker_rejected_requests_ = 0;
  u64 failed_requests_ = 0;

  u64 blocks_pruned_ = 0;
  u64 blocks_skipped_ = 0;
  u64 blocks_decoded_ = 0;
  u64 blocks_unreadable_ = 0;
  u64 crc_refetched_blocks_ = 0;
  u64 crc_rescued_blocks_ = 0;

  u64 bytes_decoded_ = 0;

  std::vector<SchemeDecodeStats> decode_by_scheme_;  // small, linear scan
  std::vector<SlowOp> slow_ops_;  // kept sorted, slowest first
};

// Stage timer for the scan's calling thread: accumulates wall and
// thread-CPU nanoseconds per stage, then flushes them into a collector.
// Works (cheaply) even with a null collector so call sites stay branchless.
class StageTimer {
 public:
  StageTimer();

  // Ends the current stage, attributing elapsed time to it, and enters
  // `next`. Stages may be re-entered; time accumulates.
  void Enter(ScanStage next);

  // Attributes time since the last boundary to the current stage, then
  // writes every stage into `collector` (no-op when null).
  void Finish(ScanProfileCollector* collector);

  // Accumulated wall nanoseconds of one stage (after Finish).
  u64 StageWallNanos(ScanStage stage) const {
    return totals_[static_cast<u32>(stage)].wall_ns;
  }

 private:
  u64 NowWall() const;
  u64 NowCpu() const;

  ScanStage current_ = ScanStage::kPlan;
  u64 wall_mark_ = 0;
  u64 cpu_mark_ = 0;
  StageTime totals_[kScanStageCount] = {};
};

}  // namespace btr::obs

#endif  // BTR_OBS_PROFILE_H_
