// From-scratch Roaring bitmap (Lemire et al., "Roaring Bitmaps:
// Implementation of an Optimized Software Library"). BtrBlocks uses Roaring
// bitmaps for NULL tracking and for exception positions inside encodings
// (Frequency, Pseudodecimal) — paper Section 2.2.
//
// A bitmap over u32 keys is split into 2^16-value chunks addressed by the
// high 16 bits. Each chunk is stored in whichever container is smallest:
//   - ArrayContainer:  sorted u16 list (cardinality <= 4096)
//   - BitsetContainer: 8 KiB bitset   (cardinality  > 4096)
//   - RunContainer:    sorted (start, length) runs, chosen by RunOptimize()
#ifndef BTR_BITMAP_ROARING_H_
#define BTR_BITMAP_ROARING_H_

#include <memory>
#include <vector>

#include "util/buffer.h"
#include "util/types.h"

namespace btr {

class RoaringBitmap {
 public:
  RoaringBitmap() = default;

  // --- Construction -------------------------------------------------------
  // Values may be added in any order; ascending order is the fast path.
  void Add(u32 value);
  void AddRange(u32 begin, u32 end);  // [begin, end)

  // Converts containers to run containers where that representation is
  // smaller. Call once after construction, before Serialize().
  void RunOptimize();

  // --- Queries -------------------------------------------------------------
  bool Contains(u32 value) const;
  u64 Cardinality() const;
  bool Empty() const { return containers_.empty(); }

  // True iff any value in [begin, end) is present. Used by vectorized
  // decompression to test a SIMD lane block for exceptions.
  bool IntersectsRange(u32 begin, u32 end) const;

  // --- Set algebra -----------------------------------------------------------
  // Used to combine per-predicate selection vectors (WHERE a = x AND b = y).
  static RoaringBitmap And(const RoaringBitmap& a, const RoaringBitmap& b);
  static RoaringBitmap Or(const RoaringBitmap& a, const RoaringBitmap& b);
  // Values in a but not in b.
  static RoaringBitmap AndNot(const RoaringBitmap& a, const RoaringBitmap& b);

  // Calls fn(value) for every set value in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Container& c : containers_) {
      u32 base = static_cast<u32>(c.key) << 16;
      switch (c.type) {
        case ContainerType::kArray:
          for (u16 v : c.array) fn(base | v);
          break;
        case ContainerType::kBitset:
          for (u32 word = 0; word < kBitsetWords; word++) {
            u64 bits = c.bitset[word];
            while (bits != 0) {
              u32 bit = static_cast<u32>(__builtin_ctzll(bits));
              fn(base | (word * 64 + bit));
              bits &= bits - 1;
            }
          }
          break;
        case ContainerType::kRun:
          for (const Run& run : c.runs) {
            for (u32 v = run.start; v <= static_cast<u32>(run.start) + run.length; v++) {
              fn(base | v);
            }
          }
          break;
      }
    }
  }

  // Materializes all set values in ascending order.
  std::vector<u32> ToVector() const;

  // --- Serialization -------------------------------------------------------
  void SerializeTo(ByteBuffer* out) const;
  // Returns bytes consumed; aborts on structurally impossible input (the
  // format is internal, produced only by SerializeTo).
  static RoaringBitmap Deserialize(const u8* data, size_t* bytes_consumed);
  size_t SerializedSizeBytes() const;

 private:
  static constexpr u32 kBitsetWords = 1024;          // 65536 bits
  static constexpr u32 kArrayMaxCardinality = 4096;  // switch point

  enum class ContainerType : u8 { kArray = 0, kBitset = 1, kRun = 2 };

  struct Run {
    u16 start;
    u16 length;  // run covers [start, start+length], inclusive
  };

  struct Container {
    u16 key = 0;
    ContainerType type = ContainerType::kArray;
    u32 cardinality = 0;
    std::vector<u16> array;
    std::vector<u64> bitset;
    std::vector<Run> runs;
  };

  Container* FindOrCreate(u16 key);
  const Container* Find(u16 key) const;
  static void AddToContainer(Container* c, u16 low);
  static bool ContainerContains(const Container& c, u16 low);
  static void ToBitset(Container* c);

  // Sorted by key.
  std::vector<Container> containers_;
};

}  // namespace btr

#endif  // BTR_BITMAP_ROARING_H_
