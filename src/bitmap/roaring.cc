#include "bitmap/roaring.h"

#include <algorithm>
#include <cstring>

namespace btr {

RoaringBitmap::Container* RoaringBitmap::FindOrCreate(u16 key) {
  // Fast path: appends are usually to the last container.
  if (!containers_.empty() && containers_.back().key == key) {
    return &containers_.back();
  }
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, u16 k) { return c.key < k; });
  if (it != containers_.end() && it->key == key) return &*it;
  Container fresh;
  fresh.key = key;
  return &*containers_.insert(it, std::move(fresh));
}

const RoaringBitmap::Container* RoaringBitmap::Find(u16 key) const {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, u16 k) { return c.key < k; });
  if (it != containers_.end() && it->key == key) return &*it;
  return nullptr;
}

void RoaringBitmap::ToBitset(Container* c) {
  BTR_DCHECK(c->type == ContainerType::kArray);
  c->bitset.assign(kBitsetWords, 0);
  for (u16 v : c->array) c->bitset[v >> 6] |= u64{1} << (v & 63);
  c->array.clear();
  c->array.shrink_to_fit();
  c->type = ContainerType::kBitset;
}

void RoaringBitmap::AddToContainer(Container* c, u16 low) {
  switch (c->type) {
    case ContainerType::kArray: {
      if (!c->array.empty() && c->array.back() == low) return;
      if (c->array.empty() || c->array.back() < low) {
        c->array.push_back(low);
      } else {
        auto it = std::lower_bound(c->array.begin(), c->array.end(), low);
        if (it != c->array.end() && *it == low) return;
        c->array.insert(it, low);
      }
      c->cardinality++;
      if (c->cardinality > kArrayMaxCardinality) ToBitset(c);
      return;
    }
    case ContainerType::kBitset: {
      u64& word = c->bitset[low >> 6];
      u64 mask = u64{1} << (low & 63);
      if ((word & mask) == 0) {
        word |= mask;
        c->cardinality++;
      }
      return;
    }
    case ContainerType::kRun: {
      // Run containers are produced by RunOptimize(), but adds can arrive
      // in any order afterwards (e.g. patching exception positions into a
      // run-compressed selection). Runs must stay sorted and disjoint:
      // Contains() binary-searches them and ForEach() iterates them in
      // stored order.
      // Fast path: ascending append beyond the last run.
      if (!c->runs.empty()) {
        Run& last = c->runs.back();
        u32 end = static_cast<u32>(last.start) + last.length;
        if (low >= last.start && low <= end) return;
        if (low == end + 1) {
          last.length++;
          c->cardinality++;
          return;
        }
        if (low > end) {
          c->runs.push_back(Run{low, 0});
          c->cardinality++;
          return;
        }
      }
      // General case: sorted insert with neighbor merging.
      auto it = std::upper_bound(
          c->runs.begin(), c->runs.end(), low,
          [](u16 v, const Run& r) { return v < r.start; });
      if (it != c->runs.begin()) {
        Run& prev = *(it - 1);
        u32 end = static_cast<u32>(prev.start) + prev.length;
        if (low >= prev.start && low <= end) return;  // already present
        if (low == end + 1) {
          prev.length++;
          c->cardinality++;
          if (it != c->runs.end() &&
              static_cast<u32>(prev.start) + prev.length + 1 == it->start) {
            prev.length += it->length + 1;
            c->runs.erase(it);
          }
          return;
        }
      }
      if (it != c->runs.end() && static_cast<u32>(low) + 1 == it->start) {
        it->start = low;
        it->length++;
        c->cardinality++;
        return;
      }
      c->runs.insert(it, Run{low, 0});
      c->cardinality++;
      return;
    }
  }
}

void RoaringBitmap::Add(u32 value) {
  AddToContainer(FindOrCreate(static_cast<u16>(value >> 16)),
                 static_cast<u16>(value & 0xFFFF));
}

void RoaringBitmap::AddRange(u32 begin, u32 end) {
  for (u32 v = begin; v < end; v++) Add(v);
}

void RoaringBitmap::RunOptimize() {
  for (Container& c : containers_) {
    // Collect runs from the current representation.
    std::vector<Run> runs;
    u32 run_count = 0;
    auto feed = [&](u16 low) {
      if (!runs.empty() &&
          static_cast<u32>(runs.back().start) + runs.back().length + 1 == low) {
        runs.back().length++;
      } else {
        runs.push_back(Run{low, 0});
        run_count++;
      }
    };
    if (c.type == ContainerType::kArray) {
      for (u16 v : c.array) feed(v);
    } else if (c.type == ContainerType::kBitset) {
      for (u32 word = 0; word < kBitsetWords; word++) {
        u64 bits = c.bitset[word];
        while (bits != 0) {
          u32 bit = static_cast<u32>(__builtin_ctzll(bits));
          feed(static_cast<u16>(word * 64 + bit));
          bits &= bits - 1;
        }
      }
    } else {
      continue;  // already runs
    }
    size_t run_bytes = runs.size() * sizeof(Run);
    size_t current_bytes = c.type == ContainerType::kArray
                               ? c.array.size() * sizeof(u16)
                               : kBitsetWords * sizeof(u64);
    if (run_bytes < current_bytes) {
      c.runs = std::move(runs);
      c.array.clear();
      c.array.shrink_to_fit();
      c.bitset.clear();
      c.bitset.shrink_to_fit();
      c.type = ContainerType::kRun;
    }
  }
}

bool RoaringBitmap::ContainerContains(const Container& c, u16 low) {
  switch (c.type) {
    case ContainerType::kArray:
      return std::binary_search(c.array.begin(), c.array.end(), low);
    case ContainerType::kBitset:
      return (c.bitset[low >> 6] >> (low & 63)) & 1;
    case ContainerType::kRun: {
      auto it = std::upper_bound(
          c.runs.begin(), c.runs.end(), low,
          [](u16 v, const Run& r) { return v < r.start; });
      if (it == c.runs.begin()) return false;
      --it;
      return low >= it->start &&
             static_cast<u32>(low) <= static_cast<u32>(it->start) + it->length;
    }
  }
  return false;
}

bool RoaringBitmap::Contains(u32 value) const {
  const Container* c = Find(static_cast<u16>(value >> 16));
  return c != nullptr && ContainerContains(*c, static_cast<u16>(value & 0xFFFF));
}

u64 RoaringBitmap::Cardinality() const {
  u64 total = 0;
  for (const Container& c : containers_) total += c.cardinality;
  return total;
}

bool RoaringBitmap::IntersectsRange(u32 begin, u32 end) const {
  // Ranges used by decompression are tiny (4-8 values); per-value Contains
  // within one container is fast enough and avoids container-range logic.
  for (u32 v = begin; v < end; v++) {
    if (Contains(v)) return true;
  }
  return false;
}

// Set algebra via ordered iteration + probing. Selection vectors cover one
// 64k block, so containers are few; container-specialized kernels (as in
// CRoaring) would be the next optimization if these ever show in profiles.
RoaringBitmap RoaringBitmap::And(const RoaringBitmap& a, const RoaringBitmap& b) {
  RoaringBitmap result;
  const RoaringBitmap& iterate = a.Cardinality() <= b.Cardinality() ? a : b;
  const RoaringBitmap& probe = a.Cardinality() <= b.Cardinality() ? b : a;
  iterate.ForEach([&](u32 v) {
    if (probe.Contains(v)) result.Add(v);
  });
  result.RunOptimize();
  return result;
}

RoaringBitmap RoaringBitmap::Or(const RoaringBitmap& a, const RoaringBitmap& b) {
  RoaringBitmap result;
  a.ForEach([&](u32 v) { result.Add(v); });
  b.ForEach([&](u32 v) { result.Add(v); });
  result.RunOptimize();
  return result;
}

RoaringBitmap RoaringBitmap::AndNot(const RoaringBitmap& a,
                                    const RoaringBitmap& b) {
  RoaringBitmap result;
  a.ForEach([&](u32 v) {
    if (!b.Contains(v)) result.Add(v);
  });
  result.RunOptimize();
  return result;
}

std::vector<u32> RoaringBitmap::ToVector() const {
  std::vector<u32> out;
  out.reserve(Cardinality());
  ForEach([&](u32 v) { out.push_back(v); });
  return out;
}

namespace {
// Serialized layout:
//   u32 container_count
//   per container: u16 key | u8 type | u32 cardinality | payload
//     array : u32 n       | n * u16
//     bitset: 1024 * u64
//     run   : u32 n       | n * (u16 start, u16 length)
struct SerHeader {
  u16 key;
  u8 type;
};
}  // namespace

void RoaringBitmap::SerializeTo(ByteBuffer* out) const {
  out->AppendValue<u32>(static_cast<u32>(containers_.size()));
  for (const Container& c : containers_) {
    out->AppendValue<u16>(c.key);
    out->AppendValue<u8>(static_cast<u8>(c.type));
    out->AppendValue<u32>(c.cardinality);
    switch (c.type) {
      case ContainerType::kArray:
        out->AppendValue<u32>(static_cast<u32>(c.array.size()));
        out->Append(c.array.data(), c.array.size() * sizeof(u16));
        break;
      case ContainerType::kBitset:
        out->Append(c.bitset.data(), kBitsetWords * sizeof(u64));
        break;
      case ContainerType::kRun:
        out->AppendValue<u32>(static_cast<u32>(c.runs.size()));
        out->Append(c.runs.data(), c.runs.size() * sizeof(Run));
        break;
    }
  }
}

size_t RoaringBitmap::SerializedSizeBytes() const {
  size_t total = sizeof(u32);
  for (const Container& c : containers_) {
    total += sizeof(u16) + sizeof(u8) + sizeof(u32);
    switch (c.type) {
      case ContainerType::kArray:
        total += sizeof(u32) + c.array.size() * sizeof(u16);
        break;
      case ContainerType::kBitset:
        total += kBitsetWords * sizeof(u64);
        break;
      case ContainerType::kRun:
        total += sizeof(u32) + c.runs.size() * sizeof(Run);
        break;
    }
  }
  return total;
}

RoaringBitmap RoaringBitmap::Deserialize(const u8* data, size_t* bytes_consumed) {
  RoaringBitmap result;
  const u8* cursor = data;
  u32 container_count;
  std::memcpy(&container_count, cursor, sizeof(u32));
  cursor += sizeof(u32);
  result.containers_.resize(container_count);
  for (u32 i = 0; i < container_count; i++) {
    Container& c = result.containers_[i];
    std::memcpy(&c.key, cursor, sizeof(u16));
    cursor += sizeof(u16);
    u8 type = *cursor++;
    BTR_CHECK(type <= 2);
    c.type = static_cast<ContainerType>(type);
    std::memcpy(&c.cardinality, cursor, sizeof(u32));
    cursor += sizeof(u32);
    switch (c.type) {
      case ContainerType::kArray: {
        u32 n;
        std::memcpy(&n, cursor, sizeof(u32));
        cursor += sizeof(u32);
        c.array.resize(n);
        std::memcpy(c.array.data(), cursor, n * sizeof(u16));
        cursor += n * sizeof(u16);
        break;
      }
      case ContainerType::kBitset: {
        c.bitset.resize(kBitsetWords);
        std::memcpy(c.bitset.data(), cursor, kBitsetWords * sizeof(u64));
        cursor += kBitsetWords * sizeof(u64);
        break;
      }
      case ContainerType::kRun: {
        u32 n;
        std::memcpy(&n, cursor, sizeof(u32));
        cursor += sizeof(u32);
        c.runs.resize(n);
        std::memcpy(c.runs.data(), cursor, n * sizeof(Run));
        cursor += n * sizeof(Run);
        break;
      }
    }
  }
  if (bytes_consumed != nullptr) *bytes_consumed = static_cast<size_t>(cursor - data);
  return result;
}

}  // namespace btr
