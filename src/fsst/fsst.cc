#include "fsst/fsst.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace btr::fsst {

namespace {

inline u64 LoadWord(const u8* p, size_t remaining) {
  // Little-endian load of up to 8 bytes, zero padded.
  if (remaining >= 8) {
    u64 w;
    std::memcpy(&w, p, 8);
    return w;
  }
  u64 w = 0;
  std::memcpy(&w, p, remaining);
  return w;
}

inline u64 LengthMask(u32 len) {
  return len >= 8 ? ~u64{0} : ((u64{1} << (len * 8)) - 1);
}

inline u64 HashBytes(u64 bytes) {
  u64 h = bytes * 0x9E3779B97F4A7C15ULL;
  return h ^ (h >> 32);
}

// Composite key for the build-time candidate map.
struct SymbolKey {
  u64 bytes;
  u8 length;
  bool operator==(const SymbolKey& o) const {
    return bytes == o.bytes && length == o.length;
  }
};

struct SymbolKeyHash {
  size_t operator()(const SymbolKey& k) const {
    return static_cast<size_t>(HashBytes(k.bytes) ^ (k.length * 0x517CC1B7ULL));
  }
};

}  // namespace

SymbolTable::SymbolTable() {
  std::fill(std::begin(single_code_), std::end(single_code_), i16{-1});
}

void SymbolTable::AddSymbol(u64 bytes, u8 length) {
  BTR_DCHECK(count_ < kMaxSymbols);
  BTR_DCHECK(length >= 1 && length <= kMaxSymbolLength);
  symbol_bytes_[count_] = bytes & LengthMask(length);
  symbol_length_[count_] = length;
  count_++;
}

void SymbolTable::FinalizeLookup() {
  std::fill(std::begin(single_code_), std::end(single_code_), i16{-1});
  two_byte_code_.assign(65536, i16{-1});
  hash_.assign(kHashSlots, HashSlot{});
  max_length_ = 1;
  for (u32 code = 0; code < count_; code++) {
    u64 bytes = symbol_bytes_[code];
    u8 len = symbol_length_[code];
    max_length_ = std::max(max_length_, len);
    if (len == 1) {
      single_code_[bytes & 0xFF] = static_cast<i16>(code);
    } else if (len == 2) {
      two_byte_code_[bytes & 0xFFFF] = static_cast<i16>(code);
    } else {
      u64 slot = HashBytes(bytes ^ len) & (kHashSlots - 1);
      while (hash_[slot].code >= 0) slot = (slot + 1) & (kHashSlots - 1);
      hash_[slot] = HashSlot{bytes, static_cast<i16>(code), len};
    }
  }
}

int SymbolTable::FindLongestSymbol(u64 word, u32 remaining, u32* match_len) const {
  u32 limit = std::min<u32>(remaining, max_length_);
  for (u32 len = limit; len >= 3; len--) {
    u64 prefix = word & LengthMask(len);
    u64 slot = HashBytes(prefix ^ len) & (kHashSlots - 1);
    while (hash_[slot].code >= 0) {
      if (hash_[slot].bytes == prefix && hash_[slot].length == len) {
        *match_len = len;
        return hash_[slot].code;
      }
      slot = (slot + 1) & (kHashSlots - 1);
    }
  }
  if (remaining >= 2) {
    i16 code = two_byte_code_.empty() ? i16{-1}
                                      : two_byte_code_[word & 0xFFFF];
    if (code >= 0) {
      *match_len = 2;
      return code;
    }
  }
  i16 code = single_code_[word & 0xFF];
  if (code >= 0) {
    *match_len = 1;
    return code;
  }
  return -1;
}

size_t SymbolTable::Compress(const u8* in, size_t len, u8* out) const {
  u8* dst = out;
  size_t pos = 0;
  while (pos < len) {
    u64 word = LoadWord(in + pos, len - pos);
    u32 match_len = 0;
    int code = FindLongestSymbol(word, static_cast<u32>(len - pos), &match_len);
    if (code >= 0) {
      *dst++ = static_cast<u8>(code);
      pos += match_len;
    } else {
      *dst++ = kEscapeCode;
      *dst++ = static_cast<u8>(word & 0xFF);
      pos++;
    }
  }
  return static_cast<size_t>(dst - out);
}

size_t SymbolTable::Decompress(const u8* in, size_t compressed_len, u8* out) const {
  u8* dst = out;
  size_t pos = 0;
  while (pos < compressed_len) {
    u8 code = in[pos++];
    if (code == kEscapeCode) {
      *dst++ = in[pos++];
    } else {
      BTR_DCHECK(code < count_);
      // Unconditional 8-byte store; caller guarantees slack.
      std::memcpy(dst, &symbol_bytes_[code], 8);
      dst += symbol_length_[code];
    }
  }
  return static_cast<size_t>(dst - out);
}

size_t SymbolTable::DecompressedSize(const u8* in, size_t compressed_len) const {
  size_t total = 0;
  size_t pos = 0;
  while (pos < compressed_len) {
    u8 code = in[pos++];
    if (code == kEscapeCode) {
      pos++;
      total++;
    } else {
      total += symbol_length_[code];
    }
  }
  return total;
}

SymbolTable SymbolTable::Build(const u8* sample, size_t sample_len) {
  // Cap the training sample; FSST quality saturates quickly.
  constexpr size_t kMaxSample = 1 << 14;
  sample_len = std::min(sample_len, kMaxSample);

  constexpr int kIterations = 5;
  SymbolTable table;
  table.FinalizeLookup();  // empty lookup: everything escapes

  // Open-addressing candidate counter, reused across iterations: the
  // unordered_map equivalent dominates build time in profiles.
  struct CountSlot {
    u64 bytes = 0;
    u32 count = 0;
    u8 length = 0;
  };
  constexpr u32 kCountSlots = 1u << 14;
  std::vector<CountSlot> counts(kCountSlots);

  for (int iter = 0; iter < kIterations; iter++) {
    // Encode the sample with the current table, counting symbol and
    // adjacent-pair frequencies.
    std::fill(counts.begin(), counts.end(), CountSlot{});
    auto bump = [&](u64 bytes, u8 length) {
      u64 slot = (HashBytes(bytes) ^ (length * 0x517CC1B7ULL)) & (kCountSlots - 1);
      // Bounded probe; a full neighborhood just drops the candidate.
      for (u32 probe = 0; probe < 16; probe++) {
        CountSlot& s = counts[slot];
        if (s.count == 0) {
          s = CountSlot{bytes, 1, length};
          return;
        }
        if (s.bytes == bytes && s.length == length) {
          s.count++;
          return;
        }
        slot = (slot + 1) & (kCountSlots - 1);
      }
    };
    u64 prev_bytes = 0;
    u8 prev_len = 0;
    size_t pos = 0;
    while (pos < sample_len) {
      u64 word = LoadWord(sample + pos, sample_len - pos);
      u32 match_len = 0;
      int code = table.FindLongestSymbol(
          word, static_cast<u32>(sample_len - pos), &match_len);
      u64 cur_bytes;
      u8 cur_len;
      if (code >= 0) {
        cur_bytes = table.symbol_bytes_[code];
        cur_len = table.symbol_length_[code];
      } else {
        cur_bytes = word & 0xFF;
        cur_len = 1;
        match_len = 1;
      }
      bump(cur_bytes, cur_len);
      if (prev_len != 0 && prev_len + cur_len <= kMaxSymbolLength) {
        u64 merged = prev_bytes | (cur_bytes << (prev_len * 8));
        bump(merged, static_cast<u8>(prev_len + cur_len));
      }
      prev_bytes = cur_bytes;
      prev_len = cur_len;
      pos += match_len;
    }

    // Keep the kMaxSymbols candidates with the highest gain.
    struct Scored {
      u64 gain;
      SymbolKey key;
    };
    std::vector<Scored> scored;
    scored.reserve(4096);
    for (const CountSlot& slot : counts) {
      if (slot.count == 0) continue;
      // Gain: bytes covered. Single-byte symbols only pay off vs the
      // escape path, but keeping frequent ones avoids 2x blowup.
      scored.push_back(Scored{static_cast<u64>(slot.count) * slot.length,
                              SymbolKey{slot.bytes, slot.length}});
    }
    size_t keep = std::min<size_t>(scored.size(), kMaxSymbols);
    std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                      [](const Scored& a, const Scored& b) {
                        if (a.gain != b.gain) return a.gain > b.gain;
                        if (a.key.length != b.key.length) {
                          return a.key.length > b.key.length;
                        }
                        return a.key.bytes < b.key.bytes;
                      });
    SymbolTable next;
    for (size_t i = 0; i < keep; i++) {
      next.AddSymbol(scored[i].key.bytes, scored[i].key.length);
    }
    next.FinalizeLookup();
    table = std::move(next);
  }
  return table;
}

void SymbolTable::SerializeTo(ByteBuffer* out) const {
  out->AppendValue<u8>(static_cast<u8>(count_));
  out->Append(symbol_length_, count_);
  for (u32 i = 0; i < count_; i++) {
    out->Append(&symbol_bytes_[i], symbol_length_[i]);
  }
}

size_t SymbolTable::SerializedSizeBytes() const {
  size_t total = 1 + count_;
  for (u32 i = 0; i < count_; i++) total += symbol_length_[i];
  return total;
}

SymbolTable SymbolTable::Deserialize(const u8* data, size_t* bytes_consumed) {
  SymbolTable table;
  const u8* cursor = data;
  u32 count = *cursor++;
  const u8* lengths = cursor;
  cursor += count;
  for (u32 i = 0; i < count; i++) {
    u64 bytes = 0;
    std::memcpy(&bytes, cursor, lengths[i]);
    cursor += lengths[i];
    table.AddSymbol(bytes, lengths[i]);
  }
  table.FinalizeLookup();
  if (bytes_consumed != nullptr) {
    *bytes_consumed = static_cast<size_t>(cursor - data);
  }
  return table;
}

size_t CompressBlock(const SymbolTable& table, const u8* in, size_t len,
                     ByteBuffer* out) {
  size_t offset = out->size();
  out->Resize(offset + 2 * len);  // escape worst case
  size_t written = table.Compress(in, len, out->data() + offset);
  out->Resize(offset + written);
  return written;
}

}  // namespace btr::fsst
