// From-scratch Fast Static Symbol Table (FSST) string compression
// (Boncz, Neumann, Leis: "FSST: Fast Random Access String Compression",
// VLDB 2020). BtrBlocks uses FSST directly on string blocks and on string
// dictionaries (paper Table 1, Section 2.2).
//
// A symbol table maps up to 255 one-byte codes to symbols of 1..8 bytes;
// code 255 is an escape marker followed by one literal byte. The table is
// immutable per block. Construction follows the paper's iterative
// bottom-up algorithm: repeatedly encode a sample with the current table,
// count symbol and adjacent-pair frequencies, and keep the 255 candidates
// with the highest gain (frequency x length).
#ifndef BTR_FSST_FSST_H_
#define BTR_FSST_FSST_H_

#include <vector>

#include "util/buffer.h"
#include "util/types.h"

namespace btr::fsst {

inline constexpr u32 kMaxSymbols = 255;
inline constexpr u8 kEscapeCode = 255;
inline constexpr u32 kMaxSymbolLength = 8;

class SymbolTable {
 public:
  SymbolTable();

  // Builds a table from a training sample (typically the block being
  // compressed, or a sample of it). The sample is capped internally.
  static SymbolTable Build(const u8* sample, size_t sample_len);

  // Compresses `len` bytes. Worst case output is 2*len (all escapes);
  // `out` must have that much room. Returns compressed size.
  size_t Compress(const u8* in, size_t len, u8* out) const;

  // Decompresses `compressed_len` bytes. `out` must have room for the
  // original size plus 8 bytes of slack (symbol copies are 8-byte stores).
  // Returns decompressed size.
  size_t Decompress(const u8* in, size_t compressed_len, u8* out) const;

  // Exact decompressed size without writing output.
  size_t DecompressedSize(const u8* in, size_t compressed_len) const;

  // Serialization: [u8 count][count * u8 lengths][concatenated bytes].
  void SerializeTo(ByteBuffer* out) const;
  static SymbolTable Deserialize(const u8* data, size_t* bytes_consumed);
  size_t SerializedSizeBytes() const;

  u32 symbol_count() const { return count_; }

 private:
  struct Candidate {
    u64 bytes;  // little-endian, zero padded
    u8 length;
  };

  void AddSymbol(u64 bytes, u8 length);
  void FinalizeLookup();

  // Longest-match step: returns the symbol code for the text at `word`
  // (little-endian load of the next min(remaining,8) bytes), or -1 if only
  // an escape fits. Sets *match_len.
  int FindLongestSymbol(u64 word, u32 remaining, u32* match_len) const;

  u32 count_ = 0;
  u64 symbol_bytes_[kMaxSymbols];
  u8 symbol_length_[kMaxSymbols];

  // Lookup acceleration, built by FinalizeLookup():
  i16 single_code_[256];             // 1-byte symbols
  std::vector<i16> two_byte_code_;   // 65536 entries, 2-byte symbols
  // Open-addressing hash for symbols of length >= 3.
  struct HashSlot {
    u64 bytes = 0;
    i16 code = -1;
    u8 length = 0;
  };
  static constexpr u32 kHashSlots = 2048;  // power of two
  std::vector<HashSlot> hash_;
  u8 max_length_ = 1;  // longest symbol in the table
};

// Convenience helpers for one-shot round trips (tests, small payloads).
size_t CompressBlock(const SymbolTable& table, const u8* in, size_t len,
                     ByteBuffer* out);

}  // namespace btr::fsst

#endif  // BTR_FSST_FSST_H_
