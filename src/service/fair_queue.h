// Deficit-round-robin fair queue for the multi-tenant scan service.
//
// One FairQueue multiplexes work items from many tenant lanes onto a
// shared executor pool (docs/SCAN_SERVICE.md). Each lane owns a FIFO of
// closures tagged with a byte cost; Pop serves lanes deficit-round-robin
// (Shreedhar & Varghese): every serving pass grants each backlogged lane
// `quantum_bytes` of deficit, and a lane may dequeue items while its
// accumulated deficit covers their cost. A lane that goes idle forfeits
// its deficit, so a tenant cannot bank credit while absent and then burst
// past everyone. The result: over any busy interval, each backlogged
// tenant drains ~quantum-proportional bytes per pass regardless of how
// deep a hog tenant's backlog is.
//
// Lanes may also carry an outstanding-item cap (`max_outstanding`): a
// lane with that many items popped-but-not-yet-completed is skipped until
// OnComplete() is called — the service uses this to cap a tenant's
// in-flight GETs without stalling other tenants' work.
//
// Thread-safe: any number of pushers and popping executor threads.
#ifndef BTR_SERVICE_FAIR_QUEUE_H_
#define BTR_SERVICE_FAIR_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "util/types.h"

namespace btr::service {

struct FairQueueConfig {
  // Deficit granted to each backlogged lane per serving pass. Items
  // larger than the quantum still run (the deficit accumulates across
  // passes); the quantum only sets the interleaving granularity.
  u64 quantum_bytes = 1ull << 20;
};

class FairQueue {
 public:
  explicit FairQueue(const FairQueueConfig& config = FairQueueConfig());

  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  // Adds a lane; returns its index. `max_outstanding` caps items
  // concurrently popped-but-not-completed (0 = uncapped). Lanes are never
  // removed. Safe to call concurrently with Push/Pop.
  u32 AddLane(u32 max_outstanding = 0);

  // Enqueues a work item on `lane`. `cost` is the DRR charge (bytes the
  // item will move; 0 is treated as 1 so zero-cost floods cannot starve
  // the round-robin). Returns false if the queue is closed.
  bool Push(u32 lane, u64 cost, std::function<void()> run);

  // Blocks until an item is servable or the queue is closed-and-drained
  // (false). On success fills `run`, the nanoseconds the item spent
  // queued, and its lane; the caller must invoke OnComplete(lane) once
  // the item's work has finished.
  bool Pop(std::function<void()>* run, u64* queued_ns, u32* lane_out);

  // Releases one outstanding slot on `lane` and wakes poppers.
  void OnComplete(u32 lane);

  // No more Pushes succeed; Pops drain what is queued, then return false.
  void Close();

  struct LaneStats {
    u64 pushed = 0;
    u64 popped = 0;
    u64 queued_ns = 0;  // total time popped items spent waiting
  };
  LaneStats GetLaneStats(u32 lane) const;

  // Items currently queued across all lanes.
  size_t Depth() const;

 private:
  struct Item {
    u64 cost;
    std::function<void()> run;
    u64 enqueued_ns;  // steady-clock stamp at Push
  };
  struct Lane {
    std::deque<Item> items;
    u64 deficit = 0;
    u32 outstanding = 0;
    u32 max_outstanding = 0;
    LaneStats stats;
  };

  // A lane that Pop may serve right now (mutex held).
  bool ServableLocked(const Lane& lane) const {
    return !lane.items.empty() &&
           (lane.max_outstanding == 0 ||
            lane.outstanding < lane.max_outstanding);
  }
  bool AnyServableLocked() const;

  const FairQueueConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable servable_cv_;
  std::vector<Lane> lanes_;
  size_t cursor_ = 0;  // lane the DRR pass resumes from
  size_t depth_ = 0;
  bool closed_ = false;
};

}  // namespace btr::service

#endif  // BTR_SERVICE_FAIR_QUEUE_H_
