#include "service/scan_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/metrics.h"
#include "util/timer.h"

namespace btr::service {

// All hot counters are atomics so fetch/decode closures on different
// executor threads update them without a tenant-wide lock; the wait ring
// (exact p95) takes a small mutex only when a queue wait is recorded.
struct ScanService::TenantState {
  TenantId id;
  TenantQuota quota;

  // Guarded by admission_mutex_.
  u32 running_scans = 0;

  std::atomic<u64> scans_admitted{0};
  std::atomic<u64> scans_queued{0};
  std::atomic<u64> scans_rejected{0};
  std::atomic<u64> scans_completed{0};
  std::atomic<u64> admission_wait_ns{0};

  std::atomic<u64> gets{0};
  std::atomic<u64> cache_hits{0};
  std::atomic<u64> cache_misses{0};
  std::atomic<u64> bytes_fetched{0};
  std::atomic<u64> hedges{0};
  std::atomic<u64> hedges_denied{0};
  std::atomic<u64> hedges_used{0};  // against quota.hedge_budget

  std::atomic<u64> cache_bytes{0};
  std::atomic<u64> cache_quota_skips{0};

  std::atomic<u64> queue_items{0};
  std::atomic<u64> queue_wait_ns{0};

  // Ring of recent queue waits for the exact p95.
  mutable std::mutex wait_mutex;
  std::vector<u64> wait_ring;
  size_t wait_next = 0;
  u64 wait_seen = 0;

  // Per-tenant observability (docs/SCAN_SERVICE.md).
  obs::Counter* obs_gets = nullptr;
  obs::Counter* obs_hits = nullptr;
  obs::Counter* obs_queued_ns = nullptr;
  obs::Counter* obs_rejected = nullptr;
};

ScanService::ScanService(const ScanServiceConfig& config)
    : config_(config),
      cache_(config.cache),
      fetch_queue_(FairQueueConfig{config.fair_quantum_bytes}),
      decode_queue_(FairQueueConfig{config.fair_quantum_bytes}) {
  // Owned cache entries credit their tenant's byte count back on any exit
  // from the cache (eviction, replacement, erase). Owner 0 = unowned.
  cache_.SetEvictionCallback([this](u32 owner, u64 bytes) {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    if (owner == 0 || owner > tenants_.size()) return;
    tenants_[owner - 1]->cache_bytes.fetch_sub(bytes,
                                               std::memory_order_relaxed);
  });
  u32 fetchers = std::max(1u, config_.fetch_threads);
  u32 decoders = config_.decode_threads != 0
                     ? config_.decode_threads
                     : std::max(1u, std::thread::hardware_concurrency());
  fetch_threads_.reserve(fetchers);
  for (u32 i = 0; i < fetchers; i++) {
    fetch_threads_.emplace_back([this] { ExecutorLoop(&fetch_queue_); });
  }
  decode_threads_.reserve(decoders);
  for (u32 i = 0; i < decoders; i++) {
    decode_threads_.emplace_back([this] { ExecutorLoop(&decode_queue_); });
  }
}

ScanService::~ScanService() {
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    BTR_CHECK_MSG(running_scans_ == 0 && waiters_.empty(),
                  "ScanService destroyed with scans still active");
  }
  fetch_queue_.Close();
  decode_queue_.Close();
  for (std::thread& t : fetch_threads_) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : decode_threads_) {
    if (t.joinable()) t.join();
  }
}

ScanService::TenantState& ScanService::Tenant(u32 slot) const {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  BTR_CHECK_MSG(slot < tenants_.size(), "ScanService: unknown tenant slot");
  return *tenants_[slot];
}

u32 ScanService::RegisterTenantLocked(const TenantId& id,
                                      const TenantQuota& quota) {
  auto it = tenant_index_.find(id);
  if (it != tenant_index_.end()) {
    tenants_[it->second]->quota = quota;
    return it->second;
  }
  auto tenant = std::make_unique<TenantState>();
  tenant->id = id;
  tenant->quota = quota;
  tenant->wait_ring.resize(std::max<u32>(1, config_.wait_ring_size), 0);
  obs::Registry& registry = obs::Registry::Get();
  std::string prefix = "service.tenant." + id + ".";
  tenant->obs_gets = &registry.GetCounter(prefix + "gets");
  tenant->obs_hits = &registry.GetCounter(prefix + "hits");
  tenant->obs_queued_ns = &registry.GetCounter(prefix + "queued_ns");
  tenant->obs_rejected = &registry.GetCounter(prefix + "rejected");
  u32 slot = static_cast<u32>(tenants_.size());
  tenants_.push_back(std::move(tenant));
  tenant_index_[id] = slot;
  // One lane per tenant in each queue, same index as the slot. The fetch
  // lane is capped at the tenant's outstanding-GET quota; decode items
  // finish on their own, so their lane never gates.
  u32 fetch_lane = fetch_queue_.AddLane(tenants_.back()->quota
                                            .max_outstanding_gets);
  u32 decode_lane = decode_queue_.AddLane(0);
  BTR_CHECK_MSG(fetch_lane == slot && decode_lane == slot,
                "ScanService: lane/slot mismatch");
  return slot;
}

u32 ScanService::RegisterTenant(const TenantId& id, const TenantQuota& quota) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  return RegisterTenantLocked(id, quota);
}

u32 ScanService::EnsureTenant(const TenantId& id) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  auto it = tenant_index_.find(id);
  if (it != tenant_index_.end()) return it->second;
  return RegisterTenantLocked(id, config_.default_quota);
}

u64 ScanService::EligibleFrontLocked() const {
  for (const Waiter& waiter : waiters_) {
    const TenantState& tenant = *waiter.tenant;
    if (tenant.quota.max_concurrent_scans == 0 ||
        tenant.running_scans < tenant.quota.max_concurrent_scans) {
      return waiter.seq;
    }
  }
  return ~0ull;
}

Status ScanService::Admit(u32 tenant_slot, Ticket* ticket, u64* wait_ns) {
  TenantState& tenant = Tenant(tenant_slot);
  ticket->tenant_slot = tenant_slot;
  ticket->admitted = false;
  if (wait_ns != nullptr) *wait_ns = 0;
  std::unique_lock<std::mutex> lock(admission_mutex_);
  // A tenant over its own concurrency quota is rejected immediately —
  // its own flood, not service pressure, and waiting would let one
  // tenant occupy the whole waiting room.
  auto tenant_has_capacity = [&] {
    return tenant.quota.max_concurrent_scans == 0 ||
           tenant.running_scans < tenant.quota.max_concurrent_scans;
  };
  if (!tenant_has_capacity()) {
    tenant.scans_rejected.fetch_add(1, std::memory_order_relaxed);
    tenant.obs_rejected->Add();
    return Status::Throttled("tenant '" + tenant.id +
                             "' is at its concurrent-scan quota");
  }
  if (running_scans_ < config_.max_concurrent_scans) {
    running_scans_++;
    tenant.running_scans++;
    tenant.scans_admitted.fetch_add(1, std::memory_order_relaxed);
    ticket->admitted = true;
    return Status::Ok();
  }
  if (waiters_.size() >= config_.max_queued_scans ||
      config_.admission_timeout_ns == 0) {
    tenant.scans_rejected.fetch_add(1, std::memory_order_relaxed);
    tenant.obs_rejected->Add();
    return Status::Throttled("scan service saturated (" +
                             std::to_string(running_scans_) + " running, " +
                             std::to_string(waiters_.size()) + " queued)");
  }
  // Bounded FIFO waiting room: the earliest waiter whose tenant has scan
  // capacity is granted on each Release.
  u64 seq = next_waiter_seq_++;
  waiters_.push_back(Waiter{seq, &tenant});
  tenant.scans_queued.fetch_add(1, std::memory_order_relaxed);
  Timer wait_timer;
  bool granted = admission_cv_.wait_for(
      lock, std::chrono::nanoseconds(config_.admission_timeout_ns), [&] {
        return running_scans_ < config_.max_concurrent_scans &&
               EligibleFrontLocked() == seq;
      });
  u64 waited = static_cast<u64>(wait_timer.ElapsedNanos());
  tenant.admission_wait_ns.fetch_add(waited, std::memory_order_relaxed);
  tenant.obs_queued_ns->Add(waited);
  if (wait_ns != nullptr) *wait_ns = waited;
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (it->seq == seq) {
      waiters_.erase(it);
      break;
    }
  }
  if (!granted) {
    tenant.scans_rejected.fetch_add(1, std::memory_order_relaxed);
    tenant.obs_rejected->Add();
    // Our slot in the room freed up; someone behind us may now be
    // eligible.
    admission_cv_.notify_all();
    return Status::Throttled("scan admission timed out after " +
                             std::to_string(waited / 1000000) + " ms");
  }
  running_scans_++;
  tenant.running_scans++;
  tenant.scans_admitted.fetch_add(1, std::memory_order_relaxed);
  ticket->admitted = true;
  // Another waiter may also fit (capacity can free in bursts).
  admission_cv_.notify_all();
  return Status::Ok();
}

void ScanService::Release(Ticket* ticket) {
  if (!ticket->admitted) return;
  TenantState& tenant = Tenant(ticket->tenant_slot);
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    BTR_CHECK_MSG(running_scans_ > 0, "ScanService: Release without Admit");
    running_scans_--;
    BTR_CHECK_MSG(tenant.running_scans > 0,
                  "ScanService: tenant Release without Admit");
    tenant.running_scans--;
  }
  tenant.scans_completed.fetch_add(1, std::memory_order_relaxed);
  ticket->admitted = false;
  admission_cv_.notify_all();
}

exec::CircuitBreaker* ScanService::BreakerFor(const s3sim::ObjectStore* store) {
  if (!config_.enable_breaker) return nullptr;
  std::lock_guard<std::mutex> lock(breakers_mutex_);
  auto it = breakers_.find(store);
  if (it != breakers_.end()) return it->second.get();
  auto breaker = std::make_unique<exec::CircuitBreaker>(config_.breaker);
  exec::CircuitBreaker* raw = breaker.get();
  breakers_[store] = std::move(breaker);
  return raw;
}

void ScanService::ExecutorLoop(FairQueue* queue) {
  std::function<void()> run;
  u64 queued_ns = 0;
  u32 lane = 0;
  while (queue->Pop(&run, &queued_ns, &lane)) {
    RecordQueueWait(lane, queued_ns);
    run();
    run = nullptr;  // release captures before blocking in Pop again
    queue->OnComplete(lane);
  }
}

void ScanService::RecordQueueWait(u32 slot, u64 wait_ns) {
  TenantState& tenant = Tenant(slot);
  tenant.queue_items.fetch_add(1, std::memory_order_relaxed);
  tenant.queue_wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
  tenant.obs_queued_ns->Add(wait_ns);
  std::lock_guard<std::mutex> lock(tenant.wait_mutex);
  tenant.wait_ring[tenant.wait_next] = wait_ns;
  tenant.wait_next = (tenant.wait_next + 1) % tenant.wait_ring.size();
  tenant.wait_seen++;
}

void ScanService::SubmitFetch(u32 tenant_slot, u64 cost_bytes,
                              std::function<void()> run) {
  bool pushed = fetch_queue_.Push(tenant_slot, cost_bytes, std::move(run));
  BTR_CHECK_MSG(pushed, "ScanService: fetch submitted after shutdown");
}

void ScanService::SubmitDecode(u32 tenant_slot, u64 cost_bytes,
                               std::function<void()> run) {
  bool pushed = decode_queue_.Push(tenant_slot, cost_bytes, std::move(run));
  BTR_CHECK_MSG(pushed, "ScanService: decode submitted after shutdown");
}

bool ScanService::TryAcquireTenantHedge(u32 tenant_slot) {
  TenantState& tenant = Tenant(tenant_slot);
  if (tenant.quota.hedge_budget == 0) return true;
  u64 prev = tenant.hedges_used.fetch_add(1, std::memory_order_relaxed);
  if (prev >= tenant.quota.hedge_budget) {
    tenant.hedges_used.fetch_sub(1, std::memory_order_relaxed);
    tenant.hedges_denied.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool ScanService::TryCacheInsert(u32 tenant_slot, const std::string& key,
                                 u64 offset, u64 length, const u8* data,
                                 size_t size, u32 expected_crc) {
  TenantState& tenant = Tenant(tenant_slot);
  if (tenant.quota.max_cache_bytes != 0 &&
      tenant.cache_bytes.load(std::memory_order_relaxed) + size >
          tenant.quota.max_cache_bytes) {
    tenant.cache_quota_skips.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Credit before the insert: once the entry is in the cache it can be
  // evicted (and debited) concurrently, so the debit must never be able
  // to run before the matching credit.
  tenant.cache_bytes.fetch_add(size, std::memory_order_relaxed);
  bool inserted = cache_.Insert(key, offset, length, data, size, expected_crc,
                                tenant_slot + 1);
  if (!inserted) {
    tenant.cache_bytes.fetch_sub(size, std::memory_order_relaxed);
  }
  return inserted;
}

void ScanService::RecordFetchOutcome(u32 tenant_slot, bool cache_hit,
                                     u64 bytes, u64 gets, bool hedged) {
  TenantState& tenant = Tenant(tenant_slot);
  if (cache_hit) {
    tenant.cache_hits.fetch_add(1, std::memory_order_relaxed);
    tenant.obs_hits->Add();
    return;
  }
  tenant.cache_misses.fetch_add(1, std::memory_order_relaxed);
  tenant.gets.fetch_add(gets, std::memory_order_relaxed);
  tenant.bytes_fetched.fetch_add(bytes, std::memory_order_relaxed);
  tenant.obs_gets->Add(gets);
  if (hedged) tenant.hedges.fetch_add(1, std::memory_order_relaxed);
}

TenantStats ScanService::GetTenantStats(const TenantId& id) const {
  u32 slot;
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    auto it = tenant_index_.find(id);
    BTR_CHECK_MSG(it != tenant_index_.end(),
                  "ScanService: stats for unknown tenant");
    slot = it->second;
  }
  const TenantState& tenant = Tenant(slot);
  TenantStats stats;
  stats.scans_admitted = tenant.scans_admitted.load(std::memory_order_relaxed);
  stats.scans_queued = tenant.scans_queued.load(std::memory_order_relaxed);
  stats.scans_rejected =
      tenant.scans_rejected.load(std::memory_order_relaxed);
  stats.scans_completed =
      tenant.scans_completed.load(std::memory_order_relaxed);
  stats.admission_wait_ns =
      tenant.admission_wait_ns.load(std::memory_order_relaxed);
  stats.gets = tenant.gets.load(std::memory_order_relaxed);
  stats.cache_hits = tenant.cache_hits.load(std::memory_order_relaxed);
  stats.cache_misses = tenant.cache_misses.load(std::memory_order_relaxed);
  stats.bytes_fetched = tenant.bytes_fetched.load(std::memory_order_relaxed);
  stats.hedges = tenant.hedges.load(std::memory_order_relaxed);
  stats.hedges_denied = tenant.hedges_denied.load(std::memory_order_relaxed);
  stats.cache_bytes = tenant.cache_bytes.load(std::memory_order_relaxed);
  stats.cache_quota_skips =
      tenant.cache_quota_skips.load(std::memory_order_relaxed);
  stats.queue_items = tenant.queue_items.load(std::memory_order_relaxed);
  stats.queue_wait_ns = tenant.queue_wait_ns.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(tenant.wait_mutex);
    size_t n = static_cast<size_t>(
        std::min<u64>(tenant.wait_seen, tenant.wait_ring.size()));
    if (n > 0) {
      std::vector<u64> waits(tenant.wait_ring.begin(),
                             tenant.wait_ring.begin() + n);
      size_t rank = (n * 95) / 100;
      if (rank >= n) rank = n - 1;
      std::nth_element(waits.begin(), waits.begin() + rank, waits.end());
      stats.queue_wait_p95_ns = waits[rank];
    }
  }
  return stats;
}

std::vector<std::pair<TenantId, TenantStats>> ScanService::AllTenantStats()
    const {
  std::vector<TenantId> ids;
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    ids.reserve(tenants_.size());
    for (const auto& tenant : tenants_) ids.push_back(tenant->id);
  }
  std::vector<std::pair<TenantId, TenantStats>> all;
  all.reserve(ids.size());
  for (const TenantId& id : ids) {
    all.emplace_back(id, GetTenantStats(id));
  }
  return all;
}

u32 ScanService::running_scans() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  return running_scans_;
}

u32 ScanService::queued_scans() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  return static_cast<u32>(waiters_.size());
}

}  // namespace btr::service
