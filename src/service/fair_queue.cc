#include "service/fair_queue.h"

#include <chrono>
#include <utility>

#include "util/types.h"

namespace btr::service {

namespace {

u64 NowNanos() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

FairQueue::FairQueue(const FairQueueConfig& config) : config_(config) {}

u32 FairQueue::AddLane(u32 max_outstanding) {
  std::lock_guard<std::mutex> lock(mutex_);
  Lane lane;
  lane.max_outstanding = max_outstanding;
  lanes_.push_back(std::move(lane));
  return static_cast<u32>(lanes_.size() - 1);
}

bool FairQueue::Push(u32 lane_index, u64 cost, std::function<void()> run) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    BTR_CHECK_MSG(lane_index < lanes_.size(), "FairQueue: unknown lane");
    Lane& lane = lanes_[lane_index];
    // Cost 0 would let a tenant drain unlimited items per pass; floor at 1.
    lane.items.push_back(Item{cost == 0 ? 1 : cost, std::move(run),
                              NowNanos()});
    lane.stats.pushed++;
    depth_++;
  }
  servable_cv_.notify_one();
  return true;
}

bool FairQueue::AnyServableLocked() const {
  for (const Lane& lane : lanes_) {
    if (ServableLocked(lane)) return true;
  }
  return false;
}

bool FairQueue::Pop(std::function<void()>* run, u64* queued_ns,
                    u32* lane_out) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    servable_cv_.wait(lock, [this] {
      return AnyServableLocked() || (closed_ && depth_ == 0);
    });
    if (!AnyServableLocked()) return false;  // closed and drained
    // DRR serving pass, resuming from cursor_: take the first servable
    // lane whose accumulated deficit covers its head item; when no lane
    // qualifies, grant each *backlogged, servable* lane one quantum and
    // rescan. Gated and idle lanes accrue nothing — credit cannot be
    // banked while absent.
    for (;;) {
      for (size_t k = 0; k < lanes_.size(); k++) {
        size_t idx = (cursor_ + k) % lanes_.size();
        Lane& lane = lanes_[idx];
        if (!ServableLocked(lane)) continue;
        if (lane.deficit < lane.items.front().cost) continue;
        Item item = std::move(lane.items.front());
        lane.items.pop_front();
        lane.deficit -= item.cost;
        // A lane that just went idle forfeits its remaining deficit.
        if (lane.items.empty()) lane.deficit = 0;
        lane.outstanding++;
        depth_--;
        u64 wait_ns = NowNanos() - item.enqueued_ns;
        lane.stats.popped++;
        lane.stats.queued_ns += wait_ns;
        // Keep serving this lane while its deficit lasts (classic DRR);
        // the deficit check above rotates the pass onward when spent.
        cursor_ = idx;
        *run = std::move(item.run);
        *queued_ns = wait_ns;
        *lane_out = static_cast<u32>(idx);
        return true;
      }
      bool granted = false;
      for (Lane& lane : lanes_) {
        if (ServableLocked(lane)) {
          lane.deficit += config_.quantum_bytes;
          granted = true;
        }
      }
      // Servability cannot change while we hold the mutex; if nothing is
      // servable the outer wait must run again.
      if (!granted) break;
    }
  }
}

void FairQueue::OnComplete(u32 lane_index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    BTR_CHECK_MSG(lane_index < lanes_.size(), "FairQueue: unknown lane");
    Lane& lane = lanes_[lane_index];
    BTR_CHECK_MSG(lane.outstanding > 0,
                  "FairQueue: OnComplete without a matching Pop");
    lane.outstanding--;
  }
  servable_cv_.notify_one();
}

void FairQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  servable_cv_.notify_all();
}

FairQueue::LaneStats FairQueue::GetLaneStats(u32 lane_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  BTR_CHECK_MSG(lane_index < lanes_.size(), "FairQueue: unknown lane");
  return lanes_[lane_index].stats;
}

size_t FairQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

}  // namespace btr::service
