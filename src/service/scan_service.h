// btr::service::ScanService — process-wide resources for concurrent scans.
//
// Every standalone btr::Scanner is an island: a private block cache, a
// private circuit breaker, fresh decode threads per Scan(). Correct for
// one client, wrong for many — the paper's premise (§2.1/§6.7) is that
// GETs and CPU scheduling *are* the scan cost, so a multi-tenant
// deployment wins by sharing exactly those. One ScanService per process
// owns (docs/SCAN_SERVICE.md):
//
//   - one sharded, CRC-verified exec::BlockCache shared by all scanners
//     (admission verifies CRC32C, so cross-tenant sharing is safe by
//     construction), with per-tenant cached-byte attribution;
//   - one exec::CircuitBreaker per backend (keyed by ObjectStore*), so
//     tenant A's dead backend fails fast for tenant B too;
//   - a global fetch/decode thread-pool pair fed by two deficit-round-
//     robin FairQueues with one lane per tenant — a hog tenant's backlog
//     cannot starve a light tenant's items;
//   - admission control: at most `max_concurrent_scans` scans run; the
//     next `max_queued_scans` wait (FIFO among eligible tenants, bounded
//     by `admission_timeout_ns`); everything else is rejected with typed
//     Status::Throttled. Throttled is transient, so callers can wrap
//     Scan() in exec::RunWithRetries and degrade gracefully;
//   - per-tenant quotas (concurrent scans, outstanding GETs, hedge
//     budget, cache bytes) and per-tenant obs counters:
//       service.tenant.<id>.gets / .hits / .queued_ns / .rejected
//
// Scanners attach via Scanner(service, tenant_id, ...); the standalone
// Scanner constructor keeps its private per-scan pipeline, unchanged.
//
// Threading: all methods are thread-safe. Destroy the service only after
// every serviced Scan() call has returned (checked).
#ifndef BTR_SERVICE_SCAN_SERVICE_H_
#define BTR_SERVICE_SCAN_SERVICE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/block_cache.h"
#include "exec/retry.h"
#include "service/fair_queue.h"
#include "util/status.h"
#include "util/types.h"

namespace btr::obs {
class Counter;  // obs/metrics.h
}  // namespace btr::obs

namespace btr::s3sim {
class ObjectStore;  // s3sim/object_store.h
}  // namespace btr::s3sim

namespace btr::service {

using TenantId = std::string;

// Per-tenant resource limits. 0 always means "unlimited".
struct TenantQuota {
  u32 max_concurrent_scans = 0;  // scans running at once (excess: Throttled)
  u32 max_outstanding_gets = 0;  // fetch items in flight (excess: queued)
  u64 hedge_budget = 0;          // duplicate GETs over the service lifetime
  u64 max_cache_bytes = 0;       // shared-cache bytes attributed to inserts
};

// Snapshot of one tenant's accounting (GetTenantStats).
struct TenantStats {
  u64 scans_admitted = 0;
  u64 scans_queued = 0;     // admissions that had to wait
  u64 scans_rejected = 0;   // typed-Throttled rejections
  u64 scans_completed = 0;
  u64 admission_wait_ns = 0;  // total time spent in the waiting room

  u64 gets = 0;           // GET attempts issued against the store
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  u64 bytes_fetched = 0;
  u64 hedges = 0;         // duplicate GETs issued
  u64 hedges_denied = 0;  // hedges suppressed by the tenant budget

  u64 cache_bytes = 0;        // shared-cache bytes currently attributed
  u64 cache_quota_skips = 0;  // inserts skipped at the cache-byte quota

  u64 queue_items = 0;       // work items that passed through the queues
  u64 queue_wait_ns = 0;     // total fair-queue wait across those items
  u64 queue_wait_p95_ns = 0;  // exact p95 over the recent-wait ring
};

struct ScanServiceConfig {
  u32 fetch_threads = 8;   // global GET executor threads
  u32 decode_threads = 0;  // global decode executor threads; 0 = hw conc.
  u64 fair_quantum_bytes = 1ull << 20;  // DRR quantum per serving pass

  // Admission control: max_concurrent_scans run; up to max_queued_scans
  // wait at most admission_timeout_ns; the rest reject with Throttled.
  u32 max_concurrent_scans = 64;
  u32 max_queued_scans = 64;
  u64 admission_timeout_ns = 500ull * 1000 * 1000;  // 500 ms

  // The one shared cache. Serviced scans always use it (the per-scan
  // ScanConfig cache knobs are owned by the service in serviced mode).
  exec::BlockCacheConfig cache;

  // Shared per-backend breakers (one per ObjectStore seen).
  bool enable_breaker = true;
  exec::CircuitBreakerPolicy breaker;

  // Quota applied to tenants first seen through EnsureTenant.
  TenantQuota default_quota;

  // Recent queue-wait samples kept per tenant for the exact p95.
  u32 wait_ring_size = 4096;
};

class ScanService {
 public:
  explicit ScanService(const ScanServiceConfig& config = ScanServiceConfig());
  ~ScanService();

  ScanService(const ScanService&) = delete;
  ScanService& operator=(const ScanService&) = delete;

  // Registers `id` with an explicit quota (replacing the quota if the
  // tenant already exists) and returns its slot. Slots are stable for the
  // service lifetime.
  u32 RegisterTenant(const TenantId& id, const TenantQuota& quota);
  // Returns the slot for `id`, registering it with the default quota on
  // first sight.
  u32 EnsureTenant(const TenantId& id);

  TenantStats GetTenantStats(const TenantId& id) const;
  std::vector<std::pair<TenantId, TenantStats>> AllTenantStats() const;

  // --- admission ------------------------------------------------------------
  struct Ticket {
    u32 tenant_slot = 0;
    bool admitted = false;
  };
  // Admits one scan for the tenant, waiting in the bounded FIFO room if
  // the service is saturated. Returns Status::Throttled when the tenant
  // is at its concurrent-scan quota, the waiting room is full, or the
  // admission timeout elapsed. `wait_ns`, when set, receives the time
  // spent waiting.
  Status Admit(u32 tenant_slot, Ticket* ticket, u64* wait_ns = nullptr);
  // Releases an admitted ticket (idempotent; no-op on a rejected one).
  void Release(Ticket* ticket);

  // --- shared resources -----------------------------------------------------
  exec::BlockCache* cache() { return &cache_; }
  // The shared breaker for `store`, created on first sight; nullptr when
  // breakers are disabled in the service config.
  exec::CircuitBreaker* BreakerFor(const s3sim::ObjectStore* store);

  // --- work submission (called by serviced Scanners) ------------------------
  // Enqueues a work item on the tenant's fetch/decode lane. `cost_bytes`
  // is the DRR charge. The closure runs on a service executor thread; it
  // must not block on other service work (window-token backpressure in
  // the scanner guarantees this).
  void SubmitFetch(u32 tenant_slot, u64 cost_bytes, std::function<void()> run);
  void SubmitDecode(u32 tenant_slot, u64 cost_bytes,
                    std::function<void()> run);

  // --- per-tenant quota hooks (called from fetch closures) ------------------
  // Consumes one unit of the tenant's hedge budget; false once spent.
  bool TryAcquireTenantHedge(u32 tenant_slot);
  // Inserts into the shared cache with tenant attribution unless the
  // tenant's cache-byte quota would be exceeded.
  bool TryCacheInsert(u32 tenant_slot, const std::string& key, u64 offset,
                      u64 length, const u8* data, size_t size,
                      u32 expected_crc);
  // Accounts one resolved fetch: a cache hit, or `gets` GET attempts that
  // moved `bytes` payload bytes (hedged when a duplicate was issued).
  void RecordFetchOutcome(u32 tenant_slot, bool cache_hit, u64 bytes,
                          u64 gets, bool hedged);

  const ScanServiceConfig& config() const { return config_; }
  // Scans currently admitted (running), and waiting for admission.
  u32 running_scans() const;
  u32 queued_scans() const;

 private:
  struct TenantState;

  TenantState& Tenant(u32 slot) const;
  u32 RegisterTenantLocked(const TenantId& id, const TenantQuota& quota);
  void ExecutorLoop(FairQueue* queue);
  void RecordQueueWait(u32 slot, u64 wait_ns);
  // Seq of the first waiter whose tenant has scan capacity (admission
  // mutex held); ~0ull when none.
  u64 EligibleFrontLocked() const;

  const ScanServiceConfig config_;
  exec::BlockCache cache_;

  mutable std::mutex tenants_mutex_;
  std::vector<std::unique_ptr<TenantState>> tenants_;
  std::unordered_map<TenantId, u32> tenant_index_;

  mutable std::mutex breakers_mutex_;
  std::map<const s3sim::ObjectStore*, std::unique_ptr<exec::CircuitBreaker>>
      breakers_;

  // Admission state. Waiters carry a stable TenantState pointer so the
  // eligibility scan never touches the (tenants_mutex_-guarded) registry.
  struct Waiter {
    u64 seq;
    TenantState* tenant;
  };
  mutable std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  std::deque<Waiter> waiters_;
  u64 next_waiter_seq_ = 0;
  u32 running_scans_ = 0;

  FairQueue fetch_queue_;
  FairQueue decode_queue_;
  std::vector<std::thread> fetch_threads_;
  std::vector<std::thread> decode_threads_;
};

}  // namespace btr::service

#endif  // BTR_SERVICE_SCAN_SERVICE_H_
