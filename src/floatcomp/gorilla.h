// Gorilla double compressor (Pelkonen et al., VLDB 2015), baseline for
// the paper's Table 3. XOR with the previous value; reuse the previous
// (leading, meaningful-bits) window when the new residual fits, otherwise
// emit a fresh 5-bit leading count + 6-bit length.
#ifndef BTR_FLOATCOMP_GORILLA_H_
#define BTR_FLOATCOMP_GORILLA_H_

#include "util/buffer.h"
#include "util/types.h"

namespace btr::floatcomp {

size_t GorillaCompress(const double* in, u32 count, ByteBuffer* out);
size_t GorillaDecompress(const u8* in, u32 count, double* out);

}  // namespace btr::floatcomp

#endif  // BTR_FLOATCOMP_GORILLA_H_
