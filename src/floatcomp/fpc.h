// FPC double compressor (Burtscher & Ratanaworabhan, "High Throughput
// Compression of Double-Precision Floating-Point Data", DCC 2007).
// Baseline for the paper's Table 3.
//
// Two predictors (FCM and DFCM hash tables) guess each value; the better
// one's XOR residual is stored with leading zero bytes elided. Headers are
// packed two-per-byte: [pred:1 | lzb-code:3] per value, where the 3-bit
// code maps {0,1,2,3,5,6,7,8} leading zero bytes (4 is rounded down to 3),
// exactly as in the original.
#ifndef BTR_FLOATCOMP_FPC_H_
#define BTR_FLOATCOMP_FPC_H_

#include "util/buffer.h"
#include "util/types.h"

namespace btr::floatcomp {

size_t FpcCompress(const double* in, u32 count, ByteBuffer* out);
size_t FpcDecompress(const u8* in, u32 count, double* out);

}  // namespace btr::floatcomp

#endif  // BTR_FLOATCOMP_FPC_H_
