#include "floatcomp/chimp.h"

#include <cstring>
#include <vector>

#include "util/bits.h"
#include "util/bitstream.h"

namespace btr::floatcomp {

namespace {

// Rounded leading-zero representation shared by Chimp and Chimp128.
constexpr u8 kLeadingRound[] = {0, 8, 12, 16, 18, 20, 22, 24};

u32 LeadingCode(u32 clz) {
  if (clz >= 24) return 7;
  if (clz >= 22) return 6;
  if (clz >= 20) return 5;
  if (clz >= 18) return 4;
  if (clz >= 16) return 3;
  if (clz >= 12) return 2;
  if (clz >= 8) return 1;
  return 0;
}

void WriteWords(BitWriter* writer, ByteBuffer* out) {
  std::vector<u64> words = writer->Finish();
  out->AppendValue<u32>(static_cast<u32>(words.size()));
  out->Append(words.data(), words.size() * sizeof(u64));
}

std::vector<u64> ReadWords(const u8* in, size_t* header_bytes) {
  u32 word_count;
  std::memcpy(&word_count, in, sizeof(u32));
  std::vector<u64> words(word_count);
  std::memcpy(words.data(), in + 4, word_count * sizeof(u64));
  *header_bytes = 4 + word_count * sizeof(u64);
  return words;
}

}  // namespace

// --- Chimp -------------------------------------------------------------------

size_t ChimpCompress(const double* in, u32 count, ByteBuffer* out) {
  size_t start_size = out->size();
  BitWriter writer;
  u64 prev = 0;
  u32 stored_leading = 65;  // sentinel
  for (u32 i = 0; i < count; i++) {
    u64 bits;
    std::memcpy(&bits, &in[i], 8);
    if (i == 0) {
      writer.Write(bits, 64);
      prev = bits;
      continue;
    }
    u64 x = bits ^ prev;
    prev = bits;
    if (x == 0) {
      writer.Write(0b00, 2);
      stored_leading = 65;
      continue;
    }
    u32 trailing = CountTrailingZeros64(x);
    u32 lead_code = LeadingCode(CountLeadingZeros64(x));
    u32 leading = kLeadingRound[lead_code];
    if (trailing > 6) {
      // Center bits only; resets the leading window.
      u32 significant = 64 - leading - trailing;
      writer.Write(0b01, 2);
      writer.Write(lead_code, 3);
      writer.Write(significant, 6);
      writer.Write(x >> trailing, significant);
      stored_leading = 65;
    } else if (leading == stored_leading) {
      writer.Write(0b10, 2);
      writer.Write(x, 64 - leading);
    } else {
      stored_leading = leading;
      writer.Write(0b11, 2);
      writer.Write(lead_code, 3);
      writer.Write(x, 64 - leading);
    }
  }
  WriteWords(&writer, out);
  return out->size() - start_size;
}

size_t ChimpDecompress(const u8* in, u32 count, double* out) {
  if (count == 0) return 0;
  size_t header_bytes;
  std::vector<u64> words = ReadWords(in, &header_bytes);
  BitReader reader(words.data(), words.size());
  u64 prev = 0;
  u32 stored_leading = 0;
  for (u32 i = 0; i < count; i++) {
    if (i == 0) {
      prev = reader.Read(64);
      std::memcpy(&out[0], &prev, 8);
      continue;
    }
    u32 flag = static_cast<u32>(reader.Read(2));
    u64 x = 0;
    switch (flag) {
      case 0b00:
        break;
      case 0b01: {
        u32 leading = kLeadingRound[reader.Read(3)];
        u32 significant = static_cast<u32>(reader.Read(6));
        if (significant == 0) significant = 64;
        u32 trailing = 64 - leading - significant;
        x = reader.Read(significant) << trailing;
        break;
      }
      case 0b10:
        x = reader.Read(64 - stored_leading);
        break;
      case 0b11:
        stored_leading = kLeadingRound[reader.Read(3)];
        x = reader.Read(64 - stored_leading);
        break;
    }
    prev ^= x;
    std::memcpy(&out[i], &prev, 8);
  }
  return header_bytes;
}

// --- Chimp128 ------------------------------------------------------------------

namespace {
constexpr u32 kWindow = 128;          // previous values searched
constexpr u32 kIndexBits = 7;          // log2(kWindow)
constexpr u32 kKeyBits = 14;           // low bits indexing the hash
constexpr u32 kTrailingThreshold = 13; // 6 + kIndexBits: index must pay off
}  // namespace

size_t Chimp128Compress(const double* in, u32 count, ByteBuffer* out) {
  size_t start_size = out->size();
  BitWriter writer;
  std::vector<u64> ring(kWindow, 0);
  std::vector<i64> key_index(1u << kKeyBits, -1);
  u32 stored_leading = 65;
  for (u32 i = 0; i < count; i++) {
    u64 bits;
    std::memcpy(&bits, &in[i], 8);
    if (i == 0) {
      writer.Write(bits, 64);
      ring[0] = bits;
      key_index[bits & ((1u << kKeyBits) - 1)] = 0;
      continue;
    }
    u64 key = bits & ((1u << kKeyBits) - 1);
    i64 candidate_pos = key_index[key];
    bool used_candidate = false;
    if (candidate_pos >= 0 && i - candidate_pos <= kWindow) {
      u64 ref = ring[candidate_pos % kWindow];
      u64 x = bits ^ ref;
      if (x == 0) {
        writer.Write(0b00, 2);
        writer.Write(candidate_pos % kWindow, kIndexBits);
        used_candidate = true;
        stored_leading = 65;
      } else if (CountTrailingZeros64(x) > kTrailingThreshold) {
        u32 trailing = CountTrailingZeros64(x);
        u32 lead_code = LeadingCode(CountLeadingZeros64(x));
        u32 leading = kLeadingRound[lead_code];
        u32 significant = 64 - leading - trailing;
        writer.Write(0b01, 2);
        writer.Write(candidate_pos % kWindow, kIndexBits);
        writer.Write(lead_code, 3);
        writer.Write(significant, 6);
        writer.Write(x >> trailing, significant);
        used_candidate = true;
        stored_leading = 65;
      }
    }
    if (!used_candidate) {
      u64 x = bits ^ ring[(i - 1) % kWindow];
      u32 lead_code = LeadingCode(CountLeadingZeros64(x));
      u32 leading = kLeadingRound[lead_code];
      if (leading == stored_leading) {
        writer.Write(0b10, 2);
        writer.Write(x, 64 - leading);
      } else {
        stored_leading = leading;
        writer.Write(0b11, 2);
        writer.Write(lead_code, 3);
        writer.Write(x, 64 - leading);
      }
    }
    ring[i % kWindow] = bits;
    key_index[key] = i;
  }
  WriteWords(&writer, out);
  return out->size() - start_size;
}

size_t Chimp128Decompress(const u8* in, u32 count, double* out) {
  if (count == 0) return 0;
  size_t header_bytes;
  std::vector<u64> words = ReadWords(in, &header_bytes);
  BitReader reader(words.data(), words.size());
  std::vector<u64> ring(kWindow, 0);
  u32 stored_leading = 0;
  for (u32 i = 0; i < count; i++) {
    u64 bits;
    if (i == 0) {
      bits = reader.Read(64);
    } else {
      u32 flag = static_cast<u32>(reader.Read(2));
      switch (flag) {
        case 0b00: {
          u32 index = static_cast<u32>(reader.Read(kIndexBits));
          bits = ring[index];
          break;
        }
        case 0b01: {
          u32 index = static_cast<u32>(reader.Read(kIndexBits));
          u32 leading = kLeadingRound[reader.Read(3)];
          u32 significant = static_cast<u32>(reader.Read(6));
          if (significant == 0) significant = 64;
          u32 trailing = 64 - leading - significant;
          u64 x = reader.Read(significant) << trailing;
          bits = ring[index] ^ x;
          break;
        }
        case 0b10: {
          u64 x = reader.Read(64 - stored_leading);
          bits = ring[(i - 1) % kWindow] ^ x;
          break;
        }
        default: {
          stored_leading = kLeadingRound[reader.Read(3)];
          u64 x = reader.Read(64 - stored_leading);
          bits = ring[(i - 1) % kWindow] ^ x;
          break;
        }
      }
    }
    ring[i % kWindow] = bits;
    std::memcpy(&out[i], &bits, 8);
  }
  return header_bytes;
}

}  // namespace btr::floatcomp
