#include "floatcomp/gorilla.h"

#include <cstring>
#include <vector>

#include "util/bits.h"
#include "util/bitstream.h"

namespace btr::floatcomp {

size_t GorillaCompress(const double* in, u32 count, ByteBuffer* out) {
  size_t start_size = out->size();
  BitWriter writer;
  u64 prev = 0;
  u32 prev_leading = 65;  // sentinel: no reusable window yet
  u32 prev_meaningful = 0;
  for (u32 i = 0; i < count; i++) {
    u64 bits;
    std::memcpy(&bits, &in[i], 8);
    if (i == 0) {
      writer.Write(bits, 64);
      prev = bits;
      continue;
    }
    u64 x = bits ^ prev;
    prev = bits;
    if (x == 0) {
      writer.WriteBit(false);
      continue;
    }
    writer.WriteBit(true);
    u32 leading = CountLeadingZeros64(x);
    u32 trailing = CountTrailingZeros64(x);
    if (leading > 31) leading = 31;  // 5-bit field
    u32 meaningful = 64 - leading - trailing;
    if (prev_leading <= leading &&
        (64 - prev_leading - prev_meaningful) <= trailing) {
      // Fits the previous window.
      writer.WriteBit(false);
      writer.Write(x >> (64 - prev_leading - prev_meaningful), prev_meaningful);
    } else {
      writer.WriteBit(true);
      writer.Write(leading, 5);
      writer.Write(meaningful & 63, 6);  // 64 encodes as 0
      writer.Write(x >> trailing, meaningful);
      prev_leading = leading;
      prev_meaningful = meaningful;
    }
  }
  std::vector<u64> words = writer.Finish();
  out->AppendValue<u32>(static_cast<u32>(words.size()));
  out->Append(words.data(), words.size() * sizeof(u64));
  return out->size() - start_size;
}

size_t GorillaDecompress(const u8* in, u32 count, double* out) {
  if (count == 0) return 0;
  u32 word_count;
  std::memcpy(&word_count, in, sizeof(u32));
  std::vector<u64> words(word_count);
  std::memcpy(words.data(), in + 4, word_count * sizeof(u64));
  BitReader reader(words.data(), words.size());

  u64 prev = 0;
  u32 prev_leading = 0;
  u32 prev_meaningful = 0;
  for (u32 i = 0; i < count; i++) {
    if (i == 0) {
      prev = reader.Read(64);
      std::memcpy(&out[0], &prev, 8);
      continue;
    }
    if (!reader.ReadBit()) {
      std::memcpy(&out[i], &prev, 8);
      continue;
    }
    if (reader.ReadBit()) {
      prev_leading = static_cast<u32>(reader.Read(5));
      prev_meaningful = static_cast<u32>(reader.Read(6));
      if (prev_meaningful == 0) prev_meaningful = 64;
    }
    u64 value_bits = reader.Read(prev_meaningful);
    u64 x = value_bits << (64 - prev_leading - prev_meaningful);
    prev ^= x;
    std::memcpy(&out[i], &prev, 8);
  }
  return 4 + word_count * sizeof(u64);
}

}  // namespace btr::floatcomp
