// Chimp and Chimp128 double compressors (Liakos, Papakonstantinopoulou,
// Kotidis: "Chimp: Efficient Lossless Floating Point Compression for Time
// Series Databases", VLDB 2022). Baselines for the paper's Table 3.
//
// Chimp refines Gorilla's XOR scheme with a 2-bit flag per value and a
// rounded 3-bit leading-zero code. Chimp128 additionally searches the 128
// most recent values (indexed by the 14 low bits) for a reference whose
// XOR has a long trailing-zero run, paying 7 index bits for it.
#ifndef BTR_FLOATCOMP_CHIMP_H_
#define BTR_FLOATCOMP_CHIMP_H_

#include "util/buffer.h"
#include "util/types.h"

namespace btr::floatcomp {

size_t ChimpCompress(const double* in, u32 count, ByteBuffer* out);
size_t ChimpDecompress(const u8* in, u32 count, double* out);

size_t Chimp128Compress(const double* in, u32 count, ByteBuffer* out);
size_t Chimp128Decompress(const u8* in, u32 count, double* out);

}  // namespace btr::floatcomp

#endif  // BTR_FLOATCOMP_CHIMP_H_
