#include "floatcomp/fpc.h"

#include <cstring>
#include <vector>

#include "util/bits.h"

namespace btr::floatcomp {

namespace {

constexpr u32 kTableBits = 16;
constexpr u32 kTableSize = 1u << kTableBits;

// Shared predictor state; compression and decompression must evolve it
// identically.
struct Predictors {
  std::vector<u64> fcm = std::vector<u64>(kTableSize, 0);
  std::vector<u64> dfcm = std::vector<u64>(kTableSize, 0);
  u64 fcm_hash = 0;
  u64 dfcm_hash = 0;
  u64 last = 0;

  u64 PredictFcm() const { return fcm[fcm_hash]; }
  u64 PredictDfcm() const { return dfcm[dfcm_hash] + last; }

  void Update(u64 actual) {
    fcm[fcm_hash] = actual;
    fcm_hash = ((fcm_hash << 6) ^ (actual >> 48)) & (kTableSize - 1);
    u64 delta = actual - last;
    dfcm[dfcm_hash] = delta;
    dfcm_hash = ((dfcm_hash << 2) ^ (delta >> 40)) & (kTableSize - 1);
    last = actual;
  }
};

// 3-bit code for a leading-zero-byte count; 4 is rounded down to 3.
inline u32 LzbToCode(u32 lzb) {
  if (lzb == 4) return 3;
  return lzb <= 3 ? lzb : lzb - 1;
}
inline u32 CodeToLzb(u32 code) { return code <= 3 ? code : code + 1; }

struct Encoded {
  u8 header;   // [pred:1 | code:3] in the low 4 bits
  u64 residual;
  u32 residual_bytes;
};

Encoded EncodeOne(Predictors* preds, u64 bits) {
  u64 fcm_xor = bits ^ preds->PredictFcm();
  u64 dfcm_xor = bits ^ preds->PredictDfcm();
  bool use_dfcm = CountLeadingZeros64(dfcm_xor) > CountLeadingZeros64(fcm_xor);
  u64 residual = use_dfcm ? dfcm_xor : fcm_xor;
  u32 lzb = CountLeadingZeros64(residual) / 8;
  u32 code = LzbToCode(lzb);
  preds->Update(bits);
  return Encoded{static_cast<u8>((use_dfcm ? 8 : 0) | code), residual,
                 8 - CodeToLzb(code)};
}

}  // namespace

size_t FpcCompress(const double* in, u32 count, ByteBuffer* out) {
  size_t start_size = out->size();
  Predictors preds;
  for (u32 i = 0; i < count; i += 2) {
    u64 a_bits, b_bits = 0;
    std::memcpy(&a_bits, &in[i], 8);
    bool has_b = i + 1 < count;
    if (has_b) std::memcpy(&b_bits, &in[i + 1], 8);
    Encoded a = EncodeOne(&preds, a_bits);
    Encoded b = has_b ? EncodeOne(&preds, b_bits) : Encoded{0, 0, 0};
    out->AppendValue<u8>(static_cast<u8>((a.header << 4) | b.header));
    out->Append(&a.residual, a.residual_bytes);
    if (has_b) out->Append(&b.residual, b.residual_bytes);
  }
  return out->size() - start_size;
}

size_t FpcDecompress(const u8* in, u32 count, double* out) {
  if (count == 0) return 0;
  Predictors preds;
  const u8* cursor = in;
  for (u32 i = 0; i < count; i += 2) {
    u8 header = *cursor++;
    for (u32 half = 0; half < 2 && i + half < count; half++) {
      u8 h = half == 0 ? (header >> 4) : (header & 0xF);
      bool use_dfcm = (h & 8) != 0;
      u32 residual_bytes = 8 - CodeToLzb(h & 7);
      u64 residual = 0;
      std::memcpy(&residual, cursor, residual_bytes);
      cursor += residual_bytes;
      u64 pred = use_dfcm ? preds.PredictDfcm() : preds.PredictFcm();
      u64 bits = pred ^ residual;
      preds.Update(bits);
      std::memcpy(&out[i + half], &bits, 8);
    }
  }
  return static_cast<size_t>(cursor - in);
}

}  // namespace btr::floatcomp
