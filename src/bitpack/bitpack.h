// Bit-packing primitives and the two high-performance integer codecs used
// by BtrBlocks (paper Table 1): SIMD-FastBP128 and SIMD-FastPFOR, both
// reimplemented from scratch in the spirit of Lemire & Boytsov, "Decoding
// billions of integers per second through vectorization".
//
// Layouts
// -------
// Contiguous packing (PackScalar/UnpackScalar): values packed LSB-first
// into a byte stream; used for small tails and exception streams.
//
// Vertical 128-blocks (Pack128/Unpack128*): 128 values per block in 8
// lanes x 16 rows. Value i lives in lane (i % 8), row (i / 8). All lanes
// share the same bit schedule, so an AVX2 unpack processes 8 lanes with
// scalar control flow. A block with bitwidth b occupies exactly 4*b u32
// words (16*b bytes).
//
// Codecs
// ------
// Bp128: per-128-block frame-of-reference (min) + per-block bitwidth.
// Pfor:  per-128-block FOR + cost-chosen bitwidth b; values whose delta
//        needs more than b bits keep their low b bits in place and store
//        position + high bits in a patch stream (Zukowski et al. PFOR).
#ifndef BTR_BITPACK_BITPACK_H_
#define BTR_BITPACK_BITPACK_H_

#include "util/buffer.h"
#include "util/simd.h"
#include "util/types.h"

namespace btr::bitpack {

inline constexpr u32 kBlockSize = 128;

// Largest bitwidth needed by any of the `count` values.
u32 MaxBits(const u32* in, u32 count);

// --- Contiguous packing ----------------------------------------------------
// Packs `count` values at `bits` bits each, LSB-first. `out` must have
// PackedBytes(count, bits) writable bytes (plus SIMD padding).
size_t PackedBytes(u32 count, u32 bits);
void PackScalar(const u32* in, u32 count, u32 bits, u8* out);
void UnpackScalar(const u8* in, u32 count, u32 bits, u32* out);

// --- Vertical 128-value blocks ----------------------------------------------
// Buffers are byte pointers (packed blocks land at unaligned offsets in
// compressed payloads); Packed128Bytes(bits) bytes are read/written.
size_t Packed128Bytes(u32 bits);
void Pack128(const u32* in, u32 bits, u8* out);
void Unpack128Scalar(const u8* in, u32 bits, u32* out);
#if BTR_HAS_AVX2
void Unpack128Avx2(const u8* in, u32 bits, u32* out);
#endif
// Dispatches on SimdPolicy.
void Unpack128(const u8* in, u32 bits, u32* out);

// --- FastBP128-style codec ---------------------------------------------------
// Appends the compressed form of in[0..count) to *out; returns bytes added.
size_t Bp128Compress(const i32* in, u32 count, ByteBuffer* out);
// `in` points at data produced by Bp128Compress with the same count.
// Returns bytes consumed. `out` must hold count i32 plus SIMD padding.
size_t Bp128Decompress(const u8* in, u32 count, i32* out);
// Compressed size without materializing the output.
size_t Bp128CompressedSize(const i32* in, u32 count);

// --- FastPFOR-style codec ----------------------------------------------------
size_t PforCompress(const i32* in, u32 count, ByteBuffer* out);
size_t PforDecompress(const u8* in, u32 count, i32* out);
size_t PforCompressedSize(const i32* in, u32 count);

}  // namespace btr::bitpack

#endif  // BTR_BITPACK_BITPACK_H_
