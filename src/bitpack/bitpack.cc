#include "bitpack/bitpack.h"

#include <algorithm>
#include <cstring>

#include "util/bits.h"

namespace btr::bitpack {

u32 MaxBits(const u32* in, u32 count) {
  u32 accum = 0;
  for (u32 i = 0; i < count; i++) accum |= in[i];
  return BitWidth(accum);
}

size_t PackedBytes(u32 count, u32 bits) {
  return CeilDiv(static_cast<u64>(count) * bits, 8);
}

// Bytes occupied by one vertical 128-block: whole words per lane.
size_t Packed128Bytes(u32 bits) {
  return CeilDiv(16 * bits, 32) * 32;
}

void PackScalar(const u32* in, u32 count, u32 bits, u8* out) {
  if (bits == 0) return;
  BTR_DCHECK(bits <= 32);
  std::memset(out, 0, PackedBytes(count, bits));
  u64 bit_pos = 0;
  for (u32 i = 0; i < count; i++) {
    u64 value = in[i] & ((bits == 32) ? 0xFFFFFFFFu : ((u32{1} << bits) - 1));
    u64 byte = bit_pos >> 3;
    u32 shift = static_cast<u32>(bit_pos & 7);
    // Write into a 64-bit window; 32 bits + 7 bits shift fits in 64 - 25.
    u64 window;
    std::memcpy(&window, out + byte, sizeof(u64));
    window |= value << shift;
    std::memcpy(out + byte, &window, sizeof(u64));
    bit_pos += bits;
  }
}

void UnpackScalar(const u8* in, u32 count, u32 bits, u32* out) {
  if (bits == 0) {
    std::memset(out, 0, count * sizeof(u32));
    return;
  }
  BTR_DCHECK(bits <= 32);
  u64 mask = (bits == 64) ? ~u64{0} : ((u64{1} << bits) - 1);
  u64 bit_pos = 0;
  for (u32 i = 0; i < count; i++) {
    u64 byte = bit_pos >> 3;
    u32 shift = static_cast<u32>(bit_pos & 7);
    u64 window;
    std::memcpy(&window, in + byte, sizeof(u64));
    out[i] = static_cast<u32>((window >> shift) & mask);
    bit_pos += bits;
  }
}

// --- Vertical 128-blocks -----------------------------------------------------
// Lane l stream: rows r = 0..15 hold in[r*8 + l]. Word w of lane l is at
// buf[w*8 + l]. All lanes share one schedule: row r starts at bit r*bits.

namespace {
// Unaligned u32 access: packed blocks sit at arbitrary byte offsets in
// compressed payloads, so typed loads would be UB.
inline u32 LoadWord(const u8* p) {
  u32 v;
  std::memcpy(&v, p, sizeof(u32));
  return v;
}
inline void OrWord(u8* p, u32 v) {
  u32 old;
  std::memcpy(&old, p, sizeof(u32));
  old |= v;
  std::memcpy(p, &old, sizeof(u32));
}
}  // namespace

void Pack128(const u32* in, u32 bits, u8* out) {
  if (bits == 0) return;
  std::memset(out, 0, Packed128Bytes(bits));
  u32 mask = (bits == 32) ? 0xFFFFFFFFu : ((u32{1} << bits) - 1);
  for (u32 lane = 0; lane < 8; lane++) {
    for (u32 row = 0; row < 16; row++) {
      u32 value = in[row * 8 + lane] & mask;
      u32 bit = row * bits;
      u32 word = bit >> 5;
      u32 shift = bit & 31;
      OrWord(out + (word * 8 + lane) * 4, value << shift);
      if (shift + bits > 32) {
        OrWord(out + ((word + 1) * 8 + lane) * 4, value >> (32 - shift));
      }
    }
  }
}

void Unpack128Scalar(const u8* in, u32 bits, u32* out) {
  if (bits == 0) {
    std::memset(out, 0, kBlockSize * sizeof(u32));
    return;
  }
  u32 mask = (bits == 32) ? 0xFFFFFFFFu : ((u32{1} << bits) - 1);
  for (u32 lane = 0; lane < 8; lane++) {
    for (u32 row = 0; row < 16; row++) {
      u32 bit = row * bits;
      u32 word = bit >> 5;
      u32 shift = bit & 31;
      u32 value = LoadWord(in + (word * 8 + lane) * 4) >> shift;
      if (shift + bits > 32) {
        value |= LoadWord(in + ((word + 1) * 8 + lane) * 4) << (32 - shift);
      }
      out[row * 8 + lane] = value & mask;
    }
  }
}

#if BTR_HAS_AVX2
void Unpack128Avx2(const u8* in, u32 bits, u32* out) {
  if (bits == 0) {
    std::memset(out, 0, kBlockSize * sizeof(u32));
    return;
  }
  const __m256i mask = _mm256_set1_epi32(
      bits == 32 ? -1 : static_cast<int>((u32{1} << bits) - 1));
  // One 256-bit load covers word w of all 8 lanes; shifts are uniform.
  for (u32 row = 0; row < 16; row++) {
    u32 bit = row * bits;
    u32 word = bit >> 5;
    u32 shift = bit & 31;
    __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(in + word * 32));
    __m256i value = _mm256_srli_epi32(lo, static_cast<int>(shift));
    if (shift + bits > 32) {
      __m256i hi = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in + (word + 1) * 32));
      value = _mm256_or_si256(value,
                              _mm256_slli_epi32(hi, static_cast<int>(32 - shift)));
    }
    value = _mm256_and_si256(value, mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + row * 8), value);
  }
}
#endif

void Unpack128(const u8* in, u32 bits, u32* out) {
#if BTR_HAS_AVX2
  if (SimdPolicy::Enabled()) {
    Unpack128Avx2(in, bits, out);
    return;
  }
#endif
  Unpack128Scalar(in, bits, out);
}

// --- BP128 codec --------------------------------------------------------------
// Stream layout:
//   full blocks: [u32 min][u8 bits][16*bits bytes packed]
//   tail (count % 128 != 0): [u32 min][u8 bits][PackedBytes(tail, bits)]
namespace {

struct BlockPlan {
  u32 min;      // frame of reference (reinterpreted i32 minimum)
  u32 bits;     // width of (value - min)
};

BlockPlan PlanBlock(const i32* in, u32 count) {
  i32 min = in[0];
  for (u32 i = 1; i < count; i++) min = std::min(min, in[i]);
  u32 max_delta = 0;
  for (u32 i = 0; i < count; i++) {
    max_delta |= static_cast<u32>(static_cast<i64>(in[i]) - min);
  }
  return BlockPlan{static_cast<u32>(min), BitWidth(max_delta)};
}

}  // namespace

size_t Bp128Compress(const i32* in, u32 count, ByteBuffer* out) {
  size_t start = out->size();
  u32 scratch[kBlockSize];
  u32 i = 0;
  for (; i + kBlockSize <= count; i += kBlockSize) {
    BlockPlan plan = PlanBlock(in + i, kBlockSize);
    for (u32 j = 0; j < kBlockSize; j++) {
      scratch[j] = static_cast<u32>(in[i + j]) - plan.min;
    }
    out->AppendValue<u32>(plan.min);
    out->AppendValue<u8>(static_cast<u8>(plan.bits));
    size_t offset = out->size();
    out->Resize(offset + Packed128Bytes(plan.bits));
    Pack128(scratch, plan.bits, out->data() + offset);
  }
  if (i < count) {
    u32 tail = count - i;
    BlockPlan plan = PlanBlock(in + i, tail);
    for (u32 j = 0; j < tail; j++) {
      scratch[j] = static_cast<u32>(in[i + j]) - plan.min;
    }
    out->AppendValue<u32>(plan.min);
    out->AppendValue<u8>(static_cast<u8>(plan.bits));
    size_t offset = out->size();
    out->Resize(offset + PackedBytes(tail, plan.bits));
    PackScalar(scratch, tail, plan.bits, out->data() + offset);
  }
  return out->size() - start;
}

size_t Bp128CompressedSize(const i32* in, u32 count) {
  size_t total = 0;
  u32 i = 0;
  for (; i + kBlockSize <= count; i += kBlockSize) {
    total += 5 + Packed128Bytes(PlanBlock(in + i, kBlockSize).bits);
  }
  if (i < count) {
    total += 5 + PackedBytes(count - i, PlanBlock(in + i, count - i).bits);
  }
  return total;
}

size_t Bp128Decompress(const u8* in, u32 count, i32* out) {
  const u8* cursor = in;
  u32 scratch[kBlockSize];
  u32 i = 0;
  for (; i + kBlockSize <= count; i += kBlockSize) {
    u32 min;
    std::memcpy(&min, cursor, sizeof(u32));
    u32 bits = cursor[4];
    cursor += 5;
    Unpack128(cursor, bits, scratch);
    cursor += Packed128Bytes(bits);
    for (u32 j = 0; j < kBlockSize; j++) {
      out[i + j] = static_cast<i32>(scratch[j] + min);
    }
  }
  if (i < count) {
    u32 tail = count - i;
    u32 min;
    std::memcpy(&min, cursor, sizeof(u32));
    u32 bits = cursor[4];
    cursor += 5;
    UnpackScalar(cursor, tail, bits, scratch);
    cursor += PackedBytes(tail, bits);
    for (u32 j = 0; j < tail; j++) out[i + j] = static_cast<i32>(scratch[j] + min);
  }
  return static_cast<size_t>(cursor - in);
}

// --- PFOR codec ----------------------------------------------------------------
// Per block: [u32 min][u8 base_bits][u8 max_bits][u8 exception_count]
//            [16*base_bits bytes packed low parts]
//            [exception_count bytes positions]
//            [PackedBytes(exception_count, max_bits - base_bits) high parts]
// Tail blocks use contiguous packing instead of the vertical layout.
namespace {

struct PforPlan {
  u32 min;
  u32 base_bits;
  u32 max_bits;
  u32 exceptions;
};

// Chooses the frame of reference and base_bits minimizing packed + patch
// bytes. Deltas wrap mod 2^32 (decompression adds the reference back mod
// 2^32), so *any* reference is lossless; a plain minimum is a bad choice
// when a low outlier would inflate every delta, so the k-th smallest
// values are evaluated as candidates and low outliers become exceptions.
PforPlan PlanPfor(const i32* in, u32 count) {
  i32 sorted[kBlockSize];
  std::memcpy(sorted, in, count * sizeof(i32));
  std::sort(sorted, sorted + count);

  PforPlan best{};
  u64 best_cost = ~u64{0};
  for (u32 k : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
    if (k >= count) break;
    i32 reference = sorted[k];
    if (k > 0 && reference == sorted[k - 1]) continue;  // same candidate
    u32 histogram[33] = {0};
    u32 max_bits = 0;
    for (u32 i = 0; i < count; i++) {
      u32 w = BitWidth(static_cast<u32>(in[i]) - static_cast<u32>(reference));
      histogram[w]++;
      max_bits = std::max(max_bits, w);
    }
    u32 cand_bits = max_bits;
    u64 cand_cost = PackedBytes(count, max_bits);
    u32 cumulative = 0;  // values needing more than b bits
    for (u32 b = max_bits; b-- > 0;) {
      cumulative += histogram[b + 1];
      // Each exception costs 1 position byte + packed high bits.
      u64 cost = PackedBytes(count, b) + cumulative +
                 PackedBytes(cumulative, max_bits - b);
      if (cost < cand_cost) {
        cand_cost = cost;
        cand_bits = b;
      }
    }
    if (cand_cost < best_cost) {
      best_cost = cand_cost;
      u32 exceptions = 0;
      for (u32 b = cand_bits + 1; b <= max_bits; b++) exceptions += histogram[b];
      best = PforPlan{static_cast<u32>(reference), cand_bits, max_bits,
                      exceptions};
    }
  }
  return best;
}

void PforCompressBlock(const i32* in, u32 count, bool vertical, ByteBuffer* out) {
  PforPlan plan = PlanPfor(in, count);
  u32 deltas[kBlockSize];
  u8 positions[kBlockSize];
  u32 highs[kBlockSize];
  u32 exception_count = 0;
  u32 base_mask = plan.base_bits == 32
                      ? 0xFFFFFFFFu
                      : ((u32{1} << plan.base_bits) - 1);
  for (u32 i = 0; i < count; i++) {
    u32 d = static_cast<u32>(static_cast<i64>(in[i]) - static_cast<i32>(plan.min));
    if (BitWidth(d) > plan.base_bits) {
      positions[exception_count] = static_cast<u8>(i);
      highs[exception_count] = d >> plan.base_bits;
      exception_count++;
    }
    deltas[i] = d & base_mask;
  }
  BTR_DCHECK(exception_count == plan.exceptions);
  out->AppendValue<u32>(plan.min);
  out->AppendValue<u8>(static_cast<u8>(plan.base_bits));
  out->AppendValue<u8>(static_cast<u8>(plan.max_bits));
  out->AppendValue<u8>(static_cast<u8>(exception_count));
  size_t offset = out->size();
  if (vertical) {
    out->Resize(offset + Packed128Bytes(plan.base_bits));
    Pack128(deltas, plan.base_bits, out->data() + offset);
  } else {
    out->Resize(offset + PackedBytes(count, plan.base_bits));
    PackScalar(deltas, count, plan.base_bits, out->data() + offset);
  }
  out->Append(positions, exception_count);
  u32 high_bits = plan.max_bits - plan.base_bits;
  offset = out->size();
  out->Resize(offset + PackedBytes(exception_count, high_bits));
  PackScalar(highs, exception_count, high_bits, out->data() + offset);
}

const u8* PforDecompressBlock(const u8* cursor, u32 count, bool vertical, i32* out) {
  u32 min;
  std::memcpy(&min, cursor, sizeof(u32));
  u32 base_bits = cursor[4];
  u32 max_bits = cursor[5];
  u32 exception_count = cursor[6];
  cursor += 7;
  u32 scratch[kBlockSize];
  if (vertical) {
    Unpack128(cursor, base_bits, scratch);
    cursor += Packed128Bytes(base_bits);
  } else {
    UnpackScalar(cursor, count, base_bits, scratch);
    cursor += PackedBytes(count, base_bits);
  }
  const u8* positions = cursor;
  cursor += exception_count;
  u32 highs[kBlockSize];
  u32 high_bits = max_bits - base_bits;
  UnpackScalar(cursor, exception_count, high_bits, highs);
  cursor += PackedBytes(exception_count, high_bits);
  for (u32 e = 0; e < exception_count; e++) {
    scratch[positions[e]] |= highs[e] << base_bits;
  }
  for (u32 i = 0; i < count; i++) out[i] = static_cast<i32>(scratch[i] + min);
  return cursor;
}

}  // namespace

size_t PforCompress(const i32* in, u32 count, ByteBuffer* out) {
  size_t start = out->size();
  u32 i = 0;
  for (; i + kBlockSize <= count; i += kBlockSize) {
    PforCompressBlock(in + i, kBlockSize, /*vertical=*/true, out);
  }
  if (i < count) {
    PforCompressBlock(in + i, count - i, /*vertical=*/false, out);
  }
  return out->size() - start;
}

size_t PforCompressedSize(const i32* in, u32 count) {
  size_t total = 0;
  u32 i = 0;
  auto block_size = [&](const i32* block, u32 n) {
    PforPlan plan = PlanPfor(block, n);
    size_t packed = (n == kBlockSize) ? Packed128Bytes(plan.base_bits)
                                      : PackedBytes(n, plan.base_bits);
    return 7 + packed + plan.exceptions +
           PackedBytes(plan.exceptions, plan.max_bits - plan.base_bits);
  };
  for (; i + kBlockSize <= count; i += kBlockSize) {
    total += block_size(in + i, kBlockSize);
  }
  if (i < count) total += block_size(in + i, count - i);
  return total;
}

size_t PforDecompress(const u8* in, u32 count, i32* out) {
  const u8* cursor = in;
  u32 i = 0;
  for (; i + kBlockSize <= count; i += kBlockSize) {
    cursor = PforDecompressBlock(cursor, kBlockSize, /*vertical=*/true, out + i);
  }
  if (i < count) {
    cursor = PforDecompressBlock(cursor, count - i, /*vertical=*/false, out + i);
  }
  return static_cast<size_t>(cursor - in);
}

}  // namespace btr::bitpack
