// Resilience policies for the object-store read path: retry/backoff for
// transient failures, hedged requests against tail latency, and a circuit
// breaker against a dying backend.
//
// --- retry (RetryPolicy / RetryState) ---------------------------------------
// Transient failures (Status::Throttled / Status::Unavailable) retry with
// capped exponential backoff, deterministic jitter, a per-request deadline,
// and a shared retry budget so one scan cannot retry without bound when the
// backend is down.
//
// One RetryState is shared by all fetch threads of a scan (and by
// Scanner::Open's metadata GETs): the budget is scan-wide and the jitter
// stream is seeded, so a given schedule of failures backs off the same
// way every run. Backoff sleeps go through a caller-supplied SleepFn so
// the prefetcher can make them interruptible — an aborting pipeline must
// not wait out a pending backoff (exec/pipeline.h).
//
// Accounting discipline: a retry only *counts* once its backoff sleep
// completed and the next attempt is actually going to happen. NextBackoff
// reserves a unit of budget; the caller commits it (metrics `scan.retries`
// and `scan.backoff_ns`, retries_granted()) after the sleep returns true,
// or cancels it (budget refunded, nothing recorded) when the sleep was
// interrupted — an aborted scan neither overcounts retries nor leaks
// budget. RunWithRetries does this bookkeeping for you.
//
// --- hedging (HedgePolicy / HedgeState) -------------------------------------
// "The Tail at Scale" discipline: when a GET outlives the running latency
// quantile of its peers, issue one duplicate GET and take whichever
// response arrives first. HedgeState tracks recent `s3.get` latencies in a
// ring, arms once min_samples are in, and caps total hedges per scan with
// hedge_budget. The prefetcher owns the mechanics (exec/pipeline.h).
//
// --- circuit breaker (CircuitBreakerPolicy / CircuitBreaker) ----------------
// Past an error-rate threshold over a sliding outcome window the breaker
// trips open: requests fail fast with Status::Unavailable instead of
// burning attempts and retry budget against a backend that is down. After
// cooldown_ns it half-opens and lets a few probe requests through;
// enough successes close it, any probe failure re-opens it.
#ifndef BTR_EXEC_RETRY_H_
#define BTR_EXEC_RETRY_H_

#include <chrono>
#include <functional>
#include <mutex>
#include <vector>

#include "util/random.h"
#include "util/status.h"
#include "util/types.h"

namespace btr::exec {

struct RetryPolicy {
  u32 max_attempts = 4;             // tries per request; 1 = never retry
  u64 initial_backoff_ns = 1000 * 1000;      // 1 ms before the first retry
  double backoff_multiplier = 2.0;           // exponential growth per retry
  u64 max_backoff_ns = 64 * 1000 * 1000;     // backoff cap, 64 ms
  u64 request_deadline_ns = 0;      // wall budget per request, 0 = none
  u64 retry_budget = 256;           // total retries across the policy's user
  u64 jitter_seed = 0xB10C5EEDull;  // deterministic jitter stream
};

// Shared mutable retry state: the scan-wide budget and the jitter PRNG.
// Thread-safe.
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy);

  const RetryPolicy& policy() const { return policy_; }

  // Decides whether a request that has completed `attempts` tries (>= 1),
  // spending `elapsed_ns` so far, may retry. On true, one unit of budget
  // is *reserved* and *backoff_ns holds the jittered backoff to sleep
  // before the next try. The caller must then either CommitRetry (the
  // sleep completed, the retry happens) or CancelRetry (the sleep was
  // interrupted, the reservation is refunded). Nothing is recorded yet.
  bool NextBackoff(u32 attempts, u64 elapsed_ns, u64* backoff_ns);

  // The backoff slept to completion: count the retry (`scan.retries`) and
  // record its backoff (`scan.backoff_ns`).
  void CommitRetry(u64 backoff_ns);

  // The backoff sleep was interrupted and no retry will happen: refund the
  // reserved budget, record nothing.
  void CancelRetry();

  // Retries that actually happened (committed, not merely reserved).
  u64 retries_granted() const;

 private:
  const RetryPolicy policy_;
  mutable std::mutex mutex_;
  Random jitter_rng_;
  u64 budget_used_ = 0;       // reservations (refunded on cancel)
  u64 retries_committed_ = 0; // retries whose backoff completed
};

// Sleeps for the given nanoseconds; returns false when interrupted (the
// caller should stop retrying and unwind).
using SleepFn = std::function<bool(u64 backoff_ns)>;

// Blocking sleep that is never interrupted (for non-pipelined callers).
bool SleepUninterruptible(u64 backoff_ns);

// --- hedged requests --------------------------------------------------------

struct HedgePolicy {
  bool enabled = false;
  double quantile = 0.95;        // hedge when a GET outlives this quantile
  u32 min_samples = 16;          // latencies required before hedging arms
  u64 min_threshold_ns = 200 * 1000;  // floor under the quantile threshold
  u64 hedge_budget = 64;         // duplicate GETs allowed per scan
  u32 latency_window = 128;      // ring size of the running quantile
};

// Shared per-scan hedging state: the latency ring the threshold derives
// from, and the hedge budget. Thread-safe.
class HedgeState {
 public:
  explicit HedgeState(const HedgePolicy& policy);

  const HedgePolicy& policy() const { return policy_; }

  // Records one completed GET's latency into the quantile window.
  void RecordLatency(u64 ns);

  // Nanoseconds a GET may run before a hedge should be issued, from the
  // running quantile (floored at min_threshold_ns). 0 = hedging not armed
  // (disabled, too few samples, or budget exhausted).
  u64 ThresholdNs() const;

  // Consumes one unit of hedge budget; false once the budget is gone.
  bool TryAcquireHedge();

  // Outcome of an issued hedge: did the duplicate win the race?
  void RecordHedgeOutcome(bool hedge_won);

  u64 hedges_issued() const;
  u64 hedge_wins() const;

 private:
  const HedgePolicy policy_;
  mutable std::mutex mutex_;
  std::vector<u64> window_;  // ring of recent latencies
  size_t next_ = 0;
  u64 samples_ = 0;
  u64 hedges_ = 0;
  u64 wins_ = 0;
};

// --- circuit breaker --------------------------------------------------------

struct CircuitBreakerPolicy {
  u32 window = 32;                 // sliding window of request outcomes
  u32 min_samples = 8;             // outcomes required before tripping
  double failure_threshold = 0.5;  // trip at >= this failure fraction
  u64 cooldown_ns = 10 * 1000 * 1000;  // open -> half-open after 10 ms
  u32 half_open_probes = 2;        // probe successes required to close
};

// Per-backend breaker shared by every fetch thread of a scan. Thread-safe.
// Transient failures count against the backend; successes and permanent,
// request-specific errors (NotFound, InvalidArgument) count as healthy
// responses. Fail-fast rejections surface as Status::Unavailable — a
// typed, transient status, so callers keep their error contract.
class CircuitBreaker {
 public:
  enum class State : u8 { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(const CircuitBreakerPolicy& policy);

  // May a request go to the backend right now? false = fail fast (counted
  // in fast_failures and `scan.breaker.fast_failures`).
  bool Allow();

  // Reports a completed request's outcome (success = the backend answered,
  // even with a permanent error; failure = transient backend failure).
  void Record(bool success);

  State state() const;
  u64 trips() const;          // closed/half-open -> open transitions
  u64 fast_failures() const;  // requests rejected while open

 private:
  using Clock = std::chrono::steady_clock;

  void TripLocked();   // -> kOpen, starts the cooldown
  void CloseLocked();  // -> kClosed, resets the window

  const CircuitBreakerPolicy policy_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::vector<u8> outcomes_;  // ring: 1 = failure
  size_t next_ = 0;
  u32 samples_ = 0;
  u32 failures_ = 0;
  Clock::time_point open_until_{};
  u32 probes_granted_ = 0;
  u32 probe_successes_ = 0;
  u64 trips_ = 0;
  u64 fast_failures_ = 0;
};

// Per-call accounting RunWithRetries fills when the caller passes one —
// the per-request view the scan profiler needs (the RetryState totals
// are scan-wide and cannot attribute retries to a single request).
struct RetryOutcome {
  u32 attempts = 0;       // op() invocations, including the first
  u32 retries = 0;        // committed retries (backoff slept to completion)
  bool breaker_rejected = false;  // the breaker fast-failed this call
};

// Runs `op` until it succeeds, fails permanently, or retries are
// exhausted. Only transient statuses (Status::IsTransient) are retried;
// the last status is returned either way. With a breaker, every attempt
// first asks Allow() — a fail-fast rejection returns immediately as
// Status::Unavailable without consuming attempts or retry budget — and
// every completed attempt's outcome is Record()ed.
Status RunWithRetries(RetryState* state, const std::function<Status()>& op,
                      const SleepFn& sleep = SleepUninterruptible,
                      CircuitBreaker* breaker = nullptr,
                      RetryOutcome* outcome = nullptr);

}  // namespace btr::exec

#endif  // BTR_EXEC_RETRY_H_
