// Retry policy for transient object-store failures (Status::Throttled /
// Status::Unavailable): capped exponential backoff with deterministic
// jitter, a per-request deadline, and a shared retry budget so one scan
// cannot retry without bound when the backend is down.
//
// One RetryState is shared by all fetch threads of a scan (and by
// Scanner::Open's metadata GETs): the budget is scan-wide and the jitter
// stream is seeded, so a given schedule of failures backs off the same
// way every run. Backoff sleeps go through a caller-supplied SleepFn so
// the prefetcher can make them interruptible — an aborting pipeline must
// not wait out a pending backoff (exec/pipeline.h).
//
// Every granted retry is counted in the `scan.retries` metric and its
// backoff recorded in `scan.backoff_ns`.
#ifndef BTR_EXEC_RETRY_H_
#define BTR_EXEC_RETRY_H_

#include <functional>
#include <mutex>

#include "util/random.h"
#include "util/status.h"
#include "util/types.h"

namespace btr::exec {

struct RetryPolicy {
  u32 max_attempts = 4;             // tries per request; 1 = never retry
  u64 initial_backoff_ns = 1000 * 1000;      // 1 ms before the first retry
  double backoff_multiplier = 2.0;           // exponential growth per retry
  u64 max_backoff_ns = 64 * 1000 * 1000;     // backoff cap, 64 ms
  u64 request_deadline_ns = 0;      // wall budget per request, 0 = none
  u64 retry_budget = 256;           // total retries across the policy's user
  u64 jitter_seed = 0xB10C5EEDull;  // deterministic jitter stream
};

// Shared mutable retry state: the scan-wide budget and the jitter PRNG.
// Thread-safe.
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy);

  const RetryPolicy& policy() const { return policy_; }

  // Decides whether a request that has completed `attempts` tries (>= 1),
  // spending `elapsed_ns` so far, may retry. On true, one unit of budget
  // is consumed, metrics are recorded, and *backoff_ns holds the jittered
  // backoff to sleep before the next try.
  bool NextBackoff(u32 attempts, u64 elapsed_ns, u64* backoff_ns);

  u64 retries_granted() const;

 private:
  const RetryPolicy policy_;
  mutable std::mutex mutex_;
  Random jitter_rng_;
  u64 budget_used_ = 0;
};

// Sleeps for the given nanoseconds; returns false when interrupted (the
// caller should stop retrying and unwind).
using SleepFn = std::function<bool(u64 backoff_ns)>;

// Blocking sleep that is never interrupted (for non-pipelined callers).
bool SleepUninterruptible(u64 backoff_ns);

// Runs `op` until it succeeds, fails permanently, or retries are
// exhausted. Only transient statuses (Status::IsTransient) are retried;
// the last status is returned either way.
Status RunWithRetries(RetryState* state, const std::function<Status()>& op,
                      const SleepFn& sleep = SleepUninterruptible);

}  // namespace btr::exec

#endif  // BTR_EXEC_RETRY_H_
