// Pipelined scan building blocks: a bounded MPMC queue with backpressure
// and a prefetcher that issues ranged object-store GETs ahead of
// consumption. Together with exec::ThreadPool these form the repo's first
// genuinely concurrent end-to-end path (btr::Scanner): network fetches
// overlap block decompression instead of the analytic core-count model
// s3sim::SimulateScan uses.
//
// Concurrency contract:
//   - BoundedQueue: any number of producers and consumers. Push blocks
//     while the queue is full (backpressure), Pop blocks while it is empty
//     and not yet closed. Close() wakes everyone; Pop returns false once
//     the queue is both closed and drained. Abort() additionally discards
//     queued items so a failing pipeline unwinds quickly.
//   - Prefetcher: owns its fetch threads; Start() may be called at most
//     once (a second call is an explicit BTR_CHECK failure, not silent
//     thread duplication) and Join() must be called before destruction
//     (Scanner does both). Transient GET failures are retried per the
//     RetryPolicy; backoff sleeps are interruptible, so RequestStop()
//     drains a thread parked in backoff promptly instead of waiting the
//     sleep out.
//
// Read-path resilience (FetchOptions, docs/ROBUSTNESS.md):
//   - Block cache: requests carrying a header CRC consult the cache before
//     the store — a hit skips the GET entirely; a verified miss is
//     admitted after the GET so the next scan hits.
//   - Hedged GETs: a fetch that outlives the running latency quantile gets
//     one duplicate GET; the first response wins, the straggler's result
//     is discarded (its thread is reaped in Join()).
//   - Circuit breaker: when installed, every GET attempt first asks the
//     breaker; an open breaker fails the request fast as
//     Status::Unavailable without burning retry budget.
#ifndef BTR_EXEC_PIPELINE_H_
#define BTR_EXEC_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/block_cache.h"
#include "exec/retry.h"
#include "obs/profile.h"
#include "s3sim/object_store.h"
#include "util/buffer.h"
#include "util/status.h"
#include "util/types.h"

namespace btr::exec {

// Queue observability shared by every BoundedQueue in the process:
//   exec.pipeline.queue_depth        gauge, items currently buffered
//   exec.pipeline.prefetch_hits      Pop found an item without waiting
//   exec.pipeline.prefetch_misses    Pop had to block on the producer
//   exec.pipeline.producer_stall_ns  time Push spent blocked on backpressure
//   exec.pipeline.consumer_stall_ns  time Pop spent blocked on an empty queue
struct QueueStats {
  u64 prefetch_hits = 0;
  u64 prefetch_misses = 0;
};

namespace detail {
void RecordQueuePush(u64 stall_ns);
void RecordQueuePop(bool hit, u64 stall_ns);
void RecordQueueDepth(i64 delta);
u64 StallNanos(const std::function<bool()>& ready,
               std::condition_variable& cv, std::unique_lock<std::mutex>& lock);
}  // namespace detail

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  ~BoundedQueue() { detail::RecordQueueDepth(-static_cast<i64>(items_.size())); }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false (dropping the item) when the queue was
  // closed or aborted while waiting — producers should stop then.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    u64 stall_ns = detail::StallNanos(
        [this] { return items_.size() < capacity_ || closed_; }, not_full_,
        lock);
    if (closed_) return false;
    items_.push_back(std::move(item));
    detail::RecordQueuePush(stall_ns);
    detail::RecordQueueDepth(1);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty and not closed. Returns false once closed + drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    bool hit = !items_.empty();
    u64 stall_ns = detail::StallNanos(
        [this] { return !items_.empty() || closed_; }, not_empty_, lock);
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    detail::RecordQueuePop(hit, stall_ns);
    detail::RecordQueueDepth(-1);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // No more Pushes will succeed; Pops drain what is queued.
  void Close() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  // Close and discard everything queued (error unwind).
  void Abort() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      closed_ = true;
      detail::RecordQueueDepth(-static_cast<i64>(items_.size()));
      items_.clear();
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t capacity() const { return capacity_; }

  size_t Depth() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

// One ranged GET the prefetcher should issue, tagged with the consumer's
// sequence number so out-of-order fetch threads can be reordered downstream.
struct FetchRequest {
  std::string key;
  u64 offset = 0;
  u64 length = 0;
  u64 tag = 0;
  // CRC32C the payload must hash to, from the column header. Arms the
  // block cache for this request: lookups may serve it and a fetched
  // payload is admitted only when it verifies against this checksum.
  u32 expected_crc = 0;
  bool verify_crc = false;
};

// A fetched block, or the reason it could not be fetched. `data` is
// SIMD-padded so decoders can consume it directly (ByteBuffer keeps
// kSimdPadding writable bytes past size()). When `status` is non-OK the
// GET failed permanently (after retries) and `data` is empty — the
// consumer decides whether that fails the scan or degrades it.
struct FetchedBlock {
  u64 tag = 0;
  Status status;
  ByteBuffer data;
};

// Holds hedge-loser threads whose GET result was discarded until someone
// reaps them. A hedged GET that wins the race abandons the straggling
// primary's thread; it must still be joined before the object store goes
// away. Thread-safe; the destructor reaps anything left.
class StragglerSink {
 public:
  StragglerSink() = default;
  ~StragglerSink() { Reap(); }

  StragglerSink(const StragglerSink&) = delete;
  StragglerSink& operator=(const StragglerSink&) = delete;

  void Park(std::thread t) {
    std::lock_guard<std::mutex> lock(mutex_);
    threads_.push_back(std::move(t));
  }

  // Joins every parked thread. Safe to call repeatedly and concurrently
  // with Park (threads parked during a Reap are caught by the next one).
  void Reap() {
    std::vector<std::thread> taken;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      taken.swap(threads_);
    }
    for (std::thread& t : taken) {
      if (t.joinable()) t.join();
    }
  }

 private:
  std::mutex mutex_;
  std::vector<std::thread> threads_;
};

// One GET, hedged when `hedge`'s latency tracker says the primary is
// overdue: the primary runs on its own thread, and if it outlives the
// quantile threshold one duplicate is issued on the calling thread; the
// first response wins. A losing primary's thread is parked in
// `stragglers` (the caller reaps it after the scan quiesces). `hedged` /
// `hedge_won` are OR-accumulated so retry wrappers can reuse the flags
// across attempts. `hedge_gate`, when set, is consulted before the
// duplicate is issued (after the overdue check, before the hedge budget
// is consumed) — ScanService uses it for per-tenant hedge quotas; a
// denial silently degrades to waiting out the primary.
Status HedgedGet(s3sim::ObjectStore* store, const std::string& key,
                 u64 offset, u64 length, HedgeState* hedge,
                 StragglerSink* stragglers, std::vector<u8>* out, bool* hedged,
                 bool* hedge_won,
                 const std::function<bool()>& hedge_gate = nullptr);

// Resilience attachments for a Prefetcher; everything optional and
// caller-owned (must outlive the Prefetcher).
struct FetchOptions {
  BlockCache* cache = nullptr;      // null = no caching
  HedgePolicy hedge;                // hedging disabled unless hedge.enabled
  CircuitBreaker* breaker = nullptr;  // null = no breaker
  // Per-scan profile sink (obs/profile.h): when set, every resolved
  // request reports its latency, attempt count and cache/hedge/breaker
  // state. Null = profiling off — the recording path is never entered.
  obs::ScanProfileCollector* profile = nullptr;
};

// Pulls FetchRequests off a shared cursor and issues ObjectStore::GetChunk
// calls on `fetch_threads` threads, pushing results into `out` — ahead of
// consumption, up to the queue's capacity (the prefetch depth). Transient
// GET failures (Throttled/Unavailable) are retried with backoff through
// the shared RetryState; exhausted or permanent failures are pushed as
// FetchedBlocks carrying the Status. Closes the queue when every request
// has been resolved or a stop was requested.
class Prefetcher {
 public:
  Prefetcher(s3sim::ObjectStore* store, std::vector<FetchRequest> requests,
             BoundedQueue<FetchedBlock>* out, u32 fetch_threads,
             const RetryPolicy& retry_policy = RetryPolicy(),
             const FetchOptions& options = FetchOptions());
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  // Spawns the fetch threads. Must be called at most once per Prefetcher
  // (explicit state check; a second call BTR_CHECK-fails).
  void Start();
  // Asks fetch threads to stop after their current GET, and wakes any
  // thread sleeping in a retry backoff so the unwind is prompt.
  void RequestStop();
  // Blocks until every fetch thread exited, including hedge stragglers
  // whose duplicate GET lost the race. Safe to call twice.
  void Join();

  // Transient-failure retries granted so far (scan-wide).
  u64 retries() const { return retry_state_.retries_granted(); }
  // Block cache outcomes for this prefetcher's requests.
  u64 cache_hits() const { return cache_hits_.load(std::memory_order_relaxed); }
  u64 cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  // Hedged GETs issued / won by the duplicate (scan-wide).
  u64 hedges() const { return hedge_state_.hedges_issued(); }
  u64 hedge_wins() const { return hedge_state_.hedge_wins(); }

 private:
  void FetchLoop();
  // Interruptible backoff: returns false when RequestStop arrived.
  bool BackoffSleep(u64 backoff_ns);

  s3sim::ObjectStore* store_;
  std::vector<FetchRequest> requests_;
  BoundedQueue<FetchedBlock>* out_;
  u32 fetch_threads_;
  RetryState retry_state_;
  FetchOptions options_;
  HedgeState hedge_state_;
  std::atomic<u64> next_request_{0};
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  std::atomic<u32> live_threads_{0};
  std::vector<std::thread> threads_;
  std::atomic<u64> cache_hits_{0};
  std::atomic<u64> cache_misses_{0};
  StragglerSink stragglers_;  // hedge losers, reaped in Join()
};

}  // namespace btr::exec

#endif  // BTR_EXEC_PIPELINE_H_
