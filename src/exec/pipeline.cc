#include "exec/pipeline.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace btr::exec {

namespace detail {

namespace {

struct QueueMetrics {
  obs::Gauge& depth;
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Histogram& producer_stall_ns;
  obs::Histogram& consumer_stall_ns;

  static QueueMetrics& Get() {
    static QueueMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new QueueMetrics{
          r.GetGauge("exec.pipeline.queue_depth"),
          r.GetCounter("exec.pipeline.prefetch_hits"),
          r.GetCounter("exec.pipeline.prefetch_misses"),
          r.GetHistogram("exec.pipeline.producer_stall_ns"),
          r.GetHistogram("exec.pipeline.consumer_stall_ns")};
    }();
    return *m;
  }
};

}  // namespace

void RecordQueuePush(u64 stall_ns) {
  QueueMetrics::Get().producer_stall_ns.Record(stall_ns);
}

void RecordQueuePop(bool hit, u64 stall_ns) {
  QueueMetrics& m = QueueMetrics::Get();
  (hit ? m.hits : m.misses).Add();
  m.consumer_stall_ns.Record(stall_ns);
}

void RecordQueueDepth(i64 delta) {
  if (delta != 0) QueueMetrics::Get().depth.Add(delta);
}

u64 StallNanos(const std::function<bool()>& ready, std::mutex&,
               std::condition_variable& cv,
               std::unique_lock<std::mutex>& lock) {
  if (ready()) return 0;
  auto start = std::chrono::steady_clock::now();
  cv.wait(lock, ready);
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace detail

Prefetcher::Prefetcher(s3sim::ObjectStore* store,
                       std::vector<FetchRequest> requests,
                       BoundedQueue<FetchedBlock>* out, u32 fetch_threads,
                       const RetryPolicy& retry_policy)
    : store_(store),
      requests_(std::move(requests)),
      out_(out),
      fetch_threads_(fetch_threads == 0 ? 1 : fetch_threads),
      retry_state_(retry_policy) {}

Prefetcher::~Prefetcher() {
  RequestStop();
  Join();
}

void Prefetcher::Start() {
  BTR_CHECK_MSG(!started_, "Prefetcher::Start() called twice");
  started_ = true;
  u32 threads = fetch_threads_;
  // No point spinning up more fetch threads than requests.
  if (threads > requests_.size()) {
    threads = static_cast<u32>(requests_.size());
  }
  if (threads == 0) {
    out_->Close();
    return;
  }
  live_threads_.store(threads, std::memory_order_relaxed);
  threads_.reserve(threads);
  for (u32 i = 0; i < threads; i++) {
    threads_.emplace_back([this] { FetchLoop(); });
  }
}

void Prefetcher::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  // Wake threads parked in a retry backoff — an unwinding pipeline must
  // not wait out pending sleeps.
  stop_cv_.notify_all();
}

bool Prefetcher::BackoffSleep(u64 backoff_ns) {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait_for(lock, std::chrono::nanoseconds(backoff_ns),
                    [this] { return stop_.load(std::memory_order_relaxed); });
  return !stop_.load(std::memory_order_relaxed);
}

void Prefetcher::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void Prefetcher::FetchLoop() {
  static obs::Counter& fetched =
      obs::Registry::Get().GetCounter("exec.pipeline.blocks_fetched");
  std::vector<u8> chunk;
  while (!stop_.load(std::memory_order_relaxed)) {
    u64 i = next_request_.fetch_add(1, std::memory_order_relaxed);
    if (i >= requests_.size()) break;
    const FetchRequest& request = requests_[i];
    Status status;
    {
      BTR_TRACE_SPAN("scan.fetch");
      // Transient failures retry with interruptible backoff; permanent
      // ones (and exhausted retries) fall through as the block's status.
      status = RunWithRetries(
          &retry_state_,
          [&] {
            return store_->GetChunk(request.key, request.offset,
                                    request.length, &chunk);
          },
          [this](u64 backoff_ns) { return BackoffSleep(backoff_ns); });
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    FetchedBlock block;
    block.tag = request.tag;
    block.status = status;
    if (status.ok()) block.data.Append(chunk.data(), chunk.size());
    fetched.Add();
    // Backpressure: blocks while consumers lag prefetch_depth behind.
    if (!out_->Push(std::move(block))) break;  // queue aborted
  }
  // Last fetch thread out closes the queue so consumers see end-of-stream.
  if (live_threads_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    out_->Close();
  }
}

}  // namespace btr::exec
