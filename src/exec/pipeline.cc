#include "exec/pipeline.h"

#include <chrono>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace btr::exec {

namespace detail {

namespace {

struct QueueMetrics {
  obs::Gauge& depth;
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Histogram& producer_stall_ns;
  obs::Histogram& consumer_stall_ns;

  static QueueMetrics& Get() {
    static QueueMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new QueueMetrics{
          r.GetGauge("exec.pipeline.queue_depth"),
          r.GetCounter("exec.pipeline.prefetch_hits"),
          r.GetCounter("exec.pipeline.prefetch_misses"),
          r.GetHistogram("exec.pipeline.producer_stall_ns"),
          r.GetHistogram("exec.pipeline.consumer_stall_ns")};
    }();
    return *m;
  }
};

}  // namespace

void RecordQueuePush(u64 stall_ns) {
  QueueMetrics::Get().producer_stall_ns.Record(stall_ns);
}

void RecordQueuePop(bool hit, u64 stall_ns) {
  QueueMetrics& m = QueueMetrics::Get();
  (hit ? m.hits : m.misses).Add();
  m.consumer_stall_ns.Record(stall_ns);
}

void RecordQueueDepth(i64 delta) {
  if (delta != 0) QueueMetrics::Get().depth.Add(delta);
}

u64 StallNanos(const std::function<bool()>& ready,
               std::condition_variable& cv,
               std::unique_lock<std::mutex>& lock) {
  if (ready()) return 0;
  auto start = std::chrono::steady_clock::now();
  cv.wait(lock, ready);
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace detail

namespace {

struct HedgeMetrics {
  obs::Counter& hedges;
  obs::Counter& hedge_wins;

  static HedgeMetrics& Get() {
    static HedgeMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new HedgeMetrics{r.GetCounter("scan.hedges"),
                              r.GetCounter("scan.hedge_wins")};
    }();
    return *m;
  }
};

}  // namespace

Prefetcher::Prefetcher(s3sim::ObjectStore* store,
                       std::vector<FetchRequest> requests,
                       BoundedQueue<FetchedBlock>* out, u32 fetch_threads,
                       const RetryPolicy& retry_policy,
                       const FetchOptions& options)
    : store_(store),
      requests_(std::move(requests)),
      out_(out),
      fetch_threads_(fetch_threads == 0 ? 1 : fetch_threads),
      retry_state_(retry_policy),
      options_(options),
      hedge_state_(options.hedge) {}

Prefetcher::~Prefetcher() {
  RequestStop();
  Join();
}

void Prefetcher::Start() {
  BTR_CHECK_MSG(!started_, "Prefetcher::Start() called twice");
  started_ = true;
  u32 threads = fetch_threads_;
  // No point spinning up more fetch threads than requests.
  if (threads > requests_.size()) {
    threads = static_cast<u32>(requests_.size());
  }
  if (threads == 0) {
    out_->Close();
    return;
  }
  live_threads_.store(threads, std::memory_order_relaxed);
  threads_.reserve(threads);
  for (u32 i = 0; i < threads; i++) {
    threads_.emplace_back([this] { FetchLoop(); });
  }
}

void Prefetcher::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  // Wake threads parked in a retry backoff — an unwinding pipeline must
  // not wait out pending sleeps.
  stop_cv_.notify_all();
}

bool Prefetcher::BackoffSleep(u64 backoff_ns) {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait_for(lock, std::chrono::nanoseconds(backoff_ns),
                    [this] { return stop_.load(std::memory_order_relaxed); });
  return !stop_.load(std::memory_order_relaxed);
}

void Prefetcher::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  // Hedge losers: their GET result is already discarded, but the threads
  // must still be reaped before the Prefetcher (and the store) go away.
  stragglers_.Reap();
}

Status HedgedGet(s3sim::ObjectStore* store, const std::string& key,
                 u64 offset, u64 length, HedgeState* hedge,
                 StragglerSink* stragglers, std::vector<u8>* out, bool* hedged,
                 bool* hedge_won, const std::function<bool()>& hedge_gate) {
  out->clear();
  const u64 threshold_ns = hedge->ThresholdNs();
  if (threshold_ns == 0) {
    // Hedging not armed (disabled, warming up, or budget spent): plain GET
    // on this thread. Successful latencies still feed the quantile so the
    // threshold can arm.
    Timer timer;
    Status status = store->GetChunk(key, offset, length, out);
    if (hedge->policy().enabled && status.ok()) {
      hedge->RecordLatency(static_cast<u64>(timer.ElapsedNanos()));
    }
    return status;
  }

  // Hedged path: primary GET on its own thread; if it outlives the
  // threshold, issue one duplicate on this thread and take the first
  // response. The loser's bytes are discarded — both responses verify
  // against the same header CRC downstream, so either is acceptable.
  struct HedgedCall {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Status status;
    std::vector<u8> data;
    u64 latency_ns = 0;
  };
  auto call = std::make_shared<HedgedCall>();
  // Owned copies: the primary thread may outlive this call's scope when
  // it loses the race and gets parked as a straggler.
  const std::string owned_key = key;
  std::thread primary([store, owned_key, offset, length, call] {
    std::vector<u8> data;
    Timer timer;
    Status status = store->GetChunk(owned_key, offset, length, &data);
    u64 latency_ns = static_cast<u64>(timer.ElapsedNanos());
    {
      std::lock_guard<std::mutex> lock(call->mutex);
      call->done = true;
      call->status = std::move(status);
      call->data = std::move(data);
      call->latency_ns = latency_ns;
    }
    call->cv.notify_all();
  });

  bool primary_done;
  {
    std::unique_lock<std::mutex> lock(call->mutex);
    primary_done = call->cv.wait_for(
        lock, std::chrono::nanoseconds(threshold_ns),
        [&] { return call->done; });
  }
  if (!primary_done && (hedge_gate == nullptr || hedge_gate()) &&
      hedge->TryAcquireHedge()) {
    HedgeMetrics::Get().hedges.Add();
    *hedged = true;
    std::vector<u8> hedge_data;
    Timer hedge_timer;
    Status hedge_status = store->GetChunk(key, offset, length, &hedge_data);
    u64 hedge_latency_ns = static_cast<u64>(hedge_timer.ElapsedNanos());
    bool primary_finished;
    {
      std::lock_guard<std::mutex> lock(call->mutex);
      primary_finished = call->done;
    }
    if (hedge_status.ok() && !primary_finished) {
      // The duplicate beat the straggling primary: park the primary's
      // thread for the caller to reap and return the hedge's bytes.
      stragglers->Park(std::move(primary));
      hedge->RecordHedgeOutcome(true);
      hedge->RecordLatency(hedge_latency_ns);
      HedgeMetrics::Get().hedge_wins.Add();
      *hedge_won = true;
      *out = std::move(hedge_data);
      return hedge_status;
    }
    primary.join();
    if (!call->status.ok() && hedge_status.ok()) {
      // Primary finished first but failed; the duplicate rescued it.
      hedge->RecordHedgeOutcome(true);
      hedge->RecordLatency(hedge_latency_ns);
      HedgeMetrics::Get().hedge_wins.Add();
      *hedge_won = true;
      *out = std::move(hedge_data);
      return hedge_status;
    }
    hedge->RecordHedgeOutcome(false);
    if (call->status.ok()) hedge->RecordLatency(call->latency_ns);
    *out = std::move(call->data);
    return call->status;
  }

  // Primary answered in time, or the hedge budget is spent: wait it out.
  primary.join();
  if (call->status.ok()) hedge->RecordLatency(call->latency_ns);
  *out = std::move(call->data);
  return call->status;
}

void Prefetcher::FetchLoop() {
  static obs::Counter& fetched =
      obs::Registry::Get().GetCounter("exec.pipeline.blocks_fetched");
  obs::ScanProfileCollector* profile = options_.profile;
  std::vector<u8> chunk;
  while (!stop_.load(std::memory_order_relaxed)) {
    u64 i = next_request_.fetch_add(1, std::memory_order_relaxed);
    if (i >= requests_.size()) break;
    const FetchRequest& request = requests_[i];
    FetchedBlock block;
    block.tag = request.tag;
    // Cache fast path: only requests carrying a header CRC are cacheable —
    // without the checksum the admission gate cannot vouch for the bytes.
    const bool cacheable = options_.cache != nullptr && request.verify_crc;
    if (cacheable && options_.cache->Lookup(request.key, request.offset,
                                            request.length, &block.data)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      block.status = Status::Ok();
      fetched.Add();
      if (profile != nullptr) {
        obs::FetchRecord record;
        record.key = &request.key;
        record.offset = request.offset;
        record.length = request.length;
        record.cacheable = true;
        record.cache_hit = true;
        profile->RecordFetch(record);
      }
      if (!out_->Push(std::move(block))) break;  // queue aborted
      continue;
    }
    if (cacheable) cache_misses_.fetch_add(1, std::memory_order_relaxed);
    Status status;
    bool hedged = false;
    bool hedge_won = false;
    RetryOutcome outcome;
    Timer get_timer;
    {
      BTR_TRACE_SPAN("scan.fetch");
      // Transient failures retry with interruptible backoff; permanent
      // ones (and exhausted retries) fall through as the block's status.
      // The breaker, when installed, can fail the request fast instead.
      status = RunWithRetries(
          &retry_state_,
          [&] {
            return HedgedGet(store_, request.key, request.offset,
                             request.length, &hedge_state_, &stragglers_,
                             &chunk, &hedged, &hedge_won);
          },
          [this](u64 backoff_ns) { return BackoffSleep(backoff_ns); },
          options_.breaker, profile != nullptr ? &outcome : nullptr);
    }
    if (profile != nullptr) {
      obs::FetchRecord record;
      record.key = &request.key;
      record.offset = request.offset;
      record.length = request.length;
      record.duration_ns = static_cast<u64>(get_timer.ElapsedNanos());
      record.attempts = outcome.attempts == 0 ? 1 : outcome.attempts;
      record.retries = outcome.retries;
      record.cacheable = cacheable;
      record.hedged = hedged;
      record.hedge_won = hedge_won;
      record.breaker_rejected = outcome.breaker_rejected;
      record.ok = status.ok();
      profile->RecordFetch(record);
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    block.status = status;
    if (status.ok()) {
      block.data.Append(chunk.data(), chunk.size());
      if (cacheable) {
        // Verified admission: a corrupt payload is refused here and will
        // fail the scanner's own CRC check downstream.
        options_.cache->Insert(request.key, request.offset, request.length,
                               chunk.data(), chunk.size(),
                               request.expected_crc);
      }
    }
    fetched.Add();
    // Backpressure: blocks while consumers lag prefetch_depth behind.
    if (!out_->Push(std::move(block))) break;  // queue aborted
  }
  // Last fetch thread out closes the queue so consumers see end-of-stream.
  if (live_threads_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    out_->Close();
  }
}

}  // namespace btr::exec
