#include "exec/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "util/timer.h"

namespace btr::exec {

namespace {

struct RetryMetrics {
  obs::Counter& retries;
  obs::Histogram& backoff_ns;

  static RetryMetrics& Get() {
    static RetryMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new RetryMetrics{r.GetCounter("scan.retries"),
                              r.GetHistogram("scan.backoff_ns")};
    }();
    return *m;
  }
};

}  // namespace

RetryState::RetryState(const RetryPolicy& policy)
    : policy_(policy), jitter_rng_(policy.jitter_seed) {}

bool RetryState::NextBackoff(u32 attempts, u64 elapsed_ns, u64* backoff_ns) {
  if (attempts >= policy_.max_attempts) return false;

  // Exponential target for this retry (attempts is >= 1: the count of
  // tries already made), capped, then jittered into [1/2, 1] of the
  // target so synchronized fetch threads desynchronize.
  double target = static_cast<double>(policy_.initial_backoff_ns);
  for (u32 i = 1; i < attempts; i++) target *= policy_.backoff_multiplier;
  target = std::min(target, static_cast<double>(policy_.max_backoff_ns));

  u64 backoff;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (budget_used_ >= policy_.retry_budget) return false;
    backoff = static_cast<u64>(target * (0.5 + 0.5 * jitter_rng_.NextDouble()));
    if (policy_.request_deadline_ns != 0 &&
        elapsed_ns + backoff > policy_.request_deadline_ns) {
      return false;
    }
    budget_used_++;
  }
  RetryMetrics& metrics = RetryMetrics::Get();
  metrics.retries.Add();
  metrics.backoff_ns.Record(backoff);
  *backoff_ns = backoff;
  return true;
}

u64 RetryState::retries_granted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_used_;
}

bool SleepUninterruptible(u64 backoff_ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(backoff_ns));
  return true;
}

Status RunWithRetries(RetryState* state, const std::function<Status()>& op,
                      const SleepFn& sleep) {
  Timer timer;
  u32 attempts = 0;
  for (;;) {
    Status status = op();
    attempts++;
    if (status.ok() || !status.IsTransient()) return status;
    u64 backoff_ns = 0;
    if (!state->NextBackoff(attempts, static_cast<u64>(timer.ElapsedNanos()),
                            &backoff_ns)) {
      return status;  // attempts, budget, or deadline exhausted
    }
    if (!sleep(backoff_ns)) return status;  // interrupted: unwind now
  }
}

}  // namespace btr::exec
