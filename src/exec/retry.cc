#include "exec/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "util/timer.h"

namespace btr::exec {

namespace {

struct RetryMetrics {
  obs::Counter& retries;
  obs::Histogram& backoff_ns;

  static RetryMetrics& Get() {
    static RetryMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new RetryMetrics{r.GetCounter("scan.retries"),
                              r.GetHistogram("scan.backoff_ns")};
    }();
    return *m;
  }
};

struct BreakerMetrics {
  obs::Counter& trips;
  obs::Counter& fast_failures;
  obs::Gauge& state;

  static BreakerMetrics& Get() {
    static BreakerMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new BreakerMetrics{r.GetCounter("scan.breaker.trips"),
                                r.GetCounter("scan.breaker.fast_failures"),
                                r.GetGauge("scan.breaker.state")};
    }();
    return *m;
  }
};

}  // namespace

RetryState::RetryState(const RetryPolicy& policy)
    : policy_(policy), jitter_rng_(policy.jitter_seed) {}

bool RetryState::NextBackoff(u32 attempts, u64 elapsed_ns, u64* backoff_ns) {
  if (attempts >= policy_.max_attempts) return false;

  // Exponential target for this retry (attempts is >= 1: the count of
  // tries already made), capped, then jittered into [1/2, 1] of the
  // target so synchronized fetch threads desynchronize.
  double target = static_cast<double>(policy_.initial_backoff_ns);
  for (u32 i = 1; i < attempts; i++) target *= policy_.backoff_multiplier;
  target = std::min(target, static_cast<double>(policy_.max_backoff_ns));

  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_used_ >= policy_.retry_budget) return false;
  u64 backoff =
      static_cast<u64>(target * (0.5 + 0.5 * jitter_rng_.NextDouble()));
  if (policy_.request_deadline_ns != 0 &&
      elapsed_ns + backoff > policy_.request_deadline_ns) {
    return false;
  }
  budget_used_++;  // reserved; committed or refunded after the sleep
  *backoff_ns = backoff;
  return true;
}

void RetryState::CommitRetry(u64 backoff_ns) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retries_committed_++;
  }
  RetryMetrics& metrics = RetryMetrics::Get();
  metrics.retries.Add();
  metrics.backoff_ns.Record(backoff_ns);
}

void RetryState::CancelRetry() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (budget_used_ > 0) budget_used_--;
}

u64 RetryState::retries_granted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retries_committed_;
}

bool SleepUninterruptible(u64 backoff_ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(backoff_ns));
  return true;
}

// --- hedging ----------------------------------------------------------------

HedgeState::HedgeState(const HedgePolicy& policy)
    : policy_(policy), window_(std::max<u32>(1, policy.latency_window), 0) {}

void HedgeState::RecordLatency(u64 ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  window_[next_] = ns;
  next_ = (next_ + 1) % window_.size();
  samples_++;
}

u64 HedgeState::ThresholdNs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!policy_.enabled || samples_ < policy_.min_samples) return 0;
  if (hedges_ >= policy_.hedge_budget) return 0;
  size_t filled = static_cast<size_t>(
      std::min<u64>(samples_, static_cast<u64>(window_.size())));
  std::vector<u64> sorted(window_.begin(), window_.begin() + filled);
  double q = std::clamp(policy_.quantile, 0.0, 1.0);
  size_t rank = static_cast<size_t>(q * static_cast<double>(filled - 1));
  std::nth_element(sorted.begin(), sorted.begin() + rank, sorted.end());
  return std::max(sorted[rank], policy_.min_threshold_ns);
}

bool HedgeState::TryAcquireHedge() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!policy_.enabled || hedges_ >= policy_.hedge_budget) return false;
  hedges_++;
  return true;
}

void HedgeState::RecordHedgeOutcome(bool hedge_won) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (hedge_won) wins_++;
}

u64 HedgeState::hedges_issued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hedges_;
}

u64 HedgeState::hedge_wins() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wins_;
}

// --- circuit breaker --------------------------------------------------------

CircuitBreaker::CircuitBreaker(const CircuitBreakerPolicy& policy)
    : policy_(policy), outcomes_(std::max<u32>(1, policy.window), 0) {}

void CircuitBreaker::TripLocked() {
  state_ = State::kOpen;
  open_until_ = Clock::now() + std::chrono::nanoseconds(policy_.cooldown_ns);
  probes_granted_ = 0;
  probe_successes_ = 0;
  trips_++;
  BreakerMetrics& metrics = BreakerMetrics::Get();
  metrics.trips.Add();
  metrics.state.Set(static_cast<i64>(State::kOpen));
}

void CircuitBreaker::CloseLocked() {
  state_ = State::kClosed;
  std::fill(outcomes_.begin(), outcomes_.end(), 0);
  next_ = 0;
  samples_ = 0;
  failures_ = 0;
  probes_granted_ = 0;
  probe_successes_ = 0;
  BreakerMetrics::Get().state.Set(static_cast<i64>(State::kClosed));
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kClosed) return true;
  if (state_ == State::kOpen) {
    if (Clock::now() < open_until_) {
      fast_failures_++;
      BreakerMetrics::Get().fast_failures.Add();
      return false;
    }
    // Cooldown over: half-open, let a bounded number of probes through.
    state_ = State::kHalfOpen;
    probes_granted_ = 0;
    probe_successes_ = 0;
    BreakerMetrics::Get().state.Set(static_cast<i64>(State::kHalfOpen));
  }
  if (probes_granted_ < policy_.half_open_probes) {
    probes_granted_++;
    return true;
  }
  fast_failures_++;
  BreakerMetrics::Get().fast_failures.Add();
  return false;
}

void CircuitBreaker::Record(bool success) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    if (!success) {
      TripLocked();  // probe failed: straight back to open
      return;
    }
    probe_successes_++;
    if (probe_successes_ >= policy_.half_open_probes) CloseLocked();
    return;
  }
  if (state_ == State::kOpen) return;  // stale outcome from before the trip
  // Closed: slide the outcome window and check the failure fraction.
  u32 window = static_cast<u32>(outcomes_.size());
  if (samples_ >= window) failures_ -= outcomes_[next_];
  outcomes_[next_] = success ? 0 : 1;
  failures_ += outcomes_[next_];
  next_ = (next_ + 1) % window;
  if (samples_ < window) samples_++;
  if (samples_ >= policy_.min_samples && samples_ > 0 &&
      static_cast<double>(failures_) / static_cast<double>(samples_) >=
          policy_.failure_threshold) {
    TripLocked();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

u64 CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

u64 CircuitBreaker::fast_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fast_failures_;
}

Status RunWithRetries(RetryState* state, const std::function<Status()>& op,
                      const SleepFn& sleep, CircuitBreaker* breaker,
                      RetryOutcome* outcome) {
  Timer timer;
  u32 attempts = 0;
  u32 retries = 0;
  auto record = [&](bool breaker_rejected) {
    if (outcome == nullptr) return;
    outcome->attempts = attempts;
    outcome->retries = retries;
    outcome->breaker_rejected = breaker_rejected;
  };
  for (;;) {
    if (breaker != nullptr && !breaker->Allow()) {
      // Fail fast: no attempt, no retry budget burned against a backend
      // the breaker already knows is down.
      record(true);
      return Status::Unavailable("circuit breaker open: failing fast");
    }
    Status status = op();
    attempts++;
    if (breaker != nullptr) breaker->Record(!status.IsTransient());
    if (status.ok() || !status.IsTransient()) {
      record(false);
      return status;
    }
    u64 backoff_ns = 0;
    if (!state->NextBackoff(attempts, static_cast<u64>(timer.ElapsedNanos()),
                            &backoff_ns)) {
      record(false);
      return status;  // attempts, budget, or deadline exhausted
    }
    if (!sleep(backoff_ns)) {
      // Interrupted mid-backoff: the retry never happens, so it must not
      // be counted and its budget reservation is refunded.
      state->CancelRetry();
      record(false);
      return status;
    }
    state->CommitRetry(backoff_ns);
    retries++;
  }
}

}  // namespace btr::exec
