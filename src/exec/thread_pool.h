// Minimal thread pool + parallel_for, standing in for the TBB dependency
// the paper uses for parallel (de)compression (Section 6 test setup).
#ifndef BTR_EXEC_THREAD_POOL_H_
#define BTR_EXEC_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/types.h"

namespace btr::exec {

class ThreadPool {
 public:
  // thread_count == 0 uses the hardware concurrency.
  explicit ThreadPool(u32 thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; tasks may not block on other tasks.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished. If any task threw, the
  // *first* exception is rethrown here (once) instead of terminating the
  // worker; remaining tasks still run to completion first.
  void Wait();

  u32 thread_count() const { return static_cast<u32>(threads_.size()); }

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  u64 pending_ = 0;
  std::exception_ptr first_exception_;  // guarded by mutex_
  bool shutdown_ = false;
};

// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
// With a null pool or a single thread, runs inline. An exception thrown by
// fn propagates to the caller in both modes (from Wait() when pooled).
void ParallelFor(ThreadPool* pool, u64 begin, u64 end,
                 const std::function<void(u64)>& fn);

}  // namespace btr::exec

#endif  // BTR_EXEC_THREAD_POOL_H_
