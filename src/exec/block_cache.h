// Checksum-verified in-memory block cache for the scan read path.
//
// Repeated scans of the same table re-GET the same compressed block
// payloads; since decompression is cheap (the paper's premise), those GETs
// *are* the scan cost. The cache keys entries by the exact ranged-GET
// identity (object key, offset, length), so a warm scan skips the object
// store entirely for every cached block.
//
// Integrity contract: an entry is admitted only when its bytes hash to the
// CRC32C the column header promised (the same checksum the scanner
// verifies before decoding). A GET that arrived corrupt is therefore
// *rejected at insert* — the cache can serve stale-but-verified bytes,
// never corrupt ones. Lookups return a copy; entries are immutable.
//
// Concurrency: the cache is sharded by key hash. Each shard owns a mutex,
// an LRU list and a byte budget (capacity_bytes / shards), so concurrent
// fetch threads mostly touch different locks. Metrics (process-wide):
//   cache.block.hits / cache.block.misses      lookup outcomes
//   cache.block.inserts / cache.block.evictions admissions and LRU victims
//   cache.block.crc_rejects                    corrupt payloads refused
//   cache.block.bytes                          gauge, bytes currently held
//   cache.block.bytes_evicted                  payload bytes LRU-evicted
#ifndef BTR_EXEC_BLOCK_CACHE_H_
#define BTR_EXEC_BLOCK_CACHE_H_

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/buffer.h"
#include "util/types.h"

namespace btr::exec {

struct BlockCacheConfig {
  u64 capacity_bytes = 64ull << 20;  // total payload bytes across shards
  u32 shards = 8;                    // independent LRU partitions
};

class BlockCache {
 public:
  explicit BlockCache(const BlockCacheConfig& config = BlockCacheConfig());

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Copies the cached payload for this exact (key, offset, length) GET
  // into `out` and returns true; false on miss (out untouched).
  bool Lookup(const std::string& key, u64 offset, u64 length,
              ByteBuffer* out);

  // Admits the payload after verifying Crc32c(data, size) == expected_crc.
  // Returns false without caching when the CRC does not match (the bytes
  // are wire-corrupt), when the payload alone exceeds a shard's budget, or
  // on size 0. An existing entry under the same key is replaced.
  bool Insert(const std::string& key, u64 offset, u64 length, const u8* data,
              size_t size, u32 expected_crc);

  // Drops the entry if present (e.g. after an at-rest corruption verdict).
  void Erase(const std::string& key, u64 offset, u64 length);

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 inserts = 0;
    u64 evictions = 0;
    u64 bytes_evicted = 0;  // payload bytes dropped by LRU eviction
    u64 crc_rejects = 0;
    u64 bytes = 0;     // payload bytes currently cached
    u64 entries = 0;   // entries currently cached
  };
  Stats GetStats() const;

  u64 capacity_bytes() const { return config_.capacity_bytes; }

 private:
  struct Entry {
    std::string composite_key;
    std::vector<u8> bytes;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    u64 bytes = 0;
  };

  Shard& ShardFor(const std::string& composite_key);
  // Evicts LRU entries of `shard` (mutex held) until it fits its budget.
  void EvictLocked(Shard* shard);

  const BlockCacheConfig config_;
  u64 shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace btr::exec

#endif  // BTR_EXEC_BLOCK_CACHE_H_
