// Checksum-verified in-memory block cache for the scan read path.
//
// Repeated scans of the same table re-GET the same compressed block
// payloads; since decompression is cheap (the paper's premise), those GETs
// *are* the scan cost. The cache keys entries by the exact ranged-GET
// identity (object key, offset, length), so a warm scan skips the object
// store entirely for every cached block.
//
// Integrity contract: an entry is admitted only when its bytes hash to the
// CRC32C the column header promised (the same checksum the scanner
// verifies before decoding). A GET that arrived corrupt is therefore
// *rejected at insert* — the cache can serve stale-but-verified bytes,
// never corrupt ones. Entries are immutable refcounted payloads:
// `LookupShared` hands out a `std::shared_ptr<const ByteBuffer>` without
// copying, and the copying `Lookup` performs its copy *after* releasing
// the shard mutex, so the lock covers only LRU bookkeeping.
//
// Concurrency: the cache is sharded by key hash. Each shard owns a mutex,
// an LRU list and a byte budget (capacity_bytes / shards), so concurrent
// fetch threads mostly touch different locks. Metrics (process-wide):
//   cache.block.hits / cache.block.misses      lookup outcomes
//   cache.block.inserts / cache.block.evictions admissions and LRU victims
//   cache.block.crc_rejects                    corrupt payloads refused
//   cache.block.bytes                          gauge, bytes currently held
//   cache.block.bytes_evicted                  payload bytes LRU-evicted
//
// Ownership attribution: `Insert` takes an optional 32-bit `owner` tag
// (0 = unowned). When an owned entry leaves the cache — LRU eviction,
// replacement, or Erase — the eviction callback fires with the owner and
// the payload size, outside the shard mutex. btr::service::ScanService
// uses this to keep per-tenant cached-byte counts honest.
#ifndef BTR_EXEC_BLOCK_CACHE_H_
#define BTR_EXEC_BLOCK_CACHE_H_

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/buffer.h"
#include "util/types.h"

namespace btr::exec {

struct BlockCacheConfig {
  u64 capacity_bytes = 64ull << 20;  // total payload bytes across shards
  u32 shards = 8;                    // independent LRU partitions
};

class BlockCache {
 public:
  using Payload = std::shared_ptr<const ByteBuffer>;
  // Fired when an owned (owner != 0) entry leaves the cache, with the
  // owner tag and the payload size. Invoked outside the shard mutex, so
  // the callback may call back into the cache; it must still be cheap
  // and thread-safe (concurrent shards fire concurrently).
  using EvictionCallback = std::function<void(u32 owner, u64 bytes)>;

  explicit BlockCache(const BlockCacheConfig& config = BlockCacheConfig());

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Installs the owned-entry eviction callback. Not synchronized against
  // concurrent cache operations: call once, before the cache is shared.
  void SetEvictionCallback(EvictionCallback callback) {
    eviction_callback_ = std::move(callback);
  }

  // Copies the cached payload for this exact (key, offset, length) GET
  // into `out` and returns true; false on miss (out untouched). The copy
  // happens after the shard mutex is released.
  bool Lookup(const std::string& key, u64 offset, u64 length,
              ByteBuffer* out);

  // Zero-copy variant: returns the refcounted immutable payload, or
  // nullptr on miss. The payload stays valid for as long as the caller
  // holds the pointer, even across eviction.
  Payload LookupShared(const std::string& key, u64 offset, u64 length);

  // Admits the payload after verifying Crc32c(data, size) == expected_crc.
  // Returns false without caching when the CRC does not match (the bytes
  // are wire-corrupt), when the payload alone exceeds a shard's budget, or
  // on size 0. An existing entry under the same key is replaced. `owner`
  // tags the entry for eviction accounting (0 = unowned).
  bool Insert(const std::string& key, u64 offset, u64 length, const u8* data,
              size_t size, u32 expected_crc, u32 owner = 0);

  // Drops the entry if present (e.g. after an at-rest corruption verdict).
  void Erase(const std::string& key, u64 offset, u64 length);

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 inserts = 0;
    u64 evictions = 0;
    u64 bytes_evicted = 0;  // payload bytes dropped by LRU eviction
    u64 crc_rejects = 0;
    u64 bytes = 0;     // payload bytes currently cached
    u64 entries = 0;   // entries currently cached
  };
  Stats GetStats() const;

  u64 capacity_bytes() const { return config_.capacity_bytes; }

 private:
  struct Entry {
    std::string composite_key;
    Payload payload;
    u32 owner = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    u64 bytes = 0;
  };
  // An owned entry dropped while the shard mutex was held; the callback
  // fires after the lock is released.
  struct Dropped {
    u32 owner;
    u64 bytes;
  };

  Shard& ShardFor(const std::string& composite_key);
  // Evicts LRU entries of `shard` (mutex held) until it fits its budget,
  // recording owned victims into `dropped`.
  void EvictLocked(Shard* shard, std::vector<Dropped>* dropped);
  void NotifyDropped(const std::vector<Dropped>& dropped);

  const BlockCacheConfig config_;
  u64 shard_capacity_;
  std::vector<Shard> shards_;
  EvictionCallback eviction_callback_;
};

}  // namespace btr::exec

#endif  // BTR_EXEC_BLOCK_CACHE_H_
