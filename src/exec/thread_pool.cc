#include "exec/thread_pool.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace btr::exec {

namespace {

// Pool metrics, shared by every pool in the process: tasks spend time in
// the queue (wait) and then on a worker (run); queue_depth tracks tasks
// submitted but not yet started.
struct PoolMetrics {
  obs::Gauge& queue_depth;
  obs::Counter& tasks;
  obs::Counter& task_exceptions;
  obs::Histogram& task_wait_ns;
  obs::Histogram& task_run_ns;

  static PoolMetrics& Get() {
    static PoolMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new PoolMetrics{r.GetGauge("exec.pool.queue_depth"),
                             r.GetCounter("exec.pool.tasks"),
                             r.GetCounter("exec.pool.task_exceptions"),
                             r.GetHistogram("exec.pool.task_wait_ns"),
                             r.GetHistogram("exec.pool.task_run_ns")};
    }();
    return *m;
  }
};

u64 NanosSince(std::chrono::steady_clock::time_point t) {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t)
                              .count());
}

}  // namespace

ThreadPool::ThreadPool(u32 thread_count) {
  if (thread_count == 0) {
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(thread_count);
  for (u32 i = 0; i < thread_count; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(QueuedTask{std::move(task), std::chrono::steady_clock::now()});
    pending_++;
  }
  PoolMetrics::Get().queue_depth.Add(1);
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr exception;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
    // Hand the exception to exactly one waiter and reset, so the pool
    // stays usable for the next batch.
    exception = first_exception_;
    first_exception_ = nullptr;
  }
  if (exception) std::rethrow_exception(exception);
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& metrics = PoolMetrics::Get();
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    metrics.queue_depth.Add(-1);
    metrics.task_wait_ns.Record(NanosSince(task.enqueued_at));
    auto run_start = std::chrono::steady_clock::now();
    std::exception_ptr thrown;
    {
      BTR_TRACE_SPAN("exec.pool.task");
      try {
        task.fn();
      } catch (...) {
        // Tasks run detached from their submitter; an escaping exception
        // would std::terminate the worker. Park the first one for Wait().
        thrown = std::current_exception();
      }
    }
    metrics.task_run_ns.Record(NanosSince(run_start));
    metrics.tasks.Add();
    if (thrown) metrics.task_exceptions.Add();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (thrown && !first_exception_) first_exception_ = thrown;
      pending_--;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, u64 begin, u64 end,
                 const std::function<void(u64)>& fn) {
  if (begin >= end) return;
  if (pool == nullptr || pool->thread_count() <= 1) {
    for (u64 i = begin; i < end; i++) fn(i);
    return;
  }
  for (u64 i = begin; i < end; i++) {
    pool->Submit([i, &fn] { fn(i); });
  }
  pool->Wait();
}

}  // namespace btr::exec
