#include "exec/thread_pool.h"

namespace btr::exec {

ThreadPool::ThreadPool(u32 thread_count) {
  if (thread_count == 0) {
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(thread_count);
  for (u32 i = 0; i < thread_count; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    pending_++;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      pending_--;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, u64 begin, u64 end,
                 const std::function<void(u64)>& fn) {
  if (begin >= end) return;
  if (pool == nullptr || pool->thread_count() <= 1) {
    for (u64 i = begin; i < end; i++) fn(i);
    return;
  }
  for (u64 i = begin; i < end; i++) {
    pool->Submit([i, &fn] { fn(i); });
  }
  pool->Wait();
}

}  // namespace btr::exec
