#include "exec/block_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/metrics.h"
#include "util/crc32c.h"

namespace btr::exec {

namespace {

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& inserts;
  obs::Counter& evictions;
  obs::Counter& bytes_evicted;
  obs::Counter& crc_rejects;
  obs::Gauge& bytes;

  static CacheMetrics& Get() {
    static CacheMetrics* m = [] {
      obs::Registry& r = obs::Registry::Get();
      return new CacheMetrics{r.GetCounter("cache.block.hits"),
                              r.GetCounter("cache.block.misses"),
                              r.GetCounter("cache.block.inserts"),
                              r.GetCounter("cache.block.evictions"),
                              r.GetCounter("cache.block.bytes_evicted"),
                              r.GetCounter("cache.block.crc_rejects"),
                              r.GetGauge("cache.block.bytes")};
    }();
    return *m;
  }
};

// (key, offset, length) folded into one map key. Object keys are
// path-like and never contain NUL, so the separator is unambiguous.
std::string CompositeKey(const std::string& key, u64 offset, u64 length) {
  std::string composite;
  composite.reserve(key.size() + 24);
  composite.append(key);
  composite.push_back('\0');
  composite.append(std::to_string(offset));
  composite.push_back('\0');
  composite.append(std::to_string(length));
  return composite;
}

}  // namespace

BlockCache::BlockCache(const BlockCacheConfig& config)
    : config_(config), shards_(std::max<u32>(1, config.shards)) {
  shard_capacity_ = std::max<u64>(1, config_.capacity_bytes / shards_.size());
}

BlockCache::Shard& BlockCache::ShardFor(const std::string& composite_key) {
  size_t h = std::hash<std::string>()(composite_key);
  return shards_[h % shards_.size()];
}

bool BlockCache::Lookup(const std::string& key, u64 offset, u64 length,
                        ByteBuffer* out) {
  Payload payload = LookupShared(key, offset, length);
  if (payload == nullptr) return false;
  out->Clear();
  out->Append(payload->data(), payload->size());
  return true;
}

BlockCache::Payload BlockCache::LookupShared(const std::string& key,
                                             u64 offset, u64 length) {
  CacheMetrics& metrics = CacheMetrics::Get();
  std::string composite = CompositeKey(key, offset, length);
  Shard& shard = ShardFor(composite);
  Payload payload;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(composite);
    if (it != shard.index.end()) {
      // Move to MRU position; iterators stay valid across splice.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      payload = it->second->payload;
    }
  }
  if (payload == nullptr) {
    metrics.misses.Add();
  } else {
    metrics.hits.Add();
  }
  return payload;
}

bool BlockCache::Insert(const std::string& key, u64 offset, u64 length,
                        const u8* data, size_t size, u32 expected_crc,
                        u32 owner) {
  CacheMetrics& metrics = CacheMetrics::Get();
  if (size == 0 || size > shard_capacity_) return false;
  // Admission gate: only bytes that match the column header's checksum
  // may be cached — a wire-corrupt GET must never become a "hit".
  if (Crc32c(data, size) != expected_crc) {
    metrics.crc_rejects.Add();
    return false;
  }
  auto owned = std::make_shared<ByteBuffer>();
  owned->Append(data, size);
  std::string composite = CompositeKey(key, offset, length);
  Shard& shard = ShardFor(composite);
  std::vector<Dropped> dropped;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(composite);
    if (it != shard.index.end()) {
      u64 old_size = it->second->payload->size();
      shard.bytes -= old_size;
      metrics.bytes.Add(-static_cast<i64>(old_size));
      if (it->second->owner != 0) {
        dropped.push_back(Dropped{it->second->owner, old_size});
      }
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.lru.push_front(Entry{composite, std::move(owned), owner});
    shard.index[composite] = shard.lru.begin();
    shard.bytes += size;
    metrics.bytes.Add(static_cast<i64>(size));
    metrics.inserts.Add();
    EvictLocked(&shard, &dropped);
  }
  NotifyDropped(dropped);
  return true;
}

void BlockCache::Erase(const std::string& key, u64 offset, u64 length) {
  CacheMetrics& metrics = CacheMetrics::Get();
  std::string composite = CompositeKey(key, offset, length);
  Shard& shard = ShardFor(composite);
  std::vector<Dropped> dropped;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(composite);
    if (it == shard.index.end()) return;
    u64 old_size = it->second->payload->size();
    shard.bytes -= old_size;
    metrics.bytes.Add(-static_cast<i64>(old_size));
    if (it->second->owner != 0) {
      dropped.push_back(Dropped{it->second->owner, old_size});
    }
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  NotifyDropped(dropped);
}

void BlockCache::EvictLocked(Shard* shard, std::vector<Dropped>* dropped) {
  CacheMetrics& metrics = CacheMetrics::Get();
  while (shard->bytes > shard_capacity_ && !shard->lru.empty()) {
    Entry& victim = shard->lru.back();
    u64 victim_size = victim.payload->size();
    shard->bytes -= victim_size;
    metrics.bytes.Add(-static_cast<i64>(victim_size));
    metrics.bytes_evicted.Add(victim_size);
    if (victim.owner != 0) {
      dropped->push_back(Dropped{victim.owner, victim_size});
    }
    shard->index.erase(victim.composite_key);
    shard->lru.pop_back();
    metrics.evictions.Add();
  }
}

void BlockCache::NotifyDropped(const std::vector<Dropped>& dropped) {
  if (!eviction_callback_ || dropped.empty()) return;
  for (const Dropped& d : dropped) {
    eviction_callback_(d.owner, d.bytes);
  }
}

BlockCache::Stats BlockCache::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.bytes += shard.bytes;
    stats.entries += shard.lru.size();
  }
  // Process-wide counters: meaningful when one cache dominates (the
  // scanner's), indicative otherwise.
  CacheMetrics& metrics = CacheMetrics::Get();
  stats.hits = metrics.hits.Value();
  stats.misses = metrics.misses.Value();
  stats.inserts = metrics.inserts.Value();
  stats.evictions = metrics.evictions.Value();
  stats.bytes_evicted = metrics.bytes_evicted.Value();
  stats.crc_rejects = metrics.crc_rejects.Value();
  return stats;
}

}  // namespace btr::exec
