#include "datagen/archetypes.h"

#include <cmath>

#include "util/random.h"

namespace btr::datagen {

const char* IntArchetypeName(IntArchetype a) {
  switch (a) {
    case IntArchetype::kAllZero: return "all_zero";
    case IntArchetype::kSequential: return "sequential";
    case IntArchetype::kForeignKeyRuns: return "fk_runs";
    case IntArchetype::kSupplyAmounts: return "supply_amounts";
    case IntArchetype::kSevenDigitCodes: return "seven_digit_codes";
    case IntArchetype::kSkewedCategory: return "skewed_category";
    case IntArchetype::kSegmented: return "segmented";
  }
  return "unknown";
}

const char* DoubleArchetypeName(DoubleArchetype a) {
  switch (a) {
    case DoubleArchetype::kZeroDominant: return "zero_dominant";
    case DoubleArchetype::kPrice2Decimals: return "price_2dec";
    case DoubleArchetype::kPriceRuns: return "price_runs";
    case DoubleArchetype::kFrequencyTail: return "frequency_tail";
    case DoubleArchetype::kCoordinates: return "coordinates";
    case DoubleArchetype::kMixedWithNulls: return "mixed_nulls";
    case DoubleArchetype::kSegmented: return "segmented";
  }
  return "unknown";
}

const char* StringArchetypeName(StringArchetype a) {
  switch (a) {
    case StringArchetype::kOneValue: return "one_value";
    case StringArchetype::kNullHeavy: return "null_heavy";
    case StringArchetype::kLowCardinality: return "low_cardinality";
    case StringArchetype::kCityNames: return "city_names";
    case StringArchetype::kStreetAddresses: return "street_addresses";
    case StringArchetype::kUrls: return "urls";
    case StringArchetype::kCategoryRuns: return "category_runs";
    case StringArchetype::kSegmented: return "segmented";
  }
  return "unknown";
}

std::vector<i32> MakeInts(IntArchetype archetype, u32 rows, u64 seed) {
  Random rng(seed ^ 0x1111);
  std::vector<i32> v;
  v.reserve(rows);
  switch (archetype) {
    case IntArchetype::kAllZero:
      v.assign(rows, 0);
      break;
    case IntArchetype::kSequential:
      for (u32 i = 0; i < rows; i++) v.push_back(static_cast<i32>(i + 1));
      break;
    case IntArchetype::kForeignKeyRuns: {
      // Denormalized join output: each key repeats for its join fan-out.
      while (v.size() < rows) {
        i32 key = static_cast<i32>(rng.NextBounded(50000));
        u64 fanout = 1 + rng.NextZipf(40, 1.1);
        for (u64 i = 0; i < fanout && v.size() < rows; i++) v.push_back(key);
      }
      break;
    }
    case IntArchetype::kSupplyAmounts:
      for (u32 i = 0; i < rows; i++) {
        // Log-uniform amounts: 1 .. ~30000, like day-supply counts.
        double magnitude = rng.NextDouble() * 4.5;
        v.push_back(static_cast<i32>(std::pow(10.0, magnitude)));
      }
      break;
    case IntArchetype::kSevenDigitCodes: {
      // A few hundred distinct 7-digit administrative codes.
      std::vector<i32> codes;
      for (int i = 0; i < 400; i++) {
        codes.push_back(1000000 + static_cast<i32>(rng.NextBounded(9000000)));
      }
      for (u32 i = 0; i < rows; i++) {
        v.push_back(codes[rng.NextZipf(codes.size(), 1.1)]);
      }
      break;
    }
    case IntArchetype::kSkewedCategory:
      for (u32 i = 0; i < rows; i++) {
        // ~80% the dominant category, exponentially less for the rest.
        v.push_back(rng.NextBounded(5) != 0
                        ? 1
                        : static_cast<i32>(2 + rng.NextZipf(500, 1.5)));
      }
      break;
    case IntArchetype::kSegmented: {
      // Alternating ~6k-value segments: long runs, then near-unique noise.
      // Data like this is why the sample must cover the whole block while
      // preserving locality (paper Figure 2).
      bool runs = true;
      while (v.size() < rows) {
        u32 segment = 4000 + static_cast<u32>(rng.NextBounded(4000));
        for (u32 i = 0; i < segment && v.size() < rows;) {
          if (runs) {
            i32 value = static_cast<i32>(rng.NextBounded(100));
            u32 run = 30 + static_cast<u32>(rng.NextBounded(200));
            for (u32 j = 0; j < run && i < segment && v.size() < rows; j++, i++) {
              v.push_back(value);
            }
          } else {
            v.push_back(static_cast<i32>(rng.Next() & 0xFFFFF));
            i++;
          }
        }
        runs = !runs;
      }
      break;
    }
  }
  return v;
}

std::vector<double> MakeDoubles(DoubleArchetype archetype, u32 rows, u64 seed) {
  Random rng(seed ^ 0x2222);
  std::vector<double> v;
  v.reserve(rows);
  switch (archetype) {
    case DoubleArchetype::kZeroDominant:
      for (u32 i = 0; i < rows; i++) {
        v.push_back(rng.NextBounded(20) == 0
                        ? static_cast<double>(rng.NextBounded(5000)) / 100.0
                        : 0.0);
      }
      break;
    case DoubleArchetype::kPrice2Decimals:
      for (u32 i = 0; i < rows; i++) {
        v.push_back(static_cast<double>(rng.NextBounded(100000)) / 100.0);
      }
      break;
    case DoubleArchetype::kPriceRuns: {
      while (v.size() < rows) {
        double price = static_cast<double>(rng.NextBounded(10000)) / 100.0;
        u64 run = 1 + rng.NextZipf(30, 1.2);
        for (u64 i = 0; i < run && v.size() < rows; i++) v.push_back(price);
      }
      break;
    }
    case DoubleArchetype::kFrequencyTail: {
      const double dominant = 83.2833;
      for (u32 i = 0; i < rows; i++) {
        v.push_back(rng.NextBounded(4) != 0
                        ? dominant
                        : static_cast<double>(rng.NextBounded(100000)) / 1000.0);
      }
      break;
    }
    case DoubleArchetype::kCoordinates:
      for (u32 i = 0; i < rows; i++) {
        v.push_back(-74.0 + rng.NextDouble() * 0.5);  // NYC-ish longitudes
      }
      break;
    case DoubleArchetype::kMixedWithNulls:
      // NULL handling lives in FillDouble; the raw array mixes a few
      // round percentages with higher-precision deltas.
      for (u32 i = 0; i < rows; i++) {
        if (rng.NextBounded(3) == 0) {
          v.push_back(0.0);
        } else if (rng.NextBounded(2) == 0) {
          v.push_back(static_cast<double>(rng.NextRange(-500, 500)) / 10.0);
        } else {
          v.push_back(rng.NextDouble() * 2.0 - 1.0);
        }
      }
      break;
    case DoubleArchetype::kSegmented: {
      bool constant = true;
      while (v.size() < rows) {
        u32 segment = 4000 + static_cast<u32>(rng.NextBounded(4000));
        if (constant) {
          double value = static_cast<double>(rng.NextBounded(500)) / 10.0;
          for (u32 i = 0; i < segment && v.size() < rows; i++) v.push_back(value);
        } else {
          for (u32 i = 0; i < segment && v.size() < rows; i++) {
            v.push_back(rng.NextDouble() * 1e6);
          }
        }
        constant = !constant;
      }
      break;
    }
  }
  return v;
}

void FillInt(Column* column, IntArchetype archetype, u32 rows, u64 seed) {
  for (i32 v : MakeInts(archetype, rows, seed)) column->AppendInt(v);
}

void FillDouble(Column* column, DoubleArchetype archetype, u32 rows, u64 seed) {
  std::vector<double> values = MakeDoubles(archetype, rows, seed);
  Random rng(seed ^ 0x3333);
  bool nullable = archetype == DoubleArchetype::kMixedWithNulls;
  for (double v : values) {
    if (nullable && rng.NextBounded(3) == 0) {
      column->AppendNull();
    } else {
      column->AppendDouble(v);
    }
  }
}

namespace {

std::string MakeUrl(Random* rng) {
  static const char* hosts[] = {"https://data.example.org",
                                "https://public.tableau.com",
                                "https://www.cityofnewyork.us"};
  static const char* paths[] = {"/views/", "/workbooks/", "/api/v1/items/"};
  return std::string(hosts[rng->NextBounded(3)]) + paths[rng->NextBounded(3)] +
         std::to_string(rng->NextBounded(100000));
}

std::string MakeAddress(Random* rng) {
  static const char* streets[] = {"E MAYO BLVD", "W 42ND ST", "N MAIN ST",
                                  "PEACHTREE RD", "SUNSET BLVD", "OAK AVE"};
  static const char* suffixes[] = {"", " APT 1", " STE 200", " UNIT B"};
  return std::to_string(100 + rng->NextBounded(9900)) + " " +
         streets[rng->NextBounded(6)] + suffixes[rng->NextBounded(4)];
}

}  // namespace

void FillString(Column* column, StringArchetype archetype, u32 rows, u64 seed) {
  Random rng(seed ^ 0x4444);
  static const char* cities[] = {"01 BRONX",  "04 BRONX",   "PHOENIX",
                                 "RALEIGH",   "BETHESDA",   "ATHENS",
                                 "Curitiba",  "Macei\xc3\xb3", "SEATTLE",
                                 "02 QUEENS", "05 BROOKLYN", "PORTLAND"};
  static const char* categories[] = {"All Residential", "Condo/Co-op",
                                     "Single Family Residential",
                                     "Townhouse", "Multi-Family (2-4 Unit)"};
  switch (archetype) {
    case StringArchetype::kOneValue:
      for (u32 i = 0; i < rows; i++) column->AppendString("CABLE,CABLE");
      break;
    case StringArchetype::kNullHeavy:
      for (u32 i = 0; i < rows; i++) {
        if (rng.NextBounded(10) < 8) {
          column->AppendString("null");
        } else {
          column->AppendString("LIBDOM" + std::to_string(rng.NextBounded(30)));
        }
      }
      break;
    case StringArchetype::kLowCardinality:
      for (u32 i = 0; i < rows; i++) {
        column->AppendString(categories[rng.NextZipf(5, 1.3)]);
      }
      break;
    case StringArchetype::kCityNames:
      for (u32 i = 0; i < rows; i++) {
        column->AppendString(cities[rng.NextZipf(12, 1.1)]);
      }
      break;
    case StringArchetype::kStreetAddresses:
      for (u32 i = 0; i < rows; i++) {
        std::string addr = MakeAddress(&rng);
        column->AppendString(addr);
      }
      break;
    case StringArchetype::kUrls:
      for (u32 i = 0; i < rows; i++) {
        std::string url = MakeUrl(&rng);
        column->AppendString(url);
      }
      break;
    case StringArchetype::kCategoryRuns: {
      u32 added = 0;
      while (added < rows) {
        const char* value = categories[rng.NextBounded(5)];
        u64 run = 2 + rng.NextZipf(60, 1.1);
        for (u64 i = 0; i < run && added < rows; i++, added++) {
          column->AppendString(value);
        }
      }
      break;
    }
    case StringArchetype::kSegmented: {
      u32 added = 0;
      bool constant = true;
      while (added < rows) {
        u32 segment = 4000 + static_cast<u32>(rng.NextBounded(4000));
        if (constant) {
          const char* value = categories[rng.NextBounded(5)];
          for (u32 i = 0; i < segment && added < rows; i++, added++) {
            column->AppendString(value);
          }
        } else {
          for (u32 i = 0; i < segment && added < rows; i++, added++) {
            std::string s = MakeAddress(&rng) + "#" + std::to_string(rng.Next() & 0xFFFFF);
            column->AppendString(s);
          }
        }
        constant = !constant;
      }
      break;
    }
  }
}

}  // namespace btr::datagen
