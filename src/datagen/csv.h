// Minimal CSV I/O for the Section 6.4 compression-speed experiment
// (compression measured "from CSV" and "from binary"). Values are
// separated by '|' (dbgen style) so no quoting is needed; NULLs are empty
// fields.
#ifndef BTR_DATAGEN_CSV_H_
#define BTR_DATAGEN_CSV_H_

#include <string>
#include <vector>

#include "btr/relation.h"
#include "util/status.h"

namespace btr::datagen {

// Serializes the relation; first line is "name:type" headers.
std::string WriteCsv(const Relation& relation);
Status WriteCsvFile(const Relation& relation, const std::string& path);

// Parses what WriteCsv produced (schema taken from the header line).
Status ReadCsv(const std::string& text, Relation* out);
Status ReadCsvFile(const std::string& path, const std::string& table_name,
                   Relation* out);

}  // namespace btr::datagen

#endif  // BTR_DATAGEN_CSV_H_
