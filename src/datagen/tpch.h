// TPC-H-like data generator (paper Section 6.1): normalized tables with
// unique/foreign integer keys, uniform price doubles, and comment strings
// sampled from a random word pool — the synthetic shape the paper
// contrasts with the Public BI Benchmark (few runs, weak string structure,
// poor integer compressibility).
#ifndef BTR_DATAGEN_TPCH_H_
#define BTR_DATAGEN_TPCH_H_

#include "btr/relation.h"

namespace btr::datagen {

struct TpchOptions {
  // Rows of lineitem; other tables scale from it (orders = rows / 4).
  u32 lineitem_rows = 600000;
  u64 seed = 19920601;
};

Relation MakeLineitem(const TpchOptions& options);
Relation MakeOrders(const TpchOptions& options);

// lineitem + orders, the two largest tables dominating the data volume.
std::vector<Relation> MakeTpchCorpus(const TpchOptions& options);

}  // namespace btr::datagen

#endif  // BTR_DATAGEN_TPCH_H_
