// Synthetic column archetypes replicating the Public BI Benchmark's
// distribution families (paper Section 6.1, Table 4). The real 119.5 GB
// corpus is not available offline; these archetypes preserve the decision
// problems the scheme selector faces: long runs from denormalized joins,
// dominant-value skew, low- and high-cardinality structured strings,
// decimal-like prices stored as doubles, high-precision coordinates, and
// heavy NULLs.
#ifndef BTR_DATAGEN_ARCHETYPES_H_
#define BTR_DATAGEN_ARCHETYPES_H_

#include <string>
#include <vector>

#include "btr/column.h"

namespace btr::datagen {

enum class IntArchetype {
  kAllZero,        // "RealEstate1/New Build?": one value (paper Table 4)
  kSequential,     // dense ids
  kForeignKeyRuns, // denormalized join keys: runs + repeats (paper 6.1)
  kSupplyAmounts,  // wide-range amounts, FastPFOR territory
  kSevenDigitCodes,// "cod_ibge_da_ue": 7-digit admin codes
  kSkewedCategory, // one dominant category + exponential tail (Frequency)
  kSegmented,      // alternating run-heavy and noisy segments: the case
                   // where sampling strategy matters (paper Section 3.1)
};
inline constexpr IntArchetype kAllIntArchetypes[] = {
    IntArchetype::kAllZero,         IntArchetype::kSequential,
    IntArchetype::kForeignKeyRuns,  IntArchetype::kSupplyAmounts,
    IntArchetype::kSevenDigitCodes, IntArchetype::kSkewedCategory,
    IntArchetype::kSegmented};

enum class DoubleArchetype {
  kZeroDominant,   // "Telco/CHARGD_SMS_P3": mostly 0 (paper Table 4)
  kPrice2Decimals, // price data, PDE's favorable case (paper Section 4)
  kPriceRuns,      // prices with runs (denormalized)
  kFrequencyTail,  // dominant value + exceptions (Frequency)
  kCoordinates,    // high-precision longitudes: nearly incompressible
  kMixedWithNulls, // "median_sale_price_mom": many NULLs, low ratio
  kSegmented,      // alternating constant and high-precision segments
};
inline constexpr DoubleArchetype kAllDoubleArchetypes[] = {
    DoubleArchetype::kZeroDominant,  DoubleArchetype::kPrice2Decimals,
    DoubleArchetype::kPriceRuns,     DoubleArchetype::kFrequencyTail,
    DoubleArchetype::kCoordinates,   DoubleArchetype::kMixedWithNulls,
    DoubleArchetype::kSegmented};

enum class StringArchetype {
  kOneValue,       // "Motos/Medio": single value (paper Table 4)
  kNullHeavy,      // the literal string "null" proliferating
  kLowCardinality, // property types / categories, dictionary-friendly
  kCityNames,      // "01 BRONX": structured, Dict+FSST
  kStreetAddresses,// "5777 E MAYO BLVD": many distinct structured strings
  kUrls,           // common-prefix URLs (paper Section 6.1)
  kCategoryRuns,   // low-cardinality with long runs (fused RLE+Dict case)
  kSegmented,      // constant region followed by high-cardinality region
};
inline constexpr StringArchetype kAllStringArchetypes[] = {
    StringArchetype::kOneValue,        StringArchetype::kNullHeavy,
    StringArchetype::kLowCardinality,  StringArchetype::kCityNames,
    StringArchetype::kStreetAddresses, StringArchetype::kUrls,
    StringArchetype::kCategoryRuns,    StringArchetype::kSegmented};

const char* IntArchetypeName(IntArchetype a);
const char* DoubleArchetypeName(DoubleArchetype a);
const char* StringArchetypeName(StringArchetype a);

// Fill `column` (of matching type) with `rows` archetype values.
void FillInt(Column* column, IntArchetype archetype, u32 rows, u64 seed);
void FillDouble(Column* column, DoubleArchetype archetype, u32 rows, u64 seed);
void FillString(Column* column, StringArchetype archetype, u32 rows, u64 seed);

// Convenience: a fresh single-column vector<double>/vector<i32> without a
// Column wrapper (Table 3 / Section 6.5 benches operate on raw arrays).
std::vector<double> MakeDoubles(DoubleArchetype archetype, u32 rows, u64 seed);
std::vector<i32> MakeInts(IntArchetype archetype, u32 rows, u64 seed);

}  // namespace btr::datagen

#endif  // BTR_DATAGEN_ARCHETYPES_H_
