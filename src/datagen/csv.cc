#include "datagen/csv.h"

#include <charconv>
#include <cstdio>
#include <cstring>

namespace btr::datagen {

namespace {
constexpr char kSep = '|';

const char* TypeTag(ColumnType type) {
  switch (type) {
    case ColumnType::kInteger: return "int";
    case ColumnType::kDouble: return "double";
    case ColumnType::kString: return "string";
  }
  return "?";
}

Status ParseTypeTag(std::string_view tag, ColumnType* out) {
  if (tag == "int") {
    *out = ColumnType::kInteger;
  } else if (tag == "double") {
    *out = ColumnType::kDouble;
  } else if (tag == "string") {
    *out = ColumnType::kString;
  } else {
    return Status::InvalidArgument("unknown type tag: " + std::string(tag));
  }
  return Status::Ok();
}

}  // namespace

std::string WriteCsv(const Relation& relation) {
  std::string out;
  // Header.
  bool first = true;
  for (const Column& column : relation.columns()) {
    if (!first) out.push_back(kSep);
    first = false;
    out += column.name();
    out.push_back(':');
    out += TypeTag(column.type());
  }
  out.push_back('\n');
  // Rows.
  char scratch[64];
  for (u32 r = 0; r < relation.row_count(); r++) {
    first = true;
    for (const Column& column : relation.columns()) {
      if (!first) out.push_back(kSep);
      first = false;
      if (column.IsNull(r)) continue;  // empty field = NULL
      switch (column.type()) {
        case ColumnType::kInteger: {
          auto [end, ec] = std::to_chars(scratch, scratch + sizeof(scratch),
                                         column.ints()[r]);
          out.append(scratch, end);
          break;
        }
        case ColumnType::kDouble: {
          // %.17g survives the round trip bitwise for finite values.
          int n = std::snprintf(scratch, sizeof(scratch), "%.17g",
                                column.doubles()[r]);
          out.append(scratch, n);
          break;
        }
        case ColumnType::kString: {
          std::string_view s = column.GetString(r);
          out.append(s.data(), s.size());
          break;
        }
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Relation& relation, const std::string& path) {
  std::string text = WriteCsv(relation);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IoError("short write");
  return Status::Ok();
}

Status ReadCsv(const std::string& text, Relation* out) {
  size_t pos = 0;
  auto next_line = [&](std::string_view* line) {
    if (pos >= text.size()) return false;
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    *line = std::string_view(text).substr(pos, end - pos);
    pos = end + 1;
    return true;
  };

  std::string_view header;
  if (!next_line(&header)) return Status::InvalidArgument("empty csv");
  std::vector<Column*> columns;
  size_t field_start = 0;
  while (field_start <= header.size()) {
    size_t field_end = header.find(kSep, field_start);
    if (field_end == std::string_view::npos) field_end = header.size();
    std::string_view field = header.substr(field_start, field_end - field_start);
    size_t colon = field.rfind(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("header field without type tag");
    }
    ColumnType type;
    BTR_RETURN_IF_ERROR(ParseTypeTag(field.substr(colon + 1), &type));
    columns.push_back(
        &out->AddColumn(std::string(field.substr(0, colon)), type));
    field_start = field_end + 1;
    if (field_end == header.size()) break;
  }

  std::string_view line;
  while (next_line(&line)) {
    size_t start = 0;
    for (size_t c = 0; c < columns.size(); c++) {
      size_t end = line.find(kSep, start);
      if (end == std::string_view::npos) end = line.size();
      std::string_view field = line.substr(start, end - start);
      Column* column = columns[c];
      if (field.empty() && column->type() != ColumnType::kString) {
        column->AppendNull();
      } else {
        switch (column->type()) {
          case ColumnType::kInteger: {
            i32 value = 0;
            auto [p, ec] =
                std::from_chars(field.data(), field.data() + field.size(), value);
            if (ec != std::errc()) {
              return Status::InvalidArgument("bad int field");
            }
            column->AppendInt(value);
            break;
          }
          case ColumnType::kDouble: {
            double value = 0;
            auto [p, ec] =
                std::from_chars(field.data(), field.data() + field.size(), value);
            if (ec != std::errc()) {
              return Status::InvalidArgument("bad double field");
            }
            column->AppendDouble(value);
            break;
          }
          case ColumnType::kString:
            column->AppendString(field);
            break;
        }
      }
      start = end + 1;
      if (end == line.size()) break;
    }
  }
  return Status::Ok();
}

Status ReadCsvFile(const std::string& path, const std::string& table_name,
                   Relation* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string text(static_cast<size_t>(size), 0);
  size_t read = std::fread(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (read != text.size()) return Status::IoError("short read");
  *out = Relation(table_name);
  return ReadCsv(text, out);
}

}  // namespace btr::datagen
