#include "datagen/tpch.h"

#include <iterator>
#include <string>

#include "util/random.h"

namespace btr::datagen {

namespace {

// dbgen-style comment: random words from a fixed vocabulary, weakly
// structured (the paper notes TPC-H comments are "random samples from a
// pool of test data" and compress far worse than real-world strings).
const char* kWords[] = {
    "furiously", "carefully", "express",  "pending",  "regular", "ironic",
    "deposits",  "accounts",  "packages", "requests", "theodolites", "pinto",
    "beans",     "foxes",     "instructions", "dependencies", "platelets",
    "sometimes", "blithely",  "quickly",  "final",    "bold",    "silent",
    "unusual",   "even",      "special",  "sly"};

std::string MakeComment(Random* rng, u32 min_words, u32 max_words) {
  std::string comment;
  u32 words = min_words + static_cast<u32>(
                              rng->NextBounded(max_words - min_words + 1));
  for (u32 w = 0; w < words; w++) {
    if (w > 0) comment.push_back(' ');
    comment += kWords[rng->NextBounded(std::size(kWords))];
    // dbgen's grammar yields far more variety than a word list; emulate
    // with occasional random tokens so comments stay weakly compressible.
    if (rng->NextBounded(3) == 0) {
      comment.push_back(' ');
      u32 len = 3 + static_cast<u32>(rng->NextBounded(6));
      for (u32 i = 0; i < len; i++) {
        comment.push_back(static_cast<char>('a' + rng->NextBounded(26)));
      }
    }
  }
  return comment;
}

double Cents(Random* rng, u64 max_cents) {
  return static_cast<double>(rng->NextBounded(max_cents)) / 100.0;
}

}  // namespace

Relation MakeLineitem(const TpchOptions& options) {
  Random rng(options.seed);
  Relation relation("lineitem");
  Column& orderkey = relation.AddColumn("l_orderkey", ColumnType::kInteger);
  Column& partkey = relation.AddColumn("l_partkey", ColumnType::kInteger);
  Column& suppkey = relation.AddColumn("l_suppkey", ColumnType::kInteger);
  Column& linenumber = relation.AddColumn("l_linenumber", ColumnType::kInteger);
  Column& quantity = relation.AddColumn("l_quantity", ColumnType::kDouble);
  Column& extendedprice =
      relation.AddColumn("l_extendedprice", ColumnType::kDouble);
  Column& discount = relation.AddColumn("l_discount", ColumnType::kDouble);
  Column& tax = relation.AddColumn("l_tax", ColumnType::kDouble);
  Column& returnflag = relation.AddColumn("l_returnflag", ColumnType::kString);
  Column& linestatus = relation.AddColumn("l_linestatus", ColumnType::kString);
  Column& shipdate = relation.AddColumn("l_shipdate", ColumnType::kInteger);
  Column& shipinstruct =
      relation.AddColumn("l_shipinstruct", ColumnType::kString);
  Column& shipmode = relation.AddColumn("l_shipmode", ColumnType::kString);
  Column& comment = relation.AddColumn("l_comment", ColumnType::kString);

  static const char* kReturnFlags[] = {"R", "A", "N"};
  static const char* kLineStatus[] = {"O", "F"};
  static const char* kInstruct[] = {"DELIVER IN PERSON", "COLLECT COD",
                                    "NONE", "TAKE BACK RETURN"};
  static const char* kModes[] = {"TRUCK", "MAIL", "SHIP", "AIR", "REG AIR",
                                 "FOB", "RAIL"};

  u32 order = 1;
  u32 rows = 0;
  while (rows < options.lineitem_rows) {
    u32 lines = 1 + static_cast<u32>(rng.NextBounded(7));
    for (u32 l = 0; l < lines && rows < options.lineitem_rows; l++, rows++) {
      orderkey.AppendInt(static_cast<i32>(order));
      partkey.AppendInt(static_cast<i32>(1 + rng.NextBounded(200000)));
      suppkey.AppendInt(static_cast<i32>(1 + rng.NextBounded(10000)));
      linenumber.AppendInt(static_cast<i32>(l + 1));
      quantity.AppendDouble(static_cast<double>(1 + rng.NextBounded(50)));
      extendedprice.AppendDouble(Cents(&rng, 10000000));
      discount.AppendDouble(static_cast<double>(rng.NextBounded(11)) / 100.0);
      tax.AppendDouble(static_cast<double>(rng.NextBounded(9)) / 100.0);
      returnflag.AppendString(kReturnFlags[rng.NextBounded(3)]);
      linestatus.AppendString(kLineStatus[rng.NextBounded(2)]);
      shipdate.AppendInt(static_cast<i32>(8035 + rng.NextBounded(2557)));
      shipinstruct.AppendString(kInstruct[rng.NextBounded(4)]);
      shipmode.AppendString(kModes[rng.NextBounded(7)]);
      std::string text = MakeComment(&rng, 3, 7);
      comment.AppendString(text);
    }
    order += 1 + static_cast<u32>(rng.NextBounded(3));  // sparse orderkeys
  }
  return relation;
}

Relation MakeOrders(const TpchOptions& options) {
  Random rng(options.seed * 31);
  Relation relation("orders");
  u32 rows = options.lineitem_rows / 4;
  Column& orderkey = relation.AddColumn("o_orderkey", ColumnType::kInteger);
  Column& custkey = relation.AddColumn("o_custkey", ColumnType::kInteger);
  Column& orderstatus = relation.AddColumn("o_orderstatus", ColumnType::kString);
  Column& totalprice = relation.AddColumn("o_totalprice", ColumnType::kDouble);
  Column& orderdate = relation.AddColumn("o_orderdate", ColumnType::kInteger);
  Column& orderpriority =
      relation.AddColumn("o_orderpriority", ColumnType::kString);
  Column& clerk = relation.AddColumn("o_clerk", ColumnType::kString);
  Column& comment = relation.AddColumn("o_comment", ColumnType::kString);

  static const char* kStatus[] = {"O", "F", "P"};
  static const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                      "4-NOT SPECIFIED", "5-LOW"};
  for (u32 i = 0; i < rows; i++) {
    orderkey.AppendInt(static_cast<i32>(i * 4 + 1));
    custkey.AppendInt(static_cast<i32>(1 + rng.NextBounded(150000)));
    orderstatus.AppendString(kStatus[rng.NextBounded(3)]);
    totalprice.AppendDouble(Cents(&rng, 50000000));
    orderdate.AppendInt(static_cast<i32>(8035 + rng.NextBounded(2400)));
    orderpriority.AppendString(kPriorities[rng.NextBounded(5)]);
    std::string clerk_name = "Clerk#" + std::to_string(rng.NextBounded(1000));
    clerk.AppendString(clerk_name);
    std::string text = MakeComment(&rng, 5, 12);
    comment.AppendString(text);
  }
  return relation;
}

std::vector<Relation> MakeTpchCorpus(const TpchOptions& options) {
  std::vector<Relation> corpus;
  corpus.push_back(MakeLineitem(options));
  corpus.push_back(MakeOrders(options));
  return corpus;
}

}  // namespace btr::datagen
