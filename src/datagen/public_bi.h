// Synthetic Public-BI-like corpus (paper Section 6.1): a set of tables
// whose column mix approximates the benchmark's type-volume shares
// (~71.5% strings, ~14.4% doubles, ~14.1% integers) and whose columns are
// drawn from the archetype families in datagen/archetypes.h.
#ifndef BTR_DATAGEN_PUBLIC_BI_H_
#define BTR_DATAGEN_PUBLIC_BI_H_

#include <vector>

#include "btr/relation.h"
#include "datagen/archetypes.h"

namespace btr::datagen {

struct PublicBiOptions {
  u32 tables = 5;
  u32 rows_per_table = 256000;  // 4 blocks per column
  u64 seed = 2023;
};

// One table mixing archetypes deterministically by (seed, index).
Relation MakePublicBiTable(const std::string& name, u32 rows, u64 seed);

// The corpus the evaluation harnesses use ("the five largest datasets").
std::vector<Relation> MakePublicBiCorpus(const PublicBiOptions& options);

}  // namespace btr::datagen

#endif  // BTR_DATAGEN_PUBLIC_BI_H_
