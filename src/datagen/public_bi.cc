#include "datagen/public_bi.h"

#include <iterator>

#include "util/random.h"

namespace btr::datagen {

Relation MakePublicBiTable(const std::string& name, u32 rows, u64 seed) {
  Relation relation(name);
  Random rng(seed);
  // Column plan per table: 8 strings, 3 doubles, 3 ints. With typical
  // value widths this lands near the paper's by-volume type shares.
  constexpr u32 kStringColumns = 8;
  constexpr u32 kDoubleColumns = 3;
  constexpr u32 kIntColumns = 3;
  for (u32 c = 0; c < kStringColumns; c++) {
    StringArchetype archetype =
        kAllStringArchetypes[rng.NextBounded(std::size(kAllStringArchetypes))];
    Column& column = relation.AddColumn(
        std::string("s_") + StringArchetypeName(archetype) + "_" +
            std::to_string(c),
        ColumnType::kString);
    FillString(&column, archetype, rows, seed * 131 + c);
  }
  for (u32 c = 0; c < kDoubleColumns; c++) {
    DoubleArchetype archetype =
        kAllDoubleArchetypes[rng.NextBounded(std::size(kAllDoubleArchetypes))];
    Column& column = relation.AddColumn(
        std::string("d_") + DoubleArchetypeName(archetype) + "_" +
            std::to_string(c),
        ColumnType::kDouble);
    FillDouble(&column, archetype, rows, seed * 137 + c);
  }
  for (u32 c = 0; c < kIntColumns; c++) {
    IntArchetype archetype =
        kAllIntArchetypes[rng.NextBounded(std::size(kAllIntArchetypes))];
    Column& column = relation.AddColumn(
        std::string("i_") + IntArchetypeName(archetype) + "_" +
            std::to_string(c),
        ColumnType::kInteger);
    FillInt(&column, archetype, rows, seed * 139 + c);
  }
  return relation;
}

std::vector<Relation> MakePublicBiCorpus(const PublicBiOptions& options) {
  std::vector<Relation> corpus;
  corpus.reserve(options.tables);
  for (u32 t = 0; t < options.tables; t++) {
    corpus.push_back(MakePublicBiTable("pbi_table_" + std::to_string(t),
                                       options.rows_per_table,
                                       options.seed + t * 7919));
  }
  return corpus;
}

}  // namespace btr::datagen
