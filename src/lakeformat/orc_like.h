// ORC-like baseline file format (paper Sections 2.1 and 6.6).
//
// Mirrors the parts of Apache ORC the evaluation touches:
//   - stripes of rows (ORC's rowgroup equivalent),
//   - RLEv2-style integer encoding with REPEAT / DELTA / DIRECT windows
//     (zigzag + bit-packing),
//   - string dictionary encoding gated by dictionary_key_size_threshold
//     (the paper sets Hive's default 0.8: dictionary only when the number
//     of distinct keys is at most 0.8x the number of values),
//   - per-stream general-purpose compression,
//   - metadata footer at the end of the file.
#ifndef BTR_LAKEFORMAT_ORC_LIKE_H_
#define BTR_LAKEFORMAT_ORC_LIKE_H_

#include "btr/relation.h"
#include "gpc/codec.h"
#include "util/status.h"

namespace btr::lakeformat {

struct OrcOptions {
  u32 stripe_rows = 1u << 16;
  gpc::CodecKind codec = gpc::CodecKind::kNone;
  double dictionary_key_size_threshold = 0.8;
};

ByteBuffer WriteOrcLike(const Relation& relation, const OrcOptions& options);

// Decode-everything scan path. On success stores the logical value bytes
// produced in *bytes; a corrupt file yields Status::Corruption instead of
// aborting.
Status DecodeOrcLikeBytes(const u8* data, size_t size, u64* bytes);

// Full materialization (round-trip tests).
Status ReadOrcLike(const u8* data, size_t size, Relation* out);

// --- building blocks exposed for tests -------------------------------------

// RLEv2-style integer stream codec.
void OrcIntEncode(const i64* values, u32 count, ByteBuffer* out);
void OrcIntDecode(const u8* data, u32 count, i64* out);

}  // namespace btr::lakeformat

#endif  // BTR_LAKEFORMAT_ORC_LIKE_H_
