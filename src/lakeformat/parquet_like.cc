#include "lakeformat/parquet_like.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "bitmap/roaring.h"
#include "util/bits.h"

namespace btr::lakeformat {

namespace {

constexpr char kMagic[4] = {'P', 'Q', 'L', '1'};

enum class Encoding : u8 { kPlain = 0, kDictionary = 1 };

// --- varint ----------------------------------------------------------------
void PutVarint(u64 v, ByteBuffer* out) {
  while (v >= 0x80) {
    out->AppendValue<u8>(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  out->AppendValue<u8>(static_cast<u8>(v));
}

u64 GetVarint(const u8*& p) {
  u64 v = 0;
  u32 shift = 0;
  while (true) {
    u8 byte = *p++;
    v |= static_cast<u64>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

}  // namespace

// --- RLE / bit-packed hybrid --------------------------------------------------

void HybridEncode(const u32* values, u32 count, u32 bit_width, ByteBuffer* out) {
  if (bit_width == 0) return;  // single dict entry: nothing stored
  u32 value_bytes = (bit_width + 7) / 8;
  std::vector<u32> pending;

  auto flush_pending = [&]() {
    if (pending.empty()) return;
    u32 groups = static_cast<u32>(CeilDiv(pending.size(), 8));
    pending.resize(groups * 8, 0);  // final-group padding
    PutVarint((static_cast<u64>(groups) << 1) | 1, out);
    // Bit-pack LSB-first.
    size_t offset = out->size();
    size_t packed = CeilDiv(static_cast<u64>(groups) * 8 * bit_width, 8);
    out->Resize(offset + packed);
    std::memset(out->data() + offset, 0, packed);
    u64 bit_pos = 0;
    for (u32 v : pending) {
      u64 byte = bit_pos >> 3;
      u32 shift = static_cast<u32>(bit_pos & 7);
      u64 window;
      std::memcpy(&window, out->data() + offset + byte, sizeof(u64));
      window |= static_cast<u64>(v) << shift;
      std::memcpy(out->data() + offset + byte, &window, sizeof(u64));
      bit_pos += bit_width;
    }
    pending.clear();
  };

  u32 i = 0;
  while (i < count) {
    // Measure the run at i.
    u32 run = 1;
    while (i + run < count && values[i + run] == values[i]) run++;
    if (run >= 8 && pending.size() % 8 == 0) {
      flush_pending();
      PutVarint(static_cast<u64>(run) << 1, out);
      size_t offset = out->size();
      out->Resize(offset + value_bytes);
      std::memcpy(out->data() + offset, &values[i], value_bytes);
      i += run;
    } else {
      pending.push_back(values[i]);
      i++;
    }
  }
  flush_pending();
}

void HybridDecode(const u8* data, u32 count, u32 bit_width, u32* out) {
  if (bit_width == 0) {
    std::memset(out, 0, count * sizeof(u32));
    return;
  }
  u32 value_bytes = (bit_width + 7) / 8;
  u64 mask = (bit_width == 32) ? 0xFFFFFFFFull : ((u64{1} << bit_width) - 1);
  const u8* p = data;
  u32 produced = 0;
  while (produced < count) {
    u64 header = GetVarint(p);
    if (header & 1) {
      u32 groups = static_cast<u32>(header >> 1);
      u32 available = groups * 8;
      u32 take = std::min(available, count - produced);
      u64 bit_pos = 0;
      for (u32 i = 0; i < take; i++) {
        u64 byte = bit_pos >> 3;
        u32 shift = static_cast<u32>(bit_pos & 7);
        u64 window;
        std::memcpy(&window, p + byte, sizeof(u64));
        out[produced + i] = static_cast<u32>((window >> shift) & mask);
        bit_pos += bit_width;
      }
      p += CeilDiv(static_cast<u64>(available) * bit_width, 8);
      produced += take;
    } else {
      u32 run = static_cast<u32>(header >> 1);
      u32 value = 0;
      std::memcpy(&value, p, value_bytes);
      p += value_bytes;
      u32 take = std::min(run, count - produced);
      for (u32 i = 0; i < take; i++) out[produced + i] = value;
      produced += take;
    }
  }
}

// --- chunk encoding ---------------------------------------------------------------

namespace {

struct ChunkMeta {
  u64 offset = 0;
  u32 stored_bytes = 0;  // after codec
  u32 raw_bytes = 0;     // before codec
  u32 value_count = 0;
  u8 encoding = 0;
  u8 codec = 0;
};

struct FileMeta {
  u32 row_count = 0;
  u32 rowgroup_rows = 0;
  std::vector<std::pair<std::string, ColumnType>> columns;
  std::vector<std::vector<ChunkMeta>> rowgroups;  // [rowgroup][column]
};

// Encodes one column chunk (without codec) into *out. Values for NULL rows
// are present as defaults; the null bitmap prefixes the payload.
void EncodeChunk(const Column& column, u32 begin, u32 count,
                 const ParquetOptions& options, ByteBuffer* out, u8* encoding) {
  // Null bitmap.
  RoaringBitmap nulls;
  for (u32 i = 0; i < count; i++) {
    if (column.IsNull(begin + i)) nulls.Add(i);
  }
  nulls.RunOptimize();
  if (nulls.Empty()) {
    out->AppendValue<u32>(0);
  } else {
    out->AppendValue<u32>(static_cast<u32>(nulls.SerializedSizeBytes()));
    nulls.SerializeTo(out);
  }

  switch (column.type()) {
    case ColumnType::kInteger: {
      const i32* values = column.ints().data() + begin;
      // Try dictionary (Parquet's default), fall back to PLAIN.
      std::unordered_map<i32, u32> code_of;
      std::vector<i32> dict;
      std::vector<u32> codes(count);
      bool fallback = false;
      for (u32 i = 0; i < count; i++) {
        auto [it, inserted] =
            code_of.try_emplace(values[i], static_cast<u32>(dict.size()));
        if (inserted) {
          dict.push_back(values[i]);
          if (dict.size() * sizeof(i32) > options.dict_byte_limit) {
            fallback = true;
            break;
          }
        }
        codes[i] = it->second;
      }
      if (!fallback && dict.size() < count) {
        *encoding = static_cast<u8>(Encoding::kDictionary);
        out->AppendValue<u32>(static_cast<u32>(dict.size()));
        out->AppendValue<u32>(static_cast<u32>(dict.size() * sizeof(i32)));
        out->Append(dict.data(), dict.size() * sizeof(i32));
        u32 bit_width = BitWidth(static_cast<u32>(dict.size() - 1));
        out->AppendValue<u8>(static_cast<u8>(bit_width));
        HybridEncode(codes.data(), count, bit_width, out);
      } else {
        *encoding = static_cast<u8>(Encoding::kPlain);
        out->Append(values, count * sizeof(i32));
      }
      break;
    }
    case ColumnType::kDouble: {
      const double* values = column.doubles().data() + begin;
      std::unordered_map<u64, u32> code_of;
      std::vector<double> dict;
      std::vector<u32> codes(count);
      bool fallback = false;
      for (u32 i = 0; i < count; i++) {
        u64 bits;
        std::memcpy(&bits, &values[i], 8);
        auto [it, inserted] =
            code_of.try_emplace(bits, static_cast<u32>(dict.size()));
        if (inserted) {
          dict.push_back(values[i]);
          if (dict.size() * sizeof(double) > options.dict_byte_limit) {
            fallback = true;
            break;
          }
        }
        codes[i] = it->second;
      }
      if (!fallback && dict.size() < count) {
        *encoding = static_cast<u8>(Encoding::kDictionary);
        out->AppendValue<u32>(static_cast<u32>(dict.size()));
        out->AppendValue<u32>(static_cast<u32>(dict.size() * sizeof(double)));
        out->Append(dict.data(), dict.size() * sizeof(double));
        u32 bit_width = BitWidth(static_cast<u32>(dict.size() - 1));
        out->AppendValue<u8>(static_cast<u8>(bit_width));
        HybridEncode(codes.data(), count, bit_width, out);
      } else {
        *encoding = static_cast<u8>(Encoding::kPlain);
        out->Append(values, count * sizeof(double));
      }
      break;
    }
    case ColumnType::kString: {
      std::unordered_map<std::string_view, u32> code_of;
      std::vector<std::string_view> dict;
      std::vector<u32> codes(count);
      size_t dict_bytes = 0;
      bool fallback = false;
      for (u32 i = 0; i < count; i++) {
        std::string_view s = column.GetString(begin + i);
        auto [it, inserted] =
            code_of.try_emplace(s, static_cast<u32>(dict.size()));
        if (inserted) {
          dict.push_back(s);
          dict_bytes += s.size() + sizeof(u32);
          if (dict_bytes > options.dict_byte_limit) {
            fallback = true;
            break;
          }
        }
        codes[i] = it->second;
      }
      if (!fallback && dict.size() < count) {
        *encoding = static_cast<u8>(Encoding::kDictionary);
        out->AppendValue<u32>(static_cast<u32>(dict.size()));
        // Dict payload: PLAIN string encoding (u32 length + bytes).
        ByteBuffer dict_payload;
        for (std::string_view s : dict) {
          dict_payload.AppendValue<u32>(static_cast<u32>(s.size()));
          dict_payload.Append(s.data(), s.size());
        }
        out->AppendValue<u32>(static_cast<u32>(dict_payload.size()));
        out->Append(dict_payload.data(), dict_payload.size());
        u32 bit_width = BitWidth(static_cast<u32>(dict.size() - 1));
        out->AppendValue<u8>(static_cast<u8>(bit_width));
        HybridEncode(codes.data(), count, bit_width, out);
      } else {
        *encoding = static_cast<u8>(Encoding::kPlain);
        for (u32 i = 0; i < count; i++) {
          std::string_view s = column.GetString(begin + i);
          out->AppendValue<u32>(static_cast<u32>(s.size()));
          out->Append(s.data(), s.size());
        }
      }
      break;
    }
  }
}

// Decoded chunk scratch (reused across chunks by the scan path).
struct ChunkScratch {
  std::vector<i32> ints;
  std::vector<i32> dict_ints;
  std::vector<double> doubles;
  std::vector<u32> string_offsets;
  std::vector<u8> string_pool;
  std::vector<u8> null_flags;
  std::vector<u32> codes;
  ByteBuffer raw;  // codec output
};

// Decodes one chunk; returns logical value bytes.
u64 DecodeChunk(const u8* file, const ChunkMeta& meta, ColumnType type,
                ChunkScratch* scratch) {
  const u8* stored = file + meta.offset;
  const u8* payload;
  if (static_cast<gpc::CodecKind>(meta.codec) == gpc::CodecKind::kNone) {
    payload = stored;
  } else {
    scratch->raw.Resize(meta.raw_bytes);
    gpc::GetCodec(static_cast<gpc::CodecKind>(meta.codec))
        .Decompress(stored, meta.stored_bytes, scratch->raw.data(),
                    meta.raw_bytes);
    payload = scratch->raw.data();
  }
  u32 count = meta.value_count;

  const u8* p = payload;
  u32 null_bytes;
  std::memcpy(&null_bytes, p, sizeof(u32));
  p += 4;
  scratch->null_flags.assign(count, 0);
  if (null_bytes > 0) {
    RoaringBitmap nulls = RoaringBitmap::Deserialize(p, nullptr);
    nulls.ForEach([&](u32 i) { scratch->null_flags[i] = 1; });
    p += null_bytes;
  }

  Encoding encoding = static_cast<Encoding>(meta.encoding);
  switch (type) {
    case ColumnType::kInteger: {
      scratch->ints.resize(count);
      if (encoding == Encoding::kPlain) {
        std::memcpy(scratch->ints.data(), p, count * sizeof(i32));
      } else {
        u32 dict_count, dict_bytes;
        std::memcpy(&dict_count, p, 4);
        std::memcpy(&dict_bytes, p + 4, 4);
        // Dictionary lives at an arbitrary byte offset; copy to aligned
        // scratch before the lookup loop.
        scratch->dict_ints.resize(dict_count);
        std::memcpy(scratch->dict_ints.data(), p + 8, dict_bytes);
        const u8* codes_blob = p + 8 + dict_bytes;
        u32 bit_width = *codes_blob++;
        scratch->codes.resize(count);
        HybridDecode(codes_blob, count, bit_width, scratch->codes.data());
        for (u32 i = 0; i < count; i++) {
          scratch->ints[i] = scratch->dict_ints[scratch->codes[i]];
        }
      }
      return static_cast<u64>(count) * sizeof(i32);
    }
    case ColumnType::kDouble: {
      scratch->doubles.resize(count);
      if (encoding == Encoding::kPlain) {
        std::memcpy(scratch->doubles.data(), p, count * sizeof(double));
      } else {
        u32 dict_count, dict_bytes;
        std::memcpy(&dict_count, p, 4);
        std::memcpy(&dict_bytes, p + 4, 4);
        const u8* dict_blob = p + 8;
        const u8* codes_blob = p + 8 + dict_bytes;
        u32 bit_width = *codes_blob++;
        scratch->codes.resize(count);
        HybridDecode(codes_blob, count, bit_width, scratch->codes.data());
        for (u32 i = 0; i < count; i++) {
          std::memcpy(&scratch->doubles[i],
                      dict_blob + scratch->codes[i] * sizeof(double),
                      sizeof(double));
        }
      }
      return static_cast<u64>(count) * sizeof(double);
    }
    case ColumnType::kString: {
      scratch->string_offsets.assign(1, 0);
      scratch->string_offsets.reserve(count + 1);
      scratch->string_pool.clear();
      if (encoding == Encoding::kPlain) {
        for (u32 i = 0; i < count; i++) {
          u32 len;
          std::memcpy(&len, p, 4);
          p += 4;
          scratch->string_pool.insert(scratch->string_pool.end(), p, p + len);
          p += len;
          scratch->string_offsets.push_back(
              static_cast<u32>(scratch->string_pool.size()));
        }
      } else {
        u32 dict_count, dict_bytes;
        std::memcpy(&dict_count, p, 4);
        std::memcpy(&dict_bytes, p + 4, 4);
        const u8* dict_blob = p + 8;
        const u8* codes_blob = p + 8 + dict_bytes;
        u32 bit_width = *codes_blob++;
        // Parse the dictionary into (offset, len) entries once.
        std::vector<std::pair<u32, u32>> entries(dict_count);
        const u8* d = dict_blob;
        for (u32 e = 0; e < dict_count; e++) {
          u32 len;
          std::memcpy(&len, d, 4);
          d += 4;
          entries[e] = {static_cast<u32>(d - dict_blob), len};
          d += len;
        }
        scratch->codes.resize(count);
        HybridDecode(codes_blob, count, bit_width, scratch->codes.data());
        // Arrow-style materialization: copy the bytes per value.
        for (u32 i = 0; i < count; i++) {
          auto [off, len] = entries[scratch->codes[i]];
          scratch->string_pool.insert(scratch->string_pool.end(),
                                      dict_blob + off, dict_blob + off + len);
          scratch->string_offsets.push_back(
              static_cast<u32>(scratch->string_pool.size()));
        }
      }
      return scratch->string_pool.size() + static_cast<u64>(count) * sizeof(u32);
    }
  }
  return 0;
}

void SerializeFooter(const FileMeta& meta, ByteBuffer* out) {
  size_t footer_start = out->size();
  out->AppendValue<u32>(static_cast<u32>(meta.columns.size()));
  out->AppendValue<u32>(meta.row_count);
  out->AppendValue<u32>(meta.rowgroup_rows);
  for (const auto& [name, type] : meta.columns) {
    out->AppendValue<u16>(static_cast<u16>(name.size()));
    out->Append(name.data(), name.size());
    out->AppendValue<u8>(static_cast<u8>(type));
  }
  out->AppendValue<u32>(static_cast<u32>(meta.rowgroups.size()));
  for (const auto& rowgroup : meta.rowgroups) {
    for (const ChunkMeta& chunk : rowgroup) {
      out->AppendValue<ChunkMeta>(chunk);
    }
  }
  u32 footer_bytes = static_cast<u32>(out->size() - footer_start);
  out->AppendValue<u32>(footer_bytes);
  out->Append(kMagic, 4);
}

Status ParseFooter(const u8* data, size_t size, FileMeta* meta) {
  if (size < 8 || std::memcmp(data + size - 4, kMagic, 4) != 0) {
    return Status::Corruption("bad parquet-like magic");
  }
  u32 footer_bytes;
  std::memcpy(&footer_bytes, data + size - 8, 4);
  const u8* p = data + size - 8 - footer_bytes;
  u32 column_count;
  std::memcpy(&column_count, p, 4);
  std::memcpy(&meta->row_count, p + 4, 4);
  std::memcpy(&meta->rowgroup_rows, p + 8, 4);
  p += 12;
  meta->columns.resize(column_count);
  for (auto& [name, type] : meta->columns) {
    u16 name_len;
    std::memcpy(&name_len, p, 2);
    p += 2;
    name.assign(reinterpret_cast<const char*>(p), name_len);
    p += name_len;
    type = static_cast<ColumnType>(*p++);
  }
  u32 rowgroup_count;
  std::memcpy(&rowgroup_count, p, 4);
  p += 4;
  meta->rowgroups.assign(rowgroup_count, std::vector<ChunkMeta>(column_count));
  for (auto& rowgroup : meta->rowgroups) {
    for (ChunkMeta& chunk : rowgroup) {
      std::memcpy(&chunk, p, sizeof(ChunkMeta));
      p += sizeof(ChunkMeta);
    }
  }
  return Status::Ok();
}

}  // namespace

ByteBuffer WriteParquetLike(const Relation& relation,
                            const ParquetOptions& options) {
  ByteBuffer file;
  FileMeta meta;
  meta.row_count = relation.row_count();
  meta.rowgroup_rows = options.rowgroup_rows;
  for (const Column& column : relation.columns()) {
    meta.columns.emplace_back(column.name(), column.type());
  }
  const gpc::Codec& codec = gpc::GetCodec(options.codec);
  ByteBuffer chunk;
  for (u32 begin = 0; begin < relation.row_count();
       begin += options.rowgroup_rows) {
    u32 rows = std::min(options.rowgroup_rows, relation.row_count() - begin);
    std::vector<ChunkMeta> rowgroup;
    for (const Column& column : relation.columns()) {
      ChunkMeta cm;
      cm.offset = file.size();
      cm.value_count = rows;
      cm.codec = static_cast<u8>(options.codec);
      chunk.Clear();
      EncodeChunk(column, begin, rows, options, &chunk, &cm.encoding);
      cm.raw_bytes = static_cast<u32>(chunk.size());
      if (options.codec == gpc::CodecKind::kNone) {
        file.Append(chunk.data(), chunk.size());
        cm.stored_bytes = cm.raw_bytes;
      } else {
        cm.stored_bytes =
            static_cast<u32>(codec.Compress(chunk.data(), chunk.size(), &file));
      }
      rowgroup.push_back(cm);
    }
    meta.rowgroups.push_back(std::move(rowgroup));
  }
  SerializeFooter(meta, &file);
  return file;
}

Status DecodeParquetLikeBytes(const u8* data, size_t size, u64* bytes) {
  FileMeta meta;
  BTR_RETURN_IF_ERROR(ParseFooter(data, size, &meta));
  *bytes = 0;
  ChunkScratch scratch;
  for (const auto& rowgroup : meta.rowgroups) {
    for (size_t c = 0; c < rowgroup.size(); c++) {
      *bytes +=
          DecodeChunk(data, rowgroup[c], meta.columns[c].second, &scratch);
    }
  }
  return Status::Ok();
}

Status ReadParquetLike(const u8* data, size_t size, Relation* out) {
  FileMeta meta;
  BTR_RETURN_IF_ERROR(ParseFooter(data, size, &meta));
  for (const auto& [name, type] : meta.columns) {
    out->AddColumn(name, type);
  }
  ChunkScratch scratch;
  for (const auto& rowgroup : meta.rowgroups) {
    for (size_t c = 0; c < rowgroup.size(); c++) {
      DecodeChunk(data, rowgroup[c], meta.columns[c].second, &scratch);
      Column& column = out->columns()[c];
      for (u32 i = 0; i < rowgroup[c].value_count; i++) {
        if (scratch.null_flags[i] != 0) {
          column.AppendNull();
          continue;
        }
        switch (column.type()) {
          case ColumnType::kInteger:
            column.AppendInt(scratch.ints[i]);
            break;
          case ColumnType::kDouble:
            column.AppendDouble(scratch.doubles[i]);
            break;
          case ColumnType::kString: {
            u32 begin = scratch.string_offsets[i];
            u32 end = scratch.string_offsets[i + 1];
            column.AppendString(std::string_view(
                reinterpret_cast<const char*>(scratch.string_pool.data()) + begin,
                end - begin));
            break;
          }
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace btr::lakeformat
