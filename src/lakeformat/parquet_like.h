// Parquet-like baseline file format (paper Section 2.1).
//
// Mirrors the parts of Apache Parquet that matter for the evaluation:
//   - row groups (default 2^17 rows, the paper's tuned Arrow setting),
//   - per-column chunks with PLAIN or DICTIONARY encoding,
//   - dictionary codes in the RLE/bit-packed hybrid,
//   - Parquet's fallback heuristic: try dictionary, fall back to PLAIN
//     when the dictionary grows past a byte limit (paper Section 2.1:
//     "the default C++ implementation simply tries dictionary compression
//     and leaves the data uncompressed if the dictionary grows too
//     large"),
//   - optional general-purpose compression applied per column chunk
//     (Snappy/Zstd in the paper; gpc codecs here),
//   - metadata footer at the end of the file.
#ifndef BTR_LAKEFORMAT_PARQUET_LIKE_H_
#define BTR_LAKEFORMAT_PARQUET_LIKE_H_

#include "btr/relation.h"
#include "gpc/codec.h"
#include "util/status.h"

namespace btr::lakeformat {

struct ParquetOptions {
  u32 rowgroup_rows = 1u << 17;
  gpc::CodecKind codec = gpc::CodecKind::kNone;
  // Dictionary fallback threshold (Arrow: dictionary_pagesize_limit).
  size_t dict_byte_limit = 1u << 20;
};

// Serializes the whole relation into one in-memory "file".
ByteBuffer WriteParquetLike(const Relation& relation,
                            const ParquetOptions& options);

// Decodes every column chunk (decompress + decode), without materializing
// a Relation: the in-memory scan path used by the decompression benches.
// On success stores the total logical value bytes produced in *bytes; a
// corrupt file yields Status::Corruption instead of aborting.
Status DecodeParquetLikeBytes(const u8* data, size_t size, u64* bytes);

// Full materialization (round-trip tests).
Status ReadParquetLike(const u8* data, size_t size, Relation* out);

// --- building blocks exposed for tests -----------------------------------

// Parquet RLE/bit-packed hybrid for dictionary codes.
void HybridEncode(const u32* values, u32 count, u32 bit_width, ByteBuffer* out);
void HybridDecode(const u8* data, u32 count, u32 bit_width, u32* out);

}  // namespace btr::lakeformat

#endif  // BTR_LAKEFORMAT_PARQUET_LIKE_H_
