#include "lakeformat/orc_like.h"

#include <cstring>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bitmap/roaring.h"
#include "util/bits.h"

namespace btr::lakeformat {

namespace {

constexpr char kMagic[4] = {'O', 'R', 'C', 'L'};
constexpr u32 kDirectWindow = 512;

enum class IntMode : u8 { kRepeat = 0, kDelta = 1, kDirect = 2 };
enum class StringEncoding : u8 { kDirect = 0, kDictionary = 1 };

void PutVarint(u64 v, ByteBuffer* out) {
  while (v >= 0x80) {
    out->AppendValue<u8>(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  out->AppendValue<u8>(static_cast<u8>(v));
}

u64 GetVarint(const u8*& p) {
  u64 v = 0;
  u32 shift = 0;
  while (true) {
    u8 byte = *p++;
    v |= static_cast<u64>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

}  // namespace

void OrcIntEncode(const i64* values, u32 count, ByteBuffer* out) {
  u32 i = 0;
  std::vector<u64> pending;  // zigzagged direct values
  auto flush_direct = [&]() {
    if (pending.empty()) return;
    u64 accum = 0;
    for (u64 v : pending) accum |= v;
    u32 bit_width = std::max(1u, BitWidth64(accum));
    out->AppendValue<u8>(static_cast<u8>(IntMode::kDirect));
    PutVarint(pending.size(), out);
    out->AppendValue<u8>(static_cast<u8>(bit_width));
    size_t offset = out->size();
    size_t packed = CeilDiv(pending.size() * bit_width, 8);
    out->Resize(offset + packed);
    std::memset(out->data() + offset, 0, packed);
    u64 bit_pos = 0;
    for (u64 v : pending) {
      u64 byte = bit_pos >> 3;
      u32 shift = static_cast<u32>(bit_pos & 7);
      // 64-bit value may straddle a 9th byte when shifted; write in two
      // 64-bit windows.
      u64 window;
      std::memcpy(&window, out->data() + offset + byte, sizeof(u64));
      window |= v << shift;
      std::memcpy(out->data() + offset + byte, &window, sizeof(u64));
      if (shift != 0 && bit_width > 64 - shift) {
        u8 spill = static_cast<u8>(v >> (64 - shift));
        out->data()[offset + byte + 8] |= spill;
      }
      bit_pos += bit_width;
    }
    pending.clear();
  };

  while (i < count) {
    // Repeat run?
    u32 repeat = 1;
    while (i + repeat < count && values[i + repeat] == values[i]) repeat++;
    if (repeat >= 8) {
      flush_direct();
      out->AppendValue<u8>(static_cast<u8>(IntMode::kRepeat));
      PutVarint(repeat, out);
      PutVarint(ZigzagEncode64(values[i]), out);
      i += repeat;
      continue;
    }
    // Constant-delta run? (differences computed mod 2^64: adjacent random
    // 64-bit values would overflow signed subtraction)
    if (i + 2 < count) {
      i64 delta = static_cast<i64>(static_cast<u64>(values[i + 1]) -
                                   static_cast<u64>(values[i]));
      u32 run = 2;
      while (i + run < count &&
             static_cast<i64>(static_cast<u64>(values[i + run]) -
                              static_cast<u64>(values[i + run - 1])) == delta) {
        run++;
      }
      if (run >= 8 && delta != 0) {
        flush_direct();
        out->AppendValue<u8>(static_cast<u8>(IntMode::kDelta));
        PutVarint(run, out);
        PutVarint(ZigzagEncode64(values[i]), out);
        PutVarint(ZigzagEncode64(delta), out);
        i += run;
        continue;
      }
    }
    pending.push_back(ZigzagEncode64(values[i]));
    if (pending.size() == kDirectWindow) flush_direct();
    i++;
  }
  flush_direct();
}

void OrcIntDecode(const u8* data, u32 count, i64* out) {
  const u8* p = data;
  u32 produced = 0;
  while (produced < count) {
    IntMode mode = static_cast<IntMode>(*p++);
    switch (mode) {
      case IntMode::kRepeat: {
        u64 run = GetVarint(p);
        i64 value = ZigzagDecode64(GetVarint(p));
        for (u64 i = 0; i < run; i++) out[produced + i] = value;
        produced += static_cast<u32>(run);
        break;
      }
      case IntMode::kDelta: {
        u64 run = GetVarint(p);
        i64 base = ZigzagDecode64(GetVarint(p));
        i64 delta = ZigzagDecode64(GetVarint(p));
        u64 value = static_cast<u64>(base);
        for (u64 i = 0; i < run; i++) {
          out[produced + i] = static_cast<i64>(value);
          value += static_cast<u64>(delta);
        }
        produced += static_cast<u32>(run);
        break;
      }
      case IntMode::kDirect: {
        u64 run = GetVarint(p);
        u32 bit_width = *p++;
        u64 mask = bit_width == 64 ? ~u64{0} : ((u64{1} << bit_width) - 1);
        u64 bit_pos = 0;
        for (u64 i = 0; i < run; i++) {
          u64 byte = bit_pos >> 3;
          u32 shift = static_cast<u32>(bit_pos & 7);
          u64 window;
          std::memcpy(&window, p + byte, sizeof(u64));
          u64 v = window >> shift;
          if (shift != 0 && bit_width > 64 - shift) {
            u64 spill = p[byte + 8];
            v |= spill << (64 - shift);
          }
          out[produced + i] = ZigzagDecode64(v & mask);
          bit_pos += bit_width;
        }
        p += CeilDiv(run * bit_width, 8);
        produced += static_cast<u32>(run);
        break;
      }
    }
  }
}

// --- stripes ---------------------------------------------------------------------

namespace {

struct ChunkMeta {
  u64 offset = 0;
  u32 stored_bytes = 0;
  u32 raw_bytes = 0;
  u32 value_count = 0;
  u8 encoding = 0;  // StringEncoding for strings, unused otherwise
  u8 codec = 0;
};

struct FileMeta {
  u32 row_count = 0;
  u32 stripe_rows = 0;
  std::vector<std::pair<std::string, ColumnType>> columns;
  std::vector<std::vector<ChunkMeta>> stripes;
};

void EncodeStripeColumn(const Column& column, u32 begin, u32 count,
                        const OrcOptions& options, ByteBuffer* out,
                        u8* encoding) {
  RoaringBitmap nulls;
  for (u32 i = 0; i < count; i++) {
    if (column.IsNull(begin + i)) nulls.Add(i);
  }
  nulls.RunOptimize();
  if (nulls.Empty()) {
    out->AppendValue<u32>(0);
  } else {
    out->AppendValue<u32>(static_cast<u32>(nulls.SerializedSizeBytes()));
    nulls.SerializeTo(out);
  }

  switch (column.type()) {
    case ColumnType::kInteger: {
      std::vector<i64> wide(count);
      for (u32 i = 0; i < count; i++) wide[i] = column.ints()[begin + i];
      OrcIntEncode(wide.data(), count, out);
      break;
    }
    case ColumnType::kDouble:
      // ORC stores doubles as plain little-endian IEEE 754.
      out->Append(column.doubles().data() + begin, count * sizeof(double));
      break;
    case ColumnType::kString: {
      std::unordered_map<std::string_view, u32> code_of;
      std::vector<std::string_view> dict;
      std::vector<i64> codes(count);
      for (u32 i = 0; i < count; i++) {
        std::string_view s = column.GetString(begin + i);
        auto [it, inserted] =
            code_of.try_emplace(s, static_cast<u32>(dict.size()));
        if (inserted) dict.push_back(s);
        codes[i] = it->second;
      }
      bool use_dict = static_cast<double>(dict.size()) <=
                      options.dictionary_key_size_threshold * count;
      if (use_dict) {
        *encoding = static_cast<u8>(StringEncoding::kDictionary);
        out->AppendValue<u32>(static_cast<u32>(dict.size()));
        // Dict lengths stream + blob.
        std::vector<i64> lengths(dict.size());
        size_t blob_bytes = 0;
        for (size_t e = 0; e < dict.size(); e++) {
          lengths[e] = static_cast<i64>(dict[e].size());
          blob_bytes += dict[e].size();
        }
        ByteBuffer lengths_stream;
        OrcIntEncode(lengths.data(), static_cast<u32>(lengths.size()),
                     &lengths_stream);
        out->AppendValue<u32>(static_cast<u32>(lengths_stream.size()));
        out->Append(lengths_stream.data(), lengths_stream.size());
        out->AppendValue<u32>(static_cast<u32>(blob_bytes));
        for (std::string_view s : dict) out->Append(s.data(), s.size());
        // Codes stream.
        ByteBuffer codes_stream;
        OrcIntEncode(codes.data(), count, &codes_stream);
        out->AppendValue<u32>(static_cast<u32>(codes_stream.size()));
        out->Append(codes_stream.data(), codes_stream.size());
      } else {
        *encoding = static_cast<u8>(StringEncoding::kDirect);
        std::vector<i64> lengths(count);
        size_t blob_bytes = 0;
        for (u32 i = 0; i < count; i++) {
          std::string_view s = column.GetString(begin + i);
          lengths[i] = static_cast<i64>(s.size());
          blob_bytes += s.size();
        }
        ByteBuffer lengths_stream;
        OrcIntEncode(lengths.data(), count, &lengths_stream);
        out->AppendValue<u32>(static_cast<u32>(lengths_stream.size()));
        out->Append(lengths_stream.data(), lengths_stream.size());
        out->AppendValue<u32>(static_cast<u32>(blob_bytes));
        for (u32 i = 0; i < count; i++) {
          std::string_view s = column.GetString(begin + i);
          out->Append(s.data(), s.size());
        }
      }
      break;
    }
  }
}

struct StripeScratch {
  std::vector<i64> wide;
  std::vector<i32> ints;
  std::vector<double> doubles;
  std::vector<u32> string_offsets;
  std::vector<u8> string_pool;
  std::vector<u8> null_flags;
  std::vector<i64> codes;
  std::vector<i64> lengths;
  ByteBuffer raw;
};

u64 DecodeStripeColumn(const u8* file, const ChunkMeta& meta, ColumnType type,
                       StripeScratch* scratch) {
  const u8* stored = file + meta.offset;
  const u8* payload;
  if (static_cast<gpc::CodecKind>(meta.codec) == gpc::CodecKind::kNone) {
    payload = stored;
  } else {
    scratch->raw.Resize(meta.raw_bytes);
    gpc::GetCodec(static_cast<gpc::CodecKind>(meta.codec))
        .Decompress(stored, meta.stored_bytes, scratch->raw.data(),
                    meta.raw_bytes);
    payload = scratch->raw.data();
  }
  u32 count = meta.value_count;
  const u8* p = payload;
  u32 null_bytes;
  std::memcpy(&null_bytes, p, sizeof(u32));
  p += 4;
  scratch->null_flags.assign(count, 0);
  if (null_bytes > 0) {
    RoaringBitmap nulls = RoaringBitmap::Deserialize(p, nullptr);
    nulls.ForEach([&](u32 i) { scratch->null_flags[i] = 1; });
    p += null_bytes;
  }

  switch (type) {
    case ColumnType::kInteger: {
      scratch->wide.resize(count);
      OrcIntDecode(p, count, scratch->wide.data());
      scratch->ints.resize(count);
      for (u32 i = 0; i < count; i++) {
        scratch->ints[i] = static_cast<i32>(scratch->wide[i]);
      }
      return static_cast<u64>(count) * sizeof(i32);
    }
    case ColumnType::kDouble: {
      scratch->doubles.resize(count);
      std::memcpy(scratch->doubles.data(), p, count * sizeof(double));
      return static_cast<u64>(count) * sizeof(double);
    }
    case ColumnType::kString: {
      scratch->string_offsets.assign(1, 0);
      scratch->string_pool.clear();
      StringEncoding encoding = static_cast<StringEncoding>(meta.encoding);
      if (encoding == StringEncoding::kDictionary) {
        u32 dict_count;
        std::memcpy(&dict_count, p, 4);
        p += 4;
        u32 lengths_bytes;
        std::memcpy(&lengths_bytes, p, 4);
        p += 4;
        scratch->lengths.resize(dict_count);
        OrcIntDecode(p, dict_count, scratch->lengths.data());
        p += lengths_bytes;
        u32 blob_bytes;
        std::memcpy(&blob_bytes, p, 4);
        p += 4;
        const u8* blob = p;
        p += blob_bytes;
        std::vector<std::pair<u32, u32>> entries(dict_count);
        u32 offset = 0;
        for (u32 e = 0; e < dict_count; e++) {
          entries[e] = {offset, static_cast<u32>(scratch->lengths[e])};
          offset += static_cast<u32>(scratch->lengths[e]);
        }
        u32 codes_bytes;
        std::memcpy(&codes_bytes, p, 4);
        p += 4;
        scratch->codes.resize(count);
        OrcIntDecode(p, count, scratch->codes.data());
        for (u32 i = 0; i < count; i++) {
          auto [off, len] = entries[scratch->codes[i]];
          scratch->string_pool.insert(scratch->string_pool.end(), blob + off,
                                      blob + off + len);
          scratch->string_offsets.push_back(
              static_cast<u32>(scratch->string_pool.size()));
        }
      } else {
        u32 lengths_bytes;
        std::memcpy(&lengths_bytes, p, 4);
        p += 4;
        scratch->lengths.resize(count);
        OrcIntDecode(p, count, scratch->lengths.data());
        p += lengths_bytes;
        u32 blob_bytes;
        std::memcpy(&blob_bytes, p, 4);
        p += 4;
        scratch->string_pool.assign(p, p + blob_bytes);
        u32 offset = 0;
        for (u32 i = 0; i < count; i++) {
          offset += static_cast<u32>(scratch->lengths[i]);
          scratch->string_offsets.push_back(offset);
        }
      }
      return scratch->string_pool.size() + static_cast<u64>(count) * sizeof(u32);
    }
  }
  return 0;
}

void SerializeFooter(const FileMeta& meta, ByteBuffer* out) {
  size_t footer_start = out->size();
  out->AppendValue<u32>(static_cast<u32>(meta.columns.size()));
  out->AppendValue<u32>(meta.row_count);
  out->AppendValue<u32>(meta.stripe_rows);
  for (const auto& [name, type] : meta.columns) {
    out->AppendValue<u16>(static_cast<u16>(name.size()));
    out->Append(name.data(), name.size());
    out->AppendValue<u8>(static_cast<u8>(type));
  }
  out->AppendValue<u32>(static_cast<u32>(meta.stripes.size()));
  for (const auto& stripe : meta.stripes) {
    for (const ChunkMeta& chunk : stripe) {
      out->AppendValue<ChunkMeta>(chunk);
    }
  }
  u32 footer_bytes = static_cast<u32>(out->size() - footer_start);
  out->AppendValue<u32>(footer_bytes);
  out->Append(kMagic, 4);
}

Status ParseFooter(const u8* data, size_t size, FileMeta* meta) {
  if (size < 8 || std::memcmp(data + size - 4, kMagic, 4) != 0) {
    return Status::Corruption("bad orc-like magic");
  }
  u32 footer_bytes;
  std::memcpy(&footer_bytes, data + size - 8, 4);
  const u8* p = data + size - 8 - footer_bytes;
  u32 column_count;
  std::memcpy(&column_count, p, 4);
  std::memcpy(&meta->row_count, p + 4, 4);
  std::memcpy(&meta->stripe_rows, p + 8, 4);
  p += 12;
  meta->columns.resize(column_count);
  for (auto& [name, type] : meta->columns) {
    u16 name_len;
    std::memcpy(&name_len, p, 2);
    p += 2;
    name.assign(reinterpret_cast<const char*>(p), name_len);
    p += name_len;
    type = static_cast<ColumnType>(*p++);
  }
  u32 stripe_count;
  std::memcpy(&stripe_count, p, 4);
  p += 4;
  meta->stripes.assign(stripe_count, std::vector<ChunkMeta>(column_count));
  for (auto& stripe : meta->stripes) {
    for (ChunkMeta& chunk : stripe) {
      std::memcpy(&chunk, p, sizeof(ChunkMeta));
      p += sizeof(ChunkMeta);
    }
  }
  return Status::Ok();
}

}  // namespace

ByteBuffer WriteOrcLike(const Relation& relation, const OrcOptions& options) {
  ByteBuffer file;
  FileMeta meta;
  meta.row_count = relation.row_count();
  meta.stripe_rows = options.stripe_rows;
  for (const Column& column : relation.columns()) {
    meta.columns.emplace_back(column.name(), column.type());
  }
  const gpc::Codec& codec = gpc::GetCodec(options.codec);
  ByteBuffer chunk;
  for (u32 begin = 0; begin < relation.row_count(); begin += options.stripe_rows) {
    u32 rows = std::min(options.stripe_rows, relation.row_count() - begin);
    std::vector<ChunkMeta> stripe;
    for (const Column& column : relation.columns()) {
      ChunkMeta cm;
      cm.offset = file.size();
      cm.value_count = rows;
      cm.codec = static_cast<u8>(options.codec);
      chunk.Clear();
      EncodeStripeColumn(column, begin, rows, options, &chunk, &cm.encoding);
      cm.raw_bytes = static_cast<u32>(chunk.size());
      if (options.codec == gpc::CodecKind::kNone) {
        file.Append(chunk.data(), chunk.size());
        cm.stored_bytes = cm.raw_bytes;
      } else {
        cm.stored_bytes =
            static_cast<u32>(codec.Compress(chunk.data(), chunk.size(), &file));
      }
      stripe.push_back(cm);
    }
    meta.stripes.push_back(std::move(stripe));
  }
  SerializeFooter(meta, &file);
  return file;
}

Status DecodeOrcLikeBytes(const u8* data, size_t size, u64* bytes) {
  FileMeta meta;
  BTR_RETURN_IF_ERROR(ParseFooter(data, size, &meta));
  *bytes = 0;
  StripeScratch scratch;
  for (const auto& stripe : meta.stripes) {
    for (size_t c = 0; c < stripe.size(); c++) {
      *bytes += DecodeStripeColumn(data, stripe[c], meta.columns[c].second,
                                   &scratch);
    }
  }
  return Status::Ok();
}

Status ReadOrcLike(const u8* data, size_t size, Relation* out) {
  FileMeta meta;
  BTR_RETURN_IF_ERROR(ParseFooter(data, size, &meta));
  for (const auto& [name, type] : meta.columns) {
    out->AddColumn(name, type);
  }
  StripeScratch scratch;
  for (const auto& stripe : meta.stripes) {
    for (size_t c = 0; c < stripe.size(); c++) {
      DecodeStripeColumn(data, stripe[c], meta.columns[c].second, &scratch);
      Column& column = out->columns()[c];
      for (u32 i = 0; i < stripe[c].value_count; i++) {
        if (scratch.null_flags[i] != 0) {
          column.AppendNull();
          continue;
        }
        switch (column.type()) {
          case ColumnType::kInteger:
            column.AppendInt(scratch.ints[i]);
            break;
          case ColumnType::kDouble:
            column.AppendDouble(scratch.doubles[i]);
            break;
          case ColumnType::kString: {
            u32 str_begin = scratch.string_offsets[i];
            u32 str_end = scratch.string_offsets[i + 1];
            column.AppendString(std::string_view(
                reinterpret_cast<const char*>(scratch.string_pool.data()) +
                    str_begin,
                str_end - str_begin));
            break;
          }
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace btr::lakeformat
