#!/usr/bin/env python3
"""Compare two sets of BENCH_<name>.json sidecars and flag regressions.

Usage:
    tools/bench_compare.py <baseline-dir> <candidate-dir> [options]

Each directory holds sidecars written by the bench binaries (see
bench/common.h, docs/OBSERVABILITY.md). The comparison is kind-aware:

    kind         direction of regression      default gating
    ----         -----------------------      --------------
    ratio        value decreases              gate
    bytes        value increases              gate
    count        value differs at all         gate (exact)
    time         value increases              --time-mode (warn|gate)
    throughput   value decreases              --time-mode (warn|gate)

Deterministic kinds (ratio/bytes/count) gate strictly: they depend only on
the code and the seeded corpora, so any drift past the threshold is a real
change. Timing kinds are machine-dependent; CI compares them against
committed baselines in warn mode (prints but does not fail) and proves the
gate works with a same-machine synthetic check (see .github/workflows).

Exit codes: 0 = no gated regression, 1 = gated regression(s), 2 = usage or
missing/invalid sidecar.
"""

import argparse
import json
import os
import sys

SCHEMA_VERSION = 1

# kinds whose regression direction is "value went down"
LOWER_IS_REGRESSION = {"ratio", "throughput"}
# kinds whose regression direction is "value went up"
HIGHER_IS_REGRESSION = {"time", "bytes"}
TIMING_KINDS = {"time", "throughput"}
KNOWN_KINDS = LOWER_IS_REGRESSION | HIGHER_IS_REGRESSION | {"count"}


def load_sidecars(directory):
    """Returns {bench_name: sidecar_dict}; exits(2) on malformed files."""
    if not os.path.isdir(directory):
        sys.stderr.write("error: not a directory: %s\n" % directory)
        sys.exit(2)
    sidecars = {}
    for entry in sorted(os.listdir(directory)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        path = os.path.join(directory, entry)
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            sys.stderr.write("error: cannot parse %s: %s\n" % (path, e))
            sys.exit(2)
        for key in ("schema_version", "bench", "metrics"):
            if key not in doc:
                sys.stderr.write("error: %s missing '%s'\n" % (path, key))
                sys.exit(2)
        if doc["schema_version"] != SCHEMA_VERSION:
            sys.stderr.write(
                "error: %s has schema_version %s, expected %s\n"
                % (path, doc["schema_version"], SCHEMA_VERSION)
            )
            sys.exit(2)
        sidecars[doc["bench"]] = doc
    return sidecars


def classify(kind, base, cand, threshold):
    """Returns (is_regression, relative_change or None)."""
    if kind == "count":
        return (base != cand, None)
    if base is None or cand is None:
        # A null value means the bench produced NaN/Inf: always flag.
        return (True, None)
    if base == 0:
        return (cand != 0 and kind in HIGHER_IS_REGRESSION, None)
    change = (cand - base) / abs(base)
    if kind in LOWER_IS_REGRESSION:
        return (change < -threshold, change)
    if kind in HIGHER_IS_REGRESSION:
        return (change > threshold, change)
    return (False, change)  # unknown kind: report only


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json sidecar sets; exit 1 on regressions."
    )
    parser.add_argument("baseline", help="directory of baseline sidecars")
    parser.add_argument("candidate", help="directory of candidate sidecars")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression threshold (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--time-mode",
        choices=["gate", "warn"],
        default="gate",
        help="gate or only warn on time/throughput kinds (default gate; "
        "CI uses warn against cross-machine baselines)",
    )
    args = parser.parse_args()

    baseline = load_sidecars(args.baseline)
    candidate = load_sidecars(args.candidate)
    if not baseline:
        sys.stderr.write("error: no BENCH_*.json in %s\n" % args.baseline)
        sys.exit(2)

    gated = []
    warned = []
    improved = 0
    unchanged = 0

    for bench, base_doc in sorted(baseline.items()):
        cand_doc = candidate.get(bench)
        if cand_doc is None:
            gated.append("%s: sidecar missing from candidate set" % bench)
            continue
        cand_metrics = cand_doc["metrics"]
        for name, base_m in sorted(base_doc["metrics"].items()):
            cand_m = cand_metrics.get(name)
            qualified = "%s/%s" % (bench, name)
            if cand_m is None:
                gated.append("%s: metric missing from candidate" % qualified)
                continue
            kind = base_m.get("kind", "count")
            if kind not in KNOWN_KINDS:
                sys.stderr.write(
                    "note: %s has unknown kind '%s', skipping\n"
                    % (qualified, kind)
                )
                continue
            is_regression, change = classify(
                kind, base_m.get("value"), cand_m.get("value"), args.threshold
            )
            desc = "%s [%s]: %s -> %s" % (
                qualified,
                kind,
                base_m.get("value"),
                cand_m.get("value"),
            )
            if change is not None:
                desc += " (%+.1f%%)" % (100.0 * change)
            if is_regression:
                if kind in TIMING_KINDS and args.time_mode == "warn":
                    warned.append(desc)
                else:
                    gated.append(desc)
            elif change is not None and abs(change) > args.threshold:
                improved += 1
            else:
                unchanged += 1

    for extra_bench in sorted(set(candidate) - set(baseline)):
        sys.stderr.write("note: new bench not in baseline: %s\n" % extra_bench)

    print(
        "bench_compare: %d metric(s) within threshold, %d improved, "
        "%d warning(s), %d regression(s)"
        % (unchanged, improved, len(warned), len(gated))
    )
    for line in warned:
        print("  WARN  %s" % line)
    for line in gated:
        print("  FAIL  %s" % line)
    if gated:
        print(
            "bench_compare: FAILED (threshold %.0f%%, time-mode %s)"
            % (100.0 * args.threshold, args.time_mode)
        )
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
