# Empty dependencies file for bench_table3_doubles.
# This may be replaced when dependencies are built.
