file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_doubles.dir/bench_table3_doubles.cc.o"
  "CMakeFiles/bench_table3_doubles.dir/bench_table3_doubles.cc.o.d"
  "bench_table3_doubles"
  "bench_table3_doubles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_doubles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
