file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pool.dir/bench_fig4_pool.cc.o"
  "CMakeFiles/bench_fig4_pool.dir/bench_fig4_pool.cc.o.d"
  "bench_fig4_pool"
  "bench_fig4_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
