# Empty compiler generated dependencies file for bench_compressed_scan.
# This may be replaced when dependencies are built.
