file(REMOVE_RECURSE
  "CMakeFiles/bench_compressed_scan.dir/bench_compressed_scan.cc.o"
  "CMakeFiles/bench_compressed_scan.dir/bench_compressed_scan.cc.o.d"
  "bench_compressed_scan"
  "bench_compressed_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compressed_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
