# Empty dependencies file for bench_fig7_ratios.
# This may be replaced when dependencies are built.
