file(REMOVE_RECURSE
  "CMakeFiles/bench_compression_speed.dir/bench_compression_speed.cc.o"
  "CMakeFiles/bench_compression_speed.dir/bench_compression_speed.cc.o.d"
  "bench_compression_speed"
  "bench_compression_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compression_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
