# Empty compiler generated dependencies file for bench_compression_speed.
# This may be replaced when dependencies are built.
