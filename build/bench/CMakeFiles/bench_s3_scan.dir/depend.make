# Empty dependencies file for bench_s3_scan.
# This may be replaced when dependencies are built.
