file(REMOVE_RECURSE
  "CMakeFiles/bench_s3_scan.dir/bench_s3_scan.cc.o"
  "CMakeFiles/bench_s3_scan.dir/bench_s3_scan.cc.o.d"
  "bench_s3_scan"
  "bench_s3_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s3_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
