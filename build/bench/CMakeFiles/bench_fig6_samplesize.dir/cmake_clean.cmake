file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_samplesize.dir/bench_fig6_samplesize.cc.o"
  "CMakeFiles/bench_fig6_samplesize.dir/bench_fig6_samplesize.cc.o.d"
  "bench_fig6_samplesize"
  "bench_fig6_samplesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_samplesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
