file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_columns.dir/bench_table4_columns.cc.o"
  "CMakeFiles/bench_table4_columns.dir/bench_table4_columns.cc.o.d"
  "bench_table4_columns"
  "bench_table4_columns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_columns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
