# Empty dependencies file for bench_table4_columns.
# This may be replaced when dependencies are built.
