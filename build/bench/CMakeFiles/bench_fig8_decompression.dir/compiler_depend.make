# Empty compiler generated dependencies file for bench_fig8_decompression.
# This may be replaced when dependencies are built.
