file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_decompression.dir/bench_fig8_decompression.cc.o"
  "CMakeFiles/bench_fig8_decompression.dir/bench_fig8_decompression.cc.o.d"
  "bench_fig8_decompression"
  "bench_fig8_decompression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_decompression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
