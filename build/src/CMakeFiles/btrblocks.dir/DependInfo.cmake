
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitmap/roaring.cc" "src/CMakeFiles/btrblocks.dir/bitmap/roaring.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/bitmap/roaring.cc.o.d"
  "/root/repo/src/bitpack/bitpack.cc" "src/CMakeFiles/btrblocks.dir/bitpack/bitpack.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/bitpack/bitpack.cc.o.d"
  "/root/repo/src/btr/column.cc" "src/CMakeFiles/btrblocks.dir/btr/column.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/column.cc.o.d"
  "/root/repo/src/btr/compressed_scan.cc" "src/CMakeFiles/btrblocks.dir/btr/compressed_scan.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/compressed_scan.cc.o.d"
  "/root/repo/src/btr/datablock.cc" "src/CMakeFiles/btrblocks.dir/btr/datablock.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/datablock.cc.o.d"
  "/root/repo/src/btr/file_format.cc" "src/CMakeFiles/btrblocks.dir/btr/file_format.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/file_format.cc.o.d"
  "/root/repo/src/btr/relation.cc" "src/CMakeFiles/btrblocks.dir/btr/relation.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/relation.cc.o.d"
  "/root/repo/src/btr/sampling.cc" "src/CMakeFiles/btrblocks.dir/btr/sampling.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/sampling.cc.o.d"
  "/root/repo/src/btr/scheme_picker.cc" "src/CMakeFiles/btrblocks.dir/btr/scheme_picker.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/scheme_picker.cc.o.d"
  "/root/repo/src/btr/schemes/double_basic.cc" "src/CMakeFiles/btrblocks.dir/btr/schemes/double_basic.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/schemes/double_basic.cc.o.d"
  "/root/repo/src/btr/schemes/double_pseudodecimal.cc" "src/CMakeFiles/btrblocks.dir/btr/schemes/double_pseudodecimal.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/schemes/double_pseudodecimal.cc.o.d"
  "/root/repo/src/btr/schemes/int_basic.cc" "src/CMakeFiles/btrblocks.dir/btr/schemes/int_basic.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/schemes/int_basic.cc.o.d"
  "/root/repo/src/btr/schemes/int_dict.cc" "src/CMakeFiles/btrblocks.dir/btr/schemes/int_dict.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/schemes/int_dict.cc.o.d"
  "/root/repo/src/btr/schemes/int_frequency.cc" "src/CMakeFiles/btrblocks.dir/btr/schemes/int_frequency.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/schemes/int_frequency.cc.o.d"
  "/root/repo/src/btr/schemes/int_rle.cc" "src/CMakeFiles/btrblocks.dir/btr/schemes/int_rle.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/schemes/int_rle.cc.o.d"
  "/root/repo/src/btr/schemes/registry.cc" "src/CMakeFiles/btrblocks.dir/btr/schemes/registry.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/schemes/registry.cc.o.d"
  "/root/repo/src/btr/schemes/string_basic.cc" "src/CMakeFiles/btrblocks.dir/btr/schemes/string_basic.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/schemes/string_basic.cc.o.d"
  "/root/repo/src/btr/schemes/string_dict.cc" "src/CMakeFiles/btrblocks.dir/btr/schemes/string_dict.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/schemes/string_dict.cc.o.d"
  "/root/repo/src/btr/schemes/string_fsst.cc" "src/CMakeFiles/btrblocks.dir/btr/schemes/string_fsst.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/schemes/string_fsst.cc.o.d"
  "/root/repo/src/btr/stats.cc" "src/CMakeFiles/btrblocks.dir/btr/stats.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/stats.cc.o.d"
  "/root/repo/src/btr/zonemap.cc" "src/CMakeFiles/btrblocks.dir/btr/zonemap.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/btr/zonemap.cc.o.d"
  "/root/repo/src/datagen/archetypes.cc" "src/CMakeFiles/btrblocks.dir/datagen/archetypes.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/datagen/archetypes.cc.o.d"
  "/root/repo/src/datagen/csv.cc" "src/CMakeFiles/btrblocks.dir/datagen/csv.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/datagen/csv.cc.o.d"
  "/root/repo/src/datagen/public_bi.cc" "src/CMakeFiles/btrblocks.dir/datagen/public_bi.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/datagen/public_bi.cc.o.d"
  "/root/repo/src/datagen/tpch.cc" "src/CMakeFiles/btrblocks.dir/datagen/tpch.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/datagen/tpch.cc.o.d"
  "/root/repo/src/exec/thread_pool.cc" "src/CMakeFiles/btrblocks.dir/exec/thread_pool.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/exec/thread_pool.cc.o.d"
  "/root/repo/src/floatcomp/chimp.cc" "src/CMakeFiles/btrblocks.dir/floatcomp/chimp.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/floatcomp/chimp.cc.o.d"
  "/root/repo/src/floatcomp/fpc.cc" "src/CMakeFiles/btrblocks.dir/floatcomp/fpc.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/floatcomp/fpc.cc.o.d"
  "/root/repo/src/floatcomp/gorilla.cc" "src/CMakeFiles/btrblocks.dir/floatcomp/gorilla.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/floatcomp/gorilla.cc.o.d"
  "/root/repo/src/fsst/fsst.cc" "src/CMakeFiles/btrblocks.dir/fsst/fsst.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/fsst/fsst.cc.o.d"
  "/root/repo/src/gpc/codec.cc" "src/CMakeFiles/btrblocks.dir/gpc/codec.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/gpc/codec.cc.o.d"
  "/root/repo/src/gpc/entropy_lz.cc" "src/CMakeFiles/btrblocks.dir/gpc/entropy_lz.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/gpc/entropy_lz.cc.o.d"
  "/root/repo/src/gpc/huffman.cc" "src/CMakeFiles/btrblocks.dir/gpc/huffman.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/gpc/huffman.cc.o.d"
  "/root/repo/src/gpc/lz77.cc" "src/CMakeFiles/btrblocks.dir/gpc/lz77.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/gpc/lz77.cc.o.d"
  "/root/repo/src/lakeformat/orc_like.cc" "src/CMakeFiles/btrblocks.dir/lakeformat/orc_like.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/lakeformat/orc_like.cc.o.d"
  "/root/repo/src/lakeformat/parquet_like.cc" "src/CMakeFiles/btrblocks.dir/lakeformat/parquet_like.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/lakeformat/parquet_like.cc.o.d"
  "/root/repo/src/s3sim/object_store.cc" "src/CMakeFiles/btrblocks.dir/s3sim/object_store.cc.o" "gcc" "src/CMakeFiles/btrblocks.dir/s3sim/object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
