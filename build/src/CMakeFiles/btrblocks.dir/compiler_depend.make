# Empty compiler generated dependencies file for btrblocks.
# This may be replaced when dependencies are built.
