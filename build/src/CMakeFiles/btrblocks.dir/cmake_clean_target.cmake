file(REMOVE_RECURSE
  "libbtrblocks.a"
)
