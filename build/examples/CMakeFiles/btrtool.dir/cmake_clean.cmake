file(REMOVE_RECURSE
  "CMakeFiles/btrtool.dir/btrtool.cpp.o"
  "CMakeFiles/btrtool.dir/btrtool.cpp.o.d"
  "btrtool"
  "btrtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btrtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
