# Empty dependencies file for btrtool.
# This may be replaced when dependencies are built.
