file(REMOVE_RECURSE
  "CMakeFiles/datalake_scan.dir/datalake_scan.cpp.o"
  "CMakeFiles/datalake_scan.dir/datalake_scan.cpp.o.d"
  "datalake_scan"
  "datalake_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalake_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
