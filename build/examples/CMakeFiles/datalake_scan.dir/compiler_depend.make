# Empty compiler generated dependencies file for datalake_scan.
# This may be replaced when dependencies are built.
