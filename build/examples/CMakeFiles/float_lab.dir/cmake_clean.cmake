file(REMOVE_RECURSE
  "CMakeFiles/float_lab.dir/float_lab.cpp.o"
  "CMakeFiles/float_lab.dir/float_lab.cpp.o.d"
  "float_lab"
  "float_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/float_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
