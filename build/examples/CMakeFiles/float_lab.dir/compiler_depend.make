# Empty compiler generated dependencies file for float_lab.
# This may be replaced when dependencies are built.
