# Empty compiler generated dependencies file for format_shootout.
# This may be replaced when dependencies are built.
