file(REMOVE_RECURSE
  "CMakeFiles/format_shootout.dir/format_shootout.cpp.o"
  "CMakeFiles/format_shootout.dir/format_shootout.cpp.o.d"
  "format_shootout"
  "format_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
