file(REMOVE_RECURSE
  "CMakeFiles/block_relation_test.dir/block_relation_test.cc.o"
  "CMakeFiles/block_relation_test.dir/block_relation_test.cc.o.d"
  "block_relation_test"
  "block_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
