file(REMOVE_RECURSE
  "CMakeFiles/compressed_scan_test.dir/compressed_scan_test.cc.o"
  "CMakeFiles/compressed_scan_test.dir/compressed_scan_test.cc.o.d"
  "compressed_scan_test"
  "compressed_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
