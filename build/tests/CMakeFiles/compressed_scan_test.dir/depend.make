# Empty dependencies file for compressed_scan_test.
# This may be replaced when dependencies are built.
