# Empty compiler generated dependencies file for s3sim_test.
# This may be replaced when dependencies are built.
