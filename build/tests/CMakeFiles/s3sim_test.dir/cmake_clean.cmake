file(REMOVE_RECURSE
  "CMakeFiles/s3sim_test.dir/s3sim_test.cc.o"
  "CMakeFiles/s3sim_test.dir/s3sim_test.cc.o.d"
  "s3sim_test"
  "s3sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
