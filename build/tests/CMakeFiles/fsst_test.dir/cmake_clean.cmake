file(REMOVE_RECURSE
  "CMakeFiles/fsst_test.dir/fsst_test.cc.o"
  "CMakeFiles/fsst_test.dir/fsst_test.cc.o.d"
  "fsst_test"
  "fsst_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
