# Empty compiler generated dependencies file for fsst_test.
# This may be replaced when dependencies are built.
