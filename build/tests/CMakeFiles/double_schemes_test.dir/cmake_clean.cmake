file(REMOVE_RECURSE
  "CMakeFiles/double_schemes_test.dir/double_schemes_test.cc.o"
  "CMakeFiles/double_schemes_test.dir/double_schemes_test.cc.o.d"
  "double_schemes_test"
  "double_schemes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
