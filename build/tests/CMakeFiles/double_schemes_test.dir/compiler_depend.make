# Empty compiler generated dependencies file for double_schemes_test.
# This may be replaced when dependencies are built.
