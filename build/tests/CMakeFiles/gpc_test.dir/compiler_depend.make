# Empty compiler generated dependencies file for gpc_test.
# This may be replaced when dependencies are built.
