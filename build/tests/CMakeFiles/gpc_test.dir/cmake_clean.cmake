file(REMOVE_RECURSE
  "CMakeFiles/gpc_test.dir/gpc_test.cc.o"
  "CMakeFiles/gpc_test.dir/gpc_test.cc.o.d"
  "gpc_test"
  "gpc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
