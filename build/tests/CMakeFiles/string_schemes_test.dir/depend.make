# Empty dependencies file for string_schemes_test.
# This may be replaced when dependencies are built.
