file(REMOVE_RECURSE
  "CMakeFiles/string_schemes_test.dir/string_schemes_test.cc.o"
  "CMakeFiles/string_schemes_test.dir/string_schemes_test.cc.o.d"
  "string_schemes_test"
  "string_schemes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
