file(REMOVE_RECURSE
  "CMakeFiles/lakeformat_test.dir/lakeformat_test.cc.o"
  "CMakeFiles/lakeformat_test.dir/lakeformat_test.cc.o.d"
  "lakeformat_test"
  "lakeformat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakeformat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
