# Empty dependencies file for lakeformat_test.
# This may be replaced when dependencies are built.
