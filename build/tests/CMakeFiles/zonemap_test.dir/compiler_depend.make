# Empty compiler generated dependencies file for zonemap_test.
# This may be replaced when dependencies are built.
