file(REMOVE_RECURSE
  "CMakeFiles/zonemap_test.dir/zonemap_test.cc.o"
  "CMakeFiles/zonemap_test.dir/zonemap_test.cc.o.d"
  "zonemap_test"
  "zonemap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zonemap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
