file(REMOVE_RECURSE
  "CMakeFiles/int_schemes_test.dir/int_schemes_test.cc.o"
  "CMakeFiles/int_schemes_test.dir/int_schemes_test.cc.o.d"
  "int_schemes_test"
  "int_schemes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/int_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
