# Empty dependencies file for int_schemes_test.
# This may be replaced when dependencies are built.
