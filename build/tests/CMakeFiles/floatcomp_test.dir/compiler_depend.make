# Empty compiler generated dependencies file for floatcomp_test.
# This may be replaced when dependencies are built.
