file(REMOVE_RECURSE
  "CMakeFiles/floatcomp_test.dir/floatcomp_test.cc.o"
  "CMakeFiles/floatcomp_test.dir/floatcomp_test.cc.o.d"
  "floatcomp_test"
  "floatcomp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floatcomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
