# Empty compiler generated dependencies file for selection_vector_test.
# This may be replaced when dependencies are built.
