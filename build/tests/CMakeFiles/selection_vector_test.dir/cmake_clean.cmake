file(REMOVE_RECURSE
  "CMakeFiles/selection_vector_test.dir/selection_vector_test.cc.o"
  "CMakeFiles/selection_vector_test.dir/selection_vector_test.cc.o.d"
  "selection_vector_test"
  "selection_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
