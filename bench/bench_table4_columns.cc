// Reproduces Table 4: per-column compression ratio and decompression
// throughput, BtrBlocks vs Parquet+Zstd-class, with the root scheme
// BtrBlocks chose for the first block. Columns are archetype stand-ins
// for the paper's random Public BI sample.
#include <cstdio>
#include <vector>

#include "common.h"
#include "datagen/archetypes.h"

namespace btr::bench {
namespace {

constexpr u32 kRows = 128000;

const char* RootSchemeName(ColumnType type, u8 code) {
  switch (type) {
    case ColumnType::kInteger:
      return IntSchemeName(static_cast<IntSchemeCode>(code));
    case ColumnType::kDouble:
      return DoubleSchemeName(static_cast<DoubleSchemeCode>(code));
    case ColumnType::kString:
      return StringSchemeName(static_cast<StringSchemeCode>(code));
  }
  return "?";
}

// Aggregated across every column for the sidecar headline metrics.
u64 g_btr_uncompressed = 0;
u64 g_btr_compressed = 0;
double g_btr_decompress_seconds = 0;

void RunColumn(const char* paper_name, const Relation& single) {
  CompressionConfig config;
  const Column& column = single.columns()[0];
  std::vector<Relation> corpus = SingleColumnRelation(column);
  FormatResult btr = MeasureBtr(corpus, config);
  g_btr_uncompressed += btr.uncompressed_bytes;
  g_btr_compressed += btr.compressed_bytes;
  g_btr_decompress_seconds += btr.decompress_seconds;
  lakeformat::ParquetOptions zstd_options;
  zstd_options.codec = gpc::CodecKind::kEntropyLz;
  FormatResult zstd = MeasureParquetLike(corpus, zstd_options);

  CompressedColumn compressed = CompressColumn(column, config);
  std::printf("%-34s %-7s %8.1f %8.1f %9.1f %9.1f  %s\n", paper_name,
              ColumnTypeName(column.type()), btr.DecompressGBps(),
              zstd.DecompressGBps(), btr.Ratio(), zstd.Ratio(),
              RootSchemeName(column.type(), compressed.block_root_schemes[0]));
}

Relation OneString(const char* name, datagen::StringArchetype a, u64 seed) {
  Relation r(name);
  datagen::FillString(&r.AddColumn(name, ColumnType::kString), a, kRows, seed);
  return r;
}
Relation OneInt(const char* name, datagen::IntArchetype a, u64 seed) {
  Relation r(name);
  datagen::FillInt(&r.AddColumn(name, ColumnType::kInteger), a, kRows, seed);
  return r;
}
Relation OneDouble(const char* name, datagen::DoubleArchetype a, u64 seed) {
  Relation r(name);
  datagen::FillDouble(&r.AddColumn(name, ColumnType::kDouble), a, kRows, seed);
  return r;
}

void Run() {
  using datagen::DoubleArchetype;
  using datagen::IntArchetype;
  using datagen::StringArchetype;
  std::printf("%-34s %-7s %8s %8s %9s %9s  %s\n", "column (paper analogue)",
              "type", "BTR GB/s", "Zst GB/s", "BTR cr", "Zstd cr",
              "scheme (root)");

  RunColumn("SalariesFrance/LIBDOM1",
            OneString("c", StringArchetype::kNullHeavy, 1));
  RunColumn("Redfin2/property_type",
            OneString("c", StringArchetype::kLowCardinality, 2));
  RunColumn("Motos/Medio", OneString("c", StringArchetype::kOneValue, 3));
  RunColumn("NYC/Community Board",
            OneString("c", StringArchetype::kCityNames, 4));
  RunColumn("PanCreactomy1/N[...]STREET1",
            OneString("c", StringArchetype::kStreetAddresses, 5));
  RunColumn("Uberlandia/municipio_da_ue",
            OneString("c", StringArchetype::kCategoryRuns, 6));
  RunColumn("RealEstate1/New Build?", OneInt("c", IntArchetype::kAllZero, 7));
  RunColumn("Medicare1/TOTAL_DAY_SUPPLY",
            OneInt("c", IntArchetype::kSupplyAmounts, 8));
  RunColumn("Uberlandia/cod_ibge_da_ue",
            OneInt("c", IntArchetype::kSevenDigitCodes, 9));
  RunColumn("Telco/CHARGD_SMS_P3",
            OneDouble("c", DoubleArchetype::kZeroDominant, 10));
  RunColumn("Telco/RECHRG[...]USED_P1",
            OneDouble("c", DoubleArchetype::kFrequencyTail, 11));
  RunColumn("Telco/TOTAL_MINS_P1",
            OneDouble("c", DoubleArchetype::kPrice2Decimals, 12));
  RunColumn("Redfin4/median_sale_price_mom",
            OneDouble("c", DoubleArchetype::kMixedWithNulls, 13));

  Report("btrblocks.aggregate_ratio",
         static_cast<double>(g_btr_uncompressed) / g_btr_compressed, "x",
         MetricKind::kRatio);
  Report("btrblocks.aggregate_decompress_gbps",
         static_cast<double>(g_btr_uncompressed) / g_btr_decompress_seconds /
             1e9,
         "GB/s", MetricKind::kThroughput, kDecompressRepeats);
}

}  // namespace
}  // namespace btr::bench

int main() {
  btr::bench::InitBench("table4_columns");
  btr::bench::PrintHeader(
      "Table 4: per-column ratio & decompression speed, BtrBlocks vs "
      "Parquet+Zstd-class");
  btr::bench::Run();
  return 0;
}
