// Oracle used by the Figure 5 / Figure 6 harnesses (paper Section 6.3):
// for one 64k block of a column, compress the *entire block* with every
// viable root scheme (cascades below the root decided as usual) and
// record each scheme's exact compressed size. A sampling strategy's pick
// is "correct" when its scheme compresses within 2% of the optimum.
#ifndef BTR_BENCH_SCHEME_ORACLE_H_
#define BTR_BENCH_SCHEME_ORACLE_H_

#include <map>
#include <vector>

#include "btr/btrblocks.h"

namespace btr::bench {

struct BlockOracle {
  // Exact full-block compressed bytes per viable root scheme code.
  std::map<u8, size_t> size_of_scheme;
  size_t optimal_size = 0;
  u8 optimal_scheme = 0;

  bool IsCorrect(u8 scheme, double tolerance = 1.02) const {
    auto it = size_of_scheme.find(scheme);
    if (it == size_of_scheme.end()) return false;
    return static_cast<double>(it->second) <=
           tolerance * static_cast<double>(optimal_size);
  }
};

// The block handle: one column's first block, type-erased.
struct OracleBlock {
  ColumnType type;
  const Column* column;  // first block = rows [0, min(size, 64000))
  u32 count;
};

inline std::vector<OracleBlock> FirstBlocks(const std::vector<Relation>& corpus) {
  std::vector<OracleBlock> blocks;
  for (const Relation& table : corpus) {
    for (const Column& column : table.columns()) {
      blocks.push_back(OracleBlock{column.type(), &column,
                                   std::min(column.size(), kBlockCapacity)});
    }
  }
  return blocks;
}

inline BlockOracle ComputeOracle(const OracleBlock& block,
                                 const CompressionConfig& base_config) {
  BlockOracle oracle;
  CompressionConfig config = base_config;  // cascades below root: default
  CompressionContext ctx{&config, config.max_cascade_depth};
  auto consider = [&](u8 code, size_t size) {
    oracle.size_of_scheme[code] = size;
    if (oracle.optimal_size == 0 || size < oracle.optimal_size) {
      oracle.optimal_size = size;
      oracle.optimal_scheme = code;
    }
  };
  switch (block.type) {
    case ColumnType::kInteger: {
      const i32* data = block.column->ints().data();
      IntStats stats = ComputeIntStats(data, block.count);
      IntSample sample = BuildIntSample(data, block.count, config);
      for (u32 c = 0; c < kIntSchemeCount; c++) {
        const IntScheme& scheme = GetIntScheme(static_cast<IntSchemeCode>(c));
        if (scheme.EstimateRatio(stats, sample, ctx) == 0.0) continue;
        ByteBuffer out;
        consider(static_cast<u8>(c),
                 1 + scheme.Compress(data, block.count, &out, ctx));
      }
      break;
    }
    case ColumnType::kDouble: {
      const double* data = block.column->doubles().data();
      DoubleStats stats = ComputeDoubleStats(data, block.count);
      DoubleSample sample = BuildDoubleSample(data, block.count, config);
      for (u32 c = 0; c < kDoubleSchemeCount; c++) {
        const DoubleScheme& scheme =
            GetDoubleScheme(static_cast<DoubleSchemeCode>(c));
        if (scheme.EstimateRatio(stats, sample, ctx) == 0.0) continue;
        ByteBuffer out;
        consider(static_cast<u8>(c),
                 1 + scheme.Compress(data, block.count, &out, ctx));
      }
      break;
    }
    case ColumnType::kString: {
      std::vector<u32> scratch;
      StringsView view = block.column->StringBlock(0, block.count, &scratch);
      StringStats stats = ComputeStringStats(view);
      StringSample sample = BuildStringSample(view, config);
      for (u32 c = 0; c < kStringSchemeCount; c++) {
        const StringScheme& scheme =
            GetStringScheme(static_cast<StringSchemeCode>(c));
        if (scheme.EstimateRatio(stats, sample, ctx) == 0.0) continue;
        ByteBuffer out;
        consider(static_cast<u8>(c), 1 + scheme.Compress(view, &out, ctx));
      }
      break;
    }
  }
  return oracle;
}

// The scheme a given sampling strategy picks for this block.
inline u8 StrategyPick(const OracleBlock& block, u32 runs, u32 run_length,
                       bool exhaustive = false) {
  CompressionConfig config;
  config.sample_runs = runs;
  config.sample_run_length = run_length;
  config.exhaustive_estimation = exhaustive;
  switch (block.type) {
    case ColumnType::kInteger:
      return static_cast<u8>(
          PickIntScheme(block.column->ints().data(), block.count, config));
    case ColumnType::kDouble:
      return static_cast<u8>(
          PickDoubleScheme(block.column->doubles().data(), block.count, config));
    case ColumnType::kString: {
      std::vector<u32> scratch;
      StringsView view = block.column->StringBlock(0, block.count, &scratch);
      return static_cast<u8>(PickStringScheme(view, config));
    }
  }
  return 0;
}

}  // namespace btr::bench

#endif  // BTR_BENCH_SCHEME_ORACLE_H_
