// Reproduces Figure 8: compression ratio vs in-memory decompression
// bandwidth for BtrBlocks, Parquet-like and ORC-like (each with no codec,
// the Snappy-class codec and the Zstd-class codec), on the Public-BI-like
// and TPC-H-like corpora. Also covers the Section 6.8 ablation: BtrBlocks
// with all SIMD kernels disabled (scalar decompression).
//
// Throughput here is single-threaded (the paper's figure is on 36 cores;
// relative ordering is the reproduced result).
#include <cstdio>

#include "common.h"
#include "util/simd.h"

namespace btr::bench {
namespace {

void RunCorpus(const char* name, const char* tag,
               const std::vector<Relation>& corpus) {
  std::printf("\n--- %s ---\n", name);
  std::printf("%-26s  %8s  %18s\n", "format", "ratio", "decompression GB/s");

  auto print = [&](const char* format, const FormatResult& r) {
    std::printf("%-26s  %7.2fx  %18.2f\n", format, r.Ratio(), r.DecompressGBps());
  };

  {
    CompressionConfig config;
    FormatResult btr = MeasureBtr(corpus, config);
    print("BtrBlocks", btr);
    Reporter::Get().ReportFormatResult(std::string(tag) + ".btrblocks", btr);
    ScopedSimd scalar(false);
    FormatResult scalar_btr = MeasureBtr(corpus, config);
    print("BtrBlocks (scalar, 6.8)", scalar_btr);
    Report(std::string(tag) + ".btrblocks_scalar.decompress_gbps",
           scalar_btr.DecompressGBps(), "GB/s", MetricKind::kThroughput,
           kDecompressRepeats);
  }
  for (auto [label, codec] :
       {std::pair{"Parquet", gpc::CodecKind::kNone},
        std::pair{"Parquet+Snappy-class", gpc::CodecKind::kLz77},
        std::pair{"Parquet+Zstd-class", gpc::CodecKind::kEntropyLz}}) {
    lakeformat::ParquetOptions options;
    options.codec = codec;
    print(label, MeasureParquetLike(corpus, options));
  }
  for (auto [label, codec] :
       {std::pair{"ORC", gpc::CodecKind::kNone},
        std::pair{"ORC+Snappy-class", gpc::CodecKind::kLz77},
        std::pair{"ORC+Zstd-class", gpc::CodecKind::kEntropyLz}}) {
    lakeformat::OrcOptions options;
    options.codec = codec;
    print(label, MeasureOrcLike(corpus, options));
  }
}

}  // namespace
}  // namespace btr::bench

int main() {
  using namespace btr::bench;
  InitBench("fig8_decompression");
  PrintHeader(
      "Figure 8: ratio vs in-memory decompression bandwidth (single thread)");
  RunCorpus("Public BI (synthetic archetypes)", "pbi", PbiCorpus());
  RunCorpus("TPC-H (synthetic dbgen-like)", "tpch", TpchCorpus());
  return 0;
}
