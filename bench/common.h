// Shared helpers for the per-table/figure benchmark harnesses.
//
// Every binary in bench/ regenerates one table or figure of the paper and
// prints rows in the paper's shape. Corpus sizes default small enough for
// a laptop-class single-core run; set BTR_BENCH_SCALE=N (default 1) to
// multiply the row counts.
#ifndef BTR_BENCH_COMMON_H_
#define BTR_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "btr/btrblocks.h"
#include "datagen/public_bi.h"
#include "datagen/tpch.h"
#include "lakeformat/orc_like.h"
#include "lakeformat/parquet_like.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace btr::bench {

inline u32 BenchScale() {
  const char* env = std::getenv("BTR_BENCH_SCALE");
  if (env == nullptr) return 1;
  int scale = std::atoi(env);
  return scale < 1 ? 1 : static_cast<u32>(scale);
}

inline std::vector<Relation> PbiCorpus(u32 rows_per_table = 128000,
                                       u32 tables = 5) {
  datagen::PublicBiOptions options;
  options.tables = tables;
  options.rows_per_table = rows_per_table * BenchScale();
  return datagen::MakePublicBiCorpus(options);
}

inline std::vector<Relation> TpchCorpus(u32 lineitem_rows = 200000) {
  datagen::TpchOptions options;
  options.lineitem_rows = lineitem_rows * BenchScale();
  return datagen::MakeTpchCorpus(options);
}

// --- measurements ------------------------------------------------------------

struct FormatResult {
  u64 uncompressed_bytes = 0;
  u64 compressed_bytes = 0;
  double compress_seconds = 0;
  double decompress_seconds = 0;  // single-thread, best of repeats

  double Ratio() const {
    return compressed_bytes == 0
               ? 0
               : static_cast<double>(uncompressed_bytes) / compressed_bytes;
  }
  double DecompressGBps() const {
    return decompress_seconds == 0
               ? 0
               : static_cast<double>(uncompressed_bytes) / decompress_seconds / 1e9;
  }
};

inline constexpr int kDecompressRepeats = 3;

inline FormatResult MeasureBtr(const std::vector<Relation>& corpus,
                               const CompressionConfig& config) {
  FormatResult result;
  std::vector<CompressedRelation> compressed;
  Timer compress_timer;
  for (const Relation& table : corpus) {
    compressed.push_back(CompressRelation(table, config));
  }
  result.compress_seconds = compress_timer.ElapsedSeconds();
  for (const CompressedRelation& c : compressed) {
    result.uncompressed_bytes += c.UncompressedBytes();
    result.compressed_bytes += c.CompressedBytes();
  }
  double best = 1e300;
  for (int repeat = 0; repeat < kDecompressRepeats; repeat++) {
    Timer timer;
    for (const CompressedRelation& c : compressed) {
      DecompressRelation(c, config);
    }
    best = std::min(best, timer.ElapsedSeconds());
  }
  result.decompress_seconds = best;
  return result;
}

inline FormatResult MeasureParquetLike(const std::vector<Relation>& corpus,
                                       const lakeformat::ParquetOptions& options) {
  FormatResult result;
  std::vector<ByteBuffer> files;
  Timer compress_timer;
  for (const Relation& table : corpus) {
    files.push_back(lakeformat::WriteParquetLike(table, options));
  }
  result.compress_seconds = compress_timer.ElapsedSeconds();
  for (const Relation& table : corpus) {
    result.uncompressed_bytes += table.UncompressedBytes();
  }
  for (const ByteBuffer& f : files) result.compressed_bytes += f.size();
  double best = 1e300;
  for (int repeat = 0; repeat < kDecompressRepeats; repeat++) {
    Timer timer;
    for (const ByteBuffer& f : files) {
      u64 bytes = 0;
      Status status = lakeformat::DecodeParquetLikeBytes(f.data(), f.size(), &bytes);
      BTR_CHECK_MSG(status.ok(), "parquet-like bench file failed to decode");
    }
    best = std::min(best, timer.ElapsedSeconds());
  }
  result.decompress_seconds = best;
  return result;
}

inline FormatResult MeasureOrcLike(const std::vector<Relation>& corpus,
                                   const lakeformat::OrcOptions& options) {
  FormatResult result;
  std::vector<ByteBuffer> files;
  Timer compress_timer;
  for (const Relation& table : corpus) {
    files.push_back(lakeformat::WriteOrcLike(table, options));
  }
  result.compress_seconds = compress_timer.ElapsedSeconds();
  for (const Relation& table : corpus) {
    result.uncompressed_bytes += table.UncompressedBytes();
  }
  for (const ByteBuffer& f : files) result.compressed_bytes += f.size();
  double best = 1e300;
  for (int repeat = 0; repeat < kDecompressRepeats; repeat++) {
    Timer timer;
    for (const ByteBuffer& f : files) {
      u64 bytes = 0;
      Status status = lakeformat::DecodeOrcLikeBytes(f.data(), f.size(), &bytes);
      BTR_CHECK_MSG(status.ok(), "orc-like bench file failed to decode");
    }
    best = std::min(best, timer.ElapsedSeconds());
  }
  result.decompress_seconds = best;
  return result;
}

// Single-column corpus view helper.
inline std::vector<Relation> SingleColumnRelation(const Column& column) {
  std::vector<Relation> corpus;
  Relation r("single");
  Column& copy = r.AddColumn(column.name(), column.type());
  for (u32 i = 0; i < column.size(); i++) {
    if (column.IsNull(i)) {
      copy.AppendNull();
      continue;
    }
    switch (column.type()) {
      case ColumnType::kInteger: copy.AppendInt(column.ints()[i]); break;
      case ColumnType::kDouble: copy.AppendDouble(column.doubles()[i]); break;
      case ColumnType::kString: copy.AppendString(column.GetString(i)); break;
    }
  }
  corpus.push_back(std::move(r));
  return corpus;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
  // Metrics sidecar: BTR_METRICS_JSON=<path> dumps the metrics registry as
  // JSON when the benchmark exits, so runs can be diffed without reparsing
  // stdout. Registered once, from whichever harness prints first.
  static bool sidecar_registered = false;
  if (!sidecar_registered) {
    sidecar_registered = true;
    if (std::getenv("BTR_METRICS_JSON") != nullptr) {
      std::atexit([] {
        const char* path = std::getenv("BTR_METRICS_JSON");
        if (path == nullptr) return;
        if (obs::WriteMetricsJsonFile(path)) {
          std::fprintf(stderr, "metrics sidecar written to %s\n", path);
        } else {
          std::fprintf(stderr, "error: cannot write metrics sidecar %s\n", path);
        }
      });
    }
  }
}

}  // namespace btr::bench

#endif  // BTR_BENCH_COMMON_H_
