// Shared helpers for the per-table/figure benchmark harnesses.
//
// Every binary in bench/ regenerates one table or figure of the paper and
// prints rows in the paper's shape. Corpus sizes default small enough for
// a laptop-class single-core run; set BTR_BENCH_SCALE=N (default 1) to
// multiply the row counts.
#ifndef BTR_BENCH_COMMON_H_
#define BTR_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "btr/btrblocks.h"
#include "datagen/public_bi.h"
#include "datagen/tpch.h"
#include "lakeformat/orc_like.h"
#include "lakeformat/parquet_like.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace btr::bench {

inline u32 BenchScale() {
  const char* env = std::getenv("BTR_BENCH_SCALE");
  if (env == nullptr) return 1;
  int scale = std::atoi(env);
  return scale < 1 ? 1 : static_cast<u32>(scale);
}

inline std::vector<Relation> PbiCorpus(u32 rows_per_table = 128000,
                                       u32 tables = 5) {
  datagen::PublicBiOptions options;
  options.tables = tables;
  options.rows_per_table = rows_per_table * BenchScale();
  return datagen::MakePublicBiCorpus(options);
}

inline std::vector<Relation> TpchCorpus(u32 lineitem_rows = 200000) {
  datagen::TpchOptions options;
  options.lineitem_rows = lineitem_rows * BenchScale();
  return datagen::MakeTpchCorpus(options);
}

// --- measurements ------------------------------------------------------------

struct FormatResult {
  u64 uncompressed_bytes = 0;
  u64 compressed_bytes = 0;
  double compress_seconds = 0;
  double decompress_seconds = 0;  // single-thread, best of repeats

  double Ratio() const {
    return compressed_bytes == 0
               ? 0
               : static_cast<double>(uncompressed_bytes) / compressed_bytes;
  }
  double DecompressGBps() const {
    return decompress_seconds == 0
               ? 0
               : static_cast<double>(uncompressed_bytes) / decompress_seconds / 1e9;
  }
};

inline constexpr int kDecompressRepeats = 3;

inline FormatResult MeasureBtr(const std::vector<Relation>& corpus,
                               const CompressionConfig& config) {
  FormatResult result;
  std::vector<CompressedRelation> compressed;
  Timer compress_timer;
  for (const Relation& table : corpus) {
    compressed.push_back(CompressRelation(table, config));
  }
  result.compress_seconds = compress_timer.ElapsedSeconds();
  for (const CompressedRelation& c : compressed) {
    result.uncompressed_bytes += c.UncompressedBytes();
    result.compressed_bytes += c.CompressedBytes();
  }
  double best = 1e300;
  for (int repeat = 0; repeat < kDecompressRepeats; repeat++) {
    Timer timer;
    for (const CompressedRelation& c : compressed) {
      DecompressRelation(c, config);
    }
    best = std::min(best, timer.ElapsedSeconds());
  }
  result.decompress_seconds = best;
  return result;
}

inline FormatResult MeasureParquetLike(const std::vector<Relation>& corpus,
                                       const lakeformat::ParquetOptions& options) {
  FormatResult result;
  std::vector<ByteBuffer> files;
  Timer compress_timer;
  for (const Relation& table : corpus) {
    files.push_back(lakeformat::WriteParquetLike(table, options));
  }
  result.compress_seconds = compress_timer.ElapsedSeconds();
  for (const Relation& table : corpus) {
    result.uncompressed_bytes += table.UncompressedBytes();
  }
  for (const ByteBuffer& f : files) result.compressed_bytes += f.size();
  double best = 1e300;
  for (int repeat = 0; repeat < kDecompressRepeats; repeat++) {
    Timer timer;
    for (const ByteBuffer& f : files) {
      u64 bytes = 0;
      Status status = lakeformat::DecodeParquetLikeBytes(f.data(), f.size(), &bytes);
      BTR_CHECK_MSG(status.ok(), "parquet-like bench file failed to decode");
    }
    best = std::min(best, timer.ElapsedSeconds());
  }
  result.decompress_seconds = best;
  return result;
}

inline FormatResult MeasureOrcLike(const std::vector<Relation>& corpus,
                                   const lakeformat::OrcOptions& options) {
  FormatResult result;
  std::vector<ByteBuffer> files;
  Timer compress_timer;
  for (const Relation& table : corpus) {
    files.push_back(lakeformat::WriteOrcLike(table, options));
  }
  result.compress_seconds = compress_timer.ElapsedSeconds();
  for (const Relation& table : corpus) {
    result.uncompressed_bytes += table.UncompressedBytes();
  }
  for (const ByteBuffer& f : files) result.compressed_bytes += f.size();
  double best = 1e300;
  for (int repeat = 0; repeat < kDecompressRepeats; repeat++) {
    Timer timer;
    for (const ByteBuffer& f : files) {
      u64 bytes = 0;
      Status status = lakeformat::DecodeOrcLikeBytes(f.data(), f.size(), &bytes);
      BTR_CHECK_MSG(status.ok(), "orc-like bench file failed to decode");
    }
    best = std::min(best, timer.ElapsedSeconds());
  }
  result.decompress_seconds = best;
  return result;
}

// Single-column corpus view helper.
inline std::vector<Relation> SingleColumnRelation(const Column& column) {
  std::vector<Relation> corpus;
  Relation r("single");
  Column& copy = r.AddColumn(column.name(), column.type());
  for (u32 i = 0; i < column.size(); i++) {
    if (column.IsNull(i)) {
      copy.AppendNull();
      continue;
    }
    switch (column.type()) {
      case ColumnType::kInteger: copy.AppendInt(column.ints()[i]); break;
      case ColumnType::kDouble: copy.AppendDouble(column.doubles()[i]); break;
      case ColumnType::kString: copy.AppendString(column.GetString(i)); break;
    }
  }
  corpus.push_back(std::move(r));
  return corpus;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

// --- durable bench telemetry (docs/OBSERVABILITY.md) -------------------------
//
// Every bench binary calls InitBench("<name>") once and Report(...) for each
// headline metric it prints. On exit the reporter writes a schema-versioned
// sidecar BENCH_<name>.json into $BTR_BENCH_OUT_DIR (or the working
// directory), so runs can be archived and diffed — tools/bench_compare.py
// consumes two sidecar sets and gates CI on regressions vs bench/baselines/.
//
// Sidecar schema (stable; bump kSidecarSchemaVersion on breaking change):
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "git_sha": "<GITHUB_SHA | BTR_GIT_SHA | unknown>",
//     "config": {"bench_scale": <N>},
//     "metrics": {
//       "<metric>": {"value": <num>, "unit": "<unit>",
//                     "kind": "<time|throughput|ratio|bytes|count>",
//                     "iterations": <N>}, ...
//     }
//   }
//
// `kind` drives comparison semantics: time regresses upward, throughput and
// ratio regress downward, bytes regresses upward, count must match exactly.
enum class MetricKind { kTime, kThroughput, kRatio, kBytes, kCount };

inline const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kTime: return "time";
    case MetricKind::kThroughput: return "throughput";
    case MetricKind::kRatio: return "ratio";
    case MetricKind::kBytes: return "bytes";
    case MetricKind::kCount: return "count";
  }
  return "?";
}

class Reporter {
 public:
  static Reporter& Get() {
    static Reporter* instance = new Reporter();
    return *instance;
  }

  // Names this run's sidecar and registers the atexit writer (once).
  void InitBench(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    bench_name_ = name;
    if (!atexit_registered_) {
      atexit_registered_ = true;
      std::atexit([] { Reporter::Get().WriteSidecar(); });
    }
  }

  // Records one metric. Re-reporting a name overwrites the earlier value
  // (benches that loop report their final/aggregate numbers).
  void Report(const std::string& metric, double value, const std::string& unit,
              MetricKind kind, u64 iterations = 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Metric& m : metrics_) {
      if (m.name == metric) {
        m = Metric{metric, value, unit, kind, iterations};
        return;
      }
    }
    metrics_.push_back(Metric{metric, value, unit, kind, iterations});
  }

  // FormatResult convenience: the four headline numbers every format
  // measurement produces, under "<prefix>." names.
  void ReportFormatResult(const std::string& prefix,
                          const FormatResult& result) {
    Report(prefix + ".ratio", result.Ratio(), "x", MetricKind::kRatio);
    Report(prefix + ".compressed_bytes",
           static_cast<double>(result.compressed_bytes), "bytes",
           MetricKind::kBytes);
    Report(prefix + ".compress_seconds", result.compress_seconds, "s",
           MetricKind::kTime);
    Report(prefix + ".decompress_gbps", result.DecompressGBps(), "GB/s",
           MetricKind::kThroughput, kDecompressRepeats);
  }

  std::string ToJson() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\n  \"schema_version\": ";
    out += std::to_string(kSidecarSchemaVersion);
    out += ",\n  \"bench\": \"";
    obs::AppendJsonEscaped(bench_name_, &out);
    out += "\",\n  \"git_sha\": \"";
    obs::AppendJsonEscaped(GitSha(), &out);
    out += "\",\n  \"config\": {\"bench_scale\": ";
    out += std::to_string(BenchScale());
    out += "},\n  \"metrics\": {";
    bool first = true;
    for (const Metric& m : metrics_) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      obs::AppendJsonEscaped(m.name, &out);
      out += "\": {\"value\": ";
      AppendJsonNumber(m.value, &out);
      out += ", \"unit\": \"";
      obs::AppendJsonEscaped(m.unit, &out);
      out += "\", \"kind\": \"";
      out += MetricKindName(m.kind);
      out += "\", \"iterations\": ";
      out += std::to_string(m.iterations);
      out += "}";
    }
    out += "\n  }\n}\n";
    return out;
  }

  // Writes BENCH_<name>.json; no-op (true) when InitBench was never called.
  bool WriteSidecar() const {
    std::string path;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (bench_name_.empty()) return true;
      const char* dir = std::getenv("BTR_BENCH_OUT_DIR");
      if (dir != nullptr && dir[0] != '\0') {
        path = dir;
        if (path.back() != '/') path += '/';
      }
      path += "BENCH_" + bench_name_ + ".json";
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write bench sidecar %s\n",
                   path.c_str());
      return false;
    }
    out << ToJson();
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write bench sidecar %s\n",
                   path.c_str());
      return false;
    }
    std::fprintf(stderr, "bench sidecar written to %s\n", path.c_str());
    return true;
  }

 private:
  static constexpr u32 kSidecarSchemaVersion = 1;

  struct Metric {
    std::string name;
    double value;
    std::string unit;
    MetricKind kind;
    u64 iterations;
  };

  static std::string GitSha() {
    for (const char* var : {"GITHUB_SHA", "BTR_GIT_SHA"}) {
      const char* sha = std::getenv(var);
      if (sha != nullptr && sha[0] != '\0') return sha;
    }
    return "unknown";
  }

  // JSON has no NaN/Inf literals; a bench that produced one has already
  // failed in a way the comparison should see, so encode as null.
  static void AppendJsonNumber(double value, std::string* out) {
    if (!std::isfinite(value)) {
      *out += "null";
      return;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    *out += buffer;
  }

  Reporter() = default;

  mutable std::mutex mutex_;
  std::string bench_name_;
  std::vector<Metric> metrics_;
  bool atexit_registered_ = false;
};

// One-line setup used at the top of every bench main().
inline void InitBench(const std::string& name) {
  Reporter::Get().InitBench(name);
}

inline void Report(const std::string& metric, double value,
                   const std::string& unit, MetricKind kind,
                   u64 iterations = 1) {
  Reporter::Get().Report(metric, value, unit, kind, iterations);
}

}  // namespace btr::bench

#endif  // BTR_BENCH_COMMON_H_
