// Reproduces Figure 6: compressed-size overhead vs the best possible
// scheme choice, as a function of sample size (10 runs of growing length,
// up to estimating on the entire block).
#include <cstdio>

#include "common.h"
#include "scheme_oracle.h"

namespace btr::bench {
namespace {

void Run() {
  std::vector<Relation> corpus = PbiCorpus();
  std::vector<OracleBlock> blocks = FirstBlocks(corpus);
  CompressionConfig base_config;

  std::vector<BlockOracle> oracles;
  oracles.reserve(blocks.size());
  u64 optimal_total = 0;
  for (const OracleBlock& block : blocks) {
    oracles.push_back(ComputeOracle(block, base_config));
    optimal_total += oracles.back().optimal_size;
  }

  struct Point {
    const char* name;
    u32 run_length;     // 10 runs each
    bool entire_block;
  };
  const Point points[] = {
      {"10x8", 8, false},     {"10x16", 16, false},   {"10x32", 32, false},
      {"10x64", 64, false},   {"10x128", 128, false}, {"10x256", 256, false},
      {"10x512", 512, false}, {"10x1024", 1024, false},
      {"10x2048", 2048, false}, {"10x4096", 4096, false},
      {"entire block", 0, true},
  };
  std::printf("\n%-14s  %14s  %18s\n", "sample", "tuples [%]",
              "size vs optimum");
  for (const Point& p : points) {
    u64 chosen_total = 0;
    for (size_t b = 0; b < blocks.size(); b++) {
      u8 pick = p.entire_block
                    ? StrategyPick(blocks[b], 0, 0, /*exhaustive=*/true)
                    : StrategyPick(blocks[b], 10, p.run_length);
      auto it = oracles[b].size_of_scheme.find(pick);
      // A pick outside the oracle's viable set only happens for
      // uncompressed fallbacks; cost it at the uncompressed size.
      if (it != oracles[b].size_of_scheme.end()) {
        chosen_total += it->second;
      } else {
        chosen_total += oracles[b].optimal_size * 2;  // pessimistic
      }
    }
    double overhead =
        100.0 * (static_cast<double>(chosen_total) / optimal_total - 1.0);
    double sampled_share =
        p.entire_block ? 100.0 : 100.0 * (10.0 * p.run_length) / 64000.0;
    std::printf("%-14s  %13.2f%%  %+17.2f%%\n", p.name, sampled_share, overhead);
    if (!p.entire_block && p.run_length == 64) {
      // Deterministic given the seeded corpus; "bytes" kind = lower is
      // better, gated strictly in CI.
      Report("default_10x64.size_overhead_percent", overhead, "%",
             MetricKind::kBytes);
    }
  }
}

}  // namespace
}  // namespace btr::bench

int main() {
  btr::bench::InitBench("fig6_samplesize");
  btr::bench::PrintHeader(
      "Figure 6: compressed size vs optimum for growing sample sizes");
  btr::bench::Run();
  return 0;
}
