// Reproduces Figure 5 (correct scheme choices per sampling strategy,
// N = 640 sampled tuples) plus the Section 3.1 claims: scheme selection
// CPU share (~1.2%) and correctness of the default 10x64 strategy (~77%).
#include <cstdio>

#include "common.h"
#include "scheme_oracle.h"

namespace btr::bench {
namespace {

struct Strategy {
  const char* name;
  u32 runs;
  u32 run_length;
};

void Run() {
  std::vector<Relation> corpus = PbiCorpus();
  std::vector<OracleBlock> blocks = FirstBlocks(corpus);
  CompressionConfig base_config;

  std::vector<BlockOracle> oracles;
  oracles.reserve(blocks.size());
  for (const OracleBlock& block : blocks) {
    oracles.push_back(ComputeOracle(block, base_config));
  }

  // Strategies sampling 640 tuples each (paper Figure 5, left to right:
  // single tuples, one contiguous range, then runs x length mixes).
  const Strategy strategies[] = {
      {"single (640x1)", 640, 1}, {"range (1x640)", 1, 640},
      {"320x2", 320, 2},          {"80x8", 80, 8},
      {"40x16", 40, 16},          {"10x64 (default)", 10, 64},
      {"5x128", 5, 128},
  };
  std::printf("\n%-18s  %s\n", "strategy", "correct scheme choices [%]");
  for (const Strategy& s : strategies) {
    u32 correct = 0;
    for (size_t b = 0; b < blocks.size(); b++) {
      u8 pick = StrategyPick(blocks[b], s.runs, s.run_length);
      if (oracles[b].IsCorrect(pick)) correct++;
    }
    double percent = 100.0 * correct / static_cast<double>(blocks.size());
    std::printf("%-18s  %5.1f%%\n", s.name, percent);
    if (s.runs == 10 && s.run_length == 64) {
      // Deterministic given the seeded corpus: gate exactly in CI.
      Report("default_10x64.correct_percent", percent, "%",
             MetricKind::kRatio);
    }
  }

  // Section 3.1: estimation CPU share during full compression.
  Telemetry telemetry;
  CompressionConfig config;
  config.telemetry = &telemetry;
  for (const Relation& table : corpus) CompressRelation(table, config);
  double estimate_share =
      100.0 * static_cast<double>(telemetry.estimate_ns) /
      static_cast<double>(telemetry.compress_ns);
  Report("estimation.cpu_share_percent", estimate_share, "%",
         MetricKind::kTime);
  std::printf(
      "\nSample-based ratio estimation: %.1f%% of compression time "
      "(paper: ~1.2%%)\n",
      estimate_share);
  std::printf(
      "Statistics collection (min/max/unique/runs): %.1f%% of compression "
      "time\n(note: this repo's absolute compression speed is several times "
      "the paper's\n75 MB/s, which inflates fixed per-block shares)\n",
      100.0 * static_cast<double>(telemetry.stats_ns) /
          static_cast<double>(telemetry.compress_ns));
}

}  // namespace
}  // namespace btr::bench

int main() {
  btr::bench::InitBench("fig5_sampling");
  btr::bench::PrintHeader(
      "Figure 5: correct scheme choices per sampling strategy (N=640)");
  btr::bench::Run();
  return 0;
}
