// Reproduces Figure 7: Public BI compression ratios for four proprietary
// column stores (A-D), Parquet variants and BtrBlocks.
//
// The proprietary systems are closed source; following DESIGN.md they are
// substituted by four presets over this repo's own substrates that span
// the same design space (the paper anonymizes them anyway):
//   DB-A: Data-Blocks-style  — OneValue + Dictionary only, byte-addressable
//   DB-B: SQL-Server-style   — OneValue + RLE + bit-packing
//   DB-C: DB2-BLU-style      — OneValue + Frequency + Dictionary
//   DB-D: heavyweight        — ORC-like with the Zstd-class codec
#include <cstdio>

#include "common.h"

namespace btr::bench {
namespace {

u32 Mask(std::initializer_list<u32> bits) {
  u32 mask = 0;
  for (u32 b : bits) mask |= 1u << b;
  return mask;
}

void Run() {
  std::vector<Relation> corpus = PbiCorpus();
  std::printf("\n%-26s  %10s\n", "format", "ratio");

  auto report = [](const char* metric, const FormatResult& r) {
    Report(std::string("pbi.") + metric + ".ratio", r.Ratio(), "x",
           MetricKind::kRatio);
  };
  auto print_btr = [&](const char* name, const char* metric,
                       CompressionConfig config) {
    FormatResult r = MeasureBtr(corpus, config);
    std::printf("%-26s  %9.2fx\n", name, r.Ratio());
    report(metric, r);
  };

  {
    CompressionConfig a;
    a.int_schemes = Mask({0, 1, 3});     // uncompressed, onevalue, dict
    a.double_schemes = Mask({0, 1, 3});
    a.string_schemes = Mask({0, 1, 2});
    a.max_cascade_depth = 1;             // byte-addressable: no cascades
    print_btr("DB-A (datablocks-style)", "db_a", a);
  }
  {
    CompressionConfig b;
    b.int_schemes = Mask({0, 1, 2, 5});  // + rle, bp128
    b.double_schemes = Mask({0, 1, 2});
    b.string_schemes = Mask({0, 1, 2});
    b.max_cascade_depth = 2;
    print_btr("DB-B (sqlserver-style)", "db_b", b);
  }
  {
    CompressionConfig c;
    c.int_schemes = Mask({0, 1, 3, 4});  // + frequency
    c.double_schemes = Mask({0, 1, 3, 4});
    c.string_schemes = Mask({0, 1, 2});
    c.max_cascade_depth = 2;
    print_btr("DB-C (db2blu-style)", "db_c", c);
  }
  {
    lakeformat::OrcOptions d;
    d.codec = gpc::CodecKind::kEntropyLz;
    FormatResult r = MeasureOrcLike(corpus, d);
    std::printf("%-26s  %9.2fx\n", "DB-D (heavyweight)", r.Ratio());
    report("db_d", r);
  }
  {
    lakeformat::ParquetOptions p;
    FormatResult r = MeasureParquetLike(corpus, p);
    std::printf("%-26s  %9.2fx\n", "Parquet", r.Ratio());
    report("parquet", r);
    p.codec = gpc::CodecKind::kLz77;
    r = MeasureParquetLike(corpus, p);
    std::printf("%-26s  %9.2fx\n", "Parquet+Snappy-class", r.Ratio());
    report("parquet_snappy", r);
    p.codec = gpc::CodecKind::kEntropyLz;
    r = MeasureParquetLike(corpus, p);
    std::printf("%-26s  %9.2fx\n", "Parquet+Zstd-class", r.Ratio());
    report("parquet_zstd", r);
  }
  print_btr("BtrBlocks", "btrblocks", CompressionConfig{});
}

}  // namespace
}  // namespace btr::bench

int main() {
  btr::bench::InitBench("fig7_ratios");
  btr::bench::PrintHeader(
      "Figure 7: Public BI compression ratios across formats");
  btr::bench::Run();
  return 0;
}
