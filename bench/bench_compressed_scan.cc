// Ablation (DESIGN.md / paper Section 7): equality predicates evaluated
// directly on compressed blocks vs decompress-then-filter. The fast paths
// exploit the same scheme structure the paper says "can, in principle,
// support processing compressed data".
#include <cstdio>

#include "btr/kernels/scan_kernels.h"
#include "btr/predicate.h"
#include "common.h"
#include "datagen/archetypes.h"

namespace btr::bench {
namespace {

constexpr u32 kRows = 64000;
constexpr int kRepeats = 200;

template <typename ScanFn, typename RefFn>
void Measure(const char* name, const char* metric, const ByteBuffer& block,
             const ScanFn& scan, const RefFn& reference) {
  u32 scan_result = 0;
  Timer scan_timer;
  for (int r = 0; r < kRepeats; r++) scan_result = scan();
  double scan_seconds = scan_timer.ElapsedSeconds();
  u32 ref_result = 0;
  Timer ref_timer;
  for (int r = 0; r < kRepeats; r++) ref_result = reference();
  double ref_seconds = ref_timer.ElapsedSeconds();
  BTR_CHECK(scan_result == ref_result);
  std::printf("%-28s  %-5s  matches %6u  %9.1f M rows/s  %9.1f M rows/s  %6.1fx\n",
              name, kernels::HasFastEqualsPath(block.data()) ? "yes" : "no", scan_result,
              kRows * kRepeats / scan_seconds / 1e6,
              kRows * kRepeats / ref_seconds / 1e6, ref_seconds / scan_seconds);
  Report(std::string(metric) + ".mrows_per_s",
         kRows * kRepeats / scan_seconds / 1e6, "M rows/s",
         MetricKind::kThroughput, kRepeats);
}

void Run() {
  CompressionConfig config;
  std::printf("%-28s  %-5s  %14s  %15s  %15s  %7s\n", "column", "fast",
              "", "compressed scan", "materialize", "speedup");

  {
    std::vector<i32> data =
        datagen::MakeInts(datagen::IntArchetype::kSkewedCategory, kRows, 1);
    ByteBuffer block;
    CompressIntBlock(data.data(), nullptr, kRows, &block, config);
    DecodedBlock scratch;
    Measure("int skewed (= dominant)", "int_skewed", block,
            [&] { return CountMatches(block.data(), Predicate::EqualsInt("c", 1), config); },
            [&] {
              DecompressBlock(block.data(), &scratch, config);
              u32 m = 0;
              for (u32 i = 0; i < scratch.count; i++) m += scratch.ints[i] == 1;
              return m;
            });
  }
  {
    std::vector<i32> data =
        datagen::MakeInts(datagen::IntArchetype::kForeignKeyRuns, kRows, 2);
    ByteBuffer block;
    CompressIntBlock(data.data(), nullptr, kRows, &block, config);
    DecodedBlock scratch;
    i32 probe = data[kRows / 2];
    Measure("int fk runs (= key)", "int_fk_runs", block,
            [&] { return CountMatches(block.data(), Predicate::EqualsInt("c", probe), config); },
            [&] {
              DecompressBlock(block.data(), &scratch, config);
              u32 m = 0;
              for (u32 i = 0; i < scratch.count; i++) {
                m += scratch.ints[i] == probe;
              }
              return m;
            });
  }
  {
    Relation r("t");
    Column& c = r.AddColumn("s", ColumnType::kString);
    datagen::FillString(&c, datagen::StringArchetype::kCityNames, kRows, 3);
    std::vector<u32> offsets;
    StringsView view = c.StringBlock(0, kRows, &offsets);
    ByteBuffer block;
    CompressStringBlock(view, nullptr, &block, config);
    DecodedBlock scratch;
    Measure("string cities (= PHOENIX)", "string_cities", block,
            [&] { return CountMatches(block.data(), Predicate::EqualsString("c", "PHOENIX"), config); },
            [&] {
              DecompressBlock(block.data(), &scratch, config);
              u32 m = 0;
              for (u32 i = 0; i < scratch.count; i++) {
                m += scratch.strings.Get(i) == "PHOENIX";
              }
              return m;
            });
  }
  {
    std::vector<double> data =
        datagen::MakeDoubles(datagen::DoubleArchetype::kZeroDominant, kRows, 4);
    ByteBuffer block;
    CompressDoubleBlock(data.data(), nullptr, kRows, &block, config);
    DecodedBlock scratch;
    Measure("double zero-dom (= 0.0)", "double_zero_dom", block,
            [&] { return CountMatches(block.data(), Predicate::EqualsDouble("c", 0.0), config); },
            [&] {
              DecompressBlock(block.data(), &scratch, config);
              u32 m = 0;
              for (u32 i = 0; i < scratch.count; i++) {
                m += scratch.doubles[i] == 0.0;
              }
              return m;
            });
  }
  {
    // Bit-packed sequential ints: no fast path; speedup should be ~1x.
    std::vector<i32> data =
        datagen::MakeInts(datagen::IntArchetype::kSequential, kRows, 5);
    ByteBuffer block;
    CompressIntBlock(data.data(), nullptr, kRows, &block, config);
    DecodedBlock scratch;
    Measure("int sequential (fallback)", "int_sequential", block,
            [&] { return CountMatches(block.data(), Predicate::EqualsInt("c", 777), config); },
            [&] {
              DecompressBlock(block.data(), &scratch, config);
              u32 m = 0;
              for (u32 i = 0; i < scratch.count; i++) m += scratch.ints[i] == 777;
              return m;
            });
  }
}

}  // namespace
}  // namespace btr::bench

int main() {
  btr::bench::InitBench("compressed_scan");
  btr::bench::PrintHeader(
      "Ablation: predicate evaluation on compressed blocks (paper Section 7)");
  btr::bench::Run();
  return 0;
}
