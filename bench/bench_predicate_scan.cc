// Predicate pushdown on the compressed form vs decode-then-filter
// (docs/PREDICATES.md).
//
// A clustered 16-block table lives in the simulated object store; a ~1%
// selective composable range/IN expression scans it twice:
//
//   pushdown:  zone maps prune non-overlapping row blocks before any GET,
//              surviving blocks are evaluated by the per-scheme SIMD
//              kernels on the compressed form (EvaluateExpr), and only
//              blocks with matches are decoded.
//   baseline:  enable_predicate_pushdown = false — every block of every
//              referenced column is fetched and decoded, then filtered
//              row-by-row (EvaluateExprDecoded).
//
// Both must agree on the matched rows exactly; the headline number is the
// wall-clock ratio between them under a modeled network (first-byte
// latency + single-flow bandwidth), plus the deterministic fetch/prune
// counters the CI gate can compare strictly.
#include <cstdio>

#include "common.h"
#include "s3sim/object_store.h"

namespace btr::bench {
namespace {

constexpr u32 kBlocks = 16;
constexpr u32 kRows = kBlocks * kBlockCapacity;

Relation MakeTable() {
  Relation table("pred_bench");
  Column& ids = table.AddColumn("id", ColumnType::kInteger);
  Column& prices = table.AddColumn("price", ColumnType::kDouble);
  Column& cities = table.AddColumn("city", ColumnType::kString);
  const char* names[4] = {"berlin", "munich", "bonn", "hamburg"};
  for (u32 i = 0; i < kRows; i++) {
    ids.AppendInt(static_cast<i32>(i));  // clustered: zone maps prune best
    prices.AppendDouble(static_cast<double>(i % 512) * 0.25);
    cities.AppendString(names[i % 4]);
  }
  return table;
}

struct ScanMeasurement {
  double seconds = 0;
  u64 rows_matched = 0;
  u64 bytes_fetched = 0;
  u32 blocks_pruned = 0;
  u32 blocks_skipped = 0;
  u64 fast_path_blocks = 0;
  u64 materialized_blocks = 0;
};

ScanMeasurement RunScan(Scanner* scanner, const ScanSpec& spec) {
  ScanOutput output;
  Status status = scanner->Scan(spec, &output);
  BTR_CHECK_MSG(status.ok(), "predicate bench scan failed");
  ScanMeasurement m;
  m.seconds = output.stats.seconds;
  m.rows_matched = output.stats.rows_matched;
  m.bytes_fetched = output.stats.bytes_fetched;
  m.blocks_pruned = output.stats.blocks_pruned;
  m.blocks_skipped = output.stats.blocks_skipped;
  for (const PredicateLeafStats& leaf : output.stats.predicate_leaves) {
    m.fast_path_blocks += leaf.fast_path;
    m.materialized_blocks += leaf.materialized;
  }
  return m;
}

void Run() {
  Relation table = MakeTable();
  CompressionConfig config;
  CompressedRelation compressed = CompressRelation(table, config);
  TableZoneMap zones;
  for (const Column& column : table.columns()) {
    zones.columns.push_back(ComputeColumnZoneMap(column));
  }

  // Modeled network: 2 ms to first byte per GET, one 2 Gbit/s flow —
  // modest numbers that still make "fetch 16x the blocks" visible.
  s3sim::S3Config s3;
  s3.simulate_wall_clock = true;
  s3.wall_clock_request_latency_s = 0.002;
  s3.wall_clock_gbps = 2.0;
  s3sim::ObjectStore store(s3);
  Status status = UploadCompressedRelation(compressed, &zones, "bench/", &store);
  BTR_CHECK_MSG(status.ok(), "predicate bench upload failed");

  Scanner scanner(&store, "pred_bench", "bench/");
  BTR_CHECK_MSG(scanner.Open().ok(), "predicate bench open failed");

  // ~1% of the id domain, restricted to half the cities: the expression
  // mixes a clustered range (prunes blocks), an IN over a dictionary
  // column (compressed-form set probe) and a double comparison.
  const i32 lo = kRows / 2;
  const i32 hi = lo + static_cast<i32>(kRows / 100) - 1;
  ScanSpec spec;
  spec.columns = {"id", "price"};
  spec.filter = PredicateExpr::And(
      {PredicateExpr::BetweenInt("id", lo, hi),
       PredicateExpr::InString("city", {"berlin", "bonn"}),
       PredicateExpr::CompareDouble("price", CompareOp::kLt, 1000.0)});
  spec.config.scan_threads = 4;
  spec.config.fetch_threads = 4;

  ScanMeasurement pushdown = RunScan(&scanner, spec);

  ScanSpec baseline_spec = spec;
  baseline_spec.config.enable_predicate_pushdown = false;
  ScanMeasurement baseline = RunScan(&scanner, baseline_spec);

  BTR_CHECK_MSG(pushdown.rows_matched == baseline.rows_matched,
                "pushdown and decode-then-filter disagree on matched rows");

  double speedup = baseline.seconds / pushdown.seconds;
  std::printf("table: %u rows x 3 columns, %u row blocks; filter: %s\n\n",
              kRows, kBlocks, spec.filter.ToString().c_str());
  std::printf("%-44s %10s %12s %8s\n", "engine", "seconds", "fetched KiB",
              "rows");
  std::printf("%-44s %10.4f %12.1f %8llu\n",
              "pushdown (zone maps + compressed-form eval)", pushdown.seconds,
              pushdown.bytes_fetched / 1024.0,
              static_cast<unsigned long long>(pushdown.rows_matched));
  std::printf("%-44s %10.4f %12.1f %8llu\n", "decode-then-filter baseline",
              baseline.seconds, baseline.bytes_fetched / 1024.0,
              static_cast<unsigned long long>(baseline.rows_matched));
  std::printf("%-44s %9.1fx\n", "speedup", speedup);
  std::printf("\npushdown detail: %u of %u blocks zone-pruned, %u skipped "
              "after compressed-form eval, %llu fast-path leaf evals, "
              "%llu materialized\n",
              pushdown.blocks_pruned, kBlocks, pushdown.blocks_skipped,
              static_cast<unsigned long long>(pushdown.fast_path_blocks),
              static_cast<unsigned long long>(pushdown.materialized_blocks));

  Report("pred.rows_matched", static_cast<double>(pushdown.rows_matched),
         "rows", MetricKind::kCount);
  Report("pred.blocks_pruned", static_cast<double>(pushdown.blocks_pruned),
         "blocks", MetricKind::kCount);
  Report("pred.fast_path_leaf_evals",
         static_cast<double>(pushdown.fast_path_blocks), "evals",
         MetricKind::kCount);
  Report("pred.pushdown_bytes_fetched",
         static_cast<double>(pushdown.bytes_fetched), "bytes",
         MetricKind::kBytes);
  Report("pred.baseline_bytes_fetched",
         static_cast<double>(baseline.bytes_fetched), "bytes",
         MetricKind::kBytes);
  Report("pred.pushdown_seconds", pushdown.seconds, "s", MetricKind::kTime);
  Report("pred.baseline_seconds", baseline.seconds, "s", MetricKind::kTime);
  Report("pred.speedup_vs_decode_then_filter", speedup, "x",
         MetricKind::kThroughput);
}

}  // namespace
}  // namespace btr::bench

int main() {
  btr::bench::InitBench("predicate_scan");
  btr::bench::PrintHeader(
      "Predicate pushdown: compressed-form evaluation vs decode-then-filter");
  btr::bench::Run();
  return 0;
}
