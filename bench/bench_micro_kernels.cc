// google-benchmark microbenchmarks for the Section 5 decompression
// kernels: vectorized vs scalar RLE expansion, dictionary gather, fused
// RLE+Dict, Pseudodecimal decode, FSST block decode, and Unpack128.
// These back the per-kernel speedup claims; run with --benchmark_filter=
// to narrow.
#include <benchmark/benchmark.h>

#include <vector>

#include "bitpack/bitpack.h"
#include "btr/btrblocks.h"
#include "btr/schemes/double_schemes.h"
#include "common.h"
#include "datagen/archetypes.h"
#include "fsst/fsst.h"
#include "util/random.h"
#include "util/simd.h"

namespace btr {
namespace {

constexpr u32 kRows = 64000;

void BM_RleDecodeInts(benchmark::State& state) {
  std::vector<i32> data =
      datagen::MakeInts(datagen::IntArchetype::kForeignKeyRuns, kRows, 1);
  CompressionConfig config;
  config.int_schemes = (1u << static_cast<u32>(IntSchemeCode::kUncompressed)) |
                       (1u << static_cast<u32>(IntSchemeCode::kRle)) |
                       (1u << static_cast<u32>(IntSchemeCode::kBp128));
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  CompressInts(data.data(), kRows, &compressed, ctx);
  std::vector<i32> out(kRows + kDecodeSlack);
  ScopedSimd simd(state.range(0) != 0);
  for (auto _ : state) {
    DecompressInts(compressed.data(), kRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kRows * sizeof(i32));
}
BENCHMARK(BM_RleDecodeInts)->Arg(0)->Arg(1)->ArgName("simd");

void BM_DictGatherInts(benchmark::State& state) {
  std::vector<i32> data =
      datagen::MakeInts(datagen::IntArchetype::kSevenDigitCodes, kRows, 2);
  CompressionConfig config;
  config.int_schemes = (1u << static_cast<u32>(IntSchemeCode::kUncompressed)) |
                       (1u << static_cast<u32>(IntSchemeCode::kDict)) |
                       (1u << static_cast<u32>(IntSchemeCode::kBp128));
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  CompressInts(data.data(), kRows, &compressed, ctx);
  std::vector<i32> out(kRows + kDecodeSlack);
  ScopedSimd simd(state.range(0) != 0);
  for (auto _ : state) {
    DecompressInts(compressed.data(), kRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kRows * sizeof(i32));
}
BENCHMARK(BM_DictGatherInts)->Arg(0)->Arg(1)->ArgName("simd");

void BM_Unpack128(benchmark::State& state) {
  u32 bits = static_cast<u32>(state.range(1));
  Random rng(bits);
  std::vector<u32> values(bitpack::kBlockSize);
  for (u32& v : values) {
    v = static_cast<u32>(rng.Next()) &
        (bits == 32 ? 0xFFFFFFFFu : ((1u << bits) - 1));
  }
  std::vector<u8> packed(bitpack::Packed128Bytes(32) + 32, 0);
  bitpack::Pack128(values.data(), bits, packed.data());
  std::vector<u32> out(bitpack::kBlockSize + 16);
  ScopedSimd simd(state.range(0) != 0);
  for (auto _ : state) {
    bitpack::Unpack128(packed.data(), bits, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * bitpack::kBlockSize * 4);
}
BENCHMARK(BM_Unpack128)
    ->Args({0, 7})
    ->Args({1, 7})
    ->Args({0, 13})
    ->Args({1, 13})
    ->ArgNames({"simd", "bits"});

void BM_PseudodecimalDecode(benchmark::State& state) {
  std::vector<double> data =
      datagen::MakeDoubles(datagen::DoubleArchetype::kPrice2Decimals, kRows, 3);
  CompressionConfig config;
  CompressionContext ctx{&config, config.max_cascade_depth};
  const DoubleScheme& pde = GetDoubleScheme(DoubleSchemeCode::kPseudodecimal);
  ByteBuffer compressed;
  pde.Compress(data.data(), kRows, &compressed, ctx);
  std::vector<double> out(kRows + kDecodeSlack);
  ScopedSimd simd(state.range(0) != 0);
  for (auto _ : state) {
    pde.Decompress(compressed.data(), kRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kRows * sizeof(double));
}
BENCHMARK(BM_PseudodecimalDecode)->Arg(0)->Arg(1)->ArgName("simd");

void BM_FsstBlockDecode(benchmark::State& state) {
  Random rng(4);
  std::string text;
  for (int i = 0; i < 20000; i++) {
    text += "https://public.tableau.com/workbooks/";
    text += std::to_string(rng.NextBounded(99999));
  }
  fsst::SymbolTable table = fsst::SymbolTable::Build(
      reinterpret_cast<const u8*>(text.data()), text.size());
  ByteBuffer compressed;
  fsst::CompressBlock(table, reinterpret_cast<const u8*>(text.data()),
                      text.size(), &compressed);
  std::vector<u8> out(text.size() + 16);
  for (auto _ : state) {
    table.Decompress(compressed.data(), compressed.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_FsstBlockDecode);

void BM_FusedRleDictStrings(benchmark::State& state) {
  Relation r("t");
  Column& c = r.AddColumn("s", ColumnType::kString);
  datagen::FillString(&c, datagen::StringArchetype::kCategoryRuns, kRows, 5);
  CompressionConfig config;
  config.fused_rle_dict = state.range(0) != 0;
  std::vector<u32> scratch;
  StringsView view = c.StringBlock(0, kRows, &scratch);
  CompressionContext ctx{&config, config.max_cascade_depth};
  ByteBuffer compressed;
  CompressStrings(view, &compressed, ctx);
  for (auto _ : state) {
    DecodedStrings decoded;
    DecompressStrings(compressed.data(), kRows, &decoded, config);
    benchmark::DoNotOptimize(decoded.slots.data());
  }
  state.SetBytesProcessed(state.iterations() * view.TotalBytes());
}
BENCHMARK(BM_FusedRleDictStrings)->Arg(0)->Arg(1)->ArgName("fused");

// Prints the normal console table AND captures every run into the shared
// bench reporter, so this binary emits the same BENCH_<name>.json sidecar
// as the harness benches (one throughput metric per kernel variant).
class SidecarReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::string metric = run.benchmark_name();
      for (char& c : metric) {
        if (c == '/' || c == ':' || c == '=') c = '.';
      }
      auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) {
        bench::Report(metric + ".gbps", it->second.value / 1e9, "GB/s",
                      bench::MetricKind::kThroughput,
                      static_cast<u64>(run.iterations));
      } else {
        bench::Report(metric + ".real_time_ns", run.GetAdjustedRealTime(),
                      "ns", bench::MetricKind::kTime,
                      static_cast<u64>(run.iterations));
      }
    }
  }
};

}  // namespace
}  // namespace btr

// Hand-rolled BENCHMARK_MAIN() so the capturing reporter sees every run.
int main(int argc, char** argv) {
  btr::bench::InitBench("micro_kernels");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  btr::SidecarReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
