// Reproduces Table 2: Public BI Benchmark vs TPC-H — per-data-type volume
// share and compression ratio for Uncompressed, Parquet(-like), Parquet
// plus Snappy/LZ4-class, Parquet plus Zstd-class, and BtrBlocks.
#include <cstdio>
#include <map>

#include "common.h"

namespace btr::bench {
namespace {

struct TypeAccumulator {
  u64 uncompressed[3] = {0, 0, 0};
  u64 compressed[3] = {0, 0, 0};

  u64 TotalUncompressed() const {
    return uncompressed[0] + uncompressed[1] + uncompressed[2];
  }
  u64 TotalCompressed() const {
    return compressed[0] + compressed[1] + compressed[2];
  }
};

// Compresses every column of the corpus individually and buckets the
// bytes by column type. `compress` maps a single-column relation to its
// compressed byte count.
template <typename CompressFn>
TypeAccumulator Accumulate(const std::vector<Relation>& corpus,
                           const CompressFn& compress) {
  TypeAccumulator acc;
  for (const Relation& table : corpus) {
    for (const Column& column : table.columns()) {
      std::vector<Relation> single = SingleColumnRelation(column);
      u64 bytes = compress(single[0]);
      u32 t = static_cast<u32>(column.type());
      acc.uncompressed[t] += column.UncompressedBytes();
      acc.compressed[t] += bytes;
    }
  }
  return acc;
}

void PrintRow(const char* format_name, const TypeAccumulator& acc) {
  // Column order matches the paper: String, Double, Integer, Combined.
  const u32 order[3] = {static_cast<u32>(ColumnType::kString),
                        static_cast<u32>(ColumnType::kDouble),
                        static_cast<u32>(ColumnType::kInteger)};
  std::printf("%-22s", format_name);
  u64 total_compressed = acc.TotalCompressed();
  for (u32 t : order) {
    double share = total_compressed == 0
                       ? 0
                       : 100.0 * acc.compressed[t] / total_compressed;
    double ratio = acc.compressed[t] == 0
                       ? 0
                       : static_cast<double>(acc.uncompressed[t]) / acc.compressed[t];
    std::printf("  %5.1f%% %6.2fx", share, ratio);
  }
  double combined = acc.TotalCompressed() == 0
                        ? 0
                        : static_cast<double>(acc.TotalUncompressed()) /
                              acc.TotalCompressed();
  std::printf("  %6.2fx\n", combined);
}

void RunDataset(const char* name, const char* tag,
                const std::vector<Relation>& corpus) {
  std::printf("\n--- %s ---\n", name);
  std::printf("%-22s  %-14s  %-14s  %-14s  %s\n", "format",
              "string(sh,cr)", "double(sh,cr)", "int(sh,cr)", "combined");

  // Uncompressed: shares by raw volume (the paper's first row).
  {
    TypeAccumulator acc =
        Accumulate(corpus, [](const Relation& r) { return r.UncompressedBytes(); });
    PrintRow("Uncompressed", acc);
  }
  auto parquet_with = [&](gpc::CodecKind codec) {
    return Accumulate(corpus, [codec](const Relation& r) {
      lakeformat::ParquetOptions options;
      options.codec = codec;
      return static_cast<u64>(lakeformat::WriteParquetLike(r, options).size());
    });
  };
  PrintRow("Parquet", parquet_with(gpc::CodecKind::kNone));
  PrintRow("Parquet+Snappy/LZ4*", parquet_with(gpc::CodecKind::kLz77));
  PrintRow("Parquet+Zstd*", parquet_with(gpc::CodecKind::kEntropyLz));
  {
    TypeAccumulator acc = Accumulate(corpus, [](const Relation& r) {
      CompressionConfig config;
      return CompressRelation(r, config).CompressedBytes();
    });
    PrintRow("BtrBlocks", acc);
    double combined = acc.TotalCompressed() == 0
                          ? 0
                          : static_cast<double>(acc.TotalUncompressed()) /
                                acc.TotalCompressed();
    Report(std::string(tag) + ".btrblocks.combined_ratio", combined, "x",
           MetricKind::kRatio);
  }
  std::printf("(* Snappy/LZ4 and Zstd stand-ins are the from-scratch gpc codecs)\n");
}

}  // namespace
}  // namespace btr::bench

int main() {
  using namespace btr::bench;
  InitBench("table2_datasets");
  PrintHeader(
      "Table 2: PBI vs TPC-H — per-type compressed volume share and ratio");
  RunDataset("Public BI (synthetic archetypes)", "pbi", PbiCorpus());
  RunDataset("TPC-H (synthetic dbgen-like)", "tpch", TpchCorpus());
  return 0;
}
